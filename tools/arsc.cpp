//===- tools/arsc.cpp - Command-line driver -------------------*- C++ -*-===//
///
/// \file
/// The `arsc` tool: compile and run MiniJ programs under any sampling
/// configuration from the command line.
///
///   arsc run prog.mj --arg=1000 --mode=full --interval=1000
///        --clients=call-edge,field-access --profiles
///   arsc dump-bc prog.mj        # disassembled bytecode
///   arsc dump-ir prog.mj        # baseline CFG IR
///   arsc dump-transformed prog.mj --mode=full   # post-transform IR
///   arsc overhead prog.mj --arg=1000 --mode=full --interval=1000
///   arsc sweep prog.mj --arg=1000 --jobs=4   # mode x interval matrix
///   arsc run prog.mj --profile-out=run.arsp  # persist the profile
///   arsc profile report run.arsp             # inspect a stored profile
///   arsc profile merge --out=all.arsp a.arsp b.arsp
///   arsc profile diff a.arsp b.arsp          # overlap% + top movers
///   arsc profile scale --out=o.arsp --keep=50 in.arsp
///
/// Fleet-style collection (see DESIGN.md section 9): a daemon aggregates
/// pushed profiles from many instrumented runs and serves the merged
/// bundle back:
///
///   arsc serve --listen=4817 --snapshot-out=fleet.arsp
///   arsc run prog.mj --arg=1000 --push-to=127.0.0.1:4817
///   arsc push --to=127.0.0.1:4817 shard1.arsp shard2.arsp
///   arsc pull --from=127.0.0.1:4817 --out=merged.arsp
///   arsc pull --from=127.0.0.1:4817 --stats
///
/// Chaos testing (see DESIGN.md section 10): drive the whole collection
/// stack under seeded, replayable fault injection and require the merged
/// result to stay byte-identical to the fault-free fold:
///
///   arsc chaos --fault-seed=7 --trace
///   arsc chaos --fault-seed-sweep 32 --quick
///
/// Benchmark telemetry (see EXPERIMENTS.md): run the bench matrix, merge
/// the per-bench JSON into BENCH_<sha>.json, and gate a run against a
/// committed baseline with noise-aware thresholds:
///
///   arsc bench --quick --jobs=4 --out-dir=bench-out
///   arsc bench compare bench/baselines/quick.json BENCH_<sha>.json
///
//===----------------------------------------------------------------------===//

#include "bytecode/Assembler.h"
#include "bytecode/Disassembler.h"
#include "faultinject/Chaos.h"
#include "harness/Experiment.h"
#include "instr/Clients.h"
#include "ir/IRPrinter.h"
#include "lowering/Cleanup.h"
#include "lowering/Lowering.h"
#include "opt/Passes.h"
#include "policy/Policy.h"
#include "profile/Overlap.h"
#include "profile/Profiles.h"
#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profserve/Transport.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "shmem/ShmRing.h"
#include "support/Binary.h"
#include "support/Support.h"
#include "support/TablePrinter.h"
#include "telemetry/BenchMatrix.h"
#include "telemetry/BenchReport.h"
#include "telemetry/PerfGate.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ars;

namespace {

struct CliOptions {
  std::string Command;
  std::string File;
  int64_t Arg = 10;
  sampling::Mode Mode = sampling::Mode::FullDuplication;
  int64_t Interval = 1000;
  bool TimerTrigger = false;
  uint64_t TimerPeriod = 100000;
  bool YieldpointOpt = false;
  int Burst = 0;
  bool PerThread = false;
  uint32_t JitterPct = 0;
  uint64_t Seed = 0x415253; // EngineConfig::RandomSeed default
  bool ShowProfiles = false;
  bool Optimize = false;
  int Jobs = 1;
  std::string ProfileOut;
  std::string PushTo;  ///< host:port of a collection server (run only)
  std::string PushShm; ///< shm rendezvous dir of a same-host collector
  std::vector<std::string> Clients = {"call-edge", "field-access"};
};

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s <command> <file.mj> [options]\n"
      "commands:\n"
      "  run               compile and execute, print result and stats\n"
      "  overhead          run baseline + configured mode, print overhead\n"
      "  sweep             run a mode x interval matrix, print overhead\n"
      "                    and accuracy per cell (parallel with --jobs)\n"
      "  dump-bc           print disassembled bytecode\n"
      "  dump-ir           print baseline CFG IR\n"
      "  dump-transformed  print IR after the sampling transform\n"
      "  profile <sub>     operate on stored .arsp profiles:\n"
      "                    report <f> | diff <a> <b> |\n"
      "                    merge --out=<f> <in...> |\n"
      "                    scale --out=<f> (--keep=<pct> | --num=<n>\n"
      "                    --den=<d>) <in>\n"
      "  serve             run a profile collection daemon (run with no\n"
      "                    further args for the option list)\n"
      "  push              upload .arsp shards to a collection server\n"
      "  pull              download the merged profile / server stats\n"
      "  chaos             run the collection stack under seeded fault\n"
      "                    injection (run with no args for options)\n"
      "  --version         print format, protocol and build info\n"
      "options:\n"
      "  --arg=<n>              main(n) argument (default 10)\n"
      "  --mode=<m>             baseline|exhaustive|full|partial|nodup|"
      "combined\n"
      "  --interval=<n>         sample interval, 0 = never (default 1000)\n"
      "  --trigger=timer        use the timer trigger\n"
      "  --timer-period=<n>     timer period in cycles (default 100000)\n"
      "  --clients=<a,b,..>     call-edge,field-access,block-count,value,\n"
      "                         edge-count,path-profile\n"
      "  --yieldpoint-opt       apply the section 4.5 optimization\n"
      "  --burst=<n>            N-consecutive-iteration sampling\n"
      "  --per-thread           per-thread sample counters\n"
      "  --jitter=<pct>         randomized interval perturbation\n"
      "  --seed=<n>             jitter RNG seed (decorrelates runs whose\n"
      "                         profiles will be merged)\n"
      "  --profiles             print collected profiles\n"
      "  --profile-out=<file>   save the collected profile bundle (binary\n"
      "                         format, fingerprinted against the module)\n"
      "  --push-to=<host:port>  stream the collected profile to a running\n"
      "                         `arsc serve` collection daemon\n"
      "  --push-shm=<dir>       same, over the same-host shared-memory\n"
      "                         transport (`arsc serve --listen-shm=<dir>`)\n"
      "  --optimize             run the O2 optimizer before instrumenting\n"
      "  --jobs=<n>             worker threads for matrix commands; results\n"
      "                         are identical for every value (default 1)\n",
      Prog);
  return 2;
}

bool parseMode(const std::string &Text, sampling::Mode *Out) {
  if (Text == "baseline")   { *Out = sampling::Mode::Baseline; return true; }
  if (Text == "exhaustive") { *Out = sampling::Mode::Exhaustive; return true; }
  if (Text == "full")       { *Out = sampling::Mode::FullDuplication; return true; }
  if (Text == "partial")    { *Out = sampling::Mode::PartialDuplication; return true; }
  if (Text == "nodup")      { *Out = sampling::Mode::NoDuplication; return true; }
  if (Text == "combined")   { *Out = sampling::Mode::Combined; return true; }
  return false;
}

bool parseArgs(int Argc, char **Argv, CliOptions *Opts) {
  if (Argc < 3)
    return false;
  Opts->Command = Argv[1];
  Opts->File = Argv[2];
  for (int A = 3; A < Argc; ++A) {
    std::string Arg = Argv[A];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--arg=")) {
      Opts->Arg = std::atoll(V);
    } else if (const char *V = valueOf("--mode=")) {
      if (!parseMode(V, &Opts->Mode))
        return false;
    } else if (const char *V = valueOf("--interval=")) {
      Opts->Interval = std::atoll(V);
    } else if (Arg == "--trigger=timer") {
      Opts->TimerTrigger = true;
    } else if (const char *V = valueOf("--timer-period=")) {
      Opts->TimerPeriod = std::strtoull(V, nullptr, 10);
    } else if (const char *V = valueOf("--clients=")) {
      Opts->Clients = support::splitString(V, ',');
    } else if (Arg == "--yieldpoint-opt") {
      Opts->YieldpointOpt = true;
    } else if (const char *V = valueOf("--burst=")) {
      Opts->Burst = std::atoi(V);
    } else if (Arg == "--per-thread") {
      Opts->PerThread = true;
    } else if (const char *V = valueOf("--jitter=")) {
      Opts->JitterPct = static_cast<uint32_t>(std::atoi(V));
    } else if (const char *V = valueOf("--seed=")) {
      Opts->Seed = std::strtoull(V, nullptr, 0);
    } else if (Arg == "--profiles") {
      Opts->ShowProfiles = true;
    } else if (const char *V = valueOf("--profile-out=")) {
      Opts->ProfileOut = V;
    } else if (const char *V = valueOf("--push-to=")) {
      Opts->PushTo = V;
    } else if (const char *V = valueOf("--push-shm=")) {
      Opts->PushShm = V;
    } else if (Arg == "--optimize") {
      Opts->Optimize = true;
    } else if (const char *V = valueOf("--jobs=")) {
      Opts->Jobs = std::atoi(V);
      if (Opts->Jobs < 1)
        Opts->Jobs = 1;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

/// Owns the instrumentation client objects named on the command line.
struct ClientSet {
  instr::CallEdgeInstrumentation CallEdges;
  instr::FieldAccessInstrumentation FieldAccesses;
  instr::BlockCountInstrumentation BlockCounts;
  instr::ValueProfileInstrumentation Values;
  instr::EdgeCountInstrumentation EdgeCounts;
  instr::PathProfileInstrumentation PathProfiles;

  bool resolve(const std::vector<std::string> &Names,
               std::vector<const instr::Instrumentation *> *Out) {
    for (const std::string &Name : Names) {
      if (Name == "call-edge")
        Out->push_back(&CallEdges);
      else if (Name == "field-access")
        Out->push_back(&FieldAccesses);
      else if (Name == "block-count")
        Out->push_back(&BlockCounts);
      else if (Name == "value")
        Out->push_back(&Values);
      else if (Name == "edge-count")
        Out->push_back(&EdgeCounts);
      else if (Name == "path-profile")
        Out->push_back(&PathProfiles);
      else if (!Name.empty()) {
        std::fprintf(stderr, "unknown client: %s\n", Name.c_str());
        return false;
      }
    }
    return true;
  }
};

bool readFile(const std::string &Path, std::string *Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  *Out = Buffer.str();
  return true;
}

harness::RunConfig makeConfig(const CliOptions &Opts,
                              std::vector<const instr::Instrumentation *>
                                  Clients) {
  harness::RunConfig C;
  C.Transform.M = Opts.Mode;
  C.Transform.YieldpointOpt = Opts.YieldpointOpt;
  C.Transform.BurstLength = Opts.Burst;
  C.Engine.SampleInterval = Opts.Interval;
  if (Opts.TimerTrigger) {
    C.Engine.Trigger = runtime::TriggerKind::Timer;
    C.Engine.TimerPeriodCycles = Opts.TimerPeriod;
  }
  C.Engine.PerThreadCounters = Opts.PerThread;
  C.Engine.RandomJitterPct = Opts.JitterPct;
  C.Engine.RandomSeed = Opts.Seed;
  C.Clients = std::move(Clients);
  return C;
}

void printStats(const runtime::RunStats &S) {
  std::printf("result          : %lld\n",
              static_cast<long long>(S.MainResult));
  std::printf("cycles          : %llu\n",
              static_cast<unsigned long long>(S.Cycles));
  std::printf("instructions    : %llu\n",
              static_cast<unsigned long long>(S.Instructions));
  std::printf("method entries  : %llu\n",
              static_cast<unsigned long long>(S.Entries));
  std::printf("checks executed : %llu (samples %llu)\n",
              static_cast<unsigned long long>(S.CheckExecs),
              static_cast<unsigned long long>(S.SamplesTaken));
  std::printf("guarded probes  : %llu (taken %llu)\n",
              static_cast<unsigned long long>(S.GuardedProbeExecs),
              static_cast<unsigned long long>(S.GuardedProbesTaken));
  std::printf("probe bodies    : %llu\n",
              static_cast<unsigned long long>(S.ProbeBodiesRun));
  std::printf("threads spawned : %llu\n",
              static_cast<unsigned long long>(S.ThreadsSpawned));
  if (!S.Trace.empty()) {
    std::printf("trace           :");
    for (size_t I = 0; I != S.Trace.size() && I != 32; ++I)
      std::printf(" %lld", static_cast<long long>(S.Trace[I]));
    if (S.Trace.size() > 32)
      std::printf(" ... (%zu total)", S.Trace.size());
    std::printf("\n");
  }
}

//===----------------------------------------------------------------------===//
// `arsc profile <sub>` — operations on stored .arsp profiles.  Handled
// before the generic parser: these commands take profile files, not
// MiniJ sources.
//===----------------------------------------------------------------------===//

int profileUsage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s profile <subcommand> [options] <file...>\n"
      "subcommands:\n"
      "  report <f>             per-kind entry counts/totals + top call\n"
      "                         edges of one stored profile\n"
      "  diff <a> <b>           per-kind overlap%% and top call-edge\n"
      "                         movers between two stored profiles\n"
      "  merge --out=<f> <in..> count-wise sum of the inputs (all inputs\n"
      "                         must share one module fingerprint)\n"
      "  scale --out=<f> (--keep=<pct> | --num=<n> --den=<d>) <in>\n"
      "                         scale every count by pct/100 or n/d\n"
      "  overlap <a> <b>        per-kind, combined and per-method overlap\n"
      "                         of <b> against <a> (a = the reference,\n"
      "                         e.g. an exhaustive profile) — the metric\n"
      "                         the policy watcher decides with, for\n"
      "                         tuning --policy thresholds offline\n"
      "options:\n"
      "  --top=<k>              rows in report/diff listings (default 10)\n",
      Prog);
  return 2;
}

profstore::DecodeResult loadOrDie(const std::string &Path,
                                  uint64_t ExpectedFingerprint) {
  profstore::DecodeResult R =
      profstore::loadBundle(Path, ExpectedFingerprint);
  if (!R.Ok) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), R.Error.c_str());
    std::exit(1);
  }
  return R;
}

int profileMain(int Argc, char **Argv) {
  std::string Sub = Argc >= 3 ? Argv[2] : "";
  std::vector<std::string> Inputs;
  std::string OutPath;
  int TopK = 10;
  uint64_t Num = 0, Den = 0;
  for (int A = 3; A < Argc; ++A) {
    std::string Arg = Argv[A];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--out=")) {
      OutPath = V;
    } else if (const char *V = valueOf("--top=")) {
      TopK = std::atoi(V);
    } else if (const char *V = valueOf("--keep=")) {
      Num = std::strtoull(V, nullptr, 10);
      Den = 100;
    } else if (const char *V = valueOf("--num=")) {
      Num = std::strtoull(V, nullptr, 10);
    } else if (const char *V = valueOf("--den=")) {
      Den = std::strtoull(V, nullptr, 10);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return profileUsage(Argv[0]);
    } else {
      Inputs.push_back(Arg);
    }
  }

  if (Sub == "report") {
    if (Inputs.size() != 1)
      return profileUsage(Argv[0]);
    profstore::DecodeResult R = loadOrDie(Inputs[0], 0);
    std::printf("module fingerprint: %016llx\n",
                static_cast<unsigned long long>(R.Fingerprint));
    std::fputs(profstore::reportBundle(R.Bundle, TopK).c_str(), stdout);
    return 0;
  }

  if (Sub == "diff") {
    if (Inputs.size() != 2)
      return profileUsage(Argv[0]);
    profstore::DecodeResult A = loadOrDie(Inputs[0], 0);
    profstore::DecodeResult B = loadOrDie(Inputs[1], 0);
    if (A.Fingerprint != B.Fingerprint)
      std::fprintf(stderr,
                   "warning: profiles come from different modules "
                   "(%016llx vs %016llx); the diff compares ids, not "
                   "the same code\n",
                   static_cast<unsigned long long>(A.Fingerprint),
                   static_cast<unsigned long long>(B.Fingerprint));
    std::fputs(profstore::diffReport(A.Bundle, B.Bundle, TopK).c_str(),
               stdout);
    return 0;
  }

  if (Sub == "merge") {
    // Be explicit about the two degenerate spellings: silently writing an
    // empty bundle for zero inputs would look like a successful merge.
    if (Inputs.empty()) {
      std::fprintf(stderr,
                   "profile merge: no input profiles given — nothing to "
                   "merge\n");
      return 2;
    }
    if (OutPath.empty()) {
      std::fprintf(stderr, "profile merge: missing --out=<file>\n");
      return 2;
    }
    profstore::DecodeResult First = loadOrDie(Inputs[0], 0);
    profile::ProfileBundle Merged = std::move(First.Bundle);
    for (size_t I = 1; I != Inputs.size(); ++I) {
      // Later inputs must come from the same module as the first.
      profstore::DecodeResult R = loadOrDie(Inputs[I], First.Fingerprint);
      profstore::mergeBundle(Merged, R.Bundle);
    }
    std::string Error;
    if (!profstore::saveBundle(OutPath, Merged, First.Fingerprint,
                               &Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 1;
    }
    std::printf("merged %zu profiles into %s (fingerprint %016llx)\n",
                Inputs.size(), OutPath.c_str(),
                static_cast<unsigned long long>(First.Fingerprint));
    return 0;
  }

  if (Sub == "overlap") {
    if (Inputs.size() != 2)
      return profileUsage(Argv[0]);
    profstore::DecodeResult A = loadOrDie(Inputs[0], 0);
    profstore::DecodeResult B = loadOrDie(Inputs[1], 0);
    if (A.Fingerprint != B.Fingerprint)
      std::fprintf(stderr,
                   "warning: profiles come from different modules "
                   "(%016llx vs %016llx); overlap compares ids, not the "
                   "same code\n",
                   static_cast<unsigned long long>(A.Fingerprint),
                   static_cast<unsigned long long>(B.Fingerprint));
    struct Kind {
      const char *Name;
      double Overlap;
      uint64_t Weight; ///< reference-side event count
    };
    const Kind Kinds[] = {
        {"call-edges",
         profile::overlapPercent(A.Bundle.CallEdges, B.Bundle.CallEdges),
         A.Bundle.CallEdges.total()},
        {"field-accesses",
         profile::overlapPercent(A.Bundle.FieldAccesses,
                                 B.Bundle.FieldAccesses),
         A.Bundle.FieldAccesses.total()},
        {"block-counts",
         profile::overlapPercent(A.Bundle.BlockCounts,
                                 B.Bundle.BlockCounts),
         A.Bundle.BlockCounts.total()},
    };
    double Weighted = 0;
    uint64_t Weight = 0;
    for (const Kind &K : Kinds) {
      if (K.Weight == 0) {
        std::printf("%-16s      (empty in %s)\n", K.Name,
                    Inputs[0].c_str());
        continue;
      }
      std::printf("%-16s %6.2f%%  (%llu reference events)\n", K.Name,
                  K.Overlap, static_cast<unsigned long long>(K.Weight));
      Weighted += K.Overlap * static_cast<double>(K.Weight);
      Weight += K.Weight;
    }
    std::printf("combined         %6.2f%%  (weighted by reference "
                "events)\n",
                Weight ? Weighted / static_cast<double>(Weight) : 0.0);
    std::printf("per-method       %6.2f%%  (the policy watcher's "
                "decision metric)\n",
                policy::perMethodOverlapPct(A.Bundle, B.Bundle));
    return 0;
  }

  if (Sub == "scale") {
    if (Inputs.size() != 1 || OutPath.empty() || !Num || !Den)
      return profileUsage(Argv[0]);
    profstore::DecodeResult R = loadOrDie(Inputs[0], 0);
    profstore::scaleBundle(R.Bundle, Num, Den);
    std::string Error;
    if (!profstore::saveBundle(OutPath, R.Bundle, R.Fingerprint, &Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 1;
    }
    std::printf("scaled %s by %llu/%llu into %s\n", Inputs[0].c_str(),
                static_cast<unsigned long long>(Num),
                static_cast<unsigned long long>(Den), OutPath.c_str());
    return 0;
  }

  return profileUsage(Argv[0]);
}

//===----------------------------------------------------------------------===//
// `arsc serve` / `arsc push` / `arsc pull` — the networked collection
// tier (profserve).  Like `profile`, handled before the generic parser:
// these commands take addresses and .arsp files, not MiniJ sources.
//===----------------------------------------------------------------------===//

std::atomic<bool> ServeInterrupted{false};
std::atomic<int> ServeSignal{0};

void handleServeSignal(int Sig) {
  ServeSignal.store(Sig);
  ServeInterrupted.store(true);
}

int serveUsage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s serve [options]\n"
      "Runs a profile collection daemon: accepts pushed .arsp shards,\n"
      "merges them, serves the merged bundle over pull, and snapshots it\n"
      "to disk.  Stops gracefully on SIGINT/SIGTERM (final snapshot\n"
      "included).\n"
      "options:\n"
      "  --listen=<port>            TCP port on 127.0.0.1 (default 0 =\n"
      "                             ephemeral; the chosen port is printed)\n"
      "  --listen-shm=<dir>         accept same-host clients over shared-\n"
      "                             memory ring segments rendezvoused in\n"
      "                             <dir> instead of TCP (see `run\n"
      "                             --push-shm` / `push --shm`)\n"
      "  --snapshot-out=<file>      write the merged profile here\n"
      "  --snapshot-interval-ms=<n> also snapshot every n ms\n"
      "  --journal=<file>           write-ahead journal: every shard is\n"
      "                             made durable (CRC-framed, group-\n"
      "                             commit fsync) BEFORE it merges, and a\n"
      "                             restart replays the tail on top of\n"
      "                             the last snapshot — crash-safe\n"
      "                             exactly-once, dedup table included\n"
      "  --journal-max-segment=<b>  rotate journal segments at b bytes\n"
      "                             (default 4194304)\n"
      "  --no-journal-fsync         journal without fsync (benchmarks\n"
      "                             only; a crash may lose the tail)\n"
      "  --compress-snapshots       wrap snapshots in the ARSZ compressed\n"
      "                             container (loads transparently)\n"
      "  --keep=<pct>               epoch decay: percent kept per rotation\n"
      "  --rotate-every=<n>         rotate an epoch every n merges\n"
      "  --workers=<n>              reactor (event loop) threads (default\n"
      "                             4)\n"
      "  --recv-timeout-ms=<n>      per-frame client deadline (default\n"
      "                             2000)\n"
      "  --relay-to=<a[,b,...]>     act as an aggregation-tree relay:\n"
      "                             accept pushes like a leaf collector,\n"
      "                             merge locally, and drain the delta\n"
      "                             upstream to the first host:port; any\n"
      "                             further comma-separated parents are\n"
      "                             ordered backups the relay fails over\n"
      "                             to when the current parent dies\n"
      "                             (sequence numbers continue, so the\n"
      "                             move is exactly-once)\n"
      "  --relay-flush-interval-ms=<n>  upstream flush period (default\n"
      "                             1000; 0 = flush only on --relay-\n"
      "                             flush-every and shutdown)\n"
      "  --relay-flush-every=<n>    also flush after n local merges\n"
      "  --relay-spill=<file>       spill file when the parent is\n"
      "                             unreachable (default derives from\n"
      "                             --snapshot-out)\n"
      "  --expect=<file.arsp>       pin the module fingerprint to this\n"
      "                             profile's (default: first push wins)\n"
      "  --policy                   closed-loop adaptive sampling (wire\n"
      "                             v4): watch per-method convergence\n"
      "                             across epoch rotations and push\n"
      "                             interval-widening/retire decisions to\n"
      "                             connected v4 engines (and down the\n"
      "                             relay tree); needs --rotate-every or\n"
      "                             explicit rotations to observe epochs\n"
      "  --policy-widen-pct=<f>     overlap%% threshold to widen a\n"
      "                             method's interval (default 97)\n"
      "  --policy-retire-pct=<f>    overlap%% threshold to retire a\n"
      "                             method to checking-only (default\n"
      "                             99.5)\n"
      "  --policy-epochs=<n>        consecutive qualifying epochs before\n"
      "                             a decision fires (default 2)\n"
      "  --policy-widen-factor=<n>  interval multiplier per widen\n"
      "                             decision (default 4)\n"
      "  --policy-base-interval=<n> the static interval engines deployed\n"
      "                             with (default 1000)\n"
      "  --serve-for-ms=<n>         exit after n ms (for scripts/demos)\n"
      "  --drain-on-term            SIGTERM drains gracefully (flush\n"
      "                             upstream, snapshot, checkpoint) even\n"
      "                             with --journal; the journaled default\n"
      "                             is an abrupt stop — fast, and safe\n"
      "                             because restart replays the journal.\n"
      "                             Without --journal SIGTERM always\n"
      "                             drains.  SIGINT always drains.\n"
      "  --quiet                    don't log rejects to stderr\n",
      Prog);
  return 2;
}

int serveMain(int Argc, char **Argv) {
  profserve::ServerConfig Config;
  Config.LogToStderr = true;
  uint16_t Port = 0;
  std::string ListenShm;
  int64_t ServeForMs = -1;
  std::string RelayTo;
  int RelayFlushIntervalMs = 1000;
  uint64_t RelayFlushEvery = 0;
  std::string RelaySpill;
  bool DrainOnTerm = false;
  for (int A = 2; A < Argc; ++A) {
    std::string Arg = Argv[A];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--listen=")) {
      Port = static_cast<uint16_t>(std::atoi(V));
    } else if (const char *V = valueOf("--listen-shm=")) {
      ListenShm = V;
    } else if (const char *V = valueOf("--snapshot-out=")) {
      Config.SnapshotPath = V;
    } else if (const char *V = valueOf("--snapshot-interval-ms=")) {
      Config.SnapshotIntervalMs = std::atoi(V);
      if (Config.SnapshotIntervalMs < 0) {
        std::fprintf(stderr,
                     "--snapshot-interval-ms must be >= 0, got %s\n", V);
        return serveUsage(Argv[0]);
      }
    } else if (const char *V = valueOf("--journal=")) {
      Config.JournalPath = V;
    } else if (const char *V = valueOf("--journal-max-segment=")) {
      Config.JournalMaxSegmentBytes = std::strtoull(V, nullptr, 10);
      if (Config.JournalMaxSegmentBytes == 0) {
        std::fprintf(stderr, "--journal-max-segment must be > 0\n");
        return serveUsage(Argv[0]);
      }
    } else if (Arg == "--no-journal-fsync") {
      Config.JournalFsync = false;
    } else if (Arg == "--drain-on-term") {
      DrainOnTerm = true;
    } else if (Arg == "--compress-snapshots") {
      Config.CompressSnapshots = true;
    } else if (const char *V = valueOf("--keep=")) {
      Config.EpochKeepPct = static_cast<uint32_t>(std::atoi(V));
    } else if (const char *V = valueOf("--rotate-every=")) {
      Config.RotateEveryMerges = std::strtoull(V, nullptr, 10);
    } else if (const char *V = valueOf("--workers=")) {
      Config.Workers = std::atoi(V);
      if (Config.Workers < 1) {
        std::fprintf(stderr, "--workers must be >= 1, got %s\n", V);
        return serveUsage(Argv[0]);
      }
    } else if (const char *V = valueOf("--recv-timeout-ms=")) {
      Config.RecvTimeoutMs = std::atoi(V);
      if (Config.RecvTimeoutMs < 0) {
        std::fprintf(stderr, "--recv-timeout-ms must be >= 0, got %s\n",
                     V);
        return serveUsage(Argv[0]);
      }
    } else if (const char *V = valueOf("--expect=")) {
      profstore::DecodeResult R = loadOrDie(V, 0);
      Config.Fingerprint = R.Fingerprint;
    } else if (const char *V = valueOf("--relay-to=")) {
      RelayTo = V;
    } else if (const char *V = valueOf("--relay-flush-interval-ms=")) {
      RelayFlushIntervalMs = std::atoi(V);
      if (RelayFlushIntervalMs < 0) {
        std::fprintf(stderr,
                     "--relay-flush-interval-ms must be >= 0, got %s\n",
                     V);
        return serveUsage(Argv[0]);
      }
    } else if (const char *V = valueOf("--relay-flush-every=")) {
      RelayFlushEvery = std::strtoull(V, nullptr, 10);
      if (RelayFlushEvery == 0) {
        // 0 is the internal "disabled" sentinel; an operator typing it
        // explicitly meant SOMETHING, and silently disabling the flush
        // trigger is the worst possible reading.
        std::fprintf(stderr, "--relay-flush-every must be > 0\n");
        return serveUsage(Argv[0]);
      }
    } else if (const char *V = valueOf("--relay-spill=")) {
      RelaySpill = V;
    } else if (Arg == "--policy") {
      Config.Policy.Enabled = true;
    } else if (const char *V = valueOf("--policy-widen-pct=")) {
      Config.Policy.Enabled = true;
      Config.Policy.Watcher.WidenThresholdPct = std::atof(V);
    } else if (const char *V = valueOf("--policy-retire-pct=")) {
      Config.Policy.Enabled = true;
      Config.Policy.Watcher.RetireThresholdPct = std::atof(V);
    } else if (const char *V = valueOf("--policy-epochs=")) {
      Config.Policy.Enabled = true;
      Config.Policy.Watcher.StableEpochs = std::atoi(V);
    } else if (const char *V = valueOf("--policy-widen-factor=")) {
      Config.Policy.Enabled = true;
      Config.Policy.Watcher.WidenFactor =
          static_cast<uint32_t>(std::atoi(V));
    } else if (const char *V = valueOf("--policy-base-interval=")) {
      Config.Policy.Enabled = true;
      Config.Policy.Watcher.BaseInterval = std::atoll(V);
    } else if (const char *V = valueOf("--serve-for-ms=")) {
      ServeForMs = std::atoll(V);
    } else if (Arg == "--quiet") {
      Config.LogToStderr = false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return serveUsage(Argv[0]);
    }
  }

  std::string Error;
  std::unique_ptr<profserve::Listener> L;
  if (!ListenShm.empty())
    L = shmem::listenShm(ListenShm, &Error);
  else
    L = profserve::listenTcp(Port, &Error);
  if (!L) {
    std::fprintf(stderr, "serve: %s\n", Error.c_str());
    return 1;
  }
  std::printf("profserve listening on %s\n", L->address().c_str());

  if (!RelayTo.empty()) {
    // Comma-separated ordered parent list: first is the primary, the
    // rest are failover backups (Client.h: the relay's upstream client
    // sticks to one parent and rotates on dial/handshake failure).
    std::vector<std::string> ParentAddrs;
    size_t Start = 0;
    while (Start <= RelayTo.size()) {
      size_t Comma = RelayTo.find(',', Start);
      if (Comma == std::string::npos)
        Comma = RelayTo.size();
      ParentAddrs.push_back(RelayTo.substr(Start, Comma - Start));
      Start = Comma + 1;
    }
    std::vector<profserve::Dialer> ParentDials;
    for (const std::string &Addr : ParentAddrs) {
      std::string Host;
      uint16_t UpPort = 0;
      if (!profserve::parseHostPort(Addr, &Host, &UpPort)) {
        std::fprintf(stderr,
                     "--relay-to expects host:port[,host:port...], got "
                     "\"%s\"\n",
                     RelayTo.c_str());
        return 1;
      }
      ParentDials.push_back(profserve::tcpDialer(Host, UpPort, 5000));
    }
    Config.Relay.Dial = ParentDials.front();
    Config.Relay.BackupDials.assign(ParentDials.begin() + 1,
                                    ParentDials.end());
    Config.Relay.Client.Name = "arsc-relay";
    // Dedup upstream keys on the session id, so it must be stable for
    // this relay and unique among the parent's children: derive it from
    // the bound listen address (stable when --listen is explicit).
    std::string Addr = L->address();
    Config.Relay.Client.SessionId =
        0x5E1A000000000000ULL | support::crc32(Addr.data(), Addr.size());
    Config.Relay.Client.SpillPath = RelaySpill;
    Config.Relay.FlushIntervalMs = RelayFlushIntervalMs;
    Config.Relay.FlushEveryMerges = RelayFlushEvery;
    std::printf("relaying upstream to %s (%zu backup parent(s); flush: "
                "every %llu merges / %d ms)\n",
                ParentAddrs.front().c_str(), ParentDials.size() - 1,
                static_cast<unsigned long long>(RelayFlushEvery),
                RelayFlushIntervalMs);
  }
  if (Config.Fingerprint)
    std::printf("pinned module fingerprint: %016llx\n",
                static_cast<unsigned long long>(Config.Fingerprint));
  if (!Config.JournalPath.empty())
    std::printf("write-ahead journal at %s (segments of %llu bytes%s)\n",
                Config.JournalPath.c_str(),
                static_cast<unsigned long long>(
                    Config.JournalMaxSegmentBytes),
                Config.JournalFsync ? "" : ", fsync OFF");
  if (Config.Policy.Enabled)
    std::printf("policy push-down enabled (wire v4): widen at %.2f%%, "
                "retire at %.2f%%, %d stable epochs, factor %u, base "
                "interval %lld\n",
                Config.Policy.Watcher.WidenThresholdPct,
                Config.Policy.Watcher.RetireThresholdPct,
                Config.Policy.Watcher.StableEpochs,
                static_cast<unsigned>(Config.Policy.Watcher.WidenFactor),
                static_cast<long long>(Config.Policy.Watcher.BaseInterval));
  std::fflush(stdout);

  profserve::ProfileServer Server(std::move(L), Config);
  Server.start();
  std::signal(SIGINT, handleServeSignal);
  std::signal(SIGTERM, handleServeSignal);

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(ServeForMs);
  while (!ServeInterrupted.load()) {
    if (ServeForMs >= 0 && std::chrono::steady_clock::now() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (ServeSignal.load() == SIGTERM && !DrainOnTerm &&
      !Config.JournalPath.empty()) {
    // Journaled default: every acked shard is already durable, so the
    // fastest correct SIGTERM is the abrupt one — the successor replays
    // the tail.  Orchestrators that want the farewell flush + snapshot
    // pass --drain-on-term.
    std::printf("SIGTERM: abrupt stop (the journal covers the tail; "
                "--drain-on-term drains instead)\n");
    Server.kill();
  } else {
    Server.stop();
  }

  profserve::ServerStats S = Server.stats();
  std::printf("profserve stopped: %llu frames, %llu bytes, %llu merges, "
              "%llu rejects, %llu shed, %llu duplicates, %llu epochs, "
              "%llu snapshots, %llu recovered, %llu pulls\n",
              static_cast<unsigned long long>(S.Frames),
              static_cast<unsigned long long>(S.Bytes),
              static_cast<unsigned long long>(S.Merges),
              static_cast<unsigned long long>(S.Rejects),
              static_cast<unsigned long long>(S.Shed),
              static_cast<unsigned long long>(S.Duplicates),
              static_cast<unsigned long long>(S.Epochs),
              static_cast<unsigned long long>(S.Snapshots),
              static_cast<unsigned long long>(S.Recovered),
              static_cast<unsigned long long>(S.Pulls));
  if (!Config.JournalPath.empty())
    std::printf("journal: %llu records, %llu syncs, %llu replayed, "
                "%llu failures\n",
                static_cast<unsigned long long>(S.JournalRecords),
                static_cast<unsigned long long>(S.JournalSyncs),
                static_cast<unsigned long long>(S.JournalReplayed),
                static_cast<unsigned long long>(S.JournalFailures));
  if (Server.isRelay())
    std::printf("relay: %llu batches, %llu upstream flushes, "
                "%llu upstream failures\n",
                static_cast<unsigned long long>(S.Batches),
                static_cast<unsigned long long>(S.RelayFlushes),
                static_cast<unsigned long long>(S.RelayFailures));
  if (Config.Policy.Enabled)
    std::printf("policy: %llu decisions, %llu pushes\n",
                static_cast<unsigned long long>(S.PolicyDecisions),
                static_cast<unsigned long long>(S.PolicyPushes));
  return 0;
}

/// Builds a TCP-backed client for --to=/--from= style options.
bool makeClient(const std::string &Addr, int TimeoutMs, int Retries,
                std::unique_ptr<profserve::ProfileClient> *Out,
                const char *Flag) {
  std::string Host;
  uint16_t Port = 0;
  if (!profserve::parseHostPort(Addr, &Host, &Port)) {
    std::fprintf(stderr, "%s expects host:port, got \"%s\"\n", Flag,
                 Addr.c_str());
    return false;
  }
  profserve::ClientConfig C;
  C.TimeoutMs = TimeoutMs;
  C.MaxRetries = Retries;
  *Out = std::make_unique<profserve::ProfileClient>(
      profserve::tcpDialer(Host, Port, TimeoutMs), C);
  return true;
}

int pushMain(int Argc, char **Argv) {
  std::string To, Shm;
  int TimeoutMs = 5000, Retries = 3;
  std::vector<std::string> Inputs;
  for (int A = 2; A < Argc; ++A) {
    std::string Arg = Argv[A];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--to="))
      To = V;
    else if (const char *V = valueOf("--shm="))
      Shm = V;
    else if (const char *V = valueOf("--timeout-ms="))
      TimeoutMs = std::atoi(V);
    else if (const char *V = valueOf("--retries="))
      Retries = std::atoi(V);
    else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s push --to=<host:port>|--shm=<dir> "
                   "[--timeout-ms=<n>] [--retries=<n>] <file.arsp...>\n",
                   Argv[0]);
      return 2;
    } else
      Inputs.push_back(Arg);
  }
  if ((To.empty() == Shm.empty()) || Inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s push --to=<host:port>|--shm=<dir> "
                 "<file.arsp...>\n",
                 Argv[0]);
    return 2;
  }
  std::unique_ptr<profserve::ProfileClient> Client;
  if (!Shm.empty()) {
    profserve::ClientConfig C;
    C.TimeoutMs = TimeoutMs;
    C.MaxRetries = Retries;
    Client = std::make_unique<profserve::ProfileClient>(
        shmem::shmDialer(Shm), C);
  } else if (!makeClient(To, TimeoutMs, Retries, &Client, "--to="))
    return 2;
  for (const std::string &Path : Inputs) {
    // Validate locally first: a corrupt shard should fail here with the
    // decoder's diagnostic, not travel to the server to be bounced.
    profstore::DecodeResult R = loadOrDie(Path, 0);
    profserve::ClientResult P =
        Client->push(R.Bundle, R.Fingerprint);
    if (!P.Ok) {
      std::fprintf(stderr, "push %s: %s\n", Path.c_str(), P.Error.c_str());
      return 1;
    }
    std::printf("pushed %s (server total: %llu shards)\n", Path.c_str(),
                static_cast<unsigned long long>(
                    Client->lastServerMerges()));
  }
  return 0;
}

int pullMain(int Argc, char **Argv) {
  std::string From, OutPath;
  bool ShowStats = false, RequestSnapshot = false;
  int TimeoutMs = 5000, Retries = 3;
  for (int A = 2; A < Argc; ++A) {
    std::string Arg = Argv[A];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--from="))
      From = V;
    else if (const char *V = valueOf("--out="))
      OutPath = V;
    else if (Arg == "--stats")
      ShowStats = true;
    else if (Arg == "--snapshot")
      RequestSnapshot = true;
    else if (const char *V = valueOf("--timeout-ms="))
      TimeoutMs = std::atoi(V);
    else if (const char *V = valueOf("--retries="))
      Retries = std::atoi(V);
    else {
      std::fprintf(stderr,
                   "usage: %s pull --from=<host:port> [--out=<f.arsp>] "
                   "[--stats] [--snapshot]\n",
                   Argv[0]);
      return 2;
    }
  }
  if (From.empty() || (OutPath.empty() && !ShowStats && !RequestSnapshot)) {
    std::fprintf(stderr,
                 "usage: %s pull --from=<host:port> [--out=<f.arsp>] "
                 "[--stats] [--snapshot]\n",
                 Argv[0]);
    return 2;
  }
  std::unique_ptr<profserve::ProfileClient> Client;
  if (!makeClient(From, TimeoutMs, Retries, &Client, "--from="))
    return 2;
  if (!OutPath.empty()) {
    profserve::ProfileClient::PullResult R = Client->pull();
    if (!R.Ok) {
      std::fprintf(stderr, "pull: %s\n", R.Error.c_str());
      return 1;
    }
    std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
    if (!Out || !Out.write(R.RawBytes.data(),
                           static_cast<std::streamsize>(
                               R.RawBytes.size()))) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    std::printf("pulled merged profile into %s (fingerprint %016llx)\n",
                OutPath.c_str(),
                static_cast<unsigned long long>(R.Fingerprint));
  }
  if (RequestSnapshot) {
    std::string Path;
    profserve::ClientResult R = Client->snapshot(&Path);
    if (!R.Ok) {
      std::fprintf(stderr, "snapshot: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("server snapshotted to %s\n", Path.c_str());
  }
  if (ShowStats) {
    profserve::ProfileClient::StatsResult R = Client->stats();
    if (!R.Ok) {
      std::fprintf(stderr, "stats: %s\n", R.Error.c_str());
      return 1;
    }
    const profserve::StatsMsg &S = R.Stats;
    std::printf("frames             : %llu\n",
                static_cast<unsigned long long>(S.Frames));
    std::printf("bytes              : %llu\n",
                static_cast<unsigned long long>(S.Bytes));
    std::printf("merges             : %llu\n",
                static_cast<unsigned long long>(S.Merges));
    std::printf("rejects            : %llu\n",
                static_cast<unsigned long long>(S.Rejects));
    std::printf("shed               : %llu\n",
                static_cast<unsigned long long>(S.Shed));
    std::printf("duplicates         : %llu\n",
                static_cast<unsigned long long>(S.Duplicates));
    std::printf("recovered          : %llu\n",
                static_cast<unsigned long long>(S.Recovered));
    std::printf("active connections : %llu\n",
                static_cast<unsigned long long>(S.ActiveConnections));
    std::printf("epochs             : %llu\n",
                static_cast<unsigned long long>(S.Epochs));
    std::printf("snapshots          : %llu\n",
                static_cast<unsigned long long>(S.Snapshots));
    std::printf("pulls              : %llu\n",
                static_cast<unsigned long long>(S.Pulls));
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// `arsc chaos` — the seeded fault-injection harness (src/faultinject)
// from the command line, for CI and for replaying a failing seed.
//===----------------------------------------------------------------------===//

int chaosUsage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s chaos [options]\n"
      "Drives N hardened clients against a collection server while a\n"
      "seeded fault plan drops connections, tears and corrupts frames and\n"
      "breaks snapshot I/O, then checks the merged bundle is\n"
      "byte-identical to the fault-free serial fold and that the same\n"
      "seed replays the identical fault trace.\n"
      "options:\n"
      "  --fault-seed=<n>        run one seed and print its report\n"
      "  --fault-seed-sweep=<n>  run seeds 0..n-1, each twice (replay\n"
      "                          determinism check); default 8\n"
      "  --clients=<n>           concurrent pusher threads (default 6)\n"
      "  --shards=<n>            shards per client (default 12)\n"
      "  --quick                 smaller run (3 clients x 4 shards)\n"
      "  --topology=<t>          direct (default): clients push straight\n"
      "                          at the server; relay: clients -> relay\n"
      "                          -> root with faults on BOTH hops, root\n"
      "                          must still match the serial fold\n"
      "  --transport=<t>         loopback (default) or shm: push over\n"
      "                          shared-memory ring segments and enable\n"
      "                          the ring-only faults (torn cell commits,\n"
      "                          crashed/abandoned writers); direct\n"
      "                          topology only\n"
      "  --policy                closed-loop policy push-down under fire:\n"
      "                          wave-structured pushes, the watcher\n"
      "                          decides every epoch and POLICY frames\n"
      "                          ride the same faulted transports; a\n"
      "                          dropped/corrupt frame must only degrade\n"
      "                          a client to its static interval, the\n"
      "                          aggregate must still match the serial\n"
      "                          fold and frame/version counts must\n"
      "                          replay (loopback transport only)\n"
      "  --crash                 kill-and-restart chaos: the root runs\n"
      "                          with a write-ahead journal and a seeded\n"
      "                          crash schedule kills it at journal crash\n"
      "                          points (before/after append, mid\n"
      "                          rotation, mid checkpoint); a recovered\n"
      "                          replacement takes over mid-sweep and the\n"
      "                          final bundle must still match the fold\n"
      "                          exactly (each seed runs once: restart\n"
      "                          timing is wall-clock, traces don't\n"
      "                          replay); not with --policy\n"
      "  --trace                 print the fault trace (single-seed mode)\n"
      "  --workdir=<dir>         scratch dir for spill/snapshot files\n"
      "                          (default: a fresh dir under /tmp)\n"
      "Both --opt=value and --opt value forms are accepted.\n",
      Prog);
  return 2;
}

int chaosMain(int Argc, char **Argv) {
  faultinject::ChaosConfig C;
  bool Sweep = true, Trace = false;
  uint64_t SweepSeeds = 8;
  for (int A = 2; A < Argc; ++A) {
    std::string Arg = Argv[A];
    // Accept both `--opt=value` and `--opt value`.
    auto valueOf = [&](const char *Name) -> const char * {
      size_t Len = std::strlen(Name);
      if (Arg.compare(0, Len, Name) != 0)
        return nullptr;
      if (Arg.size() > Len && Arg[Len] == '=')
        return Arg.c_str() + Len + 1;
      if (Arg.size() == Len && A + 1 < Argc)
        return Argv[++A];
      return nullptr;
    };
    if (const char *V = valueOf("--fault-seed")) {
      C.FaultSeed = std::strtoull(V, nullptr, 10);
      Sweep = false;
    } else if (const char *V = valueOf("--fault-seed-sweep")) {
      SweepSeeds = std::strtoull(V, nullptr, 10);
      Sweep = true;
    } else if (const char *V = valueOf("--clients")) {
      C.Clients = std::atoi(V);
    } else if (const char *V = valueOf("--shards")) {
      C.ShardsPerClient = std::atoi(V);
    } else if (const char *V = valueOf("--workdir")) {
      C.WorkDir = V;
    } else if (const char *V = valueOf("--topology")) {
      std::string T = V;
      if (T == "direct") {
        C.Topo = faultinject::Topology::Direct;
      } else if (T == "relay") {
        C.Topo = faultinject::Topology::Relay;
      } else {
        std::fprintf(stderr, "unknown topology: %s\n", T.c_str());
        return chaosUsage(Argv[0]);
      }
    } else if (const char *V = valueOf("--transport")) {
      std::string T = V;
      if (T == "loopback") {
        C.Transport = faultinject::ChaosTransport::Loopback;
      } else if (T == "shm") {
        C.Transport = faultinject::ChaosTransport::Shm;
        // The point of a shm chaos run is the ring-only failure shapes;
        // give them real probability mass alongside the generic faults.
        C.Plan.RingTearPct = 4;
        C.Plan.RingAbandonPct = 3;
      } else {
        std::fprintf(stderr, "unknown transport: %s\n", T.c_str());
        return chaosUsage(Argv[0]);
      }
    } else if (Arg == "--policy") {
      C.Policy = true;
    } else if (Arg == "--crash") {
      C.Crash = true;
    } else if (Arg == "--quick") {
      C.Clients = 3;
      C.ShardsPerClient = 4;
    } else if (Arg == "--trace") {
      Trace = true;
    } else {
      if (Arg != "--help")
        std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return chaosUsage(Argv[0]);
    }
  }
  if (Argc < 3)
    return chaosUsage(Argv[0]);
  if (C.WorkDir.empty())
    // A per-process scratch dir so concurrent chaos runs (ctest, CI
    // shards) never fight over spill/snapshot file names.
    C.WorkDir = support::formatString(
        "/tmp/arsc-chaos-%ld", static_cast<long>(::getpid()));
  // User-supplied dirs too: a missing workdir would silently strand
  // every spill/snapshot/journal write and void what the run checks.
  if (::mkdir(C.WorkDir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "chaos: cannot create %s: %s\n",
                 C.WorkDir.c_str(), std::strerror(errno));
    return 1;
  }

  if (Sweep) {
    std::printf("chaos sweep: %llu seeds x %d runs%s, %d clients x %d "
                "shards, workdir %s\n",
                static_cast<unsigned long long>(SweepSeeds),
                C.Crash ? 1 : 2, C.Crash ? " (crash/restart)" : "",
                C.Clients, C.ShardsPerClient, C.WorkDir.c_str());
    std::fflush(stdout);
    bool Ok = faultinject::chaosSweep(C, SweepSeeds, /*Verbose=*/true);
    std::printf("chaos sweep: %s\n", Ok ? "ALL SEEDS PASSED" : "FAILED");
    return Ok ? 0 : 1;
  }

  faultinject::ChaosReport R = faultinject::runChaos(C);
  if (Trace)
    std::fputs(R.Trace.c_str(), stdout);
  std::printf("chaos seed %llu: %s — %llu/%llu shards merged, %llu "
              "faults injected, %llu duplicate acks, %llu spills\n",
              static_cast<unsigned long long>(C.FaultSeed),
              R.Ok ? "ok" : R.Error.c_str(),
              static_cast<unsigned long long>(R.Merges),
              static_cast<unsigned long long>(R.ExpectedShards),
              static_cast<unsigned long long>(R.FaultsInjected),
              static_cast<unsigned long long>(R.Duplicates),
              static_cast<unsigned long long>(R.Spills));
  if (C.Topo == faultinject::Topology::Relay)
    std::printf("  relay root: %llu delta merges, %llu duplicate "
                "deltas\n",
                static_cast<unsigned long long>(R.RootMerges),
                static_cast<unsigned long long>(R.RootDuplicates));
  if (C.Crash)
    std::printf("  crash: %llu kill/restart cycles, %llu journaled "
                "shards replayed\n",
                static_cast<unsigned long long>(R.Crashes),
                static_cast<unsigned long long>(R.Replayed));
  return R.Ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// arsc bench: run the bench matrix, merge per-bench telemetry JSON into
// BENCH_<sha>.json; `arsc bench compare` gates a run against a baseline.
// ---------------------------------------------------------------------------

int benchUsage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s bench [--quick] [--scale=<pct>] [--jobs=<n>] [--reps=<n>]\n"
      "          [--bench-dir=<dir>] [--out-dir=<dir>] [--sha=<sha>]\n"
      "          [--only=<substring>] [--list]\n"
      "       %s bench compare <baseline.json> <current.json>\n"
      "          [--mad-k=<f>] [--rel-floor=<pct>] [--host-rel-floor=<pct>]\n"
      "          [--gate-host] [--verbose]\n",
      Prog, Prog);
  return 2;
}

/// Directory holding the bench binaries: --bench-dir if given, else
/// `<dir-of-arsc>/../bench` (the build-tree layout).
std::string defaultBenchDir(const char *Argv0) {
  std::string Self = Argv0 ? Argv0 : "";
  size_t Slash = Self.rfind('/');
  if (Slash == std::string::npos)
    return "bench";
  return Self.substr(0, Slash) + "/../bench";
}

int benchMain(int Argc, char **Argv) {
  const char *Prog = Argv[0];
  if (Argc >= 3 && std::strcmp(Argv[2], "compare") == 0) {
    std::vector<std::string> Args;
    for (int I = 3; I < Argc; ++I)
      Args.push_back(Argv[I]);
    return telemetry::runPerfGateCli(Args, "arsc bench compare");
  }

  bool Quick = false, List = false;
  int ScalePct = 100, Jobs = 1, Reps = 5;
  std::string BenchDir = defaultBenchDir(Prog);
  std::string OutDir = "bench-out";
  std::string Sha = telemetry::gitSha();
  std::string Only;
  for (int I = 2; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--quick") == 0) {
      Quick = true;
      ScalePct = 15;
    } else if (std::strncmp(Arg, "--scale=", 8) == 0) {
      ScalePct = std::atoi(Arg + 8);
      if (ScalePct < 1)
        ScalePct = 1;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      Jobs = std::atoi(Arg + 7);
      if (Jobs < 1)
        Jobs = 1;
    } else if (std::strncmp(Arg, "--reps=", 7) == 0) {
      Reps = std::atoi(Arg + 7);
      if (Reps < 2)
        Reps = 2;
    } else if (std::strncmp(Arg, "--bench-dir=", 12) == 0) {
      BenchDir = Arg + 12;
    } else if (std::strncmp(Arg, "--out-dir=", 10) == 0) {
      OutDir = Arg + 10;
    } else if (std::strncmp(Arg, "--sha=", 6) == 0) {
      Sha = Arg + 6;
    } else if (std::strncmp(Arg, "--only=", 7) == 0) {
      Only = Arg + 7;
    } else if (std::strcmp(Arg, "--list") == 0) {
      List = true;
    } else {
      std::fprintf(stderr, "%s bench: unknown argument '%s'\n", Prog, Arg);
      return benchUsage(Prog);
    }
  }

  std::string Error;
  std::vector<telemetry::BenchBinary> Benches =
      telemetry::discoverBenches(BenchDir, &Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "%s bench: %s\n", Prog, Error.c_str());
    return 2;
  }
  if (!Only.empty()) {
    std::vector<telemetry::BenchBinary> Filtered;
    for (telemetry::BenchBinary &B : Benches)
      if (B.Name.find(Only) != std::string::npos)
        Filtered.push_back(std::move(B));
    Benches = std::move(Filtered);
  }
  if (Benches.empty()) {
    std::fprintf(stderr, "%s bench: no bench binaries in %s%s\n", Prog,
                 BenchDir.c_str(),
                 Only.empty() ? "" : (" matching '" + Only + "'").c_str());
    return 2;
  }
  if (List) {
    for (const telemetry::BenchBinary &B : Benches)
      std::printf("%-24s %s\n", B.Name.c_str(), B.Path.c_str());
    return 0;
  }

  if (::mkdir(OutDir.c_str(), 0775) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "%s bench: cannot create %s: %s\n", Prog,
                 OutDir.c_str(), std::strerror(errno));
    return 2;
  }

  // Run the matrix sequentially — each bench fans its own cells out over
  // --jobs workers through the ParallelRunner, so running two benches at
  // once would just oversubscribe the machine and inflate host timings.
  std::vector<telemetry::BenchReport> Reports;
  int Failures = 0;
  for (const telemetry::BenchBinary &B : Benches) {
    std::string JsonPath = OutDir + "/" + B.Name + ".json";
    std::string Cmd = "'" + B.Path + "'" +
                      (Quick ? " --quick" : " --scale=" +
                                                std::to_string(ScalePct)) +
                      " --jobs=" + std::to_string(Jobs) +
                      " --reps=" + std::to_string(Reps) + " --json='" +
                      JsonPath + "'";
    std::printf("=== [%s] %s\n", B.Name.c_str(), Cmd.c_str());
    std::fflush(stdout);
    int Rc = std::system(Cmd.c_str());
    int Exit = WIFEXITED(Rc) ? WEXITSTATUS(Rc) : 128;
    if (Exit != 0) {
      std::fprintf(stderr, "%s bench: %s exited with %d\n", Prog,
                   B.Name.c_str(), Exit);
      ++Failures;
      continue;
    }
    std::string Text;
    if (!readFile(JsonPath, &Text)) {
      std::fprintf(stderr, "%s bench: %s produced no report at %s\n", Prog,
                   B.Name.c_str(), JsonPath.c_str());
      ++Failures;
      continue;
    }
    telemetry::BenchReport Report;
    if (!telemetry::BenchReport::fromJson(Text, &Report, &Error)) {
      std::fprintf(stderr, "%s bench: %s: %s\n", Prog, JsonPath.c_str(),
                   Error.c_str());
      ++Failures;
      continue;
    }
    Reports.push_back(std::move(Report));
  }
  if (Failures != 0) {
    std::fprintf(stderr, "%s bench: %d bench(es) failed; not writing the "
                         "suite report\n",
                 Prog, Failures);
    return 1;
  }

  telemetry::SuiteReport Suite;
  if (!telemetry::mergeReports(Reports, Sha,
                               telemetry::captureEnv(ScalePct, Jobs),
                               &Suite, &Error)) {
    std::fprintf(stderr, "%s bench: %s\n", Prog, Error.c_str());
    return 1;
  }
  std::string SuitePath = OutDir + "/BENCH_" + Sha + ".json";
  std::ofstream Out(SuitePath, std::ios::binary | std::ios::trunc);
  Out << Suite.toJson();
  Out.flush();
  if (!Out) {
    std::fprintf(stderr, "%s bench: cannot write %s\n", Prog,
                 SuitePath.c_str());
    return 1;
  }
  size_t Metrics = 0;
  for (const auto &[Name, Report] : Suite.Benches)
    Metrics += Report.metrics().size();
  std::printf("\nwrote %s: %zu benches, %zu metrics (sha %s, scale %d%%, "
              "jobs %d, reps %d)\n",
              SuitePath.c_str(), Suite.Benches.size(), Metrics, Sha.c_str(),
              ScalePct, Jobs, Reps);
  return 0;
}

int versionMain() {
  std::printf("arsc — Arnold-Ryder instrumentation sampling framework\n");
  std::printf(".arsp profile format version : %u\n",
              profstore::FormatVersion);
  std::printf("profserve wire version       : %u\n",
              profserve::WireVersion);
  std::printf("built with                   : %s (C++%ld)\n", __VERSION__,
              (__cplusplus / 100) % 100);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && (std::strcmp(Argv[1], "--version") == 0 ||
                    std::strcmp(Argv[1], "version") == 0))
    return versionMain();
  if (Argc >= 2 && std::strcmp(Argv[1], "profile") == 0)
    return profileMain(Argc, Argv);
  if (Argc >= 2 && std::strcmp(Argv[1], "serve") == 0)
    return serveMain(Argc, Argv);
  if (Argc >= 2 && std::strcmp(Argv[1], "push") == 0)
    return pushMain(Argc, Argv);
  if (Argc >= 2 && std::strcmp(Argv[1], "pull") == 0)
    return pullMain(Argc, Argv);
  if (Argc >= 2 && std::strcmp(Argv[1], "chaos") == 0)
    return chaosMain(Argc, Argv);
  if (Argc >= 2 && std::strcmp(Argv[1], "bench") == 0)
    return benchMain(Argc, Argv);

  CliOptions Opts;
  if (!parseArgs(Argc, Argv, &Opts))
    return usage(Argv[0]);

  std::string Source;
  if (!readFile(Opts.File, &Source)) {
    std::fprintf(stderr, "cannot read %s\n", Opts.File.c_str());
    return 1;
  }
  harness::BuildResult Build;
  bool IsAssembly = Opts.File.size() > 4 &&
                    Opts.File.compare(Opts.File.size() - 4, 4, ".bca") == 0;
  if (IsAssembly) {
    // Textual bytecode: assemble, lower, clean (and optionally optimize).
    bytecode::AssembleResult A = bytecode::assemble(Source);
    if (!A.Ok) {
      std::fprintf(stderr, "%s: %s\n", Opts.File.c_str(), A.Error.c_str());
      return 1;
    }
    lowering::LowerModuleResult L = lowering::lowerModule(A.M);
    if (!L.Ok) {
      std::fprintf(stderr, "%s: %s\n", Opts.File.c_str(), L.Error.c_str());
      return 1;
    }
    Build.P.M = std::move(A.M);
    Build.P.Funcs = std::move(L.Funcs);
    for (ir::IRFunction &F : Build.P.Funcs) {
      lowering::cleanupFunction(F);
      if (Opts.Optimize)
        opt::optimizeFunction(F);
    }
    Build.Ok = true;
  } else {
    harness::BuildOptions BOpts;
    BOpts.Optimize = Opts.Optimize;
    Build = harness::buildProgram(Source, BOpts);
  }
  if (!Build.Ok) {
    std::fprintf(stderr, "%s: %s\n", Opts.File.c_str(),
                 Build.Error.c_str());
    return 1;
  }
  const harness::Program &P = Build.P;

  if (Opts.Command == "dump-bc") {
    std::fputs(bytecode::disassembleModule(P.M).c_str(), stdout);
    return 0;
  }
  if (Opts.Command == "dump-ir") {
    for (const ir::IRFunction &F : P.Funcs)
      std::fputs(ir::printFunction(F).c_str(), stdout);
    return 0;
  }

  ClientSet Set;
  std::vector<const instr::Instrumentation *> Clients;
  if (!Set.resolve(Opts.Clients, &Clients))
    return 2;

  if (Opts.Command == "dump-transformed") {
    sampling::Options TOpts;
    TOpts.M = Opts.Mode;
    TOpts.YieldpointOpt = Opts.YieldpointOpt;
    TOpts.BurstLength = Opts.Burst;
    harness::InstrumentedProgram IP =
        harness::instrumentProgram(P, Clients, TOpts);
    for (const ir::IRFunction &F : IP.Funcs)
      std::fputs(ir::printFunction(F).c_str(), stdout);
    std::printf("; code size %d -> %d instructions\n", IP.CodeSizeBefore,
                IP.CodeSizeAfter);
    return 0;
  }

  if (Opts.Command == "sweep") {
    // Mode x interval matrix driven through the parallel runner: cell 0
    // is the baseline, cell 1 the exhaustive (perfect) profile, then one
    // cell per (mode, interval).  Results are in cell order, so the
    // printed table is identical for every --jobs value.
    const std::vector<sampling::Mode> Modes = {
        sampling::Mode::FullDuplication, sampling::Mode::PartialDuplication,
        sampling::Mode::Combined, sampling::Mode::NoDuplication};
    const std::vector<int64_t> Intervals = {0, 1, 10, 100, 1000, 10000};

    harness::RunMatrix M;
    auto addCell = [&](sampling::Mode Mode, int64_t Interval) {
      CliOptions CellOpts = Opts;
      CellOpts.Mode = Mode;
      CellOpts.Interval = Interval;
      harness::MatrixCell MC;
      MC.Prog = &P;
      MC.ScaleArg = Opts.Arg;
      MC.Config = makeConfig(CellOpts, Clients);
      M.Cells.push_back(std::move(MC));
    };
    addCell(sampling::Mode::Baseline, 0);
    addCell(sampling::Mode::Exhaustive, 0);
    for (sampling::Mode Mode : Modes)
      for (int64_t Interval : Intervals)
        addCell(Mode, Interval);

    std::vector<harness::ExperimentResult> Results =
        harness::runMatrix(M, Opts.Jobs);
    for (const harness::ExperimentResult &R : Results)
      if (!R.Stats.Ok) {
        std::fprintf(stderr, "runtime error: %s\n", R.Stats.Error.c_str());
        return 1;
      }
    const harness::ExperimentResult &Base = Results[0];
    const harness::ExperimentResult &Perfect = Results[1];

    std::printf("baseline cycles : %llu   (%zu cells, %d jobs)\n",
                static_cast<unsigned long long>(Base.Stats.Cycles),
                M.Cells.size(), Opts.Jobs);
    support::TablePrinter T({"Mode", "Interval", "Overhead (%)",
                             "Samples", "Call-Edge Acc (%)"});
    for (size_t MI = 0; MI != Modes.size(); ++MI)
      for (size_t II = 0; II != Intervals.size(); ++II) {
        const harness::ExperimentResult &R =
            Results[2 + MI * Intervals.size() + II];
        T.beginRow();
        T.cell(sampling::modeName(Modes[MI]));
        T.cellInt(Intervals[II]);
        T.cellPercent(harness::overheadPct(Base, R));
        T.cellInt(static_cast<int64_t>(R.samplesTaken()));
        T.cellPercent(profile::overlapPercent(Perfect.Profiles.CallEdges,
                                              R.Profiles.CallEdges));
      }
    T.print();
    return 0;
  }

  if (Opts.Command == "run" || Opts.Command == "overhead") {
    harness::RunConfig Config = makeConfig(Opts, Clients);
    harness::ExperimentResult R =
        harness::runExperiment(P, Opts.Arg, Config);
    if (!R.Stats.Ok) {
      std::fprintf(stderr, "runtime error: %s\n", R.Stats.Error.c_str());
      return 1;
    }
    if (Opts.Command == "overhead") {
      harness::ExperimentResult Base = harness::runBaseline(P, Opts.Arg);
      if (!Base.Stats.Ok) {
        std::fprintf(stderr, "baseline error: %s\n",
                     Base.Stats.Error.c_str());
        return 1;
      }
      std::printf("mode            : %s\n", sampling::modeName(Opts.Mode));
      std::printf("baseline cycles : %llu\n",
                  static_cast<unsigned long long>(Base.Stats.Cycles));
      std::printf("overhead        : %.2f%%\n",
                  harness::overheadPct(Base, R));
    }
    printStats(R.Stats);
    if (!Opts.ProfileOut.empty()) {
      std::string Error;
      uint64_t Fingerprint = harness::programHash(P);
      if (!profstore::saveBundle(Opts.ProfileOut, R.Profiles, Fingerprint,
                                 &Error)) {
        std::fprintf(stderr, "%s\n", Error.c_str());
        return 1;
      }
      std::printf("profile written  : %s (fingerprint %016llx)\n",
                  Opts.ProfileOut.c_str(),
                  static_cast<unsigned long long>(Fingerprint));
    }
    if (!Opts.PushTo.empty() || !Opts.PushShm.empty()) {
      const std::string &Dest =
          Opts.PushShm.empty() ? Opts.PushTo : Opts.PushShm;
      std::unique_ptr<profserve::ProfileClient> Client;
      if (!Opts.PushShm.empty()) {
        profserve::ClientConfig CC;
        CC.TimeoutMs = 5000;
        CC.MaxRetries = 3;
        Client = std::make_unique<profserve::ProfileClient>(
            shmem::shmDialer(Opts.PushShm), CC);
      } else if (!makeClient(Opts.PushTo, 5000, 3, &Client, "--push-to="))
        return 2;
      profserve::ClientResult PR =
          Client->push(R.Profiles, harness::programHash(P));
      if (!PR.Ok) {
        std::fprintf(stderr, "push to %s: %s\n", Dest.c_str(),
                     PR.Error.c_str());
        return 1;
      }
      std::printf("profile pushed   : %s (server total: %llu shards)\n",
                  Dest.c_str(),
                  static_cast<unsigned long long>(
                      Client->lastServerMerges()));
    }
    if (Opts.ShowProfiles) {
      std::printf("\ncall edges:\n%s",
                  profile::dumpCallEdges(P.M, R.Profiles.CallEdges, 20)
                      .c_str());
      std::printf("\nfield accesses:\n%s",
                  profile::dumpFieldAccesses(P.M, R.Profiles.FieldAccesses)
                      .c_str());
    }
    return 0;
  }

  return usage(Argv[0]);
}
