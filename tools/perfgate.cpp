//===- tools/perfgate.cpp - Standalone perf-regression gate ---*- C++ -*-===//
///
/// \file
/// Thin wrapper over telemetry::runPerfGateCli so CI can diff two bench
/// suite documents without going through `arsc bench compare`:
///
///   perfgate <baseline.json> <current.json> [--mad-k=<f>]
///            [--rel-floor=<pct>] [--host-rel-floor=<pct>] [--gate-host]
///            [--verbose]
///
/// Exit 0 on pass, 1 on regression (or lost metric coverage), 2 on
/// usage or load errors.
///
//===----------------------------------------------------------------------===//

#include "telemetry/PerfGate.h"

#include <string>
#include <vector>

int main(int Argc, char **Argv) {
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I)
    Args.push_back(Argv[I]);
  return ars::telemetry::runPerfGateCli(Args, Argv[0] ? Argv[0]
                                                      : "perfgate");
}
