//===- tests/test_adaptive.cpp - adaptive controller tests ----*- C++ -*-===//

#include "adaptive/Controller.h"
#include "support/Support.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

profile::CallEdgeKey edgeTo(int Callee, int Site = 0) {
  profile::CallEdgeKey K;
  K.Caller = 0;
  K.Site = Site;
  K.Callee = Callee;
  return K;
}

TEST(HotSelection, ThresholdAndCap) {
  profile::CallEdgeProfile P;
  P.record(edgeTo(1), 60);
  P.record(edgeTo(2), 25);
  P.record(edgeTo(3), 10);
  P.record(edgeTo(4), 5);

  auto Hot = adaptive::selectHotFunctions(P, 8.0, 10);
  EXPECT_EQ(Hot, (std::vector<int>{1, 2, 3})) << "4 is below threshold";

  auto Capped = adaptive::selectHotFunctions(P, 1.0, 2);
  EXPECT_EQ(Capped, (std::vector<int>{1, 2}));

  auto None = adaptive::selectHotFunctions(P, 99.0, 10);
  EXPECT_TRUE(None.empty());
}

TEST(HotSelection, AggregatesAcrossCallSites) {
  profile::CallEdgeProfile P;
  P.record(edgeTo(7, 1), 30);
  P.record(edgeTo(7, 2), 30);
  P.record(edgeTo(8, 3), 40);
  auto Hot = adaptive::selectHotFunctions(P, 10.0, 10);
  ASSERT_EQ(Hot.size(), 2u);
  EXPECT_EQ(Hot[0], 7) << "two 30% sites make function 7 the hottest";
}

TEST(HotSelection, EmptyProfile) {
  profile::CallEdgeProfile P;
  EXPECT_TRUE(adaptive::selectHotFunctions(P, 1.0, 10).empty());
}

TEST(EngineOptScale, OptimizedFunctionsRunFaster) {
  harness::Program P = build(R"(
    int hot(int x) { return (x * 3 + 1) & 65535; }
    int main(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) { acc = (acc + hot(i)) & 65535; }
      return acc;
    }
  )");
  auto Plain = harness::runBaseline(P, 5000);
  harness::RunConfig Opt;
  Opt.Engine.OptimizedFuncs.assign(P.Funcs.size(), 0);
  Opt.Engine.OptimizedFuncs[P.M.functionByName("hot")->FuncId] = 1;
  Opt.Engine.OptimizedCostPct = 50;
  auto Fast = harness::runExperiment(P, 5000, Opt);
  ASSERT_TRUE(Plain.Stats.Ok && Fast.Stats.Ok);
  EXPECT_EQ(Plain.Stats.MainResult, Fast.Stats.MainResult);
  EXPECT_LT(Fast.Stats.Cycles, Plain.Stats.Cycles);
  // hot() is a decent share of the run, so the win must be substantial.
  EXPECT_LT(Fast.Stats.Cycles, Plain.Stats.Cycles * 95 / 100);
}

class AdaptiveScenarioTest
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(AdaptiveScenarioTest, SampledSelectionMatchesOracleAndSpeedsUp) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  adaptive::ControllerConfig Config;
  Config.SampleInterval = 50;
  Config.HotThresholdPct = 5.0;
  Config.MaxOptimized = 3;

  adaptive::AdaptiveOutcome Out =
      adaptive::runAdaptiveScenario(P, W.SmokeScale * 4, Config);
  ASSERT_TRUE(Out.Ok) << W.Name << ": " << Out.Error;

  // The deployed run must not be slower than baseline, and must be
  // faster whenever something was optimized.
  EXPECT_LE(Out.DeployedCycles, Out.BaselineCycles) << W.Name;
  if (!Out.HotFunctions.empty()) {
    EXPECT_LT(Out.DeployedCycles, Out.BaselineCycles) << W.Name;
  }

  // Sampled profiling must not cost meaningfully more than exhaustive
  // profiling (for call-light workloads such as db the two are close;
  // for the call-heavy ones sampling is far cheaper, which the strict
  // comparison below captures on the suite's expensive half).
  EXPECT_LT(Out.ProfiledRunCycles,
            Out.ExhaustiveRunCycles + Out.BaselineCycles / 20)
      << W.Name;
  double ExhaustivePct = support::percentOver(
      static_cast<double>(Out.BaselineCycles),
      static_cast<double>(Out.ExhaustiveRunCycles));
  if (ExhaustivePct > 50.0) {
    EXPECT_LT(Out.ProfiledRunCycles, Out.ExhaustiveRunCycles) << W.Name;
  }

  // The paper's pitch: sampled profiles are accurate enough to drive
  // optimization.  Near-equal hotness makes rank order between sampled
  // and oracle selections tie-unstable, so the robust property is that
  // every sampled pick is genuinely hot according to the oracle profile.
  EXPECT_EQ(Out.HotFunctions.empty(), Out.OracleFunctions.empty())
      << W.Name;
  for (int F : Out.HotFunctions) {
    auto It = Out.OracleShares.find(F);
    ASSERT_NE(It, Out.OracleShares.end()) << W.Name;
    EXPECT_GE(It->second, Config.HotThresholdPct * 0.5)
        << W.Name << " picked function " << F
        << " that the oracle considers cold";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AdaptiveScenarioTest,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
