//===- tests/RandomProgram.h - Random MiniJ program generator -*- C++ -*-===//
///
/// \file
/// Generates random, guaranteed-terminating MiniJ programs for
/// property-based testing of the whole pipeline: every generated program
/// compiles, verifies, runs within a bounded cycle budget, and must behave
/// identically under every sampling transform.
///
/// Construction rules that guarantee safety:
///  * loops are counted for-loops with small constant bounds;
///  * divisions and remainders always add 1 + masked value to the divisor;
///  * array indices are masked by the (power-of-two) array length;
///  * the call graph is acyclic (functions only call lower-numbered
///    functions), and helpers never call from inside their loops, so the
///    total call count stays polynomial;
///  * objects and arrays are allocated once in main and shared through
///    globals, so the heap stays bounded;
///  * every value is masked, so no signed overflow.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_TESTS_RANDOMPROGRAM_H
#define ARS_TESTS_RANDOMPROGRAM_H

#include "support/Support.h"

#include <string>
#include <vector>

namespace ars {
namespace testutil {

/// Random program generator with a fixed seed.
class RandomProgramGenerator {
public:
  explicit RandomProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  /// Generates a full program with 2-5 helper functions, one class, one
  /// global, and a main(int n) driving everything.
  std::string generate();

private:
  support::Xorshift64 Rng;
  int TmpCounter = 0;
  int FuncCount = 0;
  bool InHelper = false;
  /// Remaining helper-call statements for the function being generated.
  /// Helpers get 2, main gets 6: with an acyclic call graph this bounds
  /// the dynamic call count by 2^helpers per main-level call.
  int CallBudget = 0;

  std::string freshVar() {
    // 'v' not "v": prepending a literal trips GCC 12's -Wrestrict
    // false-positive at -O3 (PR105329); the char overload does not.
    return 'v' + std::to_string(TmpCounter++);
  }

  /// An int expression over the in-scope int variables \p Vars.
  std::string intExpr(const std::vector<std::string> &Vars, int Depth);

  /// A statement block body.  \p Mutable variables may be assigned;
  /// \p ReadOnly ones (loop induction variables and main's n, whose
  /// mutation could unbound a loop) are only read.  \p AllowCalls permits
  /// helper calls (disabled inside helper loops to keep the dynamic call
  /// count polynomial).
  std::string stmts(std::vector<std::string> Mutable,
                    std::vector<std::string> ReadOnly, int Depth,
                    int Budget, bool AllowCalls);

  std::string helperCall(const std::vector<std::string> &Vars);
};

inline std::string
RandomProgramGenerator::intExpr(const std::vector<std::string> &Vars,
                                int Depth) {
  if (Depth <= 0 || Rng.chance(1, 3))
    return Rng.chance(1, 2)
               ? Vars[Rng.nextBelow(Vars.size())]
               : std::to_string(Rng.nextInRange(0, 255));
  const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
  std::string L = intExpr(Vars, Depth - 1);
  std::string R = intExpr(Vars, Depth - 1);
  if (Rng.chance(1, 6)) // guarded division
    return "((" + L + ") / (1 + ((" + R + ") & 7)))";
  if (Rng.chance(1, 8)) // guarded remainder
    return "((" + L + ") % (2 + ((" + R + ") & 15)))";
  const char *Op = Ops[Rng.nextBelow(6)];
  return "(((" + L + ") " + Op + " (" + R + ")) & 65535)";
}

inline std::string
RandomProgramGenerator::helperCall(const std::vector<std::string> &Vars) {
  if (FuncCount == 0)
    return intExpr(Vars, 1);
  int Callee = static_cast<int>(Rng.nextBelow(FuncCount));
  return 'f' + std::to_string(Callee) + "(" + intExpr(Vars, 1) + ", " +
         intExpr(Vars, 1) + ")";
}

inline std::string RandomProgramGenerator::stmts(
    std::vector<std::string> Mutable, std::vector<std::string> ReadOnly,
    int Depth, int Budget, bool AllowCalls) {
  std::string Out;
  std::vector<std::string> Vars = Mutable; // readable set
  Vars.insert(Vars.end(), ReadOnly.begin(), ReadOnly.end());
  int Count = static_cast<int>(Rng.nextInRange(2, 5));
  for (int S = 0; S != Count && Budget > 0; ++S, --Budget) {
    switch (Rng.nextBelow(Depth > 0 ? 8 : 5)) {
    case 0: { // new local
      std::string V = freshVar();
      Out += "int " + V + " = " + intExpr(Vars, 2) + ";\n";
      Mutable.push_back(V);
      Vars.push_back(V);
      break;
    }
    case 1: // assignment (never to a read-only variable)
      Out += Mutable[Rng.nextBelow(Mutable.size())] + " = " +
             intExpr(Vars, 2) + ";\n";
      break;
    case 2: // field update on the shared object
      Out += "gst.a = ((gst.a + " + intExpr(Vars, 1) + ") & 65535);\n";
      break;
    case 3: // array update on the shared buffer (masked index)
      Out += "gbuf[(" + intExpr(Vars, 1) + ") & 15] = " + intExpr(Vars, 1) +
             ";\n";
      break;
    case 4: // call a helper (or plain arithmetic when calls are barred)
      if (AllowCalls && CallBudget > 0) {
        --CallBudget;
        Out += Mutable[Rng.nextBelow(Mutable.size())] + " = ((" +
               helperCall(Vars) + ") & 65535);\n";
      } else {
        Out += Mutable[Rng.nextBelow(Mutable.size())] + " = ((" +
               intExpr(Vars, 2) + ") & 65535);\n";
      }
      break;
    case 5: { // if/else
      Out += "if ((" + intExpr(Vars, 1) + ") " +
             (Rng.chance(1, 2) ? "<" : ">") + " (" + intExpr(Vars, 1) +
             ")) {\n" +
             stmts(Mutable, ReadOnly, Depth - 1, Budget / 2, AllowCalls) +
             "} else {\n" +
             stmts(Mutable, ReadOnly, Depth - 1, Budget / 2, AllowCalls) +
             "}\n";
      break;
    }
    case 6: { // bounded for loop; the induction variable is read-only
      std::string I = freshVar();
      std::vector<std::string> InnerRO = ReadOnly;
      InnerRO.push_back(I);
      // Calls inside helper loops are barred: a chain of helpers each
      // multiplying the call count by its loop trips would blow up.
      Out += "for (int " + I + " = 0; " + I + " < " +
             std::to_string(Rng.nextInRange(2, 9)) + "; " + I + " = " + I +
             " + 1) {\n" +
             stmts(Mutable, InnerRO, Depth - 1, Budget / 2,
                   AllowCalls && !InHelper) +
             "}\n";
      break;
    }
    case 7: // global + array read mix
      Out += "g = ((g ^ gbuf[(" + intExpr(Vars, 1) + ") & 15] ^ gst.b) & "
             "65535);\n";
      break;
    }
  }
  // Fold locals into the global so every path affects the checksum.
  Out += "g = ((g + " + Vars[Rng.nextBelow(Vars.size())] + ") & 65535);\n";
  return Out;
}

inline std::string RandomProgramGenerator::generate() {
  TmpCounter = 0;
  FuncCount = 0;
  std::string Out = "class S { int a; int b; }\nglobal int g;\n"
                    "global S gst;\nglobal int[] gbuf;\n";

  int Helpers = static_cast<int>(Rng.nextInRange(2, 5));
  for (int F = 0; F != Helpers; ++F) {
    InHelper = true;
    CallBudget = 2;
    Out += "int f" + std::to_string(F) + "(int p0, int p1) {\n";
    Out += "gst.a = ((gst.a + p0) & 65535);\n";
    Out += "gst.b = ((gst.b ^ p1) & 65535);\n";
    Out += stmts({"p0", "p1"}, {}, /*Depth=*/2, /*Budget=*/6,
                 /*AllowCalls=*/true);
    Out += "return ((gst.a + gst.b + g) & 65535);\n}\n";
    InHelper = false;
    FuncCount = F + 1;
  }

  CallBudget = 6;
  Out += "int main(int n) {\n";
  Out += "gst = new S;\ngbuf = new int[16];\ng = 0;\n";
  Out += "int acc = 0;\n";
  Out += "for (int it = 0; it < n; it = it + 1) {\n";
  Out += "gst.a = (gst.a + it) & 65535;\n";
  Out += stmts({"acc"}, {"it", "n"}, /*Depth=*/3, /*Budget=*/10,
               /*AllowCalls=*/true);
  Out += "acc = ((acc + g + gst.a) & 65535);\n";
  Out += "}\n";
  Out += "return acc + g;\n}\n";
  return Out;
}

} // namespace testutil
} // namespace ars

#endif // ARS_TESTS_RANDOMPROGRAM_H
