//===- tests/test_shmem.cpp - Shared-memory ring transport ----*- C++ -*-===//
///
/// The same-host transport's contracts, bottom up:
///
///   * Ring mechanics: bytes round-trip both directions, transfers far
///     larger than the ring wrap correctly, empty-ring reads time out,
///     close() unblocks a parked reader, and a peer's close drains
///     buffered bytes before reporting Eof.
///   * Rendezvous: the listener sweeps stale segment files on startup and
///     adopts only fully-published segments.
///   * Service integration: a ProfileServer behind ShmListener merges
///     concurrent shm pushers byte-identically to the serial fold — the
///     whole wire protocol (HELLO, batching, dedup) rides the ring
///     unchanged.
///   * Chaos: the ring-only fault shapes — a cell poisoned mid-commit
///     (torn write) and a writer that vanishes without closing (crashed
///     writer) — are survived with exactly-once merging, and seeded shm
///     chaos runs replay deterministically.
///
/// Every suite is named Shmem so scripts/check.sh --tsan can pick up the
/// file with a single Shmem.* filter.
///
//===----------------------------------------------------------------------===//

#include "faultinject/Chaos.h"
#include "faultinject/FaultInject.h"
#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "shmem/ShmRing.h"
#include "support/Support.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

namespace {

using namespace ars;
using namespace ars::shmem;
using profserve::ClientConfig;
using profserve::ClientResult;
using profserve::IoResult;
using profserve::IoStatus;
using profserve::ProfileClient;
using profserve::ProfileServer;
using profserve::ServerConfig;
using profserve::Transport;

constexpr uint64_t Fp = 0xabcdef0123456789ULL;

/// A fresh rendezvous directory per test, so stale segments from one
/// test can never be adopted by another's listener.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "shmem_" + Name;
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

profile::ProfileBundle shard(int Seed) {
  profile::ProfileBundle B;
  profile::CallEdgeKey K;
  K.Caller = Seed % 5;
  K.Site = Seed % 3;
  K.Callee = (Seed + 1) % 7;
  B.CallEdges.record(K, static_cast<uint64_t>(Seed) * 37 + 1);
  B.FieldAccesses.record(Seed % 4, static_cast<uint64_t>(Seed) + 2);
  B.Values.record(9, Seed % 8, static_cast<uint64_t>(Seed) + 5);
  return B;
}

std::string serialFold(int Shards) {
  profile::ProfileBundle Acc;
  for (int I = 0; I != Shards; ++I)
    profstore::mergeBundle(Acc, shard(I));
  return profstore::encodeBundle(Acc, Fp);
}

/// A connected (client end, server end) pair over a fresh directory.
struct RingPair {
  std::string Dir;
  std::unique_ptr<ShmListener> L;
  std::unique_ptr<Transport> Client;
  std::unique_ptr<Transport> Server;
};

RingPair makePair(const std::string &Name) {
  RingPair P;
  P.Dir = freshDir(Name);
  std::string Err;
  P.L = listenShm(P.Dir, &Err);
  EXPECT_NE(P.L, nullptr) << Err;
  if (!P.L)
    return P;
  P.Client = shmConnect(P.Dir, &Err);
  EXPECT_NE(P.Client, nullptr) << Err;
  P.Server = P.L->accept(); // blocks until the published segment appears
  EXPECT_NE(P.Server, nullptr);
  return P;
}

//===----------------------------------------------------------------------===//
// Ring mechanics
//===----------------------------------------------------------------------===//

TEST(Shmem, SegmentGeometry) {
  EXPECT_EQ(segmentBytes(),
            4096u + 2u * static_cast<size_t>(CellCount) * CellSize);
  EXPECT_EQ(CellPayload + 16u, CellSize);
}

TEST(Shmem, RoundTripBothDirections) {
  RingPair P = makePair("roundtrip");
  ASSERT_TRUE(P.Client && P.Server);

  ASSERT_TRUE(P.Client->writeAll("ping", 4).ok());
  char Buf[16];
  size_t N = 0;
  ASSERT_TRUE(P.Server->readSome(Buf, sizeof(Buf), 2000, &N).ok());
  EXPECT_EQ(std::string(Buf, N), "ping");

  ASSERT_TRUE(P.Server->writeAll("pong!", 5).ok());
  ASSERT_TRUE(P.Client->readSome(Buf, sizeof(Buf), 2000, &N).ok());
  EXPECT_EQ(std::string(Buf, N), "pong!");
}

TEST(Shmem, LargeTransferWrapsRing) {
  RingPair P = makePair("wrap");
  ASSERT_TRUE(P.Client && P.Server);

  // ~4x the ring capacity, so the producer must block on space and every
  // cell is reused several times; content is position-dependent so any
  // reorder, loss or duplication shows up in the comparison.
  std::string Sent(4u * CellCount * CellPayload + 12345, '\0');
  support::Xorshift64 Rng(42);
  for (char &C : Sent)
    C = static_cast<char>(Rng.next());

  std::thread Writer([&] {
    EXPECT_TRUE(P.Client->writeAll(Sent.data(), Sent.size()).ok());
  });
  std::string Got(Sent.size(), '\0');
  IoResult R = P.Server->readAll(&Got[0], Got.size(), 10000, nullptr);
  Writer.join();
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_TRUE(Got == Sent) << "payload corrupted crossing the ring";
}

TEST(Shmem, EmptyRingReadTimesOut) {
  RingPair P = makePair("timeout");
  ASSERT_TRUE(P.Client && P.Server);
  char Buf[8];
  size_t N = 7;
  IoResult R = P.Client->readSome(Buf, sizeof(Buf), 50, &N);
  EXPECT_EQ(R.Status, IoStatus::Timeout);
  EXPECT_EQ(N, 0u);
}

TEST(Shmem, CloseUnblocksBlockedReader) {
  RingPair P = makePair("unblock");
  ASSERT_TRUE(P.Client && P.Server);
  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    char Buf[8];
    size_t N = 0;
    IoResult R = P.Client->readSome(Buf, sizeof(Buf), 30000, &N);
    EXPECT_NE(R.Status, IoStatus::Ok);
    Done.store(true);
  });
  // Give the reader time to park on the futex, then close locally: the
  // reader must come back without waiting out its 30s budget.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  P.Client->close();
  Reader.join();
  EXPECT_TRUE(Done.load());
}

TEST(Shmem, PeerCloseDrainsBufferedBytesThenEof) {
  RingPair P = makePair("drain");
  ASSERT_TRUE(P.Client && P.Server);
  ASSERT_TRUE(P.Client->writeAll("tail", 4).ok());
  P.Client->close();
  char Buf[8];
  size_t N = 0;
  ASSERT_TRUE(P.Server->readSome(Buf, sizeof(Buf), 2000, &N).ok());
  EXPECT_EQ(std::string(Buf, N), "tail"); // buffered data outlives close
  IoResult R = P.Server->readSome(Buf, sizeof(Buf), 2000, &N);
  EXPECT_TRUE(R.Status == IoStatus::Eof || R.Status == IoStatus::Closed);
}

//===----------------------------------------------------------------------===//
// Rendezvous
//===----------------------------------------------------------------------===//

TEST(Shmem, ListenerSweepsStaleSegmentFiles) {
  std::string Dir = freshDir("sweep");
  for (const char *Name : {"/dead.arsm", "/dead.bell", "/half.arsm.tmp"}) {
    std::ofstream Out(Dir + Name, std::ios::binary);
    Out << "stale";
  }
  std::string Err;
  std::unique_ptr<ShmListener> L = listenShm(Dir, &Err);
  ASSERT_NE(L, nullptr) << Err;
  struct stat St;
  EXPECT_NE(::stat((Dir + "/dead.arsm").c_str(), &St), 0);
  EXPECT_NE(::stat((Dir + "/dead.bell").c_str(), &St), 0);
  EXPECT_NE(::stat((Dir + "/half.arsm.tmp").c_str(), &St), 0);
}

TEST(Shmem, AdoptedSegmentFilesAreUnlinked) {
  RingPair P = makePair("unlink");
  ASSERT_TRUE(P.Client && P.Server);
  // After adoption the directory holds no files: the mappings keep the
  // segment alive, so a crashed process leaks nothing on disk.
  ::DIR *D = ::opendir(P.Dir.c_str());
  ASSERT_NE(D, nullptr);
  int Entries = 0;
  while (struct dirent *E = ::readdir(D))
    if (E->d_name[0] != '.')
      ++Entries;
  ::closedir(D);
  EXPECT_EQ(Entries, 0) << "segment files survived adoption";
}

//===----------------------------------------------------------------------===//
// Service integration: the full wire protocol over the ring
//===----------------------------------------------------------------------===//

ServerConfig shmServerConfig() {
  ServerConfig C;
  C.Workers = 2;
  C.RecvTimeoutMs = 2000;
  C.Fingerprint = Fp;
  return C;
}

TEST(Shmem, ServerMergesConcurrentShmPushers) {
  std::string Dir = freshDir("serve");
  std::string Err;
  std::unique_ptr<ShmListener> L = listenShm(Dir, &Err);
  ASSERT_NE(L, nullptr) << Err;
  ProfileServer Server(std::move(L), shmServerConfig());
  Server.start();

  constexpr int Pushers = 4, PerPusher = 8;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int I = 0; I != Pushers; ++I)
    Threads.emplace_back([&, I] {
      ClientConfig CC;
      CC.Fingerprint = Fp;
      CC.SessionId = static_cast<uint64_t>(100 + I);
      ProfileClient C(shmDialer(Dir), CC);
      for (int J = 0; J != PerPusher; ++J)
        if (!C.push(shard(I * PerPusher + J), Fp).Ok)
          Failures.fetch_add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Server.stats().Merges,
            static_cast<uint64_t>(Pushers) * PerPusher);

  // Pull through a clean shm client: the (multi-cell) merged bundle must
  // be byte-identical to the serial fold.
  ClientConfig CC;
  CC.Fingerprint = Fp;
  ProfileClient Clean(shmDialer(Dir), CC);
  ProfileClient::PullResult P = Clean.pull();
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.RawBytes, serialFold(Pushers * PerPusher));
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Ring-only faults
//===----------------------------------------------------------------------===//

TEST(Shmem, TornCellSurfacesAsHardReadError) {
  RingPair P = makePair("torn");
  ASSERT_TRUE(P.Client && P.Server);
  auto *Ring = dynamic_cast<ShmRingTransport *>(P.Client.get());
  ASSERT_NE(Ring, nullptr);
  Ring->tearNextWrite();
  // The producer sees success — it "died" after this commit — but the
  // consumer must refuse the poisoned cell as corruption, not data.
  EXPECT_TRUE(P.Client->writeAll("doomed", 6).ok());
  char Buf[8];
  size_t N = 0;
  IoResult R = P.Server->readSome(Buf, sizeof(Buf), 2000, &N);
  EXPECT_EQ(R.Status, IoStatus::Error);
  EXPECT_NE(R.Message.find("torn"), std::string::npos) << R.Message;
}

TEST(Shmem, AbandonedEndFailsLocallyWithoutTouchingSharedState) {
  RingPair P = makePair("abandon");
  ASSERT_TRUE(P.Client && P.Server);
  auto *Ring = dynamic_cast<ShmRingTransport *>(P.Client.get());
  ASSERT_NE(Ring, nullptr);
  Ring->abandon();
  EXPECT_EQ(P.Client->writeAll("x", 1).Status, IoStatus::Error);
  // No close flag was set, so the server sees silence, not Eof — exactly
  // a crashed writer.  (The reactor's idle deadline is what reaps it.)
  char Buf[8];
  size_t N = 0;
  EXPECT_EQ(P.Server->readSome(Buf, sizeof(Buf), 100, &N).Status,
            IoStatus::Timeout);
}

/// A plan whose ONLY fault is one ring event, so the recovery path under
/// test fires exactly once and the run is otherwise clean.
faultinject::FaultPlan oneRingFaultPlan(bool Tear) {
  faultinject::FaultPlan Plan;
  Plan.DropPct = Plan.PartialWritePct = Plan.BitFlipPct = 0;
  Plan.LatencyPct = 0;
  Plan.RingTearPct = Tear ? 100 : 0;
  Plan.RingAbandonPct = Tear ? 0 : 100;
  Plan.MaxFaults = 1;
  return Plan;
}

TEST(Shmem, TornPushRetriesToExactlyOneMerge) {
  std::string Dir = freshDir("tear_e2e");
  std::string Err;
  std::unique_ptr<ShmListener> L = listenShm(Dir, &Err);
  ASSERT_NE(L, nullptr) << Err;
  ServerConfig SC = shmServerConfig();
  SC.RecvTimeoutMs = 500; // reap the connection the tear killed
  ProfileServer Server(std::move(L), SC);
  Server.start();

  auto Faults = std::make_shared<faultinject::FaultStream>(
      oneRingFaultPlan(/*Tear=*/true), /*Seed=*/1, /*Key=*/1, "tear");
  ClientConfig CC;
  CC.Fingerprint = Fp;
  CC.TimeoutMs = 500;
  CC.MaxRetries = 4;
  CC.BackoffMs = 1;
  ProfileClient C(faultinject::faultyDialer(shmDialer(Dir), Faults), CC);
  EXPECT_TRUE(C.push(shard(0), Fp).Ok);

  EXPECT_NE(Faults->trace().find("ring-tear"), std::string::npos)
      << Faults->trace();
  EXPECT_EQ(Server.stats().Merges, 1u);
  EXPECT_EQ(profile::serializeBundle(Server.merged()),
            profile::serializeBundle(shard(0)));
  Server.stop();
}

TEST(Shmem, CrashedWriterIsReapedAndRetrySucceeds) {
  std::string Dir = freshDir("abandon_e2e");
  std::string Err;
  std::unique_ptr<ShmListener> L = listenShm(Dir, &Err);
  ASSERT_NE(L, nullptr) << Err;
  ServerConfig SC = shmServerConfig();
  SC.RecvTimeoutMs = 300; // the ONLY way the server learns of the crash
  ProfileServer Server(std::move(L), SC);
  Server.start();

  auto Faults = std::make_shared<faultinject::FaultStream>(
      oneRingFaultPlan(/*Tear=*/false), /*Seed=*/1, /*Key=*/1, "crash");
  ClientConfig CC;
  CC.Fingerprint = Fp;
  CC.TimeoutMs = 500;
  CC.MaxRetries = 4;
  CC.BackoffMs = 1;
  ProfileClient C(faultinject::faultyDialer(shmDialer(Dir), Faults), CC);
  EXPECT_TRUE(C.push(shard(3), Fp).Ok);

  EXPECT_NE(Faults->trace().find("ring-abandon"), std::string::npos)
      << Faults->trace();
  EXPECT_EQ(Server.stats().Merges, 1u);
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Chaos over shm
//===----------------------------------------------------------------------===//

faultinject::ChaosConfig shmChaos() {
  faultinject::ChaosConfig C;
  C.Clients = 3;
  C.ShardsPerClient = 3;
  C.Transport = faultinject::ChaosTransport::Shm;
  C.Plan.RingTearPct = 4;
  C.Plan.RingAbandonPct = 3;
  C.WorkDir = ::testing::TempDir() + "shmem_chaos";
  ::mkdir(C.WorkDir.c_str(), 0755);
  return C;
}

TEST(Shmem, ChaosRunMatchesSerialFoldAndReplays) {
  faultinject::ChaosConfig C = shmChaos();
  C.FaultSeed = 5;
  faultinject::ChaosReport First = runChaos(C);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.Merges, First.ExpectedShards);
  faultinject::ChaosReport Second = runChaos(C);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(First.Trace, Second.Trace);
  EXPECT_EQ(First.Duplicates, Second.Duplicates);
}

TEST(Shmem, ChaosSmallSweepPasses) {
  EXPECT_TRUE(
      faultinject::chaosSweep(shmChaos(), /*Seeds=*/2, /*Verbose=*/false));
}

TEST(Shmem, ChaosRejectsRelayTopology) {
  faultinject::ChaosConfig C = shmChaos();
  C.Topo = faultinject::Topology::Relay;
  faultinject::ChaosReport R = runChaos(C);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("Direct"), std::string::npos);
}

} // namespace
