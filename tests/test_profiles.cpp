//===- tests/test_profiles.cpp - profile/ unit tests ----------*- C++ -*-===//

#include "bytecode/Module.h"
#include "profile/Overlap.h"
#include "profile/Profiles.h"

#include <gtest/gtest.h>

namespace {

using namespace ars::profile;

CallEdgeKey edge(int Caller, int Site, int Callee) {
  CallEdgeKey K;
  K.Caller = Caller;
  K.Site = Site;
  K.Callee = Callee;
  return K;
}

TEST(CallEdgeProfileTest, RecordsAndTotals) {
  CallEdgeProfile P;
  P.record(edge(0, 1, 2));
  P.record(edge(0, 1, 2), 4);
  P.record(edge(1, 7, 3));
  EXPECT_EQ(P.total(), 6u);
  EXPECT_EQ(P.counts().at(edge(0, 1, 2)), 5u);
  EXPECT_EQ(P.counts().size(), 2u);
  P.clear();
  EXPECT_EQ(P.total(), 0u);
  EXPECT_TRUE(P.empty());
}

TEST(FieldAccessProfileTest, PerFieldCounters) {
  FieldAccessProfile P;
  P.resize(4);
  P.record(2, 10);
  P.record(0);
  EXPECT_EQ(P.total(), 11u);
  EXPECT_EQ(P.counts()[2], 10u);
  EXPECT_EQ(P.counts()[3], 0u);
}

TEST(OverlapTest, IdenticalProfilesAre100) {
  CallEdgeProfile A;
  A.record(edge(0, 0, 1), 30);
  A.record(edge(0, 2, 2), 70);
  EXPECT_DOUBLE_EQ(overlapPercent(A, A), 100.0);
}

TEST(OverlapTest, DisjointProfilesAreZero) {
  CallEdgeProfile A, B;
  A.record(edge(0, 0, 1), 10);
  B.record(edge(5, 5, 5), 10);
  EXPECT_DOUBLE_EQ(overlapPercent(A, B), 0.0);
}

TEST(OverlapTest, ScaleInvariant) {
  // Overlap compares sample-percentages, not raw counts: a sampled profile
  // with 1/1000 of the events but the same distribution overlaps 100%.
  FieldAccessProfile Perfect, Sampled;
  Perfect.resize(2);
  Sampled.resize(2);
  Perfect.record(0, 30000);
  Perfect.record(1, 70000);
  Sampled.record(0, 30);
  Sampled.record(1, 70);
  EXPECT_DOUBLE_EQ(overlapPercent(Perfect, Sampled), 100.0);
}

TEST(OverlapTest, PartialOverlapValue) {
  FieldAccessProfile A, B;
  A.resize(2);
  B.resize(2);
  A.record(0, 50);
  A.record(1, 50);
  B.record(0, 100); // all mass on field 0
  // min(50,100)% + min(50,0)% = 50%.
  EXPECT_DOUBLE_EQ(overlapPercent(A, B), 50.0);
}

TEST(OverlapTest, EmptyProfilesGiveZero) {
  CallEdgeProfile A, B;
  A.record(edge(0, 0, 1), 10);
  EXPECT_DOUBLE_EQ(overlapPercent(A, B), 0.0);
  EXPECT_DOUBLE_EQ(overlapPercent(B, A), 0.0);
}

TEST(OverlapBarsTest, SortedAndCapped) {
  CallEdgeProfile Perfect, Sampled;
  Perfect.record(edge(0, 0, 1), 60);
  Perfect.record(edge(0, 1, 2), 30);
  Perfect.record(edge(0, 2, 3), 10);
  Sampled.record(edge(0, 0, 1), 5);
  Sampled.record(edge(0, 2, 3), 5);
  auto Bars = overlapBars(Perfect, Sampled, 2);
  ASSERT_EQ(Bars.size(), 2u);
  EXPECT_DOUBLE_EQ(Bars[0].PerfectPct, 60.0);
  EXPECT_DOUBLE_EQ(Bars[0].SampledPct, 50.0);
  EXPECT_DOUBLE_EQ(Bars[1].PerfectPct, 30.0);
  EXPECT_DOUBLE_EQ(Bars[1].SampledPct, 0.0);
}

TEST(BlockCountProfileTest, OverlapViaMaps) {
  BlockCountProfile A, B;
  A.record(0, 1, 10);
  A.record(0, 2, 10);
  B.record(0, 1, 10);
  B.record(0, 2, 10);
  EXPECT_DOUBLE_EQ(overlapPercent(A, B), 100.0);
  B.record(3, 3, 20);
  EXPECT_NEAR(overlapPercent(A, B), 50.0, 1e-9);
}

TEST(ValueProfileTest, CapsDistinctValuesPerSite) {
  ValueProfile P;
  for (int64_t V = 0; V != 100; ++V)
    P.record(/*SiteId=*/7, V);
  EXPECT_EQ(P.sites().at(7).size(), ValueProfile::MaxValuesPerSite);
  EXPECT_EQ(P.overflow(7),
            100 - static_cast<uint64_t>(ValueProfile::MaxValuesPerSite));
  EXPECT_EQ(P.total(), 100u);
  // Existing values keep counting after the cap.
  P.record(7, 0, 5);
  EXPECT_EQ(P.sites().at(7).at(0), 6u);
}

TEST(FieldAccessProfileTest, GrowsOnDemand) {
  // A probe compiled against a stale module (or a profile loaded from
  // disk) may carry field ids past the resize() width; record() must
  // grow rather than index out of bounds.
  FieldAccessProfile P;
  P.resize(2);
  P.record(10, 3);
  ASSERT_EQ(P.counts().size(), 11u);
  EXPECT_EQ(P.counts()[10], 3u);
  EXPECT_EQ(P.counts()[1], 0u);
  EXPECT_EQ(P.total(), 3u);
  P.record(0);
  EXPECT_EQ(P.counts().size(), 11u);
  EXPECT_EQ(P.total(), 4u);
}

TEST(SerializeBundleTest, EmptyBundleIsStable) {
  ProfileBundle B;
  std::string Text = serializeBundle(B);
  EXPECT_EQ(Text, serializeBundle(B));
  // Every section header appears even when empty.
  for (const char *Kind : {"call-edges 0", "field-accesses 0",
                           "block-counts 0", "values 0", "edges 0",
                           "paths 0"})
    EXPECT_NE(Text.find(Kind), std::string::npos) << Kind;
}

TEST(SerializeBundleTest, ValueProfileAtCapBoundary) {
  // Exactly MaxValuesPerSite distinct values: full table, no overflow;
  // one more value tips into the overflow bucket and the serialization
  // must distinguish the two states.
  ProfileBundle AtCap;
  for (size_t V = 0; V != ValueProfile::MaxValuesPerSite; ++V)
    AtCap.Values.record(1, static_cast<int64_t>(V));
  ProfileBundle PastCap = AtCap;
  PastCap.Values.record(1, 1000);

  EXPECT_EQ(AtCap.Values.overflow(1), 0u);
  EXPECT_EQ(PastCap.Values.overflow(1), 1u);
  EXPECT_EQ(PastCap.Values.sites().at(1).size(),
            ValueProfile::MaxValuesPerSite);
  EXPECT_NE(serializeBundle(AtCap), serializeBundle(PastCap));
}

TEST(SerializeBundleTest, EntryCallerKeySerializes) {
  ProfileBundle B;
  B.CallEdges.record(edge(-1, -1, 0), 2);
  std::string Text = serializeBundle(B);
  EXPECT_NE(Text.find("-1/-1/0:2"), std::string::npos) << Text;
}

TEST(Dumps, ContainResolvedNames) {
  ars::bytecode::Module M;
  int C = M.addClass("Point");
  M.addField(C, "x", ars::bytecode::Type::I64);
  M.addFunction("caller", {}, ars::bytecode::Type::Void);
  M.addFunction("callee", {}, ars::bytecode::Type::Void);

  CallEdgeProfile CE;
  CE.record(edge(0, 3, 1), 12);
  std::string Text = dumpCallEdges(M, CE, 10);
  EXPECT_NE(Text.find("caller@3 -> callee"), std::string::npos);
  EXPECT_NE(Text.find("12"), std::string::npos);

  FieldAccessProfile FA;
  FA.resize(M.numFieldIds());
  FA.record(0, 9);
  std::string FText = dumpFieldAccesses(M, FA);
  EXPECT_NE(FText.find("Point.x : 9"), std::string::npos);
}

TEST(Dumps, EntryCallerRendered) {
  ars::bytecode::Module M;
  M.addFunction("main", {}, ars::bytecode::Type::Void);
  CallEdgeProfile CE;
  CE.record(edge(-1, -1, 0), 1);
  EXPECT_NE(dumpCallEdges(M, CE, 10).find("<entry>"), std::string::npos);
}

} // namespace
