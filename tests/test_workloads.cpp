//===- tests/test_workloads.cpp - benchmark suite sanity ------*- C++ -*-===//

#include "instr/Clients.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

TEST(Suite, HasTenWorkloadsInPaperOrder) {
  const auto &All = workloads::allWorkloads();
  ASSERT_EQ(All.size(), 10u);
  EXPECT_STREQ(All[0].Name, "compress");
  EXPECT_STREQ(All[9].Name, "volano");
  EXPECT_NE(workloads::workloadByName("mpegaudio"), nullptr);
  EXPECT_EQ(workloads::workloadByName("nope"), nullptr);
}

class WorkloadTest : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(WorkloadTest, CompilesAndRuns) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  auto R = harness::runBaseline(P, W.SmokeScale);
  ASSERT_TRUE(R.Stats.Ok) << W.Name << ": " << R.Stats.Error;
  EXPECT_GT(R.Stats.Cycles, 1000u) << W.Name;
}

TEST_P(WorkloadTest, ChecksumIsDeterministic) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  auto R1 = harness::runBaseline(P, W.SmokeScale);
  auto R2 = harness::runBaseline(P, W.SmokeScale);
  ASSERT_TRUE(R1.Stats.Ok && R2.Stats.Ok);
  EXPECT_EQ(R1.Stats.MainResult, R2.Stats.MainResult) << W.Name;
  EXPECT_EQ(R1.Stats.Cycles, R2.Stats.Cycles) << W.Name;
}

TEST_P(WorkloadTest, ScaleIncreasesWork) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  auto Small = harness::runBaseline(P, W.SmokeScale);
  auto Large = harness::runBaseline(P, W.SmokeScale * 3);
  ASSERT_TRUE(Small.Stats.Ok && Large.Stats.Ok);
  EXPECT_GT(Large.Stats.Cycles, 2 * Small.Stats.Cycles) << W.Name;
}

TEST_P(WorkloadTest, ExercisesBothInstrumentations) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Exhaustive;
  C.Clients = {&CallEdges, &FieldAccesses};
  auto R = harness::runExperiment(P, W.SmokeScale, C);
  ASSERT_TRUE(R.Stats.Ok) << W.Name << ": " << R.Stats.Error;
  EXPECT_GT(R.Profiles.CallEdges.total(), 0u)
      << W.Name << " performs no calls";
  EXPECT_GT(R.Profiles.FieldAccesses.total(), 0u)
      << W.Name << " performs no field accesses";
}

TEST_P(WorkloadTest, HasLoopsForBackedgeChecks) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  auto R = harness::runBaseline(P, W.SmokeScale);
  ASSERT_TRUE(R.Stats.Ok);
  // Yieldpoints = entries + backedge traversals; must exceed pure entries.
  EXPECT_GT(R.Stats.YieldpointExecs, R.Stats.Entries) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadTest, ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(Volano, UsesMultipleThreads) {
  const workloads::Workload *W = workloads::workloadByName("volano");
  harness::Program P = build(W->Source);
  auto R = harness::runBaseline(P, W->SmokeScale);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_EQ(R.Stats.ThreadsSpawned, 4u);
  EXPECT_GT(R.Stats.ThreadSwitches, 0u);
}

} // namespace
