//===- tests/TestUtil.h - Shared test helpers -----------------*- C++ -*-===//

#ifndef ARS_TESTS_TESTUTIL_H
#define ARS_TESTS_TESTUTIL_H

#include "harness/Experiment.h"
#include "harness/Pipeline.h"

#include <gtest/gtest.h>

namespace ars {
namespace testutil {

/// Builds a MiniJ program, failing the test on any pipeline error.
inline harness::Program build(const char *Source) {
  harness::BuildResult R = harness::buildProgram(Source);
  EXPECT_TRUE(R.Ok) << R.Error;
  return std::move(R.P);
}

/// Runs main(Scale) under \p Config and returns the full result, failing
/// the test if the engine reports an error.
inline harness::ExperimentResult
run(const harness::Program &P, int64_t Scale,
    const harness::RunConfig &Config = harness::RunConfig()) {
  harness::ExperimentResult R = harness::runExperiment(P, Scale, Config);
  EXPECT_TRUE(R.Stats.Ok) << R.Stats.Error;
  return R;
}

/// Shorthand: build + baseline-run + return main's result.
inline int64_t evalMain(const char *Source, int64_t Scale = 0) {
  harness::Program P = build(Source);
  return run(P, Scale).Stats.MainResult;
}

} // namespace testutil
} // namespace ars

#endif // ARS_TESTS_TESTUTIL_H
