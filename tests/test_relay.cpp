//===- tests/test_relay.cpp - Relay-tree aggregation tests ----*- C++ -*-===//
///
/// Topology-differential tests for relay-mode collection servers (see
/// Server.h "Relay mode"): wire N ProfileServers into an aggregation
/// tree — chain, star, balanced binary, and seeded-random shapes, 2..16
/// nodes — push distinct shards at every node with 1 or 4 concurrent
/// pusher threads, flush the tree bottom-up, and require the ROOT's
/// merged bundle to be BYTE-IDENTICAL (serializeBundle) to a serial
/// mergeBundle fold of all the shards.  mergeBundle's commutative/
/// associative algebra is exactly what makes every topology equivalent;
/// these tests pin that the relay plumbing (delta drain, upstream
/// sequenced pushes, per-node sessions) preserves it.
///
/// Also pinned: an unreachable parent spills deltas instead of dropping
/// them and replays them exactly-once when the uplink returns.
///
/// All suites are named Relay* so scripts/check.sh --tsan runs this
/// file under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profserve/Transport.h"
#include "profstore/ProfileStore.h"
#include "support/Support.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

namespace {

using namespace ars;
using namespace ars::profserve;

constexpr uint64_t TestFingerprint = 0x7E1ECA57000000FAULL;

/// Distinct counts in every section so the fold is sensitive to any
/// lost, doubled or misrouted shard.
profile::ProfileBundle shardBundle(int Seed) {
  profile::ProfileBundle B;
  profile::CallEdgeKey K;
  K.Caller = Seed % 5;
  K.Site = Seed % 3;
  K.Callee = (Seed + 1) % 7;
  B.CallEdges.record(K, static_cast<uint64_t>(Seed) * 37 + 1);
  B.FieldAccesses.record(Seed % 4, static_cast<uint64_t>(Seed) + 2);
  B.BlockCounts.record(1, Seed % 6, static_cast<uint64_t>(Seed) * 11 + 3);
  B.Values.record(9, Seed % 8, static_cast<uint64_t>(Seed) + 5);
  B.Edges.record(0, Seed % 2, (Seed + 1) % 2, static_cast<uint64_t>(Seed) + 7);
  B.Paths.record(2, Seed * 1000003LL, static_cast<uint64_t>(Seed) + 9);
  return B;
}

/// The serial reference every topology must reproduce byte-for-byte.
std::string serialFold(int Shards) {
  profile::ProfileBundle Acc;
  for (int I = 0; I != Shards; ++I)
    profstore::mergeBundle(Acc, shardBundle(I));
  return profile::serializeBundle(Acc);
}

/// An aggregation tree described by a parent array: node 0 is the root,
/// node I > 0 relays its aggregate to node Parent[I] (< I).
struct RelayTree {
  std::vector<LoopbackListener *> Ls;              // owned by the servers
  std::vector<std::unique_ptr<ProfileServer>> Nodes;
  std::vector<int> Parent;
  std::vector<int> Depth;

  explicit RelayTree(const std::vector<int> &ParentArr)
      : Parent(ParentArr), Depth(ParentArr.size(), 0) {
    int N = static_cast<int>(Parent.size());
    Ls.resize(N);
    for (int I = 0; I != N; ++I)
      Ls[I] = new LoopbackListener();
    for (int I = 1; I != N; ++I) {
      EXPECT_TRUE(Parent[I] >= 0 && Parent[I] < I)
          << "parent array must be topologically ordered";
      Depth[I] = Depth[Parent[I]] + 1;
    }
    for (int I = 0; I != N; ++I) {
      ServerConfig C;
      C.Workers = 2;
      C.RecvTimeoutMs = 2000;
      C.MaxConnections = 0;
      if (I != 0) {
        C.Relay.Dial = loopbackDialer(*Ls[Parent[I]]);
        C.Relay.Client.SessionId = 0xE1A0ULL + static_cast<uint64_t>(I);
        C.Relay.Client.Fingerprint = TestFingerprint;
        C.Relay.Client.SpillPath = support::formatString(
            "/tmp/ars-relay-test-%ld-%d.spill",
            static_cast<long>(::getpid()), I);
        std::remove(C.Relay.Client.SpillPath.c_str());
        C.Relay.FlushIntervalMs = 0;  // harness flushes explicitly
        C.Relay.FlushEveryMerges = 0;
      }
      Nodes.push_back(std::make_unique<ProfileServer>(
          std::unique_ptr<Listener>(Ls[I]), C));
      Nodes.back()->start();
    }
  }

  /// Pushes shards [0, Total) round-robin across every node (interior
  /// nodes and the root receive direct pushes too — the algebra doesn't
  /// care) with \p Jobs concurrent pusher threads.
  void pushAll(int Total, int Jobs) {
    int N = static_cast<int>(Nodes.size());
    std::atomic<int> NextShard{0};
    std::vector<std::thread> Pushers;
    std::vector<std::string> Errs(Jobs);
    for (int T = 0; T != Jobs; ++T)
      Pushers.emplace_back([&, T] {
        // One client per target node, so sequence numbers per session
        // stay monotonic across this thread's pushes.
        std::vector<std::unique_ptr<ProfileClient>> Clients(N);
        for (;;) {
          int Shard = NextShard.fetch_add(1);
          if (Shard >= Total)
            return;
          int Node = Shard % N;
          if (!Clients[Node]) {
            ClientConfig CC;
            CC.Fingerprint = TestFingerprint;
            CC.SessionId = 0xC11E000ULL +
                           static_cast<uint64_t>(T) * 1000 + Node;
            Clients[Node] = std::make_unique<ProfileClient>(
                loopbackDialer(*Ls[Node]), CC);
          }
          ClientResult PR = Clients[Node]->push(shardBundle(Shard),
                                                TestFingerprint);
          if (!PR.Ok && Errs[T].empty())
            Errs[T] = support::formatString("shard %d -> node %d: %s",
                                            Shard, Node,
                                            PR.Error.c_str());
        }
      });
    for (std::thread &P : Pushers)
      P.join();
    for (const std::string &E : Errs)
      ASSERT_TRUE(E.empty()) << E;
  }

  /// Flushes deepest nodes first so every level's delta cascades toward
  /// the root in one pass.
  void flushBottomUp() {
    int MaxDepth = 0;
    for (int D : Depth)
      MaxDepth = std::max(MaxDepth, D);
    for (int D = MaxDepth; D >= 1; --D)
      for (size_t I = 1; I != Nodes.size(); ++I)
        if (Depth[I] == D) {
          std::string E;
          ASSERT_TRUE(Nodes[I]->flushUpstream(&E))
              << "node " << I << ": " << E;
        }
  }

  /// Stops children before parents (a stopping relay pushes one final
  /// delta, so its parent must still be accepting).
  void stopAll() {
    int MaxDepth = 0;
    for (int D : Depth)
      MaxDepth = std::max(MaxDepth, D);
    for (int D = MaxDepth; D >= 0; --D)
      for (size_t I = 0; I != Nodes.size(); ++I)
        if (Depth[I] == D)
          Nodes[I]->stop();
  }

  std::string rootBytes() {
    return profile::serializeBundle(Nodes[0]->merged());
  }
};

/// The differential harness: build the tree, push, flush bottom-up, and
/// demand the root's bytes equal the serial fold.
void checkTopology(const std::vector<int> &Parent, int Jobs,
                   int ShardsPerNode = 3) {
  RelayTree Tree(Parent);
  if (::testing::Test::HasFatalFailure())
    return;
  int Total = ShardsPerNode * static_cast<int>(Parent.size());
  Tree.pushAll(Total, Jobs);
  if (::testing::Test::HasFatalFailure())
    return;
  Tree.flushBottomUp();
  EXPECT_EQ(Tree.rootBytes(), serialFold(Total))
      << "root bundle differs from the serial fold ("
      << Parent.size() << " nodes, " << Jobs << " jobs)";
  // Every relay drained: re-flushing is a no-op and the root is stable.
  Tree.flushBottomUp();
  EXPECT_EQ(Tree.rootBytes(), serialFold(Total));
  Tree.stopAll();
}

std::vector<int> chainParents(int N) {
  std::vector<int> P(N, 0);
  for (int I = 1; I != N; ++I)
    P[I] = I - 1;
  return P;
}

std::vector<int> starParents(int N) { return std::vector<int>(N, 0); }

std::vector<int> balancedParents(int N) {
  std::vector<int> P(N, 0);
  for (int I = 1; I != N; ++I)
    P[I] = (I - 1) / 2;
  return P;
}

std::vector<int> randomParents(int N, uint64_t Seed) {
  support::Xorshift64 Rng(Seed);
  std::vector<int> P(N, 0);
  for (int I = 1; I != N; ++I)
    P[I] = static_cast<int>(Rng.nextBelow(static_cast<uint64_t>(I)));
  return P;
}

//===----------------------------------------------------------------------===//
// Topology differentials
//===----------------------------------------------------------------------===//

TEST(RelayTopology, ChainMatchesSerialFold) {
  for (int N : {2, 4, 8, 16})
    for (int Jobs : {1, 4})
      checkTopology(chainParents(N), Jobs);
}

TEST(RelayTopology, StarMatchesSerialFold) {
  for (int N : {3, 8, 16})
    for (int Jobs : {1, 4})
      checkTopology(starParents(N), Jobs);
}

TEST(RelayTopology, BalancedTreeMatchesSerialFold) {
  for (int N : {7, 15})
    for (int Jobs : {1, 4})
      checkTopology(balancedParents(N), Jobs);
}

TEST(RelayTopology, RandomTreesMatchSerialFold) {
  for (uint64_t Seed : {11ULL, 22ULL, 33ULL})
    for (int Jobs : {1, 4})
      checkTopology(randomParents(10, Seed), Jobs);
}

//===----------------------------------------------------------------------===//
// Relay mechanics
//===----------------------------------------------------------------------===//

/// A two-node chain where the uplink starts dead: deltas spill to disk,
/// nothing is lost, and the replay after the uplink returns leaves the
/// root byte-identical to the fold with zero duplicate merges.
TEST(RelayMechanics, UnreachableParentSpillsThenReplays) {
  auto *RootL = new LoopbackListener();
  ServerConfig RootC;
  RootC.Workers = 2;
  ProfileServer Root(std::unique_ptr<Listener>(RootL), RootC);
  Root.start();

  std::string Spill = support::formatString(
      "/tmp/ars-relay-test-%ld-spill.bin", static_cast<long>(::getpid()));
  std::remove(Spill.c_str());

  std::atomic<bool> Up{false};
  auto *RelayL = new LoopbackListener();
  ServerConfig RelayC;
  RelayC.Workers = 2;
  RelayC.Relay.Dial = [&](std::string *Error) -> std::unique_ptr<Transport> {
    if (!Up.load()) {
      if (Error)
        *Error = "uplink down (test)";
      return nullptr;
    }
    return loopbackDialer(*RootL)(Error);
  };
  RelayC.Relay.Client.SessionId = 0xE1A1ULL;
  RelayC.Relay.Client.Fingerprint = TestFingerprint;
  RelayC.Relay.Client.SpillPath = Spill;
  RelayC.Relay.Client.MaxRetries = 1;
  RelayC.Relay.Client.BackoffMs = 1;
  RelayC.Relay.FlushIntervalMs = 0;
  ProfileServer Relay(std::unique_ptr<Listener>(RelayL), RelayC);
  Relay.start();

  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 0xC11EULL;
  ProfileClient Leaf(loopbackDialer(*RelayL), CC);
  for (int I = 0; I != 4; ++I)
    ASSERT_TRUE(Leaf.push(shardBundle(I), TestFingerprint).Ok);

  // Uplink down: the flush fails but the delta is preserved on disk.
  std::string E;
  EXPECT_FALSE(Relay.flushUpstream(&E));
  EXPECT_FALSE(E.empty());
  EXPECT_EQ(Relay.stats().RelayFailures, 1u);
  EXPECT_EQ(profile::serializeBundle(Root.merged()),
            profile::serializeBundle(profile::ProfileBundle()));

  // More pushes while down, another failed flush: two spilled deltas.
  for (int I = 4; I != 8; ++I)
    ASSERT_TRUE(Leaf.push(shardBundle(I), TestFingerprint).Ok);
  EXPECT_FALSE(Relay.flushUpstream(&E));

  // Uplink returns: one flush replays both spilled deltas exactly-once.
  Up.store(true);
  ASSERT_TRUE(Relay.flushUpstream(&E)) << E;
  EXPECT_EQ(Relay.stats().RelayFailures, 2u);
  EXPECT_EQ(Root.stats().Duplicates, 0u);
  EXPECT_EQ(profile::serializeBundle(Root.merged()), serialFold(8));

  Relay.stop();
  Root.stop();
  std::remove(Spill.c_str());
}

/// FlushEveryMerges drives the upstream drain with no explicit calls:
/// after enough pushes the root catches up on its own.
TEST(RelayMechanics, MergeCountTriggerFlushesWithoutExplicitCalls) {
  auto *RootL = new LoopbackListener();
  ServerConfig RootC;
  RootC.Workers = 2;
  ProfileServer Root(std::unique_ptr<Listener>(RootL), RootC);
  Root.start();

  auto *RelayL = new LoopbackListener();
  ServerConfig RelayC;
  RelayC.Workers = 2;
  RelayC.Relay.Dial = loopbackDialer(*RootL);
  RelayC.Relay.Client.SessionId = 0xE1A2ULL;
  RelayC.Relay.Client.Fingerprint = TestFingerprint;
  RelayC.Relay.FlushEveryMerges = 2; // flush every 2 merges
  RelayC.Relay.FlushIntervalMs = 0;
  ProfileServer Relay(std::unique_ptr<Listener>(RelayL), RelayC);
  Relay.start();

  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 0xC11FULL;
  ProfileClient Leaf(loopbackDialer(*RelayL), CC);
  for (int I = 0; I != 6; ++I)
    ASSERT_TRUE(Leaf.push(shardBundle(I), TestFingerprint).Ok);

  // The flusher thread runs asynchronously; poll for the root to see at
  // least the first triggered delta, then stop() drains the remainder.
  for (int Spin = 0; Spin != 400 && Root.stats().Merges == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(Root.stats().Merges, 0u) << "merge-count trigger never fired";
  Relay.stop();
  EXPECT_EQ(profile::serializeBundle(Root.merged()), serialFold(6));
  Root.stop();
}

/// stop() on a relay with an undrained aggregate pushes the final delta
/// upstream before shutting down — no shard left behind.
TEST(RelayMechanics, StopFlushesRemainingDelta) {
  auto *RootL = new LoopbackListener();
  ServerConfig RootC;
  RootC.Workers = 2;
  ProfileServer Root(std::unique_ptr<Listener>(RootL), RootC);
  Root.start();

  auto *RelayL = new LoopbackListener();
  ServerConfig RelayC;
  RelayC.Workers = 2;
  RelayC.Relay.Dial = loopbackDialer(*RootL);
  RelayC.Relay.Client.SessionId = 0xE1A3ULL;
  RelayC.Relay.Client.Fingerprint = TestFingerprint;
  ProfileServer Relay(std::unique_ptr<Listener>(RelayL), RelayC);
  Relay.start();

  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 0xC120ULL;
  ProfileClient Leaf(loopbackDialer(*RelayL), CC);
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(Leaf.push(shardBundle(I), TestFingerprint).Ok);

  Relay.stop(); // final flush happens here
  EXPECT_EQ(profile::serializeBundle(Root.merged()), serialFold(5));
  EXPECT_EQ(Root.stats().Duplicates, 0u);
  Root.stop();
}

} // namespace
