//===- tests/test_telemetry.cpp - Bench telemetry + perf gate -*- C++ -*-===//
///
/// Pins the wire format and the gate math of the benchmark telemetry
/// subsystem: JSON escaping and parse(write(x)) round-trips, the strict
/// parser's rejection diagnostics, median/MAD statistics, report and
/// suite (de)serialization, bench-binary discovery, and the perf gate's
/// noise-aware thresholds — an injected 2x slowdown must be flagged
/// while MAD-sized jitter must pass.
///
//===----------------------------------------------------------------------===//

#include "telemetry/BenchMatrix.h"
#include "telemetry/BenchReport.h"
#include "telemetry/Json.h"
#include "telemetry/PerfGate.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

using namespace ars::telemetry;

namespace {

// --------------------------------------------------------------------------
// JSON writer/parser
// --------------------------------------------------------------------------

TEST(TelemetryJson, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(escapeJsonString("plain"), "plain");
  EXPECT_EQ(escapeJsonString("a\"b"), "a\\\"b");
  EXPECT_EQ(escapeJsonString("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeJsonString("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escapeJsonString(std::string("a\x01z", 3)), "a\\u0001z");
  // UTF-8 passes through unescaped.
  EXPECT_EQ(escapeJsonString("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(TelemetryJson, RoundTripsThroughParser) {
  Json Doc = Json::object();
  Doc.set("name", Json::str("bench \"quoted\" \n\t\\path"));
  Doc.set("flag", Json::boolean(true));
  Doc.set("nothing", Json::null());
  Json Arr = Json::array();
  for (double V : {0.0, -1.5, 1e-17, 12345678901234.0, 0.1 + 0.2})
    Arr.push(Json::number(V));
  Doc.set("values", Arr);

  for (int Indent : {0, 2}) {
    JsonParseResult R = parseJson(Doc.write(Indent));
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Value.stringAt("name"), "bench \"quoted\" \n\t\\path");
    ASSERT_NE(R.Value.find("flag"), nullptr);
    EXPECT_TRUE(R.Value.find("flag")->asBool());
    EXPECT_TRUE(R.Value.find("nothing")->isNull());
    const Json *Vals = R.Value.find("values");
    ASSERT_NE(Vals, nullptr);
    ASSERT_EQ(Vals->items().size(), 5u);
    // %.17g is enough digits for doubles to round-trip bit-for-bit.
    EXPECT_EQ(Vals->items()[2].asNumber(), 1e-17);
    EXPECT_EQ(Vals->items()[4].asNumber(), 0.1 + 0.2);
  }
}

TEST(TelemetryJson, ParserRejectsMalformedDocuments) {
  const char *Bad[] = {
      "",             // empty
      "{",            // unterminated object
      "[1, 2",        // unterminated array
      "{\"a\": }",    // missing value
      "{\"a\": 1,}",  // trailing comma
      "\"\\x41\"",    // bad escape
      "\"unterminated", // unterminated string
      "01",           // leading zero
      "1 2",          // trailing garbage
      "nan",          // not JSON
      "{\"a\": 1 \"b\": 2}", // missing comma
  };
  for (const char *Text : Bad) {
    JsonParseResult R = parseJson(Text);
    EXPECT_FALSE(R.Ok) << "accepted: " << Text;
    EXPECT_FALSE(R.Error.empty());
  }
  // A raw control character inside a string is invalid JSON.
  JsonParseResult R = parseJson(std::string("\"a\nb\""));
  EXPECT_FALSE(R.Ok);
}

TEST(TelemetryJson, ObjectSetReplacesExistingKey) {
  Json Doc = Json::object();
  Doc.set("k", Json::number(1));
  Doc.set("k", Json::number(2));
  ASSERT_EQ(Doc.members().size(), 1u);
  EXPECT_EQ(Doc.numberAt("k"), 2.0);
}

// --------------------------------------------------------------------------
// Statistics
// --------------------------------------------------------------------------

TEST(TelemetryStats, MedianAndMad) {
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median({7.0}), 7.0);
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  // MAD of {1,2,3,4,100}: median 3, |x - 3| = {2,1,0,1,97}, median 1.
  EXPECT_EQ(medianAbsDeviation({1.0, 2.0, 3.0, 4.0, 100.0}), 1.0);
  EXPECT_EQ(medianAbsDeviation({5.0, 5.0, 5.0}), 0.0);
}

// --------------------------------------------------------------------------
// Report round-trip
// --------------------------------------------------------------------------

EnvFingerprint testEnv() {
  EnvFingerprint Env;
  Env.Compiler = "testcc 1.0";
  Env.Flags = "Release";
  Env.Host = "Linux x86_64";
  Env.GitSha = "abc123";
  Env.ScalePct = 15;
  Env.Jobs = 2;
  return Env;
}

TEST(TelemetryReport, RoundTripsThroughJson) {
  BenchReport Report("table1_exhaustive", testEnv());
  Report.addSimMetric("overhead_pct.javac", "pct",
                      Direction::LowerIsBetter, 71.25);
  Report.addHostMetric("wall_ms", "ms", Direction::LowerIsBetter,
                       {10.0, 12.0, 11.0, 11.5, 10.5});
  Report.addSimMetric("overlap_pct", "pct", Direction::HigherIsBetter,
                      93.8);
  Report.addSimMetric("samples", "count", Direction::Info, 213.0);

  BenchReport Parsed;
  std::string Error;
  ASSERT_TRUE(BenchReport::fromJson(Report.toJson(), &Parsed, &Error))
      << Error;
  EXPECT_EQ(Parsed.benchName(), "table1_exhaustive");
  EXPECT_EQ(Parsed.env().GitSha, "abc123");
  EXPECT_EQ(Parsed.env().ScalePct, 15);
  ASSERT_EQ(Parsed.metrics().size(), 4u);

  const Metric *Wall = Parsed.findMetric("wall_ms");
  ASSERT_NE(Wall, nullptr);
  EXPECT_EQ(Wall->Kind, MetricKind::Host);
  EXPECT_EQ(Wall->Reps, 5);
  EXPECT_EQ(Wall->Min, 10.0);
  EXPECT_EQ(Wall->Median, 11.0);
  EXPECT_EQ(Wall->Mad, 0.5);

  const Metric *Overlap = Parsed.findMetric("overlap_pct");
  ASSERT_NE(Overlap, nullptr);
  EXPECT_EQ(Overlap->Dir, Direction::HigherIsBetter);
  EXPECT_EQ(Overlap->Kind, MetricKind::Sim);
  EXPECT_EQ(Overlap->Median, 93.8);
  const Metric *Samples = Parsed.findMetric("samples");
  ASSERT_NE(Samples, nullptr);
  EXPECT_EQ(Samples->Dir, Direction::Info);
}

TEST(TelemetryReport, SuiteRoundTripAndBareReportWrapping) {
  BenchReport A("alpha", testEnv());
  A.addSimMetric("m", "pct", Direction::LowerIsBetter, 1.0);
  BenchReport B("beta", testEnv());
  B.addSimMetric("m", "pct", Direction::LowerIsBetter, 2.0);

  SuiteReport Suite;
  std::string Error;
  ASSERT_TRUE(mergeReports({A, B}, "abc123", testEnv(), &Suite, &Error))
      << Error;
  EXPECT_EQ(Suite.GitSha, "abc123");
  ASSERT_EQ(Suite.Benches.size(), 2u);

  SuiteReport Parsed;
  ASSERT_TRUE(SuiteReport::fromJson(Suite.toJson(), &Parsed, &Error))
      << Error;
  ASSERT_EQ(Parsed.Benches.size(), 2u);
  EXPECT_EQ(Parsed.Benches.at("beta").findMetric("m")->Median, 2.0);

  // A bare bench report parses as a one-bench suite, so perfgate can
  // diff two single-bench files directly.
  SuiteReport Wrapped;
  ASSERT_TRUE(SuiteReport::fromJson(A.toJson(), &Wrapped, &Error)) << Error;
  ASSERT_EQ(Wrapped.Benches.size(), 1u);
  EXPECT_EQ(Wrapped.Benches.begin()->first, "alpha");

  // Duplicate bench names must fail, not silently shadow.
  EXPECT_FALSE(mergeReports({A, A}, "abc123", testEnv(), &Suite, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(TelemetryReport, FromJsonRejectsGarbageAndWrongSchema) {
  BenchReport Out;
  std::string Error;
  EXPECT_FALSE(BenchReport::fromJson("not json", &Out, &Error));
  EXPECT_FALSE(BenchReport::fromJson("{}", &Out, &Error));
  EXPECT_FALSE(BenchReport::fromJson(
      "{\"schema\": \"something-else\", \"schemaVersion\": 1}", &Out,
      &Error));
}

// --------------------------------------------------------------------------
// Bench discovery
// --------------------------------------------------------------------------

class TempDir {
public:
  TempDir() {
    char Template[] = "/tmp/ars_telemetry_test_XXXXXX";
    Path = mkdtemp(Template);
  }
  ~TempDir() {
    if (Path.empty())
      return;
    for (const std::string &F : Files)
      ::unlink((Path + "/" + F).c_str());
    ::rmdir(Path.c_str());
  }
  void addFile(const std::string &Name, bool Executable) {
    std::ofstream Out(Path + "/" + Name);
    Out << "#!/bin/sh\n";
    Out.close();
    ::chmod((Path + "/" + Name).c_str(), Executable ? 0755 : 0644);
    Files.push_back(Name);
  }
  std::string Path;

private:
  std::vector<std::string> Files;
};

TEST(TelemetryMatrix, DiscoversExecutableBenchBinariesSorted) {
  TempDir Dir;
  ASSERT_FALSE(Dir.Path.empty());
  Dir.addFile("bench_zeta", true);
  Dir.addFile("bench_alpha", true);
  Dir.addFile("bench_notexec", false);   // no exec bit: skipped
  Dir.addFile("not_a_bench", true);      // wrong prefix: skipped
  Dir.addFile("bench_mid.json", true);   // telemetry output: still a
                                         // bench_* executable by name,
                                         // but json files in out-dirs
                                         // are not executable in real
                                         // trees; keep it to pin the
                                         // name-based contract
  std::string Error;
  std::vector<BenchBinary> Found = discoverBenches(Dir.Path, &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Found.size(), 3u);
  EXPECT_EQ(Found[0].Name, "alpha");
  EXPECT_EQ(Found[1].Name, "mid.json");
  EXPECT_EQ(Found[2].Name, "zeta");
  EXPECT_EQ(Found[0].Path, Dir.Path + "/bench_alpha");
}

TEST(TelemetryMatrix, DiscoveryErrorsOnMissingDirectory) {
  std::string Error;
  std::vector<BenchBinary> Found =
      discoverBenches("/nonexistent/ars/bench/dir", &Error);
  EXPECT_TRUE(Found.empty());
  EXPECT_FALSE(Error.empty());
}

TEST(TelemetryMatrix, BenchNameFromPath) {
  EXPECT_EQ(benchNameFromPath("/a/b/bench_table1_exhaustive"),
            "table1_exhaustive");
  EXPECT_EQ(benchNameFromPath("bench_fig7"), "fig7");
  EXPECT_EQ(benchNameFromPath("./bench/oddly_named"), "oddly_named");
}

// --------------------------------------------------------------------------
// Perf gate
// --------------------------------------------------------------------------

SuiteReport suiteWith(const std::vector<Metric> &Metrics) {
  BenchReport Report("bench", testEnv());
  for (const Metric &M : Metrics)
    Report.addMetric(M);
  SuiteReport Suite;
  Suite.GitSha = "abc123";
  Suite.Env = testEnv();
  Suite.Benches.emplace("bench", Report);
  return Suite;
}

Metric simMetric(const std::string &Name, double Median,
                 Direction Dir = Direction::LowerIsBetter) {
  Metric M;
  M.Name = Name;
  M.Unit = "pct";
  M.Dir = Dir;
  M.Kind = MetricKind::Sim;
  M.Reps = 1;
  M.Min = Median;
  M.Median = Median;
  M.Mad = 0.0;
  return M;
}

Metric hostMetric(const std::string &Name, double Median, double Mad,
                  Direction Dir = Direction::LowerIsBetter) {
  Metric M;
  M.Name = Name;
  M.Unit = "ms";
  M.Dir = Dir;
  M.Kind = MetricKind::Host;
  M.Reps = 5;
  M.Min = Median - Mad;
  M.Median = Median;
  M.Mad = Mad;
  return M;
}

TEST(PerfGate, IdenticalSuitesPass) {
  SuiteReport S = suiteWith({simMetric("overhead", 4.9),
                             hostMetric("wall_ms", 120.0, 3.0)});
  GateResult R = compareSuites(S, S);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_NE(R.render().find("PASS"), std::string::npos);
}

TEST(PerfGate, FlagsInjectedTwoXSlowdown) {
  SuiteReport Base = suiteWith({simMetric("overhead", 4.9)});
  SuiteReport Cur = suiteWith({simMetric("overhead", 9.8)});
  GateResult R = compareSuites(Base, Cur);
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.Regressions, 1u);
  EXPECT_NE(R.render().find("REGRESSED"), std::string::npos);
  EXPECT_NE(R.render().find("overhead"), std::string::npos);
}

TEST(PerfGate, SubFloorDriftOnSimMetricPasses) {
  // Deterministic metrics have MAD 0; the 2% relative floor absorbs
  // sub-percent arithmetic drift.
  SuiteReport Base = suiteWith({simMetric("overhead", 100.0)});
  SuiteReport Cur = suiteWith({simMetric("overhead", 101.0)});
  EXPECT_TRUE(compareSuites(Base, Cur).Ok);
  SuiteReport Beyond = suiteWith({simMetric("overhead", 103.0)});
  EXPECT_FALSE(compareSuites(Base, Beyond).Ok);
}

TEST(PerfGate, MadSizedJitterPassesEvenWhenHostGated) {
  // Noise model: MAD 3ms around 120ms. A wobble of ~1 MAD-sigma is
  // jitter; MadK=4 with the 1.4826 sigma factor allows ~17.8ms.
  SuiteReport Base = suiteWith({hostMetric("wall_ms", 120.0, 3.0)});
  SuiteReport Jitter = suiteWith({hostMetric("wall_ms", 124.0, 3.0)});
  GateOptions Opts;
  Opts.GateHost = true;
  GateResult R = compareSuites(Base, Jitter, Opts);
  EXPECT_TRUE(R.Ok) << R.render(true);

  // A genuine 2x host slowdown is beyond any noise allowance.
  SuiteReport Slow = suiteWith({hostMetric("wall_ms", 240.0, 3.0)});
  GateResult R2 = compareSuites(Base, Slow, Opts);
  EXPECT_FALSE(R2.Ok);
  EXPECT_EQ(R2.Regressions, 1u);
}

TEST(PerfGate, HostMetricsSkippedWithoutGateHost) {
  // Against a committed (different-machine) baseline, even a 2x host
  // delta is only a warning unless --gate-host.
  SuiteReport Base = suiteWith({hostMetric("wall_ms", 120.0, 3.0)});
  SuiteReport Slow = suiteWith({hostMetric("wall_ms", 240.0, 3.0)});
  GateResult R = compareSuites(Base, Slow);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.HostSkips, 1u);
  EXPECT_NE(R.render().find("host-skipped"), std::string::npos);
}

TEST(PerfGate, HigherIsBetterRegressesDownward) {
  SuiteReport Base = suiteWith(
      {simMetric("overlap", 93.8, Direction::HigherIsBetter)});
  SuiteReport Dropped = suiteWith(
      {simMetric("overlap", 80.0, Direction::HigherIsBetter)});
  EXPECT_FALSE(compareSuites(Base, Dropped).Ok);
  // Moving up is an improvement, never a failure.
  SuiteReport Raised = suiteWith(
      {simMetric("overlap", 99.0, Direction::HigherIsBetter)});
  GateResult R = compareSuites(Base, Raised);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Improvements, 1u);
}

TEST(PerfGate, InfoMetricsAreNeverGated) {
  SuiteReport Base =
      suiteWith({simMetric("samples", 100.0, Direction::Info)});
  SuiteReport Wild =
      suiteWith({simMetric("samples", 100000.0, Direction::Info)});
  EXPECT_TRUE(compareSuites(Base, Wild).Ok);
}

TEST(PerfGate, MissingMetricIsFatalNewMetricIsNot) {
  SuiteReport Base = suiteWith(
      {simMetric("kept", 1.0), simMetric("dropped", 2.0)});
  SuiteReport Cur =
      suiteWith({simMetric("kept", 1.0), simMetric("added", 3.0)});
  GateResult R = compareSuites(Base, Cur);
  EXPECT_FALSE(R.Ok); // lost coverage must not read as a pass
  EXPECT_EQ(R.MissingMetrics, 1u);
  EXPECT_EQ(R.NewMetrics, 1u);
  EXPECT_NE(R.render().find("MISSING"), std::string::npos);

  // A whole missing bench is as fatal as a missing metric.
  SuiteReport Empty;
  Empty.GitSha = "abc123";
  Empty.Env = testEnv();
  GateResult R2 = compareSuites(Base, Empty);
  EXPECT_FALSE(R2.Ok);
  EXPECT_EQ(R2.MissingMetrics, 2u);
}

TEST(PerfGate, CliComparesFilesAndSignalsRegression) {
  TempDir Dir;
  ASSERT_FALSE(Dir.Path.empty());
  SuiteReport Base = suiteWith({simMetric("overhead", 4.9)});
  SuiteReport Slow = suiteWith({simMetric("overhead", 9.8)});

  std::string BasePath = Dir.Path + "/base.json";
  std::string SlowPath = Dir.Path + "/slow.json";
  {
    std::ofstream(BasePath) << Base.toJson();
    std::ofstream(SlowPath) << Slow.toJson();
  }

  EXPECT_EQ(runPerfGateCli({BasePath, BasePath}, "perfgate-test"), 0);
  EXPECT_EQ(runPerfGateCli({BasePath, SlowPath}, "perfgate-test"), 1);
  // Usage and load errors are exit 2, distinct from regressions.
  EXPECT_EQ(runPerfGateCli({BasePath}, "perfgate-test"), 2);
  EXPECT_EQ(runPerfGateCli({BasePath, Dir.Path + "/absent.json"},
                           "perfgate-test"),
            2);
  EXPECT_EQ(runPerfGateCli({BasePath, SlowPath, "--bogus-flag"},
                           "perfgate-test"),
            2);
  ::unlink(BasePath.c_str());
  ::unlink(SlowPath.c_str());
}

} // namespace
