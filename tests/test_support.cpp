//===- tests/test_support.cpp - support/ unit tests -----------*- C++ -*-===//

#include "support/Binary.h"
#include "support/Support.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace ars::support;

TEST(Xorshift64, Deterministic) {
  Xorshift64 A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xorshift64, DifferentSeedsDiverge) {
  Xorshift64 A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 5);
}

TEST(Xorshift64, ZeroSeedIsUsable) {
  Xorshift64 R(0);
  EXPECT_NE(R.next(), 0u);
}

TEST(Xorshift64, NextBelowStaysInRange) {
  Xorshift64 R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Xorshift64, NextInRangeInclusive) {
  Xorshift64 R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all values in [-3,3] should appear";
}

TEST(Xorshift64, ChanceExtremes) {
  Xorshift64 R(9);
  for (int I = 0; I != 100; ++I) {
    EXPECT_TRUE(R.chance(5, 5));
    EXPECT_FALSE(R.chance(0, 5));
  }
}

TEST(FormatString, Basic) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("%.1f", 3.25), "3.2");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(FormatString, LongOutput) {
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 500u);
}

TEST(SplitString, KeepsEmptyFields) {
  auto Parts = splitString("a,,b", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
}

TEST(SplitString, NoSeparator) {
  auto Parts = splitString("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(PercentOver, Basics) {
  EXPECT_DOUBLE_EQ(percentOver(100, 106), 6.0);
  EXPECT_DOUBLE_EQ(percentOver(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(percentOver(200, 100), -50.0);
  EXPECT_DOUBLE_EQ(percentOver(0, 50), 0.0);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter T({"Name", "Value"});
  T.beginRow();
  T.cell("short");
  T.cellPercent(4.95);
  T.beginRow();
  T.cell("a-much-longer-name");
  T.cellInt(12);
  std::string Out = T.render();
  EXPECT_NE(Out.find("| Name"), std::string::npos);
  EXPECT_NE(Out.find("5.0"), std::string::npos) << "percent rounds to 5.0";
  EXPECT_NE(Out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("|---"), std::string::npos);
}

TEST(TablePrinter, CountFormatting) {
  TablePrinter T({"N"});
  T.beginRow();
  T.cellCount(11000000.0);
  EXPECT_NE(T.render().find("1.1e+07"), std::string::npos);
  TablePrinter S({"N"});
  S.beginRow();
  S.cellCount(1137.0);
  EXPECT_NE(S.render().find("1137"), std::string::npos);
}

TEST(HostTimer, MovesForward) {
  HostTimer T;
  volatile double Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + I;
  EXPECT_GE(T.elapsedMs(), 0.0);
}

TEST(ByteReader, ReadBytesInPlace) {
  std::string Buf = "abcdef";
  ByteReader R(Buf);
  const char *P = nullptr;
  ASSERT_TRUE(R.readBytes(&P, 4));
  EXPECT_EQ(std::string(P, 4), "abcd");
  EXPECT_EQ(R.remaining(), 2u);
  EXPECT_FALSE(R.readBytes(&P, 3)); // only 2 left
  EXPECT_TRUE(R.failed());          // sticky, like every other read
}

TEST(ByteReader, ReadBytesZeroIsFine) {
  std::string Buf = "x";
  ByteReader R(Buf);
  const char *P = nullptr;
  EXPECT_TRUE(R.readBytes(&P, 0));
  EXPECT_FALSE(R.failed());
}

TEST(ByteReader, LengthPrefixedRoundTrip) {
  std::string Buf;
  appendVarint(Buf, 5);
  Buf.append("hello");
  ByteReader R(Buf);
  std::string Out;
  ASSERT_TRUE(R.readLengthPrefixed(&Out));
  EXPECT_EQ(Out, "hello");
  EXPECT_TRUE(R.atEnd());
}

TEST(ByteReader, LengthPrefixedHostileLengthRejected) {
  // A declared length far beyond the remaining bytes must fail before
  // any allocation — this is the guard the wire protocol leans on.
  std::string Buf;
  appendVarint(Buf, UINT64_MAX);
  Buf.append("xy");
  ByteReader R(Buf);
  std::string Out;
  EXPECT_FALSE(R.readLengthPrefixed(&Out));
  EXPECT_TRUE(R.failed());
}

TEST(ByteReader, LengthPrefixedHonorsMaxLen) {
  std::string Buf;
  appendVarint(Buf, 6);
  Buf.append("sixsix");
  {
    ByteReader R(Buf);
    std::string Out;
    EXPECT_FALSE(R.readLengthPrefixed(&Out, /*MaxLen=*/5));
  }
  {
    ByteReader R(Buf);
    std::string Out;
    EXPECT_TRUE(R.readLengthPrefixed(&Out, /*MaxLen=*/6));
    EXPECT_EQ(Out, "sixsix");
  }
}

TEST(ByteReader, LengthPrefixedTruncatedPayloadRejected) {
  std::string Buf;
  appendVarint(Buf, 10);
  Buf.append("short"); // 5 of the declared 10 bytes
  ByteReader R(Buf);
  std::string Out;
  EXPECT_FALSE(R.readLengthPrefixed(&Out));
}

} // namespace
