//===- tests/test_bytecode.cpp - bytecode/ unit tests ---------*- C++ -*-===//

#include "bytecode/Builder.h"
#include "bytecode/Disassembler.h"
#include "bytecode/Module.h"
#include "bytecode/Verifier.h"

#include <gtest/gtest.h>

namespace {

using namespace ars::bytecode;

/// Builds a module with one class (two fields), one global, and returns it.
Module makeSymbols() {
  Module M;
  int C = M.addClass("Point");
  M.addField(C, "x", Type::I64);
  M.addField(C, "y", Type::F64);
  M.addGlobal("counter", Type::I64);
  return M;
}

TEST(Module, FieldIdsAreModuleGlobal) {
  Module M;
  int A = M.addClass("A");
  int B = M.addClass("B");
  int F0 = M.addField(A, "x", Type::I64);
  int F1 = M.addField(B, "y", Type::I64);
  int G = M.addGlobal("g", Type::I64);
  EXPECT_EQ(F0, 0);
  EXPECT_EQ(F1, 1);
  EXPECT_EQ(M.globalAt(G).FieldId, 2);
  EXPECT_EQ(M.numFieldIds(), 3);
  EXPECT_EQ(M.fieldIdName(0), "A.x");
  EXPECT_EQ(M.fieldIdName(1), "B.y");
  EXPECT_EQ(M.fieldIdName(2), "global.g");
}

TEST(Module, FunctionLookup) {
  Module M;
  int F = M.addFunction("foo", {Type::I64}, Type::I64);
  EXPECT_EQ(M.functionByName("foo")->FuncId, F);
  EXPECT_EQ(M.functionByName("bar"), nullptr);
  EXPECT_EQ(M.functionAt(F).NumLocals, 1);
  EXPECT_EQ(M.functionAt(F).LocalTypes.size(), 1u);
}

TEST(Builder, LabelsResolveForwardAndBackward) {
  Module M;
  int F = M.addFunction("f", {Type::I64}, Type::I64);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  Label Loop = B.makeLabel();
  Label Exit = B.makeLabel();
  B.bind(Loop);
  B.emit(Opcode::Load, 0);
  B.emitBranch(Opcode::BrIf, Exit); // forward
  B.emit(Opcode::IConst, 1);
  B.emit(Opcode::Store, 0);
  B.emitBranch(Opcode::Br, Loop); // backward
  B.bind(Exit);
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::RetVal);
  ASSERT_TRUE(B.finish());
  EXPECT_EQ(Func.Code[1].A, 5) << "forward branch patched to Exit";
  EXPECT_EQ(Func.Code[4].A, 0) << "backward branch to Loop";
}

TEST(Builder, UnboundLabelFailsFinish) {
  Module M;
  int F = M.addFunction("f", {}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  Label L = B.makeLabel();
  B.emitBranch(Opcode::Br, L);
  B.emit(Opcode::Ret);
  EXPECT_FALSE(B.finish());
}

TEST(Verifier, AcceptsStraightLineArith) {
  Module M = makeSymbols();
  int F = M.addFunction("f", {Type::I64, Type::I64}, Type::I64);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::Load, 1);
  B.emit(Opcode::Add);
  B.emit(Opcode::RetVal);
  ASSERT_TRUE(B.finish());
  VerifyResult R = verifyFunction(M, Func);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.MaxStack, 2);
}

TEST(Verifier, RejectsStackUnderflow) {
  Module M;
  int F = M.addFunction("f", {}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  B.emit(Opcode::Pop);
  B.emit(Opcode::Ret);
  ASSERT_TRUE(B.finish());
  EXPECT_FALSE(verifyFunction(M, Func).Ok);
}

TEST(Verifier, RejectsTypeMismatch) {
  Module M;
  int F = M.addFunction("f", {}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  B.emit(Opcode::IConst, 1);
  B.emitFConst(2.0);
  B.emit(Opcode::Add); // int + float
  B.emit(Opcode::Pop);
  B.emit(Opcode::Ret);
  ASSERT_TRUE(B.finish());
  VerifyResult R = verifyFunction(M, Func);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("expected int"), std::string::npos) << R.Error;
}

TEST(Verifier, RejectsInconsistentJoinDepth) {
  Module M;
  int F = M.addFunction("f", {Type::I64}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  Label Join = B.makeLabel();
  B.emit(Opcode::Load, 0);
  B.emitBranch(Opcode::BrIf, Join); // join with depth 0
  B.emit(Opcode::IConst, 5);        // depth 1 on fallthrough
  B.bind(Join);
  B.emit(Opcode::Ret);
  ASSERT_TRUE(B.finish());
  VerifyResult R = verifyFunction(M, Func);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("depth"), std::string::npos) << R.Error;
}

TEST(Verifier, RejectsBadBranchTarget) {
  Module M;
  int F = M.addFunction("f", {}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Func.Code.emplace_back(Opcode::Br, 99);
  EXPECT_FALSE(verifyFunction(M, Func).Ok);
}

TEST(Verifier, RejectsMissingTerminator) {
  Module M;
  int F = M.addFunction("f", {}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Func.Code.emplace_back(Opcode::Nop);
  EXPECT_FALSE(verifyFunction(M, Func).Ok);
}

TEST(Verifier, RejectsLocalTypeViolation) {
  Module M;
  int F = M.addFunction("f", {Type::I64}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  B.emitFConst(1.5);
  B.emit(Opcode::Store, 0); // float into int slot
  B.emit(Opcode::Ret);
  ASSERT_TRUE(B.finish());
  EXPECT_FALSE(verifyFunction(M, Func).Ok);
}

TEST(Verifier, ChecksCallSignature) {
  Module M;
  int Callee = M.addFunction("callee", {Type::I64, Type::F64}, Type::I64);
  (void)Callee;
  int F = M.addFunction("caller", {}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  B.emit(Opcode::IConst, 1);
  B.emit(Opcode::IConst, 2); // wrong: second arg must be float
  B.emit(Opcode::Call, 0);
  B.emit(Opcode::Pop);
  B.emit(Opcode::Ret);
  ASSERT_TRUE(B.finish());
  EXPECT_FALSE(verifyFunction(M, Func).Ok);
}

TEST(Verifier, FieldOpsTypeThroughModule) {
  Module M = makeSymbols();
  int F = M.addFunction("f", {}, Type::F64);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  B.emit(Opcode::New, 0);
  B.emit(Opcode::GetField, 1); // Point.y : float
  B.emit(Opcode::RetVal);
  ASSERT_TRUE(B.finish());
  VerifyResult R = verifyFunction(M, Func);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(Verifier, LoopWithConsistentState) {
  Module M;
  int F = M.addFunction("f", {Type::I64}, Type::I64);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  int Acc = B.addLocal(Type::I64);
  Label Head = B.makeLabel(), Out = B.makeLabel();
  B.bind(Head);
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::IConst, 0);
  B.emit(Opcode::CmpLe);
  B.emitBranch(Opcode::BrIf, Out);
  B.emit(Opcode::Load, Acc);
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::Add);
  B.emit(Opcode::Store, Acc);
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::IConst, 1);
  B.emit(Opcode::Sub);
  B.emit(Opcode::Store, 0);
  B.emitBranch(Opcode::Br, Head);
  B.bind(Out);
  B.emit(Opcode::Load, Acc);
  B.emit(Opcode::RetVal);
  ASSERT_TRUE(B.finish());
  VerifyResult R = verifyFunction(M, Func);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(Disassembler, ResolvesNames) {
  Module M = makeSymbols();
  int F = M.addFunction("f", {}, Type::Void);
  FunctionDef &Func = M.functionAt(F);
  Builder B(Func);
  B.emit(Opcode::New, 0);
  B.emit(Opcode::IConst, 3);
  B.emit(Opcode::PutField, 0);
  B.emit(Opcode::Ret);
  ASSERT_TRUE(B.finish());
  std::string Text = disassembleModule(M);
  EXPECT_NE(Text.find("class Point"), std::string::npos);
  EXPECT_NE(Text.find("putfield Point.x"), std::string::npos);
  EXPECT_NE(Text.find("global int counter"), std::string::npos);
  EXPECT_NE(Text.find("func f"), std::string::npos);
}

TEST(Disassembler, CallShowsCalleeName) {
  Module M;
  M.addFunction("target", {}, Type::Void);
  Inst Call(Opcode::Call, 0);
  EXPECT_NE(disassembleInst(M, Call).find("target"), std::string::npos);
}

TEST(OpcodeInfo, TerminatorsAndBranches) {
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isBranch(Opcode::BrIf));
  EXPECT_FALSE(isBranch(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Add));
  EXPECT_STREQ(opcodeName(Opcode::GetField), "getfield");
}

} // namespace
