//===- tests/test_coalesce.cpp - check coalescing and hoisting -*- C++ -*-===//
///
/// The check-coalescing pass (sampling/Coalesce.h) must reduce dynamic
/// checks without changing what the profiles say: identical profiles at
/// interval 1 (where sampling is exhaustive by construction), identical
/// program results everywhere, strictly fewer check executions and
/// simulated cycles on loop-heavy code, and clean Property-1 structure.
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "sampling/Property1.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

/// Constant-trip inner loop with field traffic: the hoisting candidate.
const char *CountedLoopSrc = R"(
  class S { int v; int w; }
  int leaf(int x) { return x + 1; }
  int main(int n) {
    S s = new S;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      for (int j = 0; j < 16; j = j + 1) {
        s.v = s.v + j;
        s.w = s.w + 1;
        acc = acc + leaf(s.v);
      }
    }
    return acc;
  }
)";

/// Straight-line block dense in field accesses: the coalescing candidate.
const char *DenseBlockSrc = R"(
  class S { int a; int b; int c; int d; }
  int main(int n) {
    S s = new S;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      s.a = s.a + 1;
      s.b = s.b + 2;
      s.c = s.c + 3;
      s.d = s.d + i;
      acc = acc + s.a + s.d;
    }
    return acc;
  }
)";

/// A loop whose bound makes it never run.
const char *ZeroTripSrc = R"(
  class S { int v; }
  int main(int n) {
    S s = new S;
    for (int i = 0; i < 0; i = i + 1) {
      s.v = s.v + 1;
    }
    return s.v + n;
  }
)";

harness::RunConfig config(sampling::Mode M, int64_t Interval, bool Coalesce,
                          bool Hoist) {
  harness::RunConfig C;
  C.Transform.M = M;
  C.Transform.CoalesceChecks = Coalesce;
  C.Transform.HoistLoopProbes = Hoist;
  C.Engine.SampleInterval = Interval;
  C.Clients = {&CallEdges, &FieldAccesses};
  return C;
}

int statSum(const harness::InstrumentedProgram &IP,
            int sampling::TransformStats::*Field) {
  int Sum = 0;
  for (const sampling::TransformResult &R : IP.Transforms)
    Sum += R.Stats.*Field;
  return Sum;
}

harness::InstrumentedProgram instrument(const harness::Program &P,
                                        const harness::RunConfig &C) {
  return harness::instrumentProgram(P, C.Clients, C.Transform);
}

/// Every function verifies, has a consistent role map, and passes the
/// Property-1 placement checker.
void expectClean(const harness::InstrumentedProgram &IP,
                 const sampling::Options &Opts) {
  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty())
        << ir::printFunction(IP.Funcs[F]);
    std::string Bad =
        sampling::checkProperty1Static(IP.Funcs[F], IP.Transforms[F], Opts);
    EXPECT_TRUE(Bad.empty()) << Bad;
  }
}

TEST(Hoist, MovesExhaustiveProbesOutOfCountedLoops) {
  harness::Program P = build(CountedLoopSrc);
  harness::RunConfig Plain = config(sampling::Mode::Exhaustive, 0, false,
                                    false);
  harness::RunConfig Hoisted = config(sampling::Mode::Exhaustive, 0, false,
                                      true);

  harness::InstrumentedProgram IP = instrument(P, Hoisted);
  EXPECT_GT(statSum(IP, &sampling::TransformStats::ProbesHoisted), 0);
  expectClean(IP, Hoisted.Transform);

  auto Base = harness::runExperiment(P, 50, Plain);
  auto Opt = harness::runExperiment(P, 50, Hoisted);
  ASSERT_TRUE(Base.Stats.Ok && Opt.Stats.Ok)
      << Base.Stats.Error << Opt.Stats.Error;

  // Same answer, same profiles, same number of recorded events -- but
  // the events arrive in bulk, so the instrumented run is cheaper.
  EXPECT_EQ(Base.Stats.MainResult, Opt.Stats.MainResult);
  EXPECT_EQ(Base.Profiles.FieldAccesses.counts(),
            Opt.Profiles.FieldAccesses.counts());
  EXPECT_EQ(Base.Profiles.CallEdges.counts(),
            Opt.Profiles.CallEdges.counts());
  EXPECT_EQ(Base.Stats.ProbeBodiesRun, Opt.Stats.ProbeBodiesRun);
  EXPECT_LT(Opt.Stats.Cycles, Base.Stats.Cycles);
}

TEST(Hoist, NoDuplicationIntervalOneStaysExact) {
  harness::Program P = build(CountedLoopSrc);
  auto Perfect = harness::runExperiment(
      P, 40, config(sampling::Mode::Exhaustive, 0, false, false));
  ASSERT_TRUE(Perfect.Stats.Ok) << Perfect.Stats.Error;

  harness::RunConfig Optimized =
      config(sampling::Mode::NoDuplication, 1, true, true);
  harness::InstrumentedProgram IP = instrument(P, Optimized);
  EXPECT_GT(statSum(IP, &sampling::TransformStats::ChecksHoisted), 0);
  expectClean(IP, Optimized.Transform);

  auto Opt = harness::runExperiment(P, 40, Optimized);
  ASSERT_TRUE(Opt.Stats.Ok) << Opt.Stats.Error;
  EXPECT_EQ(Perfect.Profiles.FieldAccesses.counts(),
            Opt.Profiles.FieldAccesses.counts());
  EXPECT_EQ(Perfect.Profiles.CallEdges.counts(),
            Opt.Profiles.CallEdges.counts());

  // Property 1 can only improve: fewer guards executed than the
  // unoptimized No-Duplication configuration.
  auto Plain = harness::runExperiment(
      P, 40, config(sampling::Mode::NoDuplication, 1, false, false));
  ASSERT_TRUE(Plain.Stats.Ok);
  EXPECT_LT(Opt.checksExecuted(), Plain.checksExecuted());
}

TEST(Coalesce, MergesSameBlockChecks) {
  harness::Program P = build(DenseBlockSrc);
  harness::RunConfig Merged =
      config(sampling::Mode::NoDuplication, 1, true, false);
  harness::InstrumentedProgram IP = instrument(P, Merged);
  EXPECT_GT(statSum(IP, &sampling::TransformStats::ChecksCoalesced), 0);
  expectClean(IP, Merged.Transform);

  auto Perfect = harness::runExperiment(
      P, 60, config(sampling::Mode::Exhaustive, 0, false, false));
  auto Opt = harness::runExperiment(P, 60, Merged);
  auto Plain = harness::runExperiment(
      P, 60, config(sampling::Mode::NoDuplication, 1, false, false));
  ASSERT_TRUE(Perfect.Stats.Ok && Opt.Stats.Ok && Plain.Stats.Ok);

  EXPECT_EQ(Perfect.Profiles.FieldAccesses.counts(),
            Opt.Profiles.FieldAccesses.counts());
  EXPECT_EQ(Perfect.Profiles.CallEdges.counts(),
            Opt.Profiles.CallEdges.counts());
  EXPECT_EQ(Opt.Stats.MainResult, Plain.Stats.MainResult);
  EXPECT_LT(Opt.Stats.GuardedProbeExecs, Plain.Stats.GuardedProbeExecs);
}

TEST(Coalesce, CheaperWhenSamplingIsOff) {
  // Interval 0 never fires a guard, isolating pure check overhead: the
  // coalesced configuration must be strictly cheaper in simulated cycles
  // and must record exactly nothing, like the unoptimized one.
  harness::Program P = build(CountedLoopSrc);
  auto Plain = harness::runExperiment(
      P, 60, config(sampling::Mode::NoDuplication, 0, false, false));
  auto Opt = harness::runExperiment(
      P, 60, config(sampling::Mode::NoDuplication, 0, true, true));
  ASSERT_TRUE(Plain.Stats.Ok && Opt.Stats.Ok);
  EXPECT_EQ(Plain.Stats.MainResult, Opt.Stats.MainResult);
  EXPECT_EQ(Plain.Stats.SamplesTaken + Plain.Stats.GuardedProbesTaken, 0u);
  EXPECT_EQ(Opt.Stats.SamplesTaken + Opt.Stats.GuardedProbesTaken, 0u);
  EXPECT_EQ(Opt.Profiles.FieldAccesses.total(), 0u);
  EXPECT_LT(Opt.Stats.GuardedProbeExecs, Plain.Stats.GuardedProbeExecs);
  EXPECT_LT(Opt.Stats.Cycles, Plain.Stats.Cycles);
}

TEST(Hoist, ZeroTripLoopBodyProbesAreDropped) {
  harness::Program P = build(ZeroTripSrc);
  harness::RunConfig Hoisted =
      config(sampling::Mode::Exhaustive, 0, false, true);
  harness::InstrumentedProgram IP = instrument(P, Hoisted);
  EXPECT_GT(statSum(IP, &sampling::TransformStats::ProbesDropped), 0);
  expectClean(IP, Hoisted.Transform);

  auto Base = harness::runExperiment(
      P, 7, config(sampling::Mode::Exhaustive, 0, false, false));
  auto Opt = harness::runExperiment(P, 7, Hoisted);
  ASSERT_TRUE(Base.Stats.Ok && Opt.Stats.Ok);
  EXPECT_EQ(Base.Stats.MainResult, Opt.Stats.MainResult);
  EXPECT_EQ(Base.Profiles.FieldAccesses.counts(),
            Opt.Profiles.FieldAccesses.counts());
}

TEST(Coalesce, WeightedGuardFiresMultipleIntervalsWorth) {
  // At interval 5, a coalesced-and-hoisted guard of weight 16k decrements
  // past several reset points at once; the engine must treat that as one
  // taken sample (counter semantics), yet record all 16k-weighted events.
  // The run must still satisfy Property 1 relative to the unoptimized
  // configuration and agree on the program result.
  harness::Program P = build(CountedLoopSrc);
  auto Plain = harness::runExperiment(
      P, 30, config(sampling::Mode::NoDuplication, 5, false, false));
  auto Opt = harness::runExperiment(
      P, 30, config(sampling::Mode::NoDuplication, 5, true, true));
  ASSERT_TRUE(Plain.Stats.Ok && Opt.Stats.Ok);
  EXPECT_EQ(Plain.Stats.MainResult, Opt.Stats.MainResult);
  EXPECT_LE(Opt.checksExecuted(), Plain.checksExecuted());
  EXPECT_GT(Opt.samplesTaken(), 0u);
  EXPECT_GT(Opt.Profiles.FieldAccesses.total(), 0u);
}

TEST(Coalesce, PassIsIdleOnDuplicationModes) {
  // Duplicated code is acyclic and its checking loops keep SampleCheck
  // exits on their backedges, so the optimizer must find nothing to do --
  // and in particular must not perturb the duplication invariants.
  harness::Program P = build(CountedLoopSrc);
  for (sampling::Mode M : {sampling::Mode::FullDuplication,
                           sampling::Mode::PartialDuplication}) {
    harness::RunConfig C = config(M, 7, true, true);
    harness::InstrumentedProgram IP = instrument(P, C);
    EXPECT_EQ(statSum(IP, &sampling::TransformStats::ChecksCoalesced), 0)
        << sampling::modeName(M);
    EXPECT_EQ(statSum(IP, &sampling::TransformStats::ChecksHoisted), 0)
        << sampling::modeName(M);
    expectClean(IP, C.Transform);
  }
}

TEST(Coalesce, WorkloadSuiteStaysExactAtIntervalOne) {
  // The interval-1 differential across the whole workload suite, with
  // the optimizer on: still bit-identical to the exhaustive profile
  // (volano excepted; its spin-waits legitimately vary, see
  // test_sampling.cpp).
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    if (std::string(W.Name) == "volano")
      continue;
    harness::Program P = build(W.Source);
    auto Perfect = harness::runExperiment(
        P, 1, config(sampling::Mode::Exhaustive, 0, false, false));
    auto Opt = harness::runExperiment(
        P, 1, config(sampling::Mode::NoDuplication, 1, true, true));
    ASSERT_TRUE(Perfect.Stats.Ok && Opt.Stats.Ok) << W.Name;
    EXPECT_EQ(Perfect.Profiles.FieldAccesses.counts(),
              Opt.Profiles.FieldAccesses.counts())
        << W.Name;
    EXPECT_EQ(Perfect.Profiles.CallEdges.counts(),
              Opt.Profiles.CallEdges.counts())
        << W.Name;
  }
}

} // namespace
