//===- tests/test_paths.cpp - edge & path profiling clients ---*- C++ -*-===//
///
/// The section 2 "applicability" claims made executable: intraprocedural
/// edge profiling and Ball-Larus style path profiling inserted as-is into
/// the framework, including the rule that backedge-associated events
/// attach to the duplicated-code exit transfer.
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "profile/Overlap.h"
#include "ir/IRVerifier.h"
#include "sampling/Property1.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::EdgeCountInstrumentation EdgeCounts;
instr::PathProfileInstrumentation PathProfiles;
instr::BlockCountInstrumentation BlockCounts(4, /*Stride=*/1);

const char *DiamondLoopSrc = R"(
  int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      if ((i & 1) == 0) { acc = acc + i; }
      else { acc = acc + 2 * i; }
      if (acc > 100000) { acc = acc - 100000; }
    }
    return acc;
  }
)";

TEST(EdgeProfiling, FlowConservation) {
  // Exhaustive edge counts must satisfy flow conservation against
  // exhaustive block counts: for every non-entry block, the sum of
  // incoming edge counts equals the block's execution count.
  harness::Program P = build(DiamondLoopSrc);
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Exhaustive;
  C.Clients = {&EdgeCounts, &BlockCounts};
  auto R = harness::runExperiment(P, 500, C);
  ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
  ASSERT_GT(R.Profiles.Edges.total(), 0u);

  std::map<std::pair<int, int>, uint64_t> Incoming;
  for (const auto &[Key, Count] : R.Profiles.Edges.counts())
    Incoming[{std::get<0>(Key), std::get<2>(Key)}] += Count;
  const ir::IRFunction &Main =
      P.Funcs[P.M.functionByName("main")->FuncId];
  for (const auto &[Key, Count] : R.Profiles.BlockCounts.counts()) {
    auto [FuncId, Block] = Key;
    if (FuncId == Main.FuncId && Block == Main.Entry)
      continue; // entry also executes once without an incoming edge
    auto It = Incoming.find({FuncId, Block});
    uint64_t In = It == Incoming.end() ? 0 : It->second;
    EXPECT_EQ(In, Count) << "func " << FuncId << " block " << Block;
  }
}

TEST(EdgeProfiling, SampledMatchesExhaustiveAtIntervalOne) {
  harness::Program P = build(DiamondLoopSrc);
  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&EdgeCounts};
  auto PR = harness::runExperiment(P, 300, Perfect);

  harness::RunConfig Sampled = Perfect;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  Sampled.Engine.SampleInterval = 1;
  auto SR = harness::runExperiment(P, 300, Sampled);
  ASSERT_TRUE(PR.Stats.Ok && SR.Stats.Ok);
  EXPECT_EQ(PR.Profiles.Edges.counts(), SR.Profiles.Edges.counts());
  EXPECT_EQ(PR.Stats.MainResult, SR.Stats.MainResult);
}

TEST(PathProfiling, PathEndsEqualEntriesPlusBackedges) {
  harness::Program P = build(DiamondLoopSrc);
  auto Base = harness::runBaseline(P, 400);
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Exhaustive;
  C.Clients = {&PathProfiles};
  auto R = harness::runExperiment(P, 400, C);
  ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
  // A path ends at every return and every backedge traversal; together
  // with method entries those are exactly the baseline yieldpoint count.
  EXPECT_EQ(R.Profiles.Paths.total(), Base.Stats.YieldpointExecs);
}

TEST(PathProfiling, DistinguishesLoopBodyPaths) {
  harness::Program P = build(DiamondLoopSrc);
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Exhaustive;
  C.Clients = {&PathProfiles};
  auto R = harness::runExperiment(P, 400, C);
  ASSERT_TRUE(R.Stats.Ok);
  // The loop body has two if-arms and a rare third branch: at least two
  // distinct hot path ids in main must appear with roughly equal counts.
  const ir::IRFunction &Main = P.Funcs[P.M.functionByName("main")->FuncId];
  std::vector<uint64_t> MainPaths;
  for (const auto &[Key, Count] : R.Profiles.Paths.counts())
    if (Key.first == Main.FuncId && Count > 10)
      MainPaths.push_back(Count);
  ASSERT_GE(MainPaths.size(), 2u);
  double Ratio = static_cast<double>(MainPaths[0]) /
                 static_cast<double>(MainPaths[1]);
  EXPECT_GT(Ratio, 0.8);
  EXPECT_LT(Ratio, 1.25);
}

TEST(PathProfiling, SampledEqualsExhaustiveAtIntervalOne) {
  harness::Program P = build(DiamondLoopSrc);
  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&PathProfiles};
  auto PR = harness::runExperiment(P, 300, Perfect);

  harness::RunConfig Sampled = Perfect;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  Sampled.Engine.SampleInterval = 1;
  auto SR = harness::runExperiment(P, 300, Sampled);
  ASSERT_TRUE(PR.Stats.Ok && SR.Stats.Ok);
  EXPECT_EQ(PR.Profiles.Paths.counts(), SR.Profiles.Paths.counts());
}

double pathOverlap(const harness::ExperimentResult &Perfect,
                   const harness::ExperimentResult &Sampled) {
  return profile::overlapPercentMaps(
      Perfect.Profiles.Paths.counts(), Sampled.Profiles.Paths.counts(),
      static_cast<double>(Perfect.Profiles.Paths.total()),
      static_cast<double>(Sampled.Profiles.Paths.total()));
}

TEST(PathProfiling, SampledPathsProportional) {
  harness::Program P = build(DiamondLoopSrc);
  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&PathProfiles};
  auto PR = harness::runExperiment(P, 2000, Perfect);

  harness::RunConfig Sampled = Perfect;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  // The loop body alternates with period 2, so the interval must be odd
  // (see PeriodicityAliasing below — the paper's section 4.4 concern).
  Sampled.Engine.SampleInterval = 19;
  auto SR = harness::runExperiment(P, 2000, Sampled);
  ASSERT_TRUE(PR.Stats.Ok && SR.Stats.Ok);
  EXPECT_GT(pathOverlap(PR, SR), 85.0);
}

TEST(PathProfiling, PeriodicityAliasingAndTheJitterCure) {
  // The paper, section 4.4: "it is possible for program behavior to
  // correlate with our deterministic sampling mechanism, resulting in an
  // inaccurate profile ... adding a small random factor to the sample
  // interval (as done in [DCPI]) could be used to reduce the probability
  // of this worst case".  The diamond loop alternates its path with
  // period 2, so an even interval samples one path only; jitter fixes it.
  harness::Program P = build(DiamondLoopSrc);
  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&PathProfiles};
  auto PR = harness::runExperiment(P, 2000, Perfect);

  harness::RunConfig Aliased = Perfect;
  Aliased.Transform.M = sampling::Mode::FullDuplication;
  Aliased.Engine.SampleInterval = 20;
  auto AR = harness::runExperiment(P, 2000, Aliased);
  ASSERT_TRUE(AR.Stats.Ok);
  EXPECT_LT(pathOverlap(PR, AR), 60.0)
      << "even interval should alias with the period-2 loop";

  harness::RunConfig Jittered = Aliased;
  Jittered.Engine.RandomJitterPct = 25;
  auto JR = harness::runExperiment(P, 2000, Jittered);
  ASSERT_TRUE(JR.Stats.Ok);
  EXPECT_GT(pathOverlap(PR, JR), 80.0)
      << "randomized intervals should break the correlation";
}

class PathWorkloadTest
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(PathWorkloadTest, EdgeAndPathClientsPreserveSemantics) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  auto Base = harness::runBaseline(P, W.SmokeScale);
  ASSERT_TRUE(Base.Stats.Ok);

  for (sampling::Mode M :
       {sampling::Mode::Exhaustive, sampling::Mode::FullDuplication,
        sampling::Mode::PartialDuplication,
        sampling::Mode::NoDuplication}) {
    harness::RunConfig C;
    C.Transform.M = M;
    C.Engine.SampleInterval = 31;
    C.Clients = {&EdgeCounts, &PathProfiles};
    auto R = harness::runExperiment(P, W.SmokeScale, C);
    ASSERT_TRUE(R.Stats.Ok)
        << W.Name << "/" << sampling::modeName(M) << ": " << R.Stats.Error;
    EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult)
        << W.Name << "/" << sampling::modeName(M);
  }
}

TEST_P(PathWorkloadTest, StructuralInvariantsWithEdgeProbes) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  harness::InstrumentedProgram IP = harness::instrumentProgram(
      P, {&EdgeCounts, &PathProfiles}, Opts);
  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty()) << W.Name;
    std::string Bad = sampling::checkProperty1Static(IP.Funcs[F],
                                                     IP.Transforms[F], Opts);
    EXPECT_TRUE(Bad.empty()) << W.Name << ": " << Bad;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, PathWorkloadTest, ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
