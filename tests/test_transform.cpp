//===- tests/test_transform.cpp - sampling transform structure -*- C++ -*-===//

#include "instr/Clients.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "sampling/Property1.h"
#include "sampling/Transform.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

/// A function with one loop nest (two backedges) and field/call traffic.
const char *LoopySrc = R"(
  class S { int v; }
  int leaf(int x) { return x + 1; }
  int main(int n) {
    S s = new S;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      for (int j = 0; j < 4; j = j + 1) {
        s.v = s.v + j;
        acc = acc + leaf(s.v);
      }
    }
    return acc;
  }
)";

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

harness::InstrumentedProgram instrument(const harness::Program &P,
                                        sampling::Options Opts) {
  return harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Opts);
}

TEST(FullDuplication, DoublesBlocksAndVerifies) {
  harness::Program P = build(LoopySrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  harness::InstrumentedProgram IP = instrument(P, Opts);

  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    const sampling::TransformStats &S = IP.Transforms[F].Stats;
    EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty())
        << ir::printFunction(IP.Funcs[F]);
    EXPECT_GE(S.FinalBlocks, 2 * S.OrigBlocks);
    EXPECT_EQ(S.EntryChecks, 1);
    EXPECT_EQ(S.BackedgeChecks, S.Backedges);
    EXPECT_GE(S.FinalSize, 2 * S.OrigSize);
  }
  // main has two backedges.
  const bytecode::FunctionDef *Main = P.M.functionByName("main");
  EXPECT_EQ(IP.Transforms[Main->FuncId].Stats.Backedges, 2);
}

TEST(FullDuplication, ChecksOnlyBreakdownConfigs) {
  harness::Program P = build(LoopySrc);
  sampling::Options Entry;
  Entry.M = sampling::Mode::FullDuplication;
  Entry.DuplicateCode = false;
  Entry.BackedgeChecks = false;
  harness::InstrumentedProgram IP = harness::instrumentProgram(P, {}, Entry);
  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty());
    EXPECT_EQ(IP.Transforms[F].Stats.EntryChecks, 1);
    EXPECT_EQ(IP.Transforms[F].Stats.BackedgeChecks, 0);
    for (sampling::BlockRole R : IP.Transforms[F].Roles)
      EXPECT_NE(R, sampling::BlockRole::Duplicated)
          << "no duplication in the breakdown configuration";
  }
}

TEST(FullDuplication, YieldpointOptRemovesCheckingYieldpoints) {
  harness::Program P = build(LoopySrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  Opts.YieldpointOpt = true;
  harness::InstrumentedProgram IP = instrument(P, Opts);
  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    std::string Bad = sampling::checkProperty1Static(
        IP.Funcs[F], IP.Transforms[F], Opts);
    EXPECT_TRUE(Bad.empty()) << Bad;
  }
}

TEST(NoDuplication, GuardsEveryProbe) {
  harness::Program P = build(LoopySrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::NoDuplication;
  harness::InstrumentedProgram IP = instrument(P, Opts);
  int Guarded = 0, Plain = 0;
  for (const ir::IRFunction &F : IP.Funcs) {
    Guarded += sampling::countOps(F, ir::IROp::GuardedProbe);
    Plain += sampling::countOps(F, ir::IROp::Probe);
  }
  EXPECT_GT(Guarded, 0);
  EXPECT_EQ(Plain, 0);
  EXPECT_EQ(Guarded, IP.Registry.size());
}

TEST(Exhaustive, PlantsUnguardedProbesInPlace) {
  harness::Program P = build(LoopySrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::Exhaustive;
  harness::InstrumentedProgram IP = instrument(P, Opts);
  int Plain = 0;
  for (const ir::IRFunction &F : IP.Funcs) {
    Plain += sampling::countOps(F, ir::IROp::Probe);
    EXPECT_EQ(sampling::countOps(F, ir::IROp::SampleCheck), 0);
  }
  EXPECT_EQ(Plain, IP.Registry.size());
}

TEST(PartialDuplication, RemovesUninstrumentedBlocks) {
  harness::Program P = build(LoopySrc);
  // Sparse instrumentation: only call edges (method entry), so all
  // duplicated body blocks are removable.
  sampling::Options Opts;
  Opts.M = sampling::Mode::PartialDuplication;
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(P, {&CallEdges}, Opts);
  const bytecode::FunctionDef *Main = P.M.functionByName("main");
  const sampling::TransformStats &S = IP.Transforms[Main->FuncId].Stats;
  EXPECT_EQ(S.DupBlocksKept, 1)
      << "entry probes keep only the duplicated entry node";
  EXPECT_GT(S.DupBlocksRemoved, 0);
  for (const ir::IRFunction &F : IP.Funcs)
    EXPECT_TRUE(ir::verifyFunction(F).empty()) << ir::printFunction(F);
}

TEST(PartialDuplication, KeepsInstrumentedRegion) {
  harness::Program P = build(LoopySrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::PartialDuplication;
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(P, {&FieldAccesses}, Opts);
  const bytecode::FunctionDef *Main = P.M.functionByName("main");
  const sampling::TransformStats &S = IP.Transforms[Main->FuncId].Stats;
  EXPECT_GT(S.DupBlocksKept, 0);
  EXPECT_GT(S.DupBlocksRemoved, 0) << "prologue/epilogue are top/bottom";
  EXPECT_LE(S.FinalSize, 2 * S.OrigSize + 16);
}

TEST(PartialDuplication, NeverBiggerThanFull) {
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    harness::Program P = build(W.Source);
    sampling::Options Full, Part;
    Full.M = sampling::Mode::FullDuplication;
    Part.M = sampling::Mode::PartialDuplication;
    harness::InstrumentedProgram FullIP = instrument(P, Full);
    harness::InstrumentedProgram PartIP = instrument(P, Part);
    EXPECT_LE(PartIP.CodeSizeAfter, FullIP.CodeSizeAfter) << W.Name;
  }
}

TEST(Roles, CoverEveryBlock) {
  harness::Program P = build(LoopySrc);
  for (sampling::Mode M :
       {sampling::Mode::FullDuplication, sampling::Mode::PartialDuplication,
        sampling::Mode::NoDuplication, sampling::Mode::Exhaustive,
        sampling::Mode::Baseline}) {
    sampling::Options Opts;
    Opts.M = M;
    harness::InstrumentedProgram IP = instrument(P, Opts);
    for (size_t F = 0; F != IP.Funcs.size(); ++F)
      EXPECT_EQ(IP.Transforms[F].Roles.size(),
                static_cast<size_t>(IP.Funcs[F].numBlocks()))
          << sampling::modeName(M);
  }
}

TEST(Burst, BoundedLoopSamplingStructure) {
  harness::Program P = build(LoopySrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  Opts.BurstLength = 8;
  harness::InstrumentedProgram IP = instrument(P, Opts);
  int Bursts = 0;
  for (const ir::IRFunction &F : IP.Funcs) {
    Bursts += sampling::countOps(F, ir::IROp::BurstTransfer);
    EXPECT_TRUE(ir::verifyFunction(F).empty());
  }
  EXPECT_GT(Bursts, 0);
}

// ---------------------------------------------------------------------
// Semantic preservation: every mode and option combination computes the
// same checksum as the baseline for every workload.
// ---------------------------------------------------------------------

struct ModeCase {
  const char *Label;
  sampling::Options Opts;
  int64_t Interval;
};

std::vector<ModeCase> modeCases() {
  std::vector<ModeCase> Cases;
  auto add = [&](const char *Label, sampling::Mode M, int64_t Interval,
                 bool YieldOpt = false, int Burst = 0) {
    ModeCase C;
    C.Label = Label;
    C.Opts.M = M;
    C.Opts.YieldpointOpt = YieldOpt;
    C.Opts.BurstLength = Burst;
    C.Interval = Interval;
    Cases.push_back(C);
  };
  add("exhaustive", sampling::Mode::Exhaustive, 0);
  add("fulldup-never", sampling::Mode::FullDuplication, 0);
  add("fulldup-always", sampling::Mode::FullDuplication, 1);
  add("fulldup-97", sampling::Mode::FullDuplication, 97);
  add("fulldup-yieldopt", sampling::Mode::FullDuplication, 61, true);
  add("fulldup-burst", sampling::Mode::FullDuplication, 97, false, 8);
  add("partialdup-97", sampling::Mode::PartialDuplication, 97);
  add("partialdup-always", sampling::Mode::PartialDuplication, 1);
  add("nodup-97", sampling::Mode::NoDuplication, 97);
  add("nodup-always", sampling::Mode::NoDuplication, 1);
  return Cases;
}

class SemanticsTest
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(SemanticsTest, AllModesPreserveResults) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  harness::ExperimentResult Base =
      harness::runBaseline(P, W.SmokeScale);
  ASSERT_TRUE(Base.Stats.Ok) << Base.Stats.Error;

  for (const ModeCase &C : modeCases()) {
    harness::RunConfig RC;
    RC.Transform = C.Opts;
    RC.Engine.SampleInterval = C.Interval;
    RC.Clients = {&CallEdges, &FieldAccesses};
    harness::ExperimentResult R =
        harness::runExperiment(P, W.SmokeScale, RC);
    ASSERT_TRUE(R.Stats.Ok) << W.Name << "/" << C.Label << ": "
                            << R.Stats.Error;
    EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult)
        << W.Name << "/" << C.Label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SemanticsTest,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
