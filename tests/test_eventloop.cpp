//===- tests/test_eventloop.cpp - Reactor event-loop tests ----*- C++ -*-===//
///
/// The nonblocking reactor's contracts (see EventLoop.h), pinned through
/// a real ProfileServer over the loopback transport:
///
///   * Slow-loris: a client trickling a frame one byte at a time either
///     completes within the per-frame deadline (and is served — the
///     incremental parser handles any read fragmentation) or is reaped
///     with a diagnostic farewell; it can never occupy a worker thread.
///   * Mid-frame disconnect: a stream that dies inside a header or a
///     body is closed with a "truncated frame" reject, leaks nothing,
///     and the server keeps serving.
///   * Write backpressure: a peer that requests a reply bigger than the
///     transport can buffer and then stops reading is reaped by the send
///     deadline; a peer that merely reads slowly gets every byte.
///   * Shutdown: stop() completes promptly with connections parked in
///     every phase (idle, mid-frame, write-blocked).
///   * One reactor thread multiplexes many concurrent pushers and still
///     merges byte-identically to the serial fold.
///
/// Suites are named EventLoop* so scripts/check.sh --tsan runs them
/// under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#include "profserve/Client.h"
#include "profserve/Protocol.h"
#include "profserve/Server.h"
#include "profserve/Transport.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using namespace ars;
using namespace ars::profserve;

constexpr uint64_t TestFingerprint = 0xEE77E100FEED5EEDULL;

profile::ProfileBundle shardBundle(int Seed) {
  profile::ProfileBundle B;
  profile::CallEdgeKey K;
  K.Caller = Seed % 5;
  K.Site = Seed % 3;
  K.Callee = (Seed + 1) % 7;
  B.CallEdges.record(K, static_cast<uint64_t>(Seed) * 37 + 1);
  B.FieldAccesses.record(Seed % 4, static_cast<uint64_t>(Seed) + 2);
  B.BlockCounts.record(1, Seed % 6, static_cast<uint64_t>(Seed) * 11 + 3);
  return B;
}

std::string serialFold(int Shards) {
  profile::ProfileBundle Acc;
  for (int I = 0; I != Shards; ++I)
    profstore::mergeBundle(Acc, shardBundle(I));
  return profile::serializeBundle(Acc);
}

/// A bundle whose encoded form dwarfs the tiny pipe capacities the
/// backpressure tests use, so a PULL reply genuinely cannot fit.
profile::ProfileBundle bigBundle() {
  profile::ProfileBundle B;
  for (int I = 0; I != 2000; ++I)
    B.BlockCounts.record(I % 7, I, static_cast<uint64_t>(I) * 13 + 1);
  return B;
}

struct LoopbackServer {
  LoopbackListener *L;
  ProfileServer Server;

  explicit LoopbackServer(ServerConfig C)
      : L(new LoopbackListener()),
        Server(std::unique_ptr<Listener>(L), C) {
    Server.start();
  }
  ~LoopbackServer() { Server.stop(); }
};

ServerConfig config(int RecvTimeoutMs = 2000, int SendTimeoutMs = 10000,
                    int Workers = 2) {
  ServerConfig C;
  C.Workers = Workers;
  C.RecvTimeoutMs = RecvTimeoutMs;
  C.SendTimeoutMs = SendTimeoutMs;
  return C;
}

void rawHello(Transport &T) {
  HelloMsg H;
  H.Fingerprint = TestFingerprint;
  H.ClientName = "raw";
  ASSERT_TRUE(writeFrame(T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::HelloAck);
}

/// Spins until \p Pred or ~\p Ms elapsed.
template <typename Pred> bool waitFor(Pred P, int Ms) {
  for (int Spin = 0; Spin != Ms / 5 + 1; ++Spin) {
    if (P())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return P();
}

void trickle(Transport &T, const std::string &Bytes, int GapMs) {
  for (char C : Bytes) {
    ASSERT_TRUE(T.writeAll(&C, 1).ok());
    if (GapMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(GapMs));
    else
      std::this_thread::yield();
  }
}

//===----------------------------------------------------------------------===//
// Slow-loris
//===----------------------------------------------------------------------===//

/// A frame fed one byte at a time, fast enough to beat the deadline, is
/// parsed and served exactly like a burst write — the reactor's
/// incremental parser must tolerate any fragmentation.
TEST(EventLoopSlowLoris, ByteAtATimeWithinDeadlineIsServed) {
  LoopbackServer S(config(/*RecvTimeoutMs=*/2000));
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);

  HelloMsg H;
  H.Fingerprint = TestFingerprint;
  H.ClientName = "loris";
  trickle(*T, encodeFrame(MsgType::Hello, encodeHello(H)), 0);
  if (::testing::Test::HasFatalFailure())
    return;
  FrameResult Ack = readFrame(*T, 2000);
  ASSERT_TRUE(Ack.ok()) << Ack.Error;
  ASSERT_EQ(Ack.F.Type, MsgType::HelloAck);

  std::string Arsp = profstore::encodeBundle(shardBundle(1),
                                             TestFingerprint);
  trickle(*T, encodeFrame(MsgType::Push, encodePush(0, Arsp)), 0);
  if (::testing::Test::HasFatalFailure())
    return;
  FrameResult PA = readFrame(*T, 2000);
  ASSERT_TRUE(PA.ok()) << PA.Error;
  ASSERT_EQ(PA.F.Type, MsgType::PushAck);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()),
            profile::serializeBundle(shardBundle(1)))
      << "trickled shard was not merged";
  T->close();
}

/// A client that stalls mid-frame past the deadline is reaped with a
/// diagnostic ERROR farewell, and the reactor thread it would have
/// blocked keeps serving other clients throughout.
TEST(EventLoopSlowLoris, MidFrameStallIsReapedWithDiagnostic) {
  LoopbackServer S(config(/*RecvTimeoutMs=*/150, /*SendTimeoutMs=*/10000,
                          /*Workers=*/1));
  std::unique_ptr<Transport> Loris = S.L->connect();
  ASSERT_TRUE(Loris);
  rawHello(*Loris);
  if (::testing::Test::HasFatalFailure())
    return;

  // First bytes of a PUSH frame, then silence past the deadline.
  std::string Wire = encodeFrame(
      MsgType::Push,
      encodePush(0, profstore::encodeBundle(shardBundle(7),
                                            TestFingerprint)));
  ASSERT_TRUE(Loris->writeAll(Wire.data(), 10).ok());

  // The single reactor thread must still serve a well-behaved client
  // while the loris stalls.
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 42;
  ProfileClient Good(loopbackDialer(*S.L), CC);
  ASSERT_TRUE(Good.push(shardBundle(1), TestFingerprint).Ok);

  FrameResult Farewell = readFrame(*Loris, 2000);
  ASSERT_TRUE(Farewell.ok()) << Farewell.Error;
  ASSERT_EQ(Farewell.F.Type, MsgType::Error);
  ErrorMsg E;
  ASSERT_TRUE(decodeError(Farewell.F.Payload, &E));
  EXPECT_NE(E.Text.find("stalled"), std::string::npos) << E.Text;
  EXPECT_EQ(readFrame(*Loris, 2000).Status, FrameStatus::Eof);
  EXPECT_TRUE(waitFor(
      [&] { return S.Server.stats().ActiveConnections == 0; }, 2000));
  EXPECT_GE(S.Server.stats().Rejects, 1u);
}

/// An idle connection (no frame at all) times out too — vanished
/// clients cannot accumulate connection state forever.
TEST(EventLoopSlowLoris, SilentConnectionTimesOut) {
  LoopbackServer S(config(/*RecvTimeoutMs=*/100));
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  EXPECT_TRUE(waitFor(
      [&] { return S.Server.stats().ActiveConnections == 0; }, 3000));
  FrameResult FR = readFrame(*T, 1000);
  // The farewell names the deadline; a race with close is also fine.
  if (FR.ok()) {
    EXPECT_EQ(FR.F.Type, MsgType::Error);
    ErrorMsg E;
    ASSERT_TRUE(decodeError(FR.F.Payload, &E));
    EXPECT_NE(E.Text.find("deadline"), std::string::npos) << E.Text;
  }
}

//===----------------------------------------------------------------------===//
// Mid-frame disconnect
//===----------------------------------------------------------------------===//

/// Disconnects inside the frame header and inside the body: both must
/// surface as a "truncated frame" reject, drain the connection, and
/// leave the server fully functional.
TEST(EventLoopDisconnect, MidHeaderAndMidBodyAreRejectedCleanly) {
  LoopbackServer S(config());
  std::string Wire = encodeFrame(
      MsgType::Push,
      encodePush(0, profstore::encodeBundle(shardBundle(3),
                                            TestFingerprint)));

  // Die after 3 header bytes, and again halfway through the body.
  for (size_t Cut : {size_t(3), Wire.size() / 2}) {
    std::unique_ptr<Transport> T = S.L->connect();
    ASSERT_TRUE(T);
    rawHello(*T);
    if (::testing::Test::HasFatalFailure())
      return;
    ASSERT_TRUE(T->writeAll(Wire.data(), Cut).ok());
    T->close();
  }
  EXPECT_TRUE(waitFor(
      [&] { return S.Server.stats().ActiveConnections == 0; }, 3000));
  EXPECT_GE(S.Server.stats().Rejects, 2u);

  // Nothing half-merged, and the server still serves.
  EXPECT_EQ(S.Server.stats().Merges, 0u);
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 7;
  ProfileClient Good(loopbackDialer(*S.L), CC);
  ASSERT_TRUE(Good.push(shardBundle(0), TestFingerprint).Ok);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(1));
}

//===----------------------------------------------------------------------===//
// Write backpressure
//===----------------------------------------------------------------------===//

/// The peer asks for a reply far larger than the pipe, then never reads:
/// the send deadline must reap it instead of letting the reply buffer sit
/// forever (or a blocking write occupy a reactor thread).
TEST(EventLoopBackpressure, StalledReaderIsReaped) {
  LoopbackServer S(config(/*RecvTimeoutMs=*/0, /*SendTimeoutMs=*/200,
                          /*Workers=*/1));
  {
    ClientConfig CC;
    CC.Fingerprint = TestFingerprint;
    CC.SessionId = 9;
    ProfileClient Seed(loopbackDialer(*S.L), CC);
    ASSERT_TRUE(Seed.push(bigBundle(), TestFingerprint).Ok);
  }

  S.L->setPipeCapacity(256); // replies can no longer fit in the pipe
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);
  if (::testing::Test::HasFatalFailure())
    return;
  ASSERT_TRUE(writeFrame(*T, MsgType::Pull, std::string()).ok());
  // ...and never read a byte of the multi-KiB PULL_REPLY.
  EXPECT_TRUE(waitFor(
      [&] { return S.Server.stats().ActiveConnections == 0; }, 3000))
      << "write-stalled connection was never reaped";

  // The reactor thread survived to serve a well-behaved client.
  S.L->setPipeCapacity(0);
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  ProfileClient Good(loopbackDialer(*S.L), CC);
  ProfileClient::PullResult P = Good.pull();
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(profile::serializeBundle(P.Bundle),
            profile::serializeBundle(S.Server.merged()));
}

/// A peer that reads slowly (but does read) must receive the whole
/// reply: the reactor resumes the flush every time the pipe drains
/// instead of giving up on the first WouldBlock.
TEST(EventLoopBackpressure, SlowReaderGetsWholeReply) {
  LoopbackServer S(config());
  {
    ClientConfig CC;
    CC.Fingerprint = TestFingerprint;
    CC.SessionId = 11;
    ProfileClient Seed(loopbackDialer(*S.L), CC);
    ASSERT_TRUE(Seed.push(bigBundle(), TestFingerprint).Ok);
  }

  S.L->setPipeCapacity(256);
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);
  if (::testing::Test::HasFatalFailure())
    return;
  ASSERT_TRUE(writeFrame(*T, MsgType::Pull, std::string()).ok());
  FrameResult FR = readFrame(*T, 10000); // reads in small pipe-fulls
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::PullReply);
  EXPECT_EQ(FR.F.Payload,
            profstore::encodeBundle(S.Server.merged(), TestFingerprint));
  EXPECT_GT(FR.F.Payload.size(), 256u)
      << "reply fit the pipe; backpressure was never exercised";
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

/// stop() with connections parked in every reactor phase — idle between
/// frames, mid-frame, and write-blocked on a full pipe — must terminate
/// promptly and close every one of them.
TEST(EventLoopShutdown, StopWithConnectionsInEveryState) {
  auto S = std::make_unique<LoopbackServer>(
      config(/*RecvTimeoutMs=*/0, /*SendTimeoutMs=*/60000));
  {
    ClientConfig CC;
    CC.Fingerprint = TestFingerprint;
    CC.SessionId = 13;
    ProfileClient Seed(loopbackDialer(*S->L), CC);
    ASSERT_TRUE(Seed.push(bigBundle(), TestFingerprint).Ok);
  }

  // Idle: HELLO done, waiting between frames.
  std::unique_ptr<Transport> Idle = S->L->connect();
  ASSERT_TRUE(Idle);
  rawHello(*Idle);

  // Mid-frame: a partial header, never completed.
  std::unique_ptr<Transport> Partial = S->L->connect();
  ASSERT_TRUE(Partial);
  rawHello(*Partial);
  std::string Wire = encodeFrame(MsgType::Pull, std::string());
  ASSERT_TRUE(Partial->writeAll(Wire.data(), 3).ok());

  // Write-blocked: a PULL reply stuck in a tiny pipe, never read.
  S->L->setPipeCapacity(64);
  std::unique_ptr<Transport> Blocked = S->L->connect();
  ASSERT_TRUE(Blocked);
  rawHello(*Blocked);
  ASSERT_TRUE(writeFrame(*Blocked, MsgType::Pull, std::string()).ok());
  ASSERT_TRUE(waitFor(
      [&] { return S->Server.stats().ActiveConnections == 3; }, 2000));
  // Give the reactor a beat to park the reply in the full pipe.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The whole point: this must not hang or crash.
  S->Server.stop();

  // Every parked connection was closed.
  char Byte;
  size_t Got = 0;
  IoResult R = Idle->readSome(&Byte, 1, 1000, &Got);
  EXPECT_NE(R.Status, IoStatus::Timeout);
  R = Partial->readSome(&Byte, 1, 1000, &Got);
  EXPECT_NE(R.Status, IoStatus::Timeout);
  S.reset(); // double-stop via the destructor must be a no-op
}

//===----------------------------------------------------------------------===//
// Multiplexing
//===----------------------------------------------------------------------===//

/// One reactor thread, many concurrent pushers: connections cost
/// buffers, not threads, and the merge stays byte-identical to the
/// serial fold.
TEST(EventLoopMux, SingleReactorServesManyConcurrentPushers) {
  LoopbackServer S(config(/*RecvTimeoutMs=*/5000,
                          /*SendTimeoutMs=*/10000, /*Workers=*/1));
  const int Pushers = 16, PerPusher = 4;
  std::vector<std::thread> Threads;
  std::vector<std::string> Errs(Pushers);
  for (int I = 0; I != Pushers; ++I)
    Threads.emplace_back([&, I] {
      ClientConfig CC;
      CC.Fingerprint = TestFingerprint;
      CC.SessionId = 100 + static_cast<uint64_t>(I);
      ProfileClient C(loopbackDialer(*S.L), CC);
      for (int J = 0; J != PerPusher; ++J) {
        ClientResult PR =
            C.push(shardBundle(I * PerPusher + J), TestFingerprint);
        if (!PR.Ok && Errs[I].empty())
          Errs[I] = PR.Error;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (const std::string &E : Errs)
    ASSERT_TRUE(E.empty()) << E;
  EXPECT_EQ(S.Server.stats().Merges,
            static_cast<uint64_t>(Pushers * PerPusher));
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()),
            serialFold(Pushers * PerPusher));
  EXPECT_TRUE(waitFor(
      [&] { return S.Server.stats().ActiveConnections == 0; }, 3000));
}

} // namespace
