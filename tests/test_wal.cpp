//===- tests/test_wal.cpp - Journal, recovery and failover tests -*- C++ -*-===//
///
/// Unit and restart tests for the durability layer added in DESIGN §15:
/// the write-ahead journal (profstore/Journal.h), the server's
/// crash/restart recovery (snapshot + journal-tail replay + dedup-table
/// reconstruction), and the multi-homed client's parent failover.
///
/// Suites are named Wal* and Failover* so scripts/check.sh --tsan runs
/// this file under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profserve/Transport.h"
#include "profstore/Journal.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "support/Binary.h"
#include "support/Support.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

namespace {

using namespace ars;
using namespace ars::profserve;
using profstore::AppliedSeqMap;
using profstore::Journal;

constexpr uint64_t TestFingerprint = 0x7E57000000000A17ULL;

profile::ProfileBundle shardBundle(int Seed) {
  profile::ProfileBundle B;
  profile::CallEdgeKey K;
  K.Caller = Seed % 5;
  K.Site = Seed % 3;
  K.Callee = (Seed + 1) % 7;
  B.CallEdges.record(K, static_cast<uint64_t>(Seed) * 37 + 1);
  B.FieldAccesses.record(Seed % 4, static_cast<uint64_t>(Seed) + 2);
  B.BlockCounts.record(1, Seed % 6, static_cast<uint64_t>(Seed) * 11 + 3);
  B.Values.record(9, Seed % 8, static_cast<uint64_t>(Seed) + 5);
  B.Edges.record(0, Seed % 2, (Seed + 1) % 2, static_cast<uint64_t>(Seed) + 7);
  B.Paths.record(2, Seed * 1000003LL, static_cast<uint64_t>(Seed) + 9);
  return B;
}

std::string encodedShard(int Seed) {
  return profstore::encodeBundle(shardBundle(Seed), TestFingerprint);
}

/// The serial reference a recovered server must reproduce byte-for-byte.
std::string serialFold(int Shards) {
  profile::ProfileBundle Acc;
  for (int I = 0; I != Shards; ++I)
    profstore::mergeBundle(Acc, shardBundle(I));
  return profile::serializeBundle(Acc);
}

/// A fresh per-test journal base path (segments are <base>.NNNNNN).
std::string walPath(const char *Tag) {
  std::string P = support::formatString("%swal_%s_%ld.arsj",
                                        ::testing::TempDir().c_str(), Tag,
                                        static_cast<long>(::getpid()));
  Journal::wipe(P);
  return P;
}

std::string snapPath(const char *Tag) {
  std::string P = support::formatString("%swal_%s_%ld.arsp",
                                        ::testing::TempDir().c_str(), Tag,
                                        static_cast<long>(::getpid()));
  std::remove(P.c_str());
  std::remove((P + ".prev").c_str());
  std::remove((P + ".tmp").c_str());
  return P;
}

//===----------------------------------------------------------------------===//
// Journal unit tests
//===----------------------------------------------------------------------===//

TEST(Wal, FreshJournalRoundTrip) {
  Journal::Config JC;
  JC.BasePath = walPath("roundtrip");
  std::string Err;
  {
    Journal J(JC);
    ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
    for (int I = 0; I != 5; ++I)
      ASSERT_TRUE(J.appendShard(7, static_cast<uint64_t>(I) + 1,
                                encodedShard(I), &Err))
          << Err;
    ASSERT_TRUE(J.sync(&Err)) << Err;
  }
  Journal::Recovery R = Journal::recover(JC.BasePath, 0);
  EXPECT_TRUE(R.HadSegments);
  ASSERT_TRUE(R.Matched);
  ASSERT_EQ(R.Records.size(), 5u);
  for (int I = 0; I != 5; ++I) {
    EXPECT_EQ(R.Records[I].SessionId, 7u);
    EXPECT_EQ(R.Records[I].Seq, static_cast<uint64_t>(I) + 1);
    EXPECT_EQ(R.Records[I].Arsp, encodedShard(I));
  }
  // The replayed registrations are in the reconstructed dedup table.
  EXPECT_EQ(R.Applied[7].count(3), 1u);
  Journal::wipe(JC.BasePath);
}

TEST(Wal, GroupCommitIssuesOneFsyncPerBatch) {
  Journal::Config JC;
  JC.BasePath = walPath("groupcommit");
  Journal J(JC);
  std::string Err;
  ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
  uint64_t Before = J.stats().Syncs;
  for (int I = 0; I != 16; ++I)
    ASSERT_TRUE(J.appendShard(1, static_cast<uint64_t>(I) + 1,
                              encodedShard(I % 4), &Err))
        << Err;
  ASSERT_TRUE(J.sync(&Err)) << Err;
  EXPECT_EQ(J.stats().Syncs, Before + 1);
  EXPECT_EQ(J.stats().Records, 16u);
  J.close();
  Journal::wipe(JC.BasePath);
}

TEST(Wal, SegmentRotationPreservesEveryRecord) {
  Journal::Config JC;
  JC.BasePath = walPath("rotate");
  JC.MaxSegmentBytes = 256; // force a rotation every couple of shards
  Journal J(JC);
  std::string Err;
  ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
  const int N = 12;
  for (int I = 0; I != N; ++I)
    ASSERT_TRUE(J.appendShard(3, static_cast<uint64_t>(I) + 1,
                              encodedShard(I), &Err))
        << Err;
  ASSERT_TRUE(J.sync(&Err)) << Err;
  J.close();
  EXPECT_GT(Journal::listSegments(JC.BasePath).size(), 1u);
  Journal::Recovery R = Journal::recover(JC.BasePath, 0);
  ASSERT_TRUE(R.Matched);
  ASSERT_EQ(R.Records.size(), static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(R.Records[I].Arsp, encodedShard(I));
  Journal::wipe(JC.BasePath);
}

TEST(Wal, CheckpointTruncateLeavesOnlyTheReplayTail) {
  Journal::Config JC;
  JC.BasePath = walPath("ckpt");
  Journal J(JC);
  std::string Err;
  ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
  ASSERT_TRUE(J.appendShard(5, 1, encodedShard(0), &Err)) << Err;
  ASSERT_TRUE(J.appendShard(5, 2, encodedShard(1), &Err)) << Err;
  ASSERT_TRUE(J.sync(&Err)) << Err;
  AppliedSeqMap Applied;
  Applied[5] = {1, 2};
  const uint64_t SnapHash = 0xFEEDFACECAFEBEEFULL;
  ASSERT_TRUE(J.checkpoint(SnapHash, Applied, &Err)) << Err;
  ASSERT_TRUE(J.truncate(&Err)) << Err;
  ASSERT_TRUE(J.appendShard(5, 3, encodedShard(2), &Err)) << Err;
  ASSERT_TRUE(J.sync(&Err)) << Err;
  J.close();
  // The tail for the checkpointed snapshot is exactly the post-ckpt
  // record, with the dedup table restored from the checkpoint body.
  Journal::Recovery R = Journal::recover(JC.BasePath, SnapHash);
  ASSERT_TRUE(R.Matched);
  ASSERT_EQ(R.Records.size(), 1u);
  EXPECT_EQ(R.Records[0].Arsp, encodedShard(2));
  EXPECT_EQ(R.Applied[5].count(1), 1u);
  EXPECT_EQ(R.Applied[5].count(3), 1u);
  // The pre-checkpoint anchor (hash 0) was truncated away: a caller
  // that somehow loads the older state must get Matched=false (wipe and
  // start fresh), never an unrelated replay.
  EXPECT_FALSE(Journal::recover(JC.BasePath, 0).Matched);
  Journal::wipe(JC.BasePath);
}

TEST(Wal, DuplicateJournaledSeqCollapsesOnRecover) {
  // append ok + fsync failed + client retried = the same (session, seq)
  // twice in the journal; replay must apply it once.
  Journal::Config JC;
  JC.BasePath = walPath("dup");
  Journal J(JC);
  std::string Err;
  ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
  ASSERT_TRUE(J.appendShard(9, 1, encodedShard(0), &Err)) << Err;
  ASSERT_TRUE(J.appendShard(9, 1, encodedShard(0), &Err)) << Err;
  ASSERT_TRUE(J.appendShard(9, 2, encodedShard(1), &Err)) << Err;
  ASSERT_TRUE(J.sync(&Err)) << Err;
  J.close();
  Journal::Recovery R = Journal::recover(JC.BasePath, 0);
  ASSERT_TRUE(R.Matched);
  ASSERT_EQ(R.Records.size(), 2u);
  EXPECT_EQ(R.Records[0].Seq, 1u);
  EXPECT_EQ(R.Records[1].Seq, 2u);
  Journal::wipe(JC.BasePath);
}

TEST(Wal, TornTailIsTrimmedOnReopen) {
  Journal::Config JC;
  JC.BasePath = walPath("torn");
  std::string Err;
  {
    Journal J(JC);
    ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
    ASSERT_TRUE(J.appendShard(4, 1, encodedShard(0), &Err)) << Err;
    ASSERT_TRUE(J.sync(&Err)) << Err;
  }
  // A crash mid-append leaves a torn frame at the end of the segment.
  std::vector<uint64_t> Segs = Journal::listSegments(JC.BasePath);
  ASSERT_EQ(Segs.size(), 1u);
  {
    std::ofstream Out(Journal::segmentPath(JC.BasePath, Segs[0]),
                      std::ios::binary | std::ios::app);
    Out.write("\x40\x00\x00\x00torn", 8);
  }
  {
    Journal J(JC);
    ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
    ASSERT_TRUE(J.appendShard(4, 2, encodedShard(1), &Err)) << Err;
    ASSERT_TRUE(J.sync(&Err)) << Err;
  }
  Journal::Recovery R = Journal::recover(JC.BasePath, 0);
  ASSERT_TRUE(R.Matched);
  ASSERT_EQ(R.Records.size(), 2u);
  EXPECT_EQ(R.Records[1].Arsp, encodedShard(1));
  Journal::wipe(JC.BasePath);
}

TEST(Wal, SnapshotIdentityHashIsNotTheCrcResidue) {
  // Regression pin for a real data-loss bug: .arsp files end with their
  // own CRC32 trailer, so crc32 of ANY valid snapshot is the fixed
  // residue 0x2144DF1C — as a checkpoint identity it matched torn
  // checkpoints whose snapshot never reached the disk and recovery
  // dropped the replay tail.  The identity must be fnv1a64.
  std::string A = profstore::encodeBundle(shardBundle(1), TestFingerprint);
  profile::ProfileBundle M = shardBundle(1);
  profstore::mergeBundle(M, shardBundle(2));
  std::string B = profstore::encodeBundle(M, TestFingerprint);
  ASSERT_NE(A, B);
  EXPECT_EQ(support::crc32(A.data(), A.size()), 0x2144DF1Cu);
  EXPECT_EQ(support::crc32(B.data(), B.size()), 0x2144DF1Cu);
  EXPECT_NE(support::fnv1a64(A.data(), A.size()),
            support::fnv1a64(B.data(), B.size()));
}

//===----------------------------------------------------------------------===//
// Server crash/restart recovery
//===----------------------------------------------------------------------===//

struct WalServerPaths {
  std::string Snap;
  std::string Wal;
  explicit WalServerPaths(const char *Tag)
      : Snap(snapPath(Tag)), Wal(walPath(Tag)) {}
  ~WalServerPaths() {
    std::remove(Snap.c_str());
    std::remove((Snap + ".prev").c_str());
    Journal::wipe(Wal);
  }
};

ServerConfig walConfig(const WalServerPaths &P) {
  ServerConfig C;
  C.Workers = 2;
  C.RecvTimeoutMs = 2000;
  C.Fingerprint = TestFingerprint;
  C.SnapshotPath = P.Snap;
  C.SnapshotIntervalMs = 0; // tests snapshot explicitly
  C.JournalPath = P.Wal;
  return C;
}

/// Server + listener, restartable over the same snapshot/journal paths.
struct WalServer {
  LoopbackListener *L;
  std::unique_ptr<ProfileServer> Server;

  explicit WalServer(const ServerConfig &C)
      : L(new LoopbackListener()),
        Server(std::make_unique<ProfileServer>(std::unique_ptr<Listener>(L),
                                               C)) {
    Server->start();
  }

  ProfileClient client(uint64_t Session) {
    ClientConfig CC;
    CC.Fingerprint = TestFingerprint;
    CC.SessionId = Session;
    return ProfileClient(loopbackDialer(*L), CC);
  }
};

TEST(Wal, ServerRestartReplaysJournalTail) {
  WalServerPaths P("restart");
  ServerConfig C = walConfig(P);
  {
    WalServer S(C);
    ProfileClient Cl = S.client(0xABC);
    for (int I = 0; I != 3; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
    std::string Err;
    ASSERT_TRUE(S.Server->snapshotNow(&Err)) << Err;
    for (int I = 3; I != 6; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
    S.Server->kill(); // hard crash: no drain, no farewell snapshot
  }
  WalServer S2(C);
  ServerStats St = S2.Server->stats();
  EXPECT_EQ(St.JournalReplayed, 3u); // the post-snapshot tail
  EXPECT_EQ(St.Merges, 3u);
  EXPECT_EQ(profile::serializeBundle(S2.Server->merged()), serialFold(6));
  S2.Server->stop();
}

TEST(Wal, RestartWithNoSnapshotReplaysFromEmpty) {
  WalServerPaths P("nosnap");
  ServerConfig C = walConfig(P);
  {
    WalServer S(C);
    ProfileClient Cl = S.client(0x111);
    for (int I = 0; I != 4; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
    S.Server->kill(); // died before any snapshot was ever written
  }
  WalServer S2(C);
  EXPECT_EQ(S2.Server->stats().JournalReplayed, 4u);
  EXPECT_EQ(profile::serializeBundle(S2.Server->merged()), serialFold(4));
  S2.Server->stop();
}

TEST(Wal, RestartRetryOfJournaledSeqMergesNothing) {
  // The acceptance invariant: a shard journaled+acked before the crash,
  // retried by its client against the restarted server under the SAME
  // (session, seq), must dedup against the recovered table — zero
  // additional merges.
  WalServerPaths P("dedup");
  ServerConfig C = walConfig(P);
  {
    WalServer S(C);
    ProfileClient Cl = S.client(0xD0D);
    for (int I = 0; I != 3; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
    S.Server->kill();
  }
  WalServer S2(C);
  ASSERT_EQ(S2.Server->stats().JournalReplayed, 3u);
  uint64_t MergesAfterReplay = S2.Server->stats().Merges;
  // A fresh v5 client would resume past the replayed seqs via the
  // HELLO_ACK LastSeq floor, so replay the old seq by hand.
  auto T = loopbackDialer(*S2.L)(nullptr);
  ASSERT_TRUE(T != nullptr);
  HelloMsg H;
  H.Fingerprint = TestFingerprint;
  H.SessionId = 0xD0D;
  ASSERT_TRUE(writeFrame(*T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  HelloAckMsg Ack;
  ASSERT_TRUE(decodeHelloAck(FR.F.Payload, &Ack));
  EXPECT_EQ(Ack.LastSeq, 3u); // the recovered dedup table, via wire v5
  ASSERT_TRUE(
      writeFrame(*T, MsgType::Push, encodePush(2, encodedShard(1))).ok());
  FrameResult PR = readFrame(*T, 2000);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  ASSERT_EQ(PR.F.Type, MsgType::PushAck);
  PushAckMsg PA;
  ASSERT_TRUE(decodePushAck(PR.F.Payload, &PA));
  EXPECT_TRUE(PA.Duplicate);
  EXPECT_EQ(S2.Server->stats().Merges, MergesAfterReplay);
  EXPECT_EQ(S2.Server->stats().Duplicates, 1u);
  EXPECT_EQ(profile::serializeBundle(S2.Server->merged()), serialFold(3));
  S2.Server->stop();
}

TEST(Wal, CrashMidCheckpointRecoversPreviousState) {
  // The window behind the regression pinned above: the checkpoint
  // record hits the journal but the process dies before the snapshot
  // file is written.  Recovery must anchor at the PREVIOUS checkpoint
  // (the one matching the snapshot actually on disk) and replay the
  // records in between — losing them was the bug.
  WalServerPaths P("midckpt");
  ServerConfig C = walConfig(P);
  {
    WalServer S(C);
    ProfileClient Cl = S.client(0xCC1);
    for (int I = 0; I != 2; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
    std::string Err;
    ASSERT_TRUE(S.Server->snapshotNow(&Err)) << Err; // on-disk state: 2
    for (int I = 2; I != 5; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
    S.Server->kill();
  }
  // Simulate the torn second checkpoint: a fresh checkpoint record for
  // a snapshot whose bytes never reached the disk.
  {
    Journal::Config JC;
    JC.BasePath = P.Wal;
    Journal J(JC);
    std::string Err;
    ASSERT_TRUE(J.open(0, AppliedSeqMap(), &Err)) << Err;
    ASSERT_TRUE(J.checkpoint(0xDEADBEEFDEADBEEFULL, AppliedSeqMap(), &Err))
        << Err;
    // No truncate(), no snapshot write: the crash happened here.
  }
  WalServer S2(C);
  EXPECT_EQ(S2.Server->stats().JournalReplayed, 3u);
  EXPECT_EQ(profile::serializeBundle(S2.Server->merged()), serialFold(5));
  S2.Server->stop();
}

TEST(Wal, CrashWindowsLandOnOldOrNewStateNeverTorn) {
  // Drive every injected crash point with a PERSISTENT client (same
  // session object and seq counter across the restart, dialing through
  // a slot — the chaos harness's contract): acked shards survive via
  // snapshot/journal, failed ones spill and replay under their original
  // seqs, and the recovered fold is exact for every window.
  const char *Points[] = {"wal.append.before", "wal.append.after",
                          "wal.rotate.mid", "wal.checkpoint.mid"};
  int Tag = 0;
  for (const char *Point : Points) {
    SCOPED_TRACE(Point);
    WalServerPaths P(support::formatString("window%d", Tag++).c_str());
    std::string Spill = P.Wal + ".spill";
    std::remove(Spill.c_str());
    ServerConfig C = walConfig(P);
    C.JournalMaxSegmentBytes = 512; // make rotation points reachable
    bool Armed = false;
    C.CrashHook = [&Armed, Point](const char *At) {
      if (!Armed || std::string(At) != Point)
        return false;
      Armed = false;
      return true;
    };
    auto Slot = std::make_shared<WalServer *>(nullptr);
    Dialer SlotDial =
        [Slot](std::string *Error) -> std::unique_ptr<Transport> {
      if (!*Slot) {
        if (Error)
          *Error = "root is down";
        return nullptr;
      }
      return loopbackDialer(*(*Slot)->L)(Error);
    };
    ClientConfig CC;
    CC.Fingerprint = TestFingerprint;
    CC.SessionId = 0x333;
    CC.SpillPath = Spill;
    CC.MaxRetries = 1;
    CC.BackoffMs = 1;
    ProfileClient Cl(SlotDial, CC);
    auto First = std::make_unique<WalServer>(C);
    *Slot = First.get();
    for (int I = 0; I != 3; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
    std::string Err;
    ASSERT_TRUE(First->Server->snapshotNow(&Err)) << Err;
    Armed = true; // somewhere in the next pushes/snapshot, we "die"
    for (int I = 3; I != 8; ++I) {
      ClientResult R = Cl.push(shardBundle(I), TestFingerprint);
      EXPECT_TRUE(R.Ok || R.Spilled) << R.Error;
    }
    First->Server->snapshotNow(nullptr); // may fail under the crash point
    First->Server->kill();
    ServerConfig C2 = walConfig(P); // no crash hook in the successor
    WalServer S2(C2);
    *Slot = &S2;
    // Replay the spilled shards under their original seqs: already-
    // journaled ones dedup, lost ones land — exactly once either way.
    ClientResult RR = Cl.replaySpill();
    EXPECT_TRUE(RR.Ok) << RR.Error;
    EXPECT_EQ(profile::serializeBundle(S2.Server->merged()), serialFold(8));
    *Slot = nullptr;
    S2.Server->stop();
    std::remove(Spill.c_str());
  }
}

TEST(Wal, PrevSnapshotRotationAcrossCheckpoints) {
  // snapshot -> snapshot -> crash: the displaced .prev stays the OLD
  // snapshot, the journal anchors at the NEW one, and recovery uses the
  // newest valid pair.  Tearing the newest snapshot file must then fall
  // back cleanly (the journal no longer matches .prev, so the server
  // restarts from the .prev bundle alone and counts a failure) instead
  // of replaying an unrelated tail.
  WalServerPaths P("prevrot");
  ServerConfig C = walConfig(P);
  {
    WalServer S(C);
    ProfileClient Cl = S.client(0x777);
    ASSERT_TRUE(Cl.push(shardBundle(0), TestFingerprint).Ok);
    std::string Err;
    ASSERT_TRUE(S.Server->snapshotNow(&Err)) << Err;
    ASSERT_TRUE(Cl.push(shardBundle(1), TestFingerprint).Ok);
    ASSERT_TRUE(S.Server->snapshotNow(&Err)) << Err;
    ASSERT_TRUE(Cl.push(shardBundle(2), TestFingerprint).Ok);
    S.Server->kill();
  }
  // .prev holds fold(1), the live snapshot fold(2), the journal shard 2.
  std::string PrevBytes, MainBytes;
  ASSERT_TRUE(profstore::ioutil::readFileRaw(P.Snap + ".prev", &PrevBytes));
  ASSERT_TRUE(profstore::ioutil::readFileRaw(P.Snap, &MainBytes));
  ASSERT_NE(PrevBytes, MainBytes);
  {
    WalServer S2(C);
    EXPECT_EQ(S2.Server->stats().JournalReplayed, 1u);
    EXPECT_EQ(profile::serializeBundle(S2.Server->merged()), serialFold(3));
    S2.Server->kill(); // leave the on-disk pair untouched for phase two
  }
  // Phase two: tear the newest snapshot; the loader falls back to .prev
  // whose checkpoint was truncated away — the journal must be wiped
  // (JournalFailures), never replayed against the wrong base.
  {
    std::ofstream Out(P.Snap, std::ios::binary | std::ios::trunc);
    Out.write(MainBytes.data(),
              static_cast<std::streamsize>(MainBytes.size() / 2));
  }
  WalServer S3(C);
  ServerStats St = S3.Server->stats();
  EXPECT_EQ(St.JournalReplayed, 0u);
  EXPECT_GE(St.JournalFailures, 1u);
  EXPECT_EQ(profile::serializeBundle(S3.Server->merged()), serialFold(1));
  S3.Server->stop();
}

//===----------------------------------------------------------------------===//
// Multi-homed client failover
//===----------------------------------------------------------------------===//

Dialer deadDialer() {
  return [](std::string *Error) -> std::unique_ptr<Transport> {
    if (Error)
      *Error = "parent is down";
    return nullptr;
  };
}

ServerConfig plainConfig() {
  ServerConfig C;
  C.Workers = 2;
  C.RecvTimeoutMs = 2000;
  C.Fingerprint = TestFingerprint;
  return C;
}

TEST(Failover, RotatesPastDeadParentAndSticks) {
  LoopbackListener *L = new LoopbackListener();
  ProfileServer Live(std::unique_ptr<Listener>(L), plainConfig());
  Live.start();
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 0xF01;
  CC.MaxRetries = 1;
  std::vector<Dialer> Dials;
  Dials.push_back(deadDialer());
  Dials.push_back(loopbackDialer(*L));
  ProfileClient Cl(std::move(Dials), CC);
  for (int I = 0; I != 4; ++I)
    ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
  EXPECT_GE(Cl.failovers(), 1u);
  EXPECT_EQ(Cl.activeParent(), 1u); // sticky once a parent works
  EXPECT_EQ(Live.stats().Merges, 4u);
  EXPECT_EQ(profile::serializeBundle(Live.merged()), serialFold(4));
  Live.stop();
}

TEST(Failover, ParentDeathMidStreamLosesNothing) {
  LoopbackListener *LA = new LoopbackListener();
  LoopbackListener *LB = new LoopbackListener();
  auto A = std::make_unique<ProfileServer>(std::unique_ptr<Listener>(LA),
                                           plainConfig());
  ProfileServer B(std::unique_ptr<Listener>(LB), plainConfig());
  A->start();
  B.start();
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 0xF02;
  CC.MaxRetries = 2;
  // LA dies with A, so its dialer must stop touching it first: a real
  // dial to a dead parent is refused by the kernel, not use-after-free.
  auto ADead = std::make_shared<std::atomic<bool>>(false);
  Dialer DialA = [LA, ADead](std::string *Error) -> std::unique_ptr<Transport> {
    if (ADead->load()) {
      if (Error)
        *Error = "parent A is dead";
      return nullptr;
    }
    return loopbackDialer(*LA)(Error);
  };
  std::vector<Dialer> Dials;
  Dials.push_back(std::move(DialA));
  Dials.push_back(loopbackDialer(*LB));
  ProfileClient Cl(std::move(Dials), CC);
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
  profile::ProfileBundle FromA = A->merged();
  ADead->store(true);
  A->stop();
  A.reset(); // dials to A now fail; pushes must fail over to B
  for (int I = 3; I != 6; ++I)
    ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
  EXPECT_GE(Cl.failovers(), 1u);
  // Exactly-once across the pair: A's early shards + B's late shards
  // fold to the full reference with nothing doubled.
  profile::ProfileBundle All = FromA;
  profstore::mergeBundle(All, B.merged());
  EXPECT_EQ(profile::serializeBundle(All), serialFold(6));
  B.stop();
}

TEST(Failover, LastSeqFloorPreventsSilentDedupAfterCounterLoss) {
  // A pusher that lost its in-memory seq counter (process restart with a
  // durable session id) reconnects; the v5 HELLO_ACK LastSeq floor must
  // move it past the seqs the server already applied, or its fresh
  // shards would be swallowed as duplicates.
  LoopbackListener *L = new LoopbackListener();
  ProfileServer S(std::unique_ptr<Listener>(L), plainConfig());
  S.start();
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 0xF03;
  {
    ProfileClient Cl(loopbackDialer(*L), CC);
    for (int I = 0; I != 3; ++I)
      ASSERT_TRUE(Cl.push(shardBundle(I), TestFingerprint).Ok);
  }
  // "Restarted" pusher: same session, counter reset to zero.
  ProfileClient Cl2(loopbackDialer(*L), CC);
  ASSERT_TRUE(Cl2.push(shardBundle(3), TestFingerprint).Ok);
  ServerStats St = S.stats();
  EXPECT_EQ(St.Merges, 4u);
  EXPECT_EQ(St.Duplicates, 0u);
  EXPECT_EQ(profile::serializeBundle(S.merged()), serialFold(4));
  S.stop();
}

TEST(Failover, CorruptSpillRecordIsSkippedNotFatal) {
  // Satellite: replaySpill resynchronizes past a CRC-bad record and
  // still delivers every intact one, counting the corruption instead of
  // aborting the replay.
  std::string Spill = support::formatString(
      "%swal_spill_%ld.bin", ::testing::TempDir().c_str(),
      static_cast<long>(::getpid()));
  std::remove(Spill.c_str());
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 0xF04;
  CC.SpillPath = Spill;
  CC.MaxRetries = 0;
  CC.BackoffMs = 1;
  {
    ProfileClient Down(deadDialer(), CC);
    for (int I = 0; I != 4; ++I) {
      ClientResult R = Down.push(shardBundle(I), TestFingerprint);
      EXPECT_FALSE(R.Ok);
      EXPECT_TRUE(R.Spilled);
    }
    EXPECT_EQ(Down.spillCount(), 4u);
  }
  // Flip one byte in the middle of the second record's payload.
  {
    std::fstream F(Spill,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(F.good());
    F.seekg(0, std::ios::end);
    auto Size = static_cast<long>(F.tellg());
    long Target = Size * 3 / 8; // inside record 2 of 4
    F.seekp(Target);
    char Byte = 0;
    F.seekg(Target);
    F.read(&Byte, 1);
    Byte = static_cast<char>(Byte ^ 0x5A);
    F.seekp(Target);
    F.write(&Byte, 1);
  }
  LoopbackListener *L = new LoopbackListener();
  ProfileServer S(std::unique_ptr<Listener>(L), plainConfig());
  S.start();
  ProfileClient Up(loopbackDialer(*L), CC);
  EXPECT_LE(Up.spillCount(), 3u);
  EXPECT_GE(Up.spillCorrupt(), 1u);
  ClientResult RR = Up.replaySpill();
  EXPECT_TRUE(RR.Ok) << RR.Error;
  // Every record the scan could still parse was delivered exactly once.
  ServerStats St = S.stats();
  EXPECT_GE(St.Merges, 2u);
  EXPECT_LE(St.Merges, 3u);
  EXPECT_EQ(St.Duplicates, 0u);
  EXPECT_EQ(Up.spillCount(), 0u);
  std::remove(Spill.c_str());
  S.stop();
}

} // namespace
