//===- tests/test_property.cpp - Property 1, static and dynamic -*- C++ -*-===//
///
/// Property 1 (paper section 2): the number of checks executed in the
/// checking code is less than or equal to the number of backedges and
/// method entries executed, independent of the instrumentation performed.
/// Statically we validate the structural invariants behind it; dynamically
/// we compare engine counters against the baseline's yieldpoint count
/// (baseline yieldpoints sit on exactly the method entries and backedges).
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "ir/IRVerifier.h"
#include "sampling/Property1.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;
instr::BlockCountInstrumentation SparseBlocks(4, /*Stride=*/3);
instr::ValueProfileInstrumentation Values;

struct PropertyCase {
  workloads::Workload W;
  sampling::Mode M;
  bool YieldOpt;
};

std::vector<PropertyCase> propertyCases() {
  std::vector<PropertyCase> Cases;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    Cases.push_back({W, sampling::Mode::FullDuplication, false});
    Cases.push_back({W, sampling::Mode::FullDuplication, true});
    Cases.push_back({W, sampling::Mode::PartialDuplication, false});
    Cases.push_back({W, sampling::Mode::NoDuplication, false});
    Cases.push_back({W, sampling::Mode::Exhaustive, false});
  }
  return Cases;
}

class Property1Test : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(Property1Test, StaticInvariantsHold) {
  const PropertyCase &C = GetParam();
  harness::Program P = build(C.W.Source);
  sampling::Options Opts;
  Opts.M = C.M;
  Opts.YieldpointOpt = C.YieldOpt;
  harness::InstrumentedProgram IP = harness::instrumentProgram(
      P, {&CallEdges, &FieldAccesses, &SparseBlocks, &Values}, Opts);
  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty())
        << C.W.Name << "/" << sampling::modeName(C.M);
    std::string Bad = sampling::checkProperty1Static(IP.Funcs[F],
                                                     IP.Transforms[F], Opts);
    EXPECT_TRUE(Bad.empty())
        << C.W.Name << "/" << sampling::modeName(C.M) << ": " << Bad;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, Property1Test, ::testing::ValuesIn(propertyCases()),
    [](const ::testing::TestParamInfo<PropertyCase> &Info) {
      std::string Name = std::string(Info.param.W.Name) + "_" +
                         sampling::modeName(Info.param.M) +
                         (Info.param.YieldOpt ? "_yopt" : "");
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

class Property1DynamicTest
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(Property1DynamicTest, ChecksBoundedByEntriesPlusBackedges) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  auto Base = harness::runBaseline(P, W.SmokeScale);
  ASSERT_TRUE(Base.Stats.Ok);
  uint64_t EntriesPlusBackedges = Base.Stats.YieldpointExecs;
  // volano's main spin-waits on its worker threads, so its backedge count
  // depends on timing and cannot be compared across configurations; the
  // same-run yieldpoint invariant below still applies to it.
  bool TimingDependent = std::string(W.Name) == "volano";

  for (int64_t Interval : {int64_t(0), int64_t(1), int64_t(137)}) {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Engine.SampleInterval = Interval;
    C.Clients = {&CallEdges, &FieldAccesses};
    auto R = harness::runExperiment(P, W.SmokeScale, C);
    ASSERT_TRUE(R.Stats.Ok) << W.Name << ": " << R.Stats.Error;
    if (!TimingDependent) {
      // Full-Duplication places exactly one check per entry and backedge,
      // so Property 1's bound is tight against the baseline's count of
      // those events (= its yieldpoint executions).
      EXPECT_EQ(R.Stats.CheckExecs, EntriesPlusBackedges)
          << W.Name << " interval " << Interval;
    }
    // Same-run invariant: without the yieldpoint optimization, checking
    // code carries a yieldpoint wherever it carries a check, and
    // duplicated code carries neither.
    EXPECT_EQ(R.Stats.CheckExecs, R.Stats.YieldpointExecs)
        << W.Name << " interval " << Interval;
  }
}

TEST_P(Property1DynamicTest, PartialNeverExecutesMoreChecksThanFull) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  for (auto Clients :
       std::vector<std::vector<const instr::Instrumentation *>>{
           {&CallEdges},
           {&FieldAccesses},
           {&CallEdges, &FieldAccesses, &SparseBlocks}}) {
    harness::RunConfig Full, Part;
    Full.Transform.M = sampling::Mode::FullDuplication;
    Part.Transform.M = sampling::Mode::PartialDuplication;
    Full.Engine.SampleInterval = Part.Engine.SampleInterval = 211;
    Full.Clients = Part.Clients = Clients;
    auto RF = harness::runExperiment(P, W.SmokeScale, Full);
    auto RP = harness::runExperiment(P, W.SmokeScale, Part);
    ASSERT_TRUE(RF.Stats.Ok && RP.Stats.Ok) << W.Name;
    EXPECT_LE(RP.Stats.CheckExecs, RF.Stats.CheckExecs)
        << W.Name << " (paper 3.1: dynamic check count of "
        << "Partial-Duplication is <= Full-Duplication)";
  }
}

TEST_P(Property1DynamicTest, CheckCountIndependentOfInstrumentation) {
  // Property 1's "independent of the instrumentation being performed":
  // adding more clients must not change Full-Duplication's check count.
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  harness::RunConfig One, Many;
  One.Transform.M = Many.Transform.M = sampling::Mode::FullDuplication;
  One.Engine.SampleInterval = Many.Engine.SampleInterval = 0;
  One.Clients = {&CallEdges};
  Many.Clients = {&CallEdges, &FieldAccesses, &SparseBlocks, &Values};
  auto R1 = harness::runExperiment(P, W.SmokeScale, One);
  auto RM = harness::runExperiment(P, W.SmokeScale, Many);
  ASSERT_TRUE(R1.Stats.Ok && RM.Stats.Ok);
  EXPECT_EQ(R1.Stats.CheckExecs, RM.Stats.CheckExecs) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Property1DynamicTest,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
