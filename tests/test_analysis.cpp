//===- tests/test_analysis.cpp - analysis/ unit tests ---------*- C++ -*-===//

#include "analysis/Backedges.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using analysis::BackedgeInfo;
using analysis::CFG;
using analysis::DominatorTree;
using analysis::LoopInfo;

/// Builds an IRFunction whose block B jumps/branches to the given targets.
/// One target -> Jump; two -> Branch on register 0; zero -> Ret.
ir::IRFunction makeGraph(const std::vector<std::vector<int>> &Succs) {
  ir::IRFunction F;
  F.Name = 'g'; // char assign: GCC 12 -Wrestrict false-positive (PR105329)
  F.NumRegs = 1;
  for (size_t B = 0; B != Succs.size(); ++B)
    F.addBlock();
  for (size_t B = 0; B != Succs.size(); ++B) {
    const auto &S = Succs[B];
    ir::IRInst T(ir::IROp::Ret);
    if (S.size() == 1) {
      T = ir::IRInst(ir::IROp::Jump);
      T.Imm = S[0];
    } else if (S.size() == 2) {
      T = ir::IRInst(ir::IROp::Branch);
      T.A = 0;
      T.Imm = S[0];
      T.Aux = S[1];
    }
    F.Blocks[B].Insts.push_back(T);
  }
  return F;
}

TEST(CFGTest, SuccsPredsAndRpo) {
  // Diamond: 0 -> {1,2} -> 3.
  ir::IRFunction F = makeGraph({{1, 2}, {3}, {3}, {}});
  CFG G(F);
  EXPECT_EQ(G.successors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(G.predecessors(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(G.rpoNumber(0), 0);
  EXPECT_GT(G.rpoNumber(3), G.rpoNumber(1));
  EXPECT_GT(G.rpoNumber(3), G.rpoNumber(2));
}

TEST(CFGTest, UnreachableBlocksMarked) {
  ir::IRFunction F = makeGraph({{1}, {}, {1}}); // 2 unreachable
  CFG G(F);
  EXPECT_TRUE(G.isReachable(1));
  EXPECT_FALSE(G.isReachable(2));
  EXPECT_EQ(G.rpoNumber(2), -1);
}

TEST(CFGTest, DuplicateBranchTargetsDeduped) {
  ir::IRFunction F = makeGraph({{1, 1}, {}});
  CFG G(F);
  EXPECT_EQ(G.successors(0).size(), 1u);
  EXPECT_EQ(G.predecessors(1).size(), 1u);
}

TEST(Dominators, DiamondJoin) {
  ir::IRFunction F = makeGraph({{1, 2}, {3}, {3}, {}});
  CFG G(F);
  DominatorTree DT(G);
  EXPECT_EQ(DT.idom(3), 0) << "join dominated by the fork, not a side";
  EXPECT_TRUE(DT.dominates(0, 3));
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_TRUE(DT.dominates(2, 2));
}

TEST(Dominators, LinearChain) {
  ir::IRFunction F = makeGraph({{1}, {2}, {}});
  CFG G(F);
  DominatorTree DT(G);
  EXPECT_EQ(DT.idom(1), 0);
  EXPECT_EQ(DT.idom(2), 1);
  EXPECT_TRUE(DT.dominates(1, 2));
}

TEST(Backedges, SimpleLoop) {
  // 0 -> 1; 1 -> {2(body), 3(exit)}; 2 -> 1 (backedge).
  ir::IRFunction F = makeGraph({{1}, {2, 3}, {1}, {}});
  BackedgeInfo BI = analysis::findBackedges(F);
  ASSERT_EQ(BI.Backedges.size(), 1u);
  EXPECT_EQ(BI.Backedges[0].From, 2);
  EXPECT_EQ(BI.Backedges[0].To, 1);
  EXPECT_TRUE(BI.Reducible);
  EXPECT_TRUE(BI.isBackedge(2, 1));
  EXPECT_FALSE(BI.isBackedge(0, 1));
}

TEST(Backedges, SelfLoop) {
  ir::IRFunction F = makeGraph({{1}, {1, 2}, {}});
  BackedgeInfo BI = analysis::findBackedges(F);
  ASSERT_EQ(BI.Backedges.size(), 1u);
  EXPECT_EQ(BI.Backedges[0].From, 1);
  EXPECT_EQ(BI.Backedges[0].To, 1);
  EXPECT_TRUE(BI.Reducible);
}

TEST(Backedges, NestedLoops) {
  // 0->1(outer hdr)->2(inner hdr)->3(inner latch)->2, 3->4? build:
  // 0->1; 1->2; 2->{3}; 3->{2,4}; 4->{1,5}; 5->{}.
  ir::IRFunction F = makeGraph({{1}, {2}, {3}, {2, 4}, {1, 5}, {}});
  BackedgeInfo BI = analysis::findBackedges(F);
  ASSERT_EQ(BI.Backedges.size(), 2u);
  EXPECT_TRUE(BI.isBackedge(3, 2));
  EXPECT_TRUE(BI.isBackedge(4, 1));
  EXPECT_TRUE(BI.Reducible);
}

TEST(Backedges, IrreducibleFlagged) {
  // Classic irreducible: 0 -> {1, 2}; 1 -> 2; 2 -> 1; 1 -> exit.
  ir::IRFunction F = makeGraph({{1, 2}, {2, 3}, {1}, {}});
  BackedgeInfo BI = analysis::findBackedges(F);
  EXPECT_FALSE(BI.Reducible);
  EXPECT_GE(BI.Backedges.size(), 1u)
      << "retreating edges still treated as backedges";
}

TEST(LoopInfoTest, BodyAndLatches) {
  // while loop with a body diamond:
  // 0->1(hdr); 1->{2,5}; 2->{3,4}; 3->{4}... make 3 and 4 join then latch.
  // 0->1; 1->{2,6}; 2->{3,4}; 3->5; 4->5; 5->1; 6->{}.
  ir::IRFunction F =
      makeGraph({{1}, {2, 6}, {3, 4}, {5}, {5}, {1}, {}});
  LoopInfo LI(F);
  ASSERT_EQ(LI.loops().size(), 1u);
  const analysis::Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 1);
  EXPECT_EQ(L.Latches, (std::vector<int>{5}));
  EXPECT_EQ(L.Blocks, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(LI.loopDepth(3), 1);
  EXPECT_EQ(LI.loopDepth(6), 0);
  EXPECT_EQ(LI.loopDepth(0), 0);
}

TEST(LoopInfoTest, NestedDepths) {
  ir::IRFunction F = makeGraph({{1}, {2}, {3}, {2, 4}, {1, 5}, {}});
  LoopInfo LI(F);
  ASSERT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.loopDepth(3), 2) << "inner latch is in both loops";
  EXPECT_EQ(LI.loopDepth(4), 1);
  EXPECT_EQ(LI.loopDepth(5), 0);
}

TEST(LoopInfoTest, TwoLatchesMerge) {
  // Two backedges into one header form one natural loop.
  ir::IRFunction F = makeGraph({{1}, {2, 3}, {1}, {1, 4}, {}});
  LoopInfo LI(F);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].Latches, (std::vector<int>{2, 3}));
}

TEST(CFGTest, EntryFieldRespected) {
  ir::IRFunction F = makeGraph({{}, {0}});
  F.Entry = 1;
  CFG G(F);
  EXPECT_EQ(G.entry(), 1);
  EXPECT_EQ(G.rpoNumber(1), 0);
  EXPECT_TRUE(G.isReachable(0));
  DominatorTree DT(G);
  EXPECT_TRUE(DT.dominates(1, 0));
}

} // namespace
