//===- tests/test_parallel_harness.cpp - ParallelRunner tests -*- C++ -*-===//
///
/// The parallel harness's contract: a RunMatrix produces bit-identical
/// simulated-cycle stats and profiles (compared as serialized bytes)
/// whatever the worker count; the transform cache builds each
/// instrumented module exactly once and shares it read-only; and the
/// thread pool underneath executes and drains correctly.  These tests
/// are the ones `scripts/check.sh --tsan` runs under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#include "harness/ParallelRunner.h"
#include "instr/Clients.h"
#include "ir/IRPrinter.h"
#include "profile/Profiles.h"
#include "runtime/Engine.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>
#include <thread>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedJob) {
  support::ThreadPool Pool(4);
  EXPECT_EQ(Pool.workers(), 4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  support::ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    support::ThreadPool Pool(1);
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, ClampsWorkerCount) {
  support::ThreadPool Pool(0);
  EXPECT_EQ(Pool.workers(), 1);
  EXPECT_GE(support::ThreadPool::defaultWorkers(), 1);
}

/// A job that throws must not kill the worker thread; the first
/// exception is rethrown from wait() so failures surface to the code
/// that submitted the work instead of vanishing (or aborting).
TEST(ThreadPool, JobExceptionRethrownFromWait) {
  support::ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([] { throw std::runtime_error("job blew up"); });
  for (int I = 0; I != 20; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  try {
    Pool.wait();
    FAIL() << "wait() swallowed the job's exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "job blew up");
  }
  // Every other job still ran: the throwing job did not take its worker
  // down with it.
  EXPECT_EQ(Count.load(), 20);

  // The error is cleared once delivered; the pool remains usable.
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 21);
}

TEST(ThreadPool, OnlyFirstExceptionIsKept) {
  support::ThreadPool Pool(1); // serial: deterministic first thrower
  Pool.submit([] { throw std::runtime_error("first"); });
  Pool.submit([] { throw std::runtime_error("second"); });
  try {
    Pool.wait();
    FAIL() << "wait() swallowed the jobs' exceptions";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
  Pool.wait(); // second error was dropped, not queued for replay
}

//===----------------------------------------------------------------------===//
// TransformCache
//===----------------------------------------------------------------------===//

TEST(TransformCache, SameConfigurationTransformsOnce) {
  harness::Program P =
      build(workloads::workloadByName("compress")->Source);
  harness::TransformCache Cache;
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  std::vector<const instr::Instrumentation *> Clients = {&CallEdges,
                                                         &FieldAccesses};

  auto A = Cache.get(P, Clients, Opts);
  auto B = Cache.get(P, Clients, Opts);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A.get(), B.get()) << "second lookup must share the module";
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 1u);
}

TEST(TransformCache, DistinctOptionsAreDistinctEntries) {
  harness::Program P =
      build(workloads::workloadByName("compress")->Source);
  harness::TransformCache Cache;
  std::vector<const instr::Instrumentation *> Clients = {&CallEdges};

  sampling::Options Full;
  Full.M = sampling::Mode::FullDuplication;
  sampling::Options NoDup;
  NoDup.M = sampling::Mode::NoDuplication;
  sampling::Options FullBurst = Full;
  FullBurst.BurstLength = 8;

  auto A = Cache.get(P, Clients, Full);
  auto B = Cache.get(P, Clients, NoDup);
  auto C = Cache.get(P, Clients, FullBurst);
  EXPECT_NE(A.get(), B.get());
  EXPECT_NE(A.get(), C.get());
  EXPECT_EQ(Cache.misses(), 3u);
  EXPECT_EQ(Cache.hits(), 0u);

  // Distinct client sets are distinct entries too.
  auto D = Cache.get(P, {&CallEdges, &FieldAccesses}, Full);
  EXPECT_NE(A.get(), D.get());
  EXPECT_EQ(Cache.misses(), 4u);
}

TEST(TransformCache, ProgramsWithSameContentShareEntries) {
  // Content-keyed, not address-keyed: two builds of the same source hash
  // to the same key, so the second program's lookup is a hit.
  const char *Source = workloads::workloadByName("db")->Source;
  harness::Program P1 = build(Source);
  harness::Program P2 = build(Source);
  EXPECT_EQ(harness::programHash(P1), harness::programHash(P2));

  harness::TransformCache Cache;
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  auto A = Cache.get(P1, {&CallEdges}, Opts);
  auto B = Cache.get(P2, {&CallEdges}, Opts);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 1u);
}

TEST(TransformCache, CachedModuleEqualsFreshTransform) {
  // The sharing argument rests on the transform being deterministic: a
  // cache hit hands back exactly what a fresh transform would produce.
  harness::Program P =
      build(workloads::workloadByName("jess")->Source);
  harness::TransformCache Cache;
  sampling::Options Opts;
  Opts.M = sampling::Mode::PartialDuplication;
  std::vector<const instr::Instrumentation *> Clients = {&CallEdges,
                                                         &FieldAccesses};
  auto Cached = Cache.get(P, Clients, Opts);
  harness::InstrumentedProgram Fresh =
      harness::instrumentProgram(P, Clients, Opts);
  ASSERT_EQ(Cached->Funcs.size(), Fresh.Funcs.size());
  EXPECT_EQ(Cached->CodeSizeAfter, Fresh.CodeSizeAfter);
  for (size_t I = 0; I != Fresh.Funcs.size(); ++I)
    EXPECT_EQ(ir::printFunction(Cached->Funcs[I]),
              ir::printFunction(Fresh.Funcs[I]));
}

TEST(TransformCache, SingleFlightUnderConcurrency) {
  // Many threads asking for the same key must produce one transform; the
  // rest block until it is ready and then share it.  (TSan target: this
  // exercises the in-flight wait path.)
  harness::Program P =
      build(workloads::workloadByName("compress")->Source);
  harness::TransformCache Cache;
  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  std::vector<const instr::Instrumentation *> Clients = {&CallEdges};

  constexpr int N = 8;
  std::vector<std::shared_ptr<const harness::InstrumentedProgram>> Got(N);
  {
    support::ThreadPool Pool(N);
    for (int I = 0; I != N; ++I)
      Pool.submit([&, I] { Got[I] = Cache.get(P, Clients, Opts); });
    Pool.wait();
  }
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Got[I].get(), Got[0].get());
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), static_cast<uint64_t>(N - 1));
}

//===----------------------------------------------------------------------===//
// ParallelRunner determinism
//===----------------------------------------------------------------------===//

/// A Table-4-shaped sub-matrix: two workloads x two framework modes x
/// {framework-only, three intervals}, both clients, plus an exhaustive
/// and a baseline cell per workload.
harness::RunMatrix subMatrix(const std::vector<harness::Program> &Progs) {
  harness::RunMatrix M;
  for (const harness::Program &P : Progs) {
    harness::MatrixCell Base;
    Base.Prog = &P;
    Base.ScaleArg = 1;
    Base.Config.Transform.M = sampling::Mode::Baseline;
    M.Cells.push_back(Base);

    harness::MatrixCell Perfect = Base;
    Perfect.Config.Transform.M = sampling::Mode::Exhaustive;
    Perfect.Config.Clients = {&CallEdges, &FieldAccesses};
    M.Cells.push_back(Perfect);

    for (sampling::Mode Mode : {sampling::Mode::FullDuplication,
                                sampling::Mode::NoDuplication})
      for (int64_t Interval : {0, 1, 100, 10000}) {
        harness::MatrixCell C = Perfect;
        C.Config.Transform.M = Mode;
        C.Config.Engine.SampleInterval = Interval;
        M.Cells.push_back(C);
      }
  }
  return M;
}

std::vector<harness::Program> subMatrixPrograms() {
  std::vector<harness::Program> Progs;
  Progs.push_back(build(workloads::workloadByName("compress")->Source));
  Progs.push_back(build(workloads::workloadByName("db")->Source));
  return Progs;
}

TEST(ParallelRunner, BitIdenticalAcrossWorkerCounts) {
  std::vector<harness::Program> Progs = subMatrixPrograms();
  harness::RunMatrix M = subMatrix(Progs);

  harness::ParallelRunner Serial(1);
  auto Reference = Serial.run(M);
  ASSERT_EQ(Reference.size(), M.Cells.size());

  int Wide = std::max(support::ThreadPool::defaultWorkers(), 4);
  harness::ParallelRunner Parallel(Wide);
  auto Threaded = Parallel.run(M);
  ASSERT_EQ(Threaded.size(), M.Cells.size());

  for (size_t I = 0; I != Reference.size(); ++I) {
    ASSERT_TRUE(Reference[I].Stats.Ok) << Reference[I].Stats.Error;
    ASSERT_TRUE(Threaded[I].Stats.Ok) << Threaded[I].Stats.Error;
    EXPECT_EQ(runtime::serializeStats(Reference[I].Stats),
              runtime::serializeStats(Threaded[I].Stats))
        << "cell " << I << " stats differ between 1 and " << Wide
        << " workers";
    EXPECT_EQ(profile::serializeBundle(Reference[I].Profiles),
              profile::serializeBundle(Threaded[I].Profiles))
        << "cell " << I << " profiles differ between 1 and " << Wide
        << " workers";
  }
}

TEST(ParallelRunner, RepeatedParallelRunsAreIdentical) {
  // Same matrix, same runner, run twice: the second pass is served from
  // the transform cache and must still produce the same bytes.
  std::vector<harness::Program> Progs = subMatrixPrograms();
  harness::RunMatrix M = subMatrix(Progs);
  harness::ParallelRunner Runner(4);
  auto First = Runner.run(M);
  uint64_t MissesAfterFirst = Runner.cache().misses();
  auto Second = Runner.run(M);
  EXPECT_EQ(Runner.cache().misses(), MissesAfterFirst)
      << "second pass must be all cache hits";
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I != First.size(); ++I) {
    EXPECT_EQ(runtime::serializeStats(First[I].Stats),
              runtime::serializeStats(Second[I].Stats));
    EXPECT_EQ(profile::serializeBundle(First[I].Profiles),
              profile::serializeBundle(Second[I].Profiles));
  }
}

TEST(ParallelRunner, SharesTransformsAcrossCells) {
  // Table 4's economics: one transform per (workload, mode) serves every
  // interval.  2 workloads x (1 exhaustive + 2 modes) = 6 transforms for
  // 20 cells (baseline cells don't instrument -- they still cache).
  std::vector<harness::Program> Progs = subMatrixPrograms();
  harness::RunMatrix M = subMatrix(Progs);
  harness::ParallelRunner Runner(4);
  auto Results = Runner.run(M);
  ASSERT_EQ(Results.size(), M.Cells.size());
  EXPECT_EQ(Runner.cache().misses(), 8u)
      << "2 workloads x {baseline, exhaustive, full, nodup}";
  EXPECT_EQ(Runner.cache().hits(), M.Cells.size() - 8);
}

TEST(ParallelRunner, ResultsStayInCellOrder) {
  // Interleave two easily distinguished configs; slot I must hold cell
  // I's result whatever order the workers finished in.
  harness::Program P =
      build(workloads::workloadByName("compress")->Source);
  harness::RunMatrix M;
  for (int I = 0; I != 12; ++I) {
    harness::MatrixCell C;
    C.Prog = &P;
    C.ScaleArg = 1;
    C.Config.Transform.M = (I % 2 == 0) ? sampling::Mode::Baseline
                                        : sampling::Mode::Exhaustive;
    if (I % 2 == 1)
      C.Config.Clients = {&CallEdges, &FieldAccesses};
    M.Cells.push_back(C);
  }
  auto Results = harness::runMatrix(M, 4);
  ASSERT_EQ(Results.size(), M.Cells.size());
  for (int I = 0; I != 12; ++I) {
    ASSERT_TRUE(Results[I].Stats.Ok);
    if (I % 2 == 0)
      EXPECT_EQ(Results[I].Profiles.CallEdges.total(), 0u) << I;
    else
      EXPECT_GT(Results[I].Profiles.CallEdges.total(), 0u) << I;
  }
}

TEST(ParallelRunner, NullProgramReportsErrorInSlot) {
  harness::Program P =
      build(workloads::workloadByName("db")->Source);
  harness::RunMatrix M;
  harness::MatrixCell Good;
  Good.Prog = &P;
  Good.ScaleArg = 1;
  M.Cells.push_back(Good);
  harness::MatrixCell Bad; // Prog left null
  M.Cells.push_back(Bad);
  auto Results = harness::runMatrix(M, 2);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_TRUE(Results[0].Stats.Ok);
  EXPECT_FALSE(Results[1].Stats.Ok);
  EXPECT_FALSE(Results[1].Stats.Error.empty());
}

TEST(ParallelRunner, ConcurrentEnginesShareOneInstrumentedProgram) {
  // Regression for the core sharing claim: many engines executing the
  // same cached module concurrently must not disturb each other (the
  // module and probe registry are read-only; all run state is engine-
  // local).  Run the same cell 16 times in one matrix and demand 16
  // byte-identical results.
  harness::Program P =
      build(workloads::workloadByName("jess")->Source);
  harness::RunMatrix M;
  for (int I = 0; I != 16; ++I) {
    harness::MatrixCell C;
    C.Prog = &P;
    C.ScaleArg = 1;
    C.Config.Transform.M = sampling::Mode::FullDuplication;
    C.Config.Engine.SampleInterval = 37;
    C.Config.Clients = {&CallEdges, &FieldAccesses};
    M.Cells.push_back(C);
  }
  harness::ParallelRunner Runner(8);
  auto Results = Runner.run(M);
  EXPECT_EQ(Runner.cache().misses(), 1u);
  std::string Stats0 = runtime::serializeStats(Results[0].Stats);
  std::string Bundle0 = profile::serializeBundle(Results[0].Profiles);
  EXPECT_FALSE(Bundle0.empty());
  for (size_t I = 1; I != Results.size(); ++I) {
    EXPECT_EQ(runtime::serializeStats(Results[I].Stats), Stats0) << I;
    EXPECT_EQ(profile::serializeBundle(Results[I].Profiles), Bundle0) << I;
  }
}

} // namespace
