//===- tests/test_faultinject.cpp - Fault injection + chaos ---*- C++ -*-===//
///
/// The robustness acceptance gates: seeded fault streams replay
/// byte-identical traces; scripted faults pin down each failure mode
/// (ack lost, push lost, torn file write) and its exactly-once /
/// crash-safety contract; and the end-to-end chaos harness proves that a
/// collection run under injected faults still merges byte-identically to
/// the fault-free serial fold — for every seed, twice.
///
//===----------------------------------------------------------------------===//

#include "faultinject/Chaos.h"
#include "faultinject/FaultInject.h"
#include "profserve/Client.h"
#include "profserve/Server.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <sys/stat.h>

namespace {

using namespace ars;
using namespace ars::faultinject;
using profserve::ClientConfig;
using profserve::ClientResult;
using profserve::Dialer;
using profserve::LoopbackListener;
using profserve::ProfileClient;
using profserve::ProfileServer;
using profserve::ServerConfig;
using profserve::Transport;

constexpr uint64_t Fp = 0xabcdef0123456789ULL;

profile::ProfileBundle shard(int Seed) {
  profile::ProfileBundle B;
  B.FieldAccesses.record(Seed % 4, static_cast<uint64_t>(Seed) * 13 + 1);
  B.BlockCounts.record(1, Seed % 6, static_cast<uint64_t>(Seed) + 2);
  return B;
}

std::string serialFold(int Shards) {
  profile::ProfileBundle Acc;
  for (int I = 0; I != Shards; ++I)
    profstore::mergeBundle(Acc, shard(I));
  return profile::serializeBundle(Acc);
}

/// A loopback server with the chaos-style pinned fingerprint.
struct TestServer {
  LoopbackListener *L;
  ProfileServer Server;

  explicit TestServer(ServerConfig C = TestServer::config())
      : L(new LoopbackListener()),
        Server(std::unique_ptr<profserve::Listener>(L), C) {
    Server.start();
  }
  ~TestServer() { Server.stop(); }

  static ServerConfig config() {
    ServerConfig C;
    C.Workers = 2;
    C.RecvTimeoutMs = 2000;
    C.Fingerprint = Fp;
    return C;
  }
};

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::string();
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

//===----------------------------------------------------------------------===//
// FaultStream: seeded determinism
//===----------------------------------------------------------------------===//

std::string driveStream(FaultStream &S) {
  for (int I = 0; I != 200; ++I) {
    S.onWrite(64 + I % 7);
    S.onRead(512);
  }
  return S.trace();
}

TEST(FaultInjectStream, SameSeedSameKeyReplaysIdenticalTrace) {
  FaultPlan Plan;
  FaultStream A(Plan, /*Seed=*/7, /*Key=*/1, "a");
  FaultStream B(Plan, /*Seed=*/7, /*Key=*/1, "a");
  std::string TA = driveStream(A);
  EXPECT_EQ(TA, driveStream(B));
  EXPECT_FALSE(TA.empty()) << "default plan injected nothing in 400 ops";
}

TEST(FaultInjectStream, DifferentKeysDiverge) {
  FaultPlan Plan;
  FaultStream A(Plan, 7, /*Key=*/1, "x");
  FaultStream B(Plan, 7, /*Key=*/2, "x");
  EXPECT_NE(driveStream(A), driveStream(B));
}

TEST(FaultInjectStream, HarmfulFaultBudgetIsRespected) {
  FaultPlan Plan;
  Plan.DropPct = 40;
  Plan.PartialWritePct = 20;
  Plan.BitFlipPct = 20;
  Plan.MaxFaults = 3;
  FaultStream S(Plan, 11, 0, "budget");
  for (int I = 0; I != 500; ++I)
    S.onWrite(128);
  std::string Trace = S.trace();
  int Harmful = 0;
  for (const char *Kind : {"drop", "partial-write", "bit-flip"})
    for (size_t At = Trace.find(Kind); At != std::string::npos;
         At = Trace.find(Kind, At + 1))
      ++Harmful;
  EXPECT_EQ(Harmful, 3) << Trace; // exhausted, then permanently clean
}

//===----------------------------------------------------------------------===//
// FaultyTransport: scripted single faults
//===----------------------------------------------------------------------===//

TEST(FaultInjectTransport, ScriptedDropFailsWriteAndClosesBothWays) {
  auto Pair = profserve::makeLoopbackPair();
  FaultyTransport T(std::move(Pair.first),
                    FaultStream::scripted({{0, FaultKind::Drop, 0}}));
  profserve::IoResult R = T.writeAll("hello", 5);
  EXPECT_EQ(R.Status, profserve::IoStatus::Error);
  EXPECT_NE(R.Message.find("injected"), std::string::npos);
  char Buf[8];
  size_t N = 0;
  EXPECT_EQ(Pair.second->readSome(Buf, sizeof(Buf), 100, &N).Status,
            profserve::IoStatus::Eof);
}

TEST(FaultInjectTransport, ScriptedPartialWriteDeliversStrictPrefix) {
  auto Pair = profserve::makeLoopbackPair();
  FaultyTransport T(
      std::move(Pair.first),
      FaultStream::scripted({{0, FaultKind::PartialWrite, 3}}));
  EXPECT_EQ(T.writeAll("0123456789", 10).Status,
            profserve::IoStatus::Error);
  char Buf[16];
  size_t N = 0;
  ASSERT_TRUE(Pair.second->readSome(Buf, sizeof(Buf), 100, &N).ok());
  EXPECT_EQ(std::string(Buf, N), "012"); // the torn prefix, then EOF
  EXPECT_EQ(Pair.second->readSome(Buf, sizeof(Buf), 100, &N).Status,
            profserve::IoStatus::Eof);
}

TEST(FaultInjectTransport, ScriptedBitFlipIsCaughtByFrameCrc) {
  auto Pair = profserve::makeLoopbackPair();
  FaultyTransport T(
      std::move(Pair.first),
      FaultStream::scripted({{0, FaultKind::BitFlip, 77}}));
  // The flipped frame still arrives in full — but its CRC must refuse it.
  ASSERT_TRUE(
      profserve::writeFrame(T, profserve::MsgType::Push, "payload").ok());
  profserve::FrameResult FR = profserve::readFrame(*Pair.second, 1000);
  EXPECT_EQ(FR.Status, profserve::FrameStatus::Malformed) << FR.Error;
}

//===----------------------------------------------------------------------===//
// Crash-safe file writes under scripted file faults
//===----------------------------------------------------------------------===//

/// Per atomicSaveFile, one save is ops: write(0), fsync file(1), fsync
/// dir(2), [rename to .prev], rename tmp(3 or 4), fsync dir.
TEST(FaultInjectFile, ShortWriteFailsSaveAndKeepsOldContents) {
  std::string Path = ::testing::TempDir() + "fi_shortwrite.bin";
  std::string Error;
  ASSERT_TRUE(profstore::atomicSaveFile(Path, "old-contents", &Error))
      << Error;
  {
    FaultyFile Guard(
        FaultStream::scripted({{0, FaultKind::FileShortWrite, 2}}));
    EXPECT_FALSE(profstore::atomicSaveFile(Path, "new-contents", &Error));
    EXPECT_NE(Error.find("short"), std::string::npos) << Error;
  }
  EXPECT_EQ(readFileOrEmpty(Path), "old-contents");
  EXPECT_FALSE(fileExists(Path + ".tmp")); // failed save cleans up
  ASSERT_TRUE(profstore::atomicSaveFile(Path, "new-contents", &Error))
      << Error;
  EXPECT_EQ(readFileOrEmpty(Path), "new-contents");
  std::remove(Path.c_str());
}

TEST(FaultInjectFile, FsyncFailureFailsSaveAndKeepsOldContents) {
  std::string Path = ::testing::TempDir() + "fi_fsync.bin";
  std::string Error;
  ASSERT_TRUE(profstore::atomicSaveFile(Path, "old", &Error)) << Error;
  {
    FaultyFile Guard(
        FaultStream::scripted({{1, FaultKind::FileFsyncFail, 0}}));
    EXPECT_FALSE(profstore::atomicSaveFile(Path, "new", &Error));
  }
  EXPECT_EQ(readFileOrEmpty(Path), "old");
  std::remove(Path.c_str());
}

TEST(FaultInjectFile, RenameCrashWindowLeavesPrevAsFallback) {
  std::string Path = ::testing::TempDir() + "fi_rename.bin";
  std::string Error;
  std::remove((Path + ".prev").c_str());
  ASSERT_TRUE(
      profstore::atomicSaveFile(Path, "v1", &Error, /*KeepPrevious=*/true))
      << Error;
  // Fail the tmp->main rename AFTER main was moved aside: the one state
  // where the main file is legitimately missing — its contents must
  // survive under .prev (ops: write 0, fsync 1, fsync 2, rename-to-prev
  // 3, rename-tmp 4).
  {
    FaultyFile Guard(
        FaultStream::scripted({{4, FaultKind::FileRenameFail, 0}}));
    EXPECT_FALSE(
        profstore::atomicSaveFile(Path, "v2", &Error, true));
  }
  EXPECT_FALSE(fileExists(Path));
  EXPECT_EQ(readFileOrEmpty(Path + ".prev"), "v1");
  // The recovery write restores the main file.
  ASSERT_TRUE(profstore::atomicSaveFile(Path, "v2", &Error, true))
      << Error;
  EXPECT_EQ(readFileOrEmpty(Path), "v2");
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
}

//===----------------------------------------------------------------------===//
// Exactly-once pushes under scripted wire faults
//===----------------------------------------------------------------------===//

/// Client op indices on its fault stream: HELLO write(0), ack reads
/// (1,2), PUSH write(3), ack reads (4,5); a reconnect repeats the
/// pattern at the next indices.
ClientConfig sequencedConfig() {
  ClientConfig C;
  C.TimeoutMs = 2000;
  C.MaxRetries = 3;
  C.BackoffMs = 1;
  C.Fingerprint = Fp;
  C.SessionId = 42;
  return C;
}

TEST(FaultInjectExactlyOnce, LostAckRetriesAndServerDeduplicates) {
  TestServer S;
  // Drop the connection while READING the push ack: the server already
  // merged, so the blind retry must be recognized as a duplicate.
  auto Faults =
      FaultStream::scripted({{4, FaultKind::Drop, 0}}, "lost-ack");
  ProfileClient C(faultyDialer(profserve::loopbackDialer(*S.L), Faults),
                  sequencedConfig());
  ClientResult R = C.push(shard(0), Fp);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(C.duplicateAcks(), 1u);
  EXPECT_EQ(S.Server.stats().Merges, 1u);
  EXPECT_EQ(S.Server.stats().Duplicates, 1u);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(1));
}

TEST(FaultInjectExactlyOnce, LostPushRetriesAndMergesExactlyOnce) {
  TestServer S;
  // Drop the PUSH write itself: the shard never reached the server, so
  // the retry is a first delivery, not a duplicate.
  auto Faults =
      FaultStream::scripted({{3, FaultKind::Drop, 0}}, "lost-push");
  ProfileClient C(faultyDialer(profserve::loopbackDialer(*S.L), Faults),
                  sequencedConfig());
  ClientResult R = C.push(shard(0), Fp);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(C.duplicateAcks(), 0u);
  EXPECT_EQ(S.Server.stats().Merges, 1u);
  EXPECT_EQ(S.Server.stats().Duplicates, 0u);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(1));
}

//===----------------------------------------------------------------------===//
// Spill + replay
//===----------------------------------------------------------------------===//

TEST(FaultInjectSpill, UnpushableShardsSpillAndReplayOnReconnect) {
  TestServer S;
  std::string SpillPath = ::testing::TempDir() + "fi_spill.bin";
  std::remove(SpillPath.c_str());

  std::atomic<bool> Down{true};
  Dialer Flaky = [&](std::string *Error) -> std::unique_ptr<Transport> {
    if (Down.load()) {
      *Error = "server down";
      return nullptr;
    }
    return S.L->connect();
  };
  ClientConfig CC = sequencedConfig();
  CC.MaxRetries = 1;
  CC.SpillPath = SpillPath;
  ProfileClient C(Flaky, CC);

  ClientResult R = C.push(shard(0), Fp);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Spilled);
  EXPECT_NE(R.Error.find("spilled"), std::string::npos) << R.Error;
  EXPECT_FALSE(C.push(shard(1), Fp).Ok);
  EXPECT_EQ(C.spillCount(), 2u);
  EXPECT_EQ(S.Server.stats().Merges, 0u);

  Down.store(false); // the server is back
  ClientResult Replay = C.replaySpill();
  EXPECT_TRUE(Replay.Ok) << Replay.Error;
  EXPECT_EQ(C.spillCount(), 0u);
  EXPECT_FALSE(fileExists(SpillPath)); // drained spill file is removed

  // Later pushes keep their sequence numbers unique past the replay.
  ASSERT_TRUE(C.push(shard(2), Fp).Ok);
  EXPECT_EQ(S.Server.stats().Merges, 3u);
  EXPECT_EQ(S.Server.stats().Duplicates, 0u);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(3));
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

TEST(FaultInjectBreaker, OpensAfterThresholdAndClosesOnProbeSuccess) {
  TestServer S;
  std::atomic<bool> Down{true};
  std::atomic<int> Dials{0};
  Dialer Flaky = [&](std::string *Error) -> std::unique_ptr<Transport> {
    ++Dials;
    if (Down.load()) {
      *Error = "server down";
      return nullptr;
    }
    return S.L->connect();
  };
  ClientConfig CC = sequencedConfig();
  CC.MaxRetries = 0; // one attempt per push: deterministic op counting
  CC.BreakerThreshold = 2;
  CC.BreakerCooldownOps = 3;
  ProfileClient C(Flaky, CC);

  EXPECT_FALSE(C.push(shard(0), Fp).Ok); // strike one
  EXPECT_FALSE(C.breakerOpen());
  EXPECT_FALSE(C.push(shard(0), Fp).Ok); // strike two: open
  EXPECT_TRUE(C.breakerOpen());
  EXPECT_EQ(Dials.load(), 2);

  // Three denied operations burn the cooldown without dialing at all.
  for (int I = 0; I != 3; ++I) {
    ClientResult R = C.push(shard(0), Fp);
    EXPECT_FALSE(R.Ok);
    EXPECT_NE(R.Error.find("breaker"), std::string::npos) << R.Error;
  }
  EXPECT_EQ(Dials.load(), 2);

  // Half-open probe while still down: one dial, then re-armed.
  EXPECT_FALSE(C.push(shard(0), Fp).Ok);
  EXPECT_EQ(Dials.load(), 3);
  EXPECT_TRUE(C.breakerOpen());

  // Burn the re-armed cooldown, then probe against a healthy server.
  Down.store(false);
  for (int I = 0; I != 3; ++I)
    EXPECT_FALSE(C.push(shard(0), Fp).Ok);
  EXPECT_EQ(Dials.load(), 3);
  EXPECT_TRUE(C.push(shard(0), Fp).Ok);
  EXPECT_FALSE(C.breakerOpen());
  EXPECT_EQ(S.Server.stats().Merges, 1u);
}

//===----------------------------------------------------------------------===//
// Chaos: end-to-end seeded runs
//===----------------------------------------------------------------------===//

ChaosConfig quickChaos() {
  ChaosConfig C;
  C.Clients = 3;
  C.ShardsPerClient = 3;
  C.WorkDir = ::testing::TempDir() + "fi_chaos";
  ::mkdir(C.WorkDir.c_str(), 0755);
  return C;
}

TEST(Chaos, SeededRunMatchesSerialFoldAndReplaysIdentically) {
  ChaosConfig C = quickChaos();
  C.FaultSeed = 3;
  ChaosReport First = runChaos(C);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.Merges, First.ExpectedShards);
  ChaosReport Second = runChaos(C);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(First.Trace, Second.Trace);
  EXPECT_EQ(First.Duplicates, Second.Duplicates);
  EXPECT_EQ(First.Spills, Second.Spills);
}

TEST(Chaos, SmallSweepPasses) {
  EXPECT_TRUE(chaosSweep(quickChaos(), /*Seeds=*/4, /*Verbose=*/false));
}

TEST(Chaos, RejectsMissingWorkDir) {
  ChaosConfig C;
  C.WorkDir.clear();
  ChaosReport R = runChaos(C);
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

} // namespace
