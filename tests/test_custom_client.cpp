//===- tests/test_custom_client.cpp - docs/TUTORIAL.md client -*- C++ -*-===//
///
/// Keeps the tutorial honest: the client it builds (a per-site access
/// counter reusing ProbeKind::BlockCount) must compile against the public
/// API exactly as written and behave per the framework's guarantees.
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "instr/Instrumentation.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

/// The tutorial's client, verbatim in spirit: one counter per
/// field-access *site* rather than per field.
class SiteAccessInstrumentation : public instr::Instrumentation {
public:
  const char *name() const override { return "site-access"; }

  void plan(const ir::IRFunction &F, const bytecode::Module &M,
            instr::ProbeRegistry &Registry,
            instr::FunctionPlan &Plan) const override {
    (void)M;
    for (const ir::BasicBlock &BB : F.Blocks) {
      for (size_t I = 0; I != BB.Insts.size(); ++I) {
        const ir::IRInst &Inst = BB.Insts[I];
        if (Inst.Op != ir::IROp::GetField &&
            Inst.Op != ir::IROp::PutField)
          continue;

        instr::ProbeEntry P;
        P.Kind = instr::ProbeKind::BlockCount;
        P.CostCycles = 6;
        P.FuncId = F.FuncId;
        P.Payload = BB.Id * 1000 + static_cast<int>(I);
        int Id = Registry.add(P);

        instr::ProbeAnchor A;
        A.Kind = instr::AnchorKind::BeforeInst;
        A.Block = BB.Id;
        A.InstIdx = static_cast<int>(I);
        A.ProbeId = Id;
        Plan.Anchors.push_back(A);
      }
    }
  }
};

TEST(CustomClient, CollectsPerSiteCounts) {
  const workloads::Workload *W = workloads::workloadByName("jess");
  harness::Program P = build(W->Source);
  SiteAccessInstrumentation Sites;

  harness::RunConfig Exhaustive;
  Exhaustive.Transform.M = sampling::Mode::Exhaustive;
  Exhaustive.Clients = {&Sites};
  auto Perfect = harness::runExperiment(P, W->SmokeScale, Exhaustive);
  ASSERT_TRUE(Perfect.Stats.Ok) << Perfect.Stats.Error;
  EXPECT_GT(Perfect.Profiles.BlockCounts.total(), 0u);
  EXPECT_GT(Perfect.Profiles.BlockCounts.counts().size(), 3u)
      << "distinct sites get distinct counters";

  // Interval 1 equals exhaustive, as the tutorial promises.
  harness::RunConfig Sampled = Exhaustive;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  Sampled.Engine.SampleInterval = 1;
  auto R = harness::runExperiment(P, W->SmokeScale, Sampled);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_EQ(Perfect.Profiles.BlockCounts.counts(),
            R.Profiles.BlockCounts.counts());
}

TEST(CustomClient, AddsNoChecks) {
  // Property 1's "independent of the instrumentation": stacking the custom
  // client on top of the standard two changes no check counts.
  const workloads::Workload *W = workloads::workloadByName("pBOB");
  harness::Program P = build(W->Source);
  SiteAccessInstrumentation Sites;
  instr::CallEdgeInstrumentation CallEdges;
  instr::FieldAccessInstrumentation FieldAccesses;

  harness::RunConfig Two, Three;
  Two.Transform.M = Three.Transform.M = sampling::Mode::FullDuplication;
  Two.Engine.SampleInterval = Three.Engine.SampleInterval = 0;
  Two.Clients = {&CallEdges, &FieldAccesses};
  Three.Clients = {&CallEdges, &FieldAccesses, &Sites};
  auto R2 = harness::runExperiment(P, W->SmokeScale, Two);
  auto R3 = harness::runExperiment(P, W->SmokeScale, Three);
  ASSERT_TRUE(R2.Stats.Ok && R3.Stats.Ok);
  EXPECT_EQ(R2.Stats.CheckExecs, R3.Stats.CheckExecs);
  EXPECT_EQ(R2.Stats.Cycles, R3.Stats.Cycles)
      << "framework overhead does not grow with more clients when no "
         "samples are taken";
}

TEST(CustomClient, SemanticsPreservedEverywhere) {
  const workloads::Workload *W = workloads::workloadByName("compress");
  harness::Program P = build(W->Source);
  SiteAccessInstrumentation Sites;
  auto Base = harness::runBaseline(P, W->SmokeScale);
  for (sampling::Mode M :
       {sampling::Mode::Exhaustive, sampling::Mode::FullDuplication,
        sampling::Mode::PartialDuplication, sampling::Mode::NoDuplication,
        sampling::Mode::Combined}) {
    harness::RunConfig C;
    C.Transform.M = M;
    C.Engine.SampleInterval = 41;
    C.Clients = {&Sites};
    auto R = harness::runExperiment(P, W->SmokeScale, C);
    ASSERT_TRUE(R.Stats.Ok) << sampling::modeName(M);
    EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult)
        << sampling::modeName(M);
  }
}

} // namespace
