//===- tests/test_random.cpp - Property-based pipeline tests --*- C++ -*-===//
///
/// Property-based testing over randomly generated MiniJ programs: every
/// generated program must compile and verify; every sampling transform
/// must preserve its result exactly at several intervals; the structural
/// Property-1 invariants must hold; and profiles collected at interval 1
/// must equal the exhaustive profiles.
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "ir/IRVerifier.h"
#include "profile/Overlap.h"
#include "sampling/Property1.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;
using ars::testutil::RandomProgramGenerator;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;
instr::BlockCountInstrumentation BlockCounts(4, /*Stride=*/2);

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, CompilesVerifiesAndRuns) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::BuildResult R = harness::buildProgram(Source);
  ASSERT_TRUE(R.Ok) << R.Error << "\nsource:\n" << Source;
  for (const ir::IRFunction &F : R.P.Funcs)
    EXPECT_TRUE(ir::verifyFunction(F).empty());
  auto Run = harness::runBaseline(R.P, 10);
  ASSERT_TRUE(Run.Stats.Ok) << Run.Stats.Error << "\nsource:\n" << Source;
  EXPECT_GT(Run.Stats.Cycles, 0u);
}

TEST_P(RandomProgramTest, AllTransformsPreserveSemantics) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());
  auto Base = harness::runBaseline(P, 12);
  ASSERT_TRUE(Base.Stats.Ok) << Base.Stats.Error;

  struct Case {
    sampling::Mode M;
    int64_t Interval;
    bool YieldOpt;
    int Burst;
  };
  const Case Cases[] = {
      {sampling::Mode::Exhaustive, 0, false, 0},
      {sampling::Mode::FullDuplication, 1, false, 0},
      {sampling::Mode::FullDuplication, 7, false, 0},
      {sampling::Mode::FullDuplication, 7, true, 0},
      {sampling::Mode::FullDuplication, 13, false, 4},
      {sampling::Mode::PartialDuplication, 7, false, 0},
      {sampling::Mode::NoDuplication, 7, false, 0},
  };
  for (const Case &C : Cases) {
    harness::RunConfig RC;
    RC.Transform.M = C.M;
    RC.Transform.YieldpointOpt = C.YieldOpt;
    RC.Transform.BurstLength = C.Burst;
    RC.Engine.SampleInterval = C.Interval;
    RC.Clients = {&CallEdges, &FieldAccesses, &BlockCounts};
    auto R = harness::runExperiment(P, 12, RC);
    ASSERT_TRUE(R.Stats.Ok)
        << sampling::modeName(C.M) << ": " << R.Stats.Error << "\nsource:\n"
        << Source;
    EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult)
        << sampling::modeName(C.M) << " interval " << C.Interval
        << " yopt " << C.YieldOpt << " burst " << C.Burst << "\nsource:\n"
        << Source;
  }
}

TEST_P(RandomProgramTest, StructuralInvariantsAcrossModes) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());
  for (sampling::Mode M :
       {sampling::Mode::FullDuplication, sampling::Mode::PartialDuplication,
        sampling::Mode::NoDuplication, sampling::Mode::Exhaustive}) {
    sampling::Options Opts;
    Opts.M = M;
    harness::InstrumentedProgram IP = harness::instrumentProgram(
        P, {&CallEdges, &FieldAccesses, &BlockCounts}, Opts);
    for (size_t F = 0; F != IP.Funcs.size(); ++F) {
      EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty())
          << sampling::modeName(M);
      std::string Bad = sampling::checkProperty1Static(
          IP.Funcs[F], IP.Transforms[F], Opts);
      EXPECT_TRUE(Bad.empty()) << sampling::modeName(M) << ": " << Bad;
    }
  }
}

TEST_P(RandomProgramTest, IntervalOneMatchesExhaustiveProfiles) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());

  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&CallEdges, &FieldAccesses, &BlockCounts};
  auto PR = harness::runExperiment(P, 12, Perfect);
  ASSERT_TRUE(PR.Stats.Ok);

  harness::RunConfig Sampled = Perfect;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  Sampled.Engine.SampleInterval = 1;
  auto SR = harness::runExperiment(P, 12, Sampled);
  ASSERT_TRUE(SR.Stats.Ok);

  EXPECT_EQ(PR.Profiles.CallEdges.counts(), SR.Profiles.CallEdges.counts())
      << Source;
  EXPECT_EQ(PR.Profiles.FieldAccesses.counts(),
            SR.Profiles.FieldAccesses.counts());
  EXPECT_EQ(PR.Profiles.BlockCounts.counts(),
            SR.Profiles.BlockCounts.counts());
}

TEST_P(RandomProgramTest, DynamicProperty1Holds) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());
  auto Base = harness::runBaseline(P, 12);
  ASSERT_TRUE(Base.Stats.Ok);

  harness::RunConfig Full;
  Full.Transform.M = sampling::Mode::FullDuplication;
  Full.Engine.SampleInterval = 17;
  Full.Clients = {&CallEdges, &FieldAccesses, &BlockCounts};
  auto RF = harness::runExperiment(P, 12, Full);
  ASSERT_TRUE(RF.Stats.Ok);
  EXPECT_EQ(RF.Stats.CheckExecs, Base.Stats.YieldpointExecs) << Source;

  harness::RunConfig Part = Full;
  Part.Transform.M = sampling::Mode::PartialDuplication;
  auto RP = harness::runExperiment(P, 12, Part);
  ASSERT_TRUE(RP.Stats.Ok);
  EXPECT_LE(RP.Stats.CheckExecs, RF.Stats.CheckExecs) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(uint64_t(1), uint64_t(41)));

} // namespace
