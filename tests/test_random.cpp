//===- tests/test_random.cpp - Property-based pipeline tests --*- C++ -*-===//
///
/// Property-based testing over randomly generated MiniJ programs: every
/// generated program must compile and verify; every sampling transform
/// must preserve its result exactly at several intervals; the structural
/// Property-1 invariants must hold; and profiles collected at interval 1
/// must equal the exhaustive profiles.
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "ir/IRVerifier.h"
#include "profile/Overlap.h"
#include "sampling/Property1.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;
using ars::testutil::RandomProgramGenerator;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;
instr::BlockCountInstrumentation BlockCounts(4, /*Stride=*/2);

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, CompilesVerifiesAndRuns) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::BuildResult R = harness::buildProgram(Source);
  ASSERT_TRUE(R.Ok) << R.Error << "\nsource:\n" << Source;
  for (const ir::IRFunction &F : R.P.Funcs)
    EXPECT_TRUE(ir::verifyFunction(F).empty());
  auto Run = harness::runBaseline(R.P, 10);
  ASSERT_TRUE(Run.Stats.Ok) << Run.Stats.Error << "\nsource:\n" << Source;
  EXPECT_GT(Run.Stats.Cycles, 0u);
}

TEST_P(RandomProgramTest, AllTransformsPreserveSemantics) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());
  auto Base = harness::runBaseline(P, 12);
  ASSERT_TRUE(Base.Stats.Ok) << Base.Stats.Error;

  struct Case {
    sampling::Mode M;
    int64_t Interval;
    bool YieldOpt;
    int Burst;
  };
  const Case Cases[] = {
      {sampling::Mode::Exhaustive, 0, false, 0},
      {sampling::Mode::FullDuplication, 1, false, 0},
      {sampling::Mode::FullDuplication, 7, false, 0},
      {sampling::Mode::FullDuplication, 7, true, 0},
      {sampling::Mode::FullDuplication, 13, false, 4},
      {sampling::Mode::PartialDuplication, 7, false, 0},
      {sampling::Mode::NoDuplication, 7, false, 0},
  };
  for (const Case &C : Cases) {
    harness::RunConfig RC;
    RC.Transform.M = C.M;
    RC.Transform.YieldpointOpt = C.YieldOpt;
    RC.Transform.BurstLength = C.Burst;
    RC.Engine.SampleInterval = C.Interval;
    RC.Clients = {&CallEdges, &FieldAccesses, &BlockCounts};
    auto R = harness::runExperiment(P, 12, RC);
    ASSERT_TRUE(R.Stats.Ok)
        << sampling::modeName(C.M) << ": " << R.Stats.Error << "\nsource:\n"
        << Source;
    EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult)
        << sampling::modeName(C.M) << " interval " << C.Interval
        << " yopt " << C.YieldOpt << " burst " << C.Burst << "\nsource:\n"
        << Source;
  }
}

TEST_P(RandomProgramTest, StructuralInvariantsAcrossModes) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());
  for (sampling::Mode M :
       {sampling::Mode::FullDuplication, sampling::Mode::PartialDuplication,
        sampling::Mode::NoDuplication, sampling::Mode::Exhaustive}) {
    sampling::Options Opts;
    Opts.M = M;
    harness::InstrumentedProgram IP = harness::instrumentProgram(
        P, {&CallEdges, &FieldAccesses, &BlockCounts}, Opts);
    for (size_t F = 0; F != IP.Funcs.size(); ++F) {
      EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty())
          << sampling::modeName(M);
      std::string Bad = sampling::checkProperty1Static(
          IP.Funcs[F], IP.Transforms[F], Opts);
      EXPECT_TRUE(Bad.empty()) << sampling::modeName(M) << ": " << Bad;
    }
  }
}

TEST_P(RandomProgramTest, IntervalOneMatchesExhaustiveProfiles) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());

  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&CallEdges, &FieldAccesses, &BlockCounts};
  auto PR = harness::runExperiment(P, 12, Perfect);
  ASSERT_TRUE(PR.Stats.Ok);

  harness::RunConfig Sampled = Perfect;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  Sampled.Engine.SampleInterval = 1;
  auto SR = harness::runExperiment(P, 12, Sampled);
  ASSERT_TRUE(SR.Stats.Ok);

  EXPECT_EQ(PR.Profiles.CallEdges.counts(), SR.Profiles.CallEdges.counts())
      << Source;
  EXPECT_EQ(PR.Profiles.FieldAccesses.counts(),
            SR.Profiles.FieldAccesses.counts());
  EXPECT_EQ(PR.Profiles.BlockCounts.counts(),
            SR.Profiles.BlockCounts.counts());

  // With the check optimizer on, a weighted guard at interval 1 must
  // still fire every time and replay the exact event multiplicities.
  harness::RunConfig Coalesced = Perfect;
  Coalesced.Transform.M = sampling::Mode::NoDuplication;
  Coalesced.Transform.CoalesceChecks = true;
  Coalesced.Transform.HoistLoopProbes = true;
  Coalesced.Engine.SampleInterval = 1;
  auto CR = harness::runExperiment(P, 12, Coalesced);
  ASSERT_TRUE(CR.Stats.Ok);
  EXPECT_EQ(PR.Profiles.CallEdges.counts(), CR.Profiles.CallEdges.counts())
      << Source;
  EXPECT_EQ(PR.Profiles.FieldAccesses.counts(),
            CR.Profiles.FieldAccesses.counts())
      << Source;
  EXPECT_EQ(PR.Profiles.BlockCounts.counts(),
            CR.Profiles.BlockCounts.counts())
      << Source;
}

TEST_P(RandomProgramTest, DynamicProperty1Holds) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());
  auto Base = harness::runBaseline(P, 12);
  ASSERT_TRUE(Base.Stats.Ok);

  harness::RunConfig Full;
  Full.Transform.M = sampling::Mode::FullDuplication;
  Full.Engine.SampleInterval = 17;
  Full.Clients = {&CallEdges, &FieldAccesses, &BlockCounts};
  auto RF = harness::runExperiment(P, 12, Full);
  ASSERT_TRUE(RF.Stats.Ok);
  EXPECT_EQ(RF.Stats.CheckExecs, Base.Stats.YieldpointExecs) << Source;

  harness::RunConfig Part = Full;
  Part.Transform.M = sampling::Mode::PartialDuplication;
  auto RP = harness::runExperiment(P, 12, Part);
  ASSERT_TRUE(RP.Stats.Ok);
  EXPECT_LE(RP.Stats.CheckExecs, RF.Stats.CheckExecs) << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(uint64_t(1), uint64_t(41)));

/// A wider, cheaper property sweep than RandomProgramTest: 200 fresh
/// seeds, checking exactly Property 1 on every generated program --
/// statically (checker over the transformed IR, which must also be
/// reducible: the framework's placement argument assumes natural loops)
/// and dynamically (checks executed bounded by the baseline's method
/// entries + backedges, i.e. its yieldpoint executions) across the
/// Full-Duplication, Partial-Duplication and Combined variants.  The
/// dynamic runs go through runMatrix, so this also soaks the parallel
/// harness on 200 distinct programs.
class Property1RandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Property1RandomTest, StaticAndDynamicProperty1) {
  RandomProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  harness::Program P = build(Source.c_str());
  const std::vector<const instr::Instrumentation *> Clients = {
      &CallEdges, &FieldAccesses};
  const sampling::Mode Modes[] = {sampling::Mode::FullDuplication,
                                  sampling::Mode::PartialDuplication,
                                  sampling::Mode::Combined};

  // Static half: transformed IR verifies, stays reducible, and passes
  // the Property-1 placement checker in every mode — with the check
  // optimizer both off and on (coalescing/hoisting must never disturb
  // the placement invariants, in any mode).
  for (bool Optimize : {false, true}) {
    for (sampling::Mode M : Modes) {
      sampling::Options Opts;
      Opts.M = M;
      Opts.CoalesceChecks = Optimize;
      Opts.HoistLoopProbes = Optimize;
      harness::InstrumentedProgram IP =
          harness::instrumentProgram(P, Clients, Opts);
      for (size_t F = 0; F != IP.Funcs.size(); ++F) {
        EXPECT_TRUE(IP.Transforms[F].Stats.Reducible)
            << sampling::modeName(M) << "\nsource:\n" << Source;
        EXPECT_TRUE(ir::verifyFunction(IP.Funcs[F]).empty())
            << sampling::modeName(M) << " coalesce=" << Optimize;
        std::string Bad = sampling::checkProperty1Static(
            IP.Funcs[F], IP.Transforms[F], Opts);
        EXPECT_TRUE(Bad.empty())
            << sampling::modeName(M) << " coalesce=" << Optimize << ": "
            << Bad << "\nsource:\n" << Source;
      }
    }
  }

  // Dynamic half, one matrix: baseline plus the three variants.
  harness::RunMatrix M;
  harness::MatrixCell Base;
  Base.Prog = &P;
  Base.ScaleArg = 9;
  Base.Config.Transform.M = sampling::Mode::Baseline;
  M.Cells.push_back(Base);
  for (sampling::Mode Mode : Modes) {
    harness::MatrixCell C = Base;
    C.Config.Transform.M = Mode;
    C.Config.Engine.SampleInterval = 23;
    C.Config.Clients = Clients;
    M.Cells.push_back(C);
  }
  // A No-Duplication pair, check optimizer off/on: coalescing must only
  // ever reduce the number of executed checks (Property 1 is monotone
  // under the optimization).
  size_t PlainNoDup = M.Cells.size();
  {
    harness::MatrixCell C = Base;
    C.Config.Transform.M = sampling::Mode::NoDuplication;
    C.Config.Engine.SampleInterval = 23;
    C.Config.Clients = Clients;
    M.Cells.push_back(C);
    C.Config.Transform.CoalesceChecks = true;
    C.Config.Transform.HoistLoopProbes = true;
    M.Cells.push_back(C);
  }
  auto Results = harness::runMatrix(M, 2);
  ASSERT_TRUE(Results[0].Stats.Ok) << Results[0].Stats.Error;
  uint64_t Bound = Results[0].Stats.YieldpointExecs; // entries + backedges

  ASSERT_TRUE(Results[PlainNoDup].Stats.Ok)
      << Results[PlainNoDup].Stats.Error;
  ASSERT_TRUE(Results[PlainNoDup + 1].Stats.Ok)
      << Results[PlainNoDup + 1].Stats.Error;
  EXPECT_LE(Results[PlainNoDup + 1].checksExecuted(),
            Results[PlainNoDup].checksExecuted())
      << "source:\n" << Source;

  for (size_t I = 1; I != PlainNoDup; ++I) {
    sampling::Mode Mode = M.Cells[I].Config.Transform.M;
    ASSERT_TRUE(Results[I].Stats.Ok)
        << sampling::modeName(Mode) << ": " << Results[I].Stats.Error;
    if (Mode == sampling::Mode::Combined) {
      // Combined guards its low-frequency probes individually (the paper
      // allows "executing some additional checks" there), so only the
      // framework checks are bounded by entries + backedges.
      EXPECT_LE(Results[I].Stats.CheckExecs, Bound)
          << sampling::modeName(Mode) << "\nsource:\n" << Source;
    } else {
      EXPECT_LE(Results[I].checksExecuted(), Bound)
          << sampling::modeName(Mode) << "\nsource:\n" << Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Property1RandomTest,
                         ::testing::Range(uint64_t(1000), uint64_t(1200)));

} // namespace
