//===- tests/test_profserve.cpp - profserve/ unit tests -------*- C++ -*-===//
///
/// The collection service's three contracts:
///
///   * Wire: a frame round-trips through any Transport; EVERY byte flip,
///     every truncation point and an oversized declared length are
///     rejected with a diagnostic before any payload allocation — never
///     UB, never a crash.
///   * Determinism: for 1, 4 and 16 concurrent pushers the server's
///     merged bundle is byte-identical (serializeBundle) to a serial
///     mergeBundle fold of the same shards.
///   * Robustness: corrupt frames close a (desynced) connection, corrupt
///     shards inside valid frames keep it open; wrong fingerprints and
///     wire versions are refused at HELLO; slow/vanishing clients time
///     out; the server survives all of it and subsequent valid pushes
///     succeed.
///
/// All suites are named ProfServe* so scripts/check.sh --tsan can run
/// the whole file under ThreadSanitizer, and they drive the in-memory
/// loopback transport so no test touches the network stack (TCP gets one
/// smoke suite that skips where sockets are unavailable).
///
//===----------------------------------------------------------------------===//

#include "profserve/Client.h"
#include "profserve/Protocol.h"
#include "profserve/Server.h"
#include "profserve/Transport.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "support/Binary.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using namespace ars;
using namespace ars::profserve;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

constexpr uint64_t TestFingerprint = 0xabcdef0123456789ULL;

/// A small bundle whose counts depend on \p Seed, so shards are distinct
/// and their merged sum is sensitive to lost or doubled shards.
profile::ProfileBundle shardBundle(int Seed) {
  profile::ProfileBundle B;
  profile::CallEdgeKey K;
  K.Caller = Seed % 5;
  K.Site = Seed % 3;
  K.Callee = (Seed + 1) % 7;
  B.CallEdges.record(K, static_cast<uint64_t>(Seed) * 37 + 1);
  B.FieldAccesses.record(Seed % 4, static_cast<uint64_t>(Seed) + 2);
  B.BlockCounts.record(1, Seed % 6, static_cast<uint64_t>(Seed) * 11 + 3);
  B.Values.record(9, Seed % 8, static_cast<uint64_t>(Seed) + 5);
  B.Edges.record(0, Seed % 2, (Seed + 1) % 2, static_cast<uint64_t>(Seed) + 7);
  B.Paths.record(2, Seed * 1000003LL, static_cast<uint64_t>(Seed) + 9);
  return B;
}

std::string encodedShard(int Seed) {
  return profstore::encodeBundle(shardBundle(Seed), TestFingerprint);
}

/// The serial reference fold the concurrent server must match.
std::string serialFold(int Shards) {
  profile::ProfileBundle Acc;
  for (int I = 0; I != Shards; ++I)
    profstore::mergeBundle(Acc, shardBundle(I));
  return profile::serializeBundle(Acc);
}

ServerConfig quietConfig() {
  ServerConfig C;
  C.Workers = 4;
  C.RecvTimeoutMs = 2000;
  return C;
}

/// A server over a LoopbackListener; keeps a raw handle to the listener
/// for dialing (the server owns it).
struct LoopbackServer {
  LoopbackListener *L;
  ProfileServer Server;

  explicit LoopbackServer(ServerConfig C = quietConfig())
      : L(new LoopbackListener()),
        Server(std::unique_ptr<Listener>(L), C) {
    Server.start();
  }

  ProfileClient client(ClientConfig C = ClientConfig()) {
    return ProfileClient(loopbackDialer(*L), C);
  }
};

/// Performs a valid HELLO on a raw transport so tests can then speak
/// hand-crafted (possibly corrupt) frames.
void rawHello(Transport &T) {
  HelloMsg H;
  H.Fingerprint = TestFingerprint;
  H.ClientName = "raw";
  ASSERT_TRUE(writeFrame(T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::HelloAck);
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(ProfServeFraming, RoundTripAllTypes) {
  auto Pair = makeLoopbackPair();
  for (uint8_t Raw = 1; knownMsgType(Raw); ++Raw) {
    std::string Payload(Raw * 13, static_cast<char>('a' + Raw));
    ASSERT_TRUE(writeFrame(*Pair.first, static_cast<MsgType>(Raw), Payload)
                    .ok());
    FrameResult FR = readFrame(*Pair.second, 1000);
    ASSERT_TRUE(FR.ok()) << FR.Error;
    EXPECT_EQ(FR.F.Type, static_cast<MsgType>(Raw));
    EXPECT_EQ(FR.F.Payload, Payload);
  }
}

TEST(ProfServeFraming, EmptyPayload) {
  auto Pair = makeLoopbackPair();
  ASSERT_TRUE(writeFrame(*Pair.first, MsgType::Pull, std::string()).ok());
  FrameResult FR = readFrame(*Pair.second, 1000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  EXPECT_EQ(FR.F.Type, MsgType::Pull);
  EXPECT_TRUE(FR.F.Payload.empty());
}

TEST(ProfServeFraming, CleanEofBetweenFrames) {
  auto Pair = makeLoopbackPair();
  Pair.first->close();
  FrameResult FR = readFrame(*Pair.second, 1000);
  EXPECT_EQ(FR.Status, FrameStatus::Eof);
}

/// Flip every single byte of a valid frame: the CRC (which covers the
/// header too) must catch each one.  Flips inside the length field may
/// instead surface as Oversized or a read timeout (the reader waits for
/// bytes that never come) — any non-Ok, non-Eof outcome is a pass; what
/// is banned is silently accepting a corrupt frame.
TEST(ProfServeFraming, EveryByteFlipRejected) {
  const std::string Wire = encodeFrame(MsgType::Push, encodedShard(3));
  for (size_t I = 0; I != Wire.size(); ++I) {
    std::string Bad = Wire;
    Bad[I] = static_cast<char>(Bad[I] ^ 0xFF);
    auto Pair = makeLoopbackPair();
    ASSERT_TRUE(Pair.first->writeAll(Bad.data(), Bad.size()).ok());
    Pair.first->close(); // no more bytes: truncation surfaces as Malformed
    FrameResult FR = readFrame(*Pair.second, 200);
    EXPECT_FALSE(FR.ok()) << "flipped byte " << I << " was accepted";
    EXPECT_NE(FR.Status, FrameStatus::Eof) << "flipped byte " << I;
    EXPECT_FALSE(FR.Error.empty()) << "no diagnostic for byte " << I;
  }
}

/// Truncate a valid frame at every possible length: 0 bytes is a clean
/// EOF; anything else died mid-frame and must be Malformed.
TEST(ProfServeFraming, EveryTruncationRejected) {
  const std::string Wire = encodeFrame(MsgType::Push, encodedShard(5));
  for (size_t Len = 0; Len != Wire.size(); ++Len) {
    auto Pair = makeLoopbackPair();
    if (Len) {
      ASSERT_TRUE(Pair.first->writeAll(Wire.data(), Len).ok());
    }
    Pair.first->close();
    FrameResult FR = readFrame(*Pair.second, 1000);
    if (Len == 0) {
      EXPECT_EQ(FR.Status, FrameStatus::Eof);
    } else {
      EXPECT_EQ(FR.Status, FrameStatus::Malformed)
          << "truncation at " << Len << ": " << FR.Error;
      EXPECT_FALSE(FR.Error.empty());
    }
  }
}

/// A hostile length prefix is refused from the 5 header bytes alone —
/// before the payload would be allocated — even though the stream ends
/// right after the header.
TEST(ProfServeFraming, OversizedLengthRejectedBeforeAllocation) {
  std::string Header;
  uint32_t Huge = 0xFFFFFFF0u;
  for (int I = 0; I != 4; ++I)
    Header.push_back(static_cast<char>((Huge >> (8 * I)) & 0xFF));
  Header.push_back(static_cast<char>(MsgType::Push));
  auto Pair = makeLoopbackPair();
  ASSERT_TRUE(Pair.first->writeAll(Header.data(), Header.size()).ok());
  Pair.first->close();
  FrameResult FR = readFrame(*Pair.second, 1000, /*MaxPayload=*/1 << 20);
  EXPECT_EQ(FR.Status, FrameStatus::Oversized);
  EXPECT_NE(FR.Error.find("cap"), std::string::npos) << FR.Error;
}

TEST(ProfServeFraming, PayloadAtCapAccepted) {
  const size_t Cap = 4096;
  std::string Payload(Cap, 'x');
  auto Pair = makeLoopbackPair();
  ASSERT_TRUE(writeFrame(*Pair.first, MsgType::Push, Payload).ok());
  FrameResult FR = readFrame(*Pair.second, 1000, Cap);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  EXPECT_EQ(FR.F.Payload.size(), Cap);

  ASSERT_TRUE(
      writeFrame(*Pair.first, MsgType::Push, Payload + "y").ok());
  FrameResult Over = readFrame(*Pair.second, 1000, Cap);
  EXPECT_EQ(Over.Status, FrameStatus::Oversized);
}

TEST(ProfServeFraming, UnknownTypeRejected) {
  std::string Wire = encodeFrame(MsgType::Push, "abc");
  // Patch the type byte and re-point the CRC at the patched image so only
  // the type is wrong.
  Wire[4] = 99;
  std::string Patched = Wire.substr(0, Wire.size() - 4);
  uint32_t Crc = support::crc32(Patched.data(), Patched.size());
  for (int I = 0; I != 4; ++I)
    Wire[Wire.size() - 4 + I] =
        static_cast<char>((Crc >> (8 * I)) & 0xFF);
  auto Pair = makeLoopbackPair();
  ASSERT_TRUE(Pair.first->writeAll(Wire.data(), Wire.size()).ok());
  FrameResult FR = readFrame(*Pair.second, 1000);
  EXPECT_EQ(FR.Status, FrameStatus::Malformed);
  EXPECT_NE(FR.Error.find("type"), std::string::npos) << FR.Error;
}

TEST(ProfServeFraming, SlowSenderTimesOut) {
  auto Pair = makeLoopbackPair();
  const std::string Wire = encodeFrame(MsgType::Pull, std::string());
  // Send only half the frame and then stall (no close): the reader's
  // deadline must fire rather than hang.
  ASSERT_TRUE(Pair.first->writeAll(Wire.data(), 2).ok());
  FrameResult FR = readFrame(*Pair.second, 100);
  EXPECT_EQ(FR.Status, FrameStatus::Timeout);
}

//===----------------------------------------------------------------------===//
// Message payload codecs
//===----------------------------------------------------------------------===//

TEST(ProfServeCodec, HelloRoundTripAndGarbage) {
  HelloMsg H;
  H.Version = WireVersion;
  H.Fingerprint = TestFingerprint;
  H.ClientName = "unit-test";
  H.SessionId = 0xfeedf00d;
  std::string Bytes = encodeHello(H);
  HelloMsg Out;
  ASSERT_TRUE(decodeHello(Bytes, &Out));
  EXPECT_EQ(Out.Version, H.Version);
  EXPECT_EQ(Out.Fingerprint, H.Fingerprint);
  EXPECT_EQ(Out.ClientName, H.ClientName);
  EXPECT_EQ(Out.SessionId, H.SessionId);

  EXPECT_FALSE(decodeHello(Bytes + "x", &Out)); // trailing garbage
  EXPECT_FALSE(decodeHello(Bytes.substr(0, Bytes.size() - 1), &Out));
  EXPECT_FALSE(decodeHello(std::string(), &Out));
}

TEST(ProfServeCodec, StatsRoundTrip) {
  StatsMsg S;
  S.Frames = 1;
  S.Bytes = 1u << 30;
  S.Merges = 3;
  S.Rejects = 4;
  S.ActiveConnections = 5;
  S.Epochs = 6;
  S.Snapshots = 7;
  S.Pulls = UINT64_MAX;
  S.Shed = 8;
  S.Duplicates = 9;
  S.Recovered = 10;
  StatsMsg Out;
  ASSERT_TRUE(decodeStats(encodeStats(S), &Out));
  EXPECT_EQ(Out.Bytes, S.Bytes);
  EXPECT_EQ(Out.Pulls, UINT64_MAX);
  EXPECT_EQ(Out.Shed, 8u);
  EXPECT_EQ(Out.Duplicates, 9u);
  EXPECT_EQ(Out.Recovered, 10u);
  EXPECT_FALSE(decodeStats("", &Out));
}

TEST(ProfServeCodec, TextCapped) {
  std::string Out;
  ASSERT_TRUE(decodeText(encodeText("diag"), &Out));
  EXPECT_EQ(Out, "diag");
  // The encoder truncates an over-long diagnostic to the 64 KiB cap...
  std::string Long(70000, 'd');
  ASSERT_TRUE(decodeText(encodeText(Long), &Out));
  EXPECT_EQ(Out.size(), 65536u);
  // ...and the decoder refuses a hand-crafted over-cap length outright.
  std::string Raw;
  support::appendVarint(Raw, 65537);
  Raw.append(65537, 'd');
  EXPECT_FALSE(decodeText(Raw, &Out));
}

TEST(ProfServeCodec, ErrorRoundTripAndBadCode) {
  for (ErrCode Code :
       {ErrCode::Generic, ErrCode::RetryAfter, ErrCode::BadFrame,
        ErrCode::BadShard, ErrCode::BadHandshake}) {
    ErrorMsg Out;
    ASSERT_TRUE(decodeError(encodeError(Code, "why"), &Out));
    EXPECT_EQ(Out.Code, Code);
    EXPECT_EQ(Out.Text, "why");
  }
  // An unknown code byte is a malformed payload, not a silent Generic.
  std::string Raw;
  support::appendVarint(Raw, 200);
  support::appendVarint(Raw, 2);
  Raw += "xx";
  ErrorMsg Out;
  EXPECT_FALSE(decodeError(Raw, &Out));
  EXPECT_FALSE(decodeError(std::string(), &Out));
}

TEST(ProfServeCodec, PushRoundTripSeqAndBytes) {
  const std::string Arsp = encodedShard(7);
  std::string Payload = encodePush(42, Arsp);
  uint64_t Seq = 0;
  std::string Bytes;
  ASSERT_TRUE(decodePush(Payload, &Seq, &Bytes));
  EXPECT_EQ(Seq, 42u);
  EXPECT_EQ(Bytes, Arsp);
  ASSERT_TRUE(decodePush(encodePush(0, std::string()), &Seq, &Bytes));
  EXPECT_EQ(Seq, 0u);
  EXPECT_TRUE(Bytes.empty());
  EXPECT_FALSE(decodePush(std::string(), &Seq, &Bytes));
}

//===----------------------------------------------------------------------===//
// Transport semantics (loopback)
//===----------------------------------------------------------------------===//

TEST(ProfServeTransport, CloseUnblocksReader) {
  auto Pair = makeLoopbackPair();
  std::atomic<bool> Returned{false};
  std::thread Reader([&] {
    char Buf[16];
    size_t N = 0;
    IoResult R = Pair.second->readSome(Buf, sizeof(Buf), /*forever*/ 0, &N);
    EXPECT_NE(R.Status, IoStatus::Ok);
    Returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Returned.load());
  Pair.second->close(); // local close must wake the blocked read
  Reader.join();
  EXPECT_TRUE(Returned.load());
}

TEST(ProfServeTransport, BufferedBytesSurviveClose) {
  // TCP-like: a peer that writes then closes still delivers the bytes.
  auto Pair = makeLoopbackPair();
  ASSERT_TRUE(Pair.first->writeAll("hi", 2).ok());
  Pair.first->close();
  char Buf[8];
  size_t N = 0;
  ASSERT_TRUE(Pair.second->readAll(Buf, 2, 1000, &N).ok());
  EXPECT_EQ(N, 2u);
  EXPECT_EQ(Buf[0], 'h');
  IoResult R = Pair.second->readSome(Buf, sizeof(Buf), 1000, &N);
  EXPECT_EQ(R.Status, IoStatus::Eof);
}

TEST(ProfServeTransport, ReadAllReportsPartialProgress) {
  auto Pair = makeLoopbackPair();
  ASSERT_TRUE(Pair.first->writeAll("abc", 3).ok());
  Pair.first->close();
  char Buf[8];
  size_t N = 0;
  IoResult R = Pair.second->readAll(Buf, 8, 1000, &N);
  EXPECT_EQ(R.Status, IoStatus::Eof);
  EXPECT_EQ(N, 3u); // framing uses this to say "truncated: 3 of 8"
}

//===----------------------------------------------------------------------===//
// Server: push/pull determinism
//===----------------------------------------------------------------------===//

/// The acceptance gate: N concurrent pushers over loopback, and the
/// server's merged bundle must equal the serial fold byte for byte.
void runConcurrentPushers(int Pushers, int ShardsTotal) {
  LoopbackServer S;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int P = 0; P != Pushers; ++P)
    Threads.emplace_back([&, P] {
      ProfileClient C = S.client();
      // Shards are dealt round-robin so every pusher does real work.
      for (int I = P; I < ShardsTotal; I += Pushers) {
        ClientResult R = C.pushEncoded(encodedShard(I));
        if (!R.Ok) {
          std::fprintf(stderr, "push %d failed: %s\n", I, R.Error.c_str());
          ++Failures;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  ASSERT_EQ(Failures.load(), 0);
  EXPECT_EQ(S.Server.stats().Merges, static_cast<uint64_t>(ShardsTotal));
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()),
            serialFold(ShardsTotal));
  EXPECT_EQ(S.Server.fingerprint(), TestFingerprint);
  S.Server.stop();
}

TEST(ProfServePushPull, OnePusherMatchesSerialFold) {
  runConcurrentPushers(1, 8);
}

TEST(ProfServePushPull, FourPushersMatchSerialFold) {
  runConcurrentPushers(4, 32);
}

TEST(ProfServePushPull, SixteenPushersMatchSerialFold) {
  runConcurrentPushers(16, 64);
}

TEST(ProfServePushPull, PullReturnsMergedBundle) {
  LoopbackServer S;
  ProfileClient C = S.client();
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(C.pushEncoded(encodedShard(I)).Ok);
  ProfileClient::PullResult R = C.pull();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Fingerprint, TestFingerprint);
  EXPECT_EQ(profile::serializeBundle(R.Bundle), serialFold(5));
  // The raw bytes are a well-formed .arsp: decodable standalone.
  EXPECT_TRUE(profstore::decodeBundle(R.RawBytes).Ok);
}

TEST(ProfServePushPull, PullFromEmptyServerIsEmptyBundle) {
  LoopbackServer S;
  ProfileClient C = S.client();
  ProfileClient::PullResult R = C.pull();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(profile::serializeBundle(R.Bundle),
            profile::serializeBundle(profile::ProfileBundle()));
}

TEST(ProfServePushPull, StatsCountersTrack) {
  LoopbackServer S;
  ProfileClient C = S.client();
  ASSERT_TRUE(C.pushEncoded(encodedShard(0)).Ok);
  ASSERT_TRUE(C.pull().Ok);
  ProfileClient::StatsResult R = C.stats();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.Merges, 1u);
  EXPECT_EQ(R.Stats.Pulls, 1u);
  EXPECT_EQ(R.Stats.Rejects, 0u);
  // HELLO + PUSH + PULL + STATS_REQ so far on this connection.
  EXPECT_GE(R.Stats.Frames, 4u);
  EXPECT_GT(R.Stats.Bytes, 0u);
  EXPECT_EQ(R.Stats.ActiveConnections, 1u);
}

//===----------------------------------------------------------------------===//
// Server: robustness
//===----------------------------------------------------------------------===//

TEST(ProfServeRobust, CorruptShardInValidFrameKeepsConnection) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);

  std::string Shard = encodedShard(1);
  Shard[Shard.size() / 2] ^= 0x5A; // break the .arsp CRC, not the frame
  ASSERT_TRUE(writeFrame(*T, MsgType::Push, encodePush(0, Shard)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::Error);
  ErrorMsg Why;
  ASSERT_TRUE(decodeError(FR.F.Payload, &Why));
  EXPECT_EQ(Why.Code, ErrCode::BadShard);
  EXPECT_NE(Why.Text.find("rejected shard"), std::string::npos)
      << Why.Text;

  // The stream was never desynced, so a valid push on the SAME
  // connection must now succeed.
  ASSERT_TRUE(
      writeFrame(*T, MsgType::Push, encodePush(0, encodedShard(1)))
          .ok());
  FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  EXPECT_EQ(FR.F.Type, MsgType::PushAck);
  EXPECT_EQ(S.Server.stats().Rejects, 1u);
  EXPECT_EQ(S.Server.stats().Merges, 1u);
}

TEST(ProfServeRobust, CorruptFrameClosesConnectionServerSurvives) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);

  std::string Wire = encodeFrame(MsgType::Push, encodedShard(2));
  Wire[Wire.size() - 1] ^= 0xFF; // break the FRAME CRC
  ASSERT_TRUE(T->writeAll(Wire.data(), Wire.size()).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  EXPECT_EQ(FR.F.Type, MsgType::Error); // diagnostic, then closed
  FR = readFrame(*T, 2000);
  EXPECT_NE(FR.Status, FrameStatus::Ok); // connection is gone

  // The server itself is fine: a fresh client works.
  ProfileClient C = S.client();
  EXPECT_TRUE(C.pushEncoded(encodedShard(2)).Ok);
  EXPECT_GE(S.Server.stats().Rejects, 1u);
}

TEST(ProfServeRobust, TruncatedFrameRejectedWithDiagnostic) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);
  std::string Wire = encodeFrame(MsgType::Push, encodedShard(4));
  ASSERT_TRUE(T->writeAll(Wire.data(), Wire.size() / 2).ok());
  T->close(); // vanish mid-frame
  // Server must reject and stay alive.
  for (int Tries = 0; Tries != 100 && S.Server.stats().Rejects == 0;
       ++Tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(S.Server.stats().Rejects, 1u);
  ProfileClient C = S.client();
  EXPECT_TRUE(C.pushEncoded(encodedShard(4)).Ok);
}

TEST(ProfServeRobust, WrongFingerprintShardRejected) {
  ServerConfig Config = quietConfig();
  Config.Fingerprint = TestFingerprint; // pinned
  LoopbackServer S(Config);
  ProfileClient C = S.client();
  ClientResult R = C.pushEncoded(
      profstore::encodeBundle(shardBundle(0), /*other module*/ 0x1111));
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("server: "), std::string::npos) << R.Error;
  EXPECT_EQ(S.Server.stats().Merges, 0u);
  // Same connection, right module: accepted.
  EXPECT_TRUE(C.pushEncoded(encodedShard(0)).Ok);
}

TEST(ProfServeRobust, WrongFingerprintHelloRefused) {
  ServerConfig Config = quietConfig();
  Config.Fingerprint = TestFingerprint;
  LoopbackServer S(Config);
  ClientConfig CC;
  CC.Fingerprint = 0x2222; // announces a different module up front
  ProfileClient C = S.client(CC);
  ClientResult R = C.connect();
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fingerprint mismatch"), std::string::npos)
      << R.Error;
  // A deliberate rejection is not retried.
  EXPECT_EQ(C.dialAttempts(), 1);
}

TEST(ProfServeRobust, VersionMismatchRefused) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  HelloMsg H;
  H.Version = WireVersion + 1;
  ASSERT_TRUE(writeFrame(*T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::Error);
  ErrorMsg Why;
  ASSERT_TRUE(decodeError(FR.F.Payload, &Why));
  EXPECT_EQ(Why.Code, ErrCode::BadHandshake);
  EXPECT_NE(Why.Text.find("version mismatch"), std::string::npos)
      << Why.Text;
}

TEST(ProfServeRobust, PushBeforeHelloRefused) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  ASSERT_TRUE(writeFrame(*T, MsgType::Push, encodedShard(0)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  EXPECT_EQ(FR.F.Type, MsgType::Error);
  EXPECT_EQ(S.Server.stats().Merges, 0u);
}

TEST(ProfServeRobust, SilentClientTimedOutNotLeaked) {
  ServerConfig Config = quietConfig();
  Config.RecvTimeoutMs = 50;
  LoopbackServer S(Config);
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);
  // Say nothing.  The server's per-frame deadline must reap us.
  for (int Tries = 0; Tries != 100; ++Tries) {
    if (S.Server.stats().ActiveConnections == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(S.Server.stats().ActiveConnections, 0u);
  EXPECT_GE(S.Server.stats().Rejects, 1u);
}

TEST(ProfServeRobust, ServerToClientTypeFromClientRefused) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);
  ASSERT_TRUE(writeFrame(*T, MsgType::PushAck, std::string()).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  EXPECT_EQ(FR.F.Type, MsgType::Error);
}

//===----------------------------------------------------------------------===//
// Server: overload shedding
//===----------------------------------------------------------------------===//

/// One reactor thread, a live-connection budget of two: the third
/// connection must be shed with a machine-readable ERROR(RETRY_AFTER) —
/// and once a slot frees, a fresh connection's shard still merges
/// byte-identically.  (Two connections on ONE reactor thread also proves
/// the event loop multiplexes; a blocking one-thread server would wedge.)
TEST(ProfServeOverload, ConnectionCapShedsWithRetryAfter) {
  ServerConfig Config = quietConfig();
  Config.Workers = 1;
  Config.MaxConnections = 2;
  LoopbackServer S(Config);

  // A and B fill the budget; both handshakes complete concurrently on
  // the single reactor thread.
  std::unique_ptr<Transport> A = S.L->connect();
  ASSERT_TRUE(A);
  rawHello(*A);
  std::unique_ptr<Transport> B = S.L->connect();
  ASSERT_TRUE(B);
  rawHello(*B);

  // C must be refused up front with RETRY_AFTER, before any handshake.
  std::unique_ptr<Transport> C = S.L->connect();
  ASSERT_TRUE(C);
  FrameResult FR = readFrame(*C, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::Error);
  ErrorMsg E;
  ASSERT_TRUE(decodeError(FR.F.Payload, &E));
  EXPECT_EQ(E.Code, ErrCode::RetryAfter);
  FR = readFrame(*C, 2000);
  EXPECT_NE(FR.Status, FrameStatus::Ok); // and closed

  // Free a slot and wait for the reactor to reap it; a fresh connection
  // then proceeds normally and its shard lands.
  A->close();
  for (int Tries = 0;
       Tries != 200 && S.Server.stats().ActiveConnections > 1; ++Tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_LE(S.Server.stats().ActiveConnections, 1u);
  std::unique_ptr<Transport> D = S.L->connect();
  ASSERT_TRUE(D);
  rawHello(*D);
  ASSERT_TRUE(
      writeFrame(*D, MsgType::Push, encodePush(0, encodedShard(0)))
          .ok());
  FR = readFrame(*D, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  EXPECT_EQ(FR.F.Type, MsgType::PushAck);

  EXPECT_GE(S.Server.stats().Shed, 1u);
  EXPECT_EQ(S.Server.stats().Merges, 1u);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(1));
}

//===----------------------------------------------------------------------===//
// Server: epochs and snapshots
//===----------------------------------------------------------------------===//

TEST(ProfServeEpoch, RotationDecaysOldShards) {
  ServerConfig Config = quietConfig();
  Config.EpochKeepPct = 50;
  LoopbackServer S(Config);
  ProfileClient C = S.client();
  ASSERT_TRUE(C.pushEncoded(encodedShard(1)).Ok);
  S.Server.rotateEpoch();
  ASSERT_TRUE(C.pushEncoded(encodedShard(2)).Ok);

  // Expected: shard 1 at half weight (rotated through a 50% epoch), plus
  // shard 2 untouched.
  profile::ProfileBundle Want = shardBundle(1);
  profstore::decayBundle(Want, 50);
  profstore::mergeBundle(Want, shardBundle(2));
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()),
            profile::serializeBundle(Want));
  EXPECT_EQ(S.Server.stats().Epochs, 1u);
}

TEST(ProfServeEpoch, AutoRotateEveryNMerges) {
  ServerConfig Config = quietConfig();
  Config.EpochKeepPct = 100; // rotation is a no-op on counts
  Config.RotateEveryMerges = 2;
  LoopbackServer S(Config);
  ProfileClient C = S.client();
  for (int I = 0; I != 6; ++I)
    ASSERT_TRUE(C.pushEncoded(encodedShard(I)).Ok);
  EXPECT_EQ(S.Server.stats().Epochs, 3u);
  // With 100% keep, rotation must not change the merged view.
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(6));
}

/// Snapshots rotate the old file to `.prev` and a fresh server recovers
/// from it (RecoverOnStart defaults on), so a test that reuses a path
/// must scrub all three names or a previous run's state leaks in.
void removeSnapshotFiles(const std::string &Path) {
  std::remove(Path.c_str());
  std::remove((Path + ".prev").c_str());
  std::remove((Path + ".tmp").c_str());
}

TEST(ProfServeSnapshot, OnRequestAndOnShutdown) {
  std::string Path = ::testing::TempDir() + "profserve_snap.arsp";
  removeSnapshotFiles(Path);
  ServerConfig Config = quietConfig();
  Config.SnapshotPath = Path;
  {
    LoopbackServer S(Config);
    ProfileClient C = S.client();
    ASSERT_TRUE(C.pushEncoded(encodedShard(0)).Ok);
    std::string Reported;
    ASSERT_TRUE(C.snapshot(&Reported).Ok);
    EXPECT_EQ(Reported, Path);
    profstore::DecodeResult Mid = profstore::loadBundle(Path, 0);
    ASSERT_TRUE(Mid.Ok) << Mid.Error;
    EXPECT_EQ(profile::serializeBundle(Mid.Bundle), serialFold(1));

    ASSERT_TRUE(C.pushEncoded(encodedShard(1)).Ok);
    S.Server.stop(); // must write the final state
  }
  profstore::DecodeResult Final = profstore::loadBundle(Path, 0);
  ASSERT_TRUE(Final.Ok) << Final.Error;
  EXPECT_EQ(Final.Fingerprint, TestFingerprint);
  EXPECT_EQ(profile::serializeBundle(Final.Bundle), serialFold(2));
  removeSnapshotFiles(Path);
}

TEST(ProfServeSnapshot, IntervalSnapshotsHappen) {
  std::string Path = ::testing::TempDir() + "profserve_interval.arsp";
  removeSnapshotFiles(Path);
  ServerConfig Config = quietConfig();
  Config.SnapshotPath = Path;
  Config.SnapshotIntervalMs = 20;
  LoopbackServer S(Config);
  ProfileClient C = S.client();
  ASSERT_TRUE(C.pushEncoded(encodedShard(0)).Ok);
  for (int Tries = 0; Tries != 200 && S.Server.stats().Snapshots == 0;
       ++Tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(S.Server.stats().Snapshots, 1u);
  S.Server.stop();
  EXPECT_TRUE(profstore::loadBundle(Path, 0).Ok);
  removeSnapshotFiles(Path);
}

//===----------------------------------------------------------------------===//
// Server lifecycle
//===----------------------------------------------------------------------===//

TEST(ProfServeLifecycle, StopWithLiveConnectionsDoesNotHang) {
  LoopbackServer S;
  // Three handshaken-but-idle clients occupying workers.
  std::vector<std::unique_ptr<Transport>> Idle;
  for (int I = 0; I != 3; ++I) {
    std::unique_ptr<Transport> T = S.L->connect();
    ASSERT_TRUE(T);
    rawHello(*T);
    Idle.push_back(std::move(T));
  }
  S.Server.stop(); // must close them all and return promptly
  EXPECT_EQ(S.Server.stats().ActiveConnections, 0u);
}

TEST(ProfServeLifecycle, StopIsIdempotent) {
  LoopbackServer S;
  S.Server.stop();
  S.Server.stop();
}

TEST(ProfServeLifecycle, ConnectAfterShutdownFailsCleanly) {
  LoopbackServer S;
  S.Server.stop();
  ProfileClient C = S.client();
  ClientResult R = C.connect();
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Client behavior
//===----------------------------------------------------------------------===//

TEST(ProfServeClient, RetriesDialWithBackoff) {
  int Calls = 0;
  LoopbackServer S;
  // A dialer that fails twice before working.
  Dialer Flaky = [&](std::string *Error) -> std::unique_ptr<Transport> {
    if (++Calls <= 2) {
      *Error = "synthetic dial failure";
      return nullptr;
    }
    return S.L->connect();
  };
  ClientConfig CC;
  CC.MaxRetries = 3;
  CC.BackoffMs = 1;
  ProfileClient C(Flaky, CC);
  EXPECT_TRUE(C.pushEncoded(encodedShard(0)).Ok);
  EXPECT_EQ(C.dialAttempts(), 3);
}

TEST(ProfServeClient, GivesUpAfterMaxRetries) {
  Dialer Dead = [](std::string *Error) -> std::unique_ptr<Transport> {
    *Error = "nobody home";
    return nullptr;
  };
  ClientConfig CC;
  CC.MaxRetries = 2;
  CC.BackoffMs = 1;
  ProfileClient C(Dead, CC);
  ClientResult R = C.connect();
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(C.dialAttempts(), 3); // 1 try + 2 retries
  EXPECT_NE(R.Error.find("nobody home"), std::string::npos) << R.Error;
}

/// A server ERROR(RETRY_AFTER) during the handshake is transient: the
/// client must back off and dial again, not report a failure.
TEST(ProfServeClient, RetryAfterFromServerIsRetried) {
  LoopbackListener L;
  std::thread Srv([&] {
    // First connection: shed the handshake and hang up.
    std::unique_ptr<Transport> T1 = L.accept();
    if (!T1)
      return;
    FrameResult FR = readFrame(*T1, 2000);
    EXPECT_EQ(FR.F.Type, MsgType::Hello);
    writeFrame(*T1, MsgType::Error,
               encodeError(ErrCode::RetryAfter, "shedding load"));
    T1->close();
    // Second connection: serve the handshake properly.
    std::unique_ptr<Transport> T2 = L.accept();
    if (!T2)
      return;
    FR = readFrame(*T2, 2000);
    EXPECT_EQ(FR.F.Type, MsgType::Hello);
    HelloAckMsg Ack;
    Ack.Fingerprint = TestFingerprint;
    writeFrame(*T2, MsgType::HelloAck, encodeHelloAck(Ack));
    readFrame(*T2, 2000); // drain the client's BYE
  });
  ClientConfig CC;
  CC.MaxRetries = 3;
  CC.BackoffMs = 1;
  ProfileClient C(loopbackDialer(L), CC);
  ClientResult R = C.connect();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(C.dialAttempts(), 2); // shed once, succeeded on the retry
  C.close();
  Srv.join();
  L.shutdown();
}

TEST(ProfServeClient, TimesOutOnSilentServer) {
  // A "server" that accepts and never replies.
  LoopbackListener L;
  std::unique_ptr<Transport> ServerEnd;
  std::thread Acceptor([&] { ServerEnd = L.accept(); });
  ClientConfig CC;
  CC.TimeoutMs = 50;
  CC.MaxRetries = 0;
  ProfileClient C(loopbackDialer(L), CC);
  ClientResult R = C.connect();
  Acceptor.join();
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("deadline"), std::string::npos) << R.Error;
  L.shutdown();
}

TEST(ProfServeClient, ParseHostPort) {
  std::string Host;
  uint16_t Port = 0;
  EXPECT_TRUE(parseHostPort("example.com:4817", &Host, &Port));
  EXPECT_EQ(Host, "example.com");
  EXPECT_EQ(Port, 4817);
  EXPECT_TRUE(parseHostPort(":99", &Host, &Port));
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_FALSE(parseHostPort("nohost", &Host, &Port));
  EXPECT_FALSE(parseHostPort("h:", &Host, &Port));
  EXPECT_FALSE(parseHostPort("h:0", &Host, &Port));
  EXPECT_FALSE(parseHostPort("h:99999", &Host, &Port));
  EXPECT_FALSE(parseHostPort("h:12x", &Host, &Port));
}

//===----------------------------------------------------------------------===//
// TCP smoke (skipped where the sandbox forbids sockets)
//===----------------------------------------------------------------------===//

TEST(ProfServeTcp, PushPullOverRealSockets) {
  std::string Error;
  std::unique_ptr<TcpListener> L = listenTcp(0, &Error);
  if (!L)
    GTEST_SKIP() << "TCP unavailable here: " << Error;
  uint16_t Port = L->port();
  ASSERT_NE(Port, 0);

  ServerConfig Config = quietConfig();
  ProfileServer Server(std::move(L), Config);
  Server.start();

  ProfileClient C(tcpDialer("127.0.0.1", Port, 2000), ClientConfig());
  for (int I = 0; I != 4; ++I)
    ASSERT_TRUE(C.pushEncoded(encodedShard(I)).Ok);
  ProfileClient::PullResult R = C.pull();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(profile::serializeBundle(R.Bundle), serialFold(4));
  C.close();
  Server.stop();
  EXPECT_EQ(Server.stats().Merges, 4u);
}

//===----------------------------------------------------------------------===//
// Wire v3: batched PUSH and version negotiation
//===----------------------------------------------------------------------===//

std::vector<BatchShard> sampleBatch(int Shards, uint64_t FirstSeq = 1) {
  std::vector<BatchShard> B;
  for (int I = 0; I != Shards; ++I)
    B.push_back({FirstSeq + static_cast<uint64_t>(I), encodedShard(I)});
  return B;
}

TEST(ProfServeWireV3, BatchPayloadRoundTrips) {
  std::vector<BatchShard> In = sampleBatch(5, 42);
  std::vector<BatchShard> Out;
  ASSERT_TRUE(decodePushBatch(encodePushBatch(In), &Out));
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I != In.size(); ++I) {
    EXPECT_EQ(Out[I].Seq, In[I].Seq);
    EXPECT_EQ(Out[I].Arsp, In[I].Arsp);
  }
  PushBatchAckMsg Ack;
  Ack.Merges = 7;
  Ack.Fingerprint = TestFingerprint;
  Ack.Count = 5;
  Ack.Merged = 3;
  Ack.Duplicates = 1;
  Ack.Rejected = 1;
  Ack.FirstError = "shard 4: bad crc";
  PushBatchAckMsg Back;
  ASSERT_TRUE(decodePushBatchAck(encodePushBatchAck(Ack), &Back));
  EXPECT_EQ(Back.Merged, 3u);
  EXPECT_EQ(Back.Duplicates, 1u);
  EXPECT_EQ(Back.Rejected, 1u);
  EXPECT_EQ(Back.FirstError, Ack.FirstError);
}

/// Flip every byte of a framed PUSH_BATCH: the frame CRC must catch
/// each one (length-field flips may instead surface as Oversized or a
/// stalled read — any non-Ok, non-Eof outcome passes; silently
/// accepting a corrupt batch is what is banned).
TEST(ProfServeWireV3, BatchEveryByteFlipRejected) {
  const std::string Wire =
      encodeFrame(MsgType::PushBatch, encodePushBatch(sampleBatch(3)));
  for (size_t I = 0; I != Wire.size(); ++I) {
    std::string Bad = Wire;
    Bad[I] = static_cast<char>(Bad[I] ^ 0xFF);
    auto Pair = makeLoopbackPair();
    ASSERT_TRUE(Pair.first->writeAll(Bad.data(), Bad.size()).ok());
    Pair.first->close();
    FrameResult FR = readFrame(*Pair.second, 200);
    EXPECT_FALSE(FR.ok()) << "flipped byte " << I << " was accepted";
    EXPECT_NE(FR.Status, FrameStatus::Eof) << "flipped byte " << I;
    EXPECT_FALSE(FR.Error.empty()) << "no diagnostic for byte " << I;
  }
}

/// Truncate the framed batch at every point: mid-frame death must be
/// Malformed, never a partial decode.
TEST(ProfServeWireV3, BatchEveryTruncationRejected) {
  const std::string Wire =
      encodeFrame(MsgType::PushBatch, encodePushBatch(sampleBatch(3)));
  for (size_t Len = 0; Len != Wire.size(); ++Len) {
    auto Pair = makeLoopbackPair();
    if (Len) {
      ASSERT_TRUE(Pair.first->writeAll(Wire.data(), Len).ok());
    }
    Pair.first->close();
    FrameResult FR = readFrame(*Pair.second, 1000);
    if (Len == 0) {
      EXPECT_EQ(FR.Status, FrameStatus::Eof);
    } else {
      EXPECT_EQ(FR.Status, FrameStatus::Malformed)
          << "truncation at " << Len << ": " << FR.Error;
    }
  }
}

/// The payload decoder itself, past the frame CRC: every byte flip and
/// every truncation of the raw PUSH_BATCH payload either fails to
/// decode or decodes to something observably different — and never
/// crashes (the ASan job leans on this sweep).
TEST(ProfServeWireV3, BatchPayloadDecoderSurvivesCorruptionSweep) {
  const std::string Payload = encodePushBatch(sampleBatch(3));
  std::vector<BatchShard> Reference;
  ASSERT_TRUE(decodePushBatch(Payload, &Reference));
  auto sameAsReference = [&](const std::vector<BatchShard> &Got) {
    if (Got.size() != Reference.size())
      return false;
    for (size_t I = 0; I != Got.size(); ++I)
      if (Got[I].Seq != Reference[I].Seq ||
          Got[I].Arsp != Reference[I].Arsp)
        return false;
    return true;
  };
  for (size_t I = 0; I != Payload.size(); ++I) {
    std::string Bad = Payload;
    Bad[I] = static_cast<char>(Bad[I] ^ 0xFF);
    std::vector<BatchShard> Out;
    if (decodePushBatch(Bad, &Out)) {
      EXPECT_FALSE(sameAsReference(Out))
          << "flipped byte " << I << " decoded back to the original";
    }
  }
  for (size_t Len = 0; Len != Payload.size(); ++Len) {
    std::vector<BatchShard> Out;
    EXPECT_FALSE(decodePushBatch(Payload.substr(0, Len), &Out))
        << "truncation at " << Len << " decoded";
  }
}

TEST(ProfServeWireV3, BatchShardCountCapEnforced) {
  std::vector<BatchShard> Huge(MaxBatchShards + 1);
  std::vector<BatchShard> Out;
  EXPECT_FALSE(decodePushBatch(encodePushBatch(Huge), &Out));
  std::vector<BatchShard> AtCap(MaxBatchShards);
  EXPECT_TRUE(decodePushBatch(encodePushBatch(AtCap), &Out));
}

/// A v3 ProfileClient batches: one PUSH_BATCH frame, one cumulative
/// ack, every shard merged, fold preserved.
TEST(ProfServeWireV3, ClientBatchMergesAndFoldMatches) {
  LoopbackServer S;
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 77;
  ProfileClient C = S.client(CC);
  std::vector<std::string> Shards;
  for (int I = 0; I != 6; ++I)
    Shards.push_back(encodedShard(I));
  ClientResult R = C.pushBatch(Shards);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(C.negotiatedVersion(), WireVersion);
  EXPECT_EQ(C.lastServerMerges(), 6u);
  ServerStats St = S.Server.stats();
  EXPECT_EQ(St.Merges, 6u);
  EXPECT_EQ(St.Batches, 1u);
  EXPECT_EQ(St.Duplicates, 0u);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(6));
}

/// Retrying an identical batch (stable sequence numbers) deduplicates
/// every shard instead of double-merging — the exactly-once contract
/// extends to batches.
TEST(ProfServeWireV3, RetriedBatchDeduplicatesAllShards) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  HelloMsg H;
  H.Fingerprint = TestFingerprint;
  H.SessionId = 501;
  ASSERT_TRUE(writeFrame(*T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::HelloAck);

  const std::string Payload = encodePushBatch(sampleBatch(4));
  for (int Round = 0; Round != 2; ++Round) {
    ASSERT_TRUE(writeFrame(*T, MsgType::PushBatch, Payload).ok());
    FrameResult AckF = readFrame(*T, 2000);
    ASSERT_TRUE(AckF.ok()) << AckF.Error;
    ASSERT_EQ(AckF.F.Type, MsgType::PushBatchAck);
    PushBatchAckMsg Ack;
    ASSERT_TRUE(decodePushBatchAck(AckF.F.Payload, &Ack));
    EXPECT_EQ(Ack.Count, 4u);
    if (Round == 0) {
      EXPECT_EQ(Ack.Merged, 4u);
      EXPECT_EQ(Ack.Duplicates, 0u);
    } else {
      EXPECT_EQ(Ack.Merged, 0u);
      EXPECT_EQ(Ack.Duplicates, 4u);
    }
    EXPECT_EQ(Ack.Rejected, 0u);
  }
  EXPECT_EQ(S.Server.stats().Merges, 4u);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(4));
}

/// A corrupt shard inside a valid PUSH_BATCH frame is rejected and
/// reported in the cumulative ack; the good shards still merge and the
/// connection stays open.
TEST(ProfServeWireV3, BadShardInBatchRejectedOthersMerge) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T);

  std::vector<BatchShard> Batch = sampleBatch(3);
  Batch[1].Arsp[Batch[1].Arsp.size() / 2] ^= 0x20; // corrupt one shard
  ASSERT_TRUE(
      writeFrame(*T, MsgType::PushBatch, encodePushBatch(Batch)).ok());
  FrameResult AckF = readFrame(*T, 2000);
  ASSERT_TRUE(AckF.ok()) << AckF.Error;
  ASSERT_EQ(AckF.F.Type, MsgType::PushBatchAck);
  PushBatchAckMsg Ack;
  ASSERT_TRUE(decodePushBatchAck(AckF.F.Payload, &Ack));
  EXPECT_EQ(Ack.Merged, 2u);
  EXPECT_EQ(Ack.Rejected, 1u);
  EXPECT_FALSE(Ack.FirstError.empty());

  // Still open: a clean follow-up push on the same connection works.
  ASSERT_TRUE(writeFrame(*T, MsgType::Push,
                         encodePush(0, encodedShard(9))).ok());
  FrameResult PA = readFrame(*T, 2000);
  ASSERT_TRUE(PA.ok()) << PA.Error;
  EXPECT_EQ(PA.F.Type, MsgType::PushAck);
  EXPECT_EQ(S.Server.stats().Merges, 3u);
}

/// A v2 client is negotiated down and fully served: HELLO_ACK echoes
/// v2, plain PUSH works, and STATS comes back in the v2 shape its
/// strict decoder accepts.  PUSH_BATCH on the v2 session is refused
/// with a diagnostic naming the required version — without closing the
/// connection.
TEST(ProfServeV3Negotiation, V2ClientInteroperatesWithV3Server) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  HelloMsg H;
  H.Version = 2;
  H.Fingerprint = TestFingerprint;
  H.ClientName = "legacy";
  ASSERT_TRUE(writeFrame(*T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::HelloAck);
  HelloAckMsg Ack;
  ASSERT_TRUE(decodeHelloAck(FR.F.Payload, &Ack));
  EXPECT_EQ(Ack.Version, 2u) << "server must echo the client's dialect";

  ASSERT_TRUE(writeFrame(*T, MsgType::Push,
                         encodePush(0, encodedShard(0))).ok());
  FrameResult PA = readFrame(*T, 2000);
  ASSERT_TRUE(PA.ok()) << PA.Error;
  ASSERT_EQ(PA.F.Type, MsgType::PushAck);

  // A batch on a v2 session is refused but not fatal.
  ASSERT_TRUE(writeFrame(*T, MsgType::PushBatch,
                         encodePushBatch(sampleBatch(2))).ok());
  FrameResult EF = readFrame(*T, 2000);
  ASSERT_TRUE(EF.ok()) << EF.Error;
  ASSERT_EQ(EF.F.Type, MsgType::Error);
  ErrorMsg Why;
  ASSERT_TRUE(decodeError(EF.F.Payload, &Why));
  EXPECT_NE(Why.Text.find("wire v3"), std::string::npos) << Why.Text;

  // STATS on the v2 session: the v2-shaped payload still decodes, and
  // the connection survived the refused batch.
  ASSERT_TRUE(writeFrame(*T, MsgType::StatsReq, std::string()).ok());
  FrameResult SF = readFrame(*T, 2000);
  ASSERT_TRUE(SF.ok()) << SF.Error;
  ASSERT_EQ(SF.F.Type, MsgType::StatsReply);
  StatsMsg St;
  ASSERT_TRUE(decodeStats(SF.F.Payload, &St));
  EXPECT_EQ(St.Merges, 1u);
  EXPECT_EQ(St.Batches, 0u) << "v2 payload carries no v3 counters";
  // The v2 dialect really is shorter than the v3 one.
  StatsMsg Full = S.Server.stats();
  EXPECT_LT(SF.F.Payload.size(), encodeStats(Full, 3).size());

  ASSERT_TRUE(writeFrame(*T, MsgType::Push,
                         encodePush(0, encodedShard(1))).ok());
  FrameResult PA2 = readFrame(*T, 2000);
  ASSERT_TRUE(PA2.ok()) << PA2.Error;
  EXPECT_EQ(PA2.F.Type, MsgType::PushAck);
  EXPECT_EQ(profile::serializeBundle(S.Server.merged()), serialFold(2));
}

/// Below the negotiation window is still a hard refusal.
TEST(ProfServeV3Negotiation, PrehistoricClientRefused) {
  LoopbackServer S;
  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  HelloMsg H;
  H.Version = MinWireVersion - 1;
  ASSERT_TRUE(writeFrame(*T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::Error);
  ErrorMsg Why;
  ASSERT_TRUE(decodeError(FR.F.Payload, &Why));
  EXPECT_EQ(Why.Code, ErrCode::BadHandshake);
  EXPECT_NE(Why.Text.find("version mismatch"), std::string::npos);
}

/// pushBatch against a server that only speaks v2 degrades to
/// per-shard sequenced pushes: the fake server sees only PUSH frames,
/// never a PUSH_BATCH, and the client still reports success.
TEST(ProfServeV3Negotiation, BatchDegradesToPerShardPushOnV2Server) {
  LoopbackListener L;
  std::atomic<int> Pushes{0}, Batches{0};
  std::thread FakeV2([&] {
    std::unique_ptr<Transport> T = L.accept();
    if (!T)
      return;
    for (;;) {
      FrameResult FR = readFrame(*T, 5000);
      if (!FR.ok())
        return;
      switch (FR.F.Type) {
      case MsgType::Hello: {
        HelloAckMsg Ack;
        Ack.Version = 2; // the whole point: an old server
        Ack.Fingerprint = TestFingerprint;
        writeFrame(*T, MsgType::HelloAck, encodeHelloAck(Ack));
        break;
      }
      case MsgType::Push: {
        ++Pushes;
        uint64_t Seq = 0;
        std::string Arsp;
        ASSERT_TRUE(decodePush(FR.F.Payload, &Seq, &Arsp));
        PushAckMsg Ack;
        Ack.Merges = static_cast<uint64_t>(Pushes.load());
        Ack.Fingerprint = TestFingerprint;
        Ack.Seq = Seq;
        writeFrame(*T, MsgType::PushAck, encodePushAck(Ack));
        break;
      }
      case MsgType::PushBatch:
        ++Batches;
        writeFrame(*T, MsgType::Error,
                   encodeError(ErrCode::BadFrame, "no batches in v2"));
        break;
      case MsgType::Bye:
        return;
      default:
        writeFrame(*T, MsgType::Error,
                   encodeError(ErrCode::Generic, "unexpected"));
      }
    }
  });

  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 88;
  ProfileClient C(loopbackDialer(L), CC);
  std::vector<std::string> Shards;
  for (int I = 0; I != 3; ++I)
    Shards.push_back(encodedShard(I));
  ClientResult R = C.pushBatch(Shards);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(C.negotiatedVersion(), 2u);
  C.close();
  L.shutdown();
  FakeV2.join();
  EXPECT_EQ(Pushes.load(), 3);
  EXPECT_EQ(Batches.load(), 0) << "client sent PUSH_BATCH to a v2 server";
}

//===----------------------------------------------------------------------===//
// Wire v4: the POLICY frame and its negotiation story
//===----------------------------------------------------------------------===//

PolicyMsg samplePolicy(int N) {
  PolicyMsg M;
  M.PolicyVersion = 7;
  for (int I = 0; I != N; ++I) {
    PolicyEntry E;
    E.Method = static_cast<uint64_t>(I * 3 + 1);
    E.Interval = (I % 3 == 0) ? 0 // retire
                              : static_cast<uint64_t>(1000) << (I % 8);
    M.Entries.push_back(E);
  }
  return M;
}

/// A server whose convergence watcher decides on every observed epoch,
/// so two identical epochs are enough to publish a policy version.
ServerConfig policyConfig() {
  ServerConfig C = quietConfig();
  C.Policy.Enabled = true;
  C.Policy.Watcher.WidenThresholdPct = 0.0;
  C.Policy.Watcher.StableEpochs = 1;
  return C;
}

/// Drives \p S to a nonzero policy version: two identical epoch deltas
/// give every observed method a perfect overlap, which policyConfig()
/// turns into widen decisions at the second rotation.
void publishFirstPolicy(LoopbackServer &S) {
  ClientConfig CC;
  CC.Fingerprint = TestFingerprint;
  CC.SessionId = 4242;
  ProfileClient C = S.client(CC);
  ASSERT_TRUE(C.push(shardBundle(0), TestFingerprint).Ok);
  S.Server.rotateEpoch();
  ASSERT_TRUE(C.push(shardBundle(0), TestFingerprint).Ok);
  S.Server.rotateEpoch();
  C.close();
  ASSERT_NE(S.Server.currentPolicy().PolicyVersion, 0u);
}

TEST(ProfServeWireV4, PolicyPayloadRoundTrips) {
  PolicyMsg In = samplePolicy(9);
  PolicyMsg Out;
  ASSERT_TRUE(decodePolicy(encodePolicy(In), &Out));
  EXPECT_EQ(Out.PolicyVersion, In.PolicyVersion);
  ASSERT_EQ(Out.Entries.size(), In.Entries.size());
  for (size_t I = 0; I != In.Entries.size(); ++I) {
    EXPECT_EQ(Out.Entries[I].Method, In.Entries[I].Method);
    EXPECT_EQ(Out.Entries[I].Interval, In.Entries[I].Interval);
  }
  PolicyMsg Empty; // version 0, no entries: legal on the wire
  ASSERT_TRUE(decodePolicy(encodePolicy(Empty), &Out));
  EXPECT_EQ(Out.PolicyVersion, 0u);
  EXPECT_TRUE(Out.Entries.empty());
}

/// Flip every byte of a framed POLICY broadcast: the frame CRC must
/// catch each one (same contract as the PUSH_BATCH sweep).
TEST(ProfServeWireV4, PolicyFrameEveryByteFlipRejected) {
  const std::string Wire =
      encodeFrame(MsgType::Policy, encodePolicy(samplePolicy(5)));
  for (size_t I = 0; I != Wire.size(); ++I) {
    std::string Bad = Wire;
    Bad[I] = static_cast<char>(Bad[I] ^ 0xFF);
    auto Pair = makeLoopbackPair();
    ASSERT_TRUE(Pair.first->writeAll(Bad.data(), Bad.size()).ok());
    Pair.first->close();
    FrameResult FR = readFrame(*Pair.second, 200);
    EXPECT_FALSE(FR.ok()) << "flipped byte " << I << " was accepted";
    EXPECT_NE(FR.Status, FrameStatus::Eof) << "flipped byte " << I;
  }
}

/// Truncate the framed POLICY broadcast at every point: mid-frame death
/// must be Malformed, never a partial decode.
TEST(ProfServeWireV4, PolicyFrameEveryTruncationRejected) {
  const std::string Wire =
      encodeFrame(MsgType::Policy, encodePolicy(samplePolicy(5)));
  for (size_t Len = 0; Len != Wire.size(); ++Len) {
    auto Pair = makeLoopbackPair();
    if (Len) {
      ASSERT_TRUE(Pair.first->writeAll(Wire.data(), Len).ok());
    }
    Pair.first->close();
    FrameResult FR = readFrame(*Pair.second, 1000);
    if (Len == 0) {
      EXPECT_EQ(FR.Status, FrameStatus::Eof);
    } else {
      EXPECT_EQ(FR.Status, FrameStatus::Malformed)
          << "truncation at " << Len << ": " << FR.Error;
    }
  }
}

/// The payload decoder itself, past the frame CRC: every byte flip and
/// every truncation of the raw POLICY payload either fails to decode or
/// decodes to something observably different — and never crashes.  This
/// is the decoder a client trusts before touching its interval table,
/// so "corrupt but decodes to the original" is the one banned outcome.
TEST(ProfServeWireV4, PolicyPayloadDecoderSurvivesCorruptionSweep) {
  const std::string Payload = encodePolicy(samplePolicy(5));
  PolicyMsg Reference;
  ASSERT_TRUE(decodePolicy(Payload, &Reference));
  auto sameAsReference = [&](const PolicyMsg &Got) {
    if (Got.PolicyVersion != Reference.PolicyVersion ||
        Got.Entries.size() != Reference.Entries.size())
      return false;
    for (size_t I = 0; I != Got.Entries.size(); ++I)
      if (Got.Entries[I].Method != Reference.Entries[I].Method ||
          Got.Entries[I].Interval != Reference.Entries[I].Interval)
        return false;
    return true;
  };
  for (size_t I = 0; I != Payload.size(); ++I) {
    std::string Bad = Payload;
    Bad[I] = static_cast<char>(Bad[I] ^ 0xFF);
    PolicyMsg Out;
    if (decodePolicy(Bad, &Out)) {
      EXPECT_FALSE(sameAsReference(Out))
          << "flipped byte " << I << " decoded back to the original";
    }
  }
  for (size_t Len = 0; Len != Payload.size(); ++Len) {
    PolicyMsg Out;
    EXPECT_FALSE(decodePolicy(Payload.substr(0, Len), &Out))
        << "truncation at " << Len << " decoded";
  }
}

/// The v4 STATS tail (policy counters) is version-gated like the v3
/// tail before it: a v3-shaped payload still decodes, counters default.
TEST(ProfServeWireV4, StatsPolicyCountersVersionGated) {
  StatsMsg S;
  S.Merges = 3;
  S.PolicyPushes = 11;
  S.PolicyDecisions = 29;
  StatsMsg Out;
  ASSERT_TRUE(decodeStats(encodeStats(S, 4), &Out));
  EXPECT_EQ(Out.PolicyPushes, 11u);
  EXPECT_EQ(Out.PolicyDecisions, 29u);
  StatsMsg V3;
  ASSERT_TRUE(decodeStats(encodeStats(S, 3), &V3));
  EXPECT_EQ(V3.Merges, 3u);
  EXPECT_EQ(V3.PolicyPushes, 0u) << "v3 payload carries no v4 counters";
  EXPECT_EQ(V3.PolicyDecisions, 0u);
  EXPECT_LT(encodeStats(S, 3).size(), encodeStats(S, 4).size());
}

TEST(ProfServeWireV4, PolicyEntryCountCapEnforced) {
  PolicyMsg Huge;
  Huge.PolicyVersion = 1;
  Huge.Entries.resize(MaxPolicyEntries + 1);
  PolicyMsg Out;
  EXPECT_FALSE(decodePolicy(encodePolicy(Huge), &Out));
  PolicyMsg AtCap;
  AtCap.PolicyVersion = 1;
  AtCap.Entries.resize(MaxPolicyEntries);
  EXPECT_TRUE(decodePolicy(encodePolicy(AtCap), &Out));
}

/// A v4 peer that joins AFTER the watcher first published gets the
/// current table immediately: one POLICY frame rides directly behind
/// the HELLO_ACK, so a late engine never waits for the next decision.
TEST(ProfServeV4Negotiation, LateJoinerGetsTableBehindHelloAck) {
  LoopbackServer S(policyConfig());
  publishFirstPolicy(S);
  PolicyMsg Published = S.Server.currentPolicy();

  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  rawHello(*T); // v4 by default
  FrameResult PF = readFrame(*T, 2000);
  ASSERT_TRUE(PF.ok()) << PF.Error;
  ASSERT_EQ(PF.F.Type, MsgType::Policy);
  PolicyMsg Got;
  ASSERT_TRUE(decodePolicy(PF.F.Payload, &Got));
  EXPECT_EQ(Got.PolicyVersion, Published.PolicyVersion);
  EXPECT_EQ(Got.Entries.size(), Published.Entries.size());
  EXPECT_FALSE(Got.Entries.empty());
}

/// Version negotiation gates the POLICY frame per session: a peer that
/// negotiated v2 or v3 must NEVER receive one — not behind its
/// HELLO_ACK and not from a later broadcast — and its connection stays
/// fully serviceable throughout.
void policyNeverSentToOldPeer(uint32_t PeerVersion) {
  LoopbackServer S(policyConfig());
  publishFirstPolicy(S);

  std::unique_ptr<Transport> T = S.L->connect();
  ASSERT_TRUE(T);
  HelloMsg H;
  H.Version = PeerVersion;
  H.Fingerprint = TestFingerprint;
  H.ClientName = "old-dialect";
  ASSERT_TRUE(writeFrame(*T, MsgType::Hello, encodeHello(H)).ok());
  FrameResult FR = readFrame(*T, 2000);
  ASSERT_TRUE(FR.ok()) << FR.Error;
  ASSERT_EQ(FR.F.Type, MsgType::HelloAck);
  HelloAckMsg Ack;
  ASSERT_TRUE(decodeHelloAck(FR.F.Payload, &Ack));
  EXPECT_EQ(Ack.Version, PeerVersion);

  // Nothing rides behind the ack on an old session...
  FrameResult Trailing = readFrame(*T, 300);
  EXPECT_EQ(Trailing.Status, FrameStatus::Timeout)
      << "a v" << PeerVersion << " peer received an unsolicited frame";

  // ...and a waited broadcast skips it too (0 = no v4 sessions exist).
  EXPECT_EQ(S.Server.pushPolicy(/*Wait=*/true), 0u);
  FrameResult AfterPush = readFrame(*T, 300);
  EXPECT_EQ(AfterPush.Status, FrameStatus::Timeout)
      << "a v" << PeerVersion << " peer received a POLICY broadcast";

  // The session is still fully alive.
  ASSERT_TRUE(writeFrame(*T, MsgType::Push,
                         encodePush(0, encodedShard(3))).ok());
  FrameResult PA = readFrame(*T, 2000);
  ASSERT_TRUE(PA.ok()) << PA.Error;
  EXPECT_EQ(PA.F.Type, MsgType::PushAck);
}

TEST(ProfServeV4Negotiation, PolicyNeverSentToV2Peer) {
  policyNeverSentToOldPeer(2);
}

TEST(ProfServeV4Negotiation, PolicyNeverSentToV3Peer) {
  policyNeverSentToOldPeer(3);
}

/// Both dialects on one server at once: the broadcast reaches exactly
/// the v4 session while the v3 session sees nothing, and both keep
/// pushing afterwards.
TEST(ProfServeV4Negotiation, MixedFleetGetsPolicySelectively) {
  LoopbackServer S(policyConfig());
  publishFirstPolicy(S);

  std::unique_ptr<Transport> V4 = S.L->connect();
  ASSERT_TRUE(V4);
  rawHello(*V4);
  FrameResult Seed = readFrame(*V4, 2000); // late-joiner table
  ASSERT_TRUE(Seed.ok()) << Seed.Error;
  ASSERT_EQ(Seed.F.Type, MsgType::Policy);

  std::unique_ptr<Transport> V3 = S.L->connect();
  ASSERT_TRUE(V3);
  HelloMsg H;
  H.Version = 3;
  H.Fingerprint = TestFingerprint;
  ASSERT_TRUE(writeFrame(*V3, MsgType::Hello, encodeHello(H)).ok());
  FrameResult HA = readFrame(*V3, 2000);
  ASSERT_TRUE(HA.ok()) << HA.Error;
  ASSERT_EQ(HA.F.Type, MsgType::HelloAck);

  EXPECT_EQ(S.Server.pushPolicy(/*Wait=*/true), 1u)
      << "exactly the v4 session should be written";
  FrameResult OnV4 = readFrame(*V4, 2000);
  ASSERT_TRUE(OnV4.ok()) << OnV4.Error;
  EXPECT_EQ(OnV4.F.Type, MsgType::Policy);
  FrameResult OnV3 = readFrame(*V3, 300);
  EXPECT_EQ(OnV3.Status, FrameStatus::Timeout);

  ASSERT_TRUE(writeFrame(*V3, MsgType::Push,
                         encodePush(0, encodedShard(4))).ok());
  FrameResult PA = readFrame(*V3, 2000);
  ASSERT_TRUE(PA.ok()) << PA.Error;
  EXPECT_EQ(PA.F.Type, MsgType::PushAck);
}

TEST(ProfServeTcp, ConnectToNobodyFailsWithDiagnostic) {
  std::string Error;
  // Bind-then-close to find a port with no listener.
  std::unique_ptr<TcpListener> L = listenTcp(0, &Error);
  if (!L)
    GTEST_SKIP() << "TCP unavailable here: " << Error;
  uint16_t Port = L->port();
  L->shutdown();
  L.reset();
  std::unique_ptr<Transport> T = connectTcp("127.0.0.1", Port, 500, &Error);
  if (T) // some sandboxes accept anything on loopback; nothing to pin
    GTEST_SKIP() << "loopback accepted a dead port";
  EXPECT_FALSE(Error.empty());
}

} // namespace
