//===- tests/test_policy.cpp - Closed-loop sampling policy ----*- C++ -*-===//
///
/// The policy subsystem end to end: PolicyTable semantics (monotonic
/// versions, retire, out-of-range), the ConvergenceWatcher's decision
/// logic, the per-method overlap metric, the engine's runtime interval
/// table — with Property 1 re-verified after widening and after a
/// retire/re-transform-free swap — and the server → (relay →) client
/// push-down over live connections.
///
/// All suites are named Policy* so scripts/check.sh --tsan runs the file
/// under ThreadSanitizer (the table is read lock-free by the engine while
/// a client thread may be writing it).
///
//===----------------------------------------------------------------------===//

#include "policy/Policy.h"

#include "instr/Clients.h"
#include "profserve/Client.h"
#include "profserve/Protocol.h"
#include "profserve/Server.h"
#include "profserve/Transport.h"
#include "sampling/Property1.h"

#include "TestUtil.h"

#include <atomic>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;
instr::BlockCountInstrumentation AllBlocks(4, /*Stride=*/1);

/// Two-function workload: `hot` dominates the profile, `cold` barely
/// shows up — the shape per-method decisions exist for.
const char *TwoMethodSrc = R"(
  int hot(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) s = s + i * 3 - (s / 7);
    return s;
  }
  int cold(int n) { return n * 5 + 1; }
  int main(int n) {
    int a = 0;
    for (int r = 0; r < 8; r = r + 1) {
      a = a + hot(n);
      a = a + cold(r);
    }
    return a;
  }
)";

int funcIdOf(const harness::Program &P, const char *Name) {
  for (const ir::IRFunction &F : P.Funcs)
    if (F.Name == Name)
      return F.FuncId;
  ADD_FAILURE() << "no function named " << Name;
  return -1;
}

std::vector<policy::Decision> sameForAll(size_t N, int64_t Interval) {
  std::vector<policy::Decision> Ds;
  for (size_t I = 0; I != N; ++I)
    Ds.push_back({static_cast<int>(I), Interval});
  return Ds;
}

/// A bundle whose per-method slices are fully determined by \p Variant:
/// blocks for method 3 and call edges into method 5.
profile::ProfileBundle epochDelta(int Variant) {
  profile::ProfileBundle B;
  for (int Blk = 0; Blk != 4; ++Blk)
    B.BlockCounts.record(3, Blk + Variant * 10, 100 + Blk);
  profile::CallEdgeKey K;
  K.Caller = 1;
  K.Site = 2 + Variant * 10;
  K.Callee = 5;
  B.CallEdges.record(K, 500);
  return B;
}

//===----------------------------------------------------------------------===//
// PolicyTable
//===----------------------------------------------------------------------===//

TEST(PolicyTable, DefaultsToStaticInterval) {
  policy::PolicyTable T(4);
  EXPECT_EQ(T.size(), 4u);
  EXPECT_EQ(T.appliedVersion(), 0u);
  for (int M = 0; M != 4; ++M) {
    EXPECT_EQ(T.effectiveInterval(M, 1000), 1000);
    EXPECT_FALSE(T.isRetired(M));
  }
  // Out of range (including negative) always reads as static.
  EXPECT_EQ(T.effectiveInterval(4, 1000), 1000);
  EXPECT_EQ(T.effectiveInterval(-1, 1000), 1000);
  EXPECT_TRUE(T.snapshot().empty());
}

TEST(PolicyTable, VersionGuardIsMonotonic) {
  policy::PolicyTable T(4);
  ASSERT_TRUE(T.applyVersioned(3, {{1, 8000}}));
  EXPECT_EQ(T.appliedVersion(), 3u);
  EXPECT_EQ(T.effectiveInterval(1, 1000), 8000);

  // Stale and replayed versions are no-ops — the relay-duplicate guard.
  EXPECT_FALSE(T.applyVersioned(3, {{1, 16000}}));
  EXPECT_FALSE(T.applyVersioned(2, {{1, 0}}));
  EXPECT_EQ(T.effectiveInterval(1, 1000), 8000);

  // A newer version applies, including a retire.
  ASSERT_TRUE(T.applyVersioned(4, {{1, 0}, {2, 32000}}));
  EXPECT_TRUE(T.isRetired(1));
  EXPECT_EQ(T.effectiveInterval(1, 1000), 0);
  EXPECT_EQ(T.effectiveInterval(2, 1000), 32000);
  EXPECT_EQ(T.snapshot().size(), 2u);
}

TEST(PolicyTable, OutOfRangeMethodsIgnoredOnApply) {
  policy::PolicyTable T(2);
  ASSERT_TRUE(T.applyVersioned(1, {{-1, 0}, {7, 0}, {0, 4000}}));
  EXPECT_EQ(T.effectiveInterval(0, 1000), 4000);
  EXPECT_EQ(T.effectiveInterval(1, 1000), 1000);
  EXPECT_EQ(T.effectiveInterval(7, 1000), 1000);
}

//===----------------------------------------------------------------------===//
// Slicing and the per-method overlap metric
//===----------------------------------------------------------------------===//

TEST(PolicySlice, GroupsBlocksByFunctionAndEdgesByCallee) {
  std::map<int, policy::MethodSlice> S =
      policy::sliceByMethod(epochDelta(0));
  ASSERT_EQ(S.size(), 2u);
  ASSERT_TRUE(S.count(3));
  EXPECT_EQ(S[3].Blocks.size(), 4u);
  EXPECT_GT(S[3].BlockTotal, 0u);
  EXPECT_EQ(S[3].EdgeTotal, 0u);
  ASSERT_TRUE(S.count(5));
  EXPECT_EQ(S[5].InEdges.size(), 1u);
  EXPECT_EQ(S[5].EdgeTotal, 500u);
  EXPECT_FALSE(S[3].empty());
}

TEST(PolicySlice, OverlapScoresIdenticalAndDisjointSlices) {
  std::map<int, policy::MethodSlice> A =
      policy::sliceByMethod(epochDelta(0));
  std::map<int, policy::MethodSlice> B =
      policy::sliceByMethod(epochDelta(1)); // disjoint block ids
  EXPECT_DOUBLE_EQ(policy::methodOverlapPct(A[3], A[3]), 100.0);
  EXPECT_DOUBLE_EQ(policy::methodOverlapPct(A[3], B[3]), 0.0);
  EXPECT_DOUBLE_EQ(policy::methodOverlapPct(A[3], policy::MethodSlice()),
                   0.0);
}

TEST(PolicySlice, PerMethodOverlapPenalizesMissingMethods) {
  profile::ProfileBundle Perfect = epochDelta(0);
  EXPECT_DOUBLE_EQ(policy::perMethodOverlapPct(Perfect, Perfect), 100.0);

  // Sampled bundle missing method 5 entirely: the mean drops by method
  // 5's share of the perfect side's events, no more and no less.
  profile::ProfileBundle Partial;
  for (int Blk = 0; Blk != 4; ++Blk)
    Partial.BlockCounts.record(3, Blk, 100 + Blk);
  double Got = policy::perMethodOverlapPct(Perfect, Partial);
  EXPECT_LT(Got, 100.0);
  EXPECT_GT(Got, 0.0);

  EXPECT_DOUBLE_EQ(
      policy::perMethodOverlapPct(Perfect, profile::ProfileBundle()), 0.0);
}

//===----------------------------------------------------------------------===//
// ConvergenceWatcher
//===----------------------------------------------------------------------===//

TEST(PolicyWatcher, WidensAfterStableEpochsOnly) {
  policy::WatcherConfig C;
  C.WidenThresholdPct = 90.0;
  C.RetireThresholdPct = 1000.0; // unreachable: widen path only
  C.StableEpochs = 2;
  C.WidenFactor = 4;
  C.BaseInterval = 1000;
  policy::ConvergenceWatcher W(C);

  // Epoch 1 primes; epoch 2 starts the streak; epoch 3 completes it.
  EXPECT_TRUE(W.observeEpoch(epochDelta(0)).empty());
  EXPECT_TRUE(W.observeEpoch(epochDelta(0)).empty());
  EXPECT_EQ(W.policyVersion(), 0u);
  std::vector<policy::Decision> Ds = W.observeEpoch(epochDelta(0));
  ASSERT_EQ(Ds.size(), 2u) << "methods 3 and 5 both converged";
  EXPECT_EQ(W.policyVersion(), 1u);
  for (const policy::Decision &D : Ds)
    EXPECT_EQ(D.Interval, 4000) << "method " << D.Method;

  // The streak resets after a decision: two more epochs, another x4.
  EXPECT_TRUE(W.observeEpoch(epochDelta(0)).empty());
  Ds = W.observeEpoch(epochDelta(0));
  ASSERT_EQ(Ds.size(), 2u);
  EXPECT_EQ(Ds[0].Interval, 16000);
  EXPECT_EQ(W.policyVersion(), 2u);
  EXPECT_EQ(W.currentPolicy().size(), 2u);
}

TEST(PolicyWatcher, RetiresAtRetireThreshold) {
  policy::WatcherConfig C;
  C.WidenThresholdPct = 90.0;
  C.RetireThresholdPct = 99.5; // identical deltas hit this immediately
  C.StableEpochs = 2;
  policy::ConvergenceWatcher W(C);
  W.observeEpoch(epochDelta(0));
  W.observeEpoch(epochDelta(0));
  std::vector<policy::Decision> Ds = W.observeEpoch(epochDelta(0));
  ASSERT_EQ(Ds.size(), 2u);
  for (const policy::Decision &D : Ds)
    EXPECT_EQ(D.Interval, 0) << "method " << D.Method;
  EXPECT_EQ(W.retiredCount(), 2);
  // Retired methods are out of the game: further epochs decide nothing.
  EXPECT_TRUE(W.observeEpoch(epochDelta(0)).empty());
  EXPECT_TRUE(W.observeEpoch(epochDelta(0)).empty());
  EXPECT_EQ(W.policyVersion(), 1u);
}

TEST(PolicyWatcher, WideningCapConvertsToRetire) {
  policy::WatcherConfig C;
  C.WidenThresholdPct = 0.0;
  C.RetireThresholdPct = 1000.0;
  C.StableEpochs = 1;
  C.WidenFactor = 4;
  C.BaseInterval = 1000;
  C.MaxInterval = 4000; // one widen reaches the cap
  policy::ConvergenceWatcher W(C);
  W.observeEpoch(epochDelta(0)); // prime
  std::vector<policy::Decision> Ds = W.observeEpoch(epochDelta(0));
  ASSERT_EQ(Ds.size(), 2u);
  EXPECT_EQ(Ds[0].Interval, 4000) << "clamped at MaxInterval";
  Ds = W.observeEpoch(epochDelta(0));
  ASSERT_EQ(Ds.size(), 2u);
  for (const policy::Decision &D : Ds)
    EXPECT_EQ(D.Interval, 0) << "at the cap, the next decision retires";
  EXPECT_EQ(W.retiredCount(), 2);
}

TEST(PolicyWatcher, UnstableMethodsAreLeftAlone) {
  policy::WatcherConfig C;
  C.StableEpochs = 1; // as twitchy as it gets; content must still gate
  policy::ConvergenceWatcher W(C);
  for (int E = 0; E != 6; ++E)
    EXPECT_TRUE(W.observeEpoch(epochDelta(E % 2)).empty())
        << "alternating disjoint deltas must never converge (epoch " << E
        << ")";
  EXPECT_EQ(W.policyVersion(), 0u);
  EXPECT_TRUE(W.currentPolicy().empty());
}

//===----------------------------------------------------------------------===//
// Engine: the receiving end
//===----------------------------------------------------------------------===//

TEST(PolicyEngine, WideningCutsSamplesButNeverChecks) {
  harness::Program P = build(TwoMethodSrc);
  auto Base = harness::runBaseline(P, 64);
  ASSERT_TRUE(Base.Stats.Ok);

  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Engine.SampleInterval = 20;
  C.Clients = {&CallEdges, &FieldAccesses, &AllBlocks};

  C.Engine.Policy = std::make_shared<policy::PolicyTable>(P.Funcs.size());
  auto Narrow = harness::runExperiment(P, 64, C);
  ASSERT_TRUE(Narrow.Stats.Ok) << Narrow.Stats.Error;

  C.Engine.Policy = std::make_shared<policy::PolicyTable>(P.Funcs.size());
  ASSERT_TRUE(C.Engine.Policy->applyVersioned(
      1, sameForAll(P.Funcs.size(), 160)));
  auto Wide = harness::runExperiment(P, 64, C);
  ASSERT_TRUE(Wide.Stats.Ok) << Wide.Stats.Error;

  // Fewer samples...
  EXPECT_LT(Wide.Stats.SamplesTaken, Narrow.Stats.SamplesTaken);
  EXPECT_GT(Wide.Stats.SamplesTaken, 0u);
  // ...but the checks themselves are untouched (Property 1, dynamic
  // half: Full-Duplication checks sit exactly on entries+backedges, the
  // baseline's yieldpoint count).
  EXPECT_EQ(Wide.Stats.CheckExecs, Narrow.Stats.CheckExecs);
  EXPECT_EQ(Wide.Stats.CheckExecs, Base.Stats.YieldpointExecs);
}

TEST(PolicyEngine, RetireIsCheckingOnlyWithoutRestart) {
  harness::Program P = build(TwoMethodSrc);
  int HotId = funcIdOf(P, "hot");
  ASSERT_GE(HotId, 0);

  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  std::vector<const instr::Instrumentation *> Clients = {
      &CallEdges, &FieldAccesses, &AllBlocks};
  // ONE instrumented module for both runs: retiring must need no
  // re-transform, only a table write.
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(P, Clients, Opts);

  harness::RunConfig C;
  C.Transform = Opts;
  C.Clients = Clients;
  // Small enough that the NON-hot methods (few checks each) still fire
  // samples after hot is retired.
  C.Engine.SampleInterval = 3;
  auto Table = std::make_shared<policy::PolicyTable>(P.Funcs.size());
  C.Engine.Policy = Table;

  auto Before = harness::runInstrumented(P, IP, 64, C);
  ASSERT_TRUE(Before.Stats.Ok) << Before.Stats.Error;
  std::map<int, policy::MethodSlice> SlicesBefore =
      policy::sliceByMethod(Before.Profiles);
  ASSERT_TRUE(SlicesBefore.count(HotId))
      << "the hot method must show up before it is retired";

  // The swap: one versioned write against the shared table.
  ASSERT_TRUE(Table->applyVersioned(1, {{HotId, 0}}));
  ASSERT_TRUE(Table->isRetired(HotId));

  auto After = harness::runInstrumented(P, IP, 64, C);
  ASSERT_TRUE(After.Stats.Ok) << After.Stats.Error;

  // The retired method's duplicated body never runs: no block counts for
  // it, no call edges into it; other methods still profile.
  std::map<int, policy::MethodSlice> SlicesAfter =
      policy::sliceByMethod(After.Profiles);
  EXPECT_FALSE(SlicesAfter.count(HotId))
      << "retired method still produced profile data";
  EXPECT_FALSE(SlicesAfter.empty())
      << "non-retired methods must keep profiling";

  // Checks still execute at every entry/backedge (that IS checking-only),
  // and Property 1's static half re-verifies on the unchanged IR.
  EXPECT_EQ(After.Stats.CheckExecs, Before.Stats.CheckExecs);
  EXPECT_LE(After.Stats.SamplesTaken, Before.Stats.SamplesTaken);
  for (size_t F = 0; F != IP.Funcs.size(); ++F)
    EXPECT_TRUE(sampling::checkProperty1Static(IP.Funcs[F],
                                               IP.Transforms[F], Opts)
                    .empty())
        << "Property 1 static invariant broken post-swap in function " << F;
}

TEST(PolicyEngine, AllRetiredCollectsNothing) {
  harness::Program P = build(TwoMethodSrc);
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Engine.SampleInterval = 20;
  C.Clients = {&CallEdges, &FieldAccesses, &AllBlocks};
  C.Engine.Policy = std::make_shared<policy::PolicyTable>(P.Funcs.size());
  ASSERT_TRUE(
      C.Engine.Policy->applyVersioned(1, sameForAll(P.Funcs.size(), 0)));

  auto R = harness::runExperiment(P, 64, C);
  ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
  EXPECT_EQ(R.Stats.SamplesTaken, 0u);
  EXPECT_EQ(R.Stats.ProbeBodiesRun, 0u)
      << "a retired method entered its duplicated body";
  EXPECT_TRUE(policy::sliceByMethod(R.Profiles).empty());
  // The program still runs to the right answer with checks in place.
  auto Plain = harness::runBaseline(P, 64);
  EXPECT_EQ(R.Stats.MainResult, Plain.Stats.MainResult);
  EXPECT_GT(R.Stats.CheckExecs, 0u);
}

TEST(PolicyEngine, ConcurrentTableWritesAreCleanUnderTsan) {
  harness::Program P = build(TwoMethodSrc);
  auto Table = std::make_shared<policy::PolicyTable>(P.Funcs.size());
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Engine.SampleInterval = 20;
  C.Clients = {&CallEdges, &AllBlocks};
  C.Engine.Policy = Table;

  // The shape the subsystem ships: an engine reading the table lock-free
  // while a "client thread" applies successive POLICY versions.  The
  // result is timing-dependent; the absence of races (TSan) and Property
  // 1's bound are not.
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    uint64_t V = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      ++V;
      Table->applyVersioned(V,
                            sameForAll(P.Funcs.size(), 20 + (V % 5) * 40));
      std::this_thread::yield();
    }
  });
  auto R = harness::runExperiment(P, 256, C);
  Stop.store(true);
  Writer.join();
  ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
  auto Base = harness::runBaseline(P, 256);
  EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult);
  EXPECT_LE(R.Stats.CheckExecs, Base.Stats.YieldpointExecs);
}

//===----------------------------------------------------------------------===//
// Push-down over live connections
//===----------------------------------------------------------------------===//

using namespace ars::profserve;

constexpr uint64_t Fp = 0xabcdef0123456789ULL;

ServerConfig watcherConfig() {
  ServerConfig C;
  C.Workers = 2;
  C.RecvTimeoutMs = 2000;
  C.Policy.Enabled = true;
  C.Policy.Watcher.WidenThresholdPct = 90.0;
  C.Policy.Watcher.RetireThresholdPct = 1000.0;
  C.Policy.Watcher.StableEpochs = 1;
  C.Policy.Watcher.WidenFactor = 4;
  C.Policy.Watcher.BaseInterval = 1000;
  return C;
}

TEST(PolicyPushdown, ServerDecidesClientApplies) {
  auto *L = new LoopbackListener();
  ProfileServer Server(std::unique_ptr<Listener>(L), watcherConfig());
  Server.start();

  auto Table = std::make_shared<policy::PolicyTable>(16);
  ClientConfig CC;
  CC.Fingerprint = Fp;
  CC.SessionId = 11;
  ProfileClient C(loopbackDialer(*L), CC);
  C.onPolicy([&](const PolicyMsg &M) {
    std::vector<policy::Decision> Ds;
    for (const PolicyEntry &E : M.Entries)
      Ds.push_back({static_cast<int>(E.Method),
                    static_cast<int64_t>(E.Interval)});
    Table->applyVersioned(M.PolicyVersion, Ds);
  });

  // Two identical epochs converge both observed methods.
  ASSERT_TRUE(C.push(epochDelta(0), Fp).Ok);
  Server.rotateEpoch();
  ASSERT_TRUE(C.push(epochDelta(0), Fp).Ok);
  Server.rotateEpoch();
  PolicyMsg Published = Server.currentPolicy();
  ASSERT_NE(Published.PolicyVersion, 0u);
  ASSERT_EQ(Published.Entries.size(), 2u);

  EXPECT_EQ(Server.pushPolicy(/*Wait=*/true), 1u);
  EXPECT_GE(C.pollPolicy(200), 1);
  EXPECT_EQ(Table->appliedVersion(), Published.PolicyVersion);
  EXPECT_EQ(Table->effectiveInterval(3, 77), 4000)
      << "method 3's widened interval must have replaced the static one";
  EXPECT_EQ(Table->effectiveInterval(9, 77), 77)
      << "undecided methods stay at the static interval";
  C.close();
  Server.stop();
}

TEST(PolicyPushdown, RelayForwardsPolicyDownTree) {
  // Root (watcher) <- relay <- leaf client.
  auto *RootL = new LoopbackListener();
  ProfileServer Root(std::unique_ptr<Listener>(RootL), watcherConfig());
  Root.start();

  ServerConfig RC;
  RC.Workers = 2;
  RC.RecvTimeoutMs = 2000;
  RC.Relay.Dial = loopbackDialer(*RootL);
  RC.Relay.Client.Fingerprint = Fp;
  RC.Relay.Client.SessionId = 0x5E1A;
  RC.Relay.FlushIntervalMs = 0; // harness-driven flushes only
  RC.Relay.FlushEveryMerges = 0;
  auto *RelayL = new LoopbackListener();
  ProfileServer Relay(std::unique_ptr<Listener>(RelayL), RC);
  Relay.start();

  auto Table = std::make_shared<policy::PolicyTable>(16);
  ClientConfig CC;
  CC.Fingerprint = Fp;
  CC.SessionId = 21;
  ProfileClient Leaf(loopbackDialer(*RelayL), CC);
  Leaf.onPolicy([&](const PolicyMsg &M) {
    std::vector<policy::Decision> Ds;
    for (const PolicyEntry &E : M.Entries)
      Ds.push_back({static_cast<int>(E.Method),
                    static_cast<int64_t>(E.Interval)});
    Table->applyVersioned(M.PolicyVersion, Ds);
  });

  std::string FlushErr;
  // Wave 1/2: deltas climb the tree, the root's watcher converges.
  ASSERT_TRUE(Leaf.push(epochDelta(0), Fp).Ok);
  ASSERT_TRUE(Relay.flushUpstream(&FlushErr)) << FlushErr;
  Root.rotateEpoch();
  ASSERT_TRUE(Leaf.push(epochDelta(0), Fp).Ok);
  ASSERT_TRUE(Relay.flushUpstream(&FlushErr)) << FlushErr;
  Root.rotateEpoch();
  PolicyMsg Published = Root.currentPolicy();
  ASSERT_NE(Published.PolicyVersion, 0u);
  ASSERT_EQ(Root.pushPolicy(/*Wait=*/true), 1u)
      << "the relay's upstream session is the root's one v4 peer";

  // Wave 3: the relay reads the buffered POLICY during its next upstream
  // exchange and re-broadcasts it downstream; the waited push then
  // guarantees the leaf's bytes are in flight before it polls.
  ASSERT_TRUE(Leaf.push(epochDelta(0), Fp).Ok);
  ASSERT_TRUE(Relay.flushUpstream(&FlushErr)) << FlushErr;
  EXPECT_EQ(Relay.pushPolicy(/*Wait=*/true), 1u);
  EXPECT_GE(Leaf.pollPolicy(200), 1);
  EXPECT_EQ(Table->appliedVersion(), Published.PolicyVersion);
  EXPECT_EQ(Table->effectiveInterval(3, 77), 4000);

  Leaf.close();
  Relay.stop();
  Root.stop();
}

TEST(PolicyPushdown, CorruptPolicyFrameDegradesToStatic) {
  // A hand-rolled v4 server interleaves POLICY frames — one of them
  // corrupt past the frame CRC — around a push reply.  The client must
  // apply the intact tables, silently drop the corrupt payload (keeping
  // whatever intervals it had), and keep the connection.
  LoopbackListener L;
  std::thread Fake([&] {
    std::unique_ptr<Transport> T = L.accept();
    if (!T)
      return;
    for (;;) {
      FrameResult FR = readFrame(*T, 5000);
      if (!FR.ok())
        return;
      if (FR.F.Type == MsgType::Hello) {
        HelloAckMsg Ack;
        Ack.Version = WireVersion;
        Ack.Fingerprint = Fp;
        writeFrame(*T, MsgType::HelloAck, encodeHelloAck(Ack));
      } else if (FR.F.Type == MsgType::Push) {
        uint64_t Seq = 0;
        std::string Arsp;
        ASSERT_TRUE(decodePush(FR.F.Payload, &Seq, &Arsp));
        PolicyMsg V1;
        V1.PolicyVersion = 1;
        V1.Entries.push_back({3, 4000});
        PolicyMsg V2;
        V2.PolicyVersion = 2;
        V2.Entries.push_back({3, 0});
        std::string Corrupt = encodePolicy(V2);
        Corrupt.resize(Corrupt.size() - 1); // truncated payload, valid CRC
        PolicyMsg V3;
        V3.PolicyVersion = 3;
        V3.Entries.push_back({4, 16000});
        std::string Burst = encodeFrame(MsgType::Policy, encodePolicy(V1));
        Burst += encodeFrame(MsgType::Policy, Corrupt);
        Burst += encodeFrame(MsgType::Policy, encodePolicy(V3));
        PushAckMsg Ack;
        Ack.Merges = 1;
        Ack.Fingerprint = Fp;
        Ack.Seq = Seq;
        Burst += encodeFrame(MsgType::PushAck, encodePushAck(Ack));
        T->writeAll(Burst.data(), Burst.size());
      } else if (FR.F.Type == MsgType::Bye) {
        return;
      }
    }
  });

  auto Table = std::make_shared<policy::PolicyTable>(16);
  ClientConfig CC;
  CC.Fingerprint = Fp;
  CC.SessionId = 31;
  ProfileClient C(loopbackDialer(L), CC);
  C.onPolicy([&](const PolicyMsg &M) {
    std::vector<policy::Decision> Ds;
    for (const PolicyEntry &E : M.Entries)
      Ds.push_back({static_cast<int>(E.Method),
                    static_cast<int64_t>(E.Interval)});
    Table->applyVersioned(M.PolicyVersion, Ds);
  });

  ASSERT_TRUE(C.push(epochDelta(0), Fp).Ok)
      << "interleaved POLICY frames must not break the push exchange";
  EXPECT_EQ(C.policyFramesSeen(), 2u)
      << "exactly the two intact frames count";
  EXPECT_EQ(Table->appliedVersion(), 3u);
  EXPECT_EQ(Table->effectiveInterval(3, 77), 4000)
      << "the corrupt v2 retire must NOT have applied";
  EXPECT_FALSE(Table->isRetired(3));
  EXPECT_EQ(Table->effectiveInterval(4, 77), 16000);
  C.close();
  L.shutdown();
  Fake.join();
}

} // namespace
