//===- tests/test_engine.cpp - runtime/ unit tests ------------*- C++ -*-===//

#include "runtime/Engine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;
using ars::testutil::run;

harness::ExperimentResult runSrc(const char *Src, int64_t Scale = 0,
                                 harness::RunConfig Config = {}) {
  harness::Program P = build(Src);
  return harness::runExperiment(P, Scale, Config);
}

TEST(Engine, TrapsDivisionByZero) {
  auto R = runSrc("int main(int n) { return 1 / n; }", 0);
  EXPECT_FALSE(R.Stats.Ok);
  EXPECT_NE(R.Stats.Error.find("division by zero"), std::string::npos);
}

TEST(Engine, TrapsRemainderByZero) {
  auto R = runSrc("int main(int n) { return 1 % n; }", 0);
  EXPECT_FALSE(R.Stats.Ok);
}

TEST(Engine, TrapsNullFieldAccess) {
  auto R = runSrc(R"(
    class C { int v; C other; }
    int main(int n) {
      C c = new C;
      return c.other.v;
    }
  )");
  EXPECT_FALSE(R.Stats.Ok);
  EXPECT_NE(R.Stats.Error.find("reference"), std::string::npos);
}

TEST(Engine, TrapsArrayOutOfBounds) {
  auto R = runSrc("int main(int n) { int[] a = new int[4]; return a[n]; }",
                  4);
  EXPECT_FALSE(R.Stats.Ok);
  auto R2 = runSrc("int main(int n) { int[] a = new int[4]; return a[n]; }",
                   -1);
  EXPECT_FALSE(R2.Stats.Ok);
}

TEST(Engine, TrapsNegativeArrayLength) {
  auto R = runSrc("int main(int n) { int[] a = new int[n]; return len(a); }",
                  -5);
  EXPECT_FALSE(R.Stats.Ok);
}

TEST(Engine, HeapBudgetEnforced) {
  harness::RunConfig C;
  C.Engine.MaxHeapCells = 64;
  auto R = runSrc(R"(
    int main(int n) {
      for (int i = 0; i < n; i = i + 1) { int[] a = new int[16]; a[0] = i; }
      return 0;
    }
  )",
                  100, C);
  EXPECT_FALSE(R.Stats.Ok);
  EXPECT_NE(R.Stats.Error.find("heap"), std::string::npos);
}

TEST(Engine, CallDepthGuard) {
  harness::RunConfig C;
  C.Engine.MaxCallDepth = 50;
  auto R = runSrc(R"(
    int rec(int n) { return rec(n + 1); }
    int main(int n) { return rec(0); }
  )",
                  0, C);
  EXPECT_FALSE(R.Stats.Ok);
  EXPECT_NE(R.Stats.Error.find("stack overflow"), std::string::npos);
}

TEST(Engine, CycleBudgetGuard) {
  harness::RunConfig C;
  C.Engine.MaxCycles = 10000;
  auto R = runSrc("int main(int n) { while (1) { n = n + 1; } return n; }",
                  0, C);
  EXPECT_FALSE(R.Stats.Ok);
  EXPECT_NE(R.Stats.Error.find("cycle budget"), std::string::npos);
}

TEST(Engine, TraceCapturesPrints) {
  auto R = runSrc(R"(
    int main(int n) {
      for (int i = 0; i < n; i = i + 1) { print(i * 10); }
      return 0;
    }
  )",
                  3);
  ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
  EXPECT_EQ(R.Stats.Trace, (std::vector<int64_t>{0, 10, 20}));
}

TEST(Engine, CyclesAndInstructionsAdvance) {
  auto R = runSrc("int main(int n) { return n + 1; }", 1);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_GT(R.Stats.Cycles, 0u);
  EXPECT_GT(R.Stats.Instructions, 0u);
  EXPECT_EQ(R.Stats.Entries, 1u);
}

TEST(Engine, IOWaitChargesExactCycles) {
  auto A = runSrc("int main(int n) { iowait(1000); return 0; }");
  auto B = runSrc("int main(int n) { iowait(9000); return 0; }");
  ASSERT_TRUE(A.Stats.Ok && B.Stats.Ok);
  EXPECT_EQ(B.Stats.Cycles - A.Stats.Cycles, 8000u);
}

TEST(Engine, DeterministicAcrossRuns) {
  const char *Src = R"(
    global int seed;
    int grand() {
      seed = (seed * 1103515245 + 12345) & 2147483647;
      return seed;
    }
    int main(int n) {
      seed = 7;
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) { acc = (acc + grand()) & 65535; }
      return acc;
    }
  )";
  harness::Program P = build(Src);
  auto R1 = run(P, 500);
  auto R2 = run(P, 500);
  EXPECT_EQ(R1.Stats.MainResult, R2.Stats.MainResult);
  EXPECT_EQ(R1.Stats.Cycles, R2.Stats.Cycles);
  EXPECT_EQ(R1.Stats.Instructions, R2.Stats.Instructions);
}

TEST(Engine, SpawnRunsThreadsToCompletion) {
  const char *Src = R"(
    global int total;
    global int done;
    void worker(int k) {
      int acc = 0;
      for (int i = 0; i < 1000; i = i + 1) { acc = acc + k; }
      total = total + acc;
      done = done + 1;
    }
    int main(int n) {
      total = 0;
      done = 0;
      for (int t = 1; t <= n; t = t + 1) { spawn worker(t); }
      while (done < n) { iowait(100); }
      return total;
    }
  )";
  auto R = runSrc(Src, 3);
  ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
  EXPECT_EQ(R.Stats.MainResult, 1000 * (1 + 2 + 3));
  EXPECT_EQ(R.Stats.ThreadsSpawned, 3u);
  EXPECT_GT(R.Stats.ThreadSwitches, 0u);
}

TEST(Engine, SpawnedThreadsInterleaveDeterministically) {
  const char *Src = R"(
    global int done;
    void worker(int k) {
      for (int i = 0; i < 2000; i = i + 1) { k = k + 1; }
      done = done + 1;
    }
    int main(int n) {
      done = 0;
      spawn worker(1);
      spawn worker(2);
      while (done < 2) { iowait(50); }
      return done;
    }
  )";
  harness::Program P = build(Src);
  harness::RunConfig C;
  C.Engine.YieldQuantumCycles = 500; // force frequent switching
  auto R1 = harness::runExperiment(P, 0, C);
  auto R2 = harness::runExperiment(P, 0, C);
  ASSERT_TRUE(R1.Stats.Ok) << R1.Stats.Error;
  EXPECT_EQ(R1.Stats.Cycles, R2.Stats.Cycles);
  EXPECT_EQ(R1.Stats.ThreadSwitches, R2.Stats.ThreadSwitches);
  EXPECT_GT(R1.Stats.ThreadSwitches, 2u);
}

TEST(Engine, YieldpointsCountedInBaseline) {
  // Baseline places yieldpoints on the method entry and each backedge:
  // one entry + n iterations.
  auto R = runSrc(R"(
    int main(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
      return acc;
    }
  )",
                  100);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_EQ(R.Stats.YieldpointExecs, 101u);
}

TEST(Engine, TimerFiresAtConfiguredPeriod) {
  harness::RunConfig C;
  C.Engine.Trigger = runtime::TriggerKind::Timer;
  C.Engine.TimerPeriodCycles = 1000;
  auto R = runSrc("int main(int n) { iowait(10000); return 0; }", 0, C);
  ASSERT_TRUE(R.Stats.Ok);
  // ~10 fires during the wait (plus prologue rounding).
  EXPECT_GE(R.Stats.TimerFires, 9u);
  EXPECT_LE(R.Stats.TimerFires, 12u);
}

TEST(Engine, MainResultFromVoidMainIsZero) {
  auto R = runSrc("void main(int n) { int x = n; x = x + 1; }", 5);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_EQ(R.Stats.MainResult, 0);
}

} // namespace
