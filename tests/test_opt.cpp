//===- tests/test_opt.cpp - optimizer pass tests --------------*- C++ -*-===//

#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "opt/Passes.h"
#include "sampling/Property1.h"
#include "instr/Clients.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

/// Builds with the optimizer enabled.
harness::Program buildOptimized(const char *Source) {
  harness::BuildOptions Options;
  Options.Optimize = true;
  harness::BuildResult R = harness::buildProgram(Source, Options);
  EXPECT_TRUE(R.Ok) << R.Error;
  return std::move(R.P);
}

TEST(ConstFold, FoldsArithmeticChains) {
  // (2 + 3) * 4 folds down to a single constant return.
  harness::Program P = buildOptimized(
      "int main(int n) { int a = 2 + 3; int b = a * 4; return b; }");
  const ir::IRFunction &Main = P.Funcs[0];
  int Arith = 0;
  for (const ir::BasicBlock &BB : Main.Blocks)
    for (const ir::IRInst &I : BB.Insts)
      if (I.Op == ir::IROp::Add || I.Op == ir::IROp::Mul)
        ++Arith;
  EXPECT_EQ(Arith, 0) << ir::printFunction(Main);
  EXPECT_EQ(ars::testutil::run(P, 0).Stats.MainResult, 20);
}

TEST(ConstFold, FoldsConstantBranches) {
  harness::Program Plain = build(
      "int main(int n) { if (1 < 2) { return 7; } return 9; }");
  harness::Program Opt = buildOptimized(
      "int main(int n) { if (1 < 2) { return 7; } return 9; }");
  EXPECT_LT(Opt.Funcs[0].codeSize(), Plain.Funcs[0].codeSize());
  EXPECT_EQ(ars::testutil::run(Opt, 0).Stats.MainResult, 7);
  int Branches = 0;
  for (const ir::BasicBlock &BB : Opt.Funcs[0].Blocks)
    for (const ir::IRInst &I : BB.Insts)
      if (I.Op == ir::IROp::Branch)
        ++Branches;
  EXPECT_EQ(Branches, 0);
}

TEST(CopyProp, ShrinksStackShuffles) {
  const char *Src = R"(
    int main(int n) {
      int a = n;
      int b = a;
      int c = b;
      return c + b + a;
    }
  )";
  harness::Program Plain = build(Src);
  harness::Program Opt = buildOptimized(Src);
  EXPECT_LT(Opt.Funcs[0].codeSize(), Plain.Funcs[0].codeSize());
  EXPECT_EQ(ars::testutil::run(Opt, 5).Stats.MainResult, 15);
}

TEST(DeadCode, KeepsTrapsAndEffects) {
  // The unused division must survive (it traps on n == 0), and the unused
  // call must survive (it writes the global).
  const char *Src = R"(
    global int g;
    int bump() { g = g + 1; return g; }
    int main(int n) {
      int dead1 = 100 / n;
      int dead2 = bump();
      int dead3 = n * 2;
      return g;
    }
  )";
  harness::Program Opt = buildOptimized(Src);
  auto Ok = harness::runExperiment(Opt, 5, {});
  EXPECT_EQ(Ok.Stats.MainResult, 1) << "bump() must still run";
  auto Trap = harness::runExperiment(Opt, 0, {});
  EXPECT_FALSE(Trap.Stats.Ok) << "division by zero must still trap";
}

TEST(DeadCode, RemovesPureDeadArithmetic) {
  const char *Src = R"(
    int main(int n) {
      int dead = (n * 3 + 7) & 1023;
      dead = dead ^ 55;
      return n;
    }
  )";
  harness::Program Plain = build(Src);
  harness::Program Opt = buildOptimized(Src);
  EXPECT_LT(Opt.Funcs[0].codeSize(), Plain.Funcs[0].codeSize());
  EXPECT_EQ(ars::testutil::run(Opt, 9).Stats.MainResult, 9);
}

TEST(Optimizer, ReportsStats) {
  harness::Program P = build(
      "int main(int n) { int a = 1 + 2; int b = a; return b + n; }");
  opt::OptStats Stats = opt::optimizeFunction(P.Funcs[0]);
  EXPECT_GT(Stats.total(), 0);
  EXPECT_GE(Stats.Iterations, 1);
  EXPECT_TRUE(ir::verifyFunction(P.Funcs[0]).empty());
}

class OptimizedWorkloadTest
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(OptimizedWorkloadTest, OptimizationPreservesSemantics) {
  const workloads::Workload &W = GetParam();
  harness::Program Plain = build(W.Source);
  harness::Program Opt = buildOptimized(W.Source);
  auto RPlain = harness::runBaseline(Plain, W.SmokeScale);
  auto ROpt = harness::runBaseline(Opt, W.SmokeScale);
  ASSERT_TRUE(RPlain.Stats.Ok && ROpt.Stats.Ok)
      << RPlain.Stats.Error << ROpt.Stats.Error;
  EXPECT_EQ(RPlain.Stats.MainResult, ROpt.Stats.MainResult) << W.Name;
  // The lowering's stack shuffles make plenty of dead copies; optimized
  // code must be no bigger and generally cheaper.
  int PlainSize = 0, OptSize = 0;
  for (const ir::IRFunction &F : Plain.Funcs)
    PlainSize += F.codeSize();
  for (const ir::IRFunction &F : Opt.Funcs)
    OptSize += F.codeSize();
  EXPECT_LE(OptSize, PlainSize) << W.Name;
  EXPECT_LE(ROpt.Stats.Cycles, RPlain.Stats.Cycles) << W.Name;
}

TEST_P(OptimizedWorkloadTest, SamplingOnOptimizedCode) {
  // The paper duplicates code late in the optimizing compiler; here the
  // whole framework runs over optimized IR and must preserve semantics
  // and the structural invariants.
  const workloads::Workload &W = GetParam();
  harness::Program Opt = buildOptimized(W.Source);
  auto Base = harness::runBaseline(Opt, W.SmokeScale);
  ASSERT_TRUE(Base.Stats.Ok);

  instr::CallEdgeInstrumentation CallEdges;
  instr::FieldAccessInstrumentation FieldAccesses;
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Engine.SampleInterval = 73;
  C.Clients = {&CallEdges, &FieldAccesses};
  auto R = harness::runExperiment(Opt, W.SmokeScale, C);
  ASSERT_TRUE(R.Stats.Ok) << W.Name << ": " << R.Stats.Error;
  EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult) << W.Name;

  sampling::Options Opts;
  Opts.M = sampling::Mode::FullDuplication;
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(Opt, {&CallEdges, &FieldAccesses}, Opts);
  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    std::string Bad = sampling::checkProperty1Static(IP.Funcs[F],
                                                     IP.Transforms[F], Opts);
    EXPECT_TRUE(Bad.empty()) << W.Name << ": " << Bad;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, OptimizedWorkloadTest,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
