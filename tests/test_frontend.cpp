//===- tests/test_frontend.cpp - MiniJ frontend tests ---------*- C++ -*-===//

#include "frontend/Compiler.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::evalMain;

TEST(Lexer, TokensAndKeywords) {
  auto Toks = frontend::tokenize("class x { int y; } // comment\n<= >> &&");
  ASSERT_GE(Toks.size(), 10u);
  EXPECT_EQ(Toks[0].Kind, frontend::TokKind::KwClass);
  EXPECT_EQ(Toks[1].Kind, frontend::TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "x");
  EXPECT_EQ(Toks.back().Kind, frontend::TokKind::End);
}

TEST(Lexer, NumbersIntAndFloat) {
  auto Toks = frontend::tokenize("42 3.5");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Kind, frontend::TokKind::IntLit);
  EXPECT_EQ(Toks[0].IntVal, 42);
  EXPECT_EQ(Toks[1].Kind, frontend::TokKind::FloatLit);
  EXPECT_DOUBLE_EQ(Toks[1].FloatVal, 3.5);
}

TEST(Lexer, ErrorTokenCarriesLine) {
  auto Toks = frontend::tokenize("int x\n@");
  EXPECT_EQ(Toks.back().Kind, frontend::TokKind::Error);
  EXPECT_NE(Toks.back().Text.find("line 2"), std::string::npos);
}

TEST(Parser, RejectsBadSyntax) {
  EXPECT_FALSE(frontend::parseProgram("int main( {").Ok);
  EXPECT_FALSE(frontend::parseProgram("int main() { return 1 }").Ok);
  EXPECT_FALSE(frontend::parseProgram("class C { int }").Ok);
  EXPECT_FALSE(frontend::parseProgram("int main() { 1 = 2; }").Ok);
}

TEST(Parser, AcceptsRepresentativeProgram) {
  auto R = frontend::parseProgram(R"(
    class P { int x; float f; }
    global int g;
    int helper(int a) { return a * 2; }
    int main(int n) {
      P p = new P;
      int[] arr = new int[8];
      for (int i = 0; i < n; i = i + 1) {
        if (i % 2 == 0 && i > 0) { arr[i % 8] = helper(i); }
        else { continue; }
      }
      while (n > 0) { n = n - 1; break; }
      p.x = arr[0];
      return p.x + g;
    }
  )");
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Prog.Classes.size(), 1u);
  EXPECT_EQ(R.Prog.Funcs.size(), 2u);
}

TEST(Sema, RejectsUnknownSymbols) {
  EXPECT_FALSE(frontend::compile("int main(int n) { return q; }").Ok);
  EXPECT_FALSE(frontend::compile("int main(int n) { return f(n); }").Ok);
  EXPECT_FALSE(
      frontend::compile("int main(int n) { Zed z = new Zed; return 0; }")
          .Ok);
}

TEST(Sema, RejectsTypeErrors) {
  EXPECT_FALSE(
      frontend::compile("int main(int n) { float f = 1.0; return n + f; }")
          .Ok);
  EXPECT_FALSE(
      frontend::compile("int main(int n) { if (1.5) { } return 0; }").Ok);
  EXPECT_FALSE(
      frontend::compile("float main(int n) { return 1; }").Ok);
  EXPECT_FALSE(frontend::compile("int main(int n) { break; return 0; }").Ok);
  EXPECT_FALSE(
      frontend::compile("int main(int n) { int n = 3; return n; }").Ok)
      << "redeclaring a parameter in the same scope";
}

TEST(Sema, RejectsBadCalls) {
  const char *Src = R"(
    int f(int a, int b) { return a + b; }
    int main(int n) { return f(n); }
  )";
  EXPECT_FALSE(frontend::compile(Src).Ok);
  EXPECT_FALSE(
      frontend::compile("int main(int n) { iowait(n); return 0; }").Ok)
      << "iowait requires a literal";
}

TEST(Sema, AllowsOuterScopeShadowing) {
  const char *Src = R"(
    int main(int n) {
      int x = 1;
      if (n > 0) { int x = 2; n = x; }
      return x + n;
    }
  )";
  EXPECT_TRUE(frontend::compile(Src).Ok);
}

TEST(Eval, Arithmetic) {
  EXPECT_EQ(evalMain("int main(int n) { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(evalMain("int main(int n) { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(evalMain("int main(int n) { return 17 % 5; }"), 2);
  EXPECT_EQ(evalMain("int main(int n) { return 17 / 5; }"), 3);
  EXPECT_EQ(evalMain("int main(int n) { return -7 + 2; }"), -5);
  EXPECT_EQ(evalMain("int main(int n) { return 1 << 5; }"), 32);
  EXPECT_EQ(evalMain("int main(int n) { return 6 ^ 3; }"), 5);
  EXPECT_EQ(evalMain("int main(int n) { return 6 & 3; }"), 2);
  EXPECT_EQ(evalMain("int main(int n) { return 6 | 1; }"), 7);
}

TEST(Eval, Comparisons) {
  EXPECT_EQ(evalMain("int main(int n) { return 3 < 4; }"), 1);
  EXPECT_EQ(evalMain("int main(int n) { return 4 <= 3; }"), 0);
  EXPECT_EQ(evalMain("int main(int n) { return 3 == 3; }"), 1);
  EXPECT_EQ(evalMain("int main(int n) { return 3 != 3; }"), 0);
  EXPECT_EQ(evalMain("int main(int n) { return 5 > 2; }"), 1);
  EXPECT_EQ(evalMain("int main(int n) { return 5 >= 6; }"), 0);
}

TEST(Eval, FloatOpsAndCasts) {
  EXPECT_EQ(evalMain("int main(int n) { return int(2.5 * 2.0); }"), 5);
  EXPECT_EQ(evalMain("int main(int n) { return int(float(7) / 2.0); }"), 3);
  EXPECT_EQ(evalMain("int main(int n) { return 2.5 > 2.0; }"), 1);
  EXPECT_EQ(evalMain("int main(int n) { return 2.5 >= 2.5; }"), 1);
  EXPECT_EQ(evalMain("int main(int n) { return 2.5 != 2.5; }"), 0);
  EXPECT_EQ(evalMain("int main(int n) { return int(-(1.5) * 2.0); }"), -3);
}

TEST(Eval, ShortCircuit) {
  // The right side would divide by zero if evaluated.
  EXPECT_EQ(evalMain("int main(int n) { return 0 && (1 / n); }", 0), 0);
  EXPECT_EQ(evalMain("int main(int n) { return 1 || (1 / n); }", 0), 1);
  EXPECT_EQ(evalMain("int main(int n) { return !0; }"), 1);
  EXPECT_EQ(evalMain("int main(int n) { return !5; }"), 0);
  EXPECT_EQ(evalMain("int main(int n) { return 2 && 3; }"), 1)
      << "&& normalizes to 0/1";
}

TEST(Eval, ControlFlow) {
  const char *Loop = R"(
    int main(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i == 5) { continue; }
        if (i == 8) { break; }
        acc = acc + i;
      }
      return acc;
    }
  )";
  EXPECT_EQ(evalMain(Loop, 100), 0 + 1 + 2 + 3 + 4 + 6 + 7);

  const char *WhileLoop = R"(
    int main(int n) {
      int acc = 1;
      while (n > 0) { acc = acc * 2; n = n - 1; }
      return acc;
    }
  )";
  EXPECT_EQ(evalMain(WhileLoop, 10), 1024);
}

TEST(Eval, Recursion) {
  const char *Fib = R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main(int n) { return fib(n); }
  )";
  EXPECT_EQ(evalMain(Fib, 15), 610);
}

TEST(Eval, ObjectsAndArrays) {
  const char *Src = R"(
    class Node { int value; Node next; }
    int main(int n) {
      Node head = new Node;
      head.value = 1;
      Node second = new Node;
      second.value = 2;
      head.next = second;
      int[] a = new int[4];
      a[0] = head.value;
      a[1] = head.next.value;
      a[2] = len(a);
      return a[0] + a[1] * 10 + a[2] * 100;
    }
  )";
  EXPECT_EQ(evalMain(Src), 1 + 20 + 400);
}

TEST(Eval, GlobalsPersistAcrossCalls) {
  const char *Src = R"(
    global int g;
    void bump() { g = g + 1; }
    int main(int n) {
      g = 0;
      for (int i = 0; i < n; i = i + 1) { bump(); }
      return g;
    }
  )";
  EXPECT_EQ(evalMain(Src, 37), 37);
}

TEST(Eval, ImplicitReturnOnVoidAndFallback) {
  const char *Src = R"(
    void noop(int n) { if (n > 0) { return; } }
    int main(int n) { noop(n); return 9; }
  )";
  EXPECT_EQ(evalMain(Src, 1), 9);
}

} // namespace
