//===- tests/test_dispatch.cpp - threaded vs switch dispatch --*- C++ -*-===//
///
/// The engine carries two interpreter loops: the portable switch loop and
/// the computed-goto threaded loop (runtime/Engine.cpp).  They must be
/// semantically bit-identical — same stats, same profiles, same failure
/// messages — across the workload suite, every sampling mode, both
/// trigger kinds, and the engine's guarded failure rails.  These tests
/// pin that; under a -DARS_THREADED_DISPATCH=OFF build the threaded
/// requests fall back to the switch loop and every comparison is
/// trivially satisfied.
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "runtime/Engine.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

harness::ExperimentResult runWith(const harness::Program &P, int64_t Scale,
                                  harness::RunConfig C,
                                  runtime::DispatchMode D) {
  C.Engine.Dispatch = D;
  return harness::runExperiment(P, Scale, C);
}

/// One differential point: the two dispatchers agree byte for byte.
void expectIdentical(const harness::Program &P, int64_t Scale,
                     const harness::RunConfig &C, const char *What) {
  auto Sw = runWith(P, Scale, C, runtime::DispatchMode::Switch);
  auto Th = runWith(P, Scale, C, runtime::DispatchMode::Threaded);
  ASSERT_EQ(Sw.Stats.Ok, Th.Stats.Ok) << What;
  EXPECT_EQ(Sw.Stats.Error, Th.Stats.Error) << What;
  EXPECT_EQ(runtime::serializeStats(Sw.Stats),
            runtime::serializeStats(Th.Stats))
      << What;
  EXPECT_EQ(profile::serializeBundle(Sw.Profiles),
            profile::serializeBundle(Th.Profiles))
      << What;
}

std::vector<harness::RunConfig> dispatchConfigs() {
  std::vector<harness::RunConfig> Configs;

  harness::RunConfig Baseline;
  Configs.push_back(Baseline);

  harness::RunConfig Exhaustive;
  Exhaustive.Transform.M = sampling::Mode::Exhaustive;
  Exhaustive.Clients = {&CallEdges, &FieldAccesses};
  Configs.push_back(Exhaustive);

  harness::RunConfig Full = Exhaustive;
  Full.Transform.M = sampling::Mode::FullDuplication;
  Full.Engine.SampleInterval = 7;
  Configs.push_back(Full);

  harness::RunConfig Burst = Full;
  Burst.Transform.BurstLength = 4;
  Burst.Engine.BurstLength = 4;
  Burst.Engine.SampleInterval = 13;
  Configs.push_back(Burst);

  harness::RunConfig NoDup = Exhaustive;
  NoDup.Transform.M = sampling::Mode::NoDuplication;
  NoDup.Transform.CoalesceChecks = true;
  NoDup.Transform.HoistLoopProbes = true;
  NoDup.Engine.SampleInterval = 7;
  Configs.push_back(NoDup);

  harness::RunConfig Combined = Exhaustive;
  Combined.Transform.M = sampling::Mode::Combined;
  Combined.Engine.SampleInterval = 11;
  Configs.push_back(Combined);

  harness::RunConfig Timer = Full;
  Timer.Engine.Trigger = runtime::TriggerKind::Timer;
  Timer.Engine.TimerPeriodCycles = 5000;
  Configs.push_back(Timer);

  return Configs;
}

class DispatchWorkloadTest : public ::testing::TestWithParam<const char *> {
};

TEST_P(DispatchWorkloadTest, BitIdenticalAcrossConfigs) {
  const workloads::Workload *W = workloads::workloadByName(GetParam());
  ASSERT_NE(W, nullptr);
  harness::Program P = build(W->Source);
  std::vector<harness::RunConfig> Configs = dispatchConfigs();
  for (size_t I = 0; I != Configs.size(); ++I)
    expectIdentical(P, 2, Configs[I],
                    support::formatString("%s config %zu", W->Name, I)
                        .c_str());
}

std::vector<const char *> allWorkloadNames() {
  std::vector<const char *> Names;
  for (const workloads::Workload &W : workloads::allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DispatchWorkloadTest,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &Info) {
                           std::string Name(Info.param);
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

/// Deep recursion forces Frames reallocation on every growth step; both
/// loops must re-derive their frame state at the invalidation points
/// (the switch loop's "Fr is invalidated" restart, the threaded loop's
/// ARS_REFRESH) rather than touching stale pointers.
TEST(Dispatch, DeepRecursionReallocatesFrames) {
  const char *Src = R"(
    class S { int v; }
    int down(int n) {
      if (n <= 0) { return 0; }
      return n + down(n - 1);
    }
    int main(int n) {
      S s = new S;
      s.v = down(n);
      return s.v;
    }
  )";
  harness::Program P = build(Src);
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  C.Engine.SampleInterval = 3;
  C.Clients = {&CallEdges, &FieldAccesses};
  auto Sw = runWith(P, 3000, C, runtime::DispatchMode::Switch);
  auto Th = runWith(P, 3000, C, runtime::DispatchMode::Threaded);
  ASSERT_TRUE(Sw.Stats.Ok && Th.Stats.Ok)
      << Sw.Stats.Error << Th.Stats.Error;
  EXPECT_EQ(Sw.Stats.MainResult, 3000 * 3001 / 2);
  EXPECT_EQ(runtime::serializeStats(Sw.Stats),
            runtime::serializeStats(Th.Stats));
  EXPECT_EQ(profile::serializeBundle(Sw.Profiles),
            profile::serializeBundle(Th.Profiles));
}

/// The guarded failure rails must fire identically: same Ok flag, same
/// message, under both dispatchers.
TEST(Dispatch, FailureRailsMatch) {
  struct Case {
    const char *Name;
    const char *Source;
    int64_t Scale;
    uint64_t MaxCycles;
    size_t MaxCallDepth;
  };
  const Case Cases[] = {
      {"division by zero",
       "int main(int n) { return 1 / (n - n); }", 5, 0, 0},
      {"stack overflow",
       "int f(int n) { return f(n + 1); } int main(int n) { return f(n); }",
       0, 0, 200},
      {"cycle budget",
       "int main(int n) { int a = 0; while (n < 1) { a = a + 1; } "
       "return a; }",
       0, 20000, 0},
  };
  for (const Case &C : Cases) {
    harness::Program P = build(C.Source);
    harness::RunConfig RC;
    if (C.MaxCycles)
      RC.Engine.MaxCycles = C.MaxCycles;
    if (C.MaxCallDepth)
      RC.Engine.MaxCallDepth = C.MaxCallDepth;
    auto Sw = runWith(P, C.Scale, RC, runtime::DispatchMode::Switch);
    auto Th = runWith(P, C.Scale, RC, runtime::DispatchMode::Threaded);
    EXPECT_FALSE(Sw.Stats.Ok) << C.Name;
    EXPECT_FALSE(Th.Stats.Ok) << C.Name;
    EXPECT_EQ(Sw.Stats.Error, Th.Stats.Error) << C.Name;
    EXPECT_EQ(runtime::serializeStats(Sw.Stats),
              runtime::serializeStats(Th.Stats))
        << C.Name;
  }
}

/// A call to a function id outside the module — the kind of corruption a
/// truncated or hand-altered instruction stream produces — must be
/// caught by the call rail, not crash, in both loops.
TEST(Dispatch, BadFunctionIdIsCaught) {
  const char *Src = R"(
    int leaf(int x) { return x + 1; }
    int main(int n) { return leaf(n); }
  )";
  harness::Program P = build(Src);
  std::vector<ir::IRFunction> Funcs = P.Funcs;
  bool Corrupted = false;
  for (ir::IRFunction &F : Funcs) {
    if (F.Name != "main")
      continue;
    for (ir::BasicBlock &BB : F.Blocks)
      for (ir::IRInst &I : BB.Insts)
        if (I.Op == ir::IROp::Call) {
          I.Imm = 9999; // dangling callee id
          Corrupted = true;
        }
  }
  ASSERT_TRUE(Corrupted);
  int MainId = -1;
  for (const ir::IRFunction &F : Funcs)
    if (F.Name == "main")
      MainId = F.FuncId;
  ASSERT_GE(MainId, 0);

  instr::ProbeRegistry NoProbes;
  std::string Errors[2];
  int Mode = 0;
  for (runtime::DispatchMode D :
       {runtime::DispatchMode::Switch, runtime::DispatchMode::Threaded}) {
    runtime::EngineConfig EC;
    EC.Dispatch = D;
    runtime::ExecutionEngine E(P.M, Funcs, NoProbes, EC);
    runtime::RunStats S = E.run(MainId, {1});
    EXPECT_FALSE(S.Ok);
    Errors[Mode++] = S.Error;
  }
  EXPECT_EQ(Errors[0], Errors[1]);
  EXPECT_NE(Errors[0].find("bad function id"), std::string::npos)
      << Errors[0];
}

/// The build records whether the threaded loop was compiled in; Auto must
/// resolve to it exactly then.  (Smokes the CMake option plumbing.)
TEST(Dispatch, CompiledFlagMatchesBuild) {
#if ARS_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
  EXPECT_TRUE(runtime::threadedDispatchCompiled());
#else
  EXPECT_FALSE(runtime::threadedDispatchCompiled());
#endif
}

} // namespace
