//===- tests/test_profstore.cpp - profstore/ unit tests -------*- C++ -*-===//
///
/// The profile store's three contracts:
///
///   * IO: encode/decode round-trips bit-identically (compared through
///     serializeBundle) for every workload and sampling mode, and every
///     corruption — bad magic, truncation at any point, a flipped byte,
///     a wrong module fingerprint, trailing garbage — is rejected with a
///     diagnostic, never UB.
///   * Algebra: mergeBundle is a commutative, associative monoid with
///     the empty bundle as identity, and overflow buckets sum rather
///     than re-fold; scale/decay truncate per entry and drop zeros.
///   * Aggregation: the lock-striped ProfileAggregator fed by the
///     ParallelRunner yields byte-identical merged bundles for any
///     worker count and stripe width.  The ProfileAggregator suites run
///     under scripts/check.sh --tsan.
///
//===----------------------------------------------------------------------===//

#include "harness/ParallelRunner.h"
#include "instr/Clients.h"
#include "profile/Overlap.h"
#include "profile/Profiles.h"
#include "profstore/ProfileAggregator.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "profstore/Summary.h"
#include "support/Binary.h"
#include "support/Compress.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <climits>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <iterator>
#include <vector>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;
instr::BlockCountInstrumentation BlockCounts;
instr::ValueProfileInstrumentation Values;
instr::EdgeCountInstrumentation EdgeCounts;
instr::PathProfileInstrumentation Paths;

std::vector<const instr::Instrumentation *> allClients() {
  return {&CallEdges, &FieldAccesses, &BlockCounts,
          &Values,    &EdgeCounts,    &Paths};
}

profile::CallEdgeKey edge(int Caller, int Site, int Callee) {
  profile::CallEdgeKey K;
  K.Caller = Caller;
  K.Site = Site;
  K.Callee = Callee;
  return K;
}

/// A synthetic bundle exercising every section, negative keys, a capped
/// value site with overflow, and a field vector with interior zeros.
profile::ProfileBundle syntheticBundle() {
  profile::ProfileBundle B;
  B.CallEdges.record(edge(-1, 0, 2), 7); // -1 = program entry
  B.CallEdges.record(edge(3, 9, 1), 1000000007);
  B.FieldAccesses.record(0, 3);
  B.FieldAccesses.record(5, 1); // slots 1..4 stay zero
  B.BlockCounts.record(2, 11, 42);
  B.BlockCounts.record(2, 12, 1);
  for (int V = 0; V != 40; ++V) // 8 past the cap -> overflow bucket
    B.Values.record(77, V - 20, static_cast<uint64_t>(V) + 1);
  B.Values.record(78, -9000000000LL, 2);
  B.Edges.record(1, 2, 3, 5);
  B.Paths.record(4, 0x12345678abcdefLL, 6);
  return B;
}

std::string roundTripped(const profile::ProfileBundle &B,
                         uint64_t Fingerprint = 0xfeedULL) {
  std::string Bytes = profstore::encodeBundle(B, Fingerprint);
  profstore::DecodeResult R = profstore::decodeBundle(Bytes, Fingerprint);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Fingerprint, Fingerprint);
  return profile::serializeBundle(R.Bundle);
}

//===----------------------------------------------------------------------===//
// Round-trip
//===----------------------------------------------------------------------===//

TEST(ProfStoreRoundTrip, EmptyBundle) {
  profile::ProfileBundle B;
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreRoundTrip, SyntheticBundleWithOverflowAndNegativeKeys) {
  profile::ProfileBundle B = syntheticBundle();
  ASSERT_EQ(B.Values.sites().at(77).size(),
            profile::ValueProfile::MaxValuesPerSite);
  ASSERT_GT(B.Values.overflow(77), 0u);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreRoundTrip, EmptyValueSiteSurvives) {
  // A site whose every event overflowed (or that was created empty) must
  // not vanish on a round-trip.
  profile::ProfileBundle B;
  B.Values.addOverflow(5, 9);
  B.Values.addOverflow(6, 0);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreRoundTrip, EveryWorkloadAndSamplingMode) {
  // Real bundles: every workload x {exhaustive, full-dup, no-dup}, all
  // six clients, so every section sees real shapes.
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    harness::Program P = build(W.Source);
    for (sampling::Mode Mode :
         {sampling::Mode::Exhaustive, sampling::Mode::FullDuplication,
          sampling::Mode::NoDuplication}) {
      harness::RunConfig C;
      C.Transform.M = Mode;
      C.Clients = allClients();
      if (Mode != sampling::Mode::Exhaustive)
        C.Engine.SampleInterval = 100;
      harness::ExperimentResult R = testutil::run(P, 1, C);
      EXPECT_EQ(roundTripped(R.Profiles),
                profile::serializeBundle(R.Profiles))
          << W.Name << " mode " << static_cast<int>(Mode);
    }
  }
}

//===----------------------------------------------------------------------===//
// Corruption
//===----------------------------------------------------------------------===//

/// Re-stamps the CRC32 trailer after a deliberate header patch, so the
/// test reaches the check behind the CRC.
void restampCrc(std::string &Bytes) {
  uint32_t Crc = support::crc32(Bytes.data(), Bytes.size() - 4);
  for (int I = 0; I != 4; ++I)
    Bytes[Bytes.size() - 4 + static_cast<size_t>(I)] =
        static_cast<char>((Crc >> (8 * I)) & 0xff);
}

TEST(ProfStoreCorruption, BadMagicIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  Bytes[0] = 'X';
  profstore::DecodeResult R = profstore::decodeBundle(Bytes);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("magic"), std::string::npos) << R.Error;
}

TEST(ProfStoreCorruption, EveryTruncationIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    profstore::DecodeResult R = profstore::decodeBundle(Bytes.substr(0, Len));
    EXPECT_FALSE(R.Ok) << "decoded a " << Len << "-byte prefix of "
                       << Bytes.size();
    EXPECT_FALSE(R.Error.empty());
  }
}

TEST(ProfStoreCorruption, EveryFlippedByteIsRejected) {
  // CRC32 catches any single-byte corruption anywhere in the file.
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x40);
    profstore::DecodeResult R = profstore::decodeBundle(Bad);
    EXPECT_FALSE(R.Ok) << "byte " << I;
  }
}

TEST(ProfStoreCorruption, TrailingBytesAreRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  Bytes.push_back('\0');
  EXPECT_FALSE(profstore::decodeBundle(Bytes).Ok);
}

TEST(ProfStoreCorruption, UnknownVersionIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  Bytes[4] = 99; // version u32 LE at offset 4
  restampCrc(Bytes);
  profstore::DecodeResult R = profstore::decodeBundle(Bytes);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("version"), std::string::npos) << R.Error;
}

TEST(ProfStoreCorruption, WrongFingerprintIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 0xaaaa);
  EXPECT_TRUE(profstore::decodeBundle(Bytes, 0xaaaa).Ok);
  EXPECT_TRUE(profstore::decodeBundle(Bytes, 0).Ok) << "0 = don't check";
  profstore::DecodeResult R = profstore::decodeBundle(Bytes, 0xbbbb);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fingerprint"), std::string::npos) << R.Error;
}

TEST(ProfStoreCorruption, HugeClaimedCountIsRejectedWithoutAllocating) {
  // A section claiming more entries than the remaining bytes could hold
  // must fail plausibility, not attempt a giant allocation.
  profile::ProfileBundle Empty;
  std::string Bytes = profstore::encodeBundle(Empty, 1);
  // First section's count varint is at offset 16; 0xff..x5 encodes a
  // ~34-billion entry claim in 5 bytes.
  std::string Bad = Bytes.substr(0, 16);
  for (int I = 0; I != 4; ++I)
    Bad.push_back(static_cast<char>(0xff));
  Bad.push_back(0x7f);
  Bad.append(Bytes.substr(17, Bytes.size() - 17 - 4));
  Bad.append(4, '\0');
  restampCrc(Bad);
  EXPECT_FALSE(profstore::decodeBundle(Bad).Ok);
}

//===----------------------------------------------------------------------===//
// Save / load
//===----------------------------------------------------------------------===//

TEST(ProfStoreFile, SaveLoadRoundTrip) {
  std::string Path = testing::TempDir() + "ars_profstore_test.arsp";
  profile::ProfileBundle B = syntheticBundle();
  std::string Error;
  ASSERT_TRUE(profstore::saveBundle(Path, B, 0x12345, &Error)) << Error;
  profstore::DecodeResult R = profstore::loadBundle(Path, 0x12345);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(profile::serializeBundle(R.Bundle), profile::serializeBundle(B));
  std::remove(Path.c_str());
}

TEST(ProfStoreFile, MissingFileIsAnError) {
  profstore::DecodeResult R =
      profstore::loadBundle(testing::TempDir() + "ars_no_such_file.arsp");
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Merge algebra
//===----------------------------------------------------------------------===//

std::string bytes(const profile::ProfileBundle &B) {
  return profile::serializeBundle(B);
}

profile::ProfileBundle merged(const profile::ProfileBundle &A,
                              const profile::ProfileBundle &B) {
  profile::ProfileBundle Out;
  profstore::mergeBundle(Out, A);
  profstore::mergeBundle(Out, B);
  return Out;
}

TEST(ProfStoreMerge, SumsCounts) {
  profile::ProfileBundle A, B;
  A.CallEdges.record(edge(0, 1, 2), 3);
  B.CallEdges.record(edge(0, 1, 2), 4);
  B.CallEdges.record(edge(9, 9, 9), 1);
  A.FieldAccesses.record(1, 5);
  B.FieldAccesses.record(3, 7); // longer vector than A's
  profile::ProfileBundle M = merged(A, B);
  EXPECT_EQ(M.CallEdges.counts().at(edge(0, 1, 2)), 7u);
  EXPECT_EQ(M.CallEdges.counts().at(edge(9, 9, 9)), 1u);
  EXPECT_EQ(M.CallEdges.total(), 8u);
  ASSERT_EQ(M.FieldAccesses.counts().size(), 4u);
  EXPECT_EQ(M.FieldAccesses.counts()[1], 5u);
  EXPECT_EQ(M.FieldAccesses.counts()[3], 7u);
}

TEST(ProfStoreMerge, EmptyBundleIsIdentity) {
  profile::ProfileBundle A = syntheticBundle(), Empty;
  EXPECT_EQ(bytes(merged(A, Empty)), bytes(A));
  EXPECT_EQ(bytes(merged(Empty, A)), bytes(A));
}

TEST(ProfStoreMerge, CommutativeAndAssociative) {
  profile::ProfileBundle A = syntheticBundle();
  profile::ProfileBundle B;
  B.CallEdges.record(edge(3, 9, 1), 13); // overlaps a key of A
  for (int V = 0; V != 40; ++V)          // overflows the same site as A
    B.Values.record(77, V + 100, 2);
  B.FieldAccesses.record(9, 1);
  profile::ProfileBundle C;
  C.Values.addOverflow(77, 5);
  C.Paths.record(4, 0x12345678abcdefLL, 1);

  EXPECT_EQ(bytes(merged(A, B)), bytes(merged(B, A)));
  EXPECT_EQ(bytes(merged(merged(A, B), C)), bytes(merged(A, merged(B, C))));
}

TEST(ProfStoreMerge, OverflowBucketsSumWithoutRefolding) {
  profile::ProfileBundle A, B;
  for (int V = 0; V != 40; ++V) { // each run capped at 32 + overflow 8
    A.Values.record(7, V, 1);
    B.Values.record(7, V + 8, 1); // 24 shared values, 8 new each side
  }
  profile::ProfileBundle M = merged(A, B);
  // The merged table may exceed MaxValuesPerSite: the cap is collection-
  // time only.  40 distinct values survive (0..31 from A, 16..47 from B).
  EXPECT_EQ(M.Values.sites().at(7).size(), 40u);
  EXPECT_EQ(M.Values.overflow(7), 16u);
  EXPECT_EQ(M.Values.total(), A.Values.total() + B.Values.total());
}

//===----------------------------------------------------------------------===//
// Scale / decay
//===----------------------------------------------------------------------===//

TEST(ProfStoreScale, HalvesTruncatingAndDropsZeros) {
  profile::ProfileBundle B;
  B.CallEdges.record(edge(0, 0, 1), 10);
  B.CallEdges.record(edge(0, 0, 2), 1); // truncates to zero -> dropped
  B.FieldAccesses.record(2, 3);
  profstore::scaleBundle(B, 1, 2);
  EXPECT_EQ(B.CallEdges.counts().at(edge(0, 0, 1)), 5u);
  EXPECT_EQ(B.CallEdges.counts().count(edge(0, 0, 2)), 0u);
  EXPECT_EQ(B.CallEdges.total(), 5u);
  // The field vector keeps its size: zero slots mean "never touched".
  ASSERT_EQ(B.FieldAccesses.counts().size(), 3u);
  EXPECT_EQ(B.FieldAccesses.counts()[2], 1u);
}

TEST(ProfStoreScale, LargeCountsDoNotOverflow) {
  profile::ProfileBundle B;
  uint64_t Huge = 0xffffffffffffffffULL;
  B.CallEdges.record(edge(0, 0, 1), Huge);
  profstore::scaleBundle(B, 3, 4); // 128-bit intermediate
  // floor((2^64-1) * 3 / 4): truncation happens after the multiply.
  EXPECT_EQ(B.CallEdges.counts().at(edge(0, 0, 1)), 0xbfffffffffffffffULL);
}

TEST(ProfStoreScale, DecayKeepsPercent) {
  profile::ProfileBundle B;
  B.BlockCounts.record(0, 0, 200);
  profstore::decayBundle(B, 75);
  EXPECT_EQ(B.BlockCounts.counts().at({0, 0}), 150u);
  profstore::decayBundle(B, 100); // identity
  EXPECT_EQ(B.BlockCounts.counts().at({0, 0}), 150u);
}

TEST(ProfStoreScale, ScaledBundleRoundTrips) {
  profile::ProfileBundle B = syntheticBundle();
  profstore::scaleBundle(B, 1, 3);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

TEST(ProfStoreReport, OverlapOfIdenticalBundlesIs100) {
  profile::ProfileBundle B = syntheticBundle();
  profstore::BundleOverlap O = profstore::overlapBundle(B, B);
  EXPECT_DOUBLE_EQ(O.CallEdges, 100.0);
  EXPECT_DOUBLE_EQ(O.Values, 100.0);
  EXPECT_DOUBLE_EQ(O.Paths, 100.0);
}

TEST(ProfStoreReport, ReportAndDiffMentionEveryKind) {
  profile::ProfileBundle A = syntheticBundle(), B = syntheticBundle();
  B.CallEdges.record(edge(3, 9, 1), 500);
  std::string Report = profstore::reportBundle(A, 5);
  std::string Diff = profstore::diffReport(A, B, 5);
  for (const char *Kind : {"call-edges", "field-accesses", "block-counts",
                           "values", "edges", "paths"}) {
    EXPECT_NE(Report.find(Kind), std::string::npos) << Kind;
    EXPECT_NE(Diff.find(Kind), std::string::npos) << Kind;
  }
}

//===----------------------------------------------------------------------===//
// Sharded aggregation (runs under check.sh --tsan)
//===----------------------------------------------------------------------===//

/// A small matrix of sampled cells over two workloads.
harness::RunMatrix aggMatrix(const std::vector<harness::Program> &Progs) {
  harness::RunMatrix M;
  for (const harness::Program &P : Progs)
    for (int64_t Interval : {1, 100, 10000}) {
      harness::MatrixCell C;
      C.Prog = &P;
      C.ScaleArg = 1;
      C.Config.Transform.M = sampling::Mode::FullDuplication;
      C.Config.Clients = {&CallEdges, &FieldAccesses};
      C.Config.Engine.SampleInterval = Interval;
      M.Cells.push_back(C);
    }
  return M;
}

std::vector<harness::Program> aggPrograms() {
  std::vector<harness::Program> Progs;
  Progs.push_back(build(workloads::workloadByName("compress")->Source));
  Progs.push_back(build(workloads::workloadByName("db")->Source));
  return Progs;
}

TEST(ProfileAggregator, MergesFlushedBundles) {
  profstore::ProfileAggregator Agg(4);
  EXPECT_EQ(Agg.stripes(), 4);
  profile::ProfileBundle A, B;
  A.CallEdges.record(edge(0, 1, 2), 3);
  B.CallEdges.record(edge(0, 1, 2), 4);
  Agg.flush(0, A);
  Agg.flush(5, B); // different stripe (5 % 4)
  EXPECT_EQ(Agg.flushes(), 2u);
  profile::ProfileBundle M = Agg.merged();
  EXPECT_EQ(M.CallEdges.counts().at(edge(0, 1, 2)), 7u);
  Agg.clear();
  EXPECT_EQ(Agg.flushes(), 0u);
  EXPECT_TRUE(Agg.merged().CallEdges.empty());
}

TEST(ProfileAggregator, ByteIdenticalAcrossWorkerCounts) {
  std::vector<harness::Program> Progs = aggPrograms();
  harness::RunMatrix M = aggMatrix(Progs);

  std::string Reference;
  for (int Jobs : {1, 2, 8}) {
    profstore::ProfileAggregator Agg;
    harness::ParallelRunner Runner(Jobs);
    std::vector<harness::ExperimentResult> Results = Runner.run(M, &Agg);
    for (const harness::ExperimentResult &R : Results)
      ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
    EXPECT_EQ(Agg.flushes(), M.Cells.size());
    std::string Bytes = profile::serializeBundle(Agg.merged());
    if (Reference.empty())
      Reference = Bytes;
    else
      EXPECT_EQ(Bytes, Reference) << "jobs=" << Jobs;
  }
  EXPECT_FALSE(Reference.empty());
}

TEST(ProfileAggregator, StripeWidthDoesNotChangeTheMerge) {
  std::vector<harness::Program> Progs = aggPrograms();
  harness::RunMatrix M = aggMatrix(Progs);

  std::string Reference;
  for (int Stripes : {1, 3, 16}) {
    profstore::ProfileAggregator Agg(Stripes);
    harness::ParallelRunner Runner(4);
    Runner.run(M, &Agg);
    std::string Bytes = profile::serializeBundle(Agg.merged());
    if (Reference.empty())
      Reference = Bytes;
    else
      EXPECT_EQ(Bytes, Reference) << "stripes=" << Stripes;
  }
}

TEST(ProfileAggregator, MergedEqualsSequentialFold) {
  // The aggregator's result is exactly the fold of the per-cell bundles
  // in any order — pin it against a plain sequential merge.
  std::vector<harness::Program> Progs = aggPrograms();
  harness::RunMatrix M = aggMatrix(Progs);

  profstore::ProfileAggregator Agg(3);
  harness::ParallelRunner Runner(8);
  std::vector<harness::ExperimentResult> Results = Runner.run(M, &Agg);

  profile::ProfileBundle Sequential;
  for (const harness::ExperimentResult &R : Results)
    profstore::mergeBundle(Sequential, R.Profiles);
  EXPECT_EQ(profile::serializeBundle(Agg.merged()),
            profile::serializeBundle(Sequential));
}

//===----------------------------------------------------------------------===//
// Convergence (small-scale pin of the bench_convergence_shards claim)
//===----------------------------------------------------------------------===//

TEST(ProfStoreConvergence, MergingShardsImprovesOverlap) {
  harness::Program P = build(workloads::workloadByName("jess")->Source);

  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&CallEdges};
  profile::CallEdgeProfile Exhaustive =
      testutil::run(P, 1, Perfect).Profiles.CallEdges;

  constexpr int NumShards = 8;
  std::vector<profile::ProfileBundle> Shards;
  for (int S = 0; S != NumShards; ++S) {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Clients = {&CallEdges};
    C.Engine.SampleInterval =
        static_cast<int64_t>(Exhaustive.total() / 40) + 1;
    C.Engine.RandomJitterPct = 40;
    C.Engine.RandomSeed = 0x415253 + static_cast<uint64_t>(S) * 977;
    Shards.push_back(testutil::run(P, 1, C).Profiles);
  }

  // Average single-shard overlap vs. the merge of all shards: merging
  // independent sampled runs must recover distribution mass no single
  // run saw.
  double SingleSum = 0.0;
  profile::ProfileBundle Merged;
  for (const profile::ProfileBundle &S : Shards) {
    SingleSum += profile::overlapPercent(Exhaustive, S.CallEdges);
    profstore::mergeBundle(Merged, S);
  }
  double Single = SingleSum / NumShards;
  double All = profile::overlapPercent(Exhaustive, Merged.CallEdges);
  EXPECT_GT(All, Single);
  EXPECT_GT(All, 90.0);
}

//===----------------------------------------------------------------------===//
// Encoding edges: empty sections, maximum-width varints, cap boundaries
//===----------------------------------------------------------------------===//

TEST(ProfStoreEdge, EachSectionAloneRoundTrips) {
  // One bundle per section kind: five of the six sections are empty in
  // each, so every empty-section encoding path is exercised.
  std::vector<profile::ProfileBundle> Bundles(6);
  Bundles[0].CallEdges.record(edge(1, 2, 3), 4);
  Bundles[1].FieldAccesses.record(2, 5);
  Bundles[2].BlockCounts.record(1, 2, 6);
  Bundles[3].Values.record(7, -8, 9);
  Bundles[4].Edges.record(1, 0, 2, 10);
  Bundles[5].Paths.record(3, 44, 11);
  for (size_t I = 0; I != Bundles.size(); ++I)
    EXPECT_EQ(roundTripped(Bundles[I]),
              profile::serializeBundle(Bundles[I]))
        << "only section " << I << " populated";
}

TEST(ProfStoreEdge, MaximumWidthVarintsRoundTrip) {
  // UINT64_MAX counts need the full 10-byte varint; INT_MIN/INT_MAX keys
  // and INT64_MIN/INT64_MAX values need the widest zigzag deltas (the
  // delta INT_MAX - INT_MIN wraps; zigzag must still round-trip it).
  profile::ProfileBundle B;
  B.CallEdges.record(edge(INT_MIN, INT_MIN, INT_MIN), UINT64_MAX);
  B.CallEdges.record(edge(INT_MAX, INT_MAX, INT_MAX), UINT64_MAX);
  B.FieldAccesses.record(3, UINT64_MAX);
  B.BlockCounts.record(INT_MIN, INT_MAX, UINT64_MAX);
  B.Values.record(UINT64_MAX, INT64_MIN, UINT64_MAX);
  B.Values.record(UINT64_MAX, INT64_MAX, 1);
  B.Edges.record(INT_MAX, INT_MIN, INT_MAX, UINT64_MAX);
  B.Paths.record(INT_MIN, INT64_MAX, UINT64_MAX);
  B.Paths.record(INT_MAX, INT64_MIN, 2);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreEdge, MaxOverflowCountRoundTrips) {
  profile::ProfileBundle B;
  B.Values.addOverflow(1, UINT64_MAX);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreEdge, FieldCountAboveInt32CapIsRejected) {
  // The field-access section resizes a vector to its claimed count, which
  // is an int32 quantity: a claim above INT32_MAX must be rejected, never
  // fed to resize(int).  (In a short stream the byte-plausibility check
  // fires first; the explicit INT32_MAX guard backstops multi-GiB streams
  // where it would not.)
  profile::ProfileBundle Empty;
  std::string Bytes = profstore::encodeBundle(Empty, 1);
  // Sections follow the 16-byte header in order: call edges (offset 16),
  // then field accesses (offset 17 in an empty bundle).
  std::string Bad = Bytes.substr(0, 17);
  uint64_t Claim = static_cast<uint64_t>(INT32_MAX) + 1;
  support::appendVarint(Bad, Claim);
  Bad.append(Bytes.substr(18, Bytes.size() - 18 - 4));
  Bad.append(4, '\0');
  restampCrc(Bad);
  profstore::DecodeResult R = profstore::decodeBundle(Bad);
  EXPECT_FALSE(R.Ok);
}

TEST(ProfStoreEdge, BundleAtFrameCapBoundaryEncodesPredictably) {
  // The collection service caps frames; a pusher needs encodeBundle's
  // size to be stable so "will it fit" can be answered before dialing.
  // Pin that growing a bundle grows the encoding monotonically and that
  // re-encoding the same bundle is byte-identical (canonical form).
  profile::ProfileBundle B;
  size_t PrevSize = profstore::encodeBundle(B, 7).size();
  for (int I = 0; I != 64; ++I) {
    B.CallEdges.record(edge(I * 1000, I, I * 7), UINT64_MAX - I);
    std::string Once = profstore::encodeBundle(B, 7);
    EXPECT_EQ(Once, profstore::encodeBundle(B, 7));
    EXPECT_GT(Once.size(), PrevSize);
    PrevSize = Once.size();
  }
}

//===----------------------------------------------------------------------===//
// Value-counter saturation (support::saturatingAdd in profile/Profiles.cpp)
//===----------------------------------------------------------------------===//

TEST(ProfStoreSaturation, ValueCountersSaturateAtCeiling) {
  profile::ValueProfile P;
  P.record(1, 7, UINT64_MAX - 2);
  P.record(1, 7, 100); // would wrap; must pin at the ceiling
  EXPECT_EQ(P.sites().at(1).at(7), UINT64_MAX);

  // Fill a second site to the cap, then pour mass into its overflow
  // bucket until that saturates too.
  for (size_t V = 0; V != profile::ValueProfile::MaxValuesPerSite; ++V)
    P.record(2, static_cast<int64_t>(V), 1);
  P.record(2, 9999, UINT64_MAX - 1);
  P.record(2, 9999, 5);
  EXPECT_EQ(P.overflow(2), UINT64_MAX);

  P.addOverflow(3, UINT64_MAX - 3);
  P.addOverflow(3, UINT64_MAX);
  EXPECT_EQ(P.overflow(3), UINT64_MAX);
  EXPECT_EQ(P.total(), UINT64_MAX);

  profile::ValueProfile Q;
  Q.add(4, -8, UINT64_MAX);
  Q.add(4, -8, UINT64_MAX);
  EXPECT_EQ(Q.sites().at(4).at(-8), UINT64_MAX);
}

TEST(ProfStoreSaturation, OverflowAndExactCollisionOnMergeSaturates) {
  // A session that saw value 5 exactly collides on merge with a session
  // where the same site's mass went to the overflow bucket; both the
  // exact bucket and the overflow bucket must saturate (not wrap), and
  // the result must not depend on merge order.
  profile::ProfileBundle A, B;
  A.Values.add(9, 5, UINT64_MAX - 100);
  A.Values.addOverflow(9, UINT64_MAX - 50);
  B.Values.add(9, 5, 200);
  B.Values.addOverflow(9, 200);

  profile::ProfileBundle AB = A, BA = B;
  profstore::mergeBundle(AB, B);
  profstore::mergeBundle(BA, A);
  EXPECT_EQ(profile::serializeBundle(AB), profile::serializeBundle(BA));
  EXPECT_EQ(AB.Values.sites().at(9).at(5), UINT64_MAX);
  EXPECT_EQ(AB.Values.overflow(9), UINT64_MAX);
  // Saturated counters still round-trip the v1 format bit-identically.
  EXPECT_EQ(roundTripped(AB), profile::serializeBundle(AB));
}

//===----------------------------------------------------------------------===//
// Bounded summaries (profstore/Summary.h)
//===----------------------------------------------------------------------===//

uint64_t nextRand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

/// Random bundle over a deliberately small key space so independently
/// seeded bundles collide on keys and merges exercise the count-summing
/// paths, not just disjoint unions.  At most 256 distinct call edges and
/// 41 distinct values per site, so K = 1024 never prunes.
profile::ProfileBundle randomSummaryInput(uint64_t Seed) {
  uint64_t S = Seed * 0x9E3779B97F4A7C15ull + 1;
  profile::ProfileBundle B;
  int Edges = 20 + static_cast<int>(nextRand(S) % 40);
  for (int I = 0; I != Edges; ++I) {
    int Caller = static_cast<int>(nextRand(S) % 8);
    int Site = static_cast<int>(nextRand(S) % 4);
    int Callee = static_cast<int>(nextRand(S) % 8);
    B.CallEdges.record(edge(Caller, Site, Callee),
                       1 + nextRand(S) % 1000);
  }
  int ValueOps = 30 + static_cast<int>(nextRand(S) % 50);
  for (int I = 0; I != ValueOps; ++I) {
    uint64_t Site = 1 + nextRand(S) % 5;
    int64_t Value = static_cast<int64_t>(nextRand(S) % 41) - 20;
    B.Values.record(Site, Value, 1 + nextRand(S) % 100);
  }
  B.Values.addOverflow(2, nextRand(S) % 64);
  return B;
}

std::string summaryBytes(const profstore::ProfileSummary &S) {
  return profstore::encodeSummary(S, 0xfeedULL);
}

/// The documented one-sided error contract, checked against the exact
/// fold: exact <= estimate <= exact + Floor for every key that exists,
/// Floor <= mass / (K + 1), and lossless side data (totals, overflow).
void expectSummaryBounds(const profstore::ProfileSummary &S,
                         const profile::ProfileBundle &Exact,
                         uint32_t K) {
  for (const auto &[Key, Count] : Exact.CallEdges.counts()) {
    uint64_t Est = S.CallEdges.estimate(Key);
    EXPECT_GE(Est, Count) << "under-count: edge " << Key.Caller << "/"
                          << Key.Site << "/" << Key.Callee;
    EXPECT_LE(Est, Count + S.CallEdges.TopK.Floor);
  }
  EXPECT_LE(S.CallEdges.TopK.Floor, S.CallEdges.Total / (K + 1));
  EXPECT_EQ(S.CallEdges.Total, Exact.CallEdges.total());
  for (const auto &[Site, Table] : Exact.Values.sites()) {
    auto It = S.Values.find(Site);
    ASSERT_NE(It, S.Values.end()) << "site " << Site << " missing";
    uint64_t SiteMass = 0;
    for (const auto &[Value, Count] : Table) {
      SiteMass += Count;
      uint64_t Est = It->second.SS.estimate(Value);
      EXPECT_GE(Est, Count)
          << "under-count: site " << Site << " value " << Value;
      EXPECT_LE(Est, Count + It->second.SS.Floor);
    }
    EXPECT_LE(It->second.SS.Floor, SiteMass / (K + 1));
    EXPECT_EQ(It->second.Overflow, Exact.Values.overflow(Site));
  }
}

TEST(SummaryAlgebra, MergeIsByteExactCommutative) {
  for (uint32_t K : {4u, 64u, 1024u}) {
    profstore::ProfileSummary SA =
        profstore::summarizeBundle(randomSummaryInput(1), K);
    profstore::ProfileSummary SB =
        profstore::summarizeBundle(randomSummaryInput(2), K);
    profstore::ProfileSummary AB = SA, BA = SB;
    ASSERT_TRUE(profstore::mergeSummary(AB, SB));
    ASSERT_TRUE(profstore::mergeSummary(BA, SA));
    EXPECT_EQ(summaryBytes(AB), summaryBytes(BA)) << "K = " << K;
  }
}

TEST(SummaryAlgebra, SketchMergeIsByteExactAssociative) {
  // The count-min cells and all scalar totals merge cell-wise, so even
  // at a K small enough that top-K pruning fires (where the retained
  // *list* is only semantically associative), the sketch half must be
  // byte-identical across association orders.
  const uint32_t K = 4;
  std::vector<profstore::ProfileSummary> S;
  for (uint64_t Seed = 1; Seed != 4; ++Seed)
    S.push_back(profstore::summarizeBundle(randomSummaryInput(Seed), K));
  profstore::ProfileSummary L = S[0], LR = S[1], R = S[0];
  ASSERT_TRUE(profstore::mergeSummary(L, S[1]));
  ASSERT_TRUE(profstore::mergeSummary(L, S[2]));
  ASSERT_TRUE(profstore::mergeSummary(LR, S[2]));
  ASSERT_TRUE(profstore::mergeSummary(R, LR));
  EXPECT_EQ(L.CallEdges.Cells, R.CallEdges.Cells);
  EXPECT_EQ(L.CallEdges.Total, R.CallEdges.Total);
  EXPECT_EQ(L.ValuesTotal, R.ValuesTotal);
}

TEST(SummaryAlgebra, MergeIsFullyByteExactWithoutPruning) {
  // K = 1024 exceeds every distinct-key count randomSummaryInput can
  // produce, so no prune triggers and the whole summary — not just the
  // sketch — is byte-exact associative AND equal to summarizing the
  // exact fold directly.
  const uint32_t K = 1024;
  profile::ProfileBundle Fold;
  std::vector<profstore::ProfileSummary> S;
  for (uint64_t Seed = 1; Seed != 4; ++Seed) {
    profile::ProfileBundle B = randomSummaryInput(Seed);
    profstore::mergeBundle(Fold, B);
    S.push_back(profstore::summarizeBundle(B, K));
  }
  profstore::ProfileSummary L = S[0], LR = S[1], R = S[0];
  ASSERT_TRUE(profstore::mergeSummary(L, S[1]));
  ASSERT_TRUE(profstore::mergeSummary(L, S[2]));
  ASSERT_TRUE(profstore::mergeSummary(LR, S[2]));
  ASSERT_TRUE(profstore::mergeSummary(R, LR));
  EXPECT_EQ(summaryBytes(L), summaryBytes(R));
  EXPECT_EQ(summaryBytes(L),
            summaryBytes(profstore::summarizeBundle(Fold, K)));
}

TEST(SummaryAlgebra, NeverUnderCountsForAnyMergeTreeAndK) {
  // The acceptance-gate property: for K in {4, 64, 1024} and arbitrary
  // merge trees over 8 summaries, every estimate is a one-sided upper
  // bound on the exact fold and the floor obeys mass / (K + 1).
  const int N = 8;
  profile::ProfileBundle Exact;
  std::vector<profile::ProfileBundle> Inputs;
  for (uint64_t Seed = 10; Seed != 10 + N; ++Seed) {
    Inputs.push_back(randomSummaryInput(Seed));
    profstore::mergeBundle(Exact, Inputs.back());
  }
  uint64_t Rng = 0xD1B54A32D192ED03ull;
  for (uint32_t K : {4u, 64u, 1024u}) {
    for (int Trial = 0; Trial != 5; ++Trial) {
      std::vector<profstore::ProfileSummary> Parts;
      for (const profile::ProfileBundle &B : Inputs)
        Parts.push_back(profstore::summarizeBundle(B, K));
      // Random binary merge tree: repeatedly merge a random pair until
      // one summary remains.
      while (Parts.size() > 1) {
        size_t A = nextRand(Rng) % Parts.size();
        size_t B = nextRand(Rng) % (Parts.size() - 1);
        if (B >= A)
          ++B;
        std::string Err;
        ASSERT_TRUE(profstore::mergeSummary(Parts[A], Parts[B], &Err))
            << Err;
        Parts.erase(Parts.begin() + static_cast<std::ptrdiff_t>(B));
      }
      expectSummaryBounds(Parts[0], Exact, K);
    }
  }
}

TEST(SummaryAlgebra, GeometryMismatchIsRejectedAndEmptyIsIdentity) {
  profstore::ProfileSummary S4 =
      profstore::summarizeBundle(randomSummaryInput(1), 4);
  profstore::ProfileSummary S64 =
      profstore::summarizeBundle(randomSummaryInput(1), 64);
  std::string Err;
  EXPECT_FALSE(profstore::mergeSummary(S4, S64, &Err));
  EXPECT_NE(Err.find("mismatch"), std::string::npos) << Err;

  profstore::ProfileSummary Empty;
  std::string Before = summaryBytes(S64);
  ASSERT_TRUE(profstore::mergeSummary(S64, Empty)); // right identity
  EXPECT_EQ(summaryBytes(S64), Before);
  ASSERT_TRUE(profstore::mergeSummary(Empty, S64)); // left: adopts
  EXPECT_EQ(summaryBytes(Empty), Before);
}

TEST(SummaryFormat, EncodeDecodeRoundTripsByteExactly) {
  profstore::ProfileSummary S =
      profstore::summarizeBundle(randomSummaryInput(3), 8);
  std::string Bytes = profstore::encodeSummary(S, 0x1234);
  profstore::SummaryDecodeResult R =
      profstore::decodeSummary(Bytes, 0x1234);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Fingerprint, 0x1234u);
  EXPECT_EQ(profstore::encodeSummary(R.Summary, R.Fingerprint), Bytes);

  profstore::SummaryDecodeResult Wrong =
      profstore::decodeSummary(Bytes, 0x9999);
  ASSERT_FALSE(Wrong.Ok);
  EXPECT_NE(Wrong.Error.find("fingerprint"), std::string::npos);
}

TEST(SummaryFormat, EveryByteFlipAndTruncationIsRejected) {
  profstore::ProfileSummary S =
      profstore::summarizeBundle(randomSummaryInput(4), 4);
  std::string Bytes = profstore::encodeSummary(S, 1);
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x40);
    EXPECT_FALSE(profstore::decodeSummary(Bad).Ok) << "flip at " << I;
  }
  for (size_t Len : {size_t(0), size_t(3), size_t(15), size_t(19),
                     Bytes.size() - 1})
    EXPECT_FALSE(profstore::decodeSummary(Bytes.substr(0, Len)).Ok)
        << "truncated to " << Len;
}

TEST(SummaryFormat, UnknownSectionsAreSkipped) {
  // A reader must skip section kinds it does not know — that is the
  // point of the tagged, length-prefixed v2 layout.  Splice a junk
  // section in front of the real ones and expect an identical decode.
  profstore::ProfileSummary S =
      profstore::summarizeBundle(randomSummaryInput(5), 8);
  std::string Bytes = profstore::encodeSummary(S, 1);
  // Layout: header(16) + varint sectionCount + sections + crc(4).  The
  // section count 2 encodes in one byte.
  ASSERT_EQ(Bytes[16], 2);
  std::string Patched = Bytes.substr(0, 16);
  Patched.push_back(3); // section count
  Patched.push_back(0x7f); // unknown kind
  support::appendVarint(Patched, 5);
  Patched.append("JUNK!", 5);
  Patched.append(Bytes.substr(17, Bytes.size() - 17 - 4));
  Patched.append(4, '\0');
  restampCrc(Patched);
  profstore::SummaryDecodeResult R = profstore::decodeSummary(Patched);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(profstore::encodeSummary(R.Summary, R.Fingerprint), Bytes);
}

TEST(SummaryFormat, SaveLoadRoundTripsRawAndCompressed) {
  profstore::ProfileSummary S =
      profstore::summarizeBundle(randomSummaryInput(6), 16);
  std::string Raw = ::testing::TempDir() + "summary_raw.arsp";
  std::string Comp = ::testing::TempDir() + "summary_comp.arsp";
  std::string Err;
  ASSERT_TRUE(profstore::saveSummary(Raw, S, 7, &Err, false)) << Err;
  ASSERT_TRUE(profstore::saveSummary(Comp, S, 7, &Err, true)) << Err;

  for (const std::string &Path : {Raw, Comp}) {
    profstore::SummaryDecodeResult R = profstore::loadSummary(Path, 7);
    ASSERT_TRUE(R.Ok) << Path << ": " << R.Error;
    EXPECT_EQ(profstore::encodeSummary(R.Summary, 7),
              profstore::encodeSummary(S, 7));
  }
  // The compressed flavor is a genuine ARSZ container on disk.
  std::ifstream In(Comp, std::ios::binary);
  std::string OnDisk((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
  EXPECT_TRUE(support::looksCompressed(OnDisk));
  std::remove(Raw.c_str());
  std::remove(Comp.c_str());
}

TEST(ProfileAggregator, DrainSummaryMatchesFoldAtLargeK) {
  // At a K no prune can reach, stripe-by-stripe summarize-and-merge must
  // be byte-identical to summarizing the exact drain — and must leave
  // the aggregator empty, same epoch semantics as drain().
  profstore::ProfileAggregator Agg(4);
  profile::ProfileBundle Exact;
  for (uint64_t I = 0; I != 8; ++I) {
    profile::ProfileBundle B = randomSummaryInput(100 + I);
    profstore::mergeBundle(Exact, B);
    Agg.flush(I, B);
  }
  profstore::ProfileSummary S = Agg.drainSummary(1024);
  EXPECT_EQ(summaryBytes(S),
            summaryBytes(profstore::summarizeBundle(Exact, 1024)));
  EXPECT_EQ(profile::serializeBundle(Agg.merged()),
            profile::serializeBundle(profile::ProfileBundle()));
  EXPECT_EQ(Agg.flushes(), 8u);
}

TEST(ProfileAggregator, DrainSummaryBoundsHoldAtSmallK) {
  profstore::ProfileAggregator Agg(3);
  profile::ProfileBundle Exact;
  for (uint64_t I = 0; I != 8; ++I) {
    profile::ProfileBundle B = randomSummaryInput(200 + I);
    profstore::mergeBundle(Exact, B);
    Agg.flush(I, B);
  }
  expectSummaryBounds(Agg.drainSummary(4), Exact, 4);
}

//===----------------------------------------------------------------------===//
// ARSZ block compression (support/Compress.h)
//===----------------------------------------------------------------------===//

std::string arszRoundTrip(const std::string &Raw) {
  std::string Framed = support::compressBlocks(Raw);
  EXPECT_TRUE(support::looksCompressed(Framed));
  std::string Out, Err;
  EXPECT_TRUE(support::decompressBlocks(Framed, &Out, &Err)) << Err;
  return Out;
}

TEST(ArszContainer, RoundTripsEmptyCompressibleAndIncompressible) {
  EXPECT_EQ(arszRoundTrip(""), "");

  // ~600 KiB of periodic text: spans three 256 KiB blocks and must
  // actually shrink.
  std::string Periodic;
  while (Periodic.size() < 600u << 10)
    Periodic += "callEdge 17 -> 23 count 4096; ";
  EXPECT_EQ(arszRoundTrip(Periodic), Periodic);
  EXPECT_LT(support::compressBlocks(Periodic).size(),
            Periodic.size() / 2);

  // ~300 KiB of PRNG bytes: incompressible, so blocks are stored
  // verbatim and the container adds only bounded framing overhead.
  std::string Noise(300u << 10, '\0');
  uint64_t S = 42;
  for (char &C : Noise)
    C = static_cast<char>(nextRand(S));
  EXPECT_EQ(arszRoundTrip(Noise), Noise);
  EXPECT_LT(support::compressBlocks(Noise).size(), Noise.size() + 1024);
}

TEST(ArszContainer, CorruptionAndTruncationAreDetected) {
  std::string Raw;
  uint64_t S = 7;
  for (int I = 0; I != 5000; ++I) {
    Raw += "block ";
    Raw += std::to_string(nextRand(S) % 1000);
  }
  std::string Framed = support::compressBlocks(Raw);
  // One bit flipped anywhere — magic, lengths, payload, CRC — must fail
  // decode; sample a spread of offsets instead of all of them.
  for (size_t I : {size_t(0), size_t(4), size_t(5), size_t(8),
                   Framed.size() / 2, Framed.size() - 2}) {
    std::string Bad = Framed;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x01);
    std::string Out, Err;
    EXPECT_FALSE(support::decompressBlocks(Bad, &Out, &Err))
        << "flip at " << I;
    EXPECT_FALSE(Err.empty());
  }
  // Note size 5 is absent: a bare "ARSZ" + version header is a valid
  // *empty* container (it is what compressBlocks("") shrinks to), so the
  // smallest must-fail truncation cuts into the first block header.
  for (size_t Len : {size_t(0), size_t(3), size_t(6), Framed.size() - 1}) {
    std::string Out, Err;
    EXPECT_FALSE(
        support::decompressBlocks(Framed.substr(0, Len), &Out, &Err))
        << "truncated to " << Len;
  }
  std::string Out, Err;
  EXPECT_FALSE(support::decompressBlocks(Raw, &Out, &Err)); // no magic
}

} // namespace
