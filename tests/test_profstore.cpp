//===- tests/test_profstore.cpp - profstore/ unit tests -------*- C++ -*-===//
///
/// The profile store's three contracts:
///
///   * IO: encode/decode round-trips bit-identically (compared through
///     serializeBundle) for every workload and sampling mode, and every
///     corruption — bad magic, truncation at any point, a flipped byte,
///     a wrong module fingerprint, trailing garbage — is rejected with a
///     diagnostic, never UB.
///   * Algebra: mergeBundle is a commutative, associative monoid with
///     the empty bundle as identity, and overflow buckets sum rather
///     than re-fold; scale/decay truncate per entry and drop zeros.
///   * Aggregation: the lock-striped ProfileAggregator fed by the
///     ParallelRunner yields byte-identical merged bundles for any
///     worker count and stripe width.  The ProfileAggregator suites run
///     under scripts/check.sh --tsan.
///
//===----------------------------------------------------------------------===//

#include "harness/ParallelRunner.h"
#include "instr/Clients.h"
#include "profile/Overlap.h"
#include "profile/Profiles.h"
#include "profstore/ProfileAggregator.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "support/Binary.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <climits>
#include <cstdint>
#include <cstdio>
#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;
instr::BlockCountInstrumentation BlockCounts;
instr::ValueProfileInstrumentation Values;
instr::EdgeCountInstrumentation EdgeCounts;
instr::PathProfileInstrumentation Paths;

std::vector<const instr::Instrumentation *> allClients() {
  return {&CallEdges, &FieldAccesses, &BlockCounts,
          &Values,    &EdgeCounts,    &Paths};
}

profile::CallEdgeKey edge(int Caller, int Site, int Callee) {
  profile::CallEdgeKey K;
  K.Caller = Caller;
  K.Site = Site;
  K.Callee = Callee;
  return K;
}

/// A synthetic bundle exercising every section, negative keys, a capped
/// value site with overflow, and a field vector with interior zeros.
profile::ProfileBundle syntheticBundle() {
  profile::ProfileBundle B;
  B.CallEdges.record(edge(-1, 0, 2), 7); // -1 = program entry
  B.CallEdges.record(edge(3, 9, 1), 1000000007);
  B.FieldAccesses.record(0, 3);
  B.FieldAccesses.record(5, 1); // slots 1..4 stay zero
  B.BlockCounts.record(2, 11, 42);
  B.BlockCounts.record(2, 12, 1);
  for (int V = 0; V != 40; ++V) // 8 past the cap -> overflow bucket
    B.Values.record(77, V - 20, static_cast<uint64_t>(V) + 1);
  B.Values.record(78, -9000000000LL, 2);
  B.Edges.record(1, 2, 3, 5);
  B.Paths.record(4, 0x12345678abcdefLL, 6);
  return B;
}

std::string roundTripped(const profile::ProfileBundle &B,
                         uint64_t Fingerprint = 0xfeedULL) {
  std::string Bytes = profstore::encodeBundle(B, Fingerprint);
  profstore::DecodeResult R = profstore::decodeBundle(Bytes, Fingerprint);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Fingerprint, Fingerprint);
  return profile::serializeBundle(R.Bundle);
}

//===----------------------------------------------------------------------===//
// Round-trip
//===----------------------------------------------------------------------===//

TEST(ProfStoreRoundTrip, EmptyBundle) {
  profile::ProfileBundle B;
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreRoundTrip, SyntheticBundleWithOverflowAndNegativeKeys) {
  profile::ProfileBundle B = syntheticBundle();
  ASSERT_EQ(B.Values.sites().at(77).size(),
            profile::ValueProfile::MaxValuesPerSite);
  ASSERT_GT(B.Values.overflow(77), 0u);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreRoundTrip, EmptyValueSiteSurvives) {
  // A site whose every event overflowed (or that was created empty) must
  // not vanish on a round-trip.
  profile::ProfileBundle B;
  B.Values.addOverflow(5, 9);
  B.Values.addOverflow(6, 0);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreRoundTrip, EveryWorkloadAndSamplingMode) {
  // Real bundles: every workload x {exhaustive, full-dup, no-dup}, all
  // six clients, so every section sees real shapes.
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    harness::Program P = build(W.Source);
    for (sampling::Mode Mode :
         {sampling::Mode::Exhaustive, sampling::Mode::FullDuplication,
          sampling::Mode::NoDuplication}) {
      harness::RunConfig C;
      C.Transform.M = Mode;
      C.Clients = allClients();
      if (Mode != sampling::Mode::Exhaustive)
        C.Engine.SampleInterval = 100;
      harness::ExperimentResult R = testutil::run(P, 1, C);
      EXPECT_EQ(roundTripped(R.Profiles),
                profile::serializeBundle(R.Profiles))
          << W.Name << " mode " << static_cast<int>(Mode);
    }
  }
}

//===----------------------------------------------------------------------===//
// Corruption
//===----------------------------------------------------------------------===//

/// Re-stamps the CRC32 trailer after a deliberate header patch, so the
/// test reaches the check behind the CRC.
void restampCrc(std::string &Bytes) {
  uint32_t Crc = support::crc32(Bytes.data(), Bytes.size() - 4);
  for (int I = 0; I != 4; ++I)
    Bytes[Bytes.size() - 4 + static_cast<size_t>(I)] =
        static_cast<char>((Crc >> (8 * I)) & 0xff);
}

TEST(ProfStoreCorruption, BadMagicIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  Bytes[0] = 'X';
  profstore::DecodeResult R = profstore::decodeBundle(Bytes);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("magic"), std::string::npos) << R.Error;
}

TEST(ProfStoreCorruption, EveryTruncationIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    profstore::DecodeResult R = profstore::decodeBundle(Bytes.substr(0, Len));
    EXPECT_FALSE(R.Ok) << "decoded a " << Len << "-byte prefix of "
                       << Bytes.size();
    EXPECT_FALSE(R.Error.empty());
  }
}

TEST(ProfStoreCorruption, EveryFlippedByteIsRejected) {
  // CRC32 catches any single-byte corruption anywhere in the file.
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x40);
    profstore::DecodeResult R = profstore::decodeBundle(Bad);
    EXPECT_FALSE(R.Ok) << "byte " << I;
  }
}

TEST(ProfStoreCorruption, TrailingBytesAreRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  Bytes.push_back('\0');
  EXPECT_FALSE(profstore::decodeBundle(Bytes).Ok);
}

TEST(ProfStoreCorruption, UnknownVersionIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 1);
  Bytes[4] = 99; // version u32 LE at offset 4
  restampCrc(Bytes);
  profstore::DecodeResult R = profstore::decodeBundle(Bytes);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("version"), std::string::npos) << R.Error;
}

TEST(ProfStoreCorruption, WrongFingerprintIsRejected) {
  std::string Bytes = profstore::encodeBundle(syntheticBundle(), 0xaaaa);
  EXPECT_TRUE(profstore::decodeBundle(Bytes, 0xaaaa).Ok);
  EXPECT_TRUE(profstore::decodeBundle(Bytes, 0).Ok) << "0 = don't check";
  profstore::DecodeResult R = profstore::decodeBundle(Bytes, 0xbbbb);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fingerprint"), std::string::npos) << R.Error;
}

TEST(ProfStoreCorruption, HugeClaimedCountIsRejectedWithoutAllocating) {
  // A section claiming more entries than the remaining bytes could hold
  // must fail plausibility, not attempt a giant allocation.
  profile::ProfileBundle Empty;
  std::string Bytes = profstore::encodeBundle(Empty, 1);
  // First section's count varint is at offset 16; 0xff..x5 encodes a
  // ~34-billion entry claim in 5 bytes.
  std::string Bad = Bytes.substr(0, 16);
  for (int I = 0; I != 4; ++I)
    Bad.push_back(static_cast<char>(0xff));
  Bad.push_back(0x7f);
  Bad.append(Bytes.substr(17, Bytes.size() - 17 - 4));
  Bad.append(4, '\0');
  restampCrc(Bad);
  EXPECT_FALSE(profstore::decodeBundle(Bad).Ok);
}

//===----------------------------------------------------------------------===//
// Save / load
//===----------------------------------------------------------------------===//

TEST(ProfStoreFile, SaveLoadRoundTrip) {
  std::string Path = testing::TempDir() + "ars_profstore_test.arsp";
  profile::ProfileBundle B = syntheticBundle();
  std::string Error;
  ASSERT_TRUE(profstore::saveBundle(Path, B, 0x12345, &Error)) << Error;
  profstore::DecodeResult R = profstore::loadBundle(Path, 0x12345);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(profile::serializeBundle(R.Bundle), profile::serializeBundle(B));
  std::remove(Path.c_str());
}

TEST(ProfStoreFile, MissingFileIsAnError) {
  profstore::DecodeResult R =
      profstore::loadBundle(testing::TempDir() + "ars_no_such_file.arsp");
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Merge algebra
//===----------------------------------------------------------------------===//

std::string bytes(const profile::ProfileBundle &B) {
  return profile::serializeBundle(B);
}

profile::ProfileBundle merged(const profile::ProfileBundle &A,
                              const profile::ProfileBundle &B) {
  profile::ProfileBundle Out;
  profstore::mergeBundle(Out, A);
  profstore::mergeBundle(Out, B);
  return Out;
}

TEST(ProfStoreMerge, SumsCounts) {
  profile::ProfileBundle A, B;
  A.CallEdges.record(edge(0, 1, 2), 3);
  B.CallEdges.record(edge(0, 1, 2), 4);
  B.CallEdges.record(edge(9, 9, 9), 1);
  A.FieldAccesses.record(1, 5);
  B.FieldAccesses.record(3, 7); // longer vector than A's
  profile::ProfileBundle M = merged(A, B);
  EXPECT_EQ(M.CallEdges.counts().at(edge(0, 1, 2)), 7u);
  EXPECT_EQ(M.CallEdges.counts().at(edge(9, 9, 9)), 1u);
  EXPECT_EQ(M.CallEdges.total(), 8u);
  ASSERT_EQ(M.FieldAccesses.counts().size(), 4u);
  EXPECT_EQ(M.FieldAccesses.counts()[1], 5u);
  EXPECT_EQ(M.FieldAccesses.counts()[3], 7u);
}

TEST(ProfStoreMerge, EmptyBundleIsIdentity) {
  profile::ProfileBundle A = syntheticBundle(), Empty;
  EXPECT_EQ(bytes(merged(A, Empty)), bytes(A));
  EXPECT_EQ(bytes(merged(Empty, A)), bytes(A));
}

TEST(ProfStoreMerge, CommutativeAndAssociative) {
  profile::ProfileBundle A = syntheticBundle();
  profile::ProfileBundle B;
  B.CallEdges.record(edge(3, 9, 1), 13); // overlaps a key of A
  for (int V = 0; V != 40; ++V)          // overflows the same site as A
    B.Values.record(77, V + 100, 2);
  B.FieldAccesses.record(9, 1);
  profile::ProfileBundle C;
  C.Values.addOverflow(77, 5);
  C.Paths.record(4, 0x12345678abcdefLL, 1);

  EXPECT_EQ(bytes(merged(A, B)), bytes(merged(B, A)));
  EXPECT_EQ(bytes(merged(merged(A, B), C)), bytes(merged(A, merged(B, C))));
}

TEST(ProfStoreMerge, OverflowBucketsSumWithoutRefolding) {
  profile::ProfileBundle A, B;
  for (int V = 0; V != 40; ++V) { // each run capped at 32 + overflow 8
    A.Values.record(7, V, 1);
    B.Values.record(7, V + 8, 1); // 24 shared values, 8 new each side
  }
  profile::ProfileBundle M = merged(A, B);
  // The merged table may exceed MaxValuesPerSite: the cap is collection-
  // time only.  40 distinct values survive (0..31 from A, 16..47 from B).
  EXPECT_EQ(M.Values.sites().at(7).size(), 40u);
  EXPECT_EQ(M.Values.overflow(7), 16u);
  EXPECT_EQ(M.Values.total(), A.Values.total() + B.Values.total());
}

//===----------------------------------------------------------------------===//
// Scale / decay
//===----------------------------------------------------------------------===//

TEST(ProfStoreScale, HalvesTruncatingAndDropsZeros) {
  profile::ProfileBundle B;
  B.CallEdges.record(edge(0, 0, 1), 10);
  B.CallEdges.record(edge(0, 0, 2), 1); // truncates to zero -> dropped
  B.FieldAccesses.record(2, 3);
  profstore::scaleBundle(B, 1, 2);
  EXPECT_EQ(B.CallEdges.counts().at(edge(0, 0, 1)), 5u);
  EXPECT_EQ(B.CallEdges.counts().count(edge(0, 0, 2)), 0u);
  EXPECT_EQ(B.CallEdges.total(), 5u);
  // The field vector keeps its size: zero slots mean "never touched".
  ASSERT_EQ(B.FieldAccesses.counts().size(), 3u);
  EXPECT_EQ(B.FieldAccesses.counts()[2], 1u);
}

TEST(ProfStoreScale, LargeCountsDoNotOverflow) {
  profile::ProfileBundle B;
  uint64_t Huge = 0xffffffffffffffffULL;
  B.CallEdges.record(edge(0, 0, 1), Huge);
  profstore::scaleBundle(B, 3, 4); // 128-bit intermediate
  // floor((2^64-1) * 3 / 4): truncation happens after the multiply.
  EXPECT_EQ(B.CallEdges.counts().at(edge(0, 0, 1)), 0xbfffffffffffffffULL);
}

TEST(ProfStoreScale, DecayKeepsPercent) {
  profile::ProfileBundle B;
  B.BlockCounts.record(0, 0, 200);
  profstore::decayBundle(B, 75);
  EXPECT_EQ(B.BlockCounts.counts().at({0, 0}), 150u);
  profstore::decayBundle(B, 100); // identity
  EXPECT_EQ(B.BlockCounts.counts().at({0, 0}), 150u);
}

TEST(ProfStoreScale, ScaledBundleRoundTrips) {
  profile::ProfileBundle B = syntheticBundle();
  profstore::scaleBundle(B, 1, 3);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

TEST(ProfStoreReport, OverlapOfIdenticalBundlesIs100) {
  profile::ProfileBundle B = syntheticBundle();
  profstore::BundleOverlap O = profstore::overlapBundle(B, B);
  EXPECT_DOUBLE_EQ(O.CallEdges, 100.0);
  EXPECT_DOUBLE_EQ(O.Values, 100.0);
  EXPECT_DOUBLE_EQ(O.Paths, 100.0);
}

TEST(ProfStoreReport, ReportAndDiffMentionEveryKind) {
  profile::ProfileBundle A = syntheticBundle(), B = syntheticBundle();
  B.CallEdges.record(edge(3, 9, 1), 500);
  std::string Report = profstore::reportBundle(A, 5);
  std::string Diff = profstore::diffReport(A, B, 5);
  for (const char *Kind : {"call-edges", "field-accesses", "block-counts",
                           "values", "edges", "paths"}) {
    EXPECT_NE(Report.find(Kind), std::string::npos) << Kind;
    EXPECT_NE(Diff.find(Kind), std::string::npos) << Kind;
  }
}

//===----------------------------------------------------------------------===//
// Sharded aggregation (runs under check.sh --tsan)
//===----------------------------------------------------------------------===//

/// A small matrix of sampled cells over two workloads.
harness::RunMatrix aggMatrix(const std::vector<harness::Program> &Progs) {
  harness::RunMatrix M;
  for (const harness::Program &P : Progs)
    for (int64_t Interval : {1, 100, 10000}) {
      harness::MatrixCell C;
      C.Prog = &P;
      C.ScaleArg = 1;
      C.Config.Transform.M = sampling::Mode::FullDuplication;
      C.Config.Clients = {&CallEdges, &FieldAccesses};
      C.Config.Engine.SampleInterval = Interval;
      M.Cells.push_back(C);
    }
  return M;
}

std::vector<harness::Program> aggPrograms() {
  std::vector<harness::Program> Progs;
  Progs.push_back(build(workloads::workloadByName("compress")->Source));
  Progs.push_back(build(workloads::workloadByName("db")->Source));
  return Progs;
}

TEST(ProfileAggregator, MergesFlushedBundles) {
  profstore::ProfileAggregator Agg(4);
  EXPECT_EQ(Agg.stripes(), 4);
  profile::ProfileBundle A, B;
  A.CallEdges.record(edge(0, 1, 2), 3);
  B.CallEdges.record(edge(0, 1, 2), 4);
  Agg.flush(0, A);
  Agg.flush(5, B); // different stripe (5 % 4)
  EXPECT_EQ(Agg.flushes(), 2u);
  profile::ProfileBundle M = Agg.merged();
  EXPECT_EQ(M.CallEdges.counts().at(edge(0, 1, 2)), 7u);
  Agg.clear();
  EXPECT_EQ(Agg.flushes(), 0u);
  EXPECT_TRUE(Agg.merged().CallEdges.empty());
}

TEST(ProfileAggregator, ByteIdenticalAcrossWorkerCounts) {
  std::vector<harness::Program> Progs = aggPrograms();
  harness::RunMatrix M = aggMatrix(Progs);

  std::string Reference;
  for (int Jobs : {1, 2, 8}) {
    profstore::ProfileAggregator Agg;
    harness::ParallelRunner Runner(Jobs);
    std::vector<harness::ExperimentResult> Results = Runner.run(M, &Agg);
    for (const harness::ExperimentResult &R : Results)
      ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
    EXPECT_EQ(Agg.flushes(), M.Cells.size());
    std::string Bytes = profile::serializeBundle(Agg.merged());
    if (Reference.empty())
      Reference = Bytes;
    else
      EXPECT_EQ(Bytes, Reference) << "jobs=" << Jobs;
  }
  EXPECT_FALSE(Reference.empty());
}

TEST(ProfileAggregator, StripeWidthDoesNotChangeTheMerge) {
  std::vector<harness::Program> Progs = aggPrograms();
  harness::RunMatrix M = aggMatrix(Progs);

  std::string Reference;
  for (int Stripes : {1, 3, 16}) {
    profstore::ProfileAggregator Agg(Stripes);
    harness::ParallelRunner Runner(4);
    Runner.run(M, &Agg);
    std::string Bytes = profile::serializeBundle(Agg.merged());
    if (Reference.empty())
      Reference = Bytes;
    else
      EXPECT_EQ(Bytes, Reference) << "stripes=" << Stripes;
  }
}

TEST(ProfileAggregator, MergedEqualsSequentialFold) {
  // The aggregator's result is exactly the fold of the per-cell bundles
  // in any order — pin it against a plain sequential merge.
  std::vector<harness::Program> Progs = aggPrograms();
  harness::RunMatrix M = aggMatrix(Progs);

  profstore::ProfileAggregator Agg(3);
  harness::ParallelRunner Runner(8);
  std::vector<harness::ExperimentResult> Results = Runner.run(M, &Agg);

  profile::ProfileBundle Sequential;
  for (const harness::ExperimentResult &R : Results)
    profstore::mergeBundle(Sequential, R.Profiles);
  EXPECT_EQ(profile::serializeBundle(Agg.merged()),
            profile::serializeBundle(Sequential));
}

//===----------------------------------------------------------------------===//
// Convergence (small-scale pin of the bench_convergence_shards claim)
//===----------------------------------------------------------------------===//

TEST(ProfStoreConvergence, MergingShardsImprovesOverlap) {
  harness::Program P = build(workloads::workloadByName("jess")->Source);

  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&CallEdges};
  profile::CallEdgeProfile Exhaustive =
      testutil::run(P, 1, Perfect).Profiles.CallEdges;

  constexpr int NumShards = 8;
  std::vector<profile::ProfileBundle> Shards;
  for (int S = 0; S != NumShards; ++S) {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::FullDuplication;
    C.Clients = {&CallEdges};
    C.Engine.SampleInterval =
        static_cast<int64_t>(Exhaustive.total() / 40) + 1;
    C.Engine.RandomJitterPct = 40;
    C.Engine.RandomSeed = 0x415253 + static_cast<uint64_t>(S) * 977;
    Shards.push_back(testutil::run(P, 1, C).Profiles);
  }

  // Average single-shard overlap vs. the merge of all shards: merging
  // independent sampled runs must recover distribution mass no single
  // run saw.
  double SingleSum = 0.0;
  profile::ProfileBundle Merged;
  for (const profile::ProfileBundle &S : Shards) {
    SingleSum += profile::overlapPercent(Exhaustive, S.CallEdges);
    profstore::mergeBundle(Merged, S);
  }
  double Single = SingleSum / NumShards;
  double All = profile::overlapPercent(Exhaustive, Merged.CallEdges);
  EXPECT_GT(All, Single);
  EXPECT_GT(All, 90.0);
}

//===----------------------------------------------------------------------===//
// Encoding edges: empty sections, maximum-width varints, cap boundaries
//===----------------------------------------------------------------------===//

TEST(ProfStoreEdge, EachSectionAloneRoundTrips) {
  // One bundle per section kind: five of the six sections are empty in
  // each, so every empty-section encoding path is exercised.
  std::vector<profile::ProfileBundle> Bundles(6);
  Bundles[0].CallEdges.record(edge(1, 2, 3), 4);
  Bundles[1].FieldAccesses.record(2, 5);
  Bundles[2].BlockCounts.record(1, 2, 6);
  Bundles[3].Values.record(7, -8, 9);
  Bundles[4].Edges.record(1, 0, 2, 10);
  Bundles[5].Paths.record(3, 44, 11);
  for (size_t I = 0; I != Bundles.size(); ++I)
    EXPECT_EQ(roundTripped(Bundles[I]),
              profile::serializeBundle(Bundles[I]))
        << "only section " << I << " populated";
}

TEST(ProfStoreEdge, MaximumWidthVarintsRoundTrip) {
  // UINT64_MAX counts need the full 10-byte varint; INT_MIN/INT_MAX keys
  // and INT64_MIN/INT64_MAX values need the widest zigzag deltas (the
  // delta INT_MAX - INT_MIN wraps; zigzag must still round-trip it).
  profile::ProfileBundle B;
  B.CallEdges.record(edge(INT_MIN, INT_MIN, INT_MIN), UINT64_MAX);
  B.CallEdges.record(edge(INT_MAX, INT_MAX, INT_MAX), UINT64_MAX);
  B.FieldAccesses.record(3, UINT64_MAX);
  B.BlockCounts.record(INT_MIN, INT_MAX, UINT64_MAX);
  B.Values.record(UINT64_MAX, INT64_MIN, UINT64_MAX);
  B.Values.record(UINT64_MAX, INT64_MAX, 1);
  B.Edges.record(INT_MAX, INT_MIN, INT_MAX, UINT64_MAX);
  B.Paths.record(INT_MIN, INT64_MAX, UINT64_MAX);
  B.Paths.record(INT_MAX, INT64_MIN, 2);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreEdge, MaxOverflowCountRoundTrips) {
  profile::ProfileBundle B;
  B.Values.addOverflow(1, UINT64_MAX);
  EXPECT_EQ(roundTripped(B), profile::serializeBundle(B));
}

TEST(ProfStoreEdge, FieldCountAboveInt32CapIsRejected) {
  // The field-access section resizes a vector to its claimed count, which
  // is an int32 quantity: a claim above INT32_MAX must be rejected, never
  // fed to resize(int).  (In a short stream the byte-plausibility check
  // fires first; the explicit INT32_MAX guard backstops multi-GiB streams
  // where it would not.)
  profile::ProfileBundle Empty;
  std::string Bytes = profstore::encodeBundle(Empty, 1);
  // Sections follow the 16-byte header in order: call edges (offset 16),
  // then field accesses (offset 17 in an empty bundle).
  std::string Bad = Bytes.substr(0, 17);
  uint64_t Claim = static_cast<uint64_t>(INT32_MAX) + 1;
  support::appendVarint(Bad, Claim);
  Bad.append(Bytes.substr(18, Bytes.size() - 18 - 4));
  Bad.append(4, '\0');
  restampCrc(Bad);
  profstore::DecodeResult R = profstore::decodeBundle(Bad);
  EXPECT_FALSE(R.Ok);
}

TEST(ProfStoreEdge, BundleAtFrameCapBoundaryEncodesPredictably) {
  // The collection service caps frames; a pusher needs encodeBundle's
  // size to be stable so "will it fit" can be answered before dialing.
  // Pin that growing a bundle grows the encoding monotonically and that
  // re-encoding the same bundle is byte-identical (canonical form).
  profile::ProfileBundle B;
  size_t PrevSize = profstore::encodeBundle(B, 7).size();
  for (int I = 0; I != 64; ++I) {
    B.CallEdges.record(edge(I * 1000, I, I * 7), UINT64_MAX - I);
    std::string Once = profstore::encodeBundle(B, 7);
    EXPECT_EQ(Once, profstore::encodeBundle(B, 7));
    EXPECT_GT(Once.size(), PrevSize);
    PrevSize = Once.size();
  }
}

} // namespace
