//===- tests/test_sampling.cpp - sampling runtime behaviour ---*- C++ -*-===//

#include "instr/Clients.h"
#include "profile/Overlap.h"
#include "sampling/Transform.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

harness::ExperimentResult runMode(const harness::Program &P, int64_t Scale,
                                  sampling::Mode M, int64_t Interval,
                                  harness::RunConfig Extra = {}) {
  Extra.Transform.M = M;
  Extra.Engine.SampleInterval = Interval;
  Extra.Clients = {&CallEdges, &FieldAccesses};
  return harness::runExperiment(P, Scale, Extra);
}

const workloads::Workload &compressWorkload() {
  return *workloads::workloadByName("compress");
}

TEST(Sampling, IntervalOneEqualsExhaustive) {
  harness::Program P = build(compressWorkload().Source);
  auto Perfect = runMode(P, 1, sampling::Mode::Exhaustive, 0);
  auto Sampled = runMode(P, 1, sampling::Mode::FullDuplication, 1);
  ASSERT_TRUE(Perfect.Stats.Ok && Sampled.Stats.Ok)
      << Perfect.Stats.Error << Sampled.Stats.Error;

  // At interval 1 every check fires, so all execution happens in the
  // duplicated code and the profile is exactly the perfect profile.
  EXPECT_EQ(Perfect.Profiles.FieldAccesses.total(),
            Sampled.Profiles.FieldAccesses.total());
  EXPECT_EQ(Perfect.Profiles.FieldAccesses.counts(),
            Sampled.Profiles.FieldAccesses.counts());
  EXPECT_EQ(Perfect.Profiles.CallEdges.total(),
            Sampled.Profiles.CallEdges.total());
  EXPECT_DOUBLE_EQ(
      profile::overlapPercent(Perfect.Profiles.CallEdges,
                              Sampled.Profiles.CallEdges),
      100.0);
  EXPECT_EQ(Sampled.Stats.CheckExecs, Sampled.Stats.SamplesTaken);
}

TEST(Sampling, NoDupIntervalOneEqualsExhaustive) {
  harness::Program P = build(compressWorkload().Source);
  auto Perfect = runMode(P, 1, sampling::Mode::Exhaustive, 0);
  auto Sampled = runMode(P, 1, sampling::Mode::NoDuplication, 1);
  ASSERT_TRUE(Perfect.Stats.Ok && Sampled.Stats.Ok);
  EXPECT_EQ(Perfect.Profiles.FieldAccesses.counts(),
            Sampled.Profiles.FieldAccesses.counts());
  EXPECT_EQ(Perfect.Profiles.CallEdges.counts(),
            Sampled.Profiles.CallEdges.counts());
}

class DifferentialWorkloadTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(DifferentialWorkloadTest, IntervalOneMatchesExhaustiveEverywhere) {
  // Differential check across the whole suite: at interval 1 every check
  // fires, so Full-Duplication and No-Duplication must reproduce the
  // exhaustive profile for both clients on every workload, not just the
  // handpicked ones above.
  const workloads::Workload *W = workloads::workloadByName(GetParam());
  ASSERT_NE(W, nullptr);
  harness::Program P = build(W->Source);
  auto Perfect = runMode(P, 1, sampling::Mode::Exhaustive, 0);
  ASSERT_TRUE(Perfect.Stats.Ok) << Perfect.Stats.Error;

  for (sampling::Mode M : {sampling::Mode::FullDuplication,
                           sampling::Mode::NoDuplication}) {
    auto Sampled = runMode(P, 1, M, 1);
    ASSERT_TRUE(Sampled.Stats.Ok)
        << sampling::modeName(M) << ": " << Sampled.Stats.Error;
    double CallOverlap = profile::overlapPercent(
        Perfect.Profiles.CallEdges, Sampled.Profiles.CallEdges);
    double FieldOverlap = profile::overlapPercent(
        Perfect.Profiles.FieldAccesses, Sampled.Profiles.FieldAccesses);
    if (std::string(W->Name) == "volano") {
      // volano spawns threads that spin-wait on globals; the number of
      // spin iterations depends on where yieldpoints fall, which the
      // transform moves, so its field-access counts legitimately differ
      // between configurations.  Overlap must still be near-perfect.
      EXPECT_GT(CallOverlap, 95.0) << sampling::modeName(M);
      EXPECT_GT(FieldOverlap, 90.0) << sampling::modeName(M);
    } else {
      EXPECT_DOUBLE_EQ(CallOverlap, 100.0) << sampling::modeName(M);
      EXPECT_DOUBLE_EQ(FieldOverlap, 100.0) << sampling::modeName(M);
      EXPECT_EQ(Perfect.Profiles.CallEdges.counts(),
                Sampled.Profiles.CallEdges.counts())
          << sampling::modeName(M);
      EXPECT_EQ(Perfect.Profiles.FieldAccesses.counts(),
                Sampled.Profiles.FieldAccesses.counts())
          << sampling::modeName(M);
    }
  }
}

std::vector<const char *> allWorkloadNames() {
  std::vector<const char *> Names;
  for (const workloads::Workload &W : workloads::allWorkloads())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DifferentialWorkloadTest,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &Info) {
                           std::string Name(Info.param);
                           for (char &C : Name)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(Sampling, SampleCountTracksInterval) {
  harness::Program P = build(compressWorkload().Source);
  auto R = runMode(P, 2, sampling::Mode::FullDuplication, 100);
  ASSERT_TRUE(R.Stats.Ok);
  double Expected =
      static_cast<double>(R.Stats.CheckExecs) / 100.0;
  EXPECT_GT(R.Stats.SamplesTaken, 0u);
  EXPECT_NEAR(static_cast<double>(R.Stats.SamplesTaken), Expected,
              Expected * 0.25 + 8);
}

TEST(Sampling, NeverFiresWithIntervalZero) {
  harness::Program P = build(compressWorkload().Source);
  auto R = runMode(P, 1, sampling::Mode::FullDuplication, 0);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_GT(R.Stats.CheckExecs, 0u);
  EXPECT_EQ(R.Stats.SamplesTaken, 0u);
  EXPECT_EQ(R.Profiles.FieldAccesses.total(), 0u);
  EXPECT_EQ(R.Profiles.CallEdges.total(), 0u);
}

TEST(Sampling, OverlapDegradesWithInterval) {
  harness::Program P = build(compressWorkload().Source);
  auto Perfect = runMode(P, 2, sampling::Mode::Exhaustive, 0);
  auto Fine = runMode(P, 2, sampling::Mode::FullDuplication, 10);
  auto Coarse = runMode(P, 2, sampling::Mode::FullDuplication, 50000);
  ASSERT_TRUE(Perfect.Stats.Ok && Fine.Stats.Ok && Coarse.Stats.Ok);

  double FineOverlap = profile::overlapPercent(
      Perfect.Profiles.FieldAccesses, Fine.Profiles.FieldAccesses);
  double CoarseOverlap = profile::overlapPercent(
      Perfect.Profiles.FieldAccesses, Coarse.Profiles.FieldAccesses);
  EXPECT_GT(FineOverlap, 90.0);
  EXPECT_GT(FineOverlap, CoarseOverlap);
}

TEST(Sampling, DeterministicProfiles) {
  // The paper: "running a deterministic application twice will result in
  // identical profiles".
  harness::Program P = build(compressWorkload().Source);
  auto R1 = runMode(P, 1, sampling::Mode::FullDuplication, 997);
  auto R2 = runMode(P, 1, sampling::Mode::FullDuplication, 997);
  ASSERT_TRUE(R1.Stats.Ok && R2.Stats.Ok);
  EXPECT_EQ(R1.Stats.SamplesTaken, R2.Stats.SamplesTaken);
  EXPECT_EQ(R1.Profiles.FieldAccesses.counts(),
            R2.Profiles.FieldAccesses.counts());
  EXPECT_EQ(R1.Profiles.CallEdges.counts(), R2.Profiles.CallEdges.counts());
}

TEST(Sampling, RandomJitterStillSamples) {
  harness::Program P = build(compressWorkload().Source);
  harness::RunConfig Extra;
  Extra.Engine.RandomJitterPct = 50;
  auto R = runMode(P, 1, sampling::Mode::FullDuplication, 200, Extra);
  ASSERT_TRUE(R.Stats.Ok);
  double Expected = static_cast<double>(R.Stats.CheckExecs) / 200.0;
  EXPECT_NEAR(static_cast<double>(R.Stats.SamplesTaken), Expected,
              Expected * 0.5 + 8);
  // Same seed -> same jittered schedule.
  auto R2 = runMode(P, 1, sampling::Mode::FullDuplication, 200, Extra);
  EXPECT_EQ(R.Stats.SamplesTaken, R2.Stats.SamplesTaken);
}

TEST(Sampling, PerThreadCountersOnMultithreadedWorkload) {
  harness::Program P = build(workloads::workloadByName("volano")->Source);
  harness::RunConfig Extra;
  Extra.Engine.PerThreadCounters = true;
  auto R = runMode(P, 1, sampling::Mode::FullDuplication, 50, Extra);
  ASSERT_TRUE(R.Stats.Ok) << R.Stats.Error;
  EXPECT_GT(R.Stats.SamplesTaken, 0u);
  EXPECT_GT(R.Profiles.CallEdges.total(), 0u);
  EXPECT_GT(R.Profiles.FieldAccesses.total(), 0u);
}

TEST(Sampling, TimerTriggerSamples) {
  harness::Program P = build(compressWorkload().Source);
  harness::RunConfig Extra;
  Extra.Engine.Trigger = runtime::TriggerKind::Timer;
  Extra.Engine.TimerPeriodCycles = 20000;
  auto R = runMode(P, 1, sampling::Mode::FullDuplication, 0, Extra);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_GT(R.Stats.TimerFires, 0u);
  EXPECT_GT(R.Stats.SamplesTaken, 0u);
  EXPECT_LE(R.Stats.SamplesTaken, R.Stats.TimerFires)
      << "each timer fire yields at most one sample";
}

TEST(Sampling, TimerLessAccurateThanCounter) {
  // The section 4.6 experiment in miniature: field-access accuracy under a
  // matched-rate timer trigger is below the counter trigger's.
  harness::Program P = build(compressWorkload().Source);
  auto Perfect = runMode(P, 2, sampling::Mode::Exhaustive, 0);

  harness::RunConfig TimerCfg;
  TimerCfg.Engine.Trigger = runtime::TriggerKind::Timer;
  TimerCfg.Engine.TimerPeriodCycles = 60000;
  auto Timer =
      runMode(P, 2, sampling::Mode::FullDuplication, 0, TimerCfg);
  ASSERT_TRUE(Timer.Stats.Ok);

  // Match the number of samples with a counter interval.
  uint64_t Samples = Timer.Stats.SamplesTaken;
  ASSERT_GT(Samples, 10u);
  int64_t MatchedInterval = static_cast<int64_t>(
      Timer.Stats.CheckExecs / Samples);
  auto Counter = runMode(P, 2, sampling::Mode::FullDuplication,
                         MatchedInterval);
  ASSERT_TRUE(Counter.Stats.Ok);

  double TimerOverlap = profile::overlapPercent(
      Perfect.Profiles.FieldAccesses, Timer.Profiles.FieldAccesses);
  double CounterOverlap = profile::overlapPercent(
      Perfect.Profiles.FieldAccesses, Counter.Profiles.FieldAccesses);
  EXPECT_GE(CounterOverlap, TimerOverlap - 2.0)
      << "counter trigger should not be clearly worse";
}

TEST(Sampling, BurstProfilesConsecutiveIterations) {
  harness::Program P = build(compressWorkload().Source);
  harness::RunConfig Extra;
  Extra.Transform.BurstLength = 16;
  auto Plain = runMode(P, 1, sampling::Mode::FullDuplication, 5000);
  auto Burst = runMode(P, 1, sampling::Mode::FullDuplication, 5000, Extra);
  ASSERT_TRUE(Plain.Stats.Ok && Burst.Stats.Ok);
  EXPECT_GT(Burst.Stats.BurstIterations, 0u);
  // A burst keeps execution in duplicated code for ~16 iterations per
  // sample, so it collects more probe events per sample.
  EXPECT_GT(Burst.Profiles.FieldAccesses.total(),
            Plain.Profiles.FieldAccesses.total());
}

TEST(Sampling, GuardedProbesSampleProportionally) {
  harness::Program P = build(compressWorkload().Source);
  auto R = runMode(P, 1, sampling::Mode::NoDuplication, 50);
  ASSERT_TRUE(R.Stats.Ok);
  EXPECT_GT(R.Stats.GuardedProbeExecs, 0u);
  double Expected =
      static_cast<double>(R.Stats.GuardedProbeExecs) / 50.0;
  EXPECT_NEAR(static_cast<double>(R.Stats.GuardedProbesTaken), Expected,
              Expected * 0.25 + 8);
  EXPECT_EQ(R.Stats.ProbeBodiesRun, R.Stats.GuardedProbesTaken);
}

TEST(Sampling, CheckCostMatchesModel) {
  // Framework overhead of checks-only configurations is exactly the check
  // (and yieldpoint bookkeeping) cost: measure a pure loop.
  harness::Program P = build(R"(
    int main(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
      return acc;
    }
  )");
  auto Base = harness::runBaseline(P, 10000);
  harness::RunConfig C;
  C.Transform.M = sampling::Mode::FullDuplication;
  auto Full = harness::runExperiment(P, 10000, C);
  ASSERT_TRUE(Base.Stats.Ok && Full.Stats.Ok);
  // Each iteration adds one 5-cycle check on the backedge; entry adds one.
  uint64_t Extra = Full.Stats.Cycles - Base.Stats.Cycles;
  EXPECT_EQ(Extra, 5u * (10000 + 1));
}

} // namespace
