//===- tests/test_assembler.cpp - .bca assembler tests --------*- C++ -*-===//
///
/// Assembler round trips, error reporting, and — the reason the assembler
/// exists — irreducible control flow pushed through the whole framework
/// (the MiniJ frontend only emits reducible CFGs).
///
//===----------------------------------------------------------------------===//

#include "analysis/Backedges.h"
#include "bytecode/Assembler.h"
#include "bytecode/Disassembler.h"
#include "instr/Clients.h"
#include "ir/IRVerifier.h"
#include "lowering/Cleanup.h"
#include "lowering/Lowering.h"
#include "runtime/Engine.h"
#include "sampling/Property1.h"
#include "sampling/Transform.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;

/// Runs an assembled module's main(Arg) and returns the stats.
runtime::RunStats runAssembled(const bytecode::Module &M,
                               std::vector<ir::IRFunction> Funcs,
                               int64_t Arg,
                               runtime::EngineConfig Config = {}) {
  instr::ProbeRegistry Registry;
  runtime::ExecutionEngine Engine(M, Funcs, Registry, Config);
  return Engine.run(M.functionByName("main")->FuncId, {Arg});
}

TEST(Assembler, AssemblesArithmetic) {
  auto R = bytecode::assemble(R"(
    # doubles its argument and adds one
    func main(int) -> int
      load 0
      iconst 2
      mul
      iconst 1
      add
      retval
    end
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
  auto L = lowering::lowerModule(R.M);
  ASSERT_TRUE(L.Ok) << L.Error;
  EXPECT_EQ(runAssembled(R.M, std::move(L.Funcs), 20).MainResult, 41);
}

TEST(Assembler, ClassesGlobalsAndCalls) {
  auto R = bytecode::assemble(R"(
    class Pair { int a; int b; }
    global int total

    func bump(int) -> int locals(ref)
      new Pair
      store 1
      load 1
      load 0
      putfield Pair.a
      load 1
      getfield Pair.a
      getglobal total
      add
      putglobal total
      getglobal total
      retval
    end

    func main(int) -> int locals(int)
      iconst 0
      store 1
    loop:
      load 1
      load 0
      cmpge
      brif done
      load 1
      call bump
      pop
      load 1
      iconst 1
      add
      store 1
      br loop
    done:
      getglobal total
      retval
    end
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
  auto L = lowering::lowerModule(R.M);
  ASSERT_TRUE(L.Ok) << L.Error;
  // total = 0 + 1 + ... + 9 = 45
  EXPECT_EQ(runAssembled(R.M, std::move(L.Funcs), 10).MainResult, 45);
}

TEST(Assembler, ForwardCallReferences) {
  auto R = bytecode::assemble(R"(
    func main(int) -> int
      load 0
      call later
      retval
    end
    func later(int) -> int
      load 0
      iconst 3
      add
      retval
    end
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
}

TEST(Assembler, ReportsErrors) {
  EXPECT_FALSE(bytecode::assemble("func main(int) -> int\n  retval\n").Ok)
      << "missing end";
  EXPECT_FALSE(
      bytecode::assemble("func f() -> void\n  bogus\n  ret\nend").Ok);
  EXPECT_FALSE(
      bytecode::assemble("func f() -> void\n  br nowhere\n  ret\nend").Ok);
  EXPECT_FALSE(
      bytecode::assemble("func f() -> void\n  call ghost\n  ret\nend").Ok);
  auto Underflow = bytecode::assemble("func f() -> void\n  pop\n  ret\nend");
  EXPECT_FALSE(Underflow.Ok) << "verifier runs on assembled code";
  EXPECT_NE(Underflow.Error.find("verifier"), std::string::npos);
}

TEST(Assembler, DisassemblerRoundTripNames) {
  auto R = bytecode::assemble(R"(
    class C { int v; }
    global int g
    func main(int) -> int locals(ref)
      new C
      store 1
      load 1
      iconst 5
      putfield C.v
      load 1
      getfield C.v
      retval
    end
  )");
  ASSERT_TRUE(R.Ok) << R.Error;
  std::string Text = bytecode::disassembleModule(R.M);
  EXPECT_NE(Text.find("putfield C.v"), std::string::npos);
  EXPECT_NE(Text.find("class C"), std::string::npos);
  EXPECT_NE(Text.find("global int g"), std::string::npos);
}

/// An irreducible loop: entry branches into the middle of a cycle
/// (A <-> B) depending on the argument, so neither header dominates the
/// other.  The cycle runs down a counter, bouncing between A and B.
const char *IrreducibleSrc = R"(
  global int steps
  func main(int) -> int locals(int)
    load 0
    store 1
    load 0
    iconst 1
    and
    brif enterB
    br enterA
  enterA:
  A:
    getglobal steps
    iconst 1
    add
    putglobal steps
    load 1
    iconst 1
    sub
    store 1
    load 1
    iconst 0
    cmple
    brif done
    br B
  enterB:
    br B
  B:
    getglobal steps
    iconst 2
    add
    putglobal steps
    load 1
    iconst 1
    sub
    store 1
    load 1
    iconst 0
    cmple
    brif done
    br A
  done:
    getglobal steps
    retval
  end
)";

TEST(Irreducible, FlaggedByAnalysis) {
  auto R = bytecode::assemble(IrreducibleSrc);
  ASSERT_TRUE(R.Ok) << R.Error;
  auto L = lowering::lowerModule(R.M);
  ASSERT_TRUE(L.Ok) << L.Error;
  lowering::cleanupFunction(L.Funcs[0]);
  analysis::BackedgeInfo BI = analysis::findBackedges(L.Funcs[0]);
  EXPECT_FALSE(BI.Reducible);
  EXPECT_GE(BI.Backedges.size(), 1u)
      << "retreating edges conservatively treated as backedges";
}

TEST(Irreducible, TransformsPreserveSemantics) {
  auto R = bytecode::assemble(IrreducibleSrc);
  ASSERT_TRUE(R.Ok) << R.Error;
  auto L = lowering::lowerModule(R.M);
  ASSERT_TRUE(L.Ok) << L.Error;
  for (ir::IRFunction &F : L.Funcs)
    lowering::cleanupFunction(F);

  // Baseline result.
  sampling::Options Base;
  Base.M = sampling::Mode::Baseline;
  std::vector<ir::IRFunction> BaseFuncs = L.Funcs;
  instr::FunctionPlan Empty;
  Empty.FuncId = 0;
  sampling::transformFunction(BaseFuncs[0], Empty, Base);
  int64_t Expected = runAssembled(R.M, BaseFuncs, 101).MainResult;
  EXPECT_GT(Expected, 0);

  instr::FieldAccessInstrumentation FieldAccesses;
  instr::CallEdgeInstrumentation CallEdges;
  for (sampling::Mode M :
       {sampling::Mode::Exhaustive, sampling::Mode::FullDuplication,
        sampling::Mode::PartialDuplication,
        sampling::Mode::NoDuplication}) {
    for (int64_t Interval : {int64_t(1), int64_t(7)}) {
      std::vector<ir::IRFunction> Funcs = L.Funcs;
      instr::ProbeRegistry Registry;
      sampling::Options Opts;
      Opts.M = M;
      instr::FunctionPlan Plan = instr::planFunction(
          Funcs[0], R.M, {&FieldAccesses, &CallEdges}, Registry);
      sampling::TransformResult TR =
          sampling::transformFunction(Funcs[0], Plan, Opts);
      EXPECT_TRUE(ir::verifyFunction(Funcs[0]).empty())
          << sampling::modeName(M);
      std::string Bad =
          sampling::checkProperty1Static(Funcs[0], TR, Opts);
      EXPECT_TRUE(Bad.empty()) << sampling::modeName(M) << ": " << Bad;

      runtime::EngineConfig Config;
      Config.SampleInterval = Interval;
      instr::ProbeRegistry &Probes = Registry;
      runtime::ExecutionEngine Engine(R.M, Funcs, Probes, Config);
      runtime::RunStats Stats =
          Engine.run(R.M.functionByName("main")->FuncId, {101});
      ASSERT_TRUE(Stats.Ok) << sampling::modeName(M) << ": " << Stats.Error;
      EXPECT_EQ(Stats.MainResult, Expected)
          << sampling::modeName(M) << " interval " << Interval;
    }
  }
}

} // namespace
