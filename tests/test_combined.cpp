//===- tests/test_combined.cpp - Combined-mode tests (section 3.2) -------===//
///
/// The combined Partial+No-Duplication variant: blocks dense in
/// instrumentation are duplicated, sparse probes are guarded in place.
///
//===----------------------------------------------------------------------===//

#include "instr/Clients.h"
#include "ir/IRVerifier.h"
#include "sampling/Property1.h"
#include "workloads/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using ars::testutil::build;

instr::CallEdgeInstrumentation CallEdges;
instr::FieldAccessInstrumentation FieldAccesses;

const char *MixedSrc = R"(
  class S { int a; int b; int c; }
  int tick(S s, int x) {
    // Dense block: many field accesses.
    s.a = (s.a + x) & 65535;
    s.b = (s.b ^ s.a) & 65535;
    s.c = (s.c + s.b) & 65535;
    s.a = (s.a + s.c) & 65535;
    return s.a;
  }
  int main(int n) {
    S s = new S;
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      acc = (acc + tick(s, i)) & 65535;
      if (i % 7 == 0) { s.b = (s.b + 1) & 65535; } // sparse access
    }
    return acc + s.a + s.b + s.c;
  }
)";

TEST(Combined, SplitsDenseAndSparseProbes) {
  harness::Program P = build(MixedSrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::Combined;
  Opts.CombineThreshold = 3;
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Opts);
  int Guarded = 0, Plain = 0;
  for (const ir::IRFunction &F : IP.Funcs) {
    Guarded += sampling::countOps(F, ir::IROp::GuardedProbe);
    Plain += sampling::countOps(F, ir::IROp::Probe);
    EXPECT_TRUE(ir::verifyFunction(F).empty());
  }
  EXPECT_GT(Guarded, 0) << "sparse probes guarded in place";
  EXPECT_GT(Plain, 0) << "dense probes duplicated";
}

TEST(Combined, StaticInvariantsHold) {
  harness::Program P = build(MixedSrc);
  sampling::Options Opts;
  Opts.M = sampling::Mode::Combined;
  harness::InstrumentedProgram IP =
      harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Opts);
  for (size_t F = 0; F != IP.Funcs.size(); ++F) {
    std::string Bad = sampling::checkProperty1Static(IP.Funcs[F],
                                                     IP.Transforms[F], Opts);
    EXPECT_TRUE(Bad.empty()) << Bad;
  }
}

TEST(Combined, SmallerThanFullDuplication) {
  harness::Program P = build(MixedSrc);
  sampling::Options Full, Comb;
  Full.M = sampling::Mode::FullDuplication;
  Comb.M = sampling::Mode::Combined;
  auto FullIP =
      harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Full);
  auto CombIP =
      harness::instrumentProgram(P, {&CallEdges, &FieldAccesses}, Comb);
  EXPECT_LT(CombIP.CodeSizeAfter, FullIP.CodeSizeAfter);
}

TEST(Combined, ThresholdExtremesDegenerate) {
  harness::Program P = build(MixedSrc);
  // Threshold 1: everything dense => equals Partial-Duplication.
  sampling::Options AllDense;
  AllDense.M = sampling::Mode::Combined;
  AllDense.CombineThreshold = 1;
  auto DenseIP =
      harness::instrumentProgram(P, {&FieldAccesses}, AllDense);
  sampling::Options Part;
  Part.M = sampling::Mode::PartialDuplication;
  auto PartIP = harness::instrumentProgram(P, {&FieldAccesses}, Part);
  EXPECT_EQ(DenseIP.CodeSizeAfter, PartIP.CodeSizeAfter);

  // Huge threshold: nothing dense => no Probe ops at all.
  sampling::Options AllSparse;
  AllSparse.M = sampling::Mode::Combined;
  AllSparse.CombineThreshold = 1000;
  auto SparseIP =
      harness::instrumentProgram(P, {&FieldAccesses}, AllSparse);
  int Plain = 0;
  for (const ir::IRFunction &F : SparseIP.Funcs)
    Plain += sampling::countOps(F, ir::IROp::Probe);
  EXPECT_EQ(Plain, 0);
}

class CombinedWorkloadTest
    : public ::testing::TestWithParam<workloads::Workload> {};

TEST_P(CombinedWorkloadTest, PreservesSemanticsAndSamples) {
  const workloads::Workload &W = GetParam();
  harness::Program P = build(W.Source);
  auto Base = harness::runBaseline(P, W.SmokeScale);
  ASSERT_TRUE(Base.Stats.Ok);

  for (int64_t Interval : {int64_t(1), int64_t(53)}) {
    harness::RunConfig C;
    C.Transform.M = sampling::Mode::Combined;
    C.Engine.SampleInterval = Interval;
    C.Clients = {&CallEdges, &FieldAccesses};
    auto R = harness::runExperiment(P, W.SmokeScale, C);
    ASSERT_TRUE(R.Stats.Ok) << W.Name << ": " << R.Stats.Error;
    EXPECT_EQ(R.Stats.MainResult, Base.Stats.MainResult) << W.Name;
    EXPECT_GT(R.samplesTaken(), 0u) << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CombinedWorkloadTest,
    ::testing::ValuesIn(workloads::allWorkloads()),
    [](const ::testing::TestParamInfo<workloads::Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(Combined, ProfilesProportionalAtIntervalOne) {
  harness::Program P = build(MixedSrc);
  harness::RunConfig Perfect;
  Perfect.Transform.M = sampling::Mode::Exhaustive;
  Perfect.Clients = {&CallEdges, &FieldAccesses};
  auto PR = harness::runExperiment(P, 4000, Perfect);
  ASSERT_TRUE(PR.Stats.Ok);

  harness::RunConfig C;
  C.Transform.M = sampling::Mode::Combined;
  C.Engine.SampleInterval = 1;
  C.Clients = {&CallEdges, &FieldAccesses};
  auto R = harness::runExperiment(P, 4000, C);
  ASSERT_TRUE(R.Stats.Ok);
  // At interval 1 both the dense (duplicated) and sparse (guarded) probes
  // fire on every occurrence except sparse events inside sampled bursts;
  // totals must agree to within a fraction of a percent.
  double Ratio = static_cast<double>(R.Profiles.FieldAccesses.total()) /
                 static_cast<double>(PR.Profiles.FieldAccesses.total());
  EXPECT_GT(Ratio, 0.95);
  EXPECT_LE(Ratio, 1.0);
}

} // namespace
