//===- tests/test_lowering.cpp - lowering/ unit tests ---------*- C++ -*-===//

#include "bytecode/Builder.h"
#include "ir/IRPrinter.h"
#include "ir/IRVerifier.h"
#include "lowering/Cleanup.h"
#include "lowering/Lowering.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

namespace {

using namespace ars;
using namespace ars::bytecode;

TEST(Lowering, StraightLineFunction) {
  Module M;
  int F = M.addFunction("f", {Type::I64, Type::I64}, Type::I64);
  Builder B(M.functionAt(F));
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::Load, 1);
  B.emit(Opcode::Add);
  B.emit(Opcode::RetVal);
  ASSERT_TRUE(B.finish());

  auto R = lowering::lowerFunction(M, M.functionAt(F));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Func.numBlocks(), 1);
  EXPECT_TRUE(ir::verifyFunction(R.Func).empty());
  // locals 0,1 = params; stack base = 2.
  const ir::BasicBlock &BB = R.Func.Blocks[0];
  ASSERT_EQ(BB.Insts.size(), 4u);
  EXPECT_EQ(BB.Insts[0].Op, ir::IROp::Mov);
  EXPECT_EQ(BB.Insts[0].Dst, 2);
  EXPECT_EQ(BB.Insts[2].Op, ir::IROp::Add);
  EXPECT_EQ(BB.Insts[2].Dst, 2);
  EXPECT_EQ(BB.Insts[3].Op, ir::IROp::RetVal);
}

TEST(Lowering, BranchesSplitBlocks) {
  Module M;
  int F = M.addFunction("f", {Type::I64}, Type::I64);
  Builder B(M.functionAt(F));
  Label Else = B.makeLabel(), End = B.makeLabel();
  B.emit(Opcode::Load, 0);
  B.emitBranch(Opcode::BrIf, Else);
  B.emit(Opcode::IConst, 10);
  B.emitBranch(Opcode::Br, End);
  B.bind(Else);
  B.emit(Opcode::IConst, 20);
  B.bind(End);
  B.emit(Opcode::RetVal);
  ASSERT_TRUE(B.finish());

  auto R = lowering::lowerFunction(M, M.functionAt(F));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Func.numBlocks(), 4);
  EXPECT_TRUE(ir::verifyFunction(R.Func).empty());
  // Both join paths must deposit the value in the same stack register.
  int Reg = -1;
  for (const ir::BasicBlock &BB : R.Func.Blocks)
    for (const ir::IRInst &I : BB.Insts)
      if (I.Op == ir::IROp::MovImm) {
        if (Reg < 0)
          Reg = I.Dst;
        EXPECT_EQ(I.Dst, Reg);
      }
}

TEST(Lowering, CallSiteIdsAreBytecodeOffsets) {
  Module M;
  int Callee = M.addFunction("callee", {Type::I64}, Type::I64);
  (void)Callee;
  int F = M.addFunction("caller", {Type::I64}, Type::I64);
  Builder B(M.functionAt(F));
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::Call, 0); // offset 1
  B.emit(Opcode::Load, 0);
  B.emit(Opcode::Call, 0); // offset 3
  B.emit(Opcode::Add);
  B.emit(Opcode::RetVal);
  ASSERT_TRUE(B.finish());

  auto R = lowering::lowerFunction(M, M.functionAt(F));
  ASSERT_TRUE(R.Ok) << R.Error;
  std::vector<int> Sites;
  for (const ir::BasicBlock &BB : R.Func.Blocks)
    for (const ir::IRInst &I : BB.Insts)
      if (I.Op == ir::IROp::Call)
        Sites.push_back(I.Aux);
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_EQ(Sites[0], 1);
  EXPECT_EQ(Sites[1], 3);
}

TEST(Lowering, RejectsUnverifiableInput) {
  Module M;
  int F = M.addFunction("f", {}, Type::Void);
  M.functionAt(F).Code.emplace_back(Opcode::Pop);
  M.functionAt(F).Code.emplace_back(Opcode::Ret);
  auto R = lowering::lowerFunction(M, M.functionAt(F));
  EXPECT_FALSE(R.Ok);
}

TEST(Cleanup, RemovesUnreachableBlocks) {
  ir::IRFunction F;
  F.Name = "f";
  F.NumRegs = 1;
  int B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock();
  (void)B1;
  ir::IRInst J(ir::IROp::Jump);
  J.Imm = B2;
  F.Blocks[B0].Insts.push_back(J);
  F.Blocks[B1].Insts.push_back(ir::IRInst(ir::IROp::Ret)); // unreachable
  F.Blocks[B2].Insts.push_back(ir::IRInst(ir::IROp::Ret));
  EXPECT_EQ(lowering::removeUnreachableBlocks(F), 1);
  EXPECT_EQ(F.numBlocks(), 2);
  EXPECT_TRUE(ir::verifyFunction(F).empty());
  EXPECT_EQ(F.Blocks[0].terminator().Imm, 1) << "target renumbered";
}

TEST(Cleanup, ThreadsTrivialJumpChains) {
  ir::IRFunction F;
  F.Name = "f";
  F.NumRegs = 1;
  int B0 = F.addBlock(), B1 = F.addBlock(), B2 = F.addBlock(),
      B3 = F.addBlock();
  auto jumpTo = [&](int From, int To) {
    ir::IRInst J(ir::IROp::Jump);
    J.Imm = To;
    F.Blocks[From].Insts.push_back(J);
  };
  jumpTo(B0, B1); // B1 and B2 are trivial hops
  jumpTo(B1, B2);
  jumpTo(B2, B3);
  F.Blocks[B3].Insts.push_back(ir::IRInst(ir::IROp::Ret));
  EXPECT_GT(lowering::threadTrivialJumps(F), 0);
  EXPECT_EQ(F.Blocks[B0].terminator().Imm, B3);
  lowering::cleanupFunction(F);
  EXPECT_EQ(F.numBlocks(), 2);
}

TEST(Cleanup, LeavesEmptyLoopAlone) {
  // A self-loop of a trivial jump must not hang the threading pass.
  ir::IRFunction F;
  F.Name = "f";
  F.NumRegs = 1;
  int B0 = F.addBlock(), B1 = F.addBlock();
  ir::IRInst J0(ir::IROp::Jump);
  J0.Imm = B1;
  F.Blocks[B0].Insts.push_back(J0);
  ir::IRInst J1(ir::IROp::Jump);
  J1.Imm = B1; // self loop
  F.Blocks[B1].Insts.push_back(J1);
  lowering::threadTrivialJumps(F);
  EXPECT_TRUE(ir::verifyFunction(F).empty());
}

TEST(Lowering, WholePipelineVerifies) {
  harness::Program P = ars::testutil::build(R"(
    class C { int v; }
    int work(C c, int[] a, int i) {
      c.v = c.v + a[i % len(a)];
      return c.v;
    }
    int main(int n) {
      C c = new C;
      int[] a = new int[16];
      for (int i = 0; i < 16; i = i + 1) { a[i] = i * i; }
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) { acc = acc + work(c, a, i); }
      return acc;
    }
  )");
  for (const ir::IRFunction &F : P.Funcs)
    EXPECT_TRUE(ir::verifyFunction(F).empty()) << ir::printFunction(F);
  EXPECT_GT(ars::testutil::run(P, 10).Stats.MainResult, 0);
}

TEST(IRPrinter, MentionsBlocksAndOps) {
  harness::Program P = ars::testutil::build(
      "int main(int n) { int a = 0; while (n > 0) { a = a + n; n = n - 1; } "
      "return a; }");
  std::string Text = ir::printFunction(P.Funcs[0]);
  EXPECT_NE(Text.find("irfunc main"), std::string::npos);
  EXPECT_NE(Text.find("bb0:"), std::string::npos);
  EXPECT_NE(Text.find("branch"), std::string::npos);
  EXPECT_NE(Text.find("retval"), std::string::npos);
}

} // namespace
