#!/usr/bin/env bash
# Full verification: configure, build, test, and regenerate every
# table/figure of the paper.  Usage: scripts/check.sh [--quick] [--tsan]
# [--asan]
#
# --tsan builds a separate tree (build-tsan) with -DARS_SANITIZE=thread
# and runs the thread-heavy test suites -- the parallel harness's
# determinism and cache tests, and the profile collection server's
# concurrent-pusher suites -- under ThreadSanitizer, then exits.
# --asan builds build-asan with -DARS_SANITIZE=address and runs the FULL
# test suite under AddressSanitizer (the wire-corruption sweeps above
# all: a heap overflow in frame or bundle decoding must fail loudly).
# Neither touches the regular build directory.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARG=""
TSAN=0
ASAN=0
for arg in "$@"; do
  case "$arg" in
    --quick) SCALE_ARG="--quick" ;;
    --tsan)  TSAN=1 ;;
    --asan)  ASAN=1 ;;
    *) echo "usage: $0 [--quick] [--tsan] [--asan]" >&2; exit 2 ;;
  esac
done

if [[ "$TSAN" == 1 ]]; then
  cmake -B build-tsan -G Ninja -DARS_SANITIZE=thread
  cmake --build build-tsan --target ars_tests
  # The suites that exercise threads: the parallel harness (pool, cache,
  # determinism), the multithreaded-workload sampling tests, the
  # random-program sweep that drives runMatrix on every seed, and the
  # collection service (concurrent pushers, server lifecycle, loopback
  # transport).
  build-tsan/tests/ars_tests \
    --gtest_filter='ThreadPool.*:TransformCache.*:ParallelRunner.*:ProfileAggregator.*:ProfServe*:Sampling.*:AllWorkloads/*:Seeds/Property1RandomTest.*'
  exit 0
fi

if [[ "$ASAN" == 1 ]]; then
  cmake -B build-asan -G Ninja -DARS_SANITIZE=address
  cmake --build build-asan --target ars_tests
  build-asan/tests/ars_tests
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Every bench understands --jobs (bench::Context): fan matrix cells out
# across the cores.  Fail fast, naming the binary -- a wildcard loop that
# dies mid-way otherwise leaves no hint which bench broke.
JOBS="$(nproc)"
for b in build/bench/bench_table* build/bench/bench_fig* \
         build/bench/bench_ablation_variants \
         build/bench/bench_profile_store \
         build/bench/bench_profserve \
         build/bench/bench_convergence_shards; do
  if ! "$b" ${SCALE_ARG} --jobs "${JOBS}"; then
    echo "FAILED: $b" >&2
    exit 1
  fi
done
build/bench/bench_micro_framework --benchmark_min_time=0.05
