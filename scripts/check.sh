#!/usr/bin/env bash
# Full verification: configure, build, test, and regenerate every
# table/figure of the paper.  Usage: scripts/check.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARG=""
if [[ "${1:-}" == "--quick" ]]; then
  SCALE_ARG="--quick"
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_table* build/bench/bench_fig* \
         build/bench/bench_ablation_variants; do
  "$b" ${SCALE_ARG}
done
build/bench/bench_micro_framework --benchmark_min_time=0.05
