#!/usr/bin/env bash
# Full verification: configure, build, test, and regenerate every
# table/figure of the paper through `arsc bench`, which also emits the
# telemetry suite document build/bench-out/BENCH_<sha>.json.
#
# Usage: scripts/check.sh [--quick] [--jobs=<n>] [--tsan] [--asan] [--ubsan]
#
# --tsan builds a separate tree (build-tsan) with -DARS_SANITIZE=thread
# and runs the thread-heavy test suites -- the parallel harness's
# determinism and cache tests, and the profile collection server's
# concurrent-pusher suites -- under ThreadSanitizer, then exits.
# --asan builds build-asan with -DARS_SANITIZE=address and runs the FULL
# test suite under AddressSanitizer (the wire-corruption sweeps above
# all: a heap overflow in frame or bundle decoding must fail loudly).
# --ubsan builds build-ubsan with -DARS_SANITIZE=undefined and runs the
# full test suite under UndefinedBehaviorSanitizer (halt-on-error, so a
# silent overflow cannot scroll past as a warning).
# None of the sanitizer trees touch the regular build directory.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  echo "usage: $0 [--quick] [--jobs=<n>] [--tsan] [--asan] [--ubsan]" >&2
  exit 2
}

QUICK=0
TSAN=0
ASAN=0
UBSAN=0
JOBS="$(nproc)"
for arg in "$@"; do
  case "$arg" in
    --quick)  QUICK=1 ;;
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    --tsan)   TSAN=1 ;;
    --asan)   ASAN=1 ;;
    --ubsan)  UBSAN=1 ;;
    -h|--help) usage ;;
    *) echo "$0: unknown argument '$arg'" >&2; usage ;;
  esac
done
case "$JOBS" in
  ''|*[!0-9]*) echo "$0: --jobs expects a positive integer" >&2; usage ;;
esac

if [[ "$TSAN" == 1 ]]; then
  cmake -B build-tsan -G Ninja -DARS_SANITIZE=thread
  cmake --build build-tsan --target ars_tests
  # The suites that exercise threads: the parallel harness (pool, cache,
  # determinism), the multithreaded-workload sampling tests, the
  # random-program sweep that drives runMatrix on every seed, and the
  # collection service (concurrent pushers, server lifecycle, loopback
  # transport).
  # transport).  EventLoop* pins the reactor (slow-loris reaping, write
  # backpressure, mid-frame shutdown) and Relay* the aggregation trees.
  build-tsan/tests/ars_tests \
    --gtest_filter='ThreadPool.*:TransformCache.*:ParallelRunner.*:ProfileAggregator.*:ProfServe*:EventLoop*:Relay*:FaultInject*:Chaos.*:Shmem.*:Policy*:Sampling.*:Wal.*:Failover.*:AllWorkloads/*:Seeds/Property1RandomTest.*'
  exit 0
fi

if [[ "$ASAN" == 1 ]]; then
  cmake -B build-asan -G Ninja -DARS_SANITIZE=address
  cmake --build build-asan --target ars_tests
  cmake --build build-asan --target arsc
  build-asan/tests/ars_tests
  # The seeded chaos sweep under ASan: injected bit flips, torn writes,
  # and mid-frame drops must never turn into an out-of-bounds read while
  # the server decodes what survived.
  build-asan/tools/arsc chaos --fault-seed-sweep=32 --quick
  build-asan/tools/arsc chaos --fault-seed-sweep=32 --quick --topology=relay
  build-asan/tools/arsc chaos --fault-seed-sweep=16 --quick --transport=shm
  # Policy push-down under fire: corrupt POLICY frames must degrade
  # clients to their static interval, never crash the decode path.
  build-asan/tools/arsc chaos --fault-seed-sweep=16 --quick --policy
  build-asan/tools/arsc chaos --fault-seed-sweep=16 --quick --policy \
    --topology=relay
  # Crash/restart recovery under ASan: journal replay parses segments a
  # previous incarnation wrote (possibly torn mid-frame) — exactly the
  # kind of reader a heap overflow hides in.
  build-asan/tools/arsc chaos --crash --fault-seed-sweep=16 --quick \
    --workdir=/tmp/arsc-asan-crash
  exit 0
fi

if [[ "$UBSAN" == 1 ]]; then
  cmake -B build-ubsan -G Ninja -DARS_SANITIZE=undefined
  cmake --build build-ubsan --target ars_tests
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    build-ubsan/tests/ars_tests
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Seeded chaos sweep: the collection stack under fault injection must
# merge byte-identically to the fault-free serial fold for every seed,
# and every seed must replay the exact same fault trace.  The relay
# topology repeats the sweep with an aggregation relay between the
# clients and the root, faults injected on both hops.
build/tools/arsc chaos --fault-seed-sweep=32 --quick
build/tools/arsc chaos --fault-seed-sweep=32 --quick --topology=relay
# The same sweep over the shared-memory ring transport: torn cells and
# abandoned segments instead of dropped TCP frames.
build/tools/arsc chaos --fault-seed-sweep=16 --quick --transport=shm
# Policy push-down under fire (DESIGN.md §13): faulted POLICY frames
# may only ever degrade a client to its static interval — the final
# aggregate must stay byte-identical to the policy-free serial fold,
# and frame counts and applied table versions must replay per seed.
build/tools/arsc chaos --fault-seed-sweep=16 --quick --policy
build/tools/arsc chaos --fault-seed-sweep=16 --quick --policy --topology=relay
# Crash/restart mode (DESIGN.md §15): kill the root mid-sweep, restart
# it over its snapshot + write-ahead journal, and demand the recovered
# aggregate still fold byte-identically.  Kill timing is wall-clock, so
# crash runs are checked once per seed rather than trace-replayed.
build/tools/arsc chaos --crash --fault-seed-sweep=16 --quick \
  --workdir=/tmp/arsc-crash-direct
build/tools/arsc chaos --crash --fault-seed-sweep=16 --quick \
  --topology=relay --workdir=/tmp/arsc-crash-relay
build/tools/arsc chaos --crash --fault-seed-sweep=16 --quick \
  --transport=shm --workdir=/tmp/arsc-crash-shm

# The bench matrix runs through `arsc bench`: it discovers every
# build/bench/bench_* binary, fans each bench's matrix cells out across
# --jobs workers, fails (exit 1) if ANY bench fails -- no wildcard loop
# to die half-way silently -- and merges the per-bench telemetry into
# build/bench-out/BENCH_<sha>.json.
BENCH_ARGS=("--jobs=${JOBS}" --out-dir=build/bench-out)
if [[ "$QUICK" == 1 ]]; then
  BENCH_ARGS+=(--quick)
fi
build/tools/arsc bench "${BENCH_ARGS[@]}"
