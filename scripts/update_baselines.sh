#!/usr/bin/env bash
# Regenerate the committed perf baselines the CI gates compare against
# (`arsc bench compare`):
#
#   bench/baselines/quick.json  --quick scale (15%), gated on every PR
#   bench/baselines/full.json   full scale (100%), gated by the nightly
#                               workflow (skipped with QUICK_ONLY=1)
#
# Reproducibility: the simulated-cycle engine is deterministic (fixed
# seeds baked into the benches), so every "sim" metric in the baseline is
# bit-identical on any machine and for any --jobs. Host wall-clock
# metrics do vary by machine; they are recorded for the record but the
# gate skips them against a committed baseline unless --gate-host is
# passed.  --jobs and --reps are still pinned here so regenerations are
# comparable like-for-like.
#
# Usage: scripts/update_baselines.sh
#        (JOBS=<n> REPS=<n> QUICK_ONLY=1 to override)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-2}"
REPS="${REPS:-5}"
QUICK_ONLY="${QUICK_ONLY:-0}"

cmake -B build -G Ninja
cmake --build build

mkdir -p bench/baselines

OUT=build/bench-baseline
rm -rf "$OUT"
build/tools/arsc bench --quick "--jobs=${JOBS}" "--reps=${REPS}" \
  --out-dir="$OUT" --sha=baseline
cp "$OUT/BENCH_baseline.json" bench/baselines/quick.json
echo "wrote bench/baselines/quick.json"

# Sanity: a fresh run must gate green against the baseline it just wrote.
build/tools/perfgate bench/baselines/quick.json "$OUT/BENCH_baseline.json"

if [[ "$QUICK_ONLY" != 1 ]]; then
  OUT=build/bench-baseline-full
  rm -rf "$OUT"
  build/tools/arsc bench "--jobs=${JOBS}" "--reps=${REPS}" \
    --out-dir="$OUT" --sha=baseline
  cp "$OUT/BENCH_baseline.json" bench/baselines/full.json
  echo "wrote bench/baselines/full.json"
  build/tools/perfgate bench/baselines/full.json "$OUT/BENCH_baseline.json"
fi
