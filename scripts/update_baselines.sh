#!/usr/bin/env bash
# Regenerate bench/baselines/quick.json, the committed baseline that the
# CI perf gate compares every run against (`arsc bench compare`).
#
# Reproducibility: the simulated-cycle engine is deterministic (fixed
# seeds baked into the benches), so every "sim" metric in the baseline is
# bit-identical on any machine and for any --jobs. Host wall-clock
# metrics do vary by machine; they are recorded for the record but the
# gate skips them against a committed baseline unless --gate-host is
# passed.  --jobs and --reps are still pinned here so regenerations are
# comparable like-for-like.
#
# Usage: scripts/update_baselines.sh   (JOBS=<n> REPS=<n> to override)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-2}"
REPS="${REPS:-5}"

cmake -B build -G Ninja
cmake --build build

OUT=build/bench-baseline
rm -rf "$OUT"
build/tools/arsc bench --quick "--jobs=${JOBS}" "--reps=${REPS}" \
  --out-dir="$OUT" --sha=baseline

mkdir -p bench/baselines
cp "$OUT/BENCH_baseline.json" bench/baselines/quick.json
echo "wrote bench/baselines/quick.json"

# Sanity: a fresh run must gate green against the baseline it just wrote.
build/tools/perfgate bench/baselines/quick.json "$OUT/BENCH_baseline.json"
