//===- instr/Instrumentation.h - Client interface -------------*- C++ -*-===//
///
/// \file
/// The interface instrumentation clients implement.  A client inspects one
/// function's IR and decides where its probes go; the sampling framework
/// decides *when* those probes run.  This mirrors the paper's separation of
/// concerns: "implementors of instrumentation techniques ... concentrate on
/// developing new techniques quickly and correctly, rather than focusing on
/// minimizing overhead".
///
//===----------------------------------------------------------------------===//

#ifndef ARS_INSTR_INSTRUMENTATION_H
#define ARS_INSTR_INSTRUMENTATION_H

#include "instr/Probe.h"
#include "ir/IR.h"

#include <memory>
#include <vector>

namespace ars {
namespace bytecode {
class Module;
}

namespace instr {

/// Base class for instrumentation clients.
class Instrumentation {
public:
  virtual ~Instrumentation();

  /// Client name, for reports.
  virtual const char *name() const = 0;

  /// Plans probes for \p F: registers them in \p Registry and anchors them
  /// in \p Plan (whose FuncId is already set).  \p M provides symbol
  /// information such as the global-to-field-id map.
  virtual void plan(const ir::IRFunction &F, const bytecode::Module &M,
                    ProbeRegistry &Registry, FunctionPlan &Plan) const = 0;
};

/// Convenience: runs every client in \p Clients over \p F, producing one
/// merged plan (the paper: "multiple types of instrumentation can be used
/// simultaneously ... while recompiling the method only once").
FunctionPlan
planFunction(const ir::IRFunction &F, const bytecode::Module &M,
             const std::vector<const Instrumentation *> &Clients,
             ProbeRegistry &Registry);

} // namespace instr
} // namespace ars

#endif // ARS_INSTR_INSTRUMENTATION_H
