//===- instr/Clients.cpp --------------------------------------*- C++ -*-===//

#include "instr/Clients.h"

#include "analysis/Backedges.h"
#include "bytecode/Module.h"

#include <algorithm>

namespace ars {
namespace instr {

using ir::IRInst;
using ir::IROp;

void CallEdgeInstrumentation::plan(const ir::IRFunction &F,
                                   const bytecode::Module &M,
                                   ProbeRegistry &Registry,
                                   FunctionPlan &Plan) const {
  (void)M;
  ProbeEntry P;
  P.Kind = ProbeKind::CallEdge;
  P.CostCycles = CostCycles;
  P.FuncId = F.FuncId;
  int Id = Registry.add(P);

  ProbeAnchor Anchor;
  Anchor.Kind = AnchorKind::MethodEntry;
  Anchor.Block = F.Entry;
  Anchor.InstIdx = 0;
  Anchor.ProbeId = Id;
  Plan.Anchors.push_back(Anchor);
}

void FieldAccessInstrumentation::plan(const ir::IRFunction &F,
                                      const bytecode::Module &M,
                                      ProbeRegistry &Registry,
                                      FunctionPlan &Plan) const {
  for (const ir::BasicBlock &BB : F.Blocks) {
    for (size_t I = 0; I != BB.Insts.size(); ++I) {
      const IRInst &Inst = BB.Insts[I];
      int FieldId = -1;
      switch (Inst.Op) {
      case IROp::GetField:
      case IROp::PutField:
        FieldId = static_cast<int>(Inst.Imm);
        break;
      case IROp::GetGlobal:
      case IROp::PutGlobal:
        FieldId = M.globalAt(static_cast<int>(Inst.Imm)).FieldId;
        break;
      default:
        continue;
      }
      ProbeEntry P;
      P.Kind = ProbeKind::FieldAccess;
      P.CostCycles = CostCycles;
      P.FuncId = F.FuncId;
      P.Payload = FieldId;
      int Id = Registry.add(P);

      ProbeAnchor Anchor;
      Anchor.Kind = AnchorKind::BeforeInst;
      Anchor.Block = BB.Id;
      Anchor.InstIdx = static_cast<int>(I);
      Anchor.ProbeId = Id;
      Plan.Anchors.push_back(Anchor);
    }
  }
}

void BlockCountInstrumentation::plan(const ir::IRFunction &F,
                                     const bytecode::Module &M,
                                     ProbeRegistry &Registry,
                                     FunctionPlan &Plan) const {
  (void)M;
  int Step = Stride < 1 ? 1 : Stride;
  for (const ir::BasicBlock &BB : F.Blocks) {
    if (BB.Id % Step != 0)
      continue;
    ProbeEntry P;
    P.Kind = ProbeKind::BlockCount;
    P.CostCycles = CostCycles;
    P.FuncId = F.FuncId;
    P.Payload = BB.Id;
    int Id = Registry.add(P);

    ProbeAnchor Anchor;
    Anchor.Kind = AnchorKind::BeforeInst;
    Anchor.Block = BB.Id;
    Anchor.InstIdx = 0;
    Anchor.ProbeId = Id;
    Plan.Anchors.push_back(Anchor);
  }
}

void EdgeCountInstrumentation::plan(const ir::IRFunction &F,
                                    const bytecode::Module &M,
                                    ProbeRegistry &Registry,
                                    FunctionPlan &Plan) const {
  (void)M;
  analysis::CFG Graph(F);
  for (int B = 0; B != Graph.numBlocks(); ++B) {
    if (!Graph.isReachable(B))
      continue;
    for (int S : Graph.successors(B)) {
      ProbeEntry P;
      P.Kind = ProbeKind::EdgeCount;
      P.CostCycles = CostCycles;
      P.FuncId = F.FuncId;
      P.Payload = B;
      P.Payload2 = S;
      int Id = Registry.add(P);

      ProbeAnchor Anchor;
      Anchor.Kind = AnchorKind::OnEdge;
      Anchor.Block = B;
      Anchor.InstIdx = S;
      Anchor.ProbeId = Id;
      Plan.Anchors.push_back(Anchor);
    }
  }
}

void PathProfileInstrumentation::plan(const ir::IRFunction &F,
                                      const bytecode::Module &M,
                                      ProbeRegistry &Registry,
                                      FunctionPlan &Plan) const {
  (void)M;
  analysis::CFG Graph(F);
  analysis::DominatorTree DT(Graph);
  analysis::BackedgeInfo BI = analysis::findBackedges(Graph, DT);
  int N = Graph.numBlocks();

  // DAG successors: CFG successors minus backedges.
  auto dagSuccs = [&](int B) {
    std::vector<int> Out;
    for (int S : Graph.successors(B))
      if (!BI.isBackedge(B, S))
        Out.push_back(S);
    return Out;
  };

  // NumPaths in reverse topological order.  Reverse postorder is a
  // topological order of the DAG, so walk it backwards.
  std::vector<int64_t> NumPaths(N, 0);
  const std::vector<int> &Rpo = Graph.reversePostorder();
  for (auto It = Rpo.rbegin(); It != Rpo.rend(); ++It) {
    int B = *It;
    std::vector<int> Succs = dagSuccs(B);
    if (Succs.empty()) {
      NumPaths[B] = 1;
      continue;
    }
    int64_t Sum = 0;
    for (int S : Succs)
      Sum += NumPaths[S];
    NumPaths[B] = std::min<int64_t>(Sum, MaxPaths);
  }
  if (!Graph.isReachable(F.Entry) || NumPaths[F.Entry] >= MaxPaths)
    return; // too many static paths; skip this function

  auto addProbe = [&](ProbeKind Kind, int Payload) {
    ProbeEntry P;
    P.Kind = Kind;
    P.CostCycles = CostCycles;
    P.FuncId = F.FuncId;
    P.Payload = Payload;
    return Registry.add(P);
  };

  // Reset at method entry.
  ProbeAnchor Reset;
  Reset.Kind = AnchorKind::MethodEntry;
  Reset.Block = F.Entry;
  Reset.InstIdx = 0;
  Reset.ProbeId = addProbe(ProbeKind::PathReset, 0);
  Plan.Anchors.push_back(Reset);

  // Increments on DAG edges (Ball-Larus edge values).
  for (int B : Rpo) {
    int64_t Running = 0;
    for (int S : dagSuccs(B)) {
      if (Running > 0) {
        ProbeAnchor A;
        A.Kind = AnchorKind::OnEdge;
        A.Block = B;
        A.InstIdx = S;
        A.ProbeId =
            addProbe(ProbeKind::PathAdd, static_cast<int>(Running));
        Plan.Anchors.push_back(A);
      }
      Running += NumPaths[S];
    }
  }

  // Record-and-reset on backedges...
  for (const analysis::Edge &E : BI.Backedges) {
    ProbeAnchor A;
    A.Kind = AnchorKind::OnEdge;
    A.Block = E.From;
    A.InstIdx = E.To;
    A.ProbeId = addProbe(ProbeKind::PathEnd, 0);
    Plan.Anchors.push_back(A);
  }
  // ... and before every return.
  for (const ir::BasicBlock &BB : F.Blocks) {
    const IRInst &Term = BB.terminator();
    if (Term.Op != IROp::Ret && Term.Op != IROp::RetVal)
      continue;
    if (!Graph.isReachable(BB.Id))
      continue;
    ProbeAnchor A;
    A.Kind = AnchorKind::BeforeInst;
    A.Block = BB.Id;
    A.InstIdx = static_cast<int>(BB.Insts.size()) - 1;
    A.ProbeId = addProbe(ProbeKind::PathEnd, 0);
    Plan.Anchors.push_back(A);
  }
}

void ValueProfileInstrumentation::plan(const ir::IRFunction &F,
                                       const bytecode::Module &M,
                                       ProbeRegistry &Registry,
                                       FunctionPlan &Plan) const {
  (void)M;
  for (const ir::BasicBlock &BB : F.Blocks) {
    for (size_t I = 0; I != BB.Insts.size(); ++I) {
      const IRInst &Inst = BB.Insts[I];
      if (Inst.Op != IROp::Call || Inst.Args.empty())
        continue;
      ProbeEntry P;
      P.Kind = ProbeKind::Value;
      P.CostCycles = CostCycles;
      P.FuncId = F.FuncId;
      P.SiteId = (static_cast<uint64_t>(F.FuncId) << 32) |
                 static_cast<uint32_t>(Inst.Aux);
      P.ValueReg = Inst.Args[0];
      int Id = Registry.add(P);

      ProbeAnchor Anchor;
      Anchor.Kind = AnchorKind::BeforeInst;
      Anchor.Block = BB.Id;
      Anchor.InstIdx = static_cast<int>(I);
      Anchor.ProbeId = Id;
      Plan.Anchors.push_back(Anchor);
    }
  }
}

} // namespace instr
} // namespace ars
