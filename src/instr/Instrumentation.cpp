//===- instr/Instrumentation.cpp ------------------------------*- C++ -*-===//

#include "instr/Instrumentation.h"

namespace ars {
namespace instr {

Instrumentation::~Instrumentation() = default;

FunctionPlan
planFunction(const ir::IRFunction &F, const bytecode::Module &M,
             const std::vector<const Instrumentation *> &Clients,
             ProbeRegistry &Registry) {
  FunctionPlan Plan;
  Plan.FuncId = F.FuncId;
  for (const Instrumentation *Client : Clients)
    Client->plan(F, M, Registry, Plan);
  return Plan;
}

} // namespace instr
} // namespace ars
