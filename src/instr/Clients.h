//===- instr/Clients.h - The paper's instrumentations + extras -*- C++ -*-===//
///
/// \file
/// The two instrumentations the paper evaluates (section 4.2) and two
/// extension clients:
///
///  * CallEdgeInstrumentation: "all method entries are instrumented to
///    examine the call stack"; one counter per (caller, site, callee).
///    Deliberately expensive, as in the paper (simplicity over efficiency).
///  * FieldAccessInstrumentation: "all field accesses ... increment the
///    counter for the field they are accessing"; the probe body costs about
///    the same as a counter-based check (two loads, increment, store) —
///    the fact Table 3 hinges on.
///  * BlockCountInstrumentation: basic-block counting; its Density knob
///    produces the sparse-instrumentation scenarios Partial-Duplication is
///    designed for (section 3.1).
///  * ValueProfileInstrumentation: first-argument value profiling at call
///    sites (after Calder et al., cited as [15][16] in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_INSTR_CLIENTS_H
#define ARS_INSTR_CLIENTS_H

#include "instr/Instrumentation.h"

namespace ars {
namespace instr {

/// Call-edge profiling at method entries.
class CallEdgeInstrumentation : public Instrumentation {
public:
  /// \p CostCycles models the stack examination plus hashtable update.
  /// The default keeps the paper's ~50x ratio between this probe and a
  /// 5-cycle counter check (Table 1's call-edge column vs Table 2's
  /// method-entry column).
  explicit CallEdgeInstrumentation(uint32_t CostCycles = 250)
      : CostCycles(CostCycles) {}

  const char *name() const override { return "call-edge"; }
  void plan(const ir::IRFunction &F, const bytecode::Module &M,
            ProbeRegistry &Registry, FunctionPlan &Plan) const override;

private:
  uint32_t CostCycles;
};

/// Field-access counting at every GetField/PutField/GetGlobal/PutGlobal.
class FieldAccessInstrumentation : public Instrumentation {
public:
  explicit FieldAccessInstrumentation(uint32_t CostCycles = 6)
      : CostCycles(CostCycles) {}

  const char *name() const override { return "field-access"; }
  void plan(const ir::IRFunction &F, const bytecode::Module &M,
            ProbeRegistry &Registry, FunctionPlan &Plan) const override;

private:
  uint32_t CostCycles;
};

/// Basic-block execution counting.
class BlockCountInstrumentation : public Instrumentation {
public:
  /// Instruments one block in every \p Stride (1 = every block).  Blocks
  /// are chosen by id, deterministically.
  explicit BlockCountInstrumentation(uint32_t CostCycles = 4, int Stride = 1)
      : CostCycles(CostCycles), Stride(Stride) {}

  const char *name() const override { return "block-count"; }
  void plan(const ir::IRFunction &F, const bytecode::Module &M,
            ProbeRegistry &Registry, FunctionPlan &Plan) const override;

private:
  uint32_t CostCycles;
  int Stride;
};

/// Intraprocedural edge profiling: one counter per CFG edge, planted on
/// the edges themselves (the transform splits them).  The section 2 claim
/// that "intraprocedural edge ... profiling will work effectively when
/// inserted as-is", made concrete.
class EdgeCountInstrumentation : public Instrumentation {
public:
  explicit EdgeCountInstrumentation(uint32_t CostCycles = 4)
      : CostCycles(CostCycles) {}

  const char *name() const override { return "edge-count"; }
  void plan(const ir::IRFunction &F, const bytecode::Module &M,
            ProbeRegistry &Registry, FunctionPlan &Plan) const override;

private:
  uint32_t CostCycles;
};

/// Ball-Larus style path profiling (the paper's reference [11]): a path
/// register accumulates edge increments along acyclic paths; paths are
/// recorded and the register reset at method entry, backedges and
/// returns.  Numbering is entry-relative (paths re-entered via a backedge
/// reuse the DAG increments without the classic header offset), which
/// keeps ids deterministic and distribution-meaningful; functions whose
/// DAG exceeds MaxPaths are skipped.
class PathProfileInstrumentation : public Instrumentation {
public:
  static constexpr int64_t MaxPaths = int64_t(1) << 20;

  explicit PathProfileInstrumentation(uint32_t CostCycles = 4)
      : CostCycles(CostCycles) {}

  const char *name() const override { return "path-profile"; }
  void plan(const ir::IRFunction &F, const bytecode::Module &M,
            ProbeRegistry &Registry, FunctionPlan &Plan) const override;

private:
  uint32_t CostCycles;
};

/// First-argument value profiling at call sites.
class ValueProfileInstrumentation : public Instrumentation {
public:
  explicit ValueProfileInstrumentation(uint32_t CostCycles = 25)
      : CostCycles(CostCycles) {}

  const char *name() const override { return "value-profile"; }
  void plan(const ir::IRFunction &F, const bytecode::Module &M,
            ProbeRegistry &Registry, FunctionPlan &Plan) const override;

private:
  uint32_t CostCycles;
};

} // namespace instr
} // namespace ars

#endif // ARS_INSTR_CLIENTS_H
