//===- instr/Probe.cpp ----------------------------------------*- C++ -*-===//

#include "instr/Probe.h"

#include <cassert>

namespace ars {
namespace instr {

int ProbeRegistry::add(ProbeEntry Entry) {
  Entry.Id = static_cast<int>(Entries.size());
  Entries.push_back(Entry);
  return Entries.back().Id;
}

const ProbeEntry &ProbeRegistry::entry(int Id) const {
  assert(Id >= 0 && Id < size() && "bad probe id");
  return Entries[Id];
}

} // namespace instr
} // namespace ars
