//===- instr/Probe.h - Probe registry and placement plans -----*- C++ -*-===//
///
/// \file
/// A probe is one instrumentation operation.  Instrumentation clients
/// register probes (what to do, what it costs) in a ProbeRegistry and
/// anchor them to pre-transform IR locations in a FunctionPlan.  The
/// sampling transforms then plant Probe / GuardedProbe instructions at the
/// anchors — in duplicated code (Full/Partial-Duplication), guarded in
/// place (No-Duplication), or unguarded in place (Exhaustive).
///
/// Keeping the probe *semantics* in a small closed enum (rather than
/// std::function) lets the execution engine dispatch probes with a switch
/// and, more importantly, keeps the framework/instrumentation layering of
/// the paper: "overhead is controlled entirely by the framework", and the
/// framework never needs to know what a probe does beyond its cost.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_INSTR_PROBE_H
#define ARS_INSTR_PROBE_H

#include <cstdint>
#include <vector>

namespace ars {
namespace instr {

/// What a probe does when executed.
enum class ProbeKind : uint8_t {
  CallEdge,    ///< record (caller, call-site, callee) for the current frame
  FieldAccess, ///< increment the counter of field Payload
  BlockCount,  ///< increment the counter of (FuncId, Payload)
  Value,       ///< record the value of register ValueReg at site SiteId
  EdgeCount,   ///< increment the counter of edge (FuncId, Payload, Payload2)
  PathReset,   ///< zero the frame's Ball-Larus path register
  PathAdd,     ///< add Payload to the frame's path register
  PathEnd      ///< record (FuncId, path register) and zero the register
};

/// One registered probe.
struct ProbeEntry {
  int Id = -1;
  ProbeKind Kind = ProbeKind::BlockCount;
  uint32_t CostCycles = 1; ///< simulated cost of executing the probe body
  int FuncId = -1;         ///< function the probe is planted in
  int Payload = -1;        ///< field id / block id / edge source / path inc
  int Payload2 = -1;       ///< edge target
  uint64_t SiteId = 0;     ///< value-profile site identifier
  int ValueReg = -1;       ///< register profiled by Value probes
};

/// Owns all probes of one compiled program.
class ProbeRegistry {
public:
  /// Registers \p Entry (its Id field is assigned); returns the id.
  int add(ProbeEntry Entry);

  const ProbeEntry &entry(int Id) const;
  int size() const { return static_cast<int>(Entries.size()); }
  const std::vector<ProbeEntry> &entries() const { return Entries; }

private:
  std::vector<ProbeEntry> Entries;
};

/// Where a probe attaches, in pre-transform IR coordinates.
enum class AnchorKind : uint8_t {
  MethodEntry, ///< top of the entry block
  BeforeInst,  ///< immediately before Blocks[Block].Insts[InstIdx]
  OnEdge       ///< on the CFG edge Block -> InstIdx (target block id).
               ///< The transform splits the edge; on a backedge the probe
               ///< lands on the duplicated code's exit transfer, exactly
               ///< where the paper says backedge-associated events go.
};

/// One probe anchor.
struct ProbeAnchor {
  AnchorKind Kind = AnchorKind::MethodEntry;
  int Block = -1;
  int InstIdx = -1; ///< instruction index, or edge-target block for OnEdge
  int ProbeId = -1;
};

/// All probe anchors for one function.
struct FunctionPlan {
  int FuncId = -1;
  std::vector<ProbeAnchor> Anchors;

  bool empty() const { return Anchors.empty(); }
};

} // namespace instr
} // namespace ars

#endif // ARS_INSTR_PROBE_H
