//===- profstore/ProfileStore.h - Profile algebra -------------*- C++ -*-===//
///
/// \file
/// Operations over stored profiles: count-wise merge (the basis of
/// cross-run and cross-shard accumulation), scale/decay (weighting old
/// epochs in a streaming aggregate), and diff/report (what changed
/// between two profiles, and by how much, using the paper's section 4.4
/// overlap metric).
///
/// mergeBundle is a commutative, associative monoid operation with the
/// empty bundle as identity: every count map is summed key-wise, and
/// ValueProfile overflow buckets sum rather than re-fold (the
/// MaxValuesPerSite cap is applied at record time, not merge time).
/// That algebra — not locking discipline — is what makes the sharded
/// ProfileAggregator deterministic: any grouping and ordering of merges
/// yields byte-identical serializeBundle output.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSTORE_PROFILESTORE_H
#define ARS_PROFSTORE_PROFILESTORE_H

#include "profile/Profiles.h"

#include <string>

namespace ars {
namespace profstore {

/// Adds every count of \p Src into \p Dst, key-wise.
void mergeBundle(profile::ProfileBundle &Dst,
                 const profile::ProfileBundle &Src);

/// Scales every count to count * Num / Den (128-bit intermediate, so no
/// overflow for any realistic profile; truncating division).  Map entries
/// that scale to zero are dropped; the field-access vector keeps its size
/// (its zero slots are meaningful: "field never touched").  \p Den must
/// be nonzero.
void scaleBundle(profile::ProfileBundle &B, uint64_t Num, uint64_t Den);

/// Exponential-decay convenience for epoch weighting: keep \p KeepPct
/// percent of every count (scaleBundle(B, KeepPct, 100)).
void decayBundle(profile::ProfileBundle &B, uint32_t KeepPct);

/// Per-kind overlap percentages (section 4.4 metric; 100 = identical
/// distributions) between two bundles.
struct BundleOverlap {
  double CallEdges = 0.0;
  double FieldAccesses = 0.0;
  double BlockCounts = 0.0;
  double Values = 0.0;
  double Edges = 0.0;
  double Paths = 0.0;
};
BundleOverlap overlapBundle(const profile::ProfileBundle &A,
                            const profile::ProfileBundle &B);

/// One-bundle summary: entry counts and totals per kind, plus the top
/// \p TopK call edges by count (ids, not names — a stored profile does
/// not carry its module).
std::string reportBundle(const profile::ProfileBundle &B, int TopK);

/// Two-bundle comparison: per-kind overlap% plus the top \p TopK call-
/// edge movers by absolute sample-percentage change between \p A and
/// \p B.
std::string diffReport(const profile::ProfileBundle &A,
                       const profile::ProfileBundle &B, int TopK);

} // namespace profstore
} // namespace ars

#endif // ARS_PROFSTORE_PROFILESTORE_H
