//===- profstore/ProfileIO.h - Persistent binary profiles -----*- C++ -*-===//
///
/// \file
/// A versioned binary on-disk format for profile::ProfileBundle, so that
/// sampled profiles — cheap enough to collect on every run, which is the
/// paper's whole point — can outlive the ExecutionEngine that collected
/// them and be accumulated, compared and replayed across runs and shards.
///
/// Layout (all multi-byte header/trailer fields little-endian, everything
/// else LEB128 varints; signed values zigzag-encoded):
///
///   "ARSP"                magic, 4 bytes
///   u32   format version  (currently 1)
///   u64   module fingerprint — harness::programHash's FNV-1a content
///         hash of the program the profile was collected from, so a
///         profile can be validated against the module it is applied to
///   6 sections, fixed order, each `varint entryCount` + entries with
///         per-component delta-encoded keys:
///     call-edges, field-accesses, block-counts, values, edges, paths
///   u32   CRC32 of every preceding byte
///
/// decodeBundle rejects — with a diagnostic, never UB — bad magic, an
/// unknown version, any truncation, CRC mismatch, trailing bytes, and
/// (when the caller supplies one) a wrong module fingerprint.
///
/// Round-trip contract: for any bundle B,
/// serializeBundle(decodeBundle(encodeBundle(B)).Bundle)
/// == serializeBundle(B), byte for byte.  Totals are not stored; they are
/// recomputed as the sum of entry counts, which record() keeps invariant.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSTORE_PROFILEIO_H
#define ARS_PROFSTORE_PROFILEIO_H

#include "profile/Profiles.h"

#include <cstdint>
#include <functional>
#include <string>

namespace ars {
namespace profstore {

/// Current format version; bumped on any incompatible layout change.
constexpr uint32_t FormatVersion = 1;

/// File magic ("ARSP").
extern const char FormatMagic[4];

/// Encodes \p B (collected from the program whose content hash is
/// \p Fingerprint; pass 0 if unknown) into the format above.
std::string encodeBundle(const profile::ProfileBundle &B,
                         uint64_t Fingerprint);

/// Outcome of decoding or loading a stored profile.
struct DecodeResult {
  bool Ok = false;
  std::string Error;        ///< diagnostic when !Ok
  uint64_t Fingerprint = 0; ///< module fingerprint from the header
  profile::ProfileBundle Bundle;
};

/// Decodes \p Bytes.  When \p ExpectedFingerprint is nonzero the stored
/// fingerprint must match it (profile-vs-module validation).
DecodeResult decodeBundle(const std::string &Bytes,
                          uint64_t ExpectedFingerprint = 0);

/// Writes encodeBundle(\p B, \p Fingerprint) to \p Path atomically (see
/// atomicSaveFile).  Returns false and fills \p Error on IO failure.
/// With \p Compress the bytes are wrapped in the ARSZ block container
/// (support/Compress.h): big snapshots shrink, and each block carries
/// its own CRC so corruption is detected before the bundle CRC runs.
bool saveBundle(const std::string &Path, const profile::ProfileBundle &B,
                uint64_t Fingerprint, std::string *Error,
                bool Compress = false);

/// Reads and decodes \p Path, transparently unwrapping ARSZ-compressed
/// files.
DecodeResult loadBundle(const std::string &Path,
                        uint64_t ExpectedFingerprint = 0);

//===----------------------------------------------------------------------===//
// Crash-safe file writes + fault-injection seam
//===----------------------------------------------------------------------===//

/// Injection hooks under every atomicSaveFile step, so a fault harness
/// (src/faultinject) can simulate short writes, failed fsyncs and failed
/// renames without patching the filesystem.  Null members = no fault.
/// All hooks must be thread-safe; they run on whatever thread saves.
struct FileFaults {
  /// Called before each write of \p Bytes bytes to \p Path; returns how
  /// many bytes may actually be written.  A short count fails the save
  /// after writing that prefix (a torn write, as a crash would leave).
  std::function<size_t(const std::string &Path, size_t Bytes)> OnWrite;
  /// Returns false to fail the fsync of \p Path (file or directory).
  std::function<bool(const std::string &Path)> OnFsync;
  /// Returns false to fail (and skip) the rename \p From -> \p To.
  std::function<bool(const std::string &From, const std::string &To)>
      OnRename;
};

/// Installs \p F as the process-wide fault hooks (pass nullptr to clear).
/// The pointer must stay valid until cleared; tests use an RAII guard.
void setFileFaults(const FileFaults *F);

/// Writes \p Bytes to \p Path so that a crash at ANY step leaves either
/// the old contents, the old contents under \p Path + ".prev" (only with
/// \p KeepPrevious, between the two renames), or the new contents — never
/// a torn file:
///
///   1. write \p Path + ".tmp"
///   2. fsync the tmp file (data durable before it becomes visible)
///   3. fsync the parent directory
///   4. with \p KeepPrevious: rename \p Path -> \p Path + ".prev"
///   5. rename tmp -> \p Path
///   6. fsync the parent directory (the renames durable)
///
/// Returns false + \p *Error on any failure, removing the tmp file.
bool atomicSaveFile(const std::string &Path, const std::string &Bytes,
                    std::string *Error, bool KeepPrevious = false);

/// Low-level helpers shared between atomicSaveFile and the write-ahead
/// journal (Journal.h).  All honor the setFileFaults hooks, so the fault
/// harness drives journal IO through the same seam as snapshot IO.
namespace ioutil {
/// write(2) loop on an open fd; false on failure or injected short write.
bool writeAllFd(int Fd, const std::string &Path, const std::string &Bytes,
                std::string *Error);
/// fsync(2) on an open fd.
bool fsyncFd(int Fd, const std::string &Path, std::string *Error);
/// fsync of the directory containing \p Path (rename/create durability).
bool fsyncDirOf(const std::string &Path, std::string *Error);
/// Slurps \p Path verbatim (no decompression, no decoding).
bool readFileRaw(const std::string &Path, std::string *Out);
} // namespace ioutil

} // namespace profstore
} // namespace ars

#endif // ARS_PROFSTORE_PROFILEIO_H
