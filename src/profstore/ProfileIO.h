//===- profstore/ProfileIO.h - Persistent binary profiles -----*- C++ -*-===//
///
/// \file
/// A versioned binary on-disk format for profile::ProfileBundle, so that
/// sampled profiles — cheap enough to collect on every run, which is the
/// paper's whole point — can outlive the ExecutionEngine that collected
/// them and be accumulated, compared and replayed across runs and shards.
///
/// Layout (all multi-byte header/trailer fields little-endian, everything
/// else LEB128 varints; signed values zigzag-encoded):
///
///   "ARSP"                magic, 4 bytes
///   u32   format version  (currently 1)
///   u64   module fingerprint — harness::programHash's FNV-1a content
///         hash of the program the profile was collected from, so a
///         profile can be validated against the module it is applied to
///   6 sections, fixed order, each `varint entryCount` + entries with
///         per-component delta-encoded keys:
///     call-edges, field-accesses, block-counts, values, edges, paths
///   u32   CRC32 of every preceding byte
///
/// decodeBundle rejects — with a diagnostic, never UB — bad magic, an
/// unknown version, any truncation, CRC mismatch, trailing bytes, and
/// (when the caller supplies one) a wrong module fingerprint.
///
/// Round-trip contract: for any bundle B,
/// serializeBundle(decodeBundle(encodeBundle(B)).Bundle)
/// == serializeBundle(B), byte for byte.  Totals are not stored; they are
/// recomputed as the sum of entry counts, which record() keeps invariant.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSTORE_PROFILEIO_H
#define ARS_PROFSTORE_PROFILEIO_H

#include "profile/Profiles.h"

#include <cstdint>
#include <string>

namespace ars {
namespace profstore {

/// Current format version; bumped on any incompatible layout change.
constexpr uint32_t FormatVersion = 1;

/// File magic ("ARSP").
extern const char FormatMagic[4];

/// Encodes \p B (collected from the program whose content hash is
/// \p Fingerprint; pass 0 if unknown) into the format above.
std::string encodeBundle(const profile::ProfileBundle &B,
                         uint64_t Fingerprint);

/// Outcome of decoding or loading a stored profile.
struct DecodeResult {
  bool Ok = false;
  std::string Error;        ///< diagnostic when !Ok
  uint64_t Fingerprint = 0; ///< module fingerprint from the header
  profile::ProfileBundle Bundle;
};

/// Decodes \p Bytes.  When \p ExpectedFingerprint is nonzero the stored
/// fingerprint must match it (profile-vs-module validation).
DecodeResult decodeBundle(const std::string &Bytes,
                          uint64_t ExpectedFingerprint = 0);

/// Writes encodeBundle(\p B, \p Fingerprint) to \p Path.  Returns false
/// and fills \p Error on IO failure.
bool saveBundle(const std::string &Path, const profile::ProfileBundle &B,
                uint64_t Fingerprint, std::string *Error);

/// Reads and decodes \p Path.
DecodeResult loadBundle(const std::string &Path,
                        uint64_t ExpectedFingerprint = 0);

} // namespace profstore
} // namespace ars

#endif // ARS_PROFSTORE_PROFILEIO_H
