//===- profstore/Summary.cpp - Bounded-memory profile summaries -*- C++ -*-===//

#include "profstore/Summary.h"

#include "profstore/ProfileIO.h"
#include "support/Binary.h"
#include "support/Compress.h"

#include <cstring>
#include <fstream>
#include <sstream>

using ars::support::appendFixed32;
using ars::support::appendFixed64;
using ars::support::appendSignedVarint;
using ars::support::appendVarint;
using ars::support::ByteReader;
using ars::support::saturatingAdd;

namespace ars {
namespace profstore {

namespace {

// Header: magic(4) + version(4) + fingerprint(8); trailer: CRC32(4).
// Same envelope as the v1 bundle format so version sniffing is uniform.
constexpr size_t HeaderSize = 16;
constexpr size_t TrailerSize = 4;

constexpr uint32_t MaxSketchDepth = 8;
constexpr uint32_t MaxSketchWidth = 1u << 20;

uint64_t mix64(uint64_t X) {
  // splitmix64 finalizer: full-avalanche, cheap, and stable across
  // processes — sketch cells must line up for cross-host merges.
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

uint64_t edgeKeyHash(const profile::CallEdgeKey &Key) {
  uint64_t H =
      mix64(static_cast<uint64_t>(static_cast<int64_t>(Key.Caller)));
  H = mix64(H ^ static_cast<uint64_t>(static_cast<int64_t>(Key.Site)));
  H = mix64(H ^ static_cast<uint64_t>(static_cast<int64_t>(Key.Callee)));
  return H;
}

size_t cellIndex(uint64_t KeyHash, uint32_t Row, uint32_t Width) {
  uint64_t RowHash = mix64(KeyHash ^ (0xA24BAED4963EE407ull * (Row + 1)));
  return static_cast<size_t>(Row) * Width +
         static_cast<size_t>(RowHash & (Width - 1));
}

int64_t wrapDelta(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

bool countPlausible(ByteReader &R, uint64_t N, size_t MinBytesPerEntry) {
  return N <= R.remaining() / MinBytesPerEntry + 1;
}

} // namespace

//===----------------------------------------------------------------------===//
// CallEdgeSummary
//===----------------------------------------------------------------------===//

CallEdgeSummary CallEdgeSummary::make(uint32_t K) {
  CallEdgeSummary S;
  S.K = K;
  S.Depth = 4;
  uint64_t Target = std::max<uint64_t>(64, 8ull * K);
  uint32_t W = 64;
  while (W < Target && W < MaxSketchWidth)
    W <<= 1;
  S.Width = W;
  S.Cells.assign(static_cast<size_t>(S.Depth) * S.Width, 0);
  S.TopK.K = K;
  return S;
}

void CallEdgeSummary::addExact(const profile::CallEdgeKey &Key,
                               uint64_t Count) {
  if (!Count)
    return;
  Total = saturatingAdd(Total, Count);
  uint64_t H = edgeKeyHash(Key);
  for (uint32_t Row = 0; Row != Depth; ++Row) {
    uint64_t &Cell = Cells[cellIndex(H, Row, Width)];
    Cell = saturatingAdd(Cell, Count);
  }
  TopK.addExact(Key, Count);
}

uint64_t
CallEdgeSummary::sketchEstimate(const profile::CallEdgeKey &Key) const {
  if (!Depth)
    return 0;
  uint64_t H = edgeKeyHash(Key);
  uint64_t Est = UINT64_MAX;
  for (uint32_t Row = 0; Row != Depth; ++Row)
    Est = std::min(Est, Cells[cellIndex(H, Row, Width)]);
  return Est;
}

uint64_t CallEdgeSummary::estimate(const profile::CallEdgeKey &Key) const {
  return std::min(sketchEstimate(Key), TopK.estimate(Key));
}

//===----------------------------------------------------------------------===//
// summarize / merge
//===----------------------------------------------------------------------===//

ProfileSummary summarizeBundle(const profile::ProfileBundle &B,
                               uint32_t K) {
  ProfileSummary S;
  S.K = std::max<uint32_t>(1, K);
  S.CallEdges = CallEdgeSummary::make(S.K);
  for (const auto &[Key, Count] : B.CallEdges.counts())
    S.CallEdges.addExact(Key, Count);
  S.CallEdges.TopK.prune();

  for (const auto &[Site, Table] : B.Values.sites()) {
    ValueSiteSummary &V = S.Values[Site];
    V.SS.K = S.K;
    for (const auto &[Value, Count] : Table)
      V.SS.addExact(Value, Count);
    V.SS.prune();
    V.Overflow = B.Values.overflow(Site);
  }
  S.ValuesTotal = B.Values.total();
  return S;
}

bool mergeSummary(ProfileSummary &Dst, const ProfileSummary &Src,
                  std::string *Error) {
  if (Src.empty())
    return true;
  if (Dst.empty()) {
    Dst = Src;
    return true;
  }
  if (Dst.K != Src.K || Dst.CallEdges.Depth != Src.CallEdges.Depth ||
      Dst.CallEdges.Width != Src.CallEdges.Width) {
    if (Error)
      *Error = support::formatString(
          "summary geometry mismatch: K %u/%u", Dst.K, Src.K);
    return false;
  }
  CallEdgeSummary &DE = Dst.CallEdges;
  const CallEdgeSummary &SE = Src.CallEdges;
  DE.Total = saturatingAdd(DE.Total, SE.Total);
  for (size_t I = 0; I != DE.Cells.size(); ++I)
    DE.Cells[I] = saturatingAdd(DE.Cells[I], SE.Cells[I]);
  DE.TopK.merge(SE.TopK);

  for (const auto &[Site, SV] : Src.Values) {
    ValueSiteSummary &DV = Dst.Values[Site];
    if (DV.SS.K == 0)
      DV.SS.K = Dst.K;
    DV.SS.merge(SV.SS);
    DV.Overflow = saturatingAdd(DV.Overflow, SV.Overflow);
  }
  Dst.ValuesTotal = saturatingAdd(Dst.ValuesTotal, Src.ValuesTotal);
  return true;
}

//===----------------------------------------------------------------------===//
// On-disk format (.arsp v2)
//===----------------------------------------------------------------------===//

namespace {

std::string encodeCallEdgeSection(const CallEdgeSummary &S) {
  std::string Out;
  appendVarint(Out, S.K);
  appendVarint(Out, S.Depth);
  appendVarint(Out, S.Width);
  appendVarint(Out, S.Total);
  for (uint64_t Cell : S.Cells)
    appendVarint(Out, Cell);
  appendVarint(Out, S.TopK.Floor);
  appendVarint(Out, S.TopK.Counts.size());
  profile::CallEdgeKey Prev;
  Prev.Caller = Prev.Site = Prev.Callee = 0;
  for (const auto &[Key, Count] : S.TopK.Counts) {
    appendSignedVarint(Out, wrapDelta(Key.Caller, Prev.Caller));
    appendSignedVarint(Out, wrapDelta(Key.Site, Prev.Site));
    appendSignedVarint(Out, wrapDelta(Key.Callee, Prev.Callee));
    appendVarint(Out, Count);
    Prev = Key;
  }
  return Out;
}

bool decodeCallEdgeSection(ByteReader &R, uint32_t *KOut,
                           CallEdgeSummary *S) {
  uint64_t K = 0, Depth = 0, Width = 0;
  if (!R.readVarint(&K) || !K || K > UINT32_MAX ||
      !R.readVarint(&Depth) || !Depth || Depth > MaxSketchDepth ||
      !R.readVarint(&Width) || !Width || Width > MaxSketchWidth ||
      (Width & (Width - 1)) != 0 || !R.readVarint(&S->Total))
    return false;
  uint64_t NumCells = Depth * Width;
  if (!countPlausible(R, NumCells, 1))
    return false;
  S->K = static_cast<uint32_t>(K);
  S->Depth = static_cast<uint32_t>(Depth);
  S->Width = static_cast<uint32_t>(Width);
  S->Cells.assign(static_cast<size_t>(NumCells), 0);
  for (uint64_t &Cell : S->Cells)
    if (!R.readVarint(&Cell))
      return false;
  uint64_t N = 0;
  if (!R.readVarint(&S->TopK.Floor) || !R.readVarint(&N) || N > K ||
      !countPlausible(R, N, 4))
    return false;
  S->TopK.K = static_cast<uint32_t>(K);
  profile::CallEdgeKey Key;
  Key.Caller = Key.Site = Key.Callee = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DCaller = 0, DSite = 0, DCallee = 0;
    uint64_t Count = 0;
    if (!R.readSignedVarint(&DCaller) || !R.readSignedVarint(&DSite) ||
        !R.readSignedVarint(&DCallee) || !R.readVarint(&Count))
      return false;
    Key.Caller = static_cast<int>(wrapAdd(Key.Caller, DCaller));
    Key.Site = static_cast<int>(wrapAdd(Key.Site, DSite));
    Key.Callee = static_cast<int>(wrapAdd(Key.Callee, DCallee));
    if (Count)
      S->TopK.Counts[Key] = Count;
  }
  *KOut = static_cast<uint32_t>(K);
  return true;
}

std::string encodeValueSection(const ProfileSummary &S) {
  std::string Out;
  appendVarint(Out, S.K);
  appendVarint(Out, S.ValuesTotal);
  appendVarint(Out, S.Values.size());
  uint64_t PrevSite = 0;
  for (const auto &[Site, V] : S.Values) {
    appendVarint(Out, Site - PrevSite);
    appendVarint(Out, V.Overflow);
    appendVarint(Out, V.SS.Floor);
    appendVarint(Out, V.SS.Counts.size());
    int64_t PrevValue = 0;
    for (const auto &[Value, Count] : V.SS.Counts) {
      appendSignedVarint(Out, wrapDelta(Value, PrevValue));
      appendVarint(Out, Count);
      PrevValue = Value;
    }
    PrevSite = Site;
  }
  return Out;
}

bool decodeValueSection(ByteReader &R, uint32_t *KOut,
                        ProfileSummary *S) {
  uint64_t K = 0, NumSites = 0;
  if (!R.readVarint(&K) || !K || K > UINT32_MAX ||
      !R.readVarint(&S->ValuesTotal) || !R.readVarint(&NumSites) ||
      !countPlausible(R, NumSites, 4))
    return false;
  uint64_t Site = 0;
  for (uint64_t I = 0; I != NumSites; ++I) {
    uint64_t DSite = 0, N = 0;
    ValueSiteSummary V;
    V.SS.K = static_cast<uint32_t>(K);
    if (!R.readVarint(&DSite) || !R.readVarint(&V.Overflow) ||
        !R.readVarint(&V.SS.Floor) || !R.readVarint(&N) || N > K ||
        !countPlausible(R, N, 2))
      return false;
    Site += DSite;
    int64_t Value = 0;
    for (uint64_t J = 0; J != N; ++J) {
      int64_t DValue = 0;
      uint64_t Count = 0;
      if (!R.readSignedVarint(&DValue) || !R.readVarint(&Count))
        return false;
      Value = wrapAdd(Value, DValue);
      if (Count)
        V.SS.Counts[Value] = Count;
    }
    S->Values[Site] = std::move(V);
  }
  *KOut = static_cast<uint32_t>(K);
  return true;
}

SummaryDecodeResult decodeFail(std::string Error) {
  SummaryDecodeResult R;
  R.Error = std::move(Error);
  return R;
}

} // namespace

std::string encodeSummary(const ProfileSummary &S, uint64_t Fingerprint) {
  std::string Out;
  Out.append(FormatMagic, 4);
  appendFixed32(Out, SummaryFormatVersion);
  appendFixed64(Out, Fingerprint);
  std::string Edges = encodeCallEdgeSection(S.CallEdges);
  std::string Vals = encodeValueSection(S);
  appendVarint(Out, 2); // section count
  Out.push_back(static_cast<char>(SummarySection::CallEdgeSketch));
  appendVarint(Out, Edges.size());
  Out.append(Edges);
  Out.push_back(static_cast<char>(SummarySection::ValueTopK));
  appendVarint(Out, Vals.size());
  Out.append(Vals);
  appendFixed32(Out, support::crc32(Out.data(), Out.size()));
  return Out;
}

SummaryDecodeResult decodeSummary(const std::string &Bytes,
                                  uint64_t ExpectedFingerprint) {
  if (Bytes.size() < HeaderSize + TrailerSize)
    return decodeFail("truncated summary: shorter than header + trailer");
  // CRC first: any other diagnostic on a corrupted file would be a guess.
  ByteReader Trailer(Bytes.data() + Bytes.size() - TrailerSize,
                     TrailerSize);
  uint32_t StoredCrc = 0;
  Trailer.readFixed32(&StoredCrc);
  if (StoredCrc !=
      support::crc32(Bytes.data(), Bytes.size() - TrailerSize))
    return decodeFail("summary CRC mismatch: file corrupted");

  ByteReader R(Bytes.data(), Bytes.size() - TrailerSize);
  const char *Magic;
  if (!R.readBytes(&Magic, 4) || std::memcmp(Magic, FormatMagic, 4) != 0)
    return decodeFail("bad magic: not a profile file");
  uint32_t Version = 0;
  if (!R.readFixed32(&Version) || Version != SummaryFormatVersion)
    return decodeFail(support::formatString(
        "unsupported summary version %u (want %u)", Version,
        SummaryFormatVersion));
  SummaryDecodeResult Out;
  if (!R.readFixed64(&Out.Fingerprint))
    return decodeFail("truncated summary header");
  if (ExpectedFingerprint && Out.Fingerprint != ExpectedFingerprint)
    return decodeFail(support::formatString(
        "module fingerprint mismatch: profile %016llx vs module %016llx",
        static_cast<unsigned long long>(Out.Fingerprint),
        static_cast<unsigned long long>(ExpectedFingerprint)));

  uint64_t NumSections = 0;
  if (!R.readVarint(&NumSections) || !countPlausible(R, NumSections, 2))
    return decodeFail("malformed summary section table");
  uint32_t K = 0;
  for (uint64_t I = 0; I != NumSections; ++I) {
    const char *KindByte;
    uint64_t Len = 0;
    if (!R.readBytes(&KindByte, 1) || !R.readVarint(&Len) ||
        Len > R.remaining())
      return decodeFail("truncated summary section");
    const char *Payload;
    if (!R.readBytes(&Payload, static_cast<size_t>(Len)))
      return decodeFail("truncated summary section");
    ByteReader Section(Payload, static_cast<size_t>(Len));
    uint32_t SectionK = 0;
    switch (static_cast<uint8_t>(*KindByte)) {
    case static_cast<uint8_t>(SummarySection::CallEdgeSketch):
      if (!decodeCallEdgeSection(Section, &SectionK,
                                 &Out.Summary.CallEdges) ||
          !Section.atEnd())
        return decodeFail("malformed call-edge summary section");
      break;
    case static_cast<uint8_t>(SummarySection::ValueTopK):
      if (!decodeValueSection(Section, &SectionK, &Out.Summary) ||
          !Section.atEnd())
        return decodeFail("malformed value summary section");
      break;
    default:
      // Unknown kinds are skippable by construction: that is the point
      // of tagged, length-prefixed sections.
      continue;
    }
    if (K && SectionK && K != SectionK)
      return decodeFail("summary sections disagree on K");
    if (SectionK)
      K = SectionK;
  }
  if (!R.atEnd())
    return decodeFail("trailing bytes after summary sections");
  if (!K)
    return decodeFail("summary carries no known sections");
  Out.Summary.K = K;
  Out.Ok = true;
  return Out;
}

bool saveSummary(const std::string &Path, const ProfileSummary &S,
                 uint64_t Fingerprint, std::string *Error,
                 bool Compress) {
  std::string Bytes = encodeSummary(S, Fingerprint);
  if (Compress)
    Bytes = support::compressBlocks(Bytes);
  return atomicSaveFile(Path, Bytes, Error);
}

SummaryDecodeResult loadSummary(const std::string &Path,
                                uint64_t ExpectedFingerprint) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return decodeFail(
        support::formatString("cannot open %s", Path.c_str()));
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Bytes = Buf.str();
  if (support::looksCompressed(Bytes)) {
    std::string Raw, Err;
    if (!support::decompressBlocks(Bytes, &Raw, &Err))
      return decodeFail(
          support::formatString("%s: %s", Path.c_str(), Err.c_str()));
    Bytes = std::move(Raw);
  }
  return decodeSummary(Bytes, ExpectedFingerprint);
}

} // namespace profstore
} // namespace ars
