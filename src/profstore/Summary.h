//===- profstore/Summary.h - Bounded-memory profile summaries -*- C++ -*-===//
///
/// \file
/// Bounded-memory counterparts of the exact profile monoid, for the root
/// aggregator that holds millions of sessions and cannot keep exact
/// per-tenant maps: a space-saving (Misra-Gries + floor) top-K summary
/// for value profiles, and a count-min-sketch-backed call-edge summary
/// with a space-saving heavy-hitter list for enumeration.
///
/// Every structure carries its error bound explicitly, and every
/// estimate is a one-sided *upper* bound on the exact merged count:
///
///  * SpaceSaving keeps at most K counters plus a scalar Floor.  The
///    invariant (K+1)*Floor + sum(Counts) <= TotalMass holds under both
///    construction from exact tables and summary-summary merges, so for
///    any merge tree:  exact <= estimate <= exact + Floor, with
///    Floor <= TotalMass / (K + 1).   (Proof sketch in DESIGN.md §12;
///    this is the Misra-Gries merge bound of Agarwal et al.,
///    "Mergeable Summaries".)
///  * The count-min sketch never under-counts by construction (each cell
///    is a sum over a superset of the key's occurrences) and merges
///    cell-wise, so its merge is byte-exact commutative AND associative.
///    Its over-count is probabilistic: expected collision mass per row
///    is Total / Width (cmsRowBound()), driven below any target by
///    widening — unlike the space-saving floor it is not a worst-case
///    bound, which is why the enumerable top-K list rides alongside.
///
/// Merging is commutative byte-for-byte (all maps ordered, all ops
/// symmetric).  Associativity is byte-exact for the sketch and for
/// space-saving whenever no pruning triggers (K >= distinct keys); under
/// pruning it remains associative *semantically*: the one-sided bound
/// above holds for every merge order, which is what the randomized
/// merge-algebra test in test_profstore pins.
///
/// Collection-time value-profile overflow buckets (values folded at the
/// MaxValuesPerSite cap before any summary existed) carry no per-key
/// structure, so their mass is tracked separately per site: it raises
/// estimates for *absent* values but is excluded from the Floor bound,
/// keeping the Floor <= Total/(K+1) claim honest.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSTORE_SUMMARY_H
#define ARS_PROFSTORE_SUMMARY_H

#include "profile/Profiles.h"
#include "support/Support.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ars {
namespace profstore {

/// Misra-Gries summary with an explicit over-count floor.  Counts are
/// lower bounds on the exact mass of each kept key; estimate() adds the
/// floor to make every answer a one-sided upper bound (absent keys
/// estimate as Floor alone).
template <typename KeyT> struct SpaceSaving {
  uint32_t K = 0;
  /// Max over-count of any estimate; <= total mass / (K + 1).
  uint64_t Floor = 0;
  /// At most K entries, every count nonzero.
  std::map<KeyT, uint64_t> Counts;

  uint64_t estimate(const KeyT &Key) const {
    auto It = Counts.find(Key);
    return support::saturatingAdd(
        It == Counts.end() ? 0 : It->second, Floor);
  }

  /// Enforces |Counts| <= K: subtracts the (K+1)-th largest count from
  /// every entry, dropping the ones that reach zero, and adds it to the
  /// floor.  At least K+1 entries each shrink by the full amount, which
  /// is exactly what keeps (K+1)*Floor + sum(Counts) <= total mass.
  void prune() {
    if (K == 0) {
      for (const auto &[Key, Count] : Counts)
        Floor = support::saturatingAdd(Floor, Count);
      Counts.clear();
      return;
    }
    if (Counts.size() <= K)
      return;
    std::vector<uint64_t> Ranked;
    Ranked.reserve(Counts.size());
    for (const auto &[Key, Count] : Counts)
      Ranked.push_back(Count);
    std::nth_element(Ranked.begin(), Ranked.begin() + K, Ranked.end(),
                     std::greater<uint64_t>());
    uint64_t D = Ranked[K];
    Floor = support::saturatingAdd(Floor, D);
    for (auto It = Counts.begin(); It != Counts.end();) {
      if (It->second > D) {
        It->second -= D;
        ++It;
      } else {
        It = Counts.erase(It);
      }
    }
  }

  /// Adds one exactly-counted key (used when building from an exact
  /// table; call prune() once after the last add).
  void addExact(const KeyT &Key, uint64_t Count) {
    if (!Count)
      return;
    uint64_t &Cell = Counts[Key];
    Cell = support::saturatingAdd(Cell, Count);
  }

  /// Summary-summary merge: floors add, counters add key-wise, then one
  /// prune restores the K bound.  Symmetric, hence byte-exact
  /// commutative; never under-counts for any merge tree.
  void merge(const SpaceSaving &O) {
    Floor = support::saturatingAdd(Floor, O.Floor);
    for (const auto &[Key, Count] : O.Counts) {
      uint64_t &Cell = Counts[Key];
      Cell = support::saturatingAdd(Cell, Count);
    }
    prune();
  }
};

/// Count-min sketch + enumerable top-K over call edges.
struct CallEdgeSummary {
  uint32_t K = 0;
  uint32_t Depth = 0;
  uint32_t Width = 0; // power of two
  uint64_t Total = 0;
  std::vector<uint64_t> Cells; // Depth x Width, saturating counters
  SpaceSaving<profile::CallEdgeKey> TopK;

  /// Geometry for a given K: depth 4, width the power of two >= 8*K
  /// (>= 64), so the expected per-row collision mass Total/Width shrinks
  /// as the caller asks for more retained detail.
  static CallEdgeSummary make(uint32_t K);

  void addExact(const profile::CallEdgeKey &Key, uint64_t Count);

  /// Upper bound on the exact merged count of \p Key: the smaller of the
  /// sketch estimate and the top-K estimate (both are upper bounds).
  uint64_t estimate(const profile::CallEdgeKey &Key) const;

  /// Sketch-only estimate (min over rows).
  uint64_t sketchEstimate(const profile::CallEdgeKey &Key) const;

  /// Expected collision mass added to any single estimate by one sketch
  /// row; the explicit (probabilistic) error bound carried by the
  /// sketch.  The worst-case bound is TopK.Floor via estimate().
  uint64_t cmsRowBound() const { return Width ? Total / Width : 0; }
};

/// Per-site bounded value summary.  Overflow carries the collection-time
/// overflow-bucket mass (see file comment) — an upper bound on any value
/// that was folded before summarization.
struct ValueSiteSummary {
  SpaceSaving<int64_t> SS;
  uint64_t Overflow = 0;

  /// Upper bound on the exact merged count of \p Value at this site.
  uint64_t estimate(int64_t Value) const {
    return support::saturatingAdd(SS.estimate(Value), Overflow);
  }

  /// Worst-case over-count of any estimate at this site.
  uint64_t maxOvercount() const {
    return support::saturatingAdd(SS.Floor, Overflow);
  }
};

/// The bounded counterpart of a ProfileBundle for the two profile kinds
/// whose key spaces are unbounded per tenant: call edges and value
/// profiles.  (Block/edge/path counts are keyed by the finite program
/// structure and need no bounding.)
struct ProfileSummary {
  uint32_t K = 0;
  CallEdgeSummary CallEdges;
  std::map<uint64_t, ValueSiteSummary> Values;
  uint64_t ValuesTotal = 0;

  bool empty() const { return K == 0; }
};

/// Builds the bounded summary of \p B with at most \p K retained entries
/// per structure (K >= 1).
ProfileSummary summarizeBundle(const profile::ProfileBundle &B,
                               uint32_t K);

/// Merges \p Src into \p Dst.  Summaries must agree on K (and therefore
/// sketch geometry); returns false + \p Error on a mismatch.  Merging
/// into an empty (default) summary adopts Src wholesale.
bool mergeSummary(ProfileSummary &Dst, const ProfileSummary &Src,
                  std::string *Error = nullptr);

//===----------------------------------------------------------------------===//
// On-disk format (.arsp version 2: tagged summary sections)
//===----------------------------------------------------------------------===//

/// Format version for summary files.  Version 1 is the exact-bundle
/// format (ProfileIO.h); version 2 introduces tagged, length-prefixed
/// sections so readers can skip kinds they do not know.
constexpr uint32_t SummaryFormatVersion = 2;

/// Section kind tags in a version-2 file.
enum class SummarySection : uint8_t {
  CallEdgeSketch = 1,
  ValueTopK = 2,
};

std::string encodeSummary(const ProfileSummary &S, uint64_t Fingerprint);

struct SummaryDecodeResult {
  bool Ok = false;
  std::string Error;
  uint64_t Fingerprint = 0;
  ProfileSummary Summary;
};

SummaryDecodeResult decodeSummary(const std::string &Bytes,
                                  uint64_t ExpectedFingerprint = 0);

/// Atomic save / load, mirroring saveBundle/loadBundle.  \p Compress
/// wraps the encoding in the ARSZ block container (support/Compress.h);
/// loadSummary unwraps it transparently.
bool saveSummary(const std::string &Path, const ProfileSummary &S,
                 uint64_t Fingerprint, std::string *Error,
                 bool Compress = false);
SummaryDecodeResult loadSummary(const std::string &Path,
                                uint64_t ExpectedFingerprint = 0);

} // namespace profstore
} // namespace ars

#endif // ARS_PROFSTORE_SUMMARY_H
