//===- profstore/Journal.h - Write-ahead shard journal --------*- C++ -*-===//
///
/// \file
/// A CRC-framed, fsync-batched append-only write-ahead journal for the
/// collection server (DESIGN.md §15).  Every accepted PUSH is recorded
/// here — (session, seq, shard bytes) — *before* it is merged into the
/// in-memory aggregate, so a crash between two snapshots loses neither
/// merged deltas nor the (session, seq) dedup table: on restart the
/// server loads the last good snapshot and replays the journal tail,
/// after which post-restart retries of already-journaled sequence
/// numbers are detected as duplicates exactly as before the crash.
///
/// On-disk layout.  The journal is a sequence of segment files
/// `<base>.arsj.<NNNNNN>` with monotonically increasing indices; each
/// segment starts with a 16-byte header
///
///   "ARSJ"  magic, 4 bytes
///   u32     journal format version (currently 1)
///   u64     segment index
///
/// followed by length-prefixed records:
///
///   u32     payload length
///   payload u8 record type + type-specific body
///   u32     CRC32 of the payload
///
/// Record types:
///   Shard (1)      varint session, varint seq, rest = raw .arsp bytes
///   Checkpoint (2) fixed64 FNV-1a hash of the snapshot file bytes this
///                  checkpoint corresponds to, then the compact
///                  AppliedSeqs encoding (per session: varint id,
///                  varint contiguous-prefix watermark, varint extra
///                  count, ascending-delta varint extras)
///   Epoch (3)      varint keep-percentage of an epoch rotation, so
///                  replay re-applies decay in the journaled order
///
/// A torn or CRC-bad frame ends the scan of a segment (the tail a crash
/// left mid-write); appends that fail restore the previous file size
/// via ftruncate so the journal never accretes a corrupt middle.
///
/// Group commit: append*() only buffers into the OS file, sync() makes
/// everything appended so far durable with a single fsync that
/// concurrent committers piggyback on — the sync-push hot path pays one
/// fsync per frame *batch*, not per shard.
///
/// Checkpoint-then-truncate: checkpoint() rotates to a fresh segment
/// whose first record is a Checkpoint carrying the identity hash of the
/// snapshot bytes about to be written; once the caller has durably
/// written that snapshot it calls truncate() to delete all older
/// segments.  Recovery (recover()) hashes the snapshot bytes it
/// actually managed to load, finds the matching Checkpoint record, and
/// replays everything after it — so every crash window lands on either
/// the old state (old snapshot + old checkpoint + longer replay) or
/// the new one, never a torn mix.
///
/// The identity hash is support::fnv1a64, NOT crc32: snapshot files end
/// with their own CRC32 trailer, and crc32 of any such file is the
/// fixed residue 0x2144DF1C — under crc32 every checkpoint would
/// "match" every snapshot, so recovery would anchor at a torn
/// checkpoint whose snapshot never hit the disk and silently drop the
/// replay tail.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSTORE_JOURNAL_H
#define ARS_PROFSTORE_JOURNAL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace ars {
namespace profstore {

/// Journal format version; bumped on any incompatible layout change.
constexpr uint32_t JournalFormatVersion = 1;

/// The server's exactly-once dedup table: session id -> applied seqs.
using AppliedSeqMap = std::map<uint64_t, std::unordered_set<uint64_t>>;

/// Counters exposed through server STATS (wire v5).
struct JournalStats {
  uint64_t Records = 0;     ///< shard + epoch records appended
  uint64_t Syncs = 0;       ///< fsyncs actually issued (group commit)
  uint64_t Checkpoints = 0; ///< checkpoint records written
  uint64_t Failures = 0;    ///< failed appends / syncs / checkpoints
};

class Journal {
public:
  struct Config {
    /// Segment files live at BasePath + ".NNNNNN".  Required.
    std::string BasePath;
    /// Rotate to a new segment once the current one exceeds this.
    uint64_t MaxSegmentBytes = 4u << 20;
    /// fsync on sync()/checkpoint().  Off only for benches isolating
    /// the framing cost from the durability cost.
    bool Fsync = true;
    /// Chaos seam: called at named crash points ("wal.append.before",
    /// "wal.append.after", "wal.rotate.mid", "wal.checkpoint.mid").
    /// Returning true simulates the process dying there: the journal
    /// freezes (every later operation fails) and the op reports
    /// failure, exactly as if no code ran past that instant.
    std::function<bool(const char *Point)> CrashHook;
  };

  /// One replayable journal record.
  struct Record {
    enum class Kind { Shard, Epoch };
    Kind RecKind = Kind::Shard;
    uint64_t SessionId = 0; ///< Shard
    uint64_t Seq = 0;       ///< Shard
    std::string Arsp;       ///< Shard: raw encoded bundle bytes
    uint32_t KeepPct = 100; ///< Epoch
  };

  /// What recover() reconstructed from the segments on disk.
  struct Recovery {
    /// A checkpoint matching the snapshot hash was found; Records and
    /// Applied are meaningful.  When false the journal does not
    /// correspond to the loaded snapshot (e.g. the snapshot outlived a
    /// wiped journal) — the caller should wipe and start fresh rather
    /// than replay unrelated records.
    bool Matched = false;
    bool HadSegments = false; ///< any segment file existed at all
    std::string Error;        ///< diagnostic (scan always best-effort)
    std::vector<Record> Records; ///< replay these, in order
    AppliedSeqMap Applied;       ///< dedup table: checkpoint + replay
  };

  explicit Journal(Config C) : C(std::move(C)) {}
  ~Journal() { close(); }
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens for appending.  With existing segments, continues after the
  /// last clean frame of the last segment (truncating any torn tail).
  /// With none, creates segment 1 and writes an initial Checkpoint
  /// record describing the state the caller starts from: \p SnapshotHash
  /// is the fnv1a64 of the snapshot file bytes it loaded (0 when
  /// starting empty) and \p Applied its dedup table.
  bool open(uint64_t SnapshotHash, const AppliedSeqMap &Applied,
            std::string *Error);
  void close();

  /// Appends one shard record (no fsync; call sync() to commit).
  bool appendShard(uint64_t SessionId, uint64_t Seq,
                   const std::string &Arsp, std::string *Error);
  /// Appends one epoch-rotation record.
  bool appendEpoch(uint32_t KeepPct, std::string *Error);

  /// Group commit: everything appended before this call is durable when
  /// it returns true.  Concurrent callers share one fsync.
  bool sync(std::string *Error);

  /// Rotates to a fresh segment headed by a Checkpoint record for the
  /// snapshot bytes whose fnv1a64 is \p SnapshotHash, and makes it
  /// durable.  Call with no appenders in flight (the server holds its
  /// apply gate exclusively), then durably write the snapshot, then
  /// truncate().
  bool checkpoint(uint64_t SnapshotHash, const AppliedSeqMap &Applied,
                  std::string *Error);

  /// Deletes all segments older than the last checkpoint()'s segment.
  /// Only call after the matching snapshot write succeeded.
  bool truncate(std::string *Error);

  JournalStats stats() const;

  /// Scans the segments at \p BasePath and reconstructs the replay tail
  /// for a snapshot whose raw file bytes hash (fnv1a64) to
  /// \p SnapshotHash (0 = no snapshot was loaded).  Static: runs before
  /// the journal is opened.
  static Recovery recover(const std::string &BasePath,
                          uint64_t SnapshotHash);

  /// Removes every segment at \p BasePath (fresh start).
  static void wipe(const std::string &BasePath);

  /// Path of segment \p Index ("<base>.NNNNNN").
  static std::string segmentPath(const std::string &BasePath,
                                 uint64_t Index);

  /// Ascending indices of the segments present at \p BasePath.
  static std::vector<uint64_t> listSegments(const std::string &BasePath);

private:
  bool crashPointLocked(const char *Point);
  bool rotateLocked(std::string *Error);
  bool writeFrameLocked(uint8_t Type, const std::string &Body,
                        std::string *Error);
  bool syncFdLocked(std::string *Error);

  Config C;

  mutable std::mutex Mu;
  std::condition_variable SyncCv;
  int Fd = -1;               ///< current segment, O_APPEND
  uint64_t SegIndex = 0;     ///< current segment index
  uint64_t FirstSeg = 0;     ///< oldest retained segment
  uint64_t CheckpointSeg = 0;///< segment holding the last checkpoint
  uint64_t AppendOff = 0;    ///< clean end of the current segment
  uint64_t WrittenLsn = 0;   ///< records appended
  uint64_t SyncedLsn = 0;    ///< records known durable
  bool Syncing = false;      ///< a group-commit fsync is in flight
  bool Frozen = false;       ///< simulated crash: fail everything
  JournalStats S;
};

} // namespace profstore
} // namespace ars

#endif // ARS_PROFSTORE_JOURNAL_H
