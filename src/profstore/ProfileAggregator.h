//===- profstore/ProfileAggregator.h - Sharded aggregation ----*- C++ -*-===//
///
/// \file
/// A thread-safe, lock-striped accumulator of ProfileBundles for the
/// parallel harness: every finished RunMatrix cell flushes its bundle
/// into one of N independently locked stripes, and merged() folds the
/// stripes into one bundle.
///
/// Determinism does not come from the locking — workers flush in
/// completion order, which varies with the worker count — but from the
/// merge algebra: mergeBundle is commutative and associative with the
/// empty bundle as identity (see ProfileStore.h), and every profile map
/// is ordered, so any flush interleaving produces byte-identical
/// serializeBundle output.  tests/test_profstore.cpp pins this across
/// --jobs {1,2,8} and scripts/check.sh --tsan re-runs it under
/// ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFSTORE_PROFILEAGGREGATOR_H
#define ARS_PROFSTORE_PROFILEAGGREGATOR_H

#include "profile/Profiles.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ars {
namespace profstore {

struct ProfileSummary;

class ProfileAggregator {
public:
  /// \p Stripes is the lock-striping width; values below 1 select the
  /// default (16).  More stripes = less contention when many workers
  /// flush at once; any width yields the same merged bundle.
  explicit ProfileAggregator(int Stripes = 0);

  /// Merges \p B into stripe (\p Key % stripes()).  Any stable per-flush
  /// key works; the parallel harness uses the matrix cell index.
  void flush(size_t Key, const profile::ProfileBundle &B);

  /// Folds all stripes (in stripe order) into one bundle.
  profile::ProfileBundle merged() const;

  /// Folds all stripes into one bundle and resets them, without losing or
  /// double-counting any flush: each stripe is moved out under its lock.
  /// A flush racing with drain() lands either in the returned bundle or in
  /// the post-drain state — the epoch-rotation semantics the profile
  /// collection server relies on (see profserve/Server.h).
  profile::ProfileBundle drain();

  /// drain(), but folded stripe-by-stripe into a bounded ProfileSummary
  /// (profstore/Summary.h) instead of an exact bundle: the transient
  /// memory high-water mark is one stripe's bundle plus O(K) summary
  /// state, not the union of every stripe's key space.  Same
  /// epoch-rotation guarantee as drain().
  ProfileSummary drainSummary(uint32_t K);

  /// Total flush() calls so far.
  uint64_t flushes() const;

  int stripes() const { return static_cast<int>(Shards.size()); }

  /// Resets every stripe to empty.
  void clear();

private:
  struct Stripe {
    mutable std::mutex Mu;
    profile::ProfileBundle B;
    uint64_t Flushes = 0;
  };
  /// unique_ptrs, not values: Stripe holds a mutex and must not move.
  std::vector<std::unique_ptr<Stripe>> Shards;
};

} // namespace profstore
} // namespace ars

#endif // ARS_PROFSTORE_PROFILEAGGREGATOR_H
