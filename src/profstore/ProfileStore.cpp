//===- profstore/ProfileStore.cpp -----------------------------*- C++ -*-===//

#include "profstore/ProfileStore.h"

#include "profile/Overlap.h"
#include "support/Support.h"

#include <algorithm>
#include <cassert>
#include <vector>

using ars::support::formatString;

namespace ars {
namespace profstore {

namespace {

uint64_t scaleCount(uint64_t Count, uint64_t Num, uint64_t Den) {
  return static_cast<uint64_t>(static_cast<unsigned __int128>(Count) * Num /
                               Den);
}

/// Flattens a ValueProfile into one ordered (site, value) -> count map so
/// the generic overlap walk applies.  Overflow buckets are excluded: two
/// "other" buckets holding different folded values are not the same key.
std::map<std::pair<uint64_t, int64_t>, uint64_t>
flattenValues(const profile::ValueProfile &P, uint64_t *TotalOut) {
  std::map<std::pair<uint64_t, int64_t>, uint64_t> Flat;
  uint64_t Total = 0;
  for (const auto &[Site, Table] : P.sites())
    for (const auto &[Value, Count] : Table) {
      Flat[{Site, Value}] = Count;
      Total += Count;
    }
  *TotalOut = Total;
  return Flat;
}

} // namespace

void mergeBundle(profile::ProfileBundle &Dst,
                 const profile::ProfileBundle &Src) {
  for (const auto &[Key, Count] : Src.CallEdges.counts())
    Dst.CallEdges.record(Key, Count);
  for (size_t F = 0; F != Src.FieldAccesses.counts().size(); ++F)
    if (uint64_t Count = Src.FieldAccesses.counts()[F])
      Dst.FieldAccesses.record(static_cast<int>(F), Count);
  // record() only grows, so take the size union even when Src's tail is
  // all zeros.
  if (Src.FieldAccesses.counts().size() >
      Dst.FieldAccesses.counts().size()) {
    size_t Target = Src.FieldAccesses.counts().size();
    if (Target)
      Dst.FieldAccesses.record(static_cast<int>(Target - 1), 0);
  }
  for (const auto &[Key, Count] : Src.BlockCounts.counts())
    Dst.BlockCounts.record(Key.first, Key.second, Count);
  for (const auto &[Site, Table] : Src.Values.sites()) {
    for (const auto &[Value, Count] : Table)
      Dst.Values.add(Site, Value, Count);
    Dst.Values.addOverflow(Site, Src.Values.overflow(Site));
  }
  for (const auto &[Key, Count] : Src.Edges.counts())
    Dst.Edges.record(std::get<0>(Key), std::get<1>(Key), std::get<2>(Key),
                     Count);
  for (const auto &[Key, Count] : Src.Paths.counts())
    Dst.Paths.record(Key.first, Key.second, Count);
}

void scaleBundle(profile::ProfileBundle &B, uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "scaleBundle: zero denominator");
  profile::ProfileBundle Scaled;
  for (const auto &[Key, Count] : B.CallEdges.counts())
    if (uint64_t S = scaleCount(Count, Num, Den))
      Scaled.CallEdges.record(Key, S);
  Scaled.FieldAccesses.resize(
      static_cast<int>(B.FieldAccesses.counts().size()));
  for (size_t F = 0; F != B.FieldAccesses.counts().size(); ++F)
    if (uint64_t S = scaleCount(B.FieldAccesses.counts()[F], Num, Den))
      Scaled.FieldAccesses.record(static_cast<int>(F), S);
  for (const auto &[Key, Count] : B.BlockCounts.counts())
    if (uint64_t S = scaleCount(Count, Num, Den))
      Scaled.BlockCounts.record(Key.first, Key.second, S);
  for (const auto &[Site, Table] : B.Values.sites()) {
    bool SiteAlive = false;
    for (const auto &[Value, Count] : Table)
      if (uint64_t S = scaleCount(Count, Num, Den)) {
        Scaled.Values.add(Site, Value, S);
        SiteAlive = true;
      }
    uint64_t ScaledOverflow = scaleCount(B.Values.overflow(Site), Num, Den);
    if (ScaledOverflow || SiteAlive)
      Scaled.Values.addOverflow(Site, ScaledOverflow);
  }
  for (const auto &[Key, Count] : B.Edges.counts())
    if (uint64_t S = scaleCount(Count, Num, Den))
      Scaled.Edges.record(std::get<0>(Key), std::get<1>(Key),
                          std::get<2>(Key), S);
  for (const auto &[Key, Count] : B.Paths.counts())
    if (uint64_t S = scaleCount(Count, Num, Den))
      Scaled.Paths.record(Key.first, Key.second, S);
  B = std::move(Scaled);
}

void decayBundle(profile::ProfileBundle &B, uint32_t KeepPct) {
  scaleBundle(B, KeepPct, 100);
}

BundleOverlap overlapBundle(const profile::ProfileBundle &A,
                            const profile::ProfileBundle &B) {
  BundleOverlap O;
  O.CallEdges = profile::overlapPercent(A.CallEdges, B.CallEdges);
  O.FieldAccesses =
      profile::overlapPercent(A.FieldAccesses, B.FieldAccesses);
  O.BlockCounts = profile::overlapPercent(A.BlockCounts, B.BlockCounts);
  uint64_t TotalA = 0, TotalB = 0;
  auto FlatA = flattenValues(A.Values, &TotalA);
  auto FlatB = flattenValues(B.Values, &TotalB);
  O.Values = profile::overlapPercentMaps(FlatA, FlatB,
                                         static_cast<double>(TotalA),
                                         static_cast<double>(TotalB));
  O.Edges = profile::overlapPercentMaps(
      A.Edges.counts(), B.Edges.counts(),
      static_cast<double>(A.Edges.total()),
      static_cast<double>(B.Edges.total()));
  O.Paths = profile::overlapPercentMaps(
      A.Paths.counts(), B.Paths.counts(),
      static_cast<double>(A.Paths.total()),
      static_cast<double>(B.Paths.total()));
  return O;
}

std::string reportBundle(const profile::ProfileBundle &B, int TopK) {
  size_t ValueEntries = 0;
  for (const auto &[Site, Table] : B.Values.sites())
    ValueEntries += Table.size();
  std::string Out;
  auto line = [&Out](const char *Kind, size_t Entries, uint64_t Total) {
    Out += formatString("%-15s %8zu entries  total %llu\n", Kind, Entries,
                        static_cast<unsigned long long>(Total));
  };
  line("call-edges", B.CallEdges.counts().size(), B.CallEdges.total());
  line("field-accesses", B.FieldAccesses.counts().size(),
       B.FieldAccesses.total());
  line("block-counts", B.BlockCounts.counts().size(),
       B.BlockCounts.total());
  line("values", ValueEntries, B.Values.total());
  line("edges", B.Edges.counts().size(), B.Edges.total());
  line("paths", B.Paths.counts().size(), B.Paths.total());

  std::vector<std::pair<profile::CallEdgeKey, uint64_t>> Edges(
      B.CallEdges.counts().begin(), B.CallEdges.counts().end());
  std::stable_sort(
      Edges.begin(), Edges.end(),
      [](const auto &L, const auto &R) { return L.second > R.second; });
  if (TopK >= 0 && static_cast<size_t>(TopK) < Edges.size())
    Edges.resize(static_cast<size_t>(TopK));
  if (!Edges.empty())
    Out += "top call edges (caller/site/callee : count):\n";
  for (const auto &[Key, Count] : Edges) {
    double Pct = B.CallEdges.total()
                     ? 100.0 * static_cast<double>(Count) /
                           static_cast<double>(B.CallEdges.total())
                     : 0.0;
    Out += formatString("  %d/%d/%d : %llu (%.2f%%)\n", Key.Caller,
                        Key.Site, Key.Callee,
                        static_cast<unsigned long long>(Count), Pct);
  }
  return Out;
}

std::string diffReport(const profile::ProfileBundle &A,
                       const profile::ProfileBundle &B, int TopK) {
  BundleOverlap O = overlapBundle(A, B);
  std::string Out;
  Out += formatString("overlap%%: call-edges %.2f  field-accesses %.2f  "
                      "block-counts %.2f  values %.2f  edges %.2f  "
                      "paths %.2f\n",
                      O.CallEdges, O.FieldAccesses, O.BlockCounts,
                      O.Values, O.Edges, O.Paths);

  // Top movers: call edges ranked by |sample-percentage(A) - (B)|.
  struct Mover {
    profile::CallEdgeKey Key;
    double APct, BPct;
  };
  double TotalA = static_cast<double>(A.CallEdges.total());
  double TotalB = static_cast<double>(B.CallEdges.total());
  std::map<profile::CallEdgeKey, std::pair<uint64_t, uint64_t>> Union;
  for (const auto &[Key, Count] : A.CallEdges.counts())
    Union[Key].first = Count;
  for (const auto &[Key, Count] : B.CallEdges.counts())
    Union[Key].second = Count;
  std::vector<Mover> Movers;
  Movers.reserve(Union.size());
  for (const auto &[Key, Counts] : Union) {
    Mover M;
    M.Key = Key;
    M.APct = TotalA > 0
                 ? 100.0 * static_cast<double>(Counts.first) / TotalA
                 : 0.0;
    M.BPct = TotalB > 0
                 ? 100.0 * static_cast<double>(Counts.second) / TotalB
                 : 0.0;
    Movers.push_back(M);
  }
  std::stable_sort(Movers.begin(), Movers.end(),
                   [](const Mover &L, const Mover &R) {
                     return std::abs(L.APct - L.BPct) >
                            std::abs(R.APct - R.BPct);
                   });
  if (TopK >= 0 && static_cast<size_t>(TopK) < Movers.size())
    Movers.resize(static_cast<size_t>(TopK));
  if (!Movers.empty())
    Out += "top call-edge movers (caller/site/callee : A% -> B%):\n";
  for (const Mover &M : Movers)
    Out += formatString("  %d/%d/%d : %.2f%% -> %.2f%% (%+.2f)\n",
                        M.Key.Caller, M.Key.Site, M.Key.Callee, M.APct,
                        M.BPct, M.BPct - M.APct);
  return Out;
}

} // namespace profstore
} // namespace ars
