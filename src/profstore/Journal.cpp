//===- profstore/Journal.cpp ----------------------------------*- C++ -*-===//

#include "profstore/Journal.h"

#include "profstore/ProfileIO.h"
#include "support/Binary.h"
#include "support/Support.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ars::support;

namespace ars {
namespace profstore {

namespace {

constexpr char SegmentMagic[4] = {'A', 'R', 'S', 'J'};
constexpr size_t SegmentHeaderSize = 16; // magic + version + index
constexpr size_t FrameOverhead = 8;      // u32 length + u32 CRC

enum RecordType : uint8_t {
  RecShard = 1,
  RecCheckpoint = 2,
  RecEpoch = 3,
};

bool failJournal(std::string *Error, const std::string &What) {
  if (Error)
    *Error = What + ": " + std::strerror(errno ? errno : EIO);
  return false;
}

std::string encodeSegmentHeader(uint64_t Index) {
  std::string Out;
  Out.append(SegmentMagic, sizeof(SegmentMagic));
  appendFixed32(Out, JournalFormatVersion);
  appendFixed64(Out, Index);
  return Out;
}

void encodeApplied(std::string &Out, const AppliedSeqMap &Applied) {
  appendVarint(Out, Applied.size());
  for (const auto &[Session, Seqs] : Applied) {
    std::vector<uint64_t> Sorted(Seqs.begin(), Seqs.end());
    std::sort(Sorted.begin(), Sorted.end());
    // Watermark: longest contiguous prefix 1..W, stored once; only the
    // (rare, fault-induced) gaps above it are listed individually.
    uint64_t W = 0;
    size_t I = 0;
    while (I < Sorted.size() && Sorted[I] == W + 1) {
      ++W;
      ++I;
    }
    appendVarint(Out, Session);
    appendVarint(Out, W);
    appendVarint(Out, Sorted.size() - I);
    uint64_t Prev = W;
    for (; I < Sorted.size(); ++I) {
      appendVarint(Out, Sorted[I] - Prev);
      Prev = Sorted[I];
    }
  }
}

bool decodeApplied(ByteReader &R, AppliedSeqMap *Out) {
  uint64_t NumSessions;
  if (!R.readVarint(&NumSessions) || NumSessions > R.remaining() + 1)
    return false;
  for (uint64_t S = 0; S != NumSessions; ++S) {
    uint64_t Session, W, NumExtras;
    if (!R.readVarint(&Session) || !R.readVarint(&W) ||
        !R.readVarint(&NumExtras) || NumExtras > R.remaining() + 1)
      return false;
    auto &Set = (*Out)[Session];
    // A watermark corrupted upward would drive an unbounded loop of
    // inserts; the checkpoint frame CRC already vouches for the bytes,
    // so W is trusted only after that check upstream.
    for (uint64_t Seq = 1; Seq <= W; ++Seq)
      Set.insert(Seq);
    uint64_t Prev = W;
    for (uint64_t I = 0; I != NumExtras; ++I) {
      uint64_t Delta;
      if (!R.readVarint(&Delta))
        return false;
      Prev += Delta;
      Set.insert(Prev);
    }
  }
  return true;
}

struct ParsedRecord {
  uint8_t Type = 0;
  std::string Body; // payload minus the type byte
};

/// Splits \p Bytes (one segment, header included) into clean frames.
/// Stops — without error — at the first torn or CRC-bad frame: that is
/// the tail a crash left behind.  Returns false only when the segment
/// header itself is unusable.  \p CleanEnd gets the offset just past
/// the last valid frame (the append point for reopening).
bool parseSegment(const std::string &Bytes, uint64_t ExpectIndex,
                  std::vector<ParsedRecord> *Records, size_t *CleanEnd) {
  if (Bytes.size() < SegmentHeaderSize ||
      Bytes.compare(0, sizeof(SegmentMagic), SegmentMagic,
                    sizeof(SegmentMagic)) != 0)
    return false;
  ByteReader H(Bytes.data() + 4, SegmentHeaderSize - 4);
  uint32_t Version = 0;
  uint64_t Index = 0;
  H.readFixed32(&Version);
  H.readFixed64(&Index);
  if (Version != JournalFormatVersion || Index != ExpectIndex)
    return false;
  size_t Off = SegmentHeaderSize;
  while (Bytes.size() - Off >= FrameOverhead) {
    ByteReader R(Bytes.data() + Off, Bytes.size() - Off);
    uint32_t Len = 0;
    R.readFixed32(&Len);
    if (Len == 0 || Len > Bytes.size() - Off - FrameOverhead)
      break; // torn length or truncated payload
    const char *Payload = nullptr;
    R.readBytes(&Payload, Len);
    uint32_t Stored = 0;
    R.readFixed32(&Stored);
    if (support::crc32(Payload, Len) != Stored)
      break; // torn payload
    ParsedRecord Rec;
    Rec.Type = static_cast<uint8_t>(Payload[0]);
    Rec.Body.assign(Payload + 1, Len - 1);
    Records->push_back(std::move(Rec));
    Off += FrameOverhead + Len;
  }
  if (CleanEnd)
    *CleanEnd = Off;
  return true;
}

} // namespace

std::string Journal::segmentPath(const std::string &BasePath,
                                 uint64_t Index) {
  return support::formatString("%s.%06llu", BasePath.c_str(),
                               static_cast<unsigned long long>(Index));
}

std::vector<uint64_t> Journal::listSegments(const std::string &BasePath) {
  std::vector<uint64_t> Out;
  size_t Slash = BasePath.find_last_of('/');
  std::string Dir = Slash == std::string::npos
                        ? "."
                        : (Slash == 0 ? "/" : BasePath.substr(0, Slash));
  std::string Stem =
      (Slash == std::string::npos ? BasePath : BasePath.substr(Slash + 1)) +
      ".";
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() != Stem.size() + 6 || Name.compare(0, Stem.size(), Stem))
      continue;
    uint64_t Index = 0;
    bool Numeric = true;
    for (size_t I = Stem.size(); I < Name.size(); ++I) {
      if (Name[I] < '0' || Name[I] > '9') {
        Numeric = false;
        break;
      }
      Index = Index * 10 + static_cast<uint64_t>(Name[I] - '0');
    }
    if (Numeric && Index)
      Out.push_back(Index);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

void Journal::wipe(const std::string &BasePath) {
  for (uint64_t Index : listSegments(BasePath))
    std::remove(segmentPath(BasePath, Index).c_str());
}

bool Journal::crashPointLocked(const char *Point) {
  if (!Frozen && C.CrashHook && C.CrashHook(Point))
    Frozen = true;
  return Frozen;
}

bool Journal::writeFrameLocked(uint8_t Type, const std::string &Body,
                               std::string *Error) {
  std::string Payload;
  Payload.push_back(static_cast<char>(Type));
  Payload += Body;
  std::string Frame;
  appendFixed32(Frame, static_cast<uint32_t>(Payload.size()));
  Frame += Payload;
  appendFixed32(Frame, support::crc32(Payload.data(), Payload.size()));
  std::string Path = segmentPath(C.BasePath, SegIndex);
  if (!ioutil::writeAllFd(Fd, Path, Frame, Error)) {
    // Scrub the partial frame so the journal never carries a corrupt
    // middle: recovery only tolerates tears at the very end.
    if (::ftruncate(Fd, static_cast<off_t>(AppendOff)) != 0)
      Frozen = true; // cannot restore a clean tail: stop appending
    ++S.Failures;
    return false;
  }
  AppendOff += Frame.size();
  return true;
}

bool Journal::syncFdLocked(std::string *Error) {
  if (!C.Fsync)
    return true;
  std::string Path = segmentPath(C.BasePath, SegIndex);
  if (!ioutil::fsyncFd(Fd, Path, Error)) {
    ++S.Failures;
    return false;
  }
  ++S.Syncs;
  return true;
}

bool Journal::rotateLocked(std::string *Error) {
  // Settle the outgoing segment before the new one becomes the append
  // target; anything buffered there is durable from here on.
  if (!syncFdLocked(Error))
    return false;
  ::close(Fd);
  Fd = -1;
  ++SegIndex;
  std::string Path = segmentPath(C.BasePath, SegIndex);
  int NewFd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (NewFd < 0)
    return failJournal(Error, "cannot create journal segment " + Path);
  Fd = NewFd;
  AppendOff = 0;
  if (!ioutil::writeAllFd(Fd, Path, encodeSegmentHeader(SegIndex), Error))
    return false;
  AppendOff = SegmentHeaderSize;
  if (crashPointLocked("wal.rotate.mid")) {
    if (Error)
      *Error = "crash injected at wal.rotate.mid";
    return false;
  }
  if (!syncFdLocked(Error) ||
      (C.Fsync && !ioutil::fsyncDirOf(Path, Error)))
    return false;
  SyncedLsn = WrittenLsn;
  return true;
}

bool Journal::open(uint64_t SnapshotHash, const AppliedSeqMap &Applied,
                   std::string *Error) {
  std::lock_guard<std::mutex> L(Mu);
  if (Fd >= 0) {
    if (Error)
      *Error = "journal already open";
    return false;
  }
  std::vector<uint64_t> Segs = listSegments(C.BasePath);
  if (Segs.empty()) {
    SegIndex = FirstSeg = CheckpointSeg = 1;
    std::string Path = segmentPath(C.BasePath, SegIndex);
    Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                0644);
    if (Fd < 0)
      return failJournal(Error, "cannot create journal segment " + Path);
    AppendOff = 0;
    if (!ioutil::writeAllFd(Fd, Path, encodeSegmentHeader(SegIndex),
                            Error))
      return false;
    AppendOff = SegmentHeaderSize;
    std::string Body;
    appendFixed64(Body, SnapshotHash);
    encodeApplied(Body, Applied);
    if (!writeFrameLocked(RecCheckpoint, Body, Error) ||
        !syncFdLocked(Error) ||
        (C.Fsync && !ioutil::fsyncDirOf(Path, Error)))
      return false;
    ++S.Checkpoints;
    return true;
  }
  // Continue after the last clean frame of the last segment; the
  // recovery anchor (the checkpoint recover() matched) stays in place
  // until the next checkpoint() rotates past it.
  FirstSeg = Segs.front();
  SegIndex = Segs.back();
  CheckpointSeg = FirstSeg;
  std::string Path = segmentPath(C.BasePath, SegIndex);
  std::string Bytes;
  if (!ioutil::readFileRaw(Path, &Bytes))
    return failJournal(Error, "cannot read journal segment " + Path);
  std::vector<ParsedRecord> Records;
  size_t CleanEnd = 0;
  if (!parseSegment(Bytes, SegIndex, &Records, &CleanEnd)) {
    if (Error)
      *Error = "journal segment " + Path + " has an unusable header";
    return false;
  }
  Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (Fd < 0)
    return failJournal(Error, "cannot open journal segment " + Path);
  if (CleanEnd < Bytes.size() &&
      ::ftruncate(Fd, static_cast<off_t>(CleanEnd)) != 0) {
    ::close(Fd);
    Fd = -1;
    return failJournal(Error, "cannot trim torn tail of " + Path);
  }
  AppendOff = CleanEnd;
  (void)SnapshotHash;
  return true;
}

void Journal::close() {
  std::lock_guard<std::mutex> L(Mu);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Journal::appendShard(uint64_t SessionId, uint64_t Seq,
                          const std::string &Arsp, std::string *Error) {
  std::lock_guard<std::mutex> L(Mu);
  if (Fd < 0) {
    if (Error)
      *Error = "journal is not open";
    return false;
  }
  if (crashPointLocked("wal.append.before")) {
    if (Error)
      *Error = "crash injected at wal.append.before";
    ++S.Failures;
    return false;
  }
  if (AppendOff >= C.MaxSegmentBytes && !rotateLocked(Error))
    return false;
  std::string Body;
  appendVarint(Body, SessionId);
  appendVarint(Body, Seq);
  Body += Arsp;
  if (!writeFrameLocked(RecShard, Body, Error))
    return false;
  ++S.Records;
  ++WrittenLsn;
  if (crashPointLocked("wal.append.after")) {
    // The record is on disk (recovery will replay it); the simulated
    // process died before merging or acking, so the caller must treat
    // the push as failed.
    if (Error)
      *Error = "crash injected at wal.append.after";
    ++S.Failures;
    return false;
  }
  return true;
}

bool Journal::appendEpoch(uint32_t KeepPct, std::string *Error) {
  std::lock_guard<std::mutex> L(Mu);
  if (Fd < 0 || Frozen) {
    if (Error)
      *Error = Fd < 0 ? "journal is not open" : "journal is frozen";
    ++S.Failures;
    return false;
  }
  if (AppendOff >= C.MaxSegmentBytes && !rotateLocked(Error))
    return false;
  std::string Body;
  appendVarint(Body, KeepPct);
  if (!writeFrameLocked(RecEpoch, Body, Error))
    return false;
  ++S.Records;
  ++WrittenLsn;
  return true;
}

bool Journal::sync(std::string *Error) {
  std::unique_lock<std::mutex> L(Mu);
  if (Fd < 0) {
    if (Error)
      *Error = "journal is not open";
    return false;
  }
  uint64_t Target = WrittenLsn;
  while (SyncedLsn < Target) {
    if (Frozen) {
      if (Error)
        *Error = "journal is frozen";
      ++S.Failures;
      return false;
    }
    if (!Syncing) {
      // This thread drives the group commit; everything written up to
      // Covers rides the one fsync, and waiters below observe the
      // advanced SyncedLsn instead of issuing their own.
      Syncing = true;
      uint64_t Covers = WrittenLsn;
      int LocalFd = Fd;
      std::string Path = segmentPath(C.BasePath, SegIndex);
      bool Ok = true;
      std::string SyncErr;
      if (C.Fsync) {
        L.unlock();
        Ok = ioutil::fsyncFd(LocalFd, Path, &SyncErr);
        L.lock();
      }
      Syncing = false;
      if (Ok) {
        SyncedLsn = std::max(SyncedLsn, Covers);
        if (C.Fsync)
          ++S.Syncs;
      }
      SyncCv.notify_all();
      if (!Ok) {
        ++S.Failures;
        if (Error)
          *Error = SyncErr;
        return false;
      }
    } else {
      SyncCv.wait(L);
    }
  }
  return true;
}

bool Journal::checkpoint(uint64_t SnapshotHash,
                         const AppliedSeqMap &Applied, std::string *Error) {
  std::lock_guard<std::mutex> L(Mu);
  if (Fd < 0 || Frozen) {
    if (Error)
      *Error = Fd < 0 ? "journal is not open" : "journal is frozen";
    ++S.Failures;
    return false;
  }
  if (!rotateLocked(Error))
    return false;
  std::string Body;
  appendFixed64(Body, SnapshotHash);
  encodeApplied(Body, Applied);
  if (!writeFrameLocked(RecCheckpoint, Body, Error))
    return false;
  ++WrittenLsn;
  if (crashPointLocked("wal.checkpoint.mid")) {
    // The checkpoint record exists but the matching snapshot was never
    // written: recovery will match the *previous* checkpoint via the
    // old snapshot's CRC and replay through this one harmlessly.
    if (Error)
      *Error = "crash injected at wal.checkpoint.mid";
    ++S.Failures;
    return false;
  }
  if (!syncFdLocked(Error))
    return false;
  SyncedLsn = WrittenLsn;
  ++S.Checkpoints;
  CheckpointSeg = SegIndex;
  return true;
}

bool Journal::truncate(std::string *Error) {
  std::lock_guard<std::mutex> L(Mu);
  bool Ok = true;
  for (; FirstSeg < CheckpointSeg; ++FirstSeg) {
    std::string Path = segmentPath(C.BasePath, FirstSeg);
    if (std::remove(Path.c_str()) != 0 && errno != ENOENT)
      Ok = failJournal(Error, "cannot remove journal segment " + Path);
  }
  return Ok;
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return S;
}

Journal::Recovery Journal::recover(const std::string &BasePath,
                                   uint64_t SnapshotHash) {
  Recovery Out;
  std::vector<uint64_t> Segs = listSegments(BasePath);
  if (Segs.empty())
    return Out;
  Out.HadSegments = true;
  // Flatten every clean frame across segments, remembering where each
  // checkpoint sits so the replay tail can start right after the one
  // that matches the loaded snapshot.
  std::vector<ParsedRecord> All;
  std::vector<std::pair<size_t, uint64_t>> Checkpoints; // index, hash
  for (uint64_t Index : Segs) {
    std::string Bytes;
    std::string Path = segmentPath(BasePath, Index);
    if (!ioutil::readFileRaw(Path, &Bytes)) {
      Out.Error = "cannot read journal segment " + Path;
      break;
    }
    std::vector<ParsedRecord> Records;
    if (!parseSegment(Bytes, Index, &Records, nullptr)) {
      // A headerless segment is the tail of a crashed rotation; it can
      // only be the last segment and carries nothing replayable.
      Out.Error = "journal segment " + Path + " has an unusable header";
      break;
    }
    for (auto &Rec : Records) {
      if (Rec.Type == RecCheckpoint) {
        ByteReader R(Rec.Body.data(), Rec.Body.size());
        uint64_t Hash = 0;
        if (R.readFixed64(&Hash))
          Checkpoints.emplace_back(All.size(), Hash);
      }
      All.push_back(std::move(Rec));
    }
  }
  // Latest matching checkpoint wins: repeated checkpoints of an
  // unchanged snapshot share a hash, and the newest one has the shortest
  // (correct) replay tail.
  size_t Start = All.size();
  for (auto It = Checkpoints.rbegin(); It != Checkpoints.rend(); ++It) {
    if (It->second == SnapshotHash) {
      ByteReader R(All[It->first].Body.data(), All[It->first].Body.size());
      uint64_t Hash = 0;
      R.readFixed64(&Hash);
      AppliedSeqMap Applied;
      if (!decodeApplied(R, &Applied))
        continue; // hash collision with garbage: try an older one
      Out.Matched = true;
      Out.Applied = std::move(Applied);
      Start = It->first + 1;
      break;
    }
  }
  if (!Out.Matched)
    return Out;
  for (size_t I = Start; I < All.size(); ++I) {
    const ParsedRecord &Rec = All[I];
    ByteReader R(Rec.Body.data(), Rec.Body.size());
    if (Rec.Type == RecShard) {
      Record Replay;
      Replay.RecKind = Record::Kind::Shard;
      if (!R.readVarint(&Replay.SessionId) || !R.readVarint(&Replay.Seq))
        continue;
      // A failed group commit can leave the same (session, seq) in the
      // journal twice (append ok, fsync failed, client retried); the
      // dedup table that replay rebuilds also dedups the replay itself.
      if (Replay.SessionId && Replay.Seq &&
          !Out.Applied[Replay.SessionId].insert(Replay.Seq).second)
        continue;
      Replay.Arsp.assign(Rec.Body.data() + R.position(),
                         Rec.Body.size() - R.position());
      Out.Records.push_back(std::move(Replay));
    } else if (Rec.Type == RecEpoch) {
      uint64_t KeepPct = 0;
      if (!R.readVarint(&KeepPct))
        continue;
      Record Replay;
      Replay.RecKind = Record::Kind::Epoch;
      Replay.KeepPct = static_cast<uint32_t>(KeepPct);
      Out.Records.push_back(std::move(Replay));
    }
    // Later checkpoint records are just markers; the matched one's
    // Applied table plus the replayed registrations reconstruct the
    // full dedup state.
  }
  return Out;
}

} // namespace profstore
} // namespace ars
