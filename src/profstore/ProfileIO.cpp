//===- profstore/ProfileIO.cpp --------------------------------*- C++ -*-===//

#include "profstore/ProfileIO.h"

#include "support/Binary.h"
#include "support/Support.h"

#include <fstream>
#include <sstream>

using namespace ars::support;

namespace ars {
namespace profstore {

const char FormatMagic[4] = {'A', 'R', 'S', 'P'};

namespace {

// Header: magic(4) + version(4) + fingerprint(8); trailer: CRC32(4).
constexpr size_t HeaderSize = 16;
constexpr size_t TrailerSize = 4;

//===----------------------------------------------------------------------===//
// Encoding.  Every map iterates in key order, so per-component deltas are
// small and the byte stream is canonical for a given bundle.
//===----------------------------------------------------------------------===//

void encodeCallEdges(std::string &Out, const profile::CallEdgeProfile &P) {
  appendVarint(Out, P.counts().size());
  profile::CallEdgeKey Prev;
  Prev.Caller = Prev.Site = Prev.Callee = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, Key.Caller - Prev.Caller);
    appendSignedVarint(Out, Key.Site - Prev.Site);
    appendSignedVarint(Out, Key.Callee - Prev.Callee);
    appendVarint(Out, Count);
    Prev = Key;
  }
}

void encodeFieldAccesses(std::string &Out,
                         const profile::FieldAccessProfile &P) {
  appendVarint(Out, P.counts().size());
  for (uint64_t Count : P.counts())
    appendVarint(Out, Count);
}

void encodeBlockCounts(std::string &Out,
                       const profile::BlockCountProfile &P) {
  appendVarint(Out, P.counts().size());
  int PrevFunc = 0, PrevBlock = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, Key.first - PrevFunc);
    appendSignedVarint(Out, Key.second - PrevBlock);
    appendVarint(Out, Count);
    PrevFunc = Key.first;
    PrevBlock = Key.second;
  }
}

void encodeValues(std::string &Out, const profile::ValueProfile &P) {
  appendVarint(Out, P.sites().size());
  uint64_t PrevSite = 0;
  for (const auto &[Site, Table] : P.sites()) {
    appendVarint(Out, Site - PrevSite); // sites ascend: unsigned delta
    PrevSite = Site;
    appendVarint(Out, P.overflow(Site));
    appendVarint(Out, Table.size());
    int64_t PrevValue = 0;
    for (const auto &[Value, Count] : Table) {
      appendSignedVarint(Out, Value - PrevValue);
      appendVarint(Out, Count);
      PrevValue = Value;
    }
  }
}

void encodeEdges(std::string &Out, const profile::EdgeCountProfile &P) {
  appendVarint(Out, P.counts().size());
  int PrevFunc = 0, PrevFrom = 0, PrevTo = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, std::get<0>(Key) - PrevFunc);
    appendSignedVarint(Out, std::get<1>(Key) - PrevFrom);
    appendSignedVarint(Out, std::get<2>(Key) - PrevTo);
    appendVarint(Out, Count);
    PrevFunc = std::get<0>(Key);
    PrevFrom = std::get<1>(Key);
    PrevTo = std::get<2>(Key);
  }
}

void encodePaths(std::string &Out, const profile::PathProfile &P) {
  appendVarint(Out, P.counts().size());
  int PrevFunc = 0;
  int64_t PrevPath = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, Key.first - PrevFunc);
    appendSignedVarint(Out, Key.second - PrevPath);
    appendVarint(Out, Count);
    PrevFunc = Key.first;
    PrevPath = Key.second;
  }
}

//===----------------------------------------------------------------------===//
// Decoding.  Each section pre-checks its claimed entry count against the
// bytes actually remaining (every entry is at least one byte), so a
// corrupted count can never drive a huge allocation.
//===----------------------------------------------------------------------===//

bool countPlausible(ByteReader &R, uint64_t N, size_t MinBytesPerEntry) {
  return N <= R.remaining() / MinBytesPerEntry + 1;
}

bool decodeCallEdges(ByteReader &R, profile::CallEdgeProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 4))
    return false;
  profile::CallEdgeKey Key;
  Key.Caller = Key.Site = Key.Callee = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DCaller, DSite, DCallee;
    uint64_t Count;
    if (!R.readSignedVarint(&DCaller) || !R.readSignedVarint(&DSite) ||
        !R.readSignedVarint(&DCallee) || !R.readVarint(&Count))
      return false;
    Key.Caller += static_cast<int>(DCaller);
    Key.Site += static_cast<int>(DSite);
    Key.Callee += static_cast<int>(DCallee);
    P->record(Key, Count);
  }
  return true;
}

bool decodeFieldAccesses(ByteReader &R, profile::FieldAccessProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 1))
    return false;
  // countPlausible bounds the allocation by the buffer size, but the cast
  // below must also never truncate: a >2 GiB buffer could otherwise turn a
  // huge declared count into a negative resize.
  if (N > static_cast<uint64_t>(INT32_MAX))
    return false;
  P->resize(static_cast<int>(N));
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Count;
    if (!R.readVarint(&Count))
      return false;
    if (Count)
      P->record(static_cast<int>(I), Count);
  }
  return true;
}

bool decodeBlockCounts(ByteReader &R, profile::BlockCountProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 3))
    return false;
  int Func = 0, Block = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DFunc, DBlock;
    uint64_t Count;
    if (!R.readSignedVarint(&DFunc) || !R.readSignedVarint(&DBlock) ||
        !R.readVarint(&Count))
      return false;
    Func += static_cast<int>(DFunc);
    Block += static_cast<int>(DBlock);
    P->record(Func, Block, Count);
  }
  return true;
}

bool decodeValues(ByteReader &R, profile::ValueProfile *P) {
  uint64_t NumSites;
  if (!R.readVarint(&NumSites) || !countPlausible(R, NumSites, 3))
    return false;
  uint64_t Site = 0;
  for (uint64_t S = 0; S != NumSites; ++S) {
    uint64_t DSite, OverflowCount, NumValues;
    if (!R.readVarint(&DSite) || !R.readVarint(&OverflowCount) ||
        !R.readVarint(&NumValues) || !countPlausible(R, NumValues, 2))
      return false;
    Site += DSite;
    int64_t Value = 0;
    for (uint64_t V = 0; V != NumValues; ++V) {
      int64_t DValue;
      uint64_t Count;
      if (!R.readSignedVarint(&DValue) || !R.readVarint(&Count))
        return false;
      Value += DValue;
      P->add(Site, Value, Count);
    }
    if (OverflowCount)
      P->addOverflow(Site, OverflowCount);
    else if (!NumValues)
      P->addOverflow(Site, 0); // keep an entirely empty site alive
  }
  return true;
}

bool decodeEdges(ByteReader &R, profile::EdgeCountProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 4))
    return false;
  int Func = 0, From = 0, To = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DFunc, DFrom, DTo;
    uint64_t Count;
    if (!R.readSignedVarint(&DFunc) || !R.readSignedVarint(&DFrom) ||
        !R.readSignedVarint(&DTo) || !R.readVarint(&Count))
      return false;
    Func += static_cast<int>(DFunc);
    From += static_cast<int>(DFrom);
    To += static_cast<int>(DTo);
    P->record(Func, From, To, Count);
  }
  return true;
}

bool decodePaths(ByteReader &R, profile::PathProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 3))
    return false;
  int Func = 0;
  int64_t Path = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DFunc, DPath;
    uint64_t Count;
    if (!R.readSignedVarint(&DFunc) || !R.readSignedVarint(&DPath) ||
        !R.readVarint(&Count))
      return false;
    Func += static_cast<int>(DFunc);
    Path += DPath;
    P->record(Func, Path, Count);
  }
  return true;
}

DecodeResult failDecode(const std::string &Why) {
  DecodeResult R;
  R.Error = Why;
  return R;
}

} // namespace

std::string encodeBundle(const profile::ProfileBundle &B,
                         uint64_t Fingerprint) {
  std::string Out;
  Out.append(FormatMagic, sizeof(FormatMagic));
  appendFixed32(Out, FormatVersion);
  appendFixed64(Out, Fingerprint);
  encodeCallEdges(Out, B.CallEdges);
  encodeFieldAccesses(Out, B.FieldAccesses);
  encodeBlockCounts(Out, B.BlockCounts);
  encodeValues(Out, B.Values);
  encodeEdges(Out, B.Edges);
  encodePaths(Out, B.Paths);
  appendFixed32(Out, crc32(Out.data(), Out.size()));
  return Out;
}

DecodeResult decodeBundle(const std::string &Bytes,
                          uint64_t ExpectedFingerprint) {
  if (Bytes.size() < HeaderSize + TrailerSize)
    return failDecode(support::formatString(
        "profile truncated: %zu bytes, need at least %zu", Bytes.size(),
        HeaderSize + TrailerSize));
  if (Bytes.compare(0, sizeof(FormatMagic), FormatMagic,
                    sizeof(FormatMagic)) != 0)
    return failDecode("not a profile file (bad magic; expected \"ARSP\")");

  // Verify the CRC over everything before the trailer first: a mismatch
  // means any later parse diagnosis would be of corrupted bytes.
  ByteReader Trailer(Bytes.data() + Bytes.size() - TrailerSize,
                     TrailerSize);
  uint32_t StoredCrc = 0;
  Trailer.readFixed32(&StoredCrc);
  uint32_t ActualCrc = crc32(Bytes.data(), Bytes.size() - TrailerSize);
  if (StoredCrc != ActualCrc)
    return failDecode(support::formatString(
        "profile corrupted: CRC32 mismatch (stored %08x, computed %08x)",
        StoredCrc, ActualCrc));

  ByteReader R(Bytes.data(), Bytes.size() - TrailerSize);
  uint32_t Magic, Version;
  uint64_t Fingerprint;
  R.readFixed32(&Magic); // magic already validated; just advance
  if (!R.readFixed32(&Version) || !R.readFixed64(&Fingerprint))
    return failDecode("profile truncated inside the header");
  if (Version != FormatVersion)
    return failDecode(support::formatString(
        "unsupported profile format version %u (this build reads %u)",
        Version, FormatVersion));
  if (ExpectedFingerprint && Fingerprint != ExpectedFingerprint)
    return failDecode(support::formatString(
        "profile was collected from a different module: fingerprint "
        "%016llx, expected %016llx",
        static_cast<unsigned long long>(Fingerprint),
        static_cast<unsigned long long>(ExpectedFingerprint)));

  DecodeResult Result;
  Result.Fingerprint = Fingerprint;
  if (!decodeCallEdges(R, &Result.Bundle.CallEdges) ||
      !decodeFieldAccesses(R, &Result.Bundle.FieldAccesses) ||
      !decodeBlockCounts(R, &Result.Bundle.BlockCounts) ||
      !decodeValues(R, &Result.Bundle.Values) ||
      !decodeEdges(R, &Result.Bundle.Edges) ||
      !decodePaths(R, &Result.Bundle.Paths))
    return failDecode(support::formatString(
        "profile malformed near byte %zu", R.position()));
  if (!R.atEnd())
    return failDecode(support::formatString(
        "profile has %zu trailing bytes after the last section",
        R.remaining()));
  Result.Ok = true;
  return Result;
}

bool saveBundle(const std::string &Path, const profile::ProfileBundle &B,
                uint64_t Fingerprint, std::string *Error) {
  std::string Bytes = encodeBundle(B, Fingerprint);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out || !Out.write(Bytes.data(),
                         static_cast<std::streamsize>(Bytes.size()))) {
    if (Error)
      *Error = "cannot write " + Path;
    return false;
  }
  return true;
}

DecodeResult loadBundle(const std::string &Path,
                        uint64_t ExpectedFingerprint) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return failDecode("cannot read " + Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return decodeBundle(Buffer.str(), ExpectedFingerprint);
}

} // namespace profstore
} // namespace ars
