//===- profstore/ProfileIO.cpp --------------------------------*- C++ -*-===//

#include "profstore/ProfileIO.h"

#include "support/Binary.h"
#include "support/Compress.h"
#include "support/Support.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace ars::support;

namespace ars {
namespace profstore {

const char FormatMagic[4] = {'A', 'R', 'S', 'P'};

namespace {

// Header: magic(4) + version(4) + fingerprint(8); trailer: CRC32(4).
constexpr size_t HeaderSize = 16;
constexpr size_t TrailerSize = 4;

//===----------------------------------------------------------------------===//
// Encoding.  Every map iterates in key order, so per-component deltas are
// small and the byte stream is canonical for a given bundle.
//===----------------------------------------------------------------------===//

/// Component deltas are computed and re-applied in two's-complement
/// (unsigned) arithmetic: INT_MAX - INT_MIN or INT64_MAX - INT64_MIN
/// does not fit the signed type, but the zigzag varint stores the
/// wrapped delta and the decoder's wrapping add reverses it exactly.
int64_t wrapDelta(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

void encodeCallEdges(std::string &Out, const profile::CallEdgeProfile &P) {
  appendVarint(Out, P.counts().size());
  profile::CallEdgeKey Prev;
  Prev.Caller = Prev.Site = Prev.Callee = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, wrapDelta(Key.Caller, Prev.Caller));
    appendSignedVarint(Out, wrapDelta(Key.Site, Prev.Site));
    appendSignedVarint(Out, wrapDelta(Key.Callee, Prev.Callee));
    appendVarint(Out, Count);
    Prev = Key;
  }
}

void encodeFieldAccesses(std::string &Out,
                         const profile::FieldAccessProfile &P) {
  appendVarint(Out, P.counts().size());
  for (uint64_t Count : P.counts())
    appendVarint(Out, Count);
}

void encodeBlockCounts(std::string &Out,
                       const profile::BlockCountProfile &P) {
  appendVarint(Out, P.counts().size());
  int PrevFunc = 0, PrevBlock = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, wrapDelta(Key.first, PrevFunc));
    appendSignedVarint(Out, wrapDelta(Key.second, PrevBlock));
    appendVarint(Out, Count);
    PrevFunc = Key.first;
    PrevBlock = Key.second;
  }
}

void encodeValues(std::string &Out, const profile::ValueProfile &P) {
  appendVarint(Out, P.sites().size());
  uint64_t PrevSite = 0;
  for (const auto &[Site, Table] : P.sites()) {
    appendVarint(Out, Site - PrevSite); // sites ascend: unsigned delta
    PrevSite = Site;
    appendVarint(Out, P.overflow(Site));
    appendVarint(Out, Table.size());
    int64_t PrevValue = 0;
    for (const auto &[Value, Count] : Table) {
      appendSignedVarint(Out, wrapDelta(Value, PrevValue));
      appendVarint(Out, Count);
      PrevValue = Value;
    }
  }
}

void encodeEdges(std::string &Out, const profile::EdgeCountProfile &P) {
  appendVarint(Out, P.counts().size());
  int PrevFunc = 0, PrevFrom = 0, PrevTo = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, wrapDelta(std::get<0>(Key), PrevFunc));
    appendSignedVarint(Out, wrapDelta(std::get<1>(Key), PrevFrom));
    appendSignedVarint(Out, wrapDelta(std::get<2>(Key), PrevTo));
    appendVarint(Out, Count);
    PrevFunc = std::get<0>(Key);
    PrevFrom = std::get<1>(Key);
    PrevTo = std::get<2>(Key);
  }
}

void encodePaths(std::string &Out, const profile::PathProfile &P) {
  appendVarint(Out, P.counts().size());
  int PrevFunc = 0;
  int64_t PrevPath = 0;
  for (const auto &[Key, Count] : P.counts()) {
    appendSignedVarint(Out, wrapDelta(Key.first, PrevFunc));
    appendSignedVarint(Out, wrapDelta(Key.second, PrevPath));
    appendVarint(Out, Count);
    PrevFunc = Key.first;
    PrevPath = Key.second;
  }
}

//===----------------------------------------------------------------------===//
// Decoding.  Each section pre-checks its claimed entry count against the
// bytes actually remaining (every entry is at least one byte), so a
// corrupted count can never drive a huge allocation.
//===----------------------------------------------------------------------===//

bool countPlausible(ByteReader &R, uint64_t N, size_t MinBytesPerEntry) {
  return N <= R.remaining() / MinBytesPerEntry + 1;
}

bool decodeCallEdges(ByteReader &R, profile::CallEdgeProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 4))
    return false;
  profile::CallEdgeKey Key;
  Key.Caller = Key.Site = Key.Callee = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DCaller, DSite, DCallee;
    uint64_t Count;
    if (!R.readSignedVarint(&DCaller) || !R.readSignedVarint(&DSite) ||
        !R.readSignedVarint(&DCallee) || !R.readVarint(&Count))
      return false;
    Key.Caller = static_cast<int>(wrapAdd(Key.Caller, DCaller));
    Key.Site = static_cast<int>(wrapAdd(Key.Site, DSite));
    Key.Callee = static_cast<int>(wrapAdd(Key.Callee, DCallee));
    P->record(Key, Count);
  }
  return true;
}

bool decodeFieldAccesses(ByteReader &R, profile::FieldAccessProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 1))
    return false;
  // countPlausible bounds the allocation by the buffer size, but the cast
  // below must also never truncate: a >2 GiB buffer could otherwise turn a
  // huge declared count into a negative resize.
  if (N > static_cast<uint64_t>(INT32_MAX))
    return false;
  P->resize(static_cast<int>(N));
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Count;
    if (!R.readVarint(&Count))
      return false;
    if (Count)
      P->record(static_cast<int>(I), Count);
  }
  return true;
}

bool decodeBlockCounts(ByteReader &R, profile::BlockCountProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 3))
    return false;
  int Func = 0, Block = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DFunc, DBlock;
    uint64_t Count;
    if (!R.readSignedVarint(&DFunc) || !R.readSignedVarint(&DBlock) ||
        !R.readVarint(&Count))
      return false;
    Func = static_cast<int>(wrapAdd(Func, DFunc));
    Block = static_cast<int>(wrapAdd(Block, DBlock));
    P->record(Func, Block, Count);
  }
  return true;
}

bool decodeValues(ByteReader &R, profile::ValueProfile *P) {
  uint64_t NumSites;
  if (!R.readVarint(&NumSites) || !countPlausible(R, NumSites, 3))
    return false;
  uint64_t Site = 0;
  for (uint64_t S = 0; S != NumSites; ++S) {
    uint64_t DSite, OverflowCount, NumValues;
    if (!R.readVarint(&DSite) || !R.readVarint(&OverflowCount) ||
        !R.readVarint(&NumValues) || !countPlausible(R, NumValues, 2))
      return false;
    Site += DSite;
    int64_t Value = 0;
    for (uint64_t V = 0; V != NumValues; ++V) {
      int64_t DValue;
      uint64_t Count;
      if (!R.readSignedVarint(&DValue) || !R.readVarint(&Count))
        return false;
      Value = wrapAdd(Value, DValue);
      P->add(Site, Value, Count);
    }
    if (OverflowCount)
      P->addOverflow(Site, OverflowCount);
    else if (!NumValues)
      P->addOverflow(Site, 0); // keep an entirely empty site alive
  }
  return true;
}

bool decodeEdges(ByteReader &R, profile::EdgeCountProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 4))
    return false;
  int Func = 0, From = 0, To = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DFunc, DFrom, DTo;
    uint64_t Count;
    if (!R.readSignedVarint(&DFunc) || !R.readSignedVarint(&DFrom) ||
        !R.readSignedVarint(&DTo) || !R.readVarint(&Count))
      return false;
    Func = static_cast<int>(wrapAdd(Func, DFunc));
    From = static_cast<int>(wrapAdd(From, DFrom));
    To = static_cast<int>(wrapAdd(To, DTo));
    P->record(Func, From, To, Count);
  }
  return true;
}

bool decodePaths(ByteReader &R, profile::PathProfile *P) {
  uint64_t N;
  if (!R.readVarint(&N) || !countPlausible(R, N, 3))
    return false;
  int Func = 0;
  int64_t Path = 0;
  for (uint64_t I = 0; I != N; ++I) {
    int64_t DFunc, DPath;
    uint64_t Count;
    if (!R.readSignedVarint(&DFunc) || !R.readSignedVarint(&DPath) ||
        !R.readVarint(&Count))
      return false;
    Func = static_cast<int>(wrapAdd(Func, DFunc));
    Path = wrapAdd(Path, DPath);
    P->record(Func, Path, Count);
  }
  return true;
}

DecodeResult failDecode(const std::string &Why) {
  DecodeResult R;
  R.Error = Why;
  return R;
}

} // namespace

std::string encodeBundle(const profile::ProfileBundle &B,
                         uint64_t Fingerprint) {
  std::string Out;
  Out.append(FormatMagic, sizeof(FormatMagic));
  appendFixed32(Out, FormatVersion);
  appendFixed64(Out, Fingerprint);
  encodeCallEdges(Out, B.CallEdges);
  encodeFieldAccesses(Out, B.FieldAccesses);
  encodeBlockCounts(Out, B.BlockCounts);
  encodeValues(Out, B.Values);
  encodeEdges(Out, B.Edges);
  encodePaths(Out, B.Paths);
  appendFixed32(Out, crc32(Out.data(), Out.size()));
  return Out;
}

DecodeResult decodeBundle(const std::string &Bytes,
                          uint64_t ExpectedFingerprint) {
  if (Bytes.size() < HeaderSize + TrailerSize)
    return failDecode(support::formatString(
        "profile truncated: %zu bytes, need at least %zu", Bytes.size(),
        HeaderSize + TrailerSize));
  if (Bytes.compare(0, sizeof(FormatMagic), FormatMagic,
                    sizeof(FormatMagic)) != 0)
    return failDecode("not a profile file (bad magic; expected \"ARSP\")");

  // Verify the CRC over everything before the trailer first: a mismatch
  // means any later parse diagnosis would be of corrupted bytes.
  ByteReader Trailer(Bytes.data() + Bytes.size() - TrailerSize,
                     TrailerSize);
  uint32_t StoredCrc = 0;
  Trailer.readFixed32(&StoredCrc);
  uint32_t ActualCrc = crc32(Bytes.data(), Bytes.size() - TrailerSize);
  if (StoredCrc != ActualCrc)
    return failDecode(support::formatString(
        "profile corrupted: CRC32 mismatch (stored %08x, computed %08x)",
        StoredCrc, ActualCrc));

  ByteReader R(Bytes.data(), Bytes.size() - TrailerSize);
  uint32_t Magic, Version;
  uint64_t Fingerprint;
  R.readFixed32(&Magic); // magic already validated; just advance
  if (!R.readFixed32(&Version) || !R.readFixed64(&Fingerprint))
    return failDecode("profile truncated inside the header");
  if (Version != FormatVersion)
    return failDecode(support::formatString(
        "unsupported profile format version %u (this build reads %u)",
        Version, FormatVersion));
  if (ExpectedFingerprint && Fingerprint != ExpectedFingerprint)
    return failDecode(support::formatString(
        "profile was collected from a different module: fingerprint "
        "%016llx, expected %016llx",
        static_cast<unsigned long long>(Fingerprint),
        static_cast<unsigned long long>(ExpectedFingerprint)));

  DecodeResult Result;
  Result.Fingerprint = Fingerprint;
  if (!decodeCallEdges(R, &Result.Bundle.CallEdges) ||
      !decodeFieldAccesses(R, &Result.Bundle.FieldAccesses) ||
      !decodeBlockCounts(R, &Result.Bundle.BlockCounts) ||
      !decodeValues(R, &Result.Bundle.Values) ||
      !decodeEdges(R, &Result.Bundle.Edges) ||
      !decodePaths(R, &Result.Bundle.Paths))
    return failDecode(support::formatString(
        "profile malformed near byte %zu", R.position()));
  if (!R.atEnd())
    return failDecode(support::formatString(
        "profile has %zu trailing bytes after the last section",
        R.remaining()));
  Result.Ok = true;
  return Result;
}

//===----------------------------------------------------------------------===//
// Crash-safe writes.  POSIX fds rather than iostreams: durability needs
// fsync on the file AND its directory, which streams cannot express.
//===----------------------------------------------------------------------===//

namespace {

std::atomic<const FileFaults *> ActiveFileFaults{nullptr};

bool failIo(std::string *Error, const std::string &What) {
  if (Error)
    *Error = What + ": " + std::strerror(errno ? errno : EIO);
  return false;
}

/// write(2) loop honoring the OnWrite fault hook; false once the hook (or
/// the OS) cuts the write short.
bool writeAllFd(int Fd, const std::string &Path, const std::string &Bytes,
                const FileFaults *F, std::string *Error) {
  size_t Allowed = Bytes.size();
  if (F && F->OnWrite)
    Allowed = std::min(Allowed, F->OnWrite(Path, Bytes.size()));
  size_t Off = 0;
  while (Off < Allowed) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Allowed - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return failIo(Error, "cannot write " + Path);
    }
    Off += static_cast<size_t>(N);
  }
  if (Allowed < Bytes.size()) {
    if (Error)
      *Error = support::formatString(
          "short write to %s: %zu of %zu bytes (injected)", Path.c_str(),
          Allowed, Bytes.size());
    return false;
  }
  return true;
}

bool fsyncPath(int Fd, const std::string &Path, const FileFaults *F,
               std::string *Error) {
  if (F && F->OnFsync && !F->OnFsync(Path)) {
    if (Error)
      *Error = "fsync " + Path + " failed (injected)";
    return false;
  }
  if (::fsync(Fd) != 0)
    return failIo(Error, "cannot fsync " + Path);
  return true;
}

bool renamePath(const std::string &From, const std::string &To,
                const FileFaults *F, std::string *Error) {
  if (F && F->OnRename && !F->OnRename(From, To)) {
    if (Error)
      *Error = "rename " + From + " -> " + To + " failed (injected)";
    return false;
  }
  if (std::rename(From.c_str(), To.c_str()) != 0)
    return failIo(Error, "cannot rename " + From + " to " + To);
  return true;
}

std::string parentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  return Slash == 0 ? "/" : Path.substr(0, Slash);
}

bool fsyncDir(const std::string &Dir, const FileFaults *F,
              std::string *Error) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return failIo(Error, "cannot open directory " + Dir);
  bool Ok = fsyncPath(Fd, Dir, F, Error);
  ::close(Fd);
  return Ok;
}

} // namespace

void setFileFaults(const FileFaults *F) {
  ActiveFileFaults.store(F, std::memory_order_release);
}

namespace ioutil {

bool writeAllFd(int Fd, const std::string &Path, const std::string &Bytes,
                std::string *Error) {
  return profstore::writeAllFd(
      Fd, Path, Bytes, ActiveFileFaults.load(std::memory_order_acquire),
      Error);
}

bool fsyncFd(int Fd, const std::string &Path, std::string *Error) {
  return fsyncPath(Fd, Path,
                   ActiveFileFaults.load(std::memory_order_acquire), Error);
}

bool fsyncDirOf(const std::string &Path, std::string *Error) {
  return fsyncDir(parentDir(Path),
                  ActiveFileFaults.load(std::memory_order_acquire), Error);
}

bool readFileRaw(const std::string &Path, std::string *Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  *Out = Buffer.str();
  return true;
}

} // namespace ioutil

bool atomicSaveFile(const std::string &Path, const std::string &Bytes,
                    std::string *Error, bool KeepPrevious) {
  const FileFaults *F = ActiveFileFaults.load(std::memory_order_acquire);
  std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return failIo(Error, "cannot create " + Tmp);
  bool Ok = writeAllFd(Fd, Tmp, Bytes, F, Error) &&
            fsyncPath(Fd, Tmp, F, Error);
  ::close(Fd);
  std::string Dir = parentDir(Path);
  Ok = Ok && fsyncDir(Dir, F, Error);
  // Keep the last good copy reachable across the visibility switch: a
  // crash (or injected fault) between the two renames leaves it under
  // .prev, which recovery code tries after the main path.
  if (Ok && KeepPrevious && ::access(Path.c_str(), F_OK) == 0)
    Ok = renamePath(Path, Path + ".prev", F, Error);
  Ok = Ok && renamePath(Tmp, Path, F, Error);
  Ok = Ok && fsyncDir(Dir, F, Error);
  if (!Ok)
    std::remove(Tmp.c_str());
  return Ok;
}

bool saveBundle(const std::string &Path, const profile::ProfileBundle &B,
                uint64_t Fingerprint, std::string *Error, bool Compress) {
  std::string Bytes = encodeBundle(B, Fingerprint);
  if (Compress)
    Bytes = support::compressBlocks(Bytes);
  return atomicSaveFile(Path, Bytes, Error);
}

DecodeResult loadBundle(const std::string &Path,
                        uint64_t ExpectedFingerprint) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return failDecode("cannot read " + Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Bytes = Buffer.str();
  if (support::looksCompressed(Bytes)) {
    std::string Raw, Err;
    if (!support::decompressBlocks(Bytes, &Raw, &Err))
      return failDecode(Path + ": " + Err);
    Bytes = std::move(Raw);
  }
  return decodeBundle(Bytes, ExpectedFingerprint);
}

} // namespace profstore
} // namespace ars
