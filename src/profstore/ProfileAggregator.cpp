//===- profstore/ProfileAggregator.cpp ------------------------*- C++ -*-===//

#include "profstore/ProfileAggregator.h"

#include "profstore/ProfileStore.h"
#include "profstore/Summary.h"

namespace ars {
namespace profstore {

ProfileAggregator::ProfileAggregator(int Stripes) {
  if (Stripes < 1)
    Stripes = 16;
  Shards.reserve(static_cast<size_t>(Stripes));
  for (int I = 0; I != Stripes; ++I)
    Shards.push_back(std::make_unique<Stripe>());
}

void ProfileAggregator::flush(size_t Key, const profile::ProfileBundle &B) {
  Stripe &S = *Shards[Key % Shards.size()];
  std::lock_guard<std::mutex> Lock(S.Mu);
  mergeBundle(S.B, B);
  ++S.Flushes;
}

profile::ProfileBundle ProfileAggregator::merged() const {
  profile::ProfileBundle Out;
  for (const std::unique_ptr<Stripe> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    mergeBundle(Out, S->B);
  }
  return Out;
}

profile::ProfileBundle ProfileAggregator::drain() {
  profile::ProfileBundle Out;
  for (const std::unique_ptr<Stripe> &S : Shards) {
    profile::ProfileBundle Taken;
    {
      std::lock_guard<std::mutex> Lock(S->Mu);
      Taken = std::move(S->B);
      S->B.clear();
    }
    // Fold outside the stripe lock so concurrent flushes to this stripe
    // are never blocked behind the (possibly large) merge.
    mergeBundle(Out, Taken);
  }
  return Out;
}

ProfileSummary ProfileAggregator::drainSummary(uint32_t K) {
  ProfileSummary Out = summarizeBundle(profile::ProfileBundle(), K);
  for (const std::unique_ptr<Stripe> &S : Shards) {
    profile::ProfileBundle Taken;
    {
      std::lock_guard<std::mutex> Lock(S->Mu);
      Taken = std::move(S->B);
      S->B.clear();
    }
    // Summarize per stripe, then summary-merge: the retained state is
    // bounded by K per structure, never by the fleet's key space.
    ProfileSummary Part = summarizeBundle(Taken, K);
    mergeSummary(Out, Part); // same K by construction: cannot fail
  }
  return Out;
}

uint64_t ProfileAggregator::flushes() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Stripe> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    Total += S->Flushes;
  }
  return Total;
}

void ProfileAggregator::clear() {
  for (const std::unique_ptr<Stripe> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    S->B.clear();
    S->Flushes = 0;
  }
}

} // namespace profstore
} // namespace ars
