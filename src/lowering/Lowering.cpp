//===- lowering/Lowering.cpp ----------------------------------*- C++ -*-===//

#include "lowering/Lowering.h"

#include "bytecode/Verifier.h"
#include "support/Support.h"

#include <cassert>
#include <deque>
#include <map>

using ars::support::formatString;

namespace ars {
namespace lowering {

namespace {

using bytecode::FunctionDef;
using bytecode::Inst;
using bytecode::Module;
using bytecode::Opcode;
using ir::IRInst;
using ir::IROp;

/// Maps simple one-to-one bytecode ops to IR ops; returns Nop for ops that
/// need special handling.
IROp binaryOpFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add:    return IROp::Add;
  case Opcode::Sub:    return IROp::Sub;
  case Opcode::Mul:    return IROp::Mul;
  case Opcode::Div:    return IROp::Div;
  case Opcode::Rem:    return IROp::Rem;
  case Opcode::And:    return IROp::And;
  case Opcode::Or:     return IROp::Or;
  case Opcode::Xor:    return IROp::Xor;
  case Opcode::Shl:    return IROp::Shl;
  case Opcode::Shr:    return IROp::Shr;
  case Opcode::FAdd:   return IROp::FAdd;
  case Opcode::FSub:   return IROp::FSub;
  case Opcode::FMul:   return IROp::FMul;
  case Opcode::FDiv:   return IROp::FDiv;
  case Opcode::CmpEq:  return IROp::CmpEq;
  case Opcode::CmpNe:  return IROp::CmpNe;
  case Opcode::CmpLt:  return IROp::CmpLt;
  case Opcode::CmpLe:  return IROp::CmpLe;
  case Opcode::CmpGt:  return IROp::CmpGt;
  case Opcode::CmpGe:  return IROp::CmpGe;
  case Opcode::FCmpLt: return IROp::FCmpLt;
  case Opcode::FCmpLe: return IROp::FCmpLe;
  case Opcode::FCmpEq: return IROp::FCmpEq;
  default:             return IROp::Nop;
  }
}

IROp unaryOpFor(Opcode Op) {
  switch (Op) {
  case Opcode::Neg:  return IROp::Neg;
  case Opcode::FNeg: return IROp::FNeg;
  case Opcode::F2I:  return IROp::F2I;
  case Opcode::I2F:  return IROp::I2F;
  default:           return IROp::Nop;
  }
}

class FunctionLowerer {
public:
  FunctionLowerer(const Module &M, const FunctionDef &Func)
      : M(M), Func(Func) {}

  LowerResult run();

private:
  const Module &M;
  const FunctionDef &Func;

  /// Stack depth at entry of each bytecode offset (-1 = unreached).
  std::vector<int> DepthAt;
  /// Bytecode offset -> IR block id for leaders.
  std::map<int, int> BlockOf;

  /// Register holding operand-stack slot \p Slot.
  int stackReg(int Slot) const { return Func.NumLocals + Slot; }

  bool computeDepths(std::string *Error);
  void findLeaders();
};

bool FunctionLowerer::computeDepths(std::string *Error) {
  // The verifier has already validated types; this pass only tracks depth,
  // which is what register assignment needs.
  DepthAt.assign(Func.Code.size(), -1);
  std::deque<int> Work;
  DepthAt[0] = 0;
  Work.push_back(0);

  auto depthDelta = [&](const Inst &I, int DepthIn, int *DepthOut) -> bool {
    int D = DepthIn;
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::IConst:
    case Opcode::FConst:
    case Opcode::Load:
    case Opcode::New:
    case Opcode::GetGlobal:
      D += 1;
      break;
    case Opcode::Store:
    case Opcode::Pop:
    case Opcode::Print:
    case Opcode::PutGlobal:
    case Opcode::BrIf:
      D -= 1;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::FCmpLt:
    case Opcode::FCmpLe:
    case Opcode::FCmpEq:
    case Opcode::ALoad:
      D -= 1; // two pops, one push
      break;
    case Opcode::Neg:
    case Opcode::FNeg:
    case Opcode::F2I:
    case Opcode::I2F:
    case Opcode::ALen:
    case Opcode::NewArray:
    case Opcode::GetField:
    case Opcode::Dup: // handled below (+1)
      if (I.Op == Opcode::Dup)
        D += 1;
      break;
    case Opcode::PutField:
      D -= 2;
      break;
    case Opcode::AStore:
      D -= 3;
      break;
    case Opcode::Swap:
    case Opcode::IOWait:
    case Opcode::Br:
      break;
    case Opcode::Ret:
    case Opcode::RetVal:
      break;
    case Opcode::Call:
    case Opcode::Spawn: {
      const FunctionDef &Callee = M.functionAt(static_cast<int>(I.A));
      D -= static_cast<int>(Callee.Params.size());
      if (I.Op == Opcode::Call && Callee.Ret != bytecode::Type::Void)
        D += 1;
      break;
    }
    }
    if (D < 0) {
      *Error = formatString("%s: negative stack depth", Func.Name.c_str());
      return false;
    }
    *DepthOut = D;
    return true;
  };

  auto mergeInto = [&](int Pc, int Depth) -> bool {
    if (Pc < 0 || Pc >= static_cast<int>(Func.Code.size())) {
      *Error = formatString("%s: pc out of range", Func.Name.c_str());
      return false;
    }
    if (DepthAt[Pc] < 0) {
      DepthAt[Pc] = Depth;
      Work.push_back(Pc);
      return true;
    }
    if (DepthAt[Pc] != Depth) {
      *Error = formatString("%s: depth mismatch at join", Func.Name.c_str());
      return false;
    }
    return true;
  };

  while (!Work.empty()) {
    int Pc = Work.front();
    Work.pop_front();
    const Inst &I = Func.Code[Pc];
    int DepthOut = 0;
    if (!depthDelta(I, DepthAt[Pc], &DepthOut))
      return false;
    switch (I.Op) {
    case Opcode::Ret:
    case Opcode::RetVal:
      break;
    case Opcode::Br:
      if (!mergeInto(static_cast<int>(I.A), DepthOut))
        return false;
      break;
    case Opcode::BrIf:
      if (!mergeInto(static_cast<int>(I.A), DepthOut) ||
          !mergeInto(Pc + 1, DepthOut))
        return false;
      break;
    default:
      if (!mergeInto(Pc + 1, DepthOut))
        return false;
      break;
    }
  }
  return true;
}

void FunctionLowerer::findLeaders() {
  auto addLeader = [&](int Pc) {
    if (Pc >= 0 && Pc < static_cast<int>(Func.Code.size()) && DepthAt[Pc] >= 0)
      BlockOf.emplace(Pc, -1);
  };
  addLeader(0);
  for (size_t Pc = 0; Pc != Func.Code.size(); ++Pc) {
    if (DepthAt[Pc] < 0)
      continue;
    const Inst &I = Func.Code[Pc];
    if (bytecode::isBranch(I.Op))
      addLeader(static_cast<int>(I.A));
    if (bytecode::isTerminator(I.Op))
      addLeader(static_cast<int>(Pc) + 1);
  }
  int NextId = 0;
  for (auto &[Pc, Id] : BlockOf) {
    (void)Pc;
    Id = NextId++;
  }
}

LowerResult FunctionLowerer::run() {
  LowerResult Result;
  bytecode::VerifyResult VR = bytecode::verifyFunction(M, Func);
  if (!VR.Ok) {
    Result.Error = "verify failed: " + VR.Error;
    return Result;
  }
  if (!computeDepths(&Result.Error))
    return Result;
  findLeaders();

  ir::IRFunction &F = Result.Func;
  F.Name = Func.Name;
  F.FuncId = Func.FuncId;
  F.NumParams = static_cast<int>(Func.Params.size());
  F.NumRegs = Func.NumLocals + VR.MaxStack;
  // Guard against zero-register functions for engine simplicity.
  if (F.NumRegs == 0)
    F.NumRegs = 1;
  F.ReturnsValue = Func.Ret != bytecode::Type::Void;
  for (size_t I = 0; I != BlockOf.size(); ++I)
    F.addBlock();

  auto blockIdAt = [&](int Pc) {
    auto It = BlockOf.find(Pc);
    assert(It != BlockOf.end() && "no block at pc");
    return It->second;
  };

  for (auto It = BlockOf.begin(); It != BlockOf.end(); ++It) {
    int StartPc = It->first;
    auto NextIt = std::next(It);
    int EndPc = NextIt == BlockOf.end() ? static_cast<int>(Func.Code.size())
                                        : NextIt->first;
    ir::BasicBlock &BB = F.Blocks[It->second];
    int Depth = DepthAt[StartPc];
    bool Terminated = false;

    for (int Pc = StartPc; Pc != EndPc && !Terminated; ++Pc) {
      if (DepthAt[Pc] < 0)
        continue; // unreachable padding inside a block cannot occur, but
                  // guard anyway
      const Inst &I = Func.Code[Pc];
      IRInst Out;
      switch (I.Op) {
      case Opcode::Nop:
        continue;
      case Opcode::IConst:
        Out.Op = IROp::MovImm;
        Out.Dst = stackReg(Depth);
        Out.Imm = I.A;
        ++Depth;
        break;
      case Opcode::FConst:
        Out.Op = IROp::MovFImm;
        Out.Dst = stackReg(Depth);
        Out.FImm = I.F;
        ++Depth;
        break;
      case Opcode::Load:
        Out.Op = IROp::Mov;
        Out.Dst = stackReg(Depth);
        Out.A = static_cast<int>(I.A);
        ++Depth;
        break;
      case Opcode::Store:
        Out.Op = IROp::Mov;
        Out.Dst = static_cast<int>(I.A);
        Out.A = stackReg(Depth - 1);
        --Depth;
        break;
      case Opcode::Dup:
        Out.Op = IROp::Mov;
        Out.Dst = stackReg(Depth);
        Out.A = stackReg(Depth - 1);
        ++Depth;
        break;
      case Opcode::Pop:
        --Depth;
        continue;
      case Opcode::Swap: {
        // Three moves through a scratch register would need an extra reg;
        // instead emit the triangle with the slot above the stack top,
        // which is guaranteed free only if MaxStack allows it.  Swap is
        // rare (frontend never emits it), so spend one extra register.
        if (F.NumRegs < Func.NumLocals + VR.MaxStack + 1)
          F.NumRegs = Func.NumLocals + VR.MaxStack + 1;
        int Tmp = Func.NumLocals + VR.MaxStack;
        IRInst M1(IROp::Mov), M2(IROp::Mov), M3(IROp::Mov);
        M1.Dst = Tmp;
        M1.A = stackReg(Depth - 1);
        M2.Dst = stackReg(Depth - 1);
        M2.A = stackReg(Depth - 2);
        M3.Dst = stackReg(Depth - 2);
        M3.A = Tmp;
        BB.Insts.push_back(M1);
        BB.Insts.push_back(M2);
        BB.Insts.push_back(M3);
        continue;
      }
      case Opcode::Neg:
      case Opcode::FNeg:
      case Opcode::F2I:
      case Opcode::I2F:
        Out.Op = unaryOpFor(I.Op);
        Out.Dst = stackReg(Depth - 1);
        Out.A = stackReg(Depth - 1);
        break;
      case Opcode::IOWait:
        Out.Op = IROp::IOWait;
        Out.Imm = I.A;
        break;
      case Opcode::Print:
        Out.Op = IROp::Print;
        Out.A = stackReg(Depth - 1);
        --Depth;
        break;
      case Opcode::New:
        Out.Op = IROp::New;
        Out.Dst = stackReg(Depth);
        Out.Imm = I.A;
        ++Depth;
        break;
      case Opcode::GetField:
        Out.Op = IROp::GetField;
        Out.Dst = stackReg(Depth - 1);
        Out.A = stackReg(Depth - 1);
        Out.Imm = I.A;
        break;
      case Opcode::PutField:
        Out.Op = IROp::PutField;
        Out.A = stackReg(Depth - 2);
        Out.B = stackReg(Depth - 1);
        Out.Imm = I.A;
        Depth -= 2;
        break;
      case Opcode::GetGlobal:
        Out.Op = IROp::GetGlobal;
        Out.Dst = stackReg(Depth);
        Out.Imm = I.A;
        ++Depth;
        break;
      case Opcode::PutGlobal:
        Out.Op = IROp::PutGlobal;
        Out.A = stackReg(Depth - 1);
        Out.Imm = I.A;
        --Depth;
        break;
      case Opcode::NewArray:
        Out.Op = IROp::NewArray;
        Out.Dst = stackReg(Depth - 1);
        Out.A = stackReg(Depth - 1);
        break;
      case Opcode::ALoad:
        Out.Op = IROp::ALoad;
        Out.Dst = stackReg(Depth - 2);
        Out.A = stackReg(Depth - 2);
        Out.B = stackReg(Depth - 1);
        --Depth;
        break;
      case Opcode::AStore:
        Out.Op = IROp::AStore;
        Out.A = stackReg(Depth - 3);
        Out.B = stackReg(Depth - 2);
        Out.C = stackReg(Depth - 1);
        Depth -= 3;
        break;
      case Opcode::ALen:
        Out.Op = IROp::ALen;
        Out.Dst = stackReg(Depth - 1);
        Out.A = stackReg(Depth - 1);
        break;
      case Opcode::Call:
      case Opcode::Spawn: {
        const FunctionDef &Callee = M.functionAt(static_cast<int>(I.A));
        int Argc = static_cast<int>(Callee.Params.size());
        Out.Op = I.Op == Opcode::Call ? IROp::Call : IROp::Spawn;
        Out.Imm = I.A;
        Out.Aux = Pc; // stable call-site id: the bytecode offset
        for (int A = 0; A != Argc; ++A)
          Out.Args.push_back(stackReg(Depth - Argc + A));
        Depth -= Argc;
        if (I.Op == Opcode::Call && Callee.Ret != bytecode::Type::Void) {
          Out.Dst = stackReg(Depth);
          ++Depth;
        }
        break;
      }
      case Opcode::Br:
        Out.Op = IROp::Jump;
        Out.Imm = blockIdAt(static_cast<int>(I.A));
        Terminated = true;
        break;
      case Opcode::BrIf:
        Out.Op = IROp::Branch;
        Out.A = stackReg(Depth - 1);
        --Depth;
        Out.Imm = blockIdAt(static_cast<int>(I.A));
        Out.Aux = blockIdAt(Pc + 1);
        Terminated = true;
        break;
      case Opcode::Ret:
        Out.Op = IROp::Ret;
        Terminated = true;
        break;
      case Opcode::RetVal:
        Out.Op = IROp::RetVal;
        Out.A = stackReg(Depth - 1);
        --Depth;
        Terminated = true;
        break;
      default:
        Out.Op = binaryOpFor(I.Op);
        assert(Out.Op != IROp::Nop && "unhandled opcode in lowering");
        Out.Dst = stackReg(Depth - 2);
        Out.A = stackReg(Depth - 2);
        Out.B = stackReg(Depth - 1);
        --Depth;
        break;
      }
      BB.Insts.push_back(std::move(Out));
    }

    // Fall-through block boundary: synthesize the jump.
    if (!Terminated) {
      IRInst J(IROp::Jump);
      assert(NextIt != BlockOf.end() && "fallthrough off function end");
      J.Imm = NextIt->second;
      BB.Insts.push_back(J);
    }
  }

  Result.Ok = true;
  return Result;
}

} // namespace

LowerResult lowerFunction(const Module &M, const FunctionDef &Func) {
  FunctionLowerer L(M, Func);
  return L.run();
}

LowerModuleResult lowerModule(const Module &M) {
  LowerModuleResult Result;
  for (const FunctionDef &F : M.functions()) {
    LowerResult R = lowerFunction(M, F);
    if (!R.Ok) {
      Result.Error = R.Error;
      return Result;
    }
    Result.Funcs.push_back(std::move(R.Func));
  }
  Result.Ok = true;
  return Result;
}

} // namespace lowering
} // namespace ars
