//===- lowering/Cleanup.h - CFG cleanups run before sampling --*- C++ -*-===//
///
/// \file
/// Two conservative cleanups run after lowering and before the sampling
/// transforms: unreachable-block removal and jump threading of
/// trivial (jump-only) blocks.  Keeping the pre-transform CFG small keeps
/// both the duplicated-code size and the interpreter's dispatch cost down.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_LOWERING_CLEANUP_H
#define ARS_LOWERING_CLEANUP_H

#include "ir/IR.h"

namespace ars {
namespace lowering {

/// Removes blocks not reachable from entry and renumbers the rest.
/// Returns the number of blocks removed.
int removeUnreachableBlocks(ir::IRFunction &F);

/// Redirects edges into blocks that contain only a single Jump to that
/// jump's target (iterated to a fixpoint, cycles of empty blocks are left
/// alone).  Returns the number of edges redirected.  Does not delete
/// blocks; run removeUnreachableBlocks afterwards.
int threadTrivialJumps(ir::IRFunction &F);

/// Runs both cleanups in the canonical order.
void cleanupFunction(ir::IRFunction &F);

} // namespace lowering
} // namespace ars

#endif // ARS_LOWERING_CLEANUP_H
