//===- lowering/Cleanup.cpp -----------------------------------*- C++ -*-===//

#include "lowering/Cleanup.h"

#include <cassert>
#include <vector>

namespace ars {
namespace lowering {

using ir::BasicBlock;
using ir::IRFunction;
using ir::IRInst;
using ir::IROp;

int removeUnreachableBlocks(IRFunction &F) {
  int N = F.numBlocks();
  std::vector<char> Reachable(N, 0);
  std::vector<int> Work;
  Reachable[F.Entry] = 1;
  Work.push_back(F.Entry);
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    int Targets[2];
    int Count = 0;
    ir::terminatorTargets(F.Blocks[B].terminator(), Targets, &Count);
    for (int T = 0; T != Count; ++T)
      if (!Reachable[Targets[T]]) {
        Reachable[Targets[T]] = 1;
        Work.push_back(Targets[T]);
      }
  }

  std::vector<int> NewId(N, -1);
  int Next = 0;
  for (int B = 0; B != N; ++B)
    if (Reachable[B])
      NewId[B] = Next++;
  if (Next == N)
    return 0;

  std::vector<BasicBlock> Kept;
  Kept.reserve(Next);
  for (int B = 0; B != N; ++B) {
    if (!Reachable[B])
      continue;
    BasicBlock BB = std::move(F.Blocks[B]);
    BB.Id = NewId[B];
    ir::remapTerminatorTargets(BB.terminator(), NewId);
    Kept.push_back(std::move(BB));
  }
  F.Blocks = std::move(Kept);
  F.Entry = NewId[F.Entry];
  return N - Next;
}

int threadTrivialJumps(IRFunction &F) {
  int N = F.numBlocks();
  // Resolve each trivial block to its final destination, with cycle guard.
  std::vector<int> FinalTarget(N, -1);
  auto resolve = [&](int B) {
    std::vector<char> Seen(N, 0);
    int Cur = B;
    while (true) {
      const BasicBlock &BB = F.Blocks[Cur];
      if (BB.Insts.size() != 1 || BB.terminator().Op != IROp::Jump)
        return Cur;
      if (Seen[Cur])
        return Cur; // cycle of empty blocks; leave alone
      Seen[Cur] = 1;
      Cur = static_cast<int>(BB.terminator().Imm);
    }
  };
  for (int B = 0; B != N; ++B)
    FinalTarget[B] = resolve(B);

  int Redirected = 0;
  for (BasicBlock &BB : F.Blocks) {
    IRInst &Term = BB.terminator();
    int Targets[2];
    int Count = 0;
    ir::terminatorTargets(Term, Targets, &Count);
    for (int T = 0; T != Count; ++T) {
      int Final = FinalTarget[Targets[T]];
      if (Final != Targets[T]) {
        // Retarget only this slot; retargetTerminator would rewrite both
        // slots if they matched, which is what we want anyway.
        ir::retargetTerminator(Term, Targets[T], Final);
        ++Redirected;
      }
    }
  }
  return Redirected;
}

void cleanupFunction(IRFunction &F) {
  threadTrivialJumps(F);
  removeUnreachableBlocks(F);
}

} // namespace lowering
} // namespace ars
