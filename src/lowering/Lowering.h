//===- lowering/Lowering.h - Bytecode to IR translation -------*- C++ -*-===//
///
/// \file
/// The "baseline compiler": translates verified stack bytecode into the
/// register CFG IR using the classic abstract-stack technique (the operand
/// stack slot at depth d becomes register NumLocals + d; the verifier
/// guarantees depths agree at joins).  Call instructions record their
/// bytecode offset as a stable call-site id, which survives duplication and
/// is what the call-edge profile keys on ("the call-site within the caller
/// method, specified by a bytecode offset").
///
//===----------------------------------------------------------------------===//

#ifndef ARS_LOWERING_LOWERING_H
#define ARS_LOWERING_LOWERING_H

#include "bytecode/Module.h"
#include "ir/IR.h"

#include <string>
#include <vector>

namespace ars {
namespace lowering {

/// Result of lowering one function.
struct LowerResult {
  bool Ok = false;
  std::string Error;
  ir::IRFunction Func;
};

/// Lowers \p Func (which must verify against \p M) to IR.
LowerResult lowerFunction(const bytecode::Module &M,
                          const bytecode::FunctionDef &Func);

/// Lowers every function in \p M; stops at the first error.
struct LowerModuleResult {
  bool Ok = false;
  std::string Error;
  std::vector<ir::IRFunction> Funcs; ///< indexed by FuncId
};

LowerModuleResult lowerModule(const bytecode::Module &M);

} // namespace lowering
} // namespace ars

#endif // ARS_LOWERING_LOWERING_H
