//===- support/ThreadPool.h - Fixed-size worker pool ----------*- C++ -*-===//
///
/// \file
/// A fixed-size thread pool used by the parallel experiment harness
/// (harness/ParallelRunner.h).  Jobs are opaque callables; the pool makes
/// no ordering guarantee between them, so anything needing deterministic
/// output must write into pre-assigned slots (the harness indexes results
/// by matrix-cell position, never by completion order).
///
/// With one worker the pool degenerates to serial FIFO execution on a
/// single background thread, which keeps the `--jobs 1` and `--jobs N`
/// code paths identical except for the worker count — the determinism
/// guarantee of the harness is "same bytes, different wall-clock".
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SUPPORT_THREADPOOL_H
#define ARS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ars {
namespace support {

/// Fixed-size pool of worker threads draining a FIFO job queue.
class ThreadPool {
public:
  /// Spawns \p Workers threads (clamped to at least 1).
  explicit ThreadPool(int Workers);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Job.  A job that throws does not kill the worker (or the
  /// process): the first exception is captured and rethrown from the next
  /// wait(); later jobs keep running.  Jobs that need richer reporting
  /// still write into state they own (the harness stores an error in the
  /// job's result slot).
  void submit(std::function<void()> Job);

  /// Blocks until every submitted job has finished (queue empty and no job
  /// running), then rethrows the first exception any job raised since the
  /// last wait() (clearing it, so the pool is reusable after a catch).
  /// New jobs may be submitted afterwards; the pool stays up until
  /// destruction.
  void wait();

  int workers() const { return static_cast<int>(Threads.size()); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits returning 0 when the count is unknowable).
  static int defaultWorkers();

private:
  void workerLoop();

  std::mutex Mu;
  std::condition_variable JobReady;  ///< signalled on submit / shutdown
  std::condition_variable AllIdle;   ///< signalled when the pool drains
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  size_t Running = 0; ///< jobs currently executing
  bool Stopping = false;
  std::exception_ptr FirstError; ///< first job throw since the last wait()
};

} // namespace support
} // namespace ars

#endif // ARS_SUPPORT_THREADPOOL_H
