//===- support/Support.h - Small shared utilities -------------*- C++ -*-===//
//
// Part of the Arnold-Ryder instrumentation sampling reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic PRNG, printf-style string formatting, a host wall-clock
/// timer (used only for compile-time measurement, never in simulated-cycle
/// paths), and tiny numeric helpers shared by every module.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SUPPORT_SUPPORT_H
#define ARS_SUPPORT_SUPPORT_H

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace ars {
namespace support {

/// A small, fast, fully deterministic xorshift64* generator.
///
/// Used for randomized sample-interval perturbation (paper section 4.4) and
/// for property-based test input generation.  Never seeded from the clock.
class Xorshift64 {
public:
  explicit Xorshift64(uint64_t Seed = 0x9E3779B97F4A7C15ULL)
      : State(Seed ? Seed : 1) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }

  /// Returns a value uniformly distributed in [0, Bound).
  /// \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Returns a value uniformly distributed in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  uint64_t State;
};

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Percentage change of \p Measured relative to \p Base
/// (e.g. base 100, measured 106 -> 6.0).  Returns 0 for a zero base.
double percentOver(double Base, double Measured);

/// A + B clamped at UINT64_MAX.  Profile counters merge counters from an
/// unbounded number of sessions; pinning at the ceiling keeps the merge
/// monoid commutative/associative where wrapping would silently shrink a
/// hot count to nearly zero.
constexpr uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? UINT64_MAX : S;
}

/// Wall-clock stopwatch for host-side measurements (compile-time columns of
/// Table 2).  Simulated-cycle measurements never use this class.
class HostTimer {
public:
  HostTimer() : Start(std::chrono::steady_clock::now()) {}

  /// Elapsed time in milliseconds since construction or the last reset().
  double elapsedMs() const {
    auto Now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(Now - Start).count();
  }

  void reset() { Start = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Geometric mean of 1+v/100 style overhead percentages is deliberately not
/// provided: the paper reports arithmetic averages, and we match it.

} // namespace support
} // namespace ars

#endif // ARS_SUPPORT_SUPPORT_H
