//===- support/Binary.cpp -------------------------------------*- C++ -*-===//

#include "support/Binary.h"

#include <array>

namespace ars {
namespace support {

void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7F) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void appendSignedVarint(std::string &Out, int64_t V) {
  appendVarint(Out, zigzagEncode(V));
}

void appendFixed32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void appendFixed64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t N = 0; N != 256; ++N) {
    uint32_t C = N;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320U ^ (C >> 1) : C >> 1;
    Table[N] = C;
  }
  return Table;
}

} // namespace

uint32_t crc32(const void *Data, size_t Size) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint32_t C = 0xFFFFFFFFU;
  for (size_t I = 0; I != Size; ++I)
    C = Table[(C ^ Bytes[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFU;
}

uint64_t fnv1a64(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xCBF29CE484222325ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001B3ULL;
  }
  return H;
}

bool ByteReader::readVarint(uint64_t *Out) {
  if (Failed)
    return false;
  uint64_t V = 0;
  for (int Shift = 0; Shift < 64; Shift += 7) {
    if (Pos == Size)
      return fail();
    unsigned char B = static_cast<unsigned char>(Data[Pos++]);
    uint64_t Bits = static_cast<uint64_t>(B & 0x7F);
    // The tenth byte may only contribute the single remaining bit.
    if (Shift == 63 && Bits > 1)
      return fail();
    V |= Bits << Shift;
    if (!(B & 0x80)) {
      *Out = V;
      return true;
    }
  }
  return fail(); // continuation bit on the tenth byte: overlong encoding
}

bool ByteReader::readSignedVarint(int64_t *Out) {
  uint64_t V;
  if (!readVarint(&V))
    return false;
  *Out = zigzagDecode(V);
  return true;
}

bool ByteReader::readBytes(const char **Out, size_t N) {
  if (Failed || Size - Pos < N)
    return fail();
  *Out = Data + Pos;
  Pos += N;
  return true;
}

bool ByteReader::readLengthPrefixed(std::string *Out, uint64_t MaxLen) {
  uint64_t Len;
  if (!readVarint(&Len))
    return false;
  // Cap against remaining() before touching Out: the declared length is
  // attacker-controlled, the buffer size is not.
  if (Len > remaining() || (MaxLen && Len > MaxLen))
    return fail();
  const char *Bytes;
  if (!readBytes(&Bytes, static_cast<size_t>(Len)))
    return false;
  Out->assign(Bytes, static_cast<size_t>(Len));
  return true;
}

bool ByteReader::readFixed32(uint32_t *Out) {
  if (Failed || Size - Pos < 4)
    return fail();
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos + I]))
         << (8 * I);
  Pos += 4;
  *Out = V;
  return true;
}

bool ByteReader::readFixed64(uint64_t *Out) {
  if (Failed || Size - Pos < 8)
    return fail();
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Pos + I]))
         << (8 * I);
  Pos += 8;
  *Out = V;
  return true;
}

} // namespace support
} // namespace ars
