//===- support/Support.cpp ------------------------------------*- C++ -*-===//

#include "support/Support.h"

#include <cstdio>

namespace ars {
namespace support {

std::string formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::vector<std::string> splitString(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Begin = 0;
  while (true) {
    size_t End = Text.find(Sep, Begin);
    if (End == std::string::npos) {
      Parts.push_back(Text.substr(Begin));
      return Parts;
    }
    Parts.push_back(Text.substr(Begin, End - Begin));
    Begin = End + 1;
  }
}

double percentOver(double Base, double Measured) {
  if (Base == 0.0)
    return 0.0;
  return (Measured - Base) / Base * 100.0;
}

double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

} // namespace support
} // namespace ars
