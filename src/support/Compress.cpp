//===- support/Compress.cpp - ARSZ block compression ----------*- C++ -*-===//

#include "support/Compress.h"

#include "support/Binary.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace ars {
namespace support {

namespace {

constexpr uint8_t ContainerVersion = 1;
constexpr uint8_t MethodStored = 0;
constexpr uint8_t MethodLz = 1;

constexpr size_t MinMatch = 4;
constexpr size_t MaxDist = 64u << 10;
constexpr size_t HashBits = 15;
constexpr size_t HashSize = 1u << HashBits;

uint32_t hash4(const char *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return (V * 2654435761u) >> (32 - HashBits);
}

/// Greedy hash-head LZ of one block.  Token stream as documented in the
/// header.  Returns an empty string when the "compressed" form would not
/// be smaller (caller stores the block verbatim instead).
std::string lzCompressBlock(const char *Data, size_t Size) {
  std::string Out;
  Out.reserve(Size);
  std::vector<uint32_t> Head(HashSize, UINT32_MAX);
  size_t Pos = 0, LitStart = 0;
  auto flushToken = [&](size_t MatchLen, size_t Dist) {
    appendVarint(Out, Pos - LitStart);
    Out.append(Data + LitStart, Pos - LitStart);
    appendVarint(Out, MatchLen);
    if (MatchLen)
      appendVarint(Out, Dist);
  };
  while (Pos + MinMatch <= Size) {
    uint32_t H = hash4(Data + Pos);
    uint32_t Cand = Head[H];
    Head[H] = static_cast<uint32_t>(Pos);
    size_t MatchLen = 0;
    if (Cand != UINT32_MAX && Pos - Cand <= MaxDist &&
        std::memcmp(Data + Cand, Data + Pos, MinMatch) == 0) {
      size_t Limit = Size - Pos;
      MatchLen = MinMatch;
      while (MatchLen < Limit &&
             Data[Cand + MatchLen] == Data[Pos + MatchLen])
        ++MatchLen;
    }
    if (MatchLen >= MinMatch) {
      size_t Dist = Pos - Cand;
      flushToken(MatchLen, Dist);
      // Seed the table through the match so later data can reference it.
      size_t End = Pos + MatchLen;
      for (size_t P = Pos + 1; P + MinMatch <= End; ++P)
        Head[hash4(Data + P)] = static_cast<uint32_t>(P);
      Pos = End;
      LitStart = Pos;
      if (Out.size() >= Size)
        return std::string(); // not shrinking; bail early
    } else {
      ++Pos;
    }
  }
  Pos = Size;
  if (Pos != LitStart || Out.empty())
    flushToken(0, 0);
  return Out.size() < Size ? Out : std::string();
}

bool lzDecompressBlock(const char *Data, size_t Size, size_t RawLen,
                       std::string *Out) {
  ByteReader R(Data, Size);
  size_t Base = Out->size();
  size_t Produced = 0;
  while (Produced < RawLen || !R.atEnd()) {
    uint64_t LitLen = 0;
    if (!R.readVarint(&LitLen) || LitLen > RawLen - Produced)
      return false;
    const char *Lits;
    if (!R.readBytes(&Lits, static_cast<size_t>(LitLen)))
      return false;
    Out->append(Lits, static_cast<size_t>(LitLen));
    Produced += static_cast<size_t>(LitLen);
    uint64_t MatchLen = 0;
    if (!R.readVarint(&MatchLen))
      return false;
    if (!MatchLen)
      continue;
    uint64_t Dist = 0;
    if (!R.readVarint(&Dist) || Dist == 0 || Dist > Produced ||
        MatchLen > RawLen - Produced)
      return false;
    // Byte-wise copy: overlapping matches (run encoding) are the point.
    size_t Src = Out->size() - static_cast<size_t>(Dist);
    for (uint64_t J = 0; J != MatchLen; ++J)
      Out->push_back((*Out)[Src + J]);
    Produced += static_cast<size_t>(MatchLen);
  }
  return Produced == RawLen && Out->size() == Base + RawLen;
}

} // namespace

bool looksCompressed(const std::string &Bytes) {
  return Bytes.size() >= 4 && std::memcmp(Bytes.data(), "ARSZ", 4) == 0;
}

std::string compressBlocks(const std::string &Raw) {
  std::string Out;
  Out.append("ARSZ", 4);
  Out.push_back(static_cast<char>(ContainerVersion));
  size_t Pos = 0;
  do {
    size_t N = std::min(static_cast<size_t>(BlockRawBytes),
                        Raw.size() - Pos);
    std::string Lz = lzCompressBlock(Raw.data() + Pos, N);
    appendVarint(Out, N);
    const char *Payload = Lz.empty() ? Raw.data() + Pos : Lz.data();
    size_t PayloadLen = Lz.empty() ? N : Lz.size();
    Out.push_back(static_cast<char>(Lz.empty() ? MethodStored : MethodLz));
    appendVarint(Out, PayloadLen);
    Out.append(Payload, PayloadLen);
    appendFixed32(Out, crc32(Payload, PayloadLen));
    Pos += N;
  } while (Pos < Raw.size());
  return Out;
}

bool decompressBlocks(const std::string &Framed, std::string *Out,
                      std::string *Error) {
  Out->clear();
  auto Fail = [&](const char *Msg) {
    *Error = Msg;
    return false;
  };
  if (!looksCompressed(Framed))
    return Fail("not an ARSZ container");
  ByteReader R(Framed.data() + 4, Framed.size() - 4);
  const char *VerByte;
  if (!R.readBytes(&VerByte, 1))
    return Fail("truncated ARSZ header");
  if (static_cast<uint8_t>(*VerByte) != ContainerVersion)
    return Fail("unsupported ARSZ version");
  while (!R.atEnd()) {
    uint64_t RawLen = 0, CompLen = 0;
    const char *MethodByte;
    if (!R.readVarint(&RawLen) || RawLen > BlockRawBytes ||
        !R.readBytes(&MethodByte, 1) || !R.readVarint(&CompLen) ||
        CompLen > R.remaining())
      return Fail("truncated or oversized ARSZ block");
    const char *Payload;
    if (!R.readBytes(&Payload, static_cast<size_t>(CompLen)))
      return Fail("truncated ARSZ block payload");
    uint32_t Crc = 0;
    if (!R.readFixed32(&Crc))
      return Fail("truncated ARSZ block CRC");
    if (Crc != crc32(Payload, static_cast<size_t>(CompLen)))
      return Fail("ARSZ block CRC mismatch");
    uint8_t Method = static_cast<uint8_t>(*MethodByte);
    if (Method == MethodStored) {
      if (CompLen != RawLen)
        return Fail("stored ARSZ block length mismatch");
      Out->append(Payload, static_cast<size_t>(RawLen));
    } else if (Method == MethodLz) {
      if (!lzDecompressBlock(Payload, static_cast<size_t>(CompLen),
                             static_cast<size_t>(RawLen), Out))
        return Fail("malformed ARSZ token stream");
    } else {
      return Fail("unknown ARSZ block method");
    }
  }
  return true;
}

} // namespace support
} // namespace ars
