//===- support/ThreadPool.cpp ---------------------------------*- C++ -*-===//

#include "support/ThreadPool.h"

namespace ars {
namespace support {

ThreadPool::ThreadPool(int Workers) {
  if (Workers < 1)
    Workers = 1;
  Threads.reserve(static_cast<size_t>(Workers));
  for (int W = 0; W != Workers; ++W)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Job));
  }
  JobReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  AllIdle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr; // the pool stays usable after a catch
    Lock.unlock();
    std::rethrow_exception(E);
  }
}

int ThreadPool::defaultWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<int>(N);
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    JobReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) // Stopping, and nothing left to drain
      return;
    std::function<void()> Job = std::move(Queue.front());
    Queue.pop_front();
    ++Running;
    Lock.unlock();
    std::exception_ptr Raised;
    try {
      Job();
    } catch (...) {
      Raised = std::current_exception();
    }
    Lock.lock();
    if (Raised && !FirstError)
      FirstError = Raised;
    --Running;
    if (Queue.empty() && Running == 0)
      AllIdle.notify_all();
  }
}

} // namespace support
} // namespace ars
