//===- support/TablePrinter.h - Paper-style table rendering ----*- C++ -*-===//
///
/// \file
/// Fixed-width text tables used by the bench harness to print rows shaped
/// like the tables in the paper.  Cells are strings; convenience overloads
/// format numbers the way the paper prints them (one decimal for overhead
/// percentages, integers for counts).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SUPPORT_TABLEPRINTER_H
#define ARS_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace ars {
namespace support {

/// Builds and renders a fixed-width text table.
class TablePrinter {
public:
  /// \p Headers names the columns; column widths adapt to contents.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Starts a new row.  Cells are appended with the cell() overloads and the
  /// row is complete when it has as many cells as there are headers.
  void beginRow();

  void cell(const std::string &Text);
  void cell(const char *Text);
  /// Formats with one decimal place (the paper's overhead style).
  void cellPercent(double Value);
  /// Formats with \p Decimals decimal places.
  void cellDouble(double Value, int Decimals = 2);
  void cellInt(int64_t Value);
  /// Formats large counts in the paper's style, e.g. "1.1e+07".
  void cellCount(double Value);

  /// Renders the full table (header, separator, rows) as one string.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace support
} // namespace ars

#endif // ARS_SUPPORT_TABLEPRINTER_H
