//===- support/TablePrinter.cpp -------------------------------*- C++ -*-===//

#include "support/TablePrinter.h"

#include "support/Support.h"

#include <cassert>
#include <cstdio>

namespace ars {
namespace support {

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::beginRow() { Rows.emplace_back(); }

void TablePrinter::cell(const std::string &Text) {
  assert(!Rows.empty() && "cell() before beginRow()");
  assert(Rows.back().size() < Headers.size() && "row has too many cells");
  Rows.back().push_back(Text);
}

void TablePrinter::cell(const char *Text) { cell(std::string(Text)); }

void TablePrinter::cellPercent(double Value) {
  cell(formatString("%.1f", Value));
}

void TablePrinter::cellDouble(double Value, int Decimals) {
  cell(formatString("%.*f", Decimals, Value));
}

void TablePrinter::cellInt(int64_t Value) {
  cell(formatString("%lld", static_cast<long long>(Value)));
}

void TablePrinter::cellCount(double Value) {
  if (Value >= 1e5)
    cell(formatString("%.1e", Value));
  else
    cell(formatString("%.0f", Value));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto renderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (size_t I = 0; I != Headers.size(); ++I) {
      std::string Text = I < Cells.size() ? Cells[I] : std::string();
      Line += " " + Text + std::string(Widths[I] - Text.size(), ' ') + " |";
    }
    Line += "\n";
    return Line;
  };

  std::string Out = renderRow(Headers);
  std::string Sep = "|";
  for (size_t I = 0; I != Headers.size(); ++I)
    Sep += std::string(Widths[I] + 2, '-') + "|";
  Out += Sep + "\n";
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}

void TablePrinter::print() const {
  std::string Text = render();
  std::fputs(Text.c_str(), stdout);
}

} // namespace support
} // namespace ars
