//===- support/Binary.h - Varint/CRC32 byte-stream helpers ----*- C++ -*-===//
///
/// \file
/// The primitives the profile store's binary format is built from:
/// unsigned LEB128 varints, zigzag signed encoding, IEEE CRC32, and a
/// bounds-checked reader that turns truncated or malformed input into a
/// clean failure instead of UB.  Everything is byte-order independent
/// (varints) except the few fixed-width header fields, which are encoded
/// little-endian explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SUPPORT_BINARY_H
#define ARS_SUPPORT_BINARY_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ars {
namespace support {

/// Appends \p V as an unsigned LEB128 varint (1..10 bytes).
void appendVarint(std::string &Out, uint64_t V);

/// Zigzag-maps a signed value to unsigned so small magnitudes of either
/// sign encode in few varint bytes (-1 -> 1, 1 -> 2, ...).
inline uint64_t zigzagEncode(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}
inline int64_t zigzagDecode(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

/// Appends zigzag(\p V) as a varint.
void appendSignedVarint(std::string &Out, int64_t V);

/// Appends \p V little-endian in exactly 4/8 bytes.
void appendFixed32(std::string &Out, uint32_t V);
void appendFixed64(std::string &Out, uint64_t V);

/// IEEE 802.3 CRC32 (polynomial 0xEDB88320) of \p Size bytes at \p Data.
uint32_t crc32(const void *Data, size_t Size);

/// FNV-1a 64-bit hash of \p Size bytes at \p Data.
///
/// Exists for content *identity* where crc32 is degenerate: a file that
/// ends with its own CRC32 trailer (every .arsp snapshot does) CRCs to
/// the fixed residue 0x2144DF1C regardless of content, so crc32 of such
/// a file cannot distinguish two snapshots.  Use this for identity and
/// keep crc32 for wire/frame corruption checks.
uint64_t fnv1a64(const void *Data, size_t Size);

/// Shared pre-allocation cap for readLengthPrefixed on variable-length
/// text fields (diagnostics, error strings, names) in the wire protocol
/// and on-disk formats.
///
/// Threat model: the length prefix arrives from an untrusted byte stream
/// *before* the bytes it describes, so a decoder that trusts it can be
/// made to reserve gigabytes from a ten-byte frame.  readLengthPrefixed
/// already refuses lengths beyond the bytes actually present, but a
/// hostile peer can still legitimately ship a frame-sized string; this
/// cap bounds what any single human-readable field may claim, far below
/// the 64 MiB frame payload limit.  Fields with a tighter semantic bound
/// (e.g. client names) should declare their own stricter limit; this is
/// the ceiling, not the default.
constexpr uint64_t MaxLengthPrefixedText = 64u << 10;

/// A bounds-checked cursor over an immutable byte buffer.  Every read
/// reports success; after the first failure the reader stays failed, so a
/// parse loop can check once at the end.
class ByteReader {
public:
  ByteReader(const char *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::string &Bytes)
      : ByteReader(Bytes.data(), Bytes.size()) {}

  bool readVarint(uint64_t *Out);
  bool readSignedVarint(int64_t *Out);
  bool readFixed32(uint32_t *Out);
  bool readFixed64(uint64_t *Out);

  /// Points \p Out at the next \p N bytes in place (no copy, no
  /// allocation) and advances.  Fails when fewer than N bytes remain.
  bool readBytes(const char **Out, size_t N);

  /// Reads a varint length followed by that many raw bytes into \p Out.
  /// The declared length is validated against the bytes actually
  /// remaining — and against \p MaxLen when nonzero — BEFORE any
  /// allocation, so a hostile length prefix can never trigger a huge
  /// allocation from a tiny buffer.
  bool readLengthPrefixed(std::string *Out, uint64_t MaxLen = 0);

  size_t position() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }
  bool failed() const { return Failed; }
  bool atEnd() const { return !Failed && Pos == Size; }

private:
  const char *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;

  bool fail() {
    Failed = true;
    return false;
  }
};

} // namespace support
} // namespace ars

#endif // ARS_SUPPORT_BINARY_H
