//===- support/Compress.h - ARSZ block compression ------------*- C++ -*-===//
///
/// \file
/// A dependency-free LZ77-family block compressor and its "ARSZ" framing
/// container, used to shrink on-disk profile snapshots (million-session
/// aggregates are dominated by long runs of near-identical varint
/// sections).  Not a general-purpose codec: ratios are modest, but the
/// decoder is small, allocation-bounded, and every block carries its own
/// CRC so corruption is localized and always detected.
///
/// Container layout:
///
///   "ARSZ"             magic, 4 bytes
///   u8    version      (currently 1)
///   blocks until end of input, each:
///     varint rawLen    (<= BlockRawBytes — enforced before allocation)
///     u8     method    (0 = stored, 1 = LZ)
///     varint compLen
///     compLen bytes    payload
///     u32    CRC32     of the payload bytes (little-endian)
///
/// LZ payload: a sequence of (litLen varint, literals, matchLen varint,
/// dist varint) tokens; matchLen 0 terminates literals-only tails, and
/// matches copy matchLen (>= MinMatch) bytes from dist bytes back in the
/// output, overlap allowed.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SUPPORT_COMPRESS_H
#define ARS_SUPPORT_COMPRESS_H

#include <cstdint>
#include <string>

namespace ars {
namespace support {

/// Maximum raw bytes per block: bounds the decoder's per-block
/// allocation no matter what a hostile length prefix claims.
constexpr uint64_t BlockRawBytes = 256u << 10;

/// Wraps \p Raw in the ARSZ container, compressing each block (blocks
/// that do not shrink are stored verbatim, so the result is never much
/// larger than the input).
std::string compressBlocks(const std::string &Raw);

/// Unwraps an ARSZ container.  Returns false + \p Error on bad magic,
/// unknown version, truncation, per-block CRC mismatch, or a malformed
/// token stream — never UB, never unbounded allocation.
bool decompressBlocks(const std::string &Framed, std::string *Out,
                      std::string *Error);

/// True when \p Bytes starts with the ARSZ magic (cheap container
/// auto-detection for loaders).
bool looksCompressed(const std::string &Bytes);

} // namespace support
} // namespace ars

#endif // ARS_SUPPORT_COMPRESS_H
