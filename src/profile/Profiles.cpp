//===- profile/Profiles.cpp -----------------------------------*- C++ -*-===//

#include "profile/Profiles.h"

#include "bytecode/Module.h"
#include "support/Support.h"

#include <algorithm>

using ars::support::formatString;

namespace ars {
namespace profile {

// All value counters add saturating (see support::saturatingAdd): a
// fleet-wide merge of arbitrarily many sessions must stay a monoid even
// at the uint64 ceiling, and a wrapped counter would order-depend.

void ValueProfile::record(uint64_t SiteId, int64_t Value, uint64_t Count) {
  Total = support::saturatingAdd(Total, Count);
  auto &Table = Sites[SiteId];
  auto It = Table.find(Value);
  if (It != Table.end()) {
    It->second = support::saturatingAdd(It->second, Count);
    return;
  }
  if (Table.size() >= MaxValuesPerSite) {
    Overflow[SiteId] = support::saturatingAdd(Overflow[SiteId], Count);
    return;
  }
  Table.emplace(Value, Count);
}

void ValueProfile::add(uint64_t SiteId, int64_t Value, uint64_t Count) {
  uint64_t &Cell = Sites[SiteId][Value];
  Cell = support::saturatingAdd(Cell, Count);
  Total = support::saturatingAdd(Total, Count);
}

void ValueProfile::addOverflow(uint64_t SiteId, uint64_t Count) {
  Sites[SiteId]; // the overflow bucket belongs to a (possibly empty) site
  Overflow[SiteId] = support::saturatingAdd(Overflow[SiteId], Count);
  Total = support::saturatingAdd(Total, Count);
}

uint64_t ValueProfile::overflow(uint64_t SiteId) const {
  auto It = Overflow.find(SiteId);
  return It == Overflow.end() ? 0 : It->second;
}

std::string serializeBundle(const ProfileBundle &B) {
  std::string Out;
  auto count = [&Out](uint64_t Count) {
    Out += formatString(":%llu", static_cast<unsigned long long>(Count));
  };

  Out += formatString("call-edges %llu\n",
                      static_cast<unsigned long long>(B.CallEdges.total()));
  for (const auto &[Key, Count] : B.CallEdges.counts()) {
    Out += formatString("%d/%d/%d", Key.Caller, Key.Site, Key.Callee);
    count(Count);
    Out += '\n';
  }

  Out += formatString("field-accesses %llu\n",
                      static_cast<unsigned long long>(
                          B.FieldAccesses.total()));
  for (size_t F = 0; F != B.FieldAccesses.counts().size(); ++F) {
    Out += formatString("%zu", F);
    count(B.FieldAccesses.counts()[F]);
    Out += '\n';
  }

  Out += formatString("block-counts %llu\n",
                      static_cast<unsigned long long>(B.BlockCounts.total()));
  for (const auto &[Key, Count] : B.BlockCounts.counts()) {
    Out += formatString("%d/%d", Key.first, Key.second);
    count(Count);
    Out += '\n';
  }

  Out += formatString("values %llu\n",
                      static_cast<unsigned long long>(B.Values.total()));
  for (const auto &[Site, Table] : B.Values.sites()) {
    Out += formatString("site %llu ov",
                        static_cast<unsigned long long>(Site));
    count(B.Values.overflow(Site));
    Out += '\n';
    for (const auto &[Value, Count] : Table) {
      Out += formatString("%lld", static_cast<long long>(Value));
      count(Count);
      Out += '\n';
    }
  }

  Out += formatString("edges %llu\n",
                      static_cast<unsigned long long>(B.Edges.total()));
  for (const auto &[Key, Count] : B.Edges.counts()) {
    Out += formatString("%d/%d/%d", std::get<0>(Key), std::get<1>(Key),
                        std::get<2>(Key));
    count(Count);
    Out += '\n';
  }

  Out += formatString("paths %llu\n",
                      static_cast<unsigned long long>(B.Paths.total()));
  for (const auto &[Key, Count] : B.Paths.counts()) {
    Out += formatString("%d/%lld", Key.first,
                        static_cast<long long>(Key.second));
    count(Count);
    Out += '\n';
  }
  return Out;
}

std::string dumpCallEdges(const bytecode::Module &M,
                          const CallEdgeProfile &P, int TopK) {
  std::vector<std::pair<CallEdgeKey, uint64_t>> Edges(P.counts().begin(),
                                                      P.counts().end());
  std::stable_sort(Edges.begin(), Edges.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  if (TopK >= 0 && static_cast<size_t>(TopK) < Edges.size())
    Edges.resize(static_cast<size_t>(TopK));

  std::string Out;
  for (const auto &[Key, Count] : Edges) {
    const char *Caller =
        Key.Caller >= 0 ? M.functionAt(Key.Caller).Name.c_str() : "<entry>";
    const char *Callee =
        Key.Callee >= 0 ? M.functionAt(Key.Callee).Name.c_str() : "<bad>";
    double Pct = P.total()
                     ? 100.0 * static_cast<double>(Count) /
                           static_cast<double>(P.total())
                     : 0.0;
    Out += formatString("%s@%d -> %s : %llu (%.2f%%)\n", Caller, Key.Site,
                        Callee, static_cast<unsigned long long>(Count), Pct);
  }
  return Out;
}

std::string dumpFieldAccesses(const bytecode::Module &M,
                              const FieldAccessProfile &P) {
  std::string Out;
  for (size_t F = 0; F != P.counts().size(); ++F) {
    uint64_t Count = P.counts()[F];
    if (!Count)
      continue;
    double Pct = P.total()
                     ? 100.0 * static_cast<double>(Count) /
                           static_cast<double>(P.total())
                     : 0.0;
    Out += formatString("%s : %llu (%.2f%%)\n",
                        M.fieldIdName(static_cast<int>(F)).c_str(),
                        static_cast<unsigned long long>(Count), Pct);
  }
  return Out;
}

} // namespace profile
} // namespace ars
