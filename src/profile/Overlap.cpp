//===- profile/Overlap.cpp ------------------------------------*- C++ -*-===//

#include "profile/Overlap.h"

namespace ars {
namespace profile {

double overlapPercent(const CallEdgeProfile &Perfect,
                      const CallEdgeProfile &Sampled) {
  return overlapPercentMaps(Perfect.counts(), Sampled.counts(),
                            static_cast<double>(Perfect.total()),
                            static_cast<double>(Sampled.total()));
}

double overlapPercent(const FieldAccessProfile &Perfect,
                      const FieldAccessProfile &Sampled) {
  if (Perfect.total() == 0 || Sampled.total() == 0)
    return 0.0;
  double Overlap = 0.0;
  size_t N = std::min(Perfect.counts().size(), Sampled.counts().size());
  for (size_t F = 0; F != N; ++F) {
    double PPct = 100.0 * static_cast<double>(Perfect.counts()[F]) /
                  static_cast<double>(Perfect.total());
    double SPct = 100.0 * static_cast<double>(Sampled.counts()[F]) /
                  static_cast<double>(Sampled.total());
    Overlap += std::min(PPct, SPct);
  }
  return Overlap;
}

double overlapPercent(const BlockCountProfile &Perfect,
                      const BlockCountProfile &Sampled) {
  return overlapPercentMaps(Perfect.counts(), Sampled.counts(),
                            static_cast<double>(Perfect.total()),
                            static_cast<double>(Sampled.total()));
}

std::vector<OverlapBar> overlapBars(const CallEdgeProfile &Perfect,
                                    const CallEdgeProfile &Sampled,
                                    int TopK) {
  std::vector<OverlapBar> Bars;
  double PTotal = static_cast<double>(Perfect.total());
  double STotal = static_cast<double>(Sampled.total());
  for (const auto &[Key, Count] : Perfect.counts()) {
    OverlapBar Bar;
    Bar.Edge = Key;
    Bar.PerfectPct = PTotal > 0 ? 100.0 * static_cast<double>(Count) / PTotal
                                : 0.0;
    auto It = Sampled.counts().find(Key);
    if (It != Sampled.counts().end() && STotal > 0)
      Bar.SampledPct = 100.0 * static_cast<double>(It->second) / STotal;
    Bars.push_back(Bar);
  }
  std::stable_sort(Bars.begin(), Bars.end(),
                   [](const OverlapBar &A, const OverlapBar &B) {
                     return A.PerfectPct > B.PerfectPct;
                   });
  if (TopK >= 0 && static_cast<size_t>(TopK) < Bars.size())
    Bars.resize(static_cast<size_t>(TopK));
  return Bars;
}

} // namespace profile
} // namespace ars
