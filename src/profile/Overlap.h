//===- profile/Overlap.h - The paper's accuracy metric --------*- C++ -*-===//
///
/// \file
/// The overlap-percentage metric of section 4.4: each profile entry's
/// sample-percentage is its count divided by the profile total; the overlap
/// of two profiles is the sum over entries of the minimum of the two
/// sample-percentages.  Identical distributions overlap 100%.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFILE_OVERLAP_H
#define ARS_PROFILE_OVERLAP_H

#include "profile/Profiles.h"

#include <algorithm>

namespace ars {
namespace profile {

/// Overlap of two generic key->count maps.
template <typename MapT>
double overlapPercentMaps(const MapT &Perfect, const MapT &Sampled,
                          double PerfectTotal, double SampledTotal) {
  if (PerfectTotal <= 0 || SampledTotal <= 0)
    return 0.0;
  double Overlap = 0.0;
  auto PIt = Perfect.begin();
  auto SIt = Sampled.begin();
  while (PIt != Perfect.end() && SIt != Sampled.end()) {
    if (PIt->first < SIt->first) {
      ++PIt;
      continue;
    }
    if (SIt->first < PIt->first) {
      ++SIt;
      continue;
    }
    double PPct = 100.0 * static_cast<double>(PIt->second) / PerfectTotal;
    double SPct = 100.0 * static_cast<double>(SIt->second) / SampledTotal;
    Overlap += std::min(PPct, SPct);
    ++PIt;
    ++SIt;
  }
  return Overlap;
}

/// Overlap of two call-edge profiles.
double overlapPercent(const CallEdgeProfile &Perfect,
                      const CallEdgeProfile &Sampled);

/// Overlap of two field-access profiles.
double overlapPercent(const FieldAccessProfile &Perfect,
                      const FieldAccessProfile &Sampled);

/// Overlap of two block-count profiles.
double overlapPercent(const BlockCountProfile &Perfect,
                      const BlockCountProfile &Sampled);

/// One bar of the Figure 7 rendering: an edge with its perfect and sampled
/// sample-percentages.
struct OverlapBar {
  CallEdgeKey Edge;
  double PerfectPct = 0.0;
  double SampledPct = 0.0;
};

/// The Figure 7 data: the top \p TopK edges by perfect sample-percentage,
/// in descending order.
std::vector<OverlapBar> overlapBars(const CallEdgeProfile &Perfect,
                                    const CallEdgeProfile &Sampled,
                                    int TopK);

} // namespace profile
} // namespace ars

#endif // ARS_PROFILE_OVERLAP_H
