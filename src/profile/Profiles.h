//===- profile/Profiles.h - Profile data structures -----------*- C++ -*-===//
///
/// \file
/// The profiles the paper's two instrumentations collect, plus the two
/// extension clients:
///
///  * CallEdgeProfile    - one counter per (caller, call-site, callee)
///                         triple (paper section 4.2, example 1).
///  * FieldAccessProfile - one counter per field of all classes (example 2).
///  * BlockCountProfile  - basic-block execution counts (extension).
///  * ValueProfile       - per-site top-value tables (extension, after
///                         Calder et al.).
///
/// ProfileBundle aggregates all four; the execution engine owns one bundle
/// per run and probes write into it.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_PROFILE_PROFILES_H
#define ARS_PROFILE_PROFILES_H

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace ars {
namespace bytecode {
class Module;
}

namespace profile {

/// Key identifying one call edge.
struct CallEdgeKey {
  int Caller = -1; ///< caller function id (-1 = thread/program entry)
  int Site = -1;   ///< bytecode offset of the call in the caller
  int Callee = -1; ///< callee function id

  bool operator<(const CallEdgeKey &O) const {
    if (Caller != O.Caller)
      return Caller < O.Caller;
    if (Site != O.Site)
      return Site < O.Site;
    return Callee < O.Callee;
  }
  bool operator==(const CallEdgeKey &O) const {
    return Caller == O.Caller && Site == O.Site && Callee == O.Callee;
  }
};

/// Counter per call edge.
class CallEdgeProfile {
public:
  void record(const CallEdgeKey &Key, uint64_t Count = 1) {
    Counts[Key] += Count;
    Total += Count;
  }

  /// Interning support for the engine's hot record path: the counter
  /// cell for \p Key (inserted at zero if absent).  std::map nodes are
  /// stable under insertion, so the pointer stays valid until clear();
  /// bump it through addAt so Total stays consistent.
  uint64_t *slot(const CallEdgeKey &Key) { return &Counts[Key]; }
  void addAt(uint64_t *Slot, uint64_t Count) {
    *Slot += Count;
    Total += Count;
  }

  uint64_t total() const { return Total; }
  const std::map<CallEdgeKey, uint64_t> &counts() const { return Counts; }
  bool empty() const { return Counts.empty(); }
  void clear() {
    Counts.clear();
    Total = 0;
  }

private:
  std::map<CallEdgeKey, uint64_t> Counts;
  uint64_t Total = 0;
};

/// Counter per module-global field id.
class FieldAccessProfile {
public:
  void resize(int NumFieldIds) { Counts.assign(NumFieldIds, 0); }
  /// Grows the counter vector on demand: a probe compiled against a stale
  /// module (or a profile loaded from disk with more fields than the
  /// engine resized for) must never index out of bounds.  Negative ids
  /// are a caller bug and assert.
  void record(int FieldId, uint64_t Count = 1) {
    assert(FieldId >= 0 && "FieldAccessProfile: negative field id");
    if (FieldId < 0)
      return;
    if (static_cast<size_t>(FieldId) >= Counts.size())
      Counts.resize(static_cast<size_t>(FieldId) + 1, 0);
    Counts[static_cast<size_t>(FieldId)] += Count;
    Total += Count;
  }

  uint64_t total() const { return Total; }
  const std::vector<uint64_t> &counts() const { return Counts; }
  void clear() {
    Counts.assign(Counts.size(), 0);
    Total = 0;
  }

private:
  std::vector<uint64_t> Counts;
  uint64_t Total = 0;
};

/// Execution count per (function, block).
class BlockCountProfile {
public:
  void record(int FuncId, int Block, uint64_t Count = 1) {
    Counts[{FuncId, Block}] += Count;
    Total += Count;
  }

  /// Counter cell for (\p FuncId, \p Block); stable until clear() (see
  /// CallEdgeProfile::slot).
  uint64_t *slot(int FuncId, int Block) { return &Counts[{FuncId, Block}]; }
  void addAt(uint64_t *Slot, uint64_t Count) {
    *Slot += Count;
    Total += Count;
  }

  uint64_t total() const { return Total; }
  const std::map<std::pair<int, int>, uint64_t> &counts() const {
    return Counts;
  }
  void clear() {
    Counts.clear();
    Total = 0;
  }

private:
  std::map<std::pair<int, int>, uint64_t> Counts;
  uint64_t Total = 0;
};

/// Execution count per CFG edge (function, from-block, to-block) —
/// intraprocedural edge profiling, one of the section 2 client types.
class EdgeCountProfile {
public:
  using Key = std::tuple<int, int, int>;

  void record(int FuncId, int From, int To, uint64_t Count = 1) {
    Counts[{FuncId, From, To}] += Count;
    Total += Count;
  }

  /// Counter cell for the edge; stable until clear() (see
  /// CallEdgeProfile::slot).
  uint64_t *slot(int FuncId, int From, int To) {
    return &Counts[{FuncId, From, To}];
  }
  void addAt(uint64_t *Slot, uint64_t Count) {
    *Slot += Count;
    Total += Count;
  }

  uint64_t total() const { return Total; }
  const std::map<Key, uint64_t> &counts() const { return Counts; }
  void clear() {
    Counts.clear();
    Total = 0;
  }

private:
  std::map<Key, uint64_t> Counts;
  uint64_t Total = 0;
};

/// Ball-Larus style path profile: count per (function, path number).
/// Paths are delimited by method entry, backedges and returns.
class PathProfile {
public:
  using Key = std::pair<int, int64_t>;

  void record(int FuncId, int64_t PathNumber, uint64_t Count = 1) {
    Counts[{FuncId, PathNumber}] += Count;
    Total += Count;
  }

  uint64_t total() const { return Total; }
  const std::map<Key, uint64_t> &counts() const { return Counts; }
  void clear() {
    Counts.clear();
    Total = 0;
  }

private:
  std::map<Key, uint64_t> Counts;
  uint64_t Total = 0;
};

/// Per-site value histogram, capped at MaxValuesPerSite distinct values
/// (further values fold into an "other" bucket).
class ValueProfile {
public:
  static constexpr size_t MaxValuesPerSite = 32;

  void record(uint64_t SiteId, int64_t Value, uint64_t Count = 1);

  /// Adds \p Count to (\p SiteId, \p Value) with no MaxValuesPerSite
  /// fold.  The cap is a *collection-time* bound (it models the fixed
  /// per-site table a runtime would allocate); profile merging and
  /// deserialization sum tables that were already capped when recorded,
  /// and must do so commutatively — re-folding here would make the result
  /// depend on merge order.  Merged tables may therefore exceed the cap.
  void add(uint64_t SiteId, int64_t Value, uint64_t Count);

  /// Adds \p Count to \p SiteId's overflow ("other") bucket, creating the
  /// site if needed.
  void addOverflow(uint64_t SiteId, uint64_t Count);

  uint64_t total() const { return Total; }
  const std::map<uint64_t, std::map<int64_t, uint64_t>> &sites() const {
    return Sites;
  }
  /// Dropped-to-"other" event count for \p SiteId.
  uint64_t overflow(uint64_t SiteId) const;
  void clear() {
    Sites.clear();
    Overflow.clear();
    Total = 0;
  }

private:
  std::map<uint64_t, std::map<int64_t, uint64_t>> Sites;
  std::map<uint64_t, uint64_t> Overflow;
  uint64_t Total = 0;
};

/// Everything one run collects.
struct ProfileBundle {
  CallEdgeProfile CallEdges;
  FieldAccessProfile FieldAccesses;
  BlockCountProfile BlockCounts;
  ValueProfile Values;
  EdgeCountProfile Edges;
  PathProfile Paths;

  void clear() {
    CallEdges.clear();
    FieldAccesses.clear();
    BlockCounts.clear();
    Values.clear();
    Edges.clear();
    Paths.clear();
  }
};

/// Canonical byte serialization of every profile in \p B.  Two bundles
/// serialize identically iff they hold identical counts, so this is the
/// "bit-identical profiles" comparator used by the determinism tests of
/// the parallel harness (all profile maps are ordered, so iteration — and
/// therefore the byte stream — is deterministic).
std::string serializeBundle(const ProfileBundle &B);

/// Text dump of the top \p TopK call edges with names from \p M.
std::string dumpCallEdges(const bytecode::Module &M,
                          const CallEdgeProfile &P, int TopK);

/// Text dump of nonzero field counters with names from \p M.
std::string dumpFieldAccesses(const bytecode::Module &M,
                              const FieldAccessProfile &P);

} // namespace profile
} // namespace ars

#endif // ARS_PROFILE_PROFILES_H
