//===- frontend/CodeGen.cpp -----------------------------------*- C++ -*-===//

#include "frontend/CodeGen.h"

#include "bytecode/Builder.h"
#include "support/Support.h"

#include <cassert>

using ars::support::formatString;

namespace ars {
namespace frontend {

namespace {

using bytecode::Builder;
using bytecode::Label;
using bytecode::Opcode;

class FuncEmitter {
public:
  FuncEmitter(const FuncDecl &Decl, bytecode::FunctionDef &Func)
      : Decl(Decl), Func(Func), B(Func) {}

  bool run(std::string *Error);

private:
  const FuncDecl &Decl;
  bytecode::FunctionDef &Func;
  Builder B;
  /// Innermost-first stack of (continueTarget, breakTarget).
  std::vector<std::pair<Label, Label>> Loops;

  void emitExpr(const Expr &E);
  void emitCondNegated(const Expr &E, Label Target); ///< jump if false
  void emitStmt(const Stmt &S);
};

void FuncEmitter::emitExpr(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    B.emit(Opcode::IConst, E.IntVal);
    return;
  case Expr::Kind::FloatLit:
    B.emitFConst(E.FloatVal);
    return;
  case Expr::Kind::VarRef:
    if (E.Slot >= 0)
      B.emit(Opcode::Load, E.Slot);
    else
      B.emit(Opcode::GetGlobal, E.GlobalId);
    return;
  case Expr::Kind::Binary: {
    const Expr &L = *E.Kids[0];
    const Expr &R = *E.Kids[1];
    if (E.Op == "&&") {
      Label EvalRhs = B.makeLabel(), End = B.makeLabel();
      emitExpr(L);
      B.emitBranch(Opcode::BrIf, EvalRhs);
      B.emit(Opcode::IConst, 0);
      B.emitBranch(Opcode::Br, End);
      B.bind(EvalRhs);
      emitExpr(R);
      B.emit(Opcode::IConst, 0);
      B.emit(Opcode::CmpNe);
      B.bind(End);
      return;
    }
    if (E.Op == "||") {
      Label IsTrue = B.makeLabel(), End = B.makeLabel();
      emitExpr(L);
      B.emitBranch(Opcode::BrIf, IsTrue);
      emitExpr(R);
      B.emit(Opcode::IConst, 0);
      B.emit(Opcode::CmpNe);
      B.emitBranch(Opcode::Br, End);
      B.bind(IsTrue);
      B.emit(Opcode::IConst, 1);
      B.bind(End);
      return;
    }

    emitExpr(L);
    emitExpr(R);
    bool IsFloat = L.Ty.K == SemaType::Kind::Float;
    if (!IsFloat) {
      Opcode Op = Opcode::Nop;
      if (E.Op == "+") Op = Opcode::Add;
      else if (E.Op == "-") Op = Opcode::Sub;
      else if (E.Op == "*") Op = Opcode::Mul;
      else if (E.Op == "/") Op = Opcode::Div;
      else if (E.Op == "%") Op = Opcode::Rem;
      else if (E.Op == "&") Op = Opcode::And;
      else if (E.Op == "|") Op = Opcode::Or;
      else if (E.Op == "^") Op = Opcode::Xor;
      else if (E.Op == "<<") Op = Opcode::Shl;
      else if (E.Op == ">>") Op = Opcode::Shr;
      else if (E.Op == "==") Op = Opcode::CmpEq;
      else if (E.Op == "!=") Op = Opcode::CmpNe;
      else if (E.Op == "<") Op = Opcode::CmpLt;
      else if (E.Op == "<=") Op = Opcode::CmpLe;
      else if (E.Op == ">") Op = Opcode::CmpGt;
      else if (E.Op == ">=") Op = Opcode::CmpGe;
      assert(Op != Opcode::Nop && "unhandled int binary operator");
      B.emit(Op);
      return;
    }
    // Float: arithmetic is direct; >, >= swap operands; != negates ==.
    if (E.Op == "+") { B.emit(Opcode::FAdd); return; }
    if (E.Op == "-") { B.emit(Opcode::FSub); return; }
    if (E.Op == "*") { B.emit(Opcode::FMul); return; }
    if (E.Op == "/") { B.emit(Opcode::FDiv); return; }
    if (E.Op == "<") { B.emit(Opcode::FCmpLt); return; }
    if (E.Op == "<=") { B.emit(Opcode::FCmpLe); return; }
    if (E.Op == "==") { B.emit(Opcode::FCmpEq); return; }
    if (E.Op == "!=") {
      B.emit(Opcode::FCmpEq);
      B.emit(Opcode::IConst, 0);
      B.emit(Opcode::CmpEq);
      return;
    }
    if (E.Op == ">") {
      B.emit(Opcode::Swap);
      B.emit(Opcode::FCmpLt);
      return;
    }
    assert(E.Op == ">=" && "unhandled float binary operator");
    B.emit(Opcode::Swap);
    B.emit(Opcode::FCmpLe);
    return;
  }
  case Expr::Kind::Unary:
    if (E.Op == "!") {
      emitExpr(*E.Kids[0]);
      B.emit(Opcode::IConst, 0);
      B.emit(Opcode::CmpEq);
      return;
    }
    emitExpr(*E.Kids[0]);
    B.emit(E.Kids[0]->Ty.K == SemaType::Kind::Float ? Opcode::FNeg
                                                    : Opcode::Neg);
    return;
  case Expr::Kind::Call: {
    switch (E.BI) {
    case Builtin::Print:
      emitExpr(*E.Kids[0]);
      B.emit(Opcode::Print);
      return;
    case Builtin::IOWait:
      B.emit(Opcode::IOWait, E.Kids[0]->IntVal);
      return;
    case Builtin::Len:
      emitExpr(*E.Kids[0]);
      B.emit(Opcode::ALen);
      return;
    case Builtin::CastInt:
      emitExpr(*E.Kids[0]);
      if (E.Kids[0]->Ty.K == SemaType::Kind::Float)
        B.emit(Opcode::F2I);
      return;
    case Builtin::CastFloat:
      emitExpr(*E.Kids[0]);
      if (E.Kids[0]->Ty.K == SemaType::Kind::Int)
        B.emit(Opcode::I2F);
      return;
    case Builtin::None:
      break;
    }
    for (const ExprPtr &Arg : E.Kids)
      emitExpr(*Arg);
    B.emit(Opcode::Call, E.FuncId);
    return;
  }
  case Expr::Kind::Index:
    emitExpr(*E.Kids[0]);
    emitExpr(*E.Kids[1]);
    B.emit(Opcode::ALoad);
    return;
  case Expr::Kind::Field:
    emitExpr(*E.Kids[0]);
    B.emit(Opcode::GetField, E.FieldId);
    return;
  case Expr::Kind::NewObject:
    B.emit(Opcode::New, E.ClassId);
    return;
  case Expr::Kind::NewArray:
    emitExpr(*E.Kids[0]);
    B.emit(Opcode::NewArray);
    return;
  }
}

void FuncEmitter::emitCondNegated(const Expr &E, Label Target) {
  emitExpr(E);
  B.emit(Opcode::IConst, 0);
  B.emit(Opcode::CmpEq);
  B.emitBranch(Opcode::BrIf, Target);
}

void FuncEmitter::emitStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : S.Stmts)
      emitStmt(*Child);
    return;
  case Stmt::Kind::VarDecl:
    if (S.E) {
      emitExpr(*S.E);
      B.emit(Opcode::Store, S.Slot);
    }
    return;
  case Stmt::Kind::Assign: {
    const Expr &L = *S.Lhs;
    switch (L.K) {
    case Expr::Kind::VarRef:
      emitExpr(*S.E);
      if (L.Slot >= 0)
        B.emit(Opcode::Store, L.Slot);
      else
        B.emit(Opcode::PutGlobal, L.GlobalId);
      return;
    case Expr::Kind::Index:
      emitExpr(*L.Kids[0]);
      emitExpr(*L.Kids[1]);
      emitExpr(*S.E);
      B.emit(Opcode::AStore);
      return;
    case Expr::Kind::Field:
      emitExpr(*L.Kids[0]);
      emitExpr(*S.E);
      B.emit(Opcode::PutField, L.FieldId);
      return;
    default:
      assert(false && "non-lvalue survived the parser");
      return;
    }
  }
  case Stmt::Kind::ExprStmt:
    emitExpr(*S.E);
    if (S.E->Ty.K != SemaType::Kind::Void)
      B.emit(Opcode::Pop);
    return;
  case Stmt::Kind::If: {
    Label Then = B.makeLabel(), End = B.makeLabel();
    emitExpr(*S.E);
    B.emitBranch(Opcode::BrIf, Then);
    if (S.Else)
      emitStmt(*S.Else);
    B.emitBranch(Opcode::Br, End);
    B.bind(Then);
    emitStmt(*S.Body);
    B.bind(End);
    return;
  }
  case Stmt::Kind::While: {
    Label Cond = B.makeLabel(), End = B.makeLabel();
    B.bind(Cond);
    emitCondNegated(*S.E, End);
    Loops.emplace_back(Cond, End);
    emitStmt(*S.Body);
    Loops.pop_back();
    B.emitBranch(Opcode::Br, Cond);
    B.bind(End);
    return;
  }
  case Stmt::Kind::For: {
    Label Cond = B.makeLabel(), Cont = B.makeLabel(), End = B.makeLabel();
    if (S.Init)
      emitStmt(*S.Init);
    B.bind(Cond);
    if (S.E)
      emitCondNegated(*S.E, End);
    Loops.emplace_back(Cont, End);
    emitStmt(*S.Body);
    Loops.pop_back();
    B.bind(Cont);
    if (S.Step)
      emitStmt(*S.Step);
    B.emitBranch(Opcode::Br, Cond);
    B.bind(End);
    return;
  }
  case Stmt::Kind::Return:
    if (S.E) {
      emitExpr(*S.E);
      B.emit(Opcode::RetVal);
    } else {
      B.emit(Opcode::Ret);
    }
    return;
  case Stmt::Kind::Break:
    assert(!Loops.empty() && "break outside loop survived sema");
    B.emitBranch(Opcode::Br, Loops.back().second);
    return;
  case Stmt::Kind::Continue:
    assert(!Loops.empty() && "continue outside loop survived sema");
    B.emitBranch(Opcode::Br, Loops.back().first);
    return;
  case Stmt::Kind::Spawn:
    for (const ExprPtr &Arg : S.Args)
      emitExpr(*Arg);
    B.emit(Opcode::Spawn, S.FuncId);
    return;
  }
}

bool FuncEmitter::run(std::string *Error) {
  emitStmt(*Decl.Body);

  // Fallback terminator so every path ends the function even without an
  // explicit return (dead when the body always returns).
  switch (Func.Ret) {
  case bytecode::Type::Void:
    B.emit(Opcode::Ret);
    break;
  case bytecode::Type::I64:
    B.emit(Opcode::IConst, 0);
    B.emit(Opcode::RetVal);
    break;
  case bytecode::Type::F64:
    B.emitFConst(0.0);
    B.emit(Opcode::RetVal);
    break;
  case bytecode::Type::Ref:
    // No null literal exists; synthesize an empty array as the dead-path
    // placeholder value.
    B.emit(Opcode::IConst, 0);
    B.emit(Opcode::NewArray);
    B.emit(Opcode::RetVal);
    break;
  }

  if (!B.finish()) {
    *Error = formatString("%s: unbound label", Decl.Name.c_str());
    return false;
  }
  return true;
}

} // namespace

CodeGenResult
generate(const Program &Prog,
         const std::vector<std::vector<bytecode::Type>> &LocalLayouts,
         bytecode::Module &M) {
  CodeGenResult Result;
  assert(LocalLayouts.size() == Prog.Funcs.size() &&
         "layout table does not match function count");
  for (size_t I = 0; I != Prog.Funcs.size(); ++I) {
    bytecode::FunctionDef &Func = M.functionAt(static_cast<int>(I));
    Func.LocalTypes = LocalLayouts[I];
    Func.NumLocals = static_cast<int>(LocalLayouts[I].size());
    FuncEmitter Emitter(Prog.Funcs[I], Func);
    if (!Emitter.run(&Result.Error))
      return Result;
  }
  Result.Ok = true;
  return Result;
}

} // namespace frontend
} // namespace ars
