//===- frontend/CodeGen.h - MiniJ bytecode emission -----------*- C++ -*-===//
///
/// \file
/// Emits verified bytecode from the Sema-annotated AST.  Straightforward
/// one-pass stack-machine codegen: every expression leaves exactly one
/// value, conditions branch with BrIf, && and || short-circuit.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FRONTEND_CODEGEN_H
#define ARS_FRONTEND_CODEGEN_H

#include "bytecode/Module.h"
#include "frontend/Ast.h"
#include "frontend/Sema.h"

#include <string>

namespace ars {
namespace frontend {

/// Code generation outcome.
struct CodeGenResult {
  bool Ok = false;
  std::string Error;
};

/// Fills in the function bodies of \p M from the analyzed \p Prog.
/// \p LocalLayouts comes from SemaResult.
CodeGenResult
generate(const Program &Prog,
         const std::vector<std::vector<bytecode::Type>> &LocalLayouts,
         bytecode::Module &M);

} // namespace frontend
} // namespace ars

#endif // ARS_FRONTEND_CODEGEN_H
