//===- frontend/Ast.h - MiniJ abstract syntax ----------------*- C++ -*-===//
///
/// \file
/// Compact tagged-node AST for MiniJ.  Sema annotates nodes in place
/// (resolved types, local slots, function/field ids) so the code generator
/// is a single traversal with no extra symbol lookups.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FRONTEND_AST_H
#define ARS_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ars {
namespace frontend {

/// Syntactic type annotation.
struct TypeSpec {
  enum class Base : uint8_t { Int, Float, Void, Named, IntArray };
  Base B = Base::Int;
  std::string ClassName; ///< for Named

  static TypeSpec makeInt() { return TypeSpec(); }
  static TypeSpec make(Base B) {
    TypeSpec T;
    T.B = B;
    return T;
  }
};

/// Resolved semantic type.
struct SemaType {
  enum class Kind : uint8_t { Int, Float, Void, Array, Class, Invalid };
  Kind K = Kind::Invalid;
  int ClassId = -1;

  static SemaType makeInt() { return {Kind::Int, -1}; }
  static SemaType makeFloat() { return {Kind::Float, -1}; }
  static SemaType makeVoid() { return {Kind::Void, -1}; }
  static SemaType makeArray() { return {Kind::Array, -1}; }
  static SemaType makeClass(int Id) { return {Kind::Class, Id}; }

  bool operator==(const SemaType &O) const {
    return K == O.K && (K != Kind::Class || ClassId == O.ClassId);
  }
  bool operator!=(const SemaType &O) const { return !(*this == O); }
  bool isNumeric() const { return K == Kind::Int || K == Kind::Float; }
};

/// Name of \p T for diagnostics.
std::string semaTypeName(const SemaType &T);

/// Builtin pseudo-functions resolved by Sema.
enum class Builtin : uint8_t {
  None,
  Print,    ///< print(x)
  IOWait,   ///< iowait(<int literal>)
  Len,      ///< len(array)
  CastInt,  ///< int(x)
  CastFloat ///< float(x)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node.
struct Expr {
  enum class Kind : uint8_t {
    IntLit,
    FloatLit,
    VarRef,   ///< Name
    Binary,   ///< Op, Kids[0], Kids[1]
    Unary,    ///< Op ("-" or "!"), Kids[0]
    Call,     ///< Name(Kids...)  — user function or builtin
    Index,    ///< Kids[0][Kids[1]]
    Field,    ///< Kids[0].Name
    NewObject,///< new Name
    NewArray  ///< new int[Kids[0]]
  };
  Kind K = Kind::IntLit;
  int Line = 0;
  int64_t IntVal = 0;
  double FloatVal = 0.0;
  std::string Name;
  std::string Op;
  std::vector<ExprPtr> Kids;

  // Sema annotations.
  SemaType Ty;
  int Slot = -1;     ///< VarRef: local slot (or -1 when global)
  int GlobalId = -1; ///< VarRef: global index
  int FuncId = -1;   ///< Call: callee
  Builtin BI = Builtin::None;
  int FieldId = -1;  ///< Field: module field id
  int ClassId = -1;  ///< NewObject
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node.
struct Stmt {
  enum class Kind : uint8_t {
    Block,    ///< Stmts
    VarDecl,  ///< DeclTy Name = E?
    Assign,   ///< Lhs = E
    ExprStmt, ///< E
    If,       ///< if (E) Body else Else
    While,    ///< while (E) Body
    For,      ///< for (Init; E; Step) Body
    Return,   ///< return E?
    Break,
    Continue,
    Spawn     ///< spawn Name(Args)
  };
  Kind K = Kind::Block;
  int Line = 0;
  TypeSpec DeclTy;
  std::string Name; ///< VarDecl name / Spawn callee
  ExprPtr Lhs;
  ExprPtr E;
  StmtPtr Init, Step;
  StmtPtr Body, Else;
  std::vector<StmtPtr> Stmts;
  std::vector<ExprPtr> Args;

  // Sema annotations.
  int Slot = -1;   ///< VarDecl local slot
  int FuncId = -1; ///< Spawn callee
};

/// Top-level declarations.
struct ClassDecl {
  std::string Name;
  std::vector<std::pair<TypeSpec, std::string>> Fields;
  int Line = 0;
};

struct GlobalDecl {
  TypeSpec Ty;
  std::string Name;
  int Line = 0;
};

struct FuncDecl {
  TypeSpec Ret;
  std::string Name;
  std::vector<std::pair<TypeSpec, std::string>> Params;
  StmtPtr Body;
  int Line = 0;
};

/// A parsed compilation unit.
struct Program {
  std::vector<ClassDecl> Classes;
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Funcs;
};

} // namespace frontend
} // namespace ars

#endif // ARS_FRONTEND_AST_H
