//===- frontend/Sema.cpp --------------------------------------*- C++ -*-===//

#include "frontend/Sema.h"

#include "support/Support.h"

#include <cassert>
#include <map>

using ars::support::formatString;

namespace ars {
namespace frontend {

bytecode::Type toBytecodeType(const SemaType &T) {
  switch (T.K) {
  case SemaType::Kind::Int:   return bytecode::Type::I64;
  case SemaType::Kind::Float: return bytecode::Type::F64;
  case SemaType::Kind::Void:  return bytecode::Type::Void;
  case SemaType::Kind::Array:
  case SemaType::Kind::Class: return bytecode::Type::Ref;
  case SemaType::Kind::Invalid:
    break;
  }
  return bytecode::Type::Void;
}

namespace {

class Analyzer {
public:
  explicit Analyzer(Program &Prog) : Prog(Prog) {}
  SemaResult run();

private:
  Program &Prog;
  SemaResult Result;
  bool Failed = false;

  std::map<std::string, int> ClassIds;
  std::map<std::string, int> GlobalIds;
  std::map<std::string, int> FuncIds;

  // Current function state.
  FuncDecl *CurFunc = nullptr;
  SemaType CurRet;
  std::vector<bytecode::Type> *CurLocals = nullptr;
  /// Scope stack: (name, slot, type); scopes are marked by sentinel depth.
  struct Local {
    std::string Name;
    int Slot;
    SemaType Ty;
  };
  std::vector<Local> Scope;
  std::vector<size_t> ScopeMarks;
  int LoopDepth = 0;

  bool fail(int Line, const std::string &Message) {
    if (!Failed) {
      Failed = true;
      Result.Error = formatString("line %d: %s", Line, Message.c_str());
    }
    return false;
  }

  bool resolveType(const TypeSpec &Spec, int Line, SemaType *Out);
  int declareLocal(const std::string &Name, SemaType Ty);
  const Local *lookupLocal(const std::string &Name) const;

  bool checkFunc(FuncDecl &F);
  bool checkStmt(Stmt &S);
  bool checkExpr(Expr &E);
  bool checkCall(Expr &E);
  bool checkCondition(Expr &E);
};

bool Analyzer::resolveType(const TypeSpec &Spec, int Line, SemaType *Out) {
  switch (Spec.B) {
  case TypeSpec::Base::Int:
    *Out = SemaType::makeInt();
    return true;
  case TypeSpec::Base::Float:
    *Out = SemaType::makeFloat();
    return true;
  case TypeSpec::Base::Void:
    *Out = SemaType::makeVoid();
    return true;
  case TypeSpec::Base::IntArray:
    *Out = SemaType::makeArray();
    return true;
  case TypeSpec::Base::Named: {
    auto It = ClassIds.find(Spec.ClassName);
    if (It == ClassIds.end())
      return fail(Line, formatString("unknown class '%s'",
                                     Spec.ClassName.c_str()));
    *Out = SemaType::makeClass(It->second);
    return true;
  }
  }
  return false;
}

int Analyzer::declareLocal(const std::string &Name, SemaType Ty) {
  int Slot = static_cast<int>(CurLocals->size());
  CurLocals->push_back(toBytecodeType(Ty));
  Scope.push_back({Name, Slot, Ty});
  return Slot;
}

const Analyzer::Local *Analyzer::lookupLocal(const std::string &Name) const {
  for (size_t I = Scope.size(); I-- > 0;)
    if (Scope[I].Name == Name)
      return &Scope[I];
  return nullptr;
}

bool Analyzer::checkCondition(Expr &E) {
  if (!checkExpr(E))
    return false;
  if (E.Ty.K != SemaType::Kind::Int)
    return fail(E.Line, "condition must be int");
  return true;
}

bool Analyzer::checkCall(Expr &E) {
  // Builtins first.
  if (E.Name == "print" || E.Name == "iowait" || E.Name == "len" ||
      E.Name == "int" || E.Name == "float") {
    if (E.Kids.size() != 1)
      return fail(E.Line, formatString("%s takes one argument",
                                       E.Name.c_str()));
    if (!checkExpr(*E.Kids[0]))
      return false;
    const SemaType &Arg = E.Kids[0]->Ty;
    if (E.Name == "print") {
      E.BI = Builtin::Print;
      E.Ty = SemaType::makeVoid();
      return true;
    }
    if (E.Name == "iowait") {
      if (E.Kids[0]->K != Expr::Kind::IntLit)
        return fail(E.Line, "iowait requires an integer literal");
      E.BI = Builtin::IOWait;
      E.Ty = SemaType::makeVoid();
      return true;
    }
    if (E.Name == "len") {
      if (Arg.K != SemaType::Kind::Array)
        return fail(E.Line, "len requires an array");
      E.BI = Builtin::Len;
      E.Ty = SemaType::makeInt();
      return true;
    }
    if (!Arg.isNumeric())
      return fail(E.Line, "cast requires a numeric operand");
    E.BI = E.Name == "int" ? Builtin::CastInt : Builtin::CastFloat;
    E.Ty = E.Name == "int" ? SemaType::makeInt() : SemaType::makeFloat();
    return true;
  }

  auto It = FuncIds.find(E.Name);
  if (It == FuncIds.end())
    return fail(E.Line, formatString("unknown function '%s'",
                                     E.Name.c_str()));
  E.FuncId = It->second;
  const bytecode::FunctionDef &Callee = Result.M.functionAt(E.FuncId);
  const FuncDecl &Decl = Prog.Funcs[static_cast<size_t>(E.FuncId)];
  if (E.Kids.size() != Callee.Params.size())
    return fail(E.Line, formatString("'%s' expects %zu arguments, got %zu",
                                     E.Name.c_str(), Callee.Params.size(),
                                     E.Kids.size()));
  for (size_t A = 0; A != E.Kids.size(); ++A) {
    if (!checkExpr(*E.Kids[A]))
      return false;
    SemaType Want;
    if (!resolveType(Decl.Params[A].first, E.Line, &Want))
      return false;
    if (E.Kids[A]->Ty != Want)
      return fail(E.Line,
                  formatString("argument %zu of '%s': expected %s, got %s",
                               A + 1, E.Name.c_str(),
                               semaTypeName(Want).c_str(),
                               semaTypeName(E.Kids[A]->Ty).c_str()));
  }
  SemaType Ret;
  if (!resolveType(Decl.Ret, E.Line, &Ret))
    return false;
  E.Ty = Ret;
  return true;
}

bool Analyzer::checkExpr(Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    E.Ty = SemaType::makeInt();
    return true;
  case Expr::Kind::FloatLit:
    E.Ty = SemaType::makeFloat();
    return true;
  case Expr::Kind::VarRef: {
    if (const Local *L = lookupLocal(E.Name)) {
      E.Slot = L->Slot;
      E.Ty = L->Ty;
      return true;
    }
    auto It = GlobalIds.find(E.Name);
    if (It != GlobalIds.end()) {
      E.GlobalId = It->second;
      const bytecode::FieldDef &G = Result.M.globalAt(It->second);
      // Recover the SemaType from the global declaration.
      for (const GlobalDecl &GD : Prog.Globals)
        if (GD.Name == E.Name)
          return resolveType(GD.Ty, E.Line, &E.Ty);
      (void)G;
      return fail(E.Line, "global lookup inconsistency");
    }
    return fail(E.Line, formatString("unknown variable '%s'",
                                     E.Name.c_str()));
  }
  case Expr::Kind::Binary: {
    Expr &L = *E.Kids[0];
    Expr &R = *E.Kids[1];
    if (E.Op == "&&" || E.Op == "||") {
      if (!checkCondition(L) || !checkCondition(R))
        return false;
      E.Ty = SemaType::makeInt();
      return true;
    }
    if (!checkExpr(L) || !checkExpr(R))
      return false;
    bool Comparison = E.Op == "==" || E.Op == "!=" || E.Op == "<" ||
                      E.Op == "<=" || E.Op == ">" || E.Op == ">=";
    if (Comparison) {
      if (L.Ty != R.Ty || !L.Ty.isNumeric())
        return fail(E.Line, "comparison operands must both be int or both "
                            "float");
      E.Ty = SemaType::makeInt();
      return true;
    }
    bool FloatOk = E.Op == "+" || E.Op == "-" || E.Op == "*" || E.Op == "/";
    if (L.Ty != R.Ty)
      return fail(E.Line, formatString("operands of '%s' have different "
                                       "types (%s vs %s)",
                                       E.Op.c_str(),
                                       semaTypeName(L.Ty).c_str(),
                                       semaTypeName(R.Ty).c_str()));
    if (L.Ty.K == SemaType::Kind::Float && !FloatOk)
      return fail(E.Line, formatString("operator '%s' is int-only",
                                       E.Op.c_str()));
    if (!L.Ty.isNumeric())
      return fail(E.Line, formatString("operator '%s' needs numeric "
                                       "operands",
                                       E.Op.c_str()));
    E.Ty = L.Ty;
    return true;
  }
  case Expr::Kind::Unary: {
    if (E.Op == "!") {
      if (!checkCondition(*E.Kids[0]))
        return false;
      E.Ty = SemaType::makeInt();
      return true;
    }
    if (!checkExpr(*E.Kids[0]))
      return false;
    if (!E.Kids[0]->Ty.isNumeric())
      return fail(E.Line, "unary '-' needs a numeric operand");
    E.Ty = E.Kids[0]->Ty;
    return true;
  }
  case Expr::Kind::Call:
    return checkCall(E);
  case Expr::Kind::Index: {
    if (!checkExpr(*E.Kids[0]) || !checkExpr(*E.Kids[1]))
      return false;
    if (E.Kids[0]->Ty.K != SemaType::Kind::Array)
      return fail(E.Line, "indexing a non-array");
    if (E.Kids[1]->Ty.K != SemaType::Kind::Int)
      return fail(E.Line, "array index must be int");
    E.Ty = SemaType::makeInt();
    return true;
  }
  case Expr::Kind::Field: {
    if (!checkExpr(*E.Kids[0]))
      return false;
    if (E.Kids[0]->Ty.K != SemaType::Kind::Class)
      return fail(E.Line, "field access on a non-object");
    const bytecode::ClassDef &C =
        Result.M.classAt(E.Kids[0]->Ty.ClassId);
    int Index = C.fieldIndexByName(E.Name);
    if (Index < 0)
      return fail(E.Line, formatString("class '%s' has no field '%s'",
                                       C.Name.c_str(), E.Name.c_str()));
    E.FieldId = C.Fields[static_cast<size_t>(Index)].FieldId;
    // Recover the field's SemaType from the declaration.
    const ClassDecl &CD = Prog.Classes[static_cast<size_t>(
        E.Kids[0]->Ty.ClassId)];
    return resolveType(CD.Fields[static_cast<size_t>(Index)].first, E.Line,
                       &E.Ty);
  }
  case Expr::Kind::NewObject: {
    auto It = ClassIds.find(E.Name);
    if (It == ClassIds.end())
      return fail(E.Line, formatString("unknown class '%s'",
                                       E.Name.c_str()));
    E.ClassId = It->second;
    E.Ty = SemaType::makeClass(It->second);
    return true;
  }
  case Expr::Kind::NewArray: {
    if (!checkExpr(*E.Kids[0]))
      return false;
    if (E.Kids[0]->Ty.K != SemaType::Kind::Int)
      return fail(E.Line, "array length must be int");
    E.Ty = SemaType::makeArray();
    return true;
  }
  }
  return false;
}

bool Analyzer::checkStmt(Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Block: {
    ScopeMarks.push_back(Scope.size());
    for (StmtPtr &Child : S.Stmts)
      if (!checkStmt(*Child))
        return false;
    Scope.resize(ScopeMarks.back());
    ScopeMarks.pop_back();
    return true;
  }
  case Stmt::Kind::VarDecl: {
    SemaType Ty;
    if (!resolveType(S.DeclTy, S.Line, &Ty))
      return false;
    if (Ty.K == SemaType::Kind::Void)
      return fail(S.Line, "variables cannot be void");
    if (S.E) {
      if (!checkExpr(*S.E))
        return false;
      if (S.E->Ty != Ty)
        return fail(S.Line,
                    formatString("cannot initialize %s with %s",
                                 semaTypeName(Ty).c_str(),
                                 semaTypeName(S.E->Ty).c_str()));
    }
    // Shadowing within the same scope is rejected; outer shadowing is fine.
    size_t ScopeBegin = ScopeMarks.empty() ? 0 : ScopeMarks.back();
    for (size_t I = ScopeBegin; I != Scope.size(); ++I)
      if (Scope[I].Name == S.Name)
        return fail(S.Line, formatString("redeclaration of '%s'",
                                         S.Name.c_str()));
    S.Slot = declareLocal(S.Name, Ty);
    return true;
  }
  case Stmt::Kind::Assign: {
    if (!checkExpr(*S.Lhs) || !checkExpr(*S.E))
      return false;
    if (S.Lhs->Ty != S.E->Ty)
      return fail(S.Line, formatString("cannot assign %s to %s",
                                       semaTypeName(S.E->Ty).c_str(),
                                       semaTypeName(S.Lhs->Ty).c_str()));
    return true;
  }
  case Stmt::Kind::ExprStmt:
    return checkExpr(*S.E);
  case Stmt::Kind::If: {
    if (!checkCondition(*S.E) || !checkStmt(*S.Body))
      return false;
    return !S.Else || checkStmt(*S.Else);
  }
  case Stmt::Kind::While: {
    if (!checkCondition(*S.E))
      return false;
    ++LoopDepth;
    bool Ok = checkStmt(*S.Body);
    --LoopDepth;
    return Ok;
  }
  case Stmt::Kind::For: {
    ScopeMarks.push_back(Scope.size());
    if (S.Init && !checkStmt(*S.Init))
      return false;
    if (S.E && !checkCondition(*S.E))
      return false;
    if (S.Step && !checkStmt(*S.Step))
      return false;
    ++LoopDepth;
    bool Ok = checkStmt(*S.Body);
    --LoopDepth;
    Scope.resize(ScopeMarks.back());
    ScopeMarks.pop_back();
    return Ok;
  }
  case Stmt::Kind::Return: {
    if (!S.E) {
      if (CurRet.K != SemaType::Kind::Void)
        return fail(S.Line, "missing return value");
      return true;
    }
    if (CurRet.K == SemaType::Kind::Void)
      return fail(S.Line, "void function returns a value");
    if (!checkExpr(*S.E))
      return false;
    if (S.E->Ty != CurRet)
      return fail(S.Line, formatString("return type mismatch: expected %s, "
                                       "got %s",
                                       semaTypeName(CurRet).c_str(),
                                       semaTypeName(S.E->Ty).c_str()));
    return true;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      return fail(S.Line, "break/continue outside a loop");
    return true;
  case Stmt::Kind::Spawn: {
    auto It = FuncIds.find(S.Name);
    if (It == FuncIds.end())
      return fail(S.Line, formatString("unknown function '%s'",
                                       S.Name.c_str()));
    S.FuncId = It->second;
    const FuncDecl &Decl = Prog.Funcs[static_cast<size_t>(S.FuncId)];
    if (S.Args.size() != Decl.Params.size())
      return fail(S.Line, "spawn argument count mismatch");
    for (size_t A = 0; A != S.Args.size(); ++A) {
      if (!checkExpr(*S.Args[A]))
        return false;
      SemaType Want;
      if (!resolveType(Decl.Params[A].first, S.Line, &Want))
        return false;
      if (S.Args[A]->Ty != Want)
        return fail(S.Line, "spawn argument type mismatch");
    }
    return true;
  }
  }
  return false;
}

bool Analyzer::checkFunc(FuncDecl &F) {
  CurFunc = &F;
  if (!resolveType(F.Ret, F.Line, &CurRet))
    return false;
  Scope.clear();
  ScopeMarks.clear();
  LoopDepth = 0;

  size_t Index = static_cast<size_t>(&F - Prog.Funcs.data());
  CurLocals = &Result.LocalLayouts[Index];
  CurLocals->clear();
  for (auto &[Ty, Name] : F.Params) {
    SemaType PTy;
    if (!resolveType(Ty, F.Line, &PTy))
      return false;
    if (PTy.K == SemaType::Kind::Void)
      return fail(F.Line, "void parameter");
    declareLocal(Name, PTy);
  }
  // The body's top-level statements share the parameter scope, so a
  // declaration there cannot shadow a parameter.
  assert(F.Body->K == Stmt::Kind::Block && "function body is not a block");
  for (StmtPtr &Child : F.Body->Stmts)
    if (!checkStmt(*Child))
      return false;
  return true;
}

SemaResult Analyzer::run() {
  Result.Ok = true;

  // Pass 1: class names.
  for (ClassDecl &C : Prog.Classes) {
    if (ClassIds.count(C.Name)) {
      fail(C.Line, formatString("duplicate class '%s'", C.Name.c_str()));
      break;
    }
    ClassIds[C.Name] = Result.M.addClass(C.Name);
  }
  // Pass 2: class fields (may reference any class).
  if (!Failed) {
    for (ClassDecl &C : Prog.Classes) {
      int ClassId = ClassIds[C.Name];
      for (auto &[Ty, Name] : C.Fields) {
        SemaType FTy;
        if (!resolveType(Ty, C.Line, &FTy))
          break;
        if (FTy.K == SemaType::Kind::Void) {
          fail(C.Line, "void field");
          break;
        }
        Result.M.addField(ClassId, Name, toBytecodeType(FTy));
      }
      if (Failed)
        break;
    }
  }
  // Pass 3: globals.
  if (!Failed) {
    for (GlobalDecl &G : Prog.Globals) {
      SemaType GTy;
      if (!resolveType(G.Ty, G.Line, &GTy))
        break;
      if (GTy.K == SemaType::Kind::Void) {
        fail(G.Line, "void global");
        break;
      }
      if (GlobalIds.count(G.Name)) {
        fail(G.Line, formatString("duplicate global '%s'", G.Name.c_str()));
        break;
      }
      GlobalIds[G.Name] = Result.M.addGlobal(G.Name, toBytecodeType(GTy));
    }
  }
  // Pass 4: function signatures.
  if (!Failed) {
    for (FuncDecl &F : Prog.Funcs) {
      if (FuncIds.count(F.Name)) {
        fail(F.Line, formatString("duplicate function '%s'",
                                  F.Name.c_str()));
        break;
      }
      std::vector<bytecode::Type> Params;
      SemaType Tmp;
      for (auto &[Ty, Name] : F.Params) {
        (void)Name;
        if (!resolveType(Ty, F.Line, &Tmp))
          break;
        Params.push_back(toBytecodeType(Tmp));
      }
      if (Failed)
        break;
      if (!resolveType(F.Ret, F.Line, &Tmp))
        break;
      FuncIds[F.Name] =
          Result.M.addFunction(F.Name, std::move(Params),
                               toBytecodeType(Tmp));
    }
  }
  // Pass 5: bodies.
  if (!Failed) {
    Result.LocalLayouts.resize(Prog.Funcs.size());
    for (FuncDecl &F : Prog.Funcs)
      if (!checkFunc(F))
        break;
  }

  Result.Ok = !Failed;
  return std::move(Result);
}

} // namespace

SemaResult analyze(Program &Prog) {
  Analyzer A(Prog);
  return A.run();
}

} // namespace frontend
} // namespace ars
