//===- frontend/Parser.cpp ------------------------------------*- C++ -*-===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Support.h"

#include <cassert>

using ars::support::formatString;

namespace ars {
namespace frontend {

namespace {

class Parser {
public:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  ParseResult run();

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  ParseResult Result;
  bool Failed = false;

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t P = Pos + Ahead;
    return P < Toks.size() ? Toks[P] : Toks.back();
  }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }

  bool fail(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      Result.Error =
          formatString("line %d: %s", cur().Line, Message.c_str());
    }
    return false;
  }

  bool expect(TokKind Kind) {
    if (cur().Kind != Kind)
      return fail(formatString("expected %s, found %s", tokKindName(Kind),
                               tokKindName(cur().Kind)));
    advance();
    return true;
  }

  bool accept(TokKind Kind) {
    if (cur().Kind != Kind)
      return false;
    advance();
    return true;
  }

  /// True if the current token can begin a type.
  bool atTypeStart() const {
    TokKind K = cur().Kind;
    return K == TokKind::KwInt || K == TokKind::KwFloat ||
           K == TokKind::KwVoid || K == TokKind::Ident;
  }

  bool parseType(TypeSpec *Out);
  bool parseClass();
  bool parseGlobal();
  bool parseFunc();
  StmtPtr parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseSimpleStmt(); ///< varDecl / assign / exprStmt, no ';'
  ExprPtr parseExpr();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  bool parseArgs(std::vector<ExprPtr> *Args);

  ExprPtr makeExpr(Expr::Kind K) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = cur().Line;
    return E;
  }
  StmtPtr makeStmt(Stmt::Kind K) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = cur().Line;
    return S;
  }
};

bool Parser::parseType(TypeSpec *Out) {
  switch (cur().Kind) {
  case TokKind::KwInt:
    advance();
    if (cur().Kind == TokKind::LBracket && peek().Kind == TokKind::RBracket) {
      advance();
      advance();
      *Out = TypeSpec::make(TypeSpec::Base::IntArray);
      return true;
    }
    *Out = TypeSpec::make(TypeSpec::Base::Int);
    return true;
  case TokKind::KwFloat:
    advance();
    *Out = TypeSpec::make(TypeSpec::Base::Float);
    return true;
  case TokKind::KwVoid:
    advance();
    *Out = TypeSpec::make(TypeSpec::Base::Void);
    return true;
  case TokKind::Ident: {
    TypeSpec T = TypeSpec::make(TypeSpec::Base::Named);
    T.ClassName = cur().Text;
    advance();
    *Out = T;
    return true;
  }
  default:
    return fail("expected a type");
  }
}

bool Parser::parseClass() {
  advance(); // 'class'
  if (cur().Kind != TokKind::Ident)
    return fail("expected class name");
  ClassDecl C;
  C.Name = cur().Text;
  C.Line = cur().Line;
  advance();
  if (!expect(TokKind::LBrace))
    return false;
  while (!accept(TokKind::RBrace)) {
    if (cur().Kind == TokKind::End)
      return fail("unterminated class body");
    TypeSpec Ty;
    if (!parseType(&Ty))
      return false;
    if (cur().Kind != TokKind::Ident)
      return fail("expected field name");
    C.Fields.emplace_back(Ty, cur().Text);
    advance();
    if (!expect(TokKind::Semi))
      return false;
  }
  Result.Prog.Classes.push_back(std::move(C));
  return true;
}

bool Parser::parseGlobal() {
  advance(); // 'global'
  GlobalDecl G;
  G.Line = cur().Line;
  if (!parseType(&G.Ty))
    return false;
  if (cur().Kind != TokKind::Ident)
    return fail("expected global name");
  G.Name = cur().Text;
  advance();
  if (!expect(TokKind::Semi))
    return false;
  Result.Prog.Globals.push_back(std::move(G));
  return true;
}

bool Parser::parseFunc() {
  FuncDecl F;
  F.Line = cur().Line;
  if (!parseType(&F.Ret))
    return false;
  if (cur().Kind != TokKind::Ident)
    return fail("expected function name");
  F.Name = cur().Text;
  advance();
  if (!expect(TokKind::LParen))
    return false;
  if (!accept(TokKind::RParen)) {
    while (true) {
      TypeSpec Ty;
      if (!parseType(&Ty))
        return false;
      if (cur().Kind != TokKind::Ident)
        return fail("expected parameter name");
      F.Params.emplace_back(Ty, cur().Text);
      advance();
      if (accept(TokKind::RParen))
        break;
      if (!expect(TokKind::Comma))
        return false;
    }
  }
  F.Body = parseBlock();
  if (!F.Body)
    return false;
  Result.Prog.Funcs.push_back(std::move(F));
  return true;
}

StmtPtr Parser::parseBlock() {
  if (cur().Kind != TokKind::LBrace) {
    fail("expected '{'");
    return nullptr;
  }
  StmtPtr Block = makeStmt(Stmt::Kind::Block);
  advance();
  while (!accept(TokKind::RBrace)) {
    if (cur().Kind == TokKind::End) {
      fail("unterminated block");
      return nullptr;
    }
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Block->Stmts.push_back(std::move(S));
  }
  return Block;
}

StmtPtr Parser::parseStmt() {
  switch (cur().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf: {
    StmtPtr S = makeStmt(Stmt::Kind::If);
    advance();
    if (!expect(TokKind::LParen))
      return nullptr;
    S->E = parseExpr();
    if (!S->E || !expect(TokKind::RParen))
      return nullptr;
    S->Body = parseStmt();
    if (!S->Body)
      return nullptr;
    if (accept(TokKind::KwElse)) {
      S->Else = parseStmt();
      if (!S->Else)
        return nullptr;
    }
    return S;
  }
  case TokKind::KwWhile: {
    StmtPtr S = makeStmt(Stmt::Kind::While);
    advance();
    if (!expect(TokKind::LParen))
      return nullptr;
    S->E = parseExpr();
    if (!S->E || !expect(TokKind::RParen))
      return nullptr;
    S->Body = parseStmt();
    return S->Body ? std::move(S) : nullptr;
  }
  case TokKind::KwFor: {
    StmtPtr S = makeStmt(Stmt::Kind::For);
    advance();
    if (!expect(TokKind::LParen))
      return nullptr;
    if (!accept(TokKind::Semi)) {
      S->Init = parseSimpleStmt();
      if (!S->Init || !expect(TokKind::Semi))
        return nullptr;
    }
    if (!accept(TokKind::Semi)) {
      S->E = parseExpr();
      if (!S->E || !expect(TokKind::Semi))
        return nullptr;
    }
    if (!accept(TokKind::RParen)) {
      S->Step = parseSimpleStmt();
      if (!S->Step || !expect(TokKind::RParen))
        return nullptr;
    }
    S->Body = parseStmt();
    return S->Body ? std::move(S) : nullptr;
  }
  case TokKind::KwReturn: {
    StmtPtr S = makeStmt(Stmt::Kind::Return);
    advance();
    if (!accept(TokKind::Semi)) {
      S->E = parseExpr();
      if (!S->E || !expect(TokKind::Semi))
        return nullptr;
    }
    return S;
  }
  case TokKind::KwBreak: {
    StmtPtr S = makeStmt(Stmt::Kind::Break);
    advance();
    return expect(TokKind::Semi) ? std::move(S) : nullptr;
  }
  case TokKind::KwContinue: {
    StmtPtr S = makeStmt(Stmt::Kind::Continue);
    advance();
    return expect(TokKind::Semi) ? std::move(S) : nullptr;
  }
  case TokKind::KwSpawn: {
    StmtPtr S = makeStmt(Stmt::Kind::Spawn);
    advance();
    if (cur().Kind != TokKind::Ident) {
      fail("expected function name after 'spawn'");
      return nullptr;
    }
    S->Name = cur().Text;
    advance();
    if (!expect(TokKind::LParen) || !parseArgs(&S->Args) ||
        !expect(TokKind::Semi))
      return nullptr;
    return S;
  }
  default: {
    StmtPtr S = parseSimpleStmt();
    if (!S || !expect(TokKind::Semi))
      return nullptr;
    return S;
  }
  }
}

StmtPtr Parser::parseSimpleStmt() {
  // Variable declaration?  Distinguish "int x", "int[] x", "Point p" from
  // expressions such as "int(x)" or "p.f = 1".
  bool IsDecl = false;
  if (cur().Kind == TokKind::KwInt || cur().Kind == TokKind::KwFloat) {
    IsDecl = peek().Kind == TokKind::Ident ||
             (peek().Kind == TokKind::LBracket &&
              peek(2).Kind == TokKind::RBracket);
  } else if (cur().Kind == TokKind::Ident) {
    IsDecl = peek().Kind == TokKind::Ident;
  }

  if (IsDecl) {
    StmtPtr S = makeStmt(Stmt::Kind::VarDecl);
    if (!parseType(&S->DeclTy))
      return nullptr;
    if (cur().Kind != TokKind::Ident) {
      fail("expected variable name");
      return nullptr;
    }
    S->Name = cur().Text;
    advance();
    if (accept(TokKind::Assign)) {
      S->E = parseExpr();
      if (!S->E)
        return nullptr;
    }
    return S;
  }

  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (accept(TokKind::Assign)) {
    if (E->K != Expr::Kind::VarRef && E->K != Expr::Kind::Index &&
        E->K != Expr::Kind::Field) {
      fail("left side of '=' is not assignable");
      return nullptr;
    }
    StmtPtr S = makeStmt(Stmt::Kind::Assign);
    S->Lhs = std::move(E);
    S->E = parseExpr();
    return S->E ? std::move(S) : nullptr;
  }
  StmtPtr S = makeStmt(Stmt::Kind::ExprStmt);
  S->E = std::move(E);
  return S;
}

bool Parser::parseArgs(std::vector<ExprPtr> *Args) {
  if (accept(TokKind::RParen))
    return true;
  while (true) {
    ExprPtr A = parseExpr();
    if (!A)
      return false;
    Args->push_back(std::move(A));
    if (accept(TokKind::RParen))
      return true;
    if (!expect(TokKind::Comma))
      return false;
  }
}

namespace {

/// Binary operator precedence; higher binds tighter.  -1 = not binary.
int precedenceOf(TokKind K) {
  switch (K) {
  case TokKind::OrOr:    return 1;
  case TokKind::AndAnd:  return 2;
  case TokKind::Pipe:    return 3;
  case TokKind::Caret:   return 4;
  case TokKind::Amp:     return 5;
  case TokKind::EqEq:
  case TokKind::NotEq:   return 6;
  case TokKind::Lt:
  case TokKind::Le:
  case TokKind::Gt:
  case TokKind::Ge:      return 7;
  case TokKind::Shl:
  case TokKind::Shr:     return 8;
  case TokKind::Plus:
  case TokKind::Minus:   return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent: return 10;
  default:               return -1;
  }
}

const char *binaryOpSpelling(TokKind K) {
  switch (K) {
  case TokKind::OrOr:    return "||";
  case TokKind::AndAnd:  return "&&";
  case TokKind::Pipe:    return "|";
  case TokKind::Caret:   return "^";
  case TokKind::Amp:     return "&";
  case TokKind::EqEq:    return "==";
  case TokKind::NotEq:   return "!=";
  case TokKind::Lt:      return "<";
  case TokKind::Le:      return "<=";
  case TokKind::Gt:      return ">";
  case TokKind::Ge:      return ">=";
  case TokKind::Shl:     return "<<";
  case TokKind::Shr:     return ">>";
  case TokKind::Plus:    return "+";
  case TokKind::Minus:   return "-";
  case TokKind::Star:    return "*";
  case TokKind::Slash:   return "/";
  case TokKind::Percent: return "%";
  default:               return "?";
  }
}

} // namespace

ExprPtr Parser::parseExpr() { return parseBinary(1); }

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (true) {
    int Prec = precedenceOf(cur().Kind);
    if (Prec < MinPrec)
      return Lhs;
    TokKind OpKind = cur().Kind;
    ExprPtr Node = makeExpr(Expr::Kind::Binary);
    Node->Op = binaryOpSpelling(OpKind);
    advance();
    ExprPtr Rhs = parseBinary(Prec + 1); // all operators left-associative
    if (!Rhs)
      return nullptr;
    Node->Kids.push_back(std::move(Lhs));
    Node->Kids.push_back(std::move(Rhs));
    Lhs = std::move(Node);
  }
}

ExprPtr Parser::parseUnary() {
  if (cur().Kind == TokKind::Minus || cur().Kind == TokKind::Not) {
    ExprPtr Node = makeExpr(Expr::Kind::Unary);
    // Assign a char, not a ternary of literals: GCC 12's -Wrestrict
    // false-positives on the strlen+memcpy path at -O3 (PR105329).
    Node->Op = cur().Kind == TokKind::Minus ? '-' : '!';
    advance();
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    Node->Kids.push_back(std::move(Operand));
    return Node;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    if (accept(TokKind::LBracket)) {
      ExprPtr Node = makeExpr(Expr::Kind::Index);
      ExprPtr Idx = parseExpr();
      if (!Idx || !expect(TokKind::RBracket))
        return nullptr;
      Node->Kids.push_back(std::move(E));
      Node->Kids.push_back(std::move(Idx));
      E = std::move(Node);
      continue;
    }
    if (accept(TokKind::Dot)) {
      if (cur().Kind != TokKind::Ident) {
        fail("expected field name after '.'");
        return nullptr;
      }
      ExprPtr Node = makeExpr(Expr::Kind::Field);
      Node->Name = cur().Text;
      advance();
      Node->Kids.push_back(std::move(E));
      E = std::move(Node);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  switch (cur().Kind) {
  case TokKind::IntLit: {
    ExprPtr E = makeExpr(Expr::Kind::IntLit);
    E->IntVal = cur().IntVal;
    advance();
    return E;
  }
  case TokKind::FloatLit: {
    ExprPtr E = makeExpr(Expr::Kind::FloatLit);
    E->FloatVal = cur().FloatVal;
    advance();
    return E;
  }
  case TokKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    if (!E || !expect(TokKind::RParen))
      return nullptr;
    return E;
  }
  case TokKind::KwInt:
  case TokKind::KwFloat: {
    // Cast: int(e) / float(e).
    ExprPtr E = makeExpr(Expr::Kind::Call);
    E->Name = cur().Kind == TokKind::KwInt ? "int" : "float";
    advance();
    if (!expect(TokKind::LParen) || !parseArgs(&E->Kids))
      return nullptr;
    return E;
  }
  case TokKind::KwNew: {
    advance();
    if (cur().Kind == TokKind::KwInt) {
      advance();
      if (!expect(TokKind::LBracket))
        return nullptr;
      ExprPtr E = makeExpr(Expr::Kind::NewArray);
      ExprPtr Len = parseExpr();
      if (!Len || !expect(TokKind::RBracket))
        return nullptr;
      E->Kids.push_back(std::move(Len));
      return E;
    }
    if (cur().Kind != TokKind::Ident) {
      fail("expected class name or int[] after 'new'");
      return nullptr;
    }
    ExprPtr E = makeExpr(Expr::Kind::NewObject);
    E->Name = cur().Text;
    advance();
    // Allow optional empty parens: new Point().
    if (accept(TokKind::LParen) && !expect(TokKind::RParen))
      return nullptr;
    return E;
  }
  case TokKind::Ident: {
    if (peek().Kind == TokKind::LParen) {
      ExprPtr E = makeExpr(Expr::Kind::Call);
      E->Name = cur().Text;
      advance();
      advance(); // '('
      if (!parseArgs(&E->Kids))
        return nullptr;
      return E;
    }
    ExprPtr E = makeExpr(Expr::Kind::VarRef);
    E->Name = cur().Text;
    advance();
    return E;
  }
  case TokKind::Error:
    fail(cur().Text);
    return nullptr;
  default:
    fail(formatString("unexpected %s in expression",
                      tokKindName(cur().Kind)));
    return nullptr;
  }
}

ParseResult Parser::run() {
  while (cur().Kind != TokKind::End) {
    bool Ok = false;
    switch (cur().Kind) {
    case TokKind::KwClass:
      Ok = parseClass();
      break;
    case TokKind::KwGlobal:
      Ok = parseGlobal();
      break;
    case TokKind::Error:
      fail(cur().Text);
      break;
    default:
      Ok = parseFunc();
      break;
    }
    if (!Ok || Failed) {
      Result.Ok = false;
      return std::move(Result);
    }
  }
  Result.Ok = true;
  return std::move(Result);
}

} // namespace

ParseResult parseProgram(const std::string &Source) {
  Parser P(tokenize(Source));
  return P.run();
}

} // namespace frontend
} // namespace ars
