//===- frontend/Lexer.h - MiniJ tokenizer ---------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for MiniJ, the small Java-like language the workloads are
/// written in.  MiniJ plays the role Java plays in the paper: a frontend
/// producing verifiable bytecode with classes, fields, calls and loops —
/// exactly the events the two instrumentations profile.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FRONTEND_LEXER_H
#define ARS_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ars {
namespace frontend {

/// Token kinds.  Punctuation tokens are named after their spelling.
enum class TokKind : uint8_t {
  End,
  Error,
  Ident,
  IntLit,
  FloatLit,
  // Keywords.
  KwClass,
  KwGlobal,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSpawn,
  KwNew,
  KwInt,
  KwFloat,
  KwVoid,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Assign,  // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Not,     // !
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Amp,     // &
  Pipe,    // |
  Caret,   // ^
  Shl,     // <<
  Shr      // >>
};

/// One token.
struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;    ///< identifier spelling / error message
  int64_t IntVal = 0;
  double FloatVal = 0.0;
  int Line = 0;
};

/// Tokenizes \p Source.  The result always ends with an End token; lexical
/// errors produce a single Error token whose Text describes the problem.
std::vector<Token> tokenize(const std::string &Source);

/// Spelling of \p Kind for diagnostics.
const char *tokKindName(TokKind Kind);

} // namespace frontend
} // namespace ars

#endif // ARS_FRONTEND_LEXER_H
