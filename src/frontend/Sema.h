//===- frontend/Sema.h - MiniJ semantic analysis --------------*- C++ -*-===//
///
/// \file
/// Type checker and symbol resolver.  Builds the bytecode Module skeleton
/// (classes, globals, function signatures), annotates the AST in place with
/// resolved slots/ids/types, and records each function's local-slot layout
/// for the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FRONTEND_SEMA_H
#define ARS_FRONTEND_SEMA_H

#include "bytecode/Module.h"
#include "frontend/Ast.h"

#include <string>
#include <vector>

namespace ars {
namespace frontend {

/// Sema output.
struct SemaResult {
  bool Ok = false;
  std::string Error;
  bytecode::Module M; ///< classes, globals and signatures (bodies empty)
  /// Per-function local slot types, including parameters, in slot order.
  std::vector<std::vector<bytecode::Type>> LocalLayouts;
};

/// Checks \p Prog, annotating its nodes.
SemaResult analyze(Program &Prog);

/// Lowers a resolved SemaType to its bytecode value category.
bytecode::Type toBytecodeType(const SemaType &T);

} // namespace frontend
} // namespace ars

#endif // ARS_FRONTEND_SEMA_H
