//===- frontend/Parser.h - MiniJ recursive-descent parser -----*- C++ -*-===//
///
/// \file
/// Recursive-descent parser producing the MiniJ AST.  Grammar sketch:
///
///   program   := (classDecl | globalDecl | funcDecl)*
///   classDecl := 'class' ID '{' (type ID ';')* '}'
///   globalDecl:= 'global' type ID ';'
///   funcDecl  := type ID '(' (type ID),* ')' block
///   type      := 'int' ('[' ']')? | 'float' | 'void' | ID
///   stmt      := block | varDecl ';' | 'if' ... | 'while' ... | 'for' ...
///              | 'return' expr? ';' | 'break' ';' | 'continue' ';'
///              | 'spawn' ID '(' args ')' ';' | assignOrExpr ';'
///   expr      := '||' < '&&' < '|' < '^' < '&' < ==/!= < relational
///              < shifts < +/- < * / % < unary < postfix < primary
///
/// Casts are spelled like calls: int(x), float(x).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FRONTEND_PARSER_H
#define ARS_FRONTEND_PARSER_H

#include "frontend/Ast.h"

#include <string>

namespace ars {
namespace frontend {

/// Parse result: a program, or an error description.
struct ParseResult {
  bool Ok = false;
  std::string Error;
  Program Prog;
};

/// Parses \p Source.
ParseResult parseProgram(const std::string &Source);

} // namespace frontend
} // namespace ars

#endif // ARS_FRONTEND_PARSER_H
