//===- frontend/Lexer.cpp -------------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include "support/Support.h"

#include <cctype>
#include <map>

namespace ars {
namespace frontend {

namespace {

const std::map<std::string, TokKind> &keywordMap() {
  static const std::map<std::string, TokKind> Keywords = {
      {"class", TokKind::KwClass},     {"global", TokKind::KwGlobal},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"spawn", TokKind::KwSpawn},
      {"new", TokKind::KwNew},         {"int", TokKind::KwInt},
      {"float", TokKind::KwFloat},     {"void", TokKind::KwVoid}};
  return Keywords;
}

} // namespace

std::vector<Token> tokenize(const std::string &Source) {
  std::vector<Token> Toks;
  size_t Pos = 0;
  int Line = 1;
  size_t Len = Source.size();

  auto error = [&](const std::string &Message) {
    Token T;
    T.Kind = TokKind::Error;
    T.Text = support::formatString("line %d: %s", Line, Message.c_str());
    T.Line = Line;
    Toks.push_back(T);
  };
  auto push = [&](TokKind Kind) {
    Token T;
    T.Kind = Kind;
    T.Line = Line;
    Toks.push_back(T);
  };

  while (Pos < Len) {
    char C = Source[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    // Comments: // to end of line.
    if (C == '/' && Pos + 1 < Len && Source[Pos + 1] == '/') {
      while (Pos < Len && Source[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Begin = Pos;
      while (Pos < Len && (std::isalnum(static_cast<unsigned char>(
                               Source[Pos])) ||
                           Source[Pos] == '_'))
        ++Pos;
      std::string Word = Source.substr(Begin, Pos - Begin);
      auto It = keywordMap().find(Word);
      Token T;
      T.Line = Line;
      if (It != keywordMap().end()) {
        T.Kind = It->second;
      } else {
        T.Kind = TokKind::Ident;
        T.Text = std::move(Word);
      }
      Toks.push_back(std::move(T));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Begin = Pos;
      bool IsFloat = false;
      while (Pos < Len &&
             std::isdigit(static_cast<unsigned char>(Source[Pos])))
        ++Pos;
      if (Pos + 1 < Len && Source[Pos] == '.' &&
          std::isdigit(static_cast<unsigned char>(Source[Pos + 1]))) {
        IsFloat = true;
        ++Pos;
        while (Pos < Len &&
               std::isdigit(static_cast<unsigned char>(Source[Pos])))
          ++Pos;
      }
      std::string Num = Source.substr(Begin, Pos - Begin);
      Token T;
      T.Line = Line;
      if (IsFloat) {
        T.Kind = TokKind::FloatLit;
        T.FloatVal = std::stod(Num);
      } else {
        T.Kind = TokKind::IntLit;
        T.IntVal = std::stoll(Num);
      }
      Toks.push_back(std::move(T));
      continue;
    }

    auto twoChar = [&](char Next) {
      return Pos + 1 < Len && Source[Pos + 1] == Next;
    };
    switch (C) {
    case '(': push(TokKind::LParen); ++Pos; break;
    case ')': push(TokKind::RParen); ++Pos; break;
    case '{': push(TokKind::LBrace); ++Pos; break;
    case '}': push(TokKind::RBrace); ++Pos; break;
    case '[': push(TokKind::LBracket); ++Pos; break;
    case ']': push(TokKind::RBracket); ++Pos; break;
    case ';': push(TokKind::Semi); ++Pos; break;
    case ',': push(TokKind::Comma); ++Pos; break;
    case '.': push(TokKind::Dot); ++Pos; break;
    case '+': push(TokKind::Plus); ++Pos; break;
    case '-': push(TokKind::Minus); ++Pos; break;
    case '*': push(TokKind::Star); ++Pos; break;
    case '/': push(TokKind::Slash); ++Pos; break;
    case '%': push(TokKind::Percent); ++Pos; break;
    case '^': push(TokKind::Caret); ++Pos; break;
    case '=':
      if (twoChar('=')) {
        push(TokKind::EqEq);
        Pos += 2;
      } else {
        push(TokKind::Assign);
        ++Pos;
      }
      break;
    case '!':
      if (twoChar('=')) {
        push(TokKind::NotEq);
        Pos += 2;
      } else {
        push(TokKind::Not);
        ++Pos;
      }
      break;
    case '<':
      if (twoChar('=')) {
        push(TokKind::Le);
        Pos += 2;
      } else if (twoChar('<')) {
        push(TokKind::Shl);
        Pos += 2;
      } else {
        push(TokKind::Lt);
        ++Pos;
      }
      break;
    case '>':
      if (twoChar('=')) {
        push(TokKind::Ge);
        Pos += 2;
      } else if (twoChar('>')) {
        push(TokKind::Shr);
        Pos += 2;
      } else {
        push(TokKind::Gt);
        ++Pos;
      }
      break;
    case '&':
      if (twoChar('&')) {
        push(TokKind::AndAnd);
        Pos += 2;
      } else {
        push(TokKind::Amp);
        ++Pos;
      }
      break;
    case '|':
      if (twoChar('|')) {
        push(TokKind::OrOr);
        Pos += 2;
      } else {
        push(TokKind::Pipe);
        ++Pos;
      }
      break;
    default:
      error(support::formatString("unexpected character '%c'", C));
      return Toks;
    }
  }
  push(TokKind::End);
  return Toks;
}

const char *tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::End:        return "end of input";
  case TokKind::Error:      return "error";
  case TokKind::Ident:      return "identifier";
  case TokKind::IntLit:     return "integer literal";
  case TokKind::FloatLit:   return "float literal";
  case TokKind::KwClass:    return "'class'";
  case TokKind::KwGlobal:   return "'global'";
  case TokKind::KwIf:       return "'if'";
  case TokKind::KwElse:     return "'else'";
  case TokKind::KwWhile:    return "'while'";
  case TokKind::KwFor:      return "'for'";
  case TokKind::KwReturn:   return "'return'";
  case TokKind::KwBreak:    return "'break'";
  case TokKind::KwContinue: return "'continue'";
  case TokKind::KwSpawn:    return "'spawn'";
  case TokKind::KwNew:      return "'new'";
  case TokKind::KwInt:      return "'int'";
  case TokKind::KwFloat:    return "'float'";
  case TokKind::KwVoid:     return "'void'";
  case TokKind::LParen:     return "'('";
  case TokKind::RParen:     return "')'";
  case TokKind::LBrace:     return "'{'";
  case TokKind::RBrace:     return "'}'";
  case TokKind::LBracket:   return "'['";
  case TokKind::RBracket:   return "']'";
  case TokKind::Semi:       return "';'";
  case TokKind::Comma:      return "','";
  case TokKind::Dot:        return "'.'";
  case TokKind::Assign:     return "'='";
  case TokKind::Plus:       return "'+'";
  case TokKind::Minus:      return "'-'";
  case TokKind::Star:       return "'*'";
  case TokKind::Slash:      return "'/'";
  case TokKind::Percent:    return "'%'";
  case TokKind::Not:        return "'!'";
  case TokKind::Lt:         return "'<'";
  case TokKind::Le:         return "'<='";
  case TokKind::Gt:         return "'>'";
  case TokKind::Ge:         return "'>='";
  case TokKind::EqEq:       return "'=='";
  case TokKind::NotEq:      return "'!='";
  case TokKind::AndAnd:     return "'&&'";
  case TokKind::OrOr:       return "'||'";
  case TokKind::Amp:        return "'&'";
  case TokKind::Pipe:       return "'|'";
  case TokKind::Caret:      return "'^'";
  case TokKind::Shl:        return "'<<'";
  case TokKind::Shr:        return "'>>'";
  }
  return "<bad token>";
}

} // namespace frontend
} // namespace ars
