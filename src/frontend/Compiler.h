//===- frontend/Compiler.h - Source-to-bytecode driver --------*- C++ -*-===//
///
/// \file
/// One-call MiniJ compilation: parse, analyze, generate, verify.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FRONTEND_COMPILER_H
#define ARS_FRONTEND_COMPILER_H

#include "bytecode/Module.h"

#include <string>

namespace ars {
namespace frontend {

/// Compilation outcome.
struct CompileResult {
  bool Ok = false;
  std::string Error;
  bytecode::Module M;
};

/// Compiles MiniJ \p Source to a verified bytecode module.
CompileResult compile(const std::string &Source);

} // namespace frontend
} // namespace ars

#endif // ARS_FRONTEND_COMPILER_H
