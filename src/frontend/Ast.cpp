//===- frontend/Ast.cpp ---------------------------------------*- C++ -*-===//

#include "frontend/Ast.h"

#include "support/Support.h"

namespace ars {
namespace frontend {

std::string semaTypeName(const SemaType &T) {
  switch (T.K) {
  case SemaType::Kind::Int:     return "int";
  case SemaType::Kind::Float:   return "float";
  case SemaType::Kind::Void:    return "void";
  case SemaType::Kind::Array:   return "int[]";
  case SemaType::Kind::Class:
    return support::formatString("class#%d", T.ClassId);
  case SemaType::Kind::Invalid: return "<invalid>";
  }
  return "<bad type>";
}

} // namespace frontend
} // namespace ars
