//===- frontend/Compiler.cpp ----------------------------------*- C++ -*-===//

#include "frontend/Compiler.h"

#include "bytecode/Verifier.h"
#include "frontend/CodeGen.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

namespace ars {
namespace frontend {

CompileResult compile(const std::string &Source) {
  CompileResult Result;

  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.Ok) {
    Result.Error = "parse error: " + Parsed.Error;
    return Result;
  }

  SemaResult Sema = analyze(Parsed.Prog);
  if (!Sema.Ok) {
    Result.Error = "sema error: " + Sema.Error;
    return Result;
  }

  CodeGenResult Gen = generate(Parsed.Prog, Sema.LocalLayouts, Sema.M);
  if (!Gen.Ok) {
    Result.Error = "codegen error: " + Gen.Error;
    return Result;
  }

  bytecode::VerifyResult Verified = bytecode::verifyModule(Sema.M);
  if (!Verified.Ok) {
    Result.Error = "verifier rejected generated code: " + Verified.Error;
    return Result;
  }

  Result.M = std::move(Sema.M);
  Result.Ok = true;
  return Result;
}

} // namespace frontend
} // namespace ars
