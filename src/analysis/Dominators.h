//===- analysis/Dominators.h - Dominator tree -----------------*- C++ -*-===//
///
/// \file
/// Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm on
/// reverse postorder.  Used to identify backedges (an edge u->v is a
/// natural-loop backedge iff v dominates u) and to check CFG reducibility.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_ANALYSIS_DOMINATORS_H
#define ARS_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

namespace ars {
namespace analysis {

/// Immediate-dominator table for the reachable blocks of one function.
class DominatorTree {
public:
  explicit DominatorTree(const CFG &Graph);

  /// Immediate dominator of \p Block; the entry block is its own idom;
  /// -1 for unreachable blocks.
  int idom(int Block) const { return Idom[Block]; }

  /// True if \p A dominates \p B (reflexive).  Both must be reachable.
  bool dominates(int A, int B) const;

private:
  const CFG &Graph;
  std::vector<int> Idom;
};

} // namespace analysis
} // namespace ars

#endif // ARS_ANALYSIS_DOMINATORS_H
