//===- analysis/Backedges.h - Backedge identification ---------*- C++ -*-===//
///
/// \file
/// Identifies the backedges on which the sampling framework places its
/// checks (paper section 2: "checks are placed on all method entries and
/// backward branches").  A backedge is an edge u->v whose target dominates
/// its source (a natural-loop backedge).  Retreating edges whose target
/// does NOT dominate the source make the CFG irreducible; the framework
/// treats them as backedges too, which keeps Property 1's bounded-work
/// guarantee at the cost of (at most) extra checks.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_ANALYSIS_BACKEDGES_H
#define ARS_ANALYSIS_BACKEDGES_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"

#include <vector>

namespace ars {
namespace analysis {

/// One CFG edge.
struct Edge {
  int From = -1;
  int To = -1;

  bool operator==(const Edge &Other) const {
    return From == Other.From && To == Other.To;
  }
  bool operator<(const Edge &Other) const {
    return From != Other.From ? From < Other.From : To < Other.To;
  }
};

/// Backedge analysis result.
struct BackedgeInfo {
  std::vector<Edge> Backedges; ///< sorted, deduplicated
  bool Reducible = true;       ///< false if any retreating edge is not a
                               ///< natural-loop backedge

  bool isBackedge(int From, int To) const;
};

/// Computes backedges of \p F.  Unreachable blocks contribute nothing.
BackedgeInfo findBackedges(const ir::IRFunction &F);

/// Variant reusing existing analyses.
BackedgeInfo findBackedges(const CFG &Graph, const DominatorTree &DT);

} // namespace analysis
} // namespace ars

#endif // ARS_ANALYSIS_BACKEDGES_H
