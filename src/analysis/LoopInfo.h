//===- analysis/LoopInfo.h - Natural loop discovery -----------*- C++ -*-===//
///
/// \file
/// Natural loops built from backedges: for a backedge u->h, the loop is h
/// plus every block that reaches u without passing through h.  Used by
/// tests and by workload-shape diagnostics (loop trip densities drive the
/// backedge-check overhead column of Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_ANALYSIS_LOOPINFO_H
#define ARS_ANALYSIS_LOOPINFO_H

#include "analysis/Backedges.h"

#include <vector>

namespace ars {
namespace analysis {

/// One natural loop.
struct Loop {
  int Header = -1;
  std::vector<int> Blocks; ///< sorted, includes Header
  std::vector<int> Latches; ///< sources of backedges into Header

  bool contains(int Block) const;
};

/// All natural loops of a function.  Loops sharing a header are merged
/// (standard natural-loop convention).
class LoopInfo {
public:
  explicit LoopInfo(const ir::IRFunction &F);
  LoopInfo(const CFG &Graph, const BackedgeInfo &BI);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Innermost loop depth of \p Block (0 = not in any loop).
  int loopDepth(int Block) const;

private:
  void build(const CFG &Graph, const BackedgeInfo &BI);

  std::vector<Loop> Loops;
  int NumBlocks = 0;
};

} // namespace analysis
} // namespace ars

#endif // ARS_ANALYSIS_LOOPINFO_H
