//===- analysis/Dominators.cpp --------------------------------*- C++ -*-===//
//
// Implements: K. Cooper, T. Harvey, K. Kennedy, "A Simple, Fast Dominance
// Algorithm".
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <cassert>

namespace ars {
namespace analysis {

DominatorTree::DominatorTree(const CFG &Graph) : Graph(Graph) {
  int N = Graph.numBlocks();
  Idom.assign(N, -1);
  if (N == 0)
    return;
  Idom[Graph.entry()] = Graph.entry();

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (Graph.rpoNumber(A) > Graph.rpoNumber(B))
        A = Idom[A];
      while (Graph.rpoNumber(B) > Graph.rpoNumber(A))
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int Block : Graph.reversePostorder()) {
      if (Block == Graph.entry())
        continue;
      int NewIdom = -1;
      for (int Pred : Graph.predecessors(Block)) {
        if (Idom[Pred] < 0)
          continue; // not yet processed / unreachable
        NewIdom = NewIdom < 0 ? Pred : intersect(Pred, NewIdom);
      }
      assert(NewIdom >= 0 && "reachable block with no processed preds");
      if (Idom[Block] != NewIdom) {
        Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(int A, int B) const {
  assert(Idom[A] >= 0 && Idom[B] >= 0 && "query on unreachable block");
  // Walk up from B; A dominates B iff we meet A before the entry fixpoint.
  int Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    if (Cur == Graph.entry())
      return A == Graph.entry();
    Cur = Idom[Cur];
  }
}

} // namespace analysis
} // namespace ars
