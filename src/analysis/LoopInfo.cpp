//===- analysis/LoopInfo.cpp ----------------------------------*- C++ -*-===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>

namespace ars {
namespace analysis {

bool Loop::contains(int Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

LoopInfo::LoopInfo(const ir::IRFunction &F) {
  CFG Graph(F);
  DominatorTree DT(Graph);
  BackedgeInfo BI = findBackedges(Graph, DT);
  build(Graph, BI);
}

LoopInfo::LoopInfo(const CFG &Graph, const BackedgeInfo &BI) {
  build(Graph, BI);
}

void LoopInfo::build(const CFG &Graph, const BackedgeInfo &BI) {
  NumBlocks = Graph.numBlocks();
  std::map<int, Loop> ByHeader;
  for (const Edge &E : BI.Backedges) {
    Loop &L = ByHeader[E.To];
    L.Header = E.To;
    L.Latches.push_back(E.From);
    // Reverse reachability from the latch, stopping at the header.
    std::vector<char> InLoop(NumBlocks, 0);
    InLoop[E.To] = 1;
    std::vector<int> Work;
    if (!InLoop[E.From]) {
      InLoop[E.From] = 1;
      Work.push_back(E.From);
    }
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      for (int P : Graph.predecessors(B))
        if (!InLoop[P]) {
          InLoop[P] = 1;
          Work.push_back(P);
        }
    }
    for (int B = 0; B != NumBlocks; ++B)
      if (InLoop[B])
        L.Blocks.push_back(B);
  }
  for (auto &[Header, L] : ByHeader) {
    (void)Header;
    std::sort(L.Blocks.begin(), L.Blocks.end());
    L.Blocks.erase(std::unique(L.Blocks.begin(), L.Blocks.end()),
                   L.Blocks.end());
    std::sort(L.Latches.begin(), L.Latches.end());
    Loops.push_back(std::move(L));
  }
}

int LoopInfo::loopDepth(int Block) const {
  int Depth = 0;
  for (const Loop &L : Loops)
    if (L.contains(Block))
      ++Depth;
  return Depth;
}

} // namespace analysis
} // namespace ars
