//===- analysis/CFG.cpp ---------------------------------------*- C++ -*-===//

#include "analysis/CFG.h"

#include <cassert>

namespace ars {
namespace analysis {

CFG::CFG(const ir::IRFunction &F) : Entry(F.Entry) {
  int N = F.numBlocks();
  Succs.resize(N);
  Preds.resize(N);
  for (int B = 0; B != N; ++B) {
    int Targets[2];
    int Count = 0;
    ir::terminatorTargets(F.Blocks[B].terminator(), Targets, &Count);
    for (int T = 0; T != Count; ++T) {
      // Two-way terminators may name the same target twice; keep duplicates
      // out of the adjacency so analyses see a simple graph.
      if (T == 1 && Targets[1] == Targets[0])
        continue;
      Succs[B].push_back(Targets[T]);
      Preds[Targets[T]].push_back(B);
    }
  }

  // Iterative DFS computing postorder, then reverse it.
  RpoNumber.assign(N, -1);
  std::vector<int> Postorder;
  std::vector<char> Visited(N, 0);
  // Stack of (block, next successor index).
  std::vector<std::pair<int, size_t>> Stack;
  Visited[Entry] = 1;
  Stack.emplace_back(Entry, 0);
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    if (NextSucc < Succs[Block].size()) {
      int S = Succs[Block][NextSucc++];
      if (!Visited[S]) {
        Visited[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    Postorder.push_back(Block);
    Stack.pop_back();
  }
  Rpo.assign(Postorder.rbegin(), Postorder.rend());
  for (size_t I = 0; I != Rpo.size(); ++I)
    RpoNumber[Rpo[I]] = static_cast<int>(I);
}

} // namespace analysis
} // namespace ars
