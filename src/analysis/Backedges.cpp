//===- analysis/Backedges.cpp ---------------------------------*- C++ -*-===//

#include "analysis/Backedges.h"

#include <algorithm>

namespace ars {
namespace analysis {

bool BackedgeInfo::isBackedge(int From, int To) const {
  Edge Probe{From, To};
  return std::binary_search(Backedges.begin(), Backedges.end(), Probe);
}

BackedgeInfo findBackedges(const CFG &Graph, const DominatorTree &DT) {
  BackedgeInfo Info;
  // An edge u->v is retreating iff it closes a DFS cycle.  With reverse
  // postorder numbering, retreating edges are exactly those with
  // rpo(v) <= rpo(u) that also have v on the DFS stack; the standard
  // shortcut (rpo(v) <= rpo(u)) over-approximates on cross edges between
  // siblings... it does not: cross edges go from higher rpo to lower rpo
  // as well.  So we classify precisely: u->v is a natural-loop backedge iff
  // v dominates u; u->v is retreating iff v is a DFS ancestor of u.  We
  // detect retreating edges with an explicit DFS ancestry pass.
  int N = Graph.numBlocks();
  std::vector<char> OnStack(N, 0), Visited(N, 0);
  std::vector<std::pair<int, size_t>> Stack;
  std::vector<Edge> Retreating;
  if (N > 0) {
    int Entry = Graph.entry();
    Visited[Entry] = 1;
    OnStack[Entry] = 1;
    Stack.emplace_back(Entry, 0);
    while (!Stack.empty()) {
      auto &[Block, NextSucc] = Stack.back();
      const auto &Succs = Graph.successors(Block);
      if (NextSucc < Succs.size()) {
        int S = Succs[NextSucc++];
        if (OnStack[S]) {
          Retreating.push_back(Edge{Block, S});
          continue;
        }
        if (!Visited[S]) {
          Visited[S] = 1;
          OnStack[S] = 1;
          Stack.emplace_back(S, 0);
        }
        continue;
      }
      OnStack[Block] = 0;
      Stack.pop_back();
    }
  }

  for (const Edge &E : Retreating) {
    Info.Backedges.push_back(E);
    if (!DT.dominates(E.To, E.From))
      Info.Reducible = false;
  }
  std::sort(Info.Backedges.begin(), Info.Backedges.end());
  Info.Backedges.erase(
      std::unique(Info.Backedges.begin(), Info.Backedges.end()),
      Info.Backedges.end());
  return Info;
}

BackedgeInfo findBackedges(const ir::IRFunction &F) {
  CFG Graph(F);
  DominatorTree DT(Graph);
  return findBackedges(Graph, DT);
}

} // namespace analysis
} // namespace ars
