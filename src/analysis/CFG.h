//===- analysis/CFG.h - Successor/predecessor views & DFS -----*- C++ -*-===//
///
/// \file
/// Derived control-flow-graph structure over an ir::IRFunction: successor
/// and predecessor lists, reachability, and depth-first numbering in
/// reverse postorder (the traversal order every other analysis builds on).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_ANALYSIS_CFG_H
#define ARS_ANALYSIS_CFG_H

#include "ir/IR.h"

#include <vector>

namespace ars {
namespace analysis {

/// Successor and predecessor adjacency for one function, plus DFS orders.
class CFG {
public:
  explicit CFG(const ir::IRFunction &F);

  int numBlocks() const { return static_cast<int>(Succs.size()); }
  int entry() const { return Entry; }
  const std::vector<int> &successors(int Block) const { return Succs[Block]; }
  const std::vector<int> &predecessors(int Block) const {
    return Preds[Block];
  }

  /// True if \p Block is reachable from the entry block.
  bool isReachable(int Block) const { return RpoNumber[Block] >= 0; }

  /// Reverse postorder position of \p Block, or -1 if unreachable.
  int rpoNumber(int Block) const { return RpoNumber[Block]; }

  /// Reachable blocks in reverse postorder (entry first).
  const std::vector<int> &reversePostorder() const { return Rpo; }

private:
  int Entry = 0;
  std::vector<std::vector<int>> Succs;
  std::vector<std::vector<int>> Preds;
  std::vector<int> Rpo;
  std::vector<int> RpoNumber;
};

} // namespace analysis
} // namespace ars

#endif // ARS_ANALYSIS_CFG_H
