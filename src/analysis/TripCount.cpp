//===- analysis/TripCount.cpp ---------------------------------*- C++ -*-===//

#include "analysis/TripCount.h"

#include <limits>
#include <optional>
#include <vector>

namespace ars {
namespace analysis {

using ir::BasicBlock;
using ir::IRInst;
using ir::IROp;

namespace {

bool addOverflows(int64_t A, int64_t B) {
  if (B > 0)
    return A > std::numeric_limits<int64_t>::max() - B;
  return A < std::numeric_limits<int64_t>::min() - B;
}

bool mulOverflows(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return false;
  if (A == -1)
    return B == std::numeric_limits<int64_t>::min();
  if (B == -1)
    return A == std::numeric_limits<int64_t>::min();
  int64_t P = A * B;
  return P / B != A;
}

/// Constant interpreter over one block: register -> known value, with
/// every unsupported operation (loads, calls, float ops...) clobbering
/// its destination.  The lowering materializes loop tests through Mov /
/// MovImm / Cmp chains, so this is exactly the evaluator that recovers
/// them.
class ConstEval {
public:
  explicit ConstEval(int NumRegs) : Regs(static_cast<size_t>(NumRegs)) {}

  void set(int Reg, int64_t V) { Regs[static_cast<size_t>(Reg)] = V; }
  std::optional<int64_t> get(int Reg) const {
    if (Reg < 0 || static_cast<size_t>(Reg) >= Regs.size())
      return std::nullopt;
    return Regs[static_cast<size_t>(Reg)];
  }

  /// Applies \p I to the state.  Returns false on arithmetic the engine
  /// would fault or wrap on (division, overflow) — callers must then
  /// treat the whole block as unanalyzable rather than guess.
  bool step(const IRInst &I) {
    auto Clobber = [&] {
      if (I.Dst >= 0 && static_cast<size_t>(I.Dst) < Regs.size())
        Regs[static_cast<size_t>(I.Dst)] = std::nullopt;
    };
    auto A = get(I.A), B = get(I.B);
    switch (I.Op) {
    case IROp::MovImm:
      set(I.Dst, I.Imm);
      return true;
    case IROp::Mov:
      if (A)
        set(I.Dst, *A);
      else
        Clobber();
      return true;
    case IROp::Add:
      if (A && B) {
        if (addOverflows(*A, *B))
          return false;
        set(I.Dst, *A + *B);
      } else
        Clobber();
      return true;
    case IROp::Sub:
      if (A && B) {
        if (*B == std::numeric_limits<int64_t>::min() ||
            addOverflows(*A, -*B))
          return false;
        set(I.Dst, *A - *B);
      } else
        Clobber();
      return true;
    case IROp::Mul:
      if (A && B) {
        if (mulOverflows(*A, *B))
          return false;
        set(I.Dst, *A * *B);
      } else
        Clobber();
      return true;
    case IROp::Neg:
      if (A) {
        if (*A == std::numeric_limits<int64_t>::min())
          return false;
        set(I.Dst, -*A);
      } else
        Clobber();
      return true;
    case IROp::CmpEq:
    case IROp::CmpNe:
    case IROp::CmpLt:
    case IROp::CmpLe:
    case IROp::CmpGt:
    case IROp::CmpGe:
      if (A && B)
        set(I.Dst, cmp(I.Op, *A, *B));
      else
        Clobber();
      return true;
    default:
      Clobber();
      return true;
    }
  }

private:
  static int64_t cmp(IROp Op, int64_t A, int64_t B) {
    switch (Op) {
    case IROp::CmpEq:
      return A == B;
    case IROp::CmpNe:
      return A != B;
    case IROp::CmpLt:
      return A < B;
    case IROp::CmpLe:
      return A <= B;
    case IROp::CmpGt:
      return A > B;
    default:
      return A >= B;
    }
  }

  std::vector<std::optional<int64_t>> Regs;
};

/// Value as an affine function of the candidate induction variable:
/// Iv + C (HasIv) or the constant C.
struct Affine {
  bool HasIv = false;
  int64_t C = 0;
};

/// Derives the per-iteration update of register \p IvReg from the block
/// defining it: evaluates \p BB with IvReg = Iv + 0 and loop-invariant
/// constants from \p Invariants, in the domain {unknown, const, Iv + c}.
/// Returns the step on success (Iv_next = Iv + step).
std::optional<int64_t> affineStep(const BasicBlock &BB, int IvReg,
                                  int NumRegs,
                                  const ConstEval &Invariants) {
  std::vector<std::optional<Affine>> Regs(static_cast<size_t>(NumRegs));
  for (int R = 0; R != NumRegs; ++R)
    if (auto V = Invariants.get(R))
      Regs[static_cast<size_t>(R)] = Affine{false, *V};
  Regs[static_cast<size_t>(IvReg)] = Affine{true, 0};

  auto Get = [&](int R) -> std::optional<Affine> {
    if (R < 0 || static_cast<size_t>(R) >= Regs.size())
      return std::nullopt;
    return Regs[static_cast<size_t>(R)];
  };
  std::optional<Affine> Result;
  for (const IRInst &I : BB.Insts) {
    std::optional<Affine> Val;
    auto A = Get(I.A), B = Get(I.B);
    switch (I.Op) {
    case IROp::MovImm:
      Val = Affine{false, I.Imm};
      break;
    case IROp::Mov:
      Val = A;
      break;
    case IROp::Add:
      if (A && B && !(A->HasIv && B->HasIv) && !addOverflows(A->C, B->C))
        Val = Affine{A->HasIv || B->HasIv, A->C + B->C};
      break;
    case IROp::Sub:
      if (A && B && !B->HasIv &&
          B->C != std::numeric_limits<int64_t>::min() &&
          !addOverflows(A->C, -B->C))
        Val = Affine{A->HasIv, A->C - B->C};
      break;
    default:
      break;
    }
    if (I.Dst >= 0 && static_cast<size_t>(I.Dst) < Regs.size()) {
      Regs[static_cast<size_t>(I.Dst)] = Val;
      if (I.Dst == IvReg)
        Result = Val; // the (single) in-loop definition of the IV
    }
  }
  if (!Result || !Result->HasIv || Result->C == 0)
    return std::nullopt;
  return Result->C;
}

} // namespace

TripCount computeTripCount(const ir::IRFunction &F, const CFG &Graph,
                           const DominatorTree &Dom, const Loop &L) {
  TripCount TC;
  if (L.Latches.size() != 1)
    return TC;
  auto InLoop = [&](int B) { return L.contains(B); };

  // Exits only from the header, and no cycle strictly inside the loop
  // avoiding the header (an inner loop would make non-header blocks run
  // more than once per iteration).  Inner cycles show up as an in-loop
  // edge whose target dominates its source, other than the latch edge.
  for (int B : L.Blocks) {
    if (!Graph.isReachable(B))
      return TC;
    for (int S : Graph.successors(B)) {
      if (!InLoop(S) && B != L.Header)
        return TC;
      if (InLoop(S) && Dom.dominates(S, B) &&
          !(B == L.Latches[0] && S == L.Header))
        return TC;
    }
  }

  // Unique entry edge: its source re-establishes the induction variable's
  // initial value on every entry, which makes the count exact per entry
  // (including re-entries from an enclosing loop).
  const BasicBlock *EntryBB = nullptr;
  for (int P : Graph.predecessors(L.Header)) {
    if (InLoop(P))
      continue;
    if (EntryBB)
      return TC; // multiple entry edges
    EntryBB = &F.Blocks[P];
  }
  if (!EntryBB)
    return TC;

  // Constant-evaluate the entry block: whatever is a known constant at
  // its end is the value on loop entry.
  ConstEval Entry(F.NumRegs);
  for (const IRInst &I : EntryBB->Insts)
    if (!Entry.step(I))
      return TC;

  // Loop-invariant constants: registers never defined inside the loop
  // whose entry value is known.
  std::vector<char> DefinedInLoop(static_cast<size_t>(F.NumRegs), 0);
  std::vector<int> DefCount(static_cast<size_t>(F.NumRegs), 0);
  std::vector<int> DefBlock(static_cast<size_t>(F.NumRegs), -1);
  for (int B : L.Blocks)
    for (const IRInst &I : F.Blocks[B].Insts)
      if (I.Dst >= 0 && I.Dst < F.NumRegs) {
        DefinedInLoop[static_cast<size_t>(I.Dst)] = 1;
        ++DefCount[static_cast<size_t>(I.Dst)];
        DefBlock[static_cast<size_t>(I.Dst)] = B;
      }
  ConstEval Invariants(F.NumRegs);
  for (int R = 0; R != F.NumRegs; ++R)
    if (!DefinedInLoop[static_cast<size_t>(R)])
      if (auto V = Entry.get(R))
        Invariants.set(R, *V);

  const BasicBlock &Header = F.Blocks[L.Header];
  const IRInst &Term = Header.terminator();
  if (Term.Op != IROp::Branch)
    return TC;
  bool TakenIn = InLoop(static_cast<int>(Term.Imm));
  bool FallIn = InLoop(Term.Aux);
  if (TakenIn == FallIn)
    return TC; // not the exit test

  // Candidate induction variables: defined exactly once inside the loop,
  // in a non-header block that runs exactly once per completed iteration
  // (dominates the latch), with an affine Iv + step update and a known
  // initial value on entry.  For each candidate, simulate the header's
  // exit test iteration by iteration; the first candidate the test is a
  // pure function of wins.
  for (int IvReg = 0; IvReg != F.NumRegs; ++IvReg) {
    if (DefCount[static_cast<size_t>(IvReg)] != 1)
      continue;
    int IncBlock = DefBlock[static_cast<size_t>(IvReg)];
    if (IncBlock == L.Header || !Dom.dominates(IncBlock, L.Latches[0]))
      continue;
    std::optional<int64_t> Step =
        affineStep(F.Blocks[IncBlock], IvReg, F.NumRegs, Invariants);
    if (!Step)
      continue;
    std::optional<int64_t> Init = Entry.get(IvReg);
    if (!Init)
      continue;

    // Simulate.  Capped both in iterations and in total header
    // instructions evaluated, so hostile inputs cost bounded work; a
    // loop that long is not worth hoisting blind anyway.
    const uint64_t IterCap = uint64_t(1) << 22;
    uint64_t InstBudget = uint64_t(1) << 24;
    int64_t Iv = *Init;
    uint64_t Body = 0;
    bool Exact = true;
    while (true) {
      ConstEval State = Invariants;
      State.set(IvReg, Iv);
      bool Evaluated = true;
      for (const IRInst &I : Header.Insts) {
        if (&I == &Term)
          break;
        if (InstBudget == 0 || !State.step(I)) {
          Evaluated = false;
          break;
        }
        --InstBudget;
      }
      std::optional<int64_t> Cond =
          Evaluated ? State.get(Term.A) : std::nullopt;
      if (!Cond) {
        Exact = false; // exit test not a pure function of this candidate
        break;
      }
      bool Stay = *Cond != 0 ? TakenIn : FallIn;
      if (!Stay)
        break;
      if (Body + 1 > IterCap || addOverflows(Iv, *Step)) {
        Exact = false;
        break;
      }
      Iv += *Step;
      ++Body;
    }
    if (!Exact)
      continue;
    TC.Exact = true;
    TC.BodyExecs = Body;
    TC.HeaderExecs = Body + 1;
    return TC;
  }
  return TC;
}

} // namespace analysis
} // namespace ars
