//===- analysis/TripCount.h - Exact trip counts of counted loops *- C++ -*-===//
///
/// \file
/// Recognizes exactly-counted loops — a single-latch natural loop whose
/// only exit is a header branch comparing a constant-step induction
/// variable against a constant bound, with the initial value established
/// in the loop's unique outside predecessor — and computes the exact
/// number of header and body executions *per loop entry* by simulating
/// the induction arithmetic.
///
/// The check-coalescing pass (sampling/Coalesce.h) uses this to hoist
/// instrumentation out of such loops: a probe in a block that executes
/// once per iteration can be replaced by one pre-loop probe recording
/// BodyExecs events.  Every condition here is chosen so the count is
/// exact on *every* entry to the loop, not just the first:
///
///  * the initial value is the last definition in the unique outside
///    predecessor, so re-entering the loop (an enclosing loop iterating)
///    re-establishes it;
///  * the bound and step are rematerialized inside the loop (or constant
///    along the entry path with no definitions inside), so they cannot
///    drift between iterations;
///  * the loop has no inner loops and exits only at the header, so every
///    block dominating the latch runs exactly once per completed
///    iteration.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_ANALYSIS_TRIPCOUNT_H
#define ARS_ANALYSIS_TRIPCOUNT_H

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include <cstdint>

namespace ars {
namespace analysis {

/// Result of the exactly-counted-loop analysis, per loop entry.
struct TripCount {
  bool Exact = false;
  uint64_t HeaderExecs = 0; ///< header visits: BodyExecs + the exit test
  uint64_t BodyExecs = 0;   ///< completed iterations
};

/// Computes the exact trip count of \p L, or Exact = false when any
/// eligibility condition fails.  Simulation is capped (loops beyond ~4M
/// iterations report inexact), so this is safe on hostile input.
TripCount computeTripCount(const ir::IRFunction &F, const CFG &Graph,
                           const DominatorTree &Dom, const Loop &L);

} // namespace analysis
} // namespace ars

#endif // ARS_ANALYSIS_TRIPCOUNT_H
