//===- faultinject/FaultInject.cpp ----------------------------*- C++ -*-===//

#include "faultinject/FaultInject.h"

#include "shmem/ShmRing.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace ars {
namespace faultinject {

using profserve::IoResult;
using profserve::IoStatus;

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::None:           return "none";
  case FaultKind::Drop:           return "drop";
  case FaultKind::PartialWrite:   return "partial-write";
  case FaultKind::BitFlip:        return "bit-flip";
  case FaultKind::Latency:        return "latency";
  case FaultKind::FileShortWrite: return "file-short-write";
  case FaultKind::FileFsyncFail:  return "file-fsync-fail";
  case FaultKind::FileRenameFail: return "file-rename-fail";
  case FaultKind::RingTear:       return "ring-tear";
  case FaultKind::RingAbandon:    return "ring-abandon";
  }
  return "?";
}

namespace {

/// splitmix-style mixer so (Seed, Key) pairs that differ in one bit land
/// far apart in the PRNG's state space.
uint64_t mixSeed(uint64_t Seed, uint64_t Key) {
  uint64_t Z = Seed + 0x9E3779B97F4A7C15ULL * (Key + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

bool harmfulWire(FaultKind K) {
  return K == FaultKind::Drop || K == FaultKind::PartialWrite ||
         K == FaultKind::BitFlip || K == FaultKind::RingTear ||
         K == FaultKind::RingAbandon;
}

} // namespace

FaultStream::FaultStream(const FaultPlan &Plan, uint64_t Seed,
                         uint64_t Key, std::string Label)
    : Plan(Plan), Rng(mixSeed(Seed, Key)), Label(std::move(Label)) {}

std::shared_ptr<FaultStream> FaultStream::scripted(
    std::vector<FaultEvent> Script, std::string Label) {
  auto S = std::make_shared<FaultStream>(FaultPlan(), 0, 0,
                                         std::move(Label));
  S->Scripted = true;
  S->Script = std::move(Script);
  return S;
}

FaultEvent FaultStream::scriptedAt(uint64_t Op) {
  FaultEvent E;
  E.Op = Op;
  for (const FaultEvent &S : Script)
    if (S.Op == Op) {
      E.Kind = S.Kind;
      E.Arg = S.Arg;
      break;
    }
  return E;
}

void FaultStream::record(const FaultEvent &E) {
  if (E.Kind == FaultKind::None)
    return;
  Events.push_back(E);
  if (harmfulWire(E.Kind))
    ++WireFaultCount;
  else if (E.Kind != FaultKind::Latency)
    ++FileFaultCount;
}

FaultEvent FaultStream::decideWire(bool IsWrite, size_t Size) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Op = NextOp++;
  if (Scripted) {
    FaultEvent E = scriptedAt(Op);
    record(E);
    return E;
  }
  FaultEvent E;
  E.Op = Op;
  bool Exhausted = Plan.MaxFaults && WireFaultCount >= Plan.MaxFaults;
  // One decision draw per op, budget or not, so the op->draw mapping is
  // stable and the trace of a replay cannot diverge.
  uint64_t Draw = Rng.nextBelow(100);
  uint32_t Band = Plan.DropPct;
  if (Draw < Band)
    E.Kind = FaultKind::Drop;
  else if (Draw < (Band += Plan.PartialWritePct))
    // Reads cannot tear their own bytes; degrade to a plain drop so the
    // fault density stays comparable for both directions.
    E.Kind = IsWrite ? FaultKind::PartialWrite : FaultKind::Drop;
  else if (Draw < (Band += Plan.BitFlipPct))
    E.Kind = FaultKind::BitFlip;
  else if (Draw < (Band += Plan.LatencyPct))
    E.Kind = FaultKind::Latency;
  // Ring bands come last and default to 0%, so plans that never enable
  // them produce byte-identical traces to pre-ring builds.
  else if (Draw < (Band += Plan.RingTearPct))
    // A read cannot tear a cell it does not write; keep density parity
    // the same way PartialWrite does.
    E.Kind = IsWrite ? FaultKind::RingTear : FaultKind::Drop;
  else if (Draw < (Band += Plan.RingAbandonPct))
    E.Kind = FaultKind::RingAbandon;

  if (Exhausted && harmfulWire(E.Kind))
    E.Kind = FaultKind::None;

  switch (E.Kind) {
  case FaultKind::PartialWrite:
    if (Size >= 2)
      E.Arg = 1 + Rng.nextBelow(Size - 1); // a nonempty strict prefix
    else
      E.Kind = FaultKind::Drop; // nothing to tear; same observable
    break;
  case FaultKind::BitFlip:
    // For writes the size is known; for reads the raw draw is reduced
    // modulo the bytes actually delivered, later.
    E.Arg = IsWrite && Size ? Rng.nextBelow(Size * 8) : Rng.next();
    break;
  case FaultKind::Latency:
    E.Arg = Plan.LatencyMaxMs ? 1 + Rng.nextBelow(Plan.LatencyMaxMs) : 0;
    if (!E.Arg)
      E.Kind = FaultKind::None;
    break;
  default:
    break;
  }
  record(E);
  return E;
}

FaultEvent FaultStream::decideFile(FaultKind Kind, uint32_t Pct,
                                   size_t Size) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Op = NextOp++;
  if (Scripted) {
    FaultEvent E = scriptedAt(Op);
    record(E);
    return E;
  }
  FaultEvent E;
  E.Op = Op;
  bool Exhausted =
      Plan.FileMaxFaults && FileFaultCount >= Plan.FileMaxFaults;
  uint64_t Draw = Rng.nextBelow(100);
  if (!Exhausted && Draw < Pct) {
    E.Kind = Kind;
    if (Kind == FaultKind::FileShortWrite)
      E.Arg = Size ? Rng.nextBelow(Size) : 0; // strict prefix
  }
  record(E);
  return E;
}

FaultEvent FaultStream::onWrite(size_t Size) {
  return decideWire(true, Size);
}

FaultEvent FaultStream::onRead(size_t Max) {
  return decideWire(false, Max);
}

FaultEvent FaultStream::onFileWrite(size_t Size) {
  return decideFile(FaultKind::FileShortWrite, Plan.FileShortWritePct,
                    Size);
}

FaultEvent FaultStream::onFileFsync() {
  return decideFile(FaultKind::FileFsyncFail, Plan.FileFsyncFailPct, 0);
}

FaultEvent FaultStream::onFileRename() {
  return decideFile(FaultKind::FileRenameFail, Plan.FileRenameFailPct, 0);
}

std::string FaultStream::trace() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  for (const FaultEvent &E : Events)
    Out += support::formatString(
        "%s op=%llu %s arg=%llu\n", Label.c_str(),
        static_cast<unsigned long long>(E.Op), faultKindName(E.Kind),
        static_cast<unsigned long long>(E.Arg));
  return Out;
}

size_t FaultStream::faultsInjected() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

//===----------------------------------------------------------------------===//
// FaultyTransport
//===----------------------------------------------------------------------===//

FaultyTransport::FaultyTransport(
    std::unique_ptr<profserve::Transport> Inner,
    std::shared_ptr<FaultStream> Faults)
    : Inner(std::move(Inner)), Faults(std::move(Faults)) {
  // Ring-only faults need the concrete type; on every other transport
  // they degrade to Drop below, so the decision stream stays shared.
  Ring = dynamic_cast<shmem::ShmRingTransport *>(this->Inner.get());
}

void FaultyTransport::close() { Inner->close(); }

std::string FaultyTransport::peer() const {
  return "faulty:" + Inner->peer();
}

IoResult FaultyTransport::writeAll(const char *Data, size_t Size) {
  FaultEvent E = Faults->onWrite(Size);
  // Ring faults degrade to Drop off-ring (keeps seeded fault density
  // comparable across --transport values).
  if (!Ring &&
      (E.Kind == FaultKind::RingTear || E.Kind == FaultKind::RingAbandon))
    E.Kind = FaultKind::Drop;
  switch (E.Kind) {
  case FaultKind::RingTear:
    // The write "succeeds" from the producer's point of view — exactly
    // what a writer crashing mid-commit observes — but the first cell's
    // commit word is poisoned, so the consumer reports a torn cell and
    // the connection dies server-side.  The client discovers it on a
    // later op and retries through the normal reconnect path; wire-v3
    // sequence dedup keeps the redelivered bundle single-counted.
    Ring->tearNextWrite();
    return Inner->writeAll(Data, Size);
  case FaultKind::RingAbandon: {
    // A crashed writer: the mapping dies locally but shared ring state is
    // left exactly as-is, so the server must reap the segment via its
    // idle deadline rather than any cooperative close flag.
    Ring->abandon();
    IoResult R;
    R.Status = IoStatus::Error;
    R.Message = "injected ring abandon (crashed writer)";
    return R;
  }
  case FaultKind::Drop: {
    // As if the peer vanished: both directions die at once.
    Inner->close();
    IoResult R;
    R.Status = IoStatus::Error;
    R.Message = "injected connection drop";
    return R;
  }
  case FaultKind::PartialWrite: {
    size_t N = std::min<size_t>(E.Arg, Size ? Size - 1 : 0);
    if (N)
      Inner->writeAll(Data, N); // the torn prefix reaches the peer
    Inner->close();
    IoResult R;
    R.Status = IoStatus::Error;
    R.Message = support::formatString(
        "injected partial write (%zu of %zu bytes)", N, Size);
    return R;
  }
  case FaultKind::BitFlip: {
    std::string Copy(Data, Size);
    size_t Bit = Size ? static_cast<size_t>(E.Arg % (Size * 8)) : 0;
    if (Size)
      Copy[Bit / 8] ^= static_cast<char>(1u << (Bit % 8));
    return Inner->writeAll(Copy.data(), Copy.size());
  }
  case FaultKind::Latency:
    std::this_thread::sleep_for(std::chrono::milliseconds(E.Arg));
    return Inner->writeAll(Data, Size);
  default:
    return Inner->writeAll(Data, Size);
  }
}

IoResult FaultyTransport::readSome(char *Data, size_t Max, int TimeoutMs,
                                   size_t *Read) {
  FaultEvent E = Faults->onRead(Max);
  if (E.Kind == FaultKind::RingAbandon) {
    if (Ring) {
      Ring->abandon();
      if (Read)
        *Read = 0;
      IoResult R;
      R.Status = IoStatus::Error;
      R.Message = "injected ring abandon (crashed writer)";
      return R;
    }
    E.Kind = FaultKind::Drop;
  }
  if (E.Kind == FaultKind::Drop) {
    Inner->close();
    if (Read)
      *Read = 0;
    IoResult R;
    R.Status = IoStatus::Closed;
    R.Message = "injected connection drop";
    return R;
  }
  if (E.Kind == FaultKind::Latency)
    std::this_thread::sleep_for(std::chrono::milliseconds(E.Arg));
  IoResult R = Inner->readSome(Data, Max, TimeoutMs, Read);
  if (E.Kind == FaultKind::BitFlip && R.ok() && Read && *Read) {
    // Which byte the flip lands in depends on the raw draw only; any
    // flipped bit inside a frame trips the same CRC check, so the
    // client-observable outcome is identical regardless of chunking.
    size_t Bit = static_cast<size_t>(E.Arg % (*Read * 8));
    Data[Bit / 8] ^= static_cast<char>(1u << (Bit % 8));
  }
  return R;
}

profserve::Dialer faultyDialer(profserve::Dialer Inner,
                               std::shared_ptr<FaultStream> Faults) {
  return [Inner = std::move(Inner), Faults](std::string *Error)
             -> std::unique_ptr<profserve::Transport> {
    std::unique_ptr<profserve::Transport> T = Inner(Error);
    if (!T)
      return nullptr;
    return std::make_unique<FaultyTransport>(std::move(T), Faults);
  };
}

//===----------------------------------------------------------------------===//
// FaultyFile
//===----------------------------------------------------------------------===//

FaultyFile::FaultyFile(std::shared_ptr<FaultStream> Faults)
    : Faults(std::move(Faults)) {
  std::shared_ptr<FaultStream> S = this->Faults;
  Hooks.OnWrite = [S](const std::string &, size_t Bytes) -> size_t {
    FaultEvent E = S->onFileWrite(Bytes);
    if (E.Kind == FaultKind::FileShortWrite)
      return std::min<size_t>(static_cast<size_t>(E.Arg),
                              Bytes ? Bytes - 1 : 0);
    return Bytes;
  };
  Hooks.OnFsync = [S](const std::string &) {
    return S->onFileFsync().Kind != FaultKind::FileFsyncFail;
  };
  Hooks.OnRename = [S](const std::string &, const std::string &) {
    return S->onFileRename().Kind != FaultKind::FileRenameFail;
  };
  profstore::setFileFaults(&Hooks);
}

FaultyFile::~FaultyFile() { profstore::setFileFaults(nullptr); }

} // namespace faultinject
} // namespace ars
