//===- faultinject/FaultInject.h - Deterministic fault injection -*- C++ -*-===//
///
/// \file
/// A seeded, replayable fault-injection layer for the profile collection
/// stack.  The paper's accuracy claims only hold if collection survives
/// real-world failure without losing or doubling shards; this layer makes
/// that testable by injecting the failures on purpose, deterministically:
///
///  * FaultStream — a per-client schedule of faults.  In seeded mode the
///    decisions are drawn from Xorshift64(mix(fault-seed, client-key)),
///    one decision per transport/file operation, so the entire fault
///    trace is a pure function of the seed — replaying the same seed
///    reproduces byte-identical traces.  In scripted mode an explicit
///    (op index -> fault) list fires, for pinning down single scenarios
///    ("drop the connection right after the PUSH write").
///  * FaultyTransport — a Transport decorator that injects connection
///    drops, partial writes, single-bit flips and latency.  Faults are
///    injected on the CLIENT side only, so op indices never depend on
///    server thread timing.
///  * FaultyFile — an RAII guard installing profstore file-fault hooks
///    (short write, failed fsync, failed rename) under snapshot I/O.
///
/// Determinism rules the chaos harness (Chaos.h) relies on:
///  * one FaultStream per client thread, keyed by client id — streams
///    never share a PRNG across threads;
///  * a fault budget (MaxFaults) after which the stream goes clean, so
///    every run terminates with all shards delivered;
///  * latency is bounded and everything else is decided by op COUNT,
///    never wall-clock, so the trace is schedule-independent.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FAULTINJECT_FAULTINJECT_H
#define ARS_FAULTINJECT_FAULTINJECT_H

#include "profserve/Client.h"
#include "profserve/Transport.h"
#include "profstore/ProfileIO.h"
#include "support/Support.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ars {
namespace shmem {
class ShmRingTransport;
} // namespace shmem

namespace faultinject {

enum class FaultKind : uint8_t {
  None = 0,
  Drop,           ///< close the connection instead of performing the op
  PartialWrite,   ///< deliver a prefix of the bytes, then close (torn frame)
  BitFlip,        ///< flip one bit of the op's bytes (CRC must catch it)
  Latency,        ///< delay the op by Arg ms, then perform it cleanly
  FileShortWrite, ///< cut a file write short after Arg bytes
  FileFsyncFail,  ///< fail an fsync
  FileRenameFail, ///< fail (and skip) a rename
  RingTear,       ///< poison a shm ring cell mid-commit (torn shared-memory
                  ///< write; degrades to Drop on non-ring transports)
  RingAbandon,    ///< abandon the shm segment without closing (crashed
                  ///< writer; degrades to Drop on non-ring transports)
};
const char *faultKindName(FaultKind K);

/// The seeded schedule: per-operation fault probabilities (percent) and
/// budgets.  One plan is shared by every stream of a chaos run; the
/// per-client divergence comes from the stream key, not the plan.
struct FaultPlan {
  // Wire faults, percent per transport operation (one writeAll or
  // readSome through FaultyTransport).
  uint32_t DropPct = 6;
  uint32_t PartialWritePct = 6;
  uint32_t BitFlipPct = 6;
  uint32_t LatencyPct = 8;
  uint32_t LatencyMaxMs = 3;
  // Shared-memory ring faults, percent per transport operation.  Default
  // 0 so the decision bands — and therefore every existing seeded trace —
  // are byte-identical unless a run opts in (chaos --transport=shm does).
  uint32_t RingTearPct = 0;
  uint32_t RingAbandonPct = 0;
  /// Harmful wire faults (drop/partial/flip/ring) injected per stream
  /// before it goes permanently clean.  The budget is what guarantees
  /// chaos runs terminate with every shard delivered.  0 = unlimited.
  uint32_t MaxFaults = 6;

  // File faults, percent per file operation (write/fsync/rename in
  // profstore::atomicSaveFile).
  uint32_t FileShortWritePct = 30;
  uint32_t FileFsyncFailPct = 15;
  uint32_t FileRenameFailPct = 15;
  uint32_t FileMaxFaults = 3;
};

/// One decided fault (or None) at one operation index.
struct FaultEvent {
  uint64_t Op = 0;
  FaultKind Kind = FaultKind::None;
  uint64_t Arg = 0; ///< prefix length / raw bit index / delay ms
};

/// A deterministic sequence of fault decisions.  Thread-safe (the server
/// never touches it, but RAII file hooks may outlive a test's scope).
class FaultStream {
public:
  /// Seeded mode: decisions drawn from a PRNG seeded by (Seed, Key).
  FaultStream(const FaultPlan &Plan, uint64_t Seed, uint64_t Key,
              std::string Label);

  /// Scripted mode: exactly the given events fire, each at its Op index;
  /// all other ops are clean.  Budgets/percentages do not apply.
  static std::shared_ptr<FaultStream> scripted(
      std::vector<FaultEvent> Script, std::string Label = "scripted");

  /// Decide the fate of the next transport write of \p Size bytes.
  FaultEvent onWrite(size_t Size);
  /// Decide the fate of the next transport read (up to \p Max bytes).
  /// PartialWrite never fires here; BitFlip's Arg is a raw draw reduced
  /// modulo the bytes actually read.
  FaultEvent onRead(size_t Max);

  /// File-operation decisions (driven by FaultyFile's hooks).
  FaultEvent onFileWrite(size_t Size);
  FaultEvent onFileFsync();
  FaultEvent onFileRename();

  /// Every injected (non-None) event so far, one per line:
  ///   "<label> op=<n> <kind> arg=<v>"
  /// Replaying the same seed must reproduce this byte-identically.
  std::string trace() const;
  size_t faultsInjected() const;
  const std::string &label() const { return Label; }

private:
  FaultEvent decideWire(bool IsWrite, size_t Size);
  FaultEvent decideFile(FaultKind Kind, uint32_t Pct, size_t Size);
  FaultEvent scriptedAt(uint64_t Op);
  void record(const FaultEvent &E);

  mutable std::mutex Mu;
  FaultPlan Plan;
  support::Xorshift64 Rng;
  bool Scripted = false;
  std::vector<FaultEvent> Script;
  std::string Label;
  uint64_t NextOp = 0;
  uint32_t WireFaultCount = 0;
  uint32_t FileFaultCount = 0;
  std::vector<FaultEvent> Events;
};

/// Transport decorator injecting the stream's wire faults.  Drop and
/// PartialWrite close the inner transport (both directions, as a dead
/// TCP peer would appear); BitFlip corrupts exactly one bit and lets the
/// frame CRC do its job; Latency sleeps then proceeds.  On a shared-
/// memory ring (shmem/ShmRing.h) RingTear poisons the next committed
/// cell — the torn-write shape unique to shared memory, which no byte-
/// stream fault can produce — and RingAbandon kills the client without
/// touching shared ring state, as a crashed writer would; on any other
/// transport both degrade to Drop so seeded fault density is comparable
/// across transports.
class FaultyTransport : public profserve::Transport {
public:
  FaultyTransport(std::unique_ptr<profserve::Transport> Inner,
                  std::shared_ptr<FaultStream> Faults);

  profserve::IoResult writeAll(const char *Data, size_t Size) override;
  profserve::IoResult readSome(char *Data, size_t Max, int TimeoutMs,
                               size_t *Read) override;
  void close() override;
  std::string peer() const override;

private:
  std::unique_ptr<profserve::Transport> Inner;
  std::shared_ptr<FaultStream> Faults;
  /// Non-null when Inner is a shm ring: enables the ring-only faults.
  shmem::ShmRingTransport *Ring = nullptr;
};

/// Wraps \p Inner so every dialed connection is decorated with
/// \p Faults.  One stream spans reconnects — the op counter keeps
/// running, which is what makes "drop, reconnect, retry" replayable.
profserve::Dialer faultyDialer(profserve::Dialer Inner,
                               std::shared_ptr<FaultStream> Faults);

/// RAII guard routing profstore::atomicSaveFile through \p Faults for
/// its lifetime.  Process-wide: do not overlap two instances.
class FaultyFile {
public:
  explicit FaultyFile(std::shared_ptr<FaultStream> Faults);
  ~FaultyFile();

  FaultyFile(const FaultyFile &) = delete;
  FaultyFile &operator=(const FaultyFile &) = delete;

private:
  std::shared_ptr<FaultStream> Faults;
  profstore::FileFaults Hooks;
};

} // namespace faultinject
} // namespace ars

#endif // ARS_FAULTINJECT_FAULTINJECT_H
