//===- faultinject/Chaos.cpp ----------------------------------*- C++ -*-===//

#include "faultinject/Chaos.h"

#include "policy/Policy.h"
#include "profserve/Client.h"
#include "profserve/Server.h"
#include "shmem/ShmRing.h"
#include "profstore/Journal.h"
#include "profstore/ProfileIO.h"
#include "profstore/ProfileStore.h"
#include "support/Support.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <cerrno>
#include <sys/stat.h>

namespace ars {
namespace faultinject {

using profserve::ClientConfig;
using profserve::ClientResult;
using profserve::LoopbackListener;
using profserve::ProfileClient;
using profserve::ProfileServer;
using profserve::ServerConfig;

namespace {

/// Every chaos run pins the same module fingerprint so shards, pulls,
/// snapshots and recovery all validate against it.
constexpr uint64_t ChaosFingerprint = 0xC4A05F00D5EED001ULL;

/// Shard \p Seed: distinct counts in every section, so the merged sum is
/// sensitive to any lost or doubled shard.
profile::ProfileBundle chaosShard(int Seed) {
  profile::ProfileBundle B;
  profile::CallEdgeKey K;
  K.Caller = Seed % 5;
  K.Site = Seed % 3;
  K.Callee = (Seed + 1) % 7;
  B.CallEdges.record(K, static_cast<uint64_t>(Seed) * 37 + 1);
  B.FieldAccesses.record(Seed % 4, static_cast<uint64_t>(Seed) + 2);
  B.BlockCounts.record(1, Seed % 6, static_cast<uint64_t>(Seed) * 11 + 3);
  B.Values.record(9, Seed % 8, static_cast<uint64_t>(Seed) + 5);
  B.Edges.record(0, Seed % 2, (Seed + 1) % 2,
                 static_cast<uint64_t>(Seed) + 7);
  B.Paths.record(2, Seed * 1000003LL, static_cast<uint64_t>(Seed) + 9);
  return B;
}

/// The fault-free serial reference: encodeBundle of the plain fold of
/// shards [0, Shards).  Everything the chaos run produces must be
/// byte-identical to this.
std::string serialFoldBytes(int Shards) {
  profile::ProfileBundle Acc;
  for (int I = 0; I != Shards; ++I)
    profstore::mergeBundle(Acc, chaosShard(I));
  return profstore::encodeBundle(Acc, ChaosFingerprint);
}

void removeQuiet(const std::string &Path) { std::remove(Path.c_str()); }

bool readFileBytes(const std::string &Path, std::string *Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out->assign(std::istreambuf_iterator<char>(In),
              std::istreambuf_iterator<char>());
  return true;
}

/// ChaosConfig::Crash: the kill-and-restart harness (contract in
/// Chaos.h).  Wave-structured like the relay/policy modes — the barrier
/// is the one moment no client op is in flight, so that is where a dead
/// root can be swapped for a recovered one without racing a push.
ChaosReport runCrashChaos(const ChaosConfig &C) {
  ChaosReport R;
  R.ExpectedShards =
      static_cast<uint64_t>(C.Clients) * C.ShardsPerClient;
  auto fail = [&R](std::string Why) {
    R.Ok = false;
    if (R.Error.empty())
      R.Error = std::move(Why);
    return R;
  };
  if (C.WorkDir.empty())
    return fail("chaos: WorkDir is required");
  if (::mkdir(C.WorkDir.c_str(), 0755) != 0 && errno != EEXIST)
    return fail("chaos: cannot create workdir " + C.WorkDir);
  if (C.Clients < 1 || C.ShardsPerClient < 1)
    return fail("chaos: need at least one client and one shard");
  if (C.Policy)
    return fail("chaos: --crash and --policy are mutually exclusive");
  const bool Relayed = C.Topo == Topology::Relay;
  const bool Shm = C.Transport == ChaosTransport::Shm;
  if (Shm && Relayed)
    return fail("chaos: the shm transport supports Topology::Direct only");
  const std::string ShmDir = C.WorkDir + "/chaos-shm";
  const std::string Snap = C.WorkDir + "/chaos-snapshot.arsp";
  const std::string Wal = C.WorkDir + "/chaos-wal.arsj";
  const std::string RelaySpill = C.WorkDir + "/chaos-relay-spill.bin";
  removeQuiet(Snap);
  removeQuiet(Snap + ".prev");
  removeQuiet(Snap + ".tmp");
  removeQuiet(RelaySpill);
  profstore::Journal::wipe(Wal);
  std::vector<std::string> SpillPaths;
  for (int I = 0; I != C.Clients; ++I) {
    SpillPaths.push_back(support::formatString(
        "%s/chaos-spill-%d.bin", C.WorkDir.c_str(), I));
    removeQuiet(SpillPaths.back());
  }
  const std::string Expected =
      serialFoldBytes(static_cast<int>(R.ExpectedShards));

  // The seeded crash schedule: which journal point fires, after how many
  // hits, and how many kill cycles the run takes.
  struct CrashEntry {
    const char *Point;
    int Countdown;
  };
  static const char *const Points[] = {
      "wal.append.before", "wal.append.after", "wal.rotate.mid",
      "wal.checkpoint.mid"};
  support::Xorshift64 Rng(C.FaultSeed * 0x9E3779B97F4A7C15ULL +
                          0xC7A54ULL);
  std::vector<CrashEntry> Schedule;
  int Cycles = 1 + static_cast<int>(Rng.nextBelow(2));
  for (int I = 0; I != Cycles; ++I)
    Schedule.push_back({Points[Rng.nextBelow(4)],
                        1 + static_cast<int>(Rng.nextBelow(6))});

  // The armed entry.  The hook fires once (latching Fired); the frozen
  // journal then answers every push with RETRY_AFTER until the harness
  // notices at the next barrier and does the kill-and-restart.
  struct CrashState {
    std::mutex Mu;
    const char *Point = nullptr;
    int Countdown = 0;
    bool Fired = false;
  };
  auto State = std::make_shared<CrashState>();
  auto arm = [&State, &Schedule](size_t I) {
    std::lock_guard<std::mutex> Lock(State->Mu);
    State->Fired = false;
    State->Point = I < Schedule.size() ? Schedule[I].Point : nullptr;
    State->Countdown = I < Schedule.size() ? Schedule[I].Countdown : 0;
  };
  auto crashPending = [&State] {
    std::lock_guard<std::mutex> Lock(State->Mu);
    return State->Fired;
  };
  arm(0);

  // The indirection that makes restart invisible to the clients: every
  // dial reads the CURRENT incarnation's dialer, so the same
  // ProfileClient objects (same sessions, monotonic sequence numbers)
  // carry straight on against the recovered server.
  struct DialSlot {
    std::mutex Mu;
    profserve::Dialer D;
  };
  auto Slot = std::make_shared<DialSlot>();
  profserve::Dialer SlotDial =
      [Slot](std::string *Error) -> std::unique_ptr<profserve::Transport> {
    profserve::Dialer D;
    {
      std::lock_guard<std::mutex> Lock(Slot->Mu);
      D = Slot->D;
    }
    if (!D) {
      if (Error)
        *Error = "root is down";
      return nullptr;
    }
    return D(Error);
  };

  int Incarnation = 0;
  std::string MakeErr;
  auto makeRoot = [&](bool Recover) -> std::unique_ptr<ProfileServer> {
    ServerConfig SC;
    SC.Fingerprint = ChaosFingerprint;
    SC.SnapshotPath = Snap;
    SC.SnapshotIntervalMs = 0; // checkpoints are harness-driven
    SC.JournalPath = Wal;
    // Small segments force rotations, so "wal.rotate.mid" is reachable.
    SC.JournalMaxSegmentBytes = 4096;
    SC.Workers = C.ServerWorkers;
    SC.MaxConnections = 0;
    SC.RecoverOnStart = Recover;
    SC.RecvTimeoutMs = 0; // wave barriers leave idle windows: no reaping
    SC.CrashHook = [State](const char *Point) {
      std::lock_guard<std::mutex> Lock(State->Mu);
      if (State->Fired || !State->Point ||
          std::strcmp(Point, State->Point) != 0)
        return false;
      if (--State->Countdown > 0)
        return false;
      State->Fired = true;
      return true;
    };
    std::unique_ptr<profserve::Listener> Lst;
    profserve::Dialer D;
    if (Shm) {
      // A fresh rendezvous directory per incarnation: clients repoint
      // through the slot, and a ring half-attached to the dead server
      // can never be mistaken for a live one.
      std::string Dir =
          support::formatString("%s-%d", ShmDir.c_str(), Incarnation);
      std::string LErr;
      Lst = shmem::listenShm(Dir, &LErr);
      if (!Lst) {
        MakeErr = LErr;
        return nullptr;
      }
      D = shmem::shmDialer(Dir);
    } else {
      auto *LL = new LoopbackListener();
      Lst.reset(LL);
      D = loopbackDialer(*LL);
    }
    auto S = std::make_unique<ProfileServer>(std::move(Lst), SC);
    S->start();
    {
      std::lock_guard<std::mutex> Lock(Slot->Mu);
      Slot->D = D;
    }
    ++Incarnation;
    return S;
  };

  std::unique_ptr<ProfileServer> Root = makeRoot(false);
  if (!Root)
    return fail("chaos: " + MakeErr);
  // A server whose journal failed to open keeps serving (deliberate
  // degradation), but a journal-less crash run would "pass" by never
  // exercising recovery — refuse instead.
  if (Root->stats().JournalFailures != 0)
    return fail("chaos: root journal failed to open under " + C.WorkDir);
  // Retired incarnations stay alive (listeners shut down; a dial that
  // copied the old dialer just fails cleanly and retries through the
  // slot) until the run ends.
  std::vector<std::unique_ptr<ProfileServer>> Graveyard;
  // Exactly-once accounting across incarnations: a replayed shard was
  // already counted by the incarnation that first applied it, so the sum
  // of (Merges - JournalReplayed) is the distinct application count.
  uint64_t CumMerges = 0, CumDups = 0;
  auto retire = [&](bool Graceful) {
    profserve::StatsMsg St = Root->stats();
    CumMerges += St.Merges - St.JournalReplayed;
    CumDups += St.Duplicates;
    R.Replayed += St.JournalReplayed;
    if (Graceful)
      Root->stop();
    else
      Root->kill();
    Graveyard.push_back(std::move(Root));
  };
  size_t NextCrash = 0;
  auto restartRoot = [&]() -> bool {
    retire(/*Graceful=*/false);
    Root = makeRoot(/*Recover=*/true);
    if (!Root)
      return false;
    ++R.Crashes;
    ++NextCrash;
    arm(NextCrash);
    return true;
  };

  // Relay topology: the relay is NEVER crashed (hard-crash exactly-once
  // for journaled relays is out of contract — DESIGN §15); it rides out
  // the root's deaths on its spill + session dedup, dialing each new
  // incarnation through the slot.
  std::shared_ptr<FaultStream> UpFaults;
  std::unique_ptr<ProfileServer> Relay;
  LoopbackListener *RelayL = nullptr;
  if (Relayed) {
    UpFaults = std::make_shared<FaultStream>(C.Plan, C.FaultSeed, 2000ULL,
                                             "relay-up");
    ServerConfig RSC;
    RSC.Fingerprint = ChaosFingerprint;
    RSC.Workers = C.ServerWorkers;
    RSC.MaxConnections = 0;
    RSC.RecoverOnStart = false;
    RSC.RecvTimeoutMs = 0;
    RSC.Relay.Dial = faultyDialer(SlotDial, UpFaults);
    RSC.Relay.Client.TimeoutMs = 500;
    RSC.Relay.Client.MaxRetries = C.PushRetries;
    RSC.Relay.Client.BackoffMs = 1;
    RSC.Relay.Client.Fingerprint = ChaosFingerprint;
    RSC.Relay.Client.SessionId = 0x5E1AULL;
    RSC.Relay.Client.BreakerThreshold = 6;
    RSC.Relay.Client.BreakerCooldownOps = 2;
    RSC.Relay.Client.SpillPath = RelaySpill;
    RSC.Relay.FlushIntervalMs = 0; // harness-driven only
    RSC.Relay.FlushEveryMerges = 0;
    RelayL = new LoopbackListener();
    Relay = std::make_unique<ProfileServer>(
        std::unique_ptr<profserve::Listener>(RelayL), RSC);
    Relay->start();
  }
  profserve::Dialer PushDial =
      Relayed ? loopbackDialer(*RelayL) : SlotDial;

  std::vector<std::shared_ptr<FaultStream>> Streams;
  for (int I = 0; I != C.Clients; ++I)
    Streams.push_back(std::make_shared<FaultStream>(
        C.Plan, C.FaultSeed, static_cast<uint64_t>(1000 + I),
        support::formatString("client%d", I)));

  std::vector<std::string> Errs(C.Clients);
  std::vector<uint64_t> Spills(C.Clients, 0);
  std::vector<std::unique_ptr<ProfileClient>> Clients;
  for (int I = 0; I != C.Clients; ++I) {
    ClientConfig CC;
    CC.TimeoutMs = 500;
    CC.MaxRetries = C.PushRetries;
    CC.BackoffMs = 1;
    CC.Fingerprint = ChaosFingerprint;
    CC.SessionId = static_cast<uint64_t>(1000 + I);
    CC.BreakerThreshold = 6;
    CC.BreakerCooldownOps = 2;
    CC.SpillPath = SpillPaths[I];
    Clients.push_back(std::make_unique<ProfileClient>(
        faultyDialer(PushDial, Streams[I]), CC));
  }
  auto pushShard = [&](int I, int J) {
    int Global = I * C.ShardsPerClient + J;
    ClientResult PR =
        Clients[I]->push(chaosShard(Global), ChaosFingerprint);
    if (PR.Spilled)
      ++Spills[I];
    else if (!PR.Ok)
      Errs[I] = support::formatString("client %d shard %d: %s", I, Global,
                                      PR.Error.c_str());
  };

  for (int J = 0; J != C.ShardsPerClient; ++J) {
    std::vector<std::thread> Wave;
    for (int I = 0; I != C.Clients; ++I)
      Wave.emplace_back([&, I, J] {
        if (Errs[I].empty())
          pushShard(I, J);
      });
    for (std::thread &T : Wave)
      T.join();
    if (Relayed) {
      std::string FlushErr;
      Relay->flushUpstream(&FlushErr); // failures spill; drained later
    }
    // Checkpoint pressure: snapshot every other wave, so mid-checkpoint
    // crashes and checkpoint-truncation both happen under load.
    if (J % 2 == 1) {
      std::string SnapErr;
      Root->snapshotNow(&SnapErr); // frozen-journal failure is the point
    }
    if (crashPending() && !restartRoot())
      return fail("chaos: root restart failed: " + MakeErr);
  }

  // Drain the spills (joined rounds).  A crash can fire mid-drain too —
  // keep watching the barrier.
  for (int Round = 0; Round != 16; ++Round) {
    std::vector<std::thread> Wave;
    for (int I = 0; I != C.Clients; ++I)
      Wave.emplace_back([&, I] {
        if (Errs[I].empty() && Clients[I]->spillCount())
          Clients[I]->replaySpill();
      });
    for (std::thread &T : Wave)
      T.join();
    if (Relayed) {
      std::string FlushErr;
      Relay->flushUpstream(&FlushErr);
    }
    if (crashPending() && !restartRoot())
      return fail("chaos: root restart failed: " + MakeErr);
    bool AnyLeft = false;
    for (int I = 0; I != C.Clients; ++I)
      AnyLeft = AnyLeft || Clients[I]->spillCount();
    if (!AnyLeft)
      break;
  }
  for (int I = 0; I != C.Clients; ++I)
    if (Errs[I].empty())
      if (size_t Left = Clients[I]->spillCount())
        Errs[I] = support::formatString(
            "client %d: %zu shards still spilled after replay", I, Left);
  for (const std::string &E : Errs)
    if (!E.empty())
      return fail(E);
  for (uint64_t S : Spills)
    R.Spills += S;

  // A seed whose scheduled point was never reached still owes us one
  // plain kill-and-restart, so EVERY seed exercises recovery.
  if (R.Crashes == 0 && !restartRoot())
    return fail("chaos: root restart failed: " + MakeErr);

  Clients.clear(); // deterministic BYEs before the relay drains
  if (Relayed) {
    std::string FlushErr;
    bool Drained = false;
    for (int Round = 0; Round != 16 && !Drained; ++Round) {
      Drained = Relay->flushUpstream(&FlushErr);
      if (crashPending() && !restartRoot())
        return fail("chaos: root restart failed: " + MakeErr);
    }
    if (!Drained)
      return fail("relay upstream never drained: " + FlushErr);
    profserve::StatsMsg RelayStats = Relay->stats();
    R.Merges = RelayStats.Merges;
    R.Duplicates = RelayStats.Duplicates;
    Relay->stop();
    if (RelayStats.Merges != R.ExpectedShards)
      return fail(support::formatString(
          "relay merged %llu shards, expected exactly %llu",
          static_cast<unsigned long long>(RelayStats.Merges),
          static_cast<unsigned long long>(R.ExpectedShards)));
  }

  // The payoff: the recovered, retried, restarted root must hold exactly
  // the fault-free serial fold.
  {
    ClientConfig CC;
    CC.Fingerprint = ChaosFingerprint;
    ProfileClient Clean(SlotDial, CC);
    ProfileClient::PullResult P = Clean.pull();
    if (!P.Ok)
      return fail("chaos pull failed: " + P.Error);
    if (P.RawBytes != Expected)
      return fail(support::formatString(
          "merged bundle differs from the fault-free serial fold "
          "(%zu vs %zu bytes)",
          P.RawBytes.size(), Expected.size()));
  }
  {
    // Distinct-application accounting: leaf shards at the tier the
    // clients push at, summed across incarnations for the (restarted)
    // direct case.
    profserve::StatsMsg St = Root->stats();
    if (!Relayed) {
      CumMerges += St.Merges - St.JournalReplayed;
      CumDups += St.Duplicates;
      R.Replayed += St.JournalReplayed;
      R.Merges = CumMerges;
      R.Duplicates = CumDups;
      // Upper bound only: a record made durable by a crash that fired
      // AFTER its append freezes the ack, so its replay is really its
      // FIRST application — Merges-minus-Replayed then undercounts by
      // one.  Zero-lost is proved by the byte comparison above; this
      // guards zero-DOUBLED on the counting side.
      if (CumMerges > R.ExpectedShards)
        return fail(support::formatString(
            "distinct merges across incarnations %llu exceed the %llu "
            "pushed shards: something merged twice",
            static_cast<unsigned long long>(CumMerges),
            static_cast<unsigned long long>(R.ExpectedShards)));
    } else {
      R.RootMerges = St.Merges;
      R.RootDuplicates = St.Duplicates;
      R.Replayed += St.JournalReplayed;
    }
  }

  // Farewell: a graceful stop checkpoints, and one more recovery must
  // come back exact with nothing left in the journal tail.
  arm(Schedule.size()); // disarm — the farewell is not a crash window
  retire(/*Graceful=*/true);
  Root = makeRoot(/*Recover=*/true);
  if (!Root)
    return fail("chaos: post-stop recovery failed: " + MakeErr);
  std::string Back =
      profstore::encodeBundle(Root->merged(), ChaosFingerprint);
  profserve::StatsMsg Fin = Root->stats();
  Root->stop();
  if (Back != Expected)
    return fail("post-stop recovery differs from the fault-free fold");
  if (Fin.JournalReplayed != 0)
    return fail(support::formatString(
        "graceful stop left %llu records in the journal tail",
        static_cast<unsigned long long>(Fin.JournalReplayed)));

  for (const auto &S : Streams) {
    R.Trace += S->trace();
    R.FaultsInjected += S->faultsInjected();
  }
  if (UpFaults) {
    R.Trace += UpFaults->trace();
    R.FaultsInjected += UpFaults->faultsInjected();
  }
  R.Ok = true;
  return R;
}

} // namespace

ChaosReport runChaos(const ChaosConfig &C) {
  if (C.Crash)
    return runCrashChaos(C);
  ChaosReport R;
  R.ExpectedShards =
      static_cast<uint64_t>(C.Clients) * C.ShardsPerClient;
  auto fail = [&R](std::string Why) {
    R.Ok = false;
    if (R.Error.empty())
      R.Error = std::move(Why);
    return R;
  };
  if (C.WorkDir.empty())
    return fail("chaos: WorkDir is required");
  if (C.Clients < 1 || C.ShardsPerClient < 1)
    return fail("chaos: need at least one client and one shard");

  const bool Relayed = C.Topo == Topology::Relay;
  const bool Shm = C.Transport == ChaosTransport::Shm;
  // The relay's interior hop is a ProfileClient like any other and WOULD
  // dial shm fine, but two rendezvous directories (leaf->relay and
  // relay->root) complicate the stale-sweep story for no extra coverage:
  // every ring-fault path is already exercised by the Direct topology.
  if (Shm && Relayed)
    return fail("chaos: the shm transport supports Topology::Direct only");
  // The waited policy broadcast relies on flushOut completing in one
  // write, which the unbounded loopback pipe guarantees and a bounded
  // shm ring does not — a partially flushed frame would drain on reactor
  // timing and race the client's poll ops.
  if (C.Policy && Shm)
    return fail("chaos: --policy supports the loopback transport only");
  const std::string ShmDir = C.WorkDir + "/chaos-shm";
  const std::string Snap = C.WorkDir + "/chaos-snapshot.arsp";
  const std::string RelaySpill = C.WorkDir + "/chaos-relay-spill.bin";
  removeQuiet(Snap);
  removeQuiet(Snap + ".prev");
  removeQuiet(Snap + ".tmp");
  removeQuiet(RelaySpill);
  std::vector<std::string> SpillPaths;
  for (int I = 0; I != C.Clients; ++I) {
    SpillPaths.push_back(
        support::formatString("%s/chaos-spill-%d.bin", C.WorkDir.c_str(),
                              I));
    removeQuiet(SpillPaths.back());
  }

  const std::string Expected =
      serialFoldBytes(static_cast<int>(R.ExpectedShards));

  ServerConfig SC;
  SC.Fingerprint = ChaosFingerprint;
  SC.SnapshotPath = Snap;
  SC.SnapshotIntervalMs = 0; // snapshot faults run in a sequential phase
  SC.Workers = C.ServerWorkers;
  // No shedding during the determinism check: every push must land, and
  // whether a push races into an admission bound depends on scheduling.
  SC.MaxConnections = 0;
  SC.RecoverOnStart = false; // the run starts from an empty aggregate
  // The whole run is over an in-memory loopback, so nothing legitimate
  // waits more than a few ms (LatencyMaxMs).  The timeout still has to
  // be generous relative to that, but not wall-clock generous: a bit
  // flip landing in a frame's length header strands the reader waiting
  // for payload bytes that never come, and recovery (both sides time
  // out, the client reconnects and resends) costs exactly this long.
  //
  // Relay topology: server-side idle reaping is DISABLED (0).  Between
  // waves a leaf connection sits idle for however long the faulted
  // upstream flush takes, so whether the 500ms reaper fires before the
  // next wave would be a wall-clock race — and every reap changes the
  // client's subsequent op sequence (reconnect = an extra dial on the
  // fault stream), destroying trace replay determinism.  Recovery then
  // rests purely on CLIENT-side timeouts plus stream close events,
  // both of which are functions of the seed alone.
  // Policy mode runs wave-structured with idle windows between waves, so
  // it disables reaping for the same reason the relay topology does.
  SC.RecvTimeoutMs = (Relayed || C.Policy) ? 0 : 500;
  if (C.Policy) {
    // The watcher lives on the MAIN server (the root in Topology::Relay,
    // so frames exercise the relay's forwarding path on the way down).
    // Thresholds are set so every observed epoch qualifies: one widen
    // decision per method per rotation keeps a steady supply of POLICY
    // frames in front of the fault lanes.  Retire only ever happens via
    // the interval cap — the threshold is unreachable (overlap <= 100).
    SC.Policy.Enabled = true;
    SC.Policy.Watcher.WidenThresholdPct = 0.0;
    SC.Policy.Watcher.RetireThresholdPct = 1000.0;
    SC.Policy.Watcher.StableEpochs = 1;
    SC.Policy.Watcher.WidenFactor = 2;
    SC.Policy.Watcher.BaseInterval = 1000;
  }
  // The main listener + the dialer that reaches it.  Shm runs rendezvous
  // through ShmDir (listenShm sweeps any stale segments a previous seed
  // or a crashed run left behind); loopback runs keep the raw pointer so
  // the relay's upstream hop can dial it.
  LoopbackListener *L = nullptr;
  std::unique_ptr<profserve::Listener> MainL;
  profserve::Dialer MainDial;
  if (Shm) {
    std::string LErr;
    MainL = shmem::listenShm(ShmDir, &LErr);
    if (!MainL)
      return fail("chaos: " + LErr);
    MainDial = shmem::shmDialer(ShmDir);
  } else {
    L = new LoopbackListener();
    MainL.reset(L);
    MainDial = loopbackDialer(*L);
  }
  ProfileServer Server(std::move(MainL), SC);
  Server.start();

  // Topology::Relay interposes an interior aggregation node: clients
  // push at the relay, the relay merges and drains deltas upstream to
  // the root through its own faulted ProfileClient.  Flushing is ONLY
  // harness-driven (no timer, no merge trigger): a timer flush would
  // make each delta's contents scheduling-dependent and destroy trace
  // replay determinism.
  std::shared_ptr<FaultStream> UpFaults;
  std::unique_ptr<ProfileServer> Relay;
  LoopbackListener *RelayL = nullptr;
  if (Relayed) {
    UpFaults = std::make_shared<FaultStream>(C.Plan, C.FaultSeed,
                                             2000ULL, "relay-up");
    ServerConfig RSC;
    RSC.Fingerprint = ChaosFingerprint;
    RSC.Workers = C.ServerWorkers;
    RSC.MaxConnections = 0;
    RSC.RecoverOnStart = false;
    RSC.RecvTimeoutMs = 0; // no idle reaping: see the note on SC above
    RSC.Relay.Dial = faultyDialer(MainDial, UpFaults);
    RSC.Relay.Client.TimeoutMs = 500;
    RSC.Relay.Client.MaxRetries = C.PushRetries;
    RSC.Relay.Client.BackoffMs = 1;
    RSC.Relay.Client.Fingerprint = ChaosFingerprint;
    RSC.Relay.Client.SessionId = 0x5E1AULL;
    RSC.Relay.Client.BreakerThreshold = 6;
    RSC.Relay.Client.BreakerCooldownOps = 2;
    RSC.Relay.Client.SpillPath = RelaySpill;
    RSC.Relay.FlushIntervalMs = 0;  // harness-driven only; see above
    RSC.Relay.FlushEveryMerges = 0;
    RelayL = new LoopbackListener();
    Relay = std::make_unique<ProfileServer>(
        std::unique_ptr<profserve::Listener>(RelayL), RSC);
    Relay->start();
  }
  profserve::Dialer PushDial =
      Relayed ? loopbackDialer(*RelayL) : MainDial;

  // One fault stream per client, created up front in client order so the
  // concatenated trace has a deterministic layout.
  std::vector<std::shared_ptr<FaultStream>> Streams;
  for (int I = 0; I != C.Clients; ++I)
    Streams.push_back(std::make_shared<FaultStream>(
        C.Plan, C.FaultSeed, static_cast<uint64_t>(1000 + I),
        support::formatString("client%d", I)));

  std::vector<std::string> Errs(C.Clients);
  std::vector<uint64_t> Spills(C.Clients, 0);
  // Policy mode: each client maintains its own runtime interval table,
  // fed only by whatever POLICY frames survive its fault lane.  Sized
  // past every method id chaosShard() can produce.
  std::vector<std::shared_ptr<policy::PolicyTable>> Tables;
  if (C.Policy)
    for (int I = 0; I != C.Clients; ++I)
      Tables.push_back(std::make_shared<policy::PolicyTable>(16));
  auto makeClient = [&](int I) {
    ClientConfig CC;
    CC.TimeoutMs = 500; // matches RecvTimeoutMs: see the note above
    CC.MaxRetries = C.PushRetries;
    CC.BackoffMs = 1; // keep chaos runs fast; jitter still exercised
    CC.Fingerprint = ChaosFingerprint;
    CC.SessionId = static_cast<uint64_t>(1000 + I);
    CC.BreakerThreshold = 6;
    CC.BreakerCooldownOps = 2; // deterministic, wall-clock-free
    CC.SpillPath = SpillPaths[I];
    auto Client = std::make_unique<ProfileClient>(
        faultyDialer(PushDial, Streams[I]), CC);
    if (C.Policy) {
      std::shared_ptr<policy::PolicyTable> T = Tables[I];
      Client->onPolicy([T](const profserve::PolicyMsg &M) {
        std::vector<policy::Decision> Ds;
        Ds.reserve(M.Entries.size());
        for (const profserve::PolicyEntry &E : M.Entries)
          Ds.push_back({static_cast<int>(E.Method),
                        static_cast<int64_t>(E.Interval)});
        T->applyVersioned(M.PolicyVersion, Ds);
      });
    }
    return Client;
  };
  auto pushShard = [&](ProfileClient &Client, int I, int J) {
    int Global = I * C.ShardsPerClient + J;
    ClientResult PR = Client.push(chaosShard(Global), ChaosFingerprint);
    if (PR.Spilled)
      ++Spills[I];
    else if (!PR.Ok)
      Errs[I] = support::formatString("client %d shard %d: %s", I,
                                      Global, PR.Error.c_str());
  };

  if (!Relayed && !C.Policy) {
    std::vector<std::thread> Threads;
    for (int I = 0; I != C.Clients; ++I) {
      Threads.emplace_back([&, I] {
        std::unique_ptr<ProfileClient> Client = makeClient(I);
        for (int J = 0; J != C.ShardsPerClient && Errs[I].empty(); ++J)
          pushShard(*Client, I, J);
        if (!Errs[I].empty())
          return;
        // Replay whatever spilled.  The fault budget means the stream
        // goes clean, so a bounded number of rounds drains the file.
        for (int Round = 0; Round != 16 && Client->spillCount(); ++Round)
          Client->replaySpill();
        if (size_t Left = Client->spillCount())
          Errs[I] = support::formatString(
              "client %d: %zu shards still spilled after replay", I,
              Left);
      });
    }
    for (std::thread &T : Threads)
      T.join();
  } else {
    // Wave-structured pushes: every client pushes its J-th shard, the
    // wave JOINS, and only then does the harness flush the relay.  The
    // join makes "which shards the relay holds at flush time" — and so
    // every upstream delta's bytes and every upstream fault decision —
    // a pure function of the seed.  Clients persist across waves so
    // their (session, seq) numbering stays monotonic; recreating one
    // would reuse sequence numbers and alias the dedup ledger.
    //
    // Policy mode reuses the same wave skeleton (also for
    // Topology::Direct): only at a wave barrier is no client op in
    // flight, so that is the one place a broadcast can be injected
    // without its arrival racing the clients' fault-op numbering.  The
    // harness rotates the main server's epoch (the watcher decides,
    // broadcasting asynchronously), then pushes the table with
    // Wait=true; the waited broadcast is queued per shard BEHIND the
    // async one, so when it returns every frame is in the transport
    // buffers and the clients' poll wave reads them deterministically.
    std::vector<std::unique_ptr<ProfileClient>> Clients;
    for (int I = 0; I != C.Clients; ++I)
      Clients.push_back(makeClient(I));
    for (int J = 0; J != C.ShardsPerClient; ++J) {
      std::vector<std::thread> Wave;
      for (int I = 0; I != C.Clients; ++I)
        Wave.emplace_back([&, I, J] {
          if (Errs[I].empty())
            pushShard(*Clients[I], I, J);
        });
      for (std::thread &T : Wave)
        T.join();
      if (Relayed) {
        std::string FlushErr;
        Relay->flushUpstream(&FlushErr); // a failed delta spills; the
                                         // post-push drain replays it
      }
      if (C.Policy) {
        Server.rotateEpoch();    // watcher observes; async broadcast
        Server.pushPolicy(true); // ...now guaranteed flushed
        if (Relayed)
          Relay->pushPolicy(true); // flush the forwarded table downhill
        std::vector<std::thread> Poll;
        for (int I = 0; I != C.Clients; ++I)
          Poll.emplace_back([&, I] {
            if (Errs[I].empty())
              Clients[I]->pollPolicy(/*TimeoutMs=*/50);
          });
        for (std::thread &T : Poll)
          T.join();
      }
    }
    // Drain client spills (joined rounds, same determinism argument).
    for (int Round = 0; Round != 16; ++Round) {
      std::vector<std::thread> Wave;
      for (int I = 0; I != C.Clients; ++I)
        Wave.emplace_back([&, I] {
          if (Errs[I].empty() && Clients[I]->spillCount())
            Clients[I]->replaySpill();
        });
      for (std::thread &T : Wave)
        T.join();
      bool AnyLeft = false;
      for (int I = 0; I != C.Clients; ++I)
        AnyLeft = AnyLeft || Clients[I]->spillCount();
      if (!AnyLeft)
        break;
    }
    for (int I = 0; I != C.Clients; ++I)
      if (Errs[I].empty())
        if (size_t Left = Clients[I]->spillCount())
          Errs[I] = support::formatString(
              "client %d: %zu shards still spilled after replay", I,
              Left);
    if (C.Policy) {
      // A client whose fault lane dropped or corrupted POLICY frames
      // must simply have applied FEWER versions — never an invented or
      // future one.  (Applying fewer means effectiveInterval() falls
      // back toward the static interval; that IS the degradation
      // contract.)  The counts also feed the sweep's replay check.
      uint64_t FinalVersion = Server.currentPolicy().PolicyVersion;
      for (int I = 0; I != C.Clients; ++I) {
        R.PolicyFrames += Clients[I]->policyFramesSeen();
        uint64_t Applied = Tables[I]->appliedVersion();
        R.PolicyApplied += Applied;
        if (Applied > FinalVersion)
          return fail(support::formatString(
              "client %d applied policy version %llu, but the watcher "
              "only ever published %llu",
              I, static_cast<unsigned long long>(Applied),
              static_cast<unsigned long long>(FinalVersion)));
      }
    }
    Clients.clear(); // deterministic BYEs before the relay drains
    if (Relayed) {
      // Late-replayed shards sit in the relay; drain until the faulted
      // uplink goes clean (true = spill replayed empty + delta landed).
      std::string FlushErr;
      bool Drained = false;
      for (int Round = 0; Round != 16 && !Drained; ++Round)
        Drained = Relay->flushUpstream(&FlushErr);
      if (!Drained)
        return fail("relay upstream never drained: " + FlushErr);
    }
  }
  for (const std::string &E : Errs)
    if (!E.empty())
      return fail(E);
  for (uint64_t S : Spills)
    R.Spills += S;

  if (Relayed) {
    // Every leaf shard must have merged at the relay exactly once, and
    // the relay must now be fully drained — stop() it so its final
    // (empty) flush and connection teardown happen before the root is
    // inspected.
    profserve::StatsMsg RelayStats = Relay->stats();
    R.Merges = RelayStats.Merges;
    R.Duplicates = RelayStats.Duplicates;
    R.PolicyPushes += RelayStats.PolicyPushes;
    Relay->stop();
    if (RelayStats.Merges != R.ExpectedShards)
      return fail(support::formatString(
          "relay merged %llu shards, expected exactly %llu",
          static_cast<unsigned long long>(RelayStats.Merges),
          static_cast<unsigned long long>(R.ExpectedShards)));
  }

  // The payoff check: pull through a clean client and compare bytes.
  {
    ClientConfig CC;
    CC.Fingerprint = ChaosFingerprint;
    ProfileClient Clean(MainDial, CC);
    ProfileClient::PullResult P = Clean.pull();
    if (!P.Ok)
      return fail("chaos pull failed: " + P.Error);
    if (P.RawBytes != Expected)
      return fail(support::formatString(
          "merged bundle differs from the fault-free serial fold "
          "(%zu vs %zu bytes)",
          P.RawBytes.size(), Expected.size()));
  }
  profserve::StatsMsg Stats = Server.stats();
  R.PolicyPushes += Stats.PolicyPushes;
  R.PolicyDecisions = Stats.PolicyDecisions;
  if (Relayed) {
    // The root sees upstream DELTAS, not leaf shards, so its merge
    // count is topology-shaped — but it must still replay identically
    // (the sweep compares it run-to-run).
    R.RootMerges = Stats.Merges;
    R.RootDuplicates = Stats.Duplicates;
  } else {
    R.Merges = Stats.Merges;
    R.Duplicates = Stats.Duplicates;
    if (Stats.Merges != R.ExpectedShards)
      return fail(support::formatString(
          "server merged %llu shards, expected exactly %llu",
          static_cast<unsigned long long>(Stats.Merges),
          static_cast<unsigned long long>(R.ExpectedShards)));
  }

  // Snapshot phase, sequential: two clean snapshots establish main and
  // ".prev", then faulted attempts may fail but must never leave us
  // without SOME loadable snapshot, then a clean save must restore the
  // exact expected bytes.
  std::string SnapErr;
  if (!Server.snapshotNow(&SnapErr) || !Server.snapshotNow(&SnapErr))
    return fail("clean snapshot failed: " + SnapErr);
  auto snapValid = [&Snap] {
    return profstore::loadBundle(Snap, ChaosFingerprint).Ok ||
           profstore::loadBundle(Snap + ".prev", ChaosFingerprint).Ok;
  };
  std::shared_ptr<FaultStream> FileStream;
  if (C.FileFaults) {
    FileStream = std::make_shared<FaultStream>(C.Plan, C.FaultSeed,
                                               0xF11EULL, "file");
    FaultyFile Guard(FileStream);
    for (int Attempt = 0; Attempt != 3; ++Attempt) {
      Server.snapshotNow(&SnapErr); // failure is the point; ignore it
      if (!snapValid())
        return fail(support::formatString(
            "faulted snapshot attempt %d left no loadable snapshot "
            "(main or .prev)",
            Attempt));
    }
  }
  if (!Server.snapshotNow(&SnapErr))
    return fail("post-fault clean snapshot failed: " + SnapErr);
  std::string OnDisk;
  if (!readFileBytes(Snap, &OnDisk))
    return fail("cannot read final snapshot " + Snap);
  if (OnDisk != Expected)
    return fail("final snapshot differs from the fault-free fold");

  Server.stop(); // writes one more clean snapshot; main stays Expected

  if (C.CheckRecovery) {
    // Tear the main snapshot as a crash mid-write would, and demand the
    // restarted collector come back with the full merged profile via the
    // ".prev" fallback.
    {
      std::ofstream Out(Snap, std::ios::binary | std::ios::trunc);
      Out.write(Expected.data(),
                static_cast<std::streamsize>(Expected.size() / 2));
    }
    ServerConfig RC = SC;
    RC.RecoverOnStart = true;
    ProfileServer Recovered(
        std::unique_ptr<profserve::Listener>(new LoopbackListener()),
        RC);
    Recovered.start();
    std::string Back = profstore::encodeBundle(Recovered.merged(),
                                               ChaosFingerprint);
    uint64_t RecCount = Recovered.stats().Recovered;
    Recovered.stop();
    if (RecCount != 1)
      return fail(support::formatString(
          "restart recovered %llu snapshots, expected 1",
          static_cast<unsigned long long>(RecCount)));
    if (Back != Expected)
      return fail("recovered state differs from the fault-free fold");
  }

  for (const auto &S : Streams) {
    R.Trace += S->trace();
    R.FaultsInjected += S->faultsInjected();
  }
  if (UpFaults) {
    R.Trace += UpFaults->trace();
    R.FaultsInjected += UpFaults->faultsInjected();
  }
  if (FileStream) {
    R.Trace += FileStream->trace();
    R.FaultsInjected += FileStream->faultsInjected();
  }
  R.Ok = true;
  return R;
}

bool chaosSweep(const ChaosConfig &Base, uint64_t Seeds, bool Verbose) {
  bool AllOk = true;
  for (uint64_t Seed = 0; Seed != Seeds; ++Seed) {
    ChaosConfig C = Base;
    C.FaultSeed = Seed;
    ChaosReport First = runChaos(C);
    if (!First.Ok) {
      std::fprintf(stderr, "chaos seed %llu FAILED: %s\n",
                   static_cast<unsigned long long>(Seed),
                   First.Error.c_str());
      AllOk = false;
      continue;
    }
    if (Base.Crash) {
      // Kill-and-restart runs are checked against the fault-free fold
      // only: how many retries land before the replacement root is up is
      // wall-clock, so the trace does not replay (Chaos.h).
      if (Verbose)
        std::printf("chaos seed %llu ok: %llu merges, %llu faults, "
                    "%llu dups, %llu spills, %llu crashes, %llu "
                    "replayed\n",
                    static_cast<unsigned long long>(Seed),
                    static_cast<unsigned long long>(First.Merges),
                    static_cast<unsigned long long>(First.FaultsInjected),
                    static_cast<unsigned long long>(First.Duplicates),
                    static_cast<unsigned long long>(First.Spills),
                    static_cast<unsigned long long>(First.Crashes),
                    static_cast<unsigned long long>(First.Replayed));
      continue;
    }
    ChaosReport Second = runChaos(C); // the replay must be identical
    if (!Second.Ok) {
      std::fprintf(stderr, "chaos seed %llu replay FAILED: %s\n",
                   static_cast<unsigned long long>(Seed),
                   Second.Error.c_str());
      AllOk = false;
      continue;
    }
    if (First.Trace != Second.Trace || First.Merges != Second.Merges ||
        First.Duplicates != Second.Duplicates ||
        First.RootMerges != Second.RootMerges ||
        First.RootDuplicates != Second.RootDuplicates ||
        First.PolicyPushes != Second.PolicyPushes ||
        First.PolicyDecisions != Second.PolicyDecisions ||
        First.PolicyFrames != Second.PolicyFrames ||
        First.PolicyApplied != Second.PolicyApplied) {
      std::fprintf(stderr,
                   "chaos seed %llu NOT deterministic: traces %zu vs "
                   "%zu bytes, merges %llu vs %llu, dups %llu vs %llu\n",
                   static_cast<unsigned long long>(Seed),
                   First.Trace.size(), Second.Trace.size(),
                   static_cast<unsigned long long>(First.Merges),
                   static_cast<unsigned long long>(Second.Merges),
                   static_cast<unsigned long long>(First.Duplicates),
                   static_cast<unsigned long long>(Second.Duplicates));
      AllOk = false;
      continue;
    }
    if (Verbose) {
      std::printf("chaos seed %llu ok: %llu merges, %llu faults, "
                  "%llu dups, %llu spills",
                  static_cast<unsigned long long>(Seed),
                  static_cast<unsigned long long>(First.Merges),
                  static_cast<unsigned long long>(First.FaultsInjected),
                  static_cast<unsigned long long>(First.Duplicates),
                  static_cast<unsigned long long>(First.Spills));
      if (Base.Policy)
        std::printf(", %llu policy frames (%llu pushes, %llu applied)",
                    static_cast<unsigned long long>(First.PolicyFrames),
                    static_cast<unsigned long long>(First.PolicyPushes),
                    static_cast<unsigned long long>(First.PolicyApplied));
      std::printf("\n");
    }
  }
  return AllOk;
}

} // namespace faultinject
} // namespace ars
