//===- faultinject/Chaos.h - Seeded chaos runs over the stack ---*- C++ -*-===//
///
/// \file
/// The end-to-end chaos harness behind `arsc chaos` and
/// tests/test_faultinject.cpp: N hardened clients push distinct shards at
/// one collection server while a seeded FaultPlan drops connections,
/// tears and corrupts frames, delays ops and breaks snapshot I/O — and
/// the run still must end with the server's merged bundle BYTE-IDENTICAL
/// to the fault-free serial mergeBundle fold of every shard.  Zero lost,
/// zero double-merged: the exactly-once PUSH protocol, spill replay and
/// crash-safe snapshots are exactly the mechanisms under test.
///
/// Every run also produces a fault trace (the concatenated per-stream
/// traces, in client order).  runChaos with the same config is required
/// to reproduce the identical trace — chaosSweep checks both properties
/// for every seed.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_FAULTINJECT_CHAOS_H
#define ARS_FAULTINJECT_CHAOS_H

#include "faultinject/FaultInject.h"

#include <cstdint>
#include <string>

namespace ars {
namespace faultinject {

/// How the collection tier is wired for a chaos run.
enum class Topology {
  Direct, ///< clients push straight at the collection server
  /// clients -> relay server -> root server, with fault injection on
  /// BOTH hops: each client's transport to the relay is faulted AND the
  /// relay's upstream ProfileClient dials the root through a faulted
  /// transport.  Pushes run in joined waves and the harness flushes the
  /// relay after each wave, so every upstream delta's contents — and
  /// therefore the whole fault trace — replays deterministically.
  Relay,
};

/// The wire between pushers and the server they push at.
enum class ChaosTransport {
  Loopback, ///< in-memory pipe pair (default; runs anywhere)
  /// Shared-memory ring segments (shmem/ShmRing.h) under WorkDir/shm.
  /// Direct topology only.  This is the configuration that exercises the
  /// ring-only fault kinds (RingTear / RingAbandon) — enable them in the
  /// plan; they are inert on loopback runs (bands default to 0%).
  Shm,
};

struct ChaosConfig {
  int Clients = 6;          ///< concurrent pusher threads
  int ShardsPerClient = 12; ///< distinct shards each client pushes
  uint64_t FaultSeed = 0;   ///< the single seed the whole run replays from
  Topology Topo = Topology::Direct;
  ChaosTransport Transport = ChaosTransport::Loopback;
  FaultPlan Plan;
  /// Scratch directory for spill files and snapshots (required; the run
  /// removes its own files on entry so seeds don't contaminate each
  /// other).
  std::string WorkDir;
  int ServerWorkers = 4;
  int PushRetries = 4;    ///< client MaxRetries per push attempt round
  bool FileFaults = true; ///< run the faulted-snapshot phase
  bool CheckRecovery = true; ///< tear the snapshot, restart, re-verify
  /// Run the closed-loop policy push-down (src/policy) under fire.  The
  /// run switches to wave-structured pushes; after each joined wave the
  /// harness rotates the main server's epoch (its convergence watcher is
  /// configured to decide every epoch), broadcasts the policy table with
  /// a waited push, and the clients drain POLICY frames through their
  /// faulted transports into per-client PolicyTables.  Faults landing on
  /// POLICY frames (drops, bit flips, latency) must only ever degrade a
  /// client to its static interval — the final aggregate must still be
  /// byte-identical to the policy-free serial fold, and the fault trace,
  /// frame counts and applied policy versions must all replay.  In
  /// Topology::Relay the watcher sits at the ROOT and frames reach the
  /// leaves through the relay's forwarding path.  Loopback only.
  bool Policy = false;
  /// Kill-and-restart chaos (`arsc chaos --crash`): the ROOT server runs
  /// with a write-ahead journal, and a seeded crash schedule fires at
  /// the journal's crash points (before/after a shard append, mid
  /// segment rotation, mid checkpoint).  When a point fires the journal
  /// freezes — every later append fails, so pushes bounce with
  /// RETRY_AFTER exactly as if the process had lost its disk — and at
  /// the next wave barrier the harness kill()s the server (no drain, no
  /// farewell snapshot) and starts a fresh one over the SAME snapshot +
  /// journal paths with RecoverOnStart.  Clients keep their session ids
  /// and sequence numbers across the restart and reach the new
  /// incarnation through an indirect dialer, so their retries and spill
  /// replays run straight into the recovered dedup table.  The run must
  /// still end byte-identical to the fault-free serial fold, with the
  /// distinct merge count (merges minus journal replays, summed over
  /// incarnations) exactly ExpectedShards.  Topology::Relay keeps the
  /// relay alive (journaled relays are exactly-once for graceful stops
  /// only — DESIGN §15) and crashes the root out from under the relay's
  /// resumed deltas.  Crash runs are NOT trace-replayable — restart
  /// timing is wall-clock — so chaosSweep checks each seed once against
  /// the fold instead of twice against itself.  Incompatible with
  /// Policy.
  bool Crash = false;
};

struct ChaosReport {
  bool Ok = false;
  std::string Error; ///< first violated invariant (empty when Ok)
  std::string Trace; ///< concatenated fault traces, client order
  uint64_t ExpectedShards = 0;
  /// Merges/Duplicates of the server the CLIENTS push at (the relay in
  /// Topology::Relay) — Merges must equal ExpectedShards either way.
  uint64_t Merges = 0;
  uint64_t Duplicates = 0;
  uint64_t Spills = 0;          ///< pushes that went through the spill file
  uint64_t FaultsInjected = 0;
  /// Topology::Relay only: the root's counters.  RootMerges counts
  /// upstream delta shards (not leaf shards) and RootDuplicates the
  /// deduped retries of half-landed deltas; both must replay identically.
  uint64_t RootMerges = 0;
  uint64_t RootDuplicates = 0;
  /// ChaosConfig::Policy only; all four must replay identically.
  uint64_t PolicyPushes = 0;    ///< POLICY broadcasts (root + relay)
  uint64_t PolicyDecisions = 0; ///< watcher decision entries emitted
  uint64_t PolicyFrames = 0;    ///< frames the clients decoded intact
  uint64_t PolicyApplied = 0;   ///< sum of final applied table versions
  /// ChaosConfig::Crash only.
  uint64_t Crashes = 0;  ///< kill-and-restart cycles the root survived
  uint64_t Replayed = 0; ///< journaled shards re-applied across recoveries
};

/// One seeded run; see the file comment for the invariants checked.
ChaosReport runChaos(const ChaosConfig &C);

/// Runs seeds [0, Seeds) twice each: the second run must reproduce the
/// first's trace (replay determinism) and every run must match the
/// fault-free fold.  Prints one summary line per seed to stdout when
/// \p Verbose, failures to stderr always.  True when every seed passed.
bool chaosSweep(const ChaosConfig &Base, uint64_t Seeds, bool Verbose);

} // namespace faultinject
} // namespace ars

#endif // ARS_FAULTINJECT_CHAOS_H
