//===- telemetry/PerfGate.h - Noise-aware perf-regression gate -*- C++ -*-===//
///
/// \file
/// Diffs a bench suite run against a committed baseline and decides,
/// metric by metric, whether the delta is a regression or noise.
///
/// Threshold model: per metric the gate allows
///
///   threshold = max(MadK * 1.4826 * max(MAD_base, MAD_cur),
///                   relFloor * |median_base|)
///
/// 1.4826 * MAD is the consistent estimator of a Gaussian sigma, so
/// MadK = 4 means "flag only deltas beyond ~4 sigma of the measured
/// run-to-run noise".  The relative floor keeps deterministic metrics
/// (MAD == 0) from tripping on sub-percent arithmetic drift, and host
/// wall-clock metrics get a larger floor of their own.  Direction comes
/// from the metric itself: time/overhead regress upward, overlap and
/// throughput regress downward, "info" metrics are never gated.
///
/// Host-kind metrics are machine-dependent, so against a *committed*
/// baseline (produced on some other machine) they are reported but not
/// gated unless --gate-host is given — that flag is for same-machine
/// comparisons, e.g. the regression-injection test and local A/B runs.
///
/// A metric present in the baseline but missing from the current run is
/// always fatal: losing coverage must not read as a pass.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_TELEMETRY_PERFGATE_H
#define ARS_TELEMETRY_PERFGATE_H

#include "telemetry/BenchReport.h"

#include <string>
#include <vector>

namespace ars {
namespace telemetry {

/// Gate tuning knobs (all overridable from the perfgate command line).
struct GateOptions {
  double MadK = 4.0;          ///< sigmas of measured noise tolerated
  double RelFloorPct = 2.0;   ///< floor for sim metrics, % of baseline
  double HostRelFloorPct = 25.0; ///< floor for host metrics, % of baseline
  bool GateHost = false;      ///< gate host metrics (same-machine runs)
};

/// Per-metric outcome.
struct MetricVerdict {
  enum class Status {
    Ok,          ///< within threshold
    Improved,    ///< moved the good way by more than threshold
    Regressed,   ///< moved the bad way by more than threshold — fatal
    HostSkipped, ///< host metric beyond threshold, not gated (no
                 ///< --gate-host); reported as a warning
    Missing,     ///< in baseline, absent from current run — fatal
    New,         ///< in current run only; informational
  };

  std::string Bench;
  std::string Name;
  std::string Unit;
  Direction Dir = Direction::Info;
  MetricKind Kind = MetricKind::Sim;
  double Base = 0.0;      ///< baseline median
  double Current = 0.0;   ///< current median
  double DeltaPct = 0.0;  ///< signed change relative to baseline
  double Threshold = 0.0; ///< allowed absolute delta
  Status S = Status::Ok;
};

/// Whole-comparison outcome.
struct GateResult {
  bool Ok = true; ///< false iff any verdict is Regressed or Missing
  std::vector<MetricVerdict> Verdicts;
  size_t Regressions = 0;
  size_t Improvements = 0;
  size_t HostSkips = 0;
  size_t MissingMetrics = 0;
  size_t NewMetrics = 0;

  /// Human-readable per-metric report (regressions first, then
  /// warnings/improvements, then a summary line).
  std::string render(bool Verbose = false) const;
};

/// Compares \p Current against \p Baseline metric by metric.
GateResult compareSuites(const SuiteReport &Baseline,
                         const SuiteReport &Current,
                         const GateOptions &Opts = GateOptions());

/// The `perfgate` / `arsc bench compare` command line:
///
///   compare <baseline.json> <current.json> [--mad-k=<f>]
///     [--rel-floor=<pct>] [--host-rel-floor=<pct>] [--gate-host]
///     [--verbose]
///
/// Prints the rendered report and returns the process exit code
/// (0 pass, 1 regression, 2 usage/load error).  \p Prog names the tool
/// in diagnostics.
int runPerfGateCli(const std::vector<std::string> &Args, const char *Prog);

} // namespace telemetry
} // namespace ars

#endif // ARS_TELEMETRY_PERFGATE_H
