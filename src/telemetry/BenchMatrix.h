//===- telemetry/BenchMatrix.h - Bench binary discovery & merge -*- C++ -*-===//
///
/// \file
/// The pieces of `arsc bench` that are pure enough to unit-test: finding
/// the bench matrix (every executable named `bench_*` in the build's
/// bench directory), deriving stable bench names from binary paths, and
/// merging the per-bench JSON reports into the suite document
/// `BENCH_<sha>.json`.  Actually *running* the binaries stays in the
/// tool, where the subprocess plumbing lives.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_TELEMETRY_BENCHMATRIX_H
#define ARS_TELEMETRY_BENCHMATRIX_H

#include "telemetry/BenchReport.h"

#include <string>
#include <vector>

namespace ars {
namespace telemetry {

/// One discovered bench binary.
struct BenchBinary {
  std::string Name; ///< "table1_exhaustive" (bench_ prefix stripped)
  std::string Path; ///< full path to the executable
};

/// Scans \p Dir for executable regular files named `bench_*` and
/// returns them sorted by name, so the matrix order — and therefore the
/// merged report — is stable whatever the directory order.  An empty
/// result with a nonempty \p Error means the directory itself was
/// unreadable; an empty result with an empty \p Error means it simply
/// held no benches.
std::vector<BenchBinary> discoverBenches(const std::string &Dir,
                                         std::string *Error);

/// "path/to/bench_table1_exhaustive" -> "table1_exhaustive";
/// a basename without the bench_ prefix is returned unchanged.
std::string benchNameFromPath(const std::string &Path);

/// Merges per-bench reports (already parsed) into a suite stamped with
/// \p Sha and \p Env.  Duplicate bench names fail: two binaries writing
/// the same report name would silently shadow each other's metrics.
bool mergeReports(const std::vector<BenchReport> &Reports,
                  const std::string &Sha, const EnvFingerprint &Env,
                  SuiteReport *Out, std::string *Error);

} // namespace telemetry
} // namespace ars

#endif // ARS_TELEMETRY_BENCHMATRIX_H
