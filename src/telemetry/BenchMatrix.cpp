//===- telemetry/BenchMatrix.cpp ------------------------------*- C++ -*-===//

#include "telemetry/BenchMatrix.h"

#include "support/Support.h"

#include <algorithm>
#include <cstring>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ars {
namespace telemetry {

std::string benchNameFromPath(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  const char Prefix[] = "bench_";
  if (Base.compare(0, sizeof(Prefix) - 1, Prefix) == 0)
    return Base.substr(sizeof(Prefix) - 1);
  return Base;
}

std::vector<BenchBinary> discoverBenches(const std::string &Dir,
                                         std::string *Error) {
  std::vector<BenchBinary> Benches;
  DIR *D = opendir(Dir.c_str());
  if (!D) {
    *Error = support::formatString("cannot open bench directory %s",
                                   Dir.c_str());
    return Benches;
  }
  while (dirent *Entry = readdir(D)) {
    if (std::strncmp(Entry->d_name, "bench_", 6) != 0)
      continue;
    std::string Path = Dir + "/" + Entry->d_name;
    struct stat St;
    // Regular + executable filters out CMake droppings like
    // bench_foo.dir/ and non-built sources copied next to binaries.
    if (stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    if (access(Path.c_str(), X_OK) != 0)
      continue;
    Benches.push_back({benchNameFromPath(Path), Path});
  }
  closedir(D);
  std::sort(Benches.begin(), Benches.end(),
            [](const BenchBinary &A, const BenchBinary &B) {
              return A.Name < B.Name;
            });
  Error->clear();
  return Benches;
}

bool mergeReports(const std::vector<BenchReport> &Reports,
                  const std::string &Sha, const EnvFingerprint &Env,
                  SuiteReport *Out, std::string *Error) {
  *Out = SuiteReport();
  Out->GitSha = Sha;
  Out->Env = Env;
  for (const BenchReport &R : Reports) {
    if (R.benchName().empty()) {
      *Error = "cannot merge a report with an empty bench name";
      return false;
    }
    if (!Out->Benches.emplace(R.benchName(), R).second) {
      *Error = support::formatString(
          "duplicate bench report \"%s\" — two binaries map to one name",
          R.benchName().c_str());
      return false;
    }
  }
  return true;
}

} // namespace telemetry
} // namespace ars
