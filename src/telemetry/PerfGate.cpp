//===- telemetry/PerfGate.cpp ---------------------------------*- C++ -*-===//

#include "telemetry/PerfGate.h"

#include "support/Support.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace ars {
namespace telemetry {

namespace {

/// 1.4826 * MAD estimates a Gaussian sigma.
constexpr double MadToSigma = 1.4826;

MetricVerdict judge(const std::string &Bench, const Metric &Base,
                    const Metric &Cur, const GateOptions &Opts) {
  MetricVerdict V;
  V.Bench = Bench;
  V.Name = Base.Name;
  V.Unit = Base.Unit;
  V.Dir = Base.Dir;
  V.Kind = Base.Kind;
  V.Base = Base.Median;
  V.Current = Cur.Median;
  V.DeltaPct = support::percentOver(Base.Median, Cur.Median);

  double Noise = MadToSigma * std::max(Base.Mad, Cur.Mad);
  double FloorPct =
      Base.Kind == MetricKind::Host ? Opts.HostRelFloorPct : Opts.RelFloorPct;
  V.Threshold = std::max(Opts.MadK * Noise,
                         FloorPct / 100.0 * std::fabs(Base.Median));

  if (Base.Dir == Direction::Info) {
    V.S = MetricVerdict::Status::Ok;
    return V;
  }
  // Signed "how much worse": positive means regressing in this metric's
  // bad direction.
  double Worse = Base.Dir == Direction::LowerIsBetter
                     ? Cur.Median - Base.Median
                     : Base.Median - Cur.Median;
  if (Worse > V.Threshold)
    V.S = Base.Kind == MetricKind::Host && !Opts.GateHost
              ? MetricVerdict::Status::HostSkipped
              : MetricVerdict::Status::Regressed;
  else if (Worse < -V.Threshold)
    V.S = MetricVerdict::Status::Improved;
  else
    V.S = MetricVerdict::Status::Ok;
  return V;
}

const char *statusTag(MetricVerdict::Status S) {
  switch (S) {
  case MetricVerdict::Status::Ok:          return "ok";
  case MetricVerdict::Status::Improved:    return "IMPROVED";
  case MetricVerdict::Status::Regressed:   return "REGRESSED";
  case MetricVerdict::Status::HostSkipped: return "host-skip";
  case MetricVerdict::Status::Missing:     return "MISSING";
  case MetricVerdict::Status::New:         return "new";
  }
  return "?";
}

std::string verdictLine(const MetricVerdict &V) {
  if (V.S == MetricVerdict::Status::Missing)
    return support::formatString(
        "  %-9s %s/%s: present in baseline (%.6g %s), absent from "
        "current run\n",
        statusTag(V.S), V.Bench.c_str(), V.Name.c_str(), V.Base,
        V.Unit.c_str());
  if (V.S == MetricVerdict::Status::New)
    return support::formatString(
        "  %-9s %s/%s: %.6g %s (no baseline)\n", statusTag(V.S),
        V.Bench.c_str(), V.Name.c_str(), V.Current, V.Unit.c_str());
  return support::formatString(
      "  %-9s %s/%s [%s,%s]: %.6g -> %.6g %s (%+.2f%%, allowed "
      "|delta| %.6g)\n",
      statusTag(V.S), V.Bench.c_str(), V.Name.c_str(),
      metricKindName(V.Kind), directionName(V.Dir), V.Base, V.Current,
      V.Unit.c_str(), V.DeltaPct, V.Threshold);
}

} // namespace

GateResult compareSuites(const SuiteReport &Baseline,
                         const SuiteReport &Current,
                         const GateOptions &Opts) {
  GateResult R;
  for (const auto &[BenchName, BaseReport] : Baseline.Benches) {
    auto CurIt = Current.Benches.find(BenchName);
    for (const Metric &BaseMetric : BaseReport.metrics()) {
      const Metric *CurMetric =
          CurIt == Current.Benches.end()
              ? nullptr
              : CurIt->second.findMetric(BaseMetric.Name);
      if (!CurMetric) {
        MetricVerdict V;
        V.Bench = BenchName;
        V.Name = BaseMetric.Name;
        V.Unit = BaseMetric.Unit;
        V.Dir = BaseMetric.Dir;
        V.Kind = BaseMetric.Kind;
        V.Base = BaseMetric.Median;
        V.S = MetricVerdict::Status::Missing;
        R.Verdicts.push_back(std::move(V));
        continue;
      }
      R.Verdicts.push_back(judge(BenchName, BaseMetric, *CurMetric, Opts));
    }
  }
  // Metrics (and whole benches) that exist only in the current run.
  for (const auto &[BenchName, CurReport] : Current.Benches) {
    auto BaseIt = Baseline.Benches.find(BenchName);
    for (const Metric &CurMetric : CurReport.metrics()) {
      if (BaseIt != Baseline.Benches.end() &&
          BaseIt->second.findMetric(CurMetric.Name))
        continue;
      MetricVerdict V;
      V.Bench = BenchName;
      V.Name = CurMetric.Name;
      V.Unit = CurMetric.Unit;
      V.Dir = CurMetric.Dir;
      V.Kind = CurMetric.Kind;
      V.Current = CurMetric.Median;
      V.S = MetricVerdict::Status::New;
      R.Verdicts.push_back(std::move(V));
    }
  }

  for (const MetricVerdict &V : R.Verdicts) {
    switch (V.S) {
    case MetricVerdict::Status::Regressed:   ++R.Regressions; break;
    case MetricVerdict::Status::Improved:    ++R.Improvements; break;
    case MetricVerdict::Status::HostSkipped: ++R.HostSkips; break;
    case MetricVerdict::Status::Missing:     ++R.MissingMetrics; break;
    case MetricVerdict::Status::New:         ++R.NewMetrics; break;
    case MetricVerdict::Status::Ok:          break;
    }
  }
  R.Ok = R.Regressions == 0 && R.MissingMetrics == 0;
  return R;
}

std::string GateResult::render(bool Verbose) const {
  std::string Out;
  auto emit = [&](MetricVerdict::Status S) {
    for (const MetricVerdict &V : Verdicts)
      if (V.S == S)
        Out += verdictLine(V);
  };
  if (Regressions + MissingMetrics > 0) {
    Out += "perf gate FAILURES:\n";
    emit(MetricVerdict::Status::Regressed);
    emit(MetricVerdict::Status::Missing);
  }
  if (HostSkips > 0) {
    Out += "host-dependent deltas beyond threshold (not gated; use "
           "--gate-host for same-machine runs):\n";
    emit(MetricVerdict::Status::HostSkipped);
  }
  if (Improvements > 0) {
    Out += "improvements:\n";
    emit(MetricVerdict::Status::Improved);
  }
  if (NewMetrics > 0 && Verbose) {
    Out += "new metrics (no baseline yet):\n";
    emit(MetricVerdict::Status::New);
  }
  if (Verbose) {
    Out += "within threshold:\n";
    emit(MetricVerdict::Status::Ok);
  }
  size_t OkCount = 0;
  for (const MetricVerdict &V : Verdicts)
    if (V.S == MetricVerdict::Status::Ok)
      ++OkCount;
  Out += support::formatString(
      "perf gate: %s — %zu metric(s) compared, %zu ok, %zu regressed, "
      "%zu missing, %zu improved, %zu host-skipped, %zu new\n",
      Ok ? "PASS" : "FAIL", Verdicts.size() - NewMetrics, OkCount,
      Regressions, MissingMetrics, Improvements, HostSkips, NewMetrics);
  return Out;
}

int runPerfGateCli(const std::vector<std::string> &Args, const char *Prog) {
  auto usage = [Prog] {
    std::fprintf(
        stderr,
        "usage: %s <baseline.json> <current.json> [options]\n"
        "Diffs a bench suite run against a baseline with noise-aware\n"
        "thresholds and exits nonzero on regression.\n"
        "options:\n"
        "  --mad-k=<f>            sigmas of measured noise tolerated\n"
        "                         (default 4.0)\n"
        "  --rel-floor=<pct>      minimum relative threshold for\n"
        "                         deterministic metrics (default 2%%)\n"
        "  --host-rel-floor=<pct> minimum relative threshold for host\n"
        "                         wall-clock metrics (default 25%%)\n"
        "  --gate-host            gate host wall-clock metrics too (only\n"
        "                         meaningful against a same-machine\n"
        "                         baseline)\n"
        "  --verbose              also list metrics within threshold\n",
        Prog);
    return 2;
  };

  GateOptions Opts;
  bool Verbose = false;
  std::vector<std::string> Files;
  for (const std::string &Arg : Args) {
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--mad-k=")) {
      Opts.MadK = std::atof(V);
    } else if (const char *V = valueOf("--rel-floor=")) {
      Opts.RelFloorPct = std::atof(V);
    } else if (const char *V = valueOf("--host-rel-floor=")) {
      Opts.HostRelFloorPct = std::atof(V);
    } else if (Arg == "--gate-host") {
      Opts.GateHost = true;
    } else if (Arg == "--verbose") {
      Verbose = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return usage();
    } else {
      Files.push_back(Arg);
    }
  }
  if (Files.size() != 2)
    return usage();

  SuiteReport Baseline, Current;
  std::string Error;
  if (!SuiteReport::loadFile(Files[0], &Baseline, &Error)) {
    std::fprintf(stderr, "%s: %s\n", Prog, Error.c_str());
    return 2;
  }
  if (!SuiteReport::loadFile(Files[1], &Current, &Error)) {
    std::fprintf(stderr, "%s: %s\n", Prog, Error.c_str());
    return 2;
  }
  if (Baseline.Env.ScalePct != Current.Env.ScalePct)
    std::fprintf(stderr,
                 "%s: warning: baseline ran at --scale=%d but current at "
                 "--scale=%d; deterministic metrics will differ for scale "
                 "reasons, not regressions\n",
                 Prog, Baseline.Env.ScalePct, Current.Env.ScalePct);

  GateResult R = compareSuites(Baseline, Current, Opts);
  std::fputs(R.render(Verbose).c_str(), stdout);
  return R.Ok ? 0 : 1;
}

} // namespace telemetry
} // namespace ars
