//===- telemetry/BenchReport.h - Machine-readable bench results -*- C++ -*-===//
///
/// \file
/// The benchmark telemetry data model.  Every bench binary routes its
/// headline numbers through a BenchReport next to the human tables it
/// already prints: each metric carries a unit, a regression *direction*
/// (time and overhead regress upward, overlap and throughput regress
/// downward), a *kind* separating deterministic simulated-cycle numbers
/// from host wall-clock ones, and repetition statistics (min / median /
/// MAD) so the perf gate can scale its thresholds to measured noise
/// instead of guessing.
///
/// Reports serialize to versioned JSON (schema "ars-bench-v1"); `arsc
/// bench` merges the per-bench files into one suite document
/// (`BENCH_<sha>.json`, schema "ars-bench-suite-v1") stamped with an
/// environment fingerprint — compiler, build flags, host, git sha — so
/// a number can always be traced to the build that produced it.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_TELEMETRY_BENCHREPORT_H
#define ARS_TELEMETRY_BENCHREPORT_H

#include <map>
#include <string>
#include <vector>

namespace ars {
namespace telemetry {

/// Report schema version; bumped on any incompatible layout change.
constexpr int ReportSchemaVersion = 1;

/// Schema tags embedded in the documents.
extern const char BenchSchemaName[];  ///< "ars-bench-v1"
extern const char SuiteSchemaName[];  ///< "ars-bench-suite-v1"

/// Which way a metric regresses.
enum class Direction {
  LowerIsBetter,  ///< times, overhead %, bytes/entry: regress upward
  HigherIsBetter, ///< overlap %, throughput: regress downward
  Info,           ///< counts recorded for the record; never gated
};

/// Where a metric's numbers come from.
enum class MetricKind {
  Sim,  ///< deterministic simulated-cycle data: identical on every host
  Host, ///< host wall-clock data: machine-dependent, gated only
        ///< against same-host baselines (perfgate --gate-host)
};

const char *directionName(Direction D);
const char *metricKindName(MetricKind K);
bool parseDirection(const std::string &Name, Direction *Out);
bool parseMetricKind(const std::string &Name, MetricKind *Out);

/// One measured quantity with its repetition statistics.  Deterministic
/// metrics have Reps == 1 and Mad == 0; host-timed metrics aggregate
/// >= 5 repetitions through addHostMetric().
struct Metric {
  std::string Name;
  std::string Unit; ///< "pct", "ms", "insts", "B/entry", "bundles/s", ...
  Direction Dir = Direction::LowerIsBetter;
  MetricKind Kind = MetricKind::Sim;
  int Reps = 1;
  double Min = 0.0;
  double Median = 0.0;
  double Mad = 0.0; ///< median absolute deviation around Median
};

/// Median of \p Values (mean of the middle pair for even sizes);
/// 0 for an empty vector.
double median(std::vector<double> Values);

/// Median absolute deviation of \p Values around their median.
double medianAbsDeviation(const std::vector<double> &Values);

/// Build/host provenance stamped into every report.
struct EnvFingerprint {
  std::string Compiler; ///< __VERSION__ of the building compiler
  std::string Flags;    ///< build flavour (ARS_BUILD_FLAVOR or "unknown")
  std::string Host;     ///< uname sysname/machine
  std::string GitSha;   ///< ARS_GIT_SHA env, else `git rev-parse`, else "nogit"
  int ScalePct = 100;   ///< bench --scale in effect
  int Jobs = 1;         ///< bench --jobs in effect
};

/// Captures the environment of the current process.  \p ScalePct and
/// \p Jobs come from the bench command line.
EnvFingerprint captureEnv(int ScalePct, int Jobs);

/// The git revision for report stamping: $ARS_GIT_SHA if set, else
/// `git rev-parse --short=12 HEAD`, else "nogit".
std::string gitSha();

/// One bench binary's results.
class BenchReport {
public:
  BenchReport() = default;
  explicit BenchReport(std::string BenchName, EnvFingerprint Env = {})
      : Name(std::move(BenchName)), Env(std::move(Env)) {}

  const std::string &benchName() const { return Name; }
  void setBenchName(std::string N) { Name = std::move(N); }
  const EnvFingerprint &env() const { return Env; }
  void setEnv(EnvFingerprint E) { Env = std::move(E); }

  const std::vector<Metric> &metrics() const { return Metrics; }
  const Metric *findMetric(const std::string &MetricName) const;

  /// Records a deterministic (simulated-cycle) value: one rep, zero MAD.
  void addSimMetric(const std::string &MetricName, const std::string &Unit,
                    Direction Dir, double Value);

  /// Records a host wall-clock metric from repeated measurements,
  /// computing min/median/MAD over \p Samples.
  void addHostMetric(const std::string &MetricName, const std::string &Unit,
                     Direction Dir, const std::vector<double> &Samples);

  /// Full-control insert (parser and tests).
  void addMetric(Metric M) { Metrics.push_back(std::move(M)); }

  /// Serializes to schema-"ars-bench-v1" JSON.
  std::string toJson() const;

  /// Parses a report; returns false with a diagnostic on malformed input
  /// or an unknown schema/version.
  static bool fromJson(const std::string &Text, BenchReport *Out,
                       std::string *Error);

  /// Writes toJson() to \p Path (truncating).  False + diagnostic on IO
  /// failure.
  bool writeFile(const std::string &Path, std::string *Error) const;

private:
  std::string Name;
  EnvFingerprint Env;
  std::vector<Metric> Metrics;
};

/// The merged per-PR document: every bench's report under one git sha.
struct SuiteReport {
  std::string GitSha;
  EnvFingerprint Env;                       ///< the merging process's env
  std::map<std::string, BenchReport> Benches; ///< keyed by bench name

  /// Serializes to schema-"ars-bench-suite-v1" JSON.
  std::string toJson() const;

  /// Parses either a suite document or — for convenience so perfgate can
  /// diff two single-bench files — a bare bench report (wrapped as a
  /// one-bench suite).
  static bool fromJson(const std::string &Text, SuiteReport *Out,
                       std::string *Error);

  /// Loads fromJson() from \p Path.
  static bool loadFile(const std::string &Path, SuiteReport *Out,
                       std::string *Error);
};

} // namespace telemetry
} // namespace ars

#endif // ARS_TELEMETRY_BENCHREPORT_H
