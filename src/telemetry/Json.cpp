//===- telemetry/Json.cpp -------------------------------------*- C++ -*-===//

#include "telemetry/Json.h"

#include "support/Support.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace ars {
namespace telemetry {

Json Json::boolean(bool V) {
  Json J;
  J.K = Kind::Bool;
  J.Flag = V;
  return J;
}

Json Json::number(double V) {
  Json J;
  J.K = Kind::Number;
  J.Num = V;
  return J;
}

Json Json::str(std::string V) {
  Json J;
  J.K = Kind::String;
  J.Text = std::move(V);
  return J;
}

Json Json::array() {
  Json J;
  J.K = Kind::Array;
  return J;
}

Json Json::object() {
  Json J;
  J.K = Kind::Object;
  return J;
}

void Json::set(const std::string &Key, Json V) {
  for (auto &[K2, V2] : Members)
    if (K2 == Key) {
      V2 = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const Json *Json::find(const std::string &Key) const {
  for (const auto &[K2, V2] : Members)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

double Json::numberAt(const std::string &Key, double Default) const {
  const Json *V = find(Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string Json::stringAt(const std::string &Key,
                           const std::string &Default) const {
  const Json *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

std::string escapeJsonString(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 8);
  for (unsigned char C : Text) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b";  break;
    case '\f': Out += "\\f";  break;
    case '\n': Out += "\\n";  break;
    case '\r': Out += "\\r";  break;
    case '\t': Out += "\\t";  break;
    default:
      if (C < 0x20)
        Out += support::formatString("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

namespace {

void writeNumber(std::string &Out, double V) {
  // Integral values print without an exponent or trailing ".0" so counts
  // stay greppable; everything else gets round-trip precision.
  if (std::floor(V) == V && std::fabs(V) < 1e15) {
    Out += support::formatString("%.0f", V);
    return;
  }
  Out += support::formatString("%.17g", V);
}

void indentTo(std::string &Out, int Indent, int Depth) {
  if (Indent > 0) {
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * Depth, ' ');
  }
}

} // namespace

void Json::writeTo(std::string &Out, int Indent, int Depth) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += Flag ? "true" : "false";
    return;
  case Kind::Number:
    writeNumber(Out, Num);
    return;
  case Kind::String:
    Out += '"';
    Out += escapeJsonString(Text);
    Out += '"';
    return;
  case Kind::Array: {
    if (Items.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (size_t I = 0; I != Items.size(); ++I) {
      if (I)
        Out += ',';
      indentTo(Out, Indent, Depth + 1);
      Items[I].writeTo(Out, Indent, Depth + 1);
    }
    indentTo(Out, Indent, Depth);
    Out += ']';
    return;
  }
  case Kind::Object: {
    if (Members.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    for (size_t I = 0; I != Members.size(); ++I) {
      if (I)
        Out += ',';
      indentTo(Out, Indent, Depth + 1);
      Out += '"';
      Out += escapeJsonString(Members[I].first);
      Out += Indent > 0 ? "\": " : "\":";
      Members[I].second.writeTo(Out, Indent, Depth + 1);
    }
    indentTo(Out, Indent, Depth);
    Out += '}';
    return;
  }
  }
}

std::string Json::write(int Indent) const {
  std::string Out;
  writeTo(Out, Indent, 0);
  if (Indent > 0)
    Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Strict recursive-descent parser over the input buffer.  Depth-limited
/// so a pathological file cannot overflow the stack.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  JsonParseResult run() {
    JsonParseResult R;
    skipWs();
    if (!parseValue(R.Value, 0)) {
      R.Error = Error;
      return R;
    }
    skipWs();
    if (Pos != Text.size()) {
      R.Error = support::formatString(
          "trailing characters after JSON value at offset %zu", Pos);
      return R;
    }
    R.Ok = true;
    return R;
  }

private:
  static constexpr int MaxDepth = 64;

  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  bool fail(const std::string &Why) {
    if (Error.empty())
      Error = support::formatString("%s at offset %zu", Why.c_str(), Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(support::formatString("expected \"%s\"", Word));
    Pos += Len;
    return true;
  }

  bool parseValue(Json &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = Json::null();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Json::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::str(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseArray(Json &Out, int Depth) {
    ++Pos; // '['
    Out = Json::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Json Item;
      skipWs();
      if (!parseValue(Item, Depth + 1))
        return false;
      Out.push(std::move(Item));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(Json &Out, int Depth) {
    ++Pos; // '{'
    Out = Json::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected string key in object");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      Json Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Out.set(Key, std::move(Value));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool hexNibble(char C, uint32_t *Out) {
    if (C >= '0' && C <= '9')
      *Out = static_cast<uint32_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      *Out = static_cast<uint32_t>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      *Out = static_cast<uint32_t>(C - 'A' + 10);
    else
      return false;
    return true;
  }

  bool parseEscape(std::string &Out) {
    if (Pos >= Text.size())
      return fail("unterminated escape");
    char C = Text[Pos++];
    switch (C) {
    case '"':  Out += '"';  return true;
    case '\\': Out += '\\'; return true;
    case '/':  Out += '/';  return true;
    case 'b':  Out += '\b'; return true;
    case 'f':  Out += '\f'; return true;
    case 'n':  Out += '\n'; return true;
    case 'r':  Out += '\r'; return true;
    case 't':  Out += '\t'; return true;
    case 'u': {
      if (Pos + 4 > Text.size())
        return fail("truncated \\u escape");
      uint32_t Code = 0;
      for (int I = 0; I != 4; ++I) {
        uint32_t Nibble;
        if (!hexNibble(Text[Pos + static_cast<size_t>(I)], &Nibble))
          return fail("bad hex digit in \\u escape");
        Code = Code << 4 | Nibble;
      }
      Pos += 4;
      // Encode the code point as UTF-8.  Surrogate pairs are not joined —
      // the writer never emits them (it only \u-escapes control bytes) —
      // but lone surrogates still round-trip as their raw encoding.
      if (Code < 0x80) {
        Out += static_cast<char>(Code);
      } else if (Code < 0x800) {
        Out += static_cast<char>(0xC0 | (Code >> 6));
        Out += static_cast<char>(0x80 | (Code & 0x3F));
      } else {
        Out += static_cast<char>(0xE0 | (Code >> 12));
        Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
        Out += static_cast<char>(0x80 | (Code & 0x3F));
      }
      return true;
    }
    default:
      --Pos;
      return fail("bad escape character");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (!parseEscape(Out))
          return false;
        continue;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      Out += static_cast<char>(C);
      ++Pos;
    }
  }

  bool parseNumber(Json &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() ||
        !(Text[Pos] >= '0' && Text[Pos] <= '9'))
      return fail("bad JSON value");
    if (Text[Pos] == '0') {
      // JSON forbids leading zeros: "01" is two tokens, i.e. garbage.
      ++Pos;
      if (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        return fail("leading zero in number");
    } else {
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
        return fail("digit required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
        return fail("digit required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    double V = std::strtod(Text.c_str() + Start, nullptr);
    if (!std::isfinite(V))
      return fail("number out of range");
    Out = Json::number(V);
    return true;
  }
};

} // namespace

JsonParseResult parseJson(const std::string &Text) {
  return Parser(Text).run();
}

} // namespace telemetry
} // namespace ars
