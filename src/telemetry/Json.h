//===- telemetry/Json.h - Minimal JSON tree, writer, parser ---*- C++ -*-===//
///
/// \file
/// A tiny self-contained JSON layer for the benchmark telemetry
/// subsystem: a value tree, a writer with full string escaping, and a
/// strict recursive-descent parser.  No external dependency — the repo
/// rule is to vendor nothing — and no DOM cleverness: objects keep
/// insertion order so emitted reports diff cleanly in version control,
/// and numbers are written with enough digits ("%.17g") to round-trip
/// IEEE doubles bit-for-bit through parse(write(x)).
///
/// The writer/parser pair is the wire format of `BENCH_<sha>.json` and
/// `bench/baselines/`; its escaping and round-trip behaviour are pinned
/// by tests/test_telemetry.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_TELEMETRY_JSON_H
#define ARS_TELEMETRY_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ars {
namespace telemetry {

/// One JSON value.  Objects preserve insertion order (a vector of
/// key/value pairs); lookup is linear, which is fine at report sizes
/// (tens of benches x tens of metrics).
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}
  static Json null() { return Json(); }
  static Json boolean(bool V);
  static Json number(double V);
  static Json str(std::string V);
  static Json array();
  static Json object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Flag; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Text; }

  /// Array access.
  const std::vector<Json> &items() const { return Items; }
  void push(Json V) { Items.push_back(std::move(V)); }

  /// Object access.
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }
  /// Sets \p Key (replacing an existing member of the same name so a
  /// set() loop cannot grow duplicates).
  void set(const std::string &Key, Json V);
  /// Member lookup; null when absent.
  const Json *find(const std::string &Key) const;

  /// Typed convenience getters for the report schema: return the default
  /// when the key is missing or of the wrong kind.
  double numberAt(const std::string &Key, double Default = 0.0) const;
  std::string stringAt(const std::string &Key,
                       const std::string &Default = std::string()) const;

  /// Renders the tree.  \p Indent > 0 pretty-prints with that many
  /// spaces per level (the style committed under bench/baselines/);
  /// 0 renders compact single-line JSON.
  std::string write(int Indent = 2) const;

private:
  Kind K;
  bool Flag = false;
  double Num = 0.0;
  std::string Text;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Members;

  void writeTo(std::string &Out, int Indent, int Depth) const;
};

/// Escapes \p Text as the *contents* of a JSON string literal
/// (quotes, backslashes, and control characters; UTF-8 passes through).
std::string escapeJsonString(const std::string &Text);

/// Outcome of a parse.
struct JsonParseResult {
  bool Ok = false;
  std::string Error; ///< diagnostic with byte offset when !Ok
  Json Value;
};

/// Parses \p Text as one JSON document.  Strict: rejects trailing
/// garbage, unterminated literals, bad escapes, and numbers JSON does
/// not allow (NaN/Inf) — a truncated or hand-mangled report must fail
/// loudly in the perf gate, never read as zeros.
JsonParseResult parseJson(const std::string &Text);

} // namespace telemetry
} // namespace ars

#endif // ARS_TELEMETRY_JSON_H
