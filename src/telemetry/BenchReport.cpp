//===- telemetry/BenchReport.cpp ------------------------------*- C++ -*-===//

#include "telemetry/BenchReport.h"

#include "telemetry/Json.h"
#include "support/Support.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sys/utsname.h>

namespace ars {
namespace telemetry {

const char BenchSchemaName[] = "ars-bench-v1";
const char SuiteSchemaName[] = "ars-bench-suite-v1";

const char *directionName(Direction D) {
  switch (D) {
  case Direction::LowerIsBetter:  return "lower";
  case Direction::HigherIsBetter: return "higher";
  case Direction::Info:           return "info";
  }
  return "info";
}

const char *metricKindName(MetricKind K) {
  return K == MetricKind::Sim ? "sim" : "host";
}

bool parseDirection(const std::string &Name, Direction *Out) {
  if (Name == "lower")  { *Out = Direction::LowerIsBetter;  return true; }
  if (Name == "higher") { *Out = Direction::HigherIsBetter; return true; }
  if (Name == "info")   { *Out = Direction::Info;           return true; }
  return false;
}

bool parseMetricKind(const std::string &Name, MetricKind *Out) {
  if (Name == "sim")  { *Out = MetricKind::Sim;  return true; }
  if (Name == "host") { *Out = MetricKind::Host; return true; }
  return false;
}

double median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t Mid = Values.size() / 2;
  if (Values.size() % 2)
    return Values[Mid];
  return (Values[Mid - 1] + Values[Mid]) / 2.0;
}

double medianAbsDeviation(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double Center = median(Values);
  std::vector<double> Deviations;
  Deviations.reserve(Values.size());
  for (double V : Values)
    Deviations.push_back(std::fabs(V - Center));
  return median(std::move(Deviations));
}

EnvFingerprint captureEnv(int ScalePct, int Jobs) {
  EnvFingerprint Env;
  Env.Compiler = __VERSION__;
#ifdef ARS_BUILD_FLAVOR
  Env.Flags = ARS_BUILD_FLAVOR;
#else
  Env.Flags = "unknown";
#endif
  struct utsname U;
  if (uname(&U) == 0)
    Env.Host = support::formatString("%s %s", U.sysname, U.machine);
  else
    Env.Host = "unknown";
  Env.GitSha = gitSha();
  Env.ScalePct = ScalePct;
  Env.Jobs = Jobs;
  return Env;
}

std::string gitSha() {
  if (const char *Sha = std::getenv("ARS_GIT_SHA"))
    if (*Sha)
      return Sha;
  // Benches run from arbitrary build directories; ask git itself rather
  // than guessing at a .git path.
  if (FILE *Pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char Buf[64] = {0};
    size_t Got = fread(Buf, 1, sizeof(Buf) - 1, Pipe);
    int Status = pclose(Pipe);
    std::string Sha(Buf, Got);
    while (!Sha.empty() && (Sha.back() == '\n' || Sha.back() == '\r'))
      Sha.pop_back();
    if (Status == 0 && !Sha.empty() &&
        Sha.find_first_not_of("0123456789abcdef") == std::string::npos) {
      // A bare sha claims "this tree IS that commit"; uncommitted edits
      // make that a lie, and baseline comparisons against such a run
      // are untraceable.  Mark it.
      if (FILE *DirtyPipe =
              popen("git status --porcelain 2>/dev/null", "r")) {
        char DirtyBuf[8] = {0};
        size_t DirtyGot =
            fread(DirtyBuf, 1, sizeof(DirtyBuf) - 1, DirtyPipe);
        int DirtyStatus = pclose(DirtyPipe);
        if (DirtyStatus == 0 && DirtyGot > 0)
          Sha += "-dirty";
      }
      return Sha;
    }
  }
  return "nogit";
}

//===----------------------------------------------------------------------===//
// BenchReport
//===----------------------------------------------------------------------===//

const Metric *BenchReport::findMetric(const std::string &MetricName) const {
  for (const Metric &M : Metrics)
    if (M.Name == MetricName)
      return &M;
  return nullptr;
}

void BenchReport::addSimMetric(const std::string &MetricName,
                               const std::string &Unit, Direction Dir,
                               double Value) {
  Metric M;
  M.Name = MetricName;
  M.Unit = Unit;
  M.Dir = Dir;
  M.Kind = MetricKind::Sim;
  M.Reps = 1;
  M.Min = M.Median = Value;
  M.Mad = 0.0;
  Metrics.push_back(std::move(M));
}

void BenchReport::addHostMetric(const std::string &MetricName,
                                const std::string &Unit, Direction Dir,
                                const std::vector<double> &Samples) {
  Metric M;
  M.Name = MetricName;
  M.Unit = Unit;
  M.Dir = Dir;
  M.Kind = MetricKind::Host;
  M.Reps = static_cast<int>(Samples.size());
  M.Min = Samples.empty()
              ? 0.0
              : *std::min_element(Samples.begin(), Samples.end());
  M.Median = median(Samples);
  M.Mad = medianAbsDeviation(Samples);
  Metrics.push_back(std::move(M));
}

namespace {

Json envToJson(const EnvFingerprint &Env) {
  Json J = Json::object();
  J.set("compiler", Json::str(Env.Compiler));
  J.set("flags", Json::str(Env.Flags));
  J.set("host", Json::str(Env.Host));
  J.set("gitSha", Json::str(Env.GitSha));
  J.set("scalePct", Json::number(Env.ScalePct));
  J.set("jobs", Json::number(Env.Jobs));
  return J;
}

EnvFingerprint envFromJson(const Json &J) {
  EnvFingerprint Env;
  Env.Compiler = J.stringAt("compiler", "unknown");
  Env.Flags = J.stringAt("flags", "unknown");
  Env.Host = J.stringAt("host", "unknown");
  Env.GitSha = J.stringAt("gitSha", "nogit");
  Env.ScalePct = static_cast<int>(J.numberAt("scalePct", 100));
  Env.Jobs = static_cast<int>(J.numberAt("jobs", 1));
  return Env;
}

Json metricToJson(const Metric &M) {
  Json J = Json::object();
  J.set("name", Json::str(M.Name));
  J.set("unit", Json::str(M.Unit));
  J.set("direction", Json::str(directionName(M.Dir)));
  J.set("kind", Json::str(metricKindName(M.Kind)));
  J.set("reps", Json::number(M.Reps));
  J.set("min", Json::number(M.Min));
  J.set("median", Json::number(M.Median));
  J.set("mad", Json::number(M.Mad));
  return J;
}

bool metricFromJson(const Json &J, Metric *Out, std::string *Error) {
  if (!J.isObject()) {
    *Error = "metric entry is not an object";
    return false;
  }
  Out->Name = J.stringAt("name");
  if (Out->Name.empty()) {
    *Error = "metric with empty or missing name";
    return false;
  }
  Out->Unit = J.stringAt("unit");
  if (!parseDirection(J.stringAt("direction", "info"), &Out->Dir)) {
    *Error = support::formatString("metric %s: unknown direction \"%s\"",
                                   Out->Name.c_str(),
                                   J.stringAt("direction").c_str());
    return false;
  }
  if (!parseMetricKind(J.stringAt("kind", "sim"), &Out->Kind)) {
    *Error = support::formatString("metric %s: unknown kind \"%s\"",
                                   Out->Name.c_str(),
                                   J.stringAt("kind").c_str());
    return false;
  }
  Out->Reps = static_cast<int>(J.numberAt("reps", 1));
  Out->Min = J.numberAt("min");
  Out->Median = J.numberAt("median");
  Out->Mad = J.numberAt("mad");
  return true;
}

Json reportToJson(const BenchReport &R) {
  Json J = Json::object();
  J.set("schema", Json::str(BenchSchemaName));
  J.set("schemaVersion", Json::number(ReportSchemaVersion));
  J.set("bench", Json::str(R.benchName()));
  J.set("env", envToJson(R.env()));
  Json Metrics = Json::array();
  for (const Metric &M : R.metrics())
    Metrics.push(metricToJson(M));
  J.set("metrics", std::move(Metrics));
  return J;
}

bool reportFromJson(const Json &J, BenchReport *Out, std::string *Error) {
  if (!J.isObject()) {
    *Error = "bench report is not a JSON object";
    return false;
  }
  if (J.stringAt("schema") != BenchSchemaName) {
    *Error = support::formatString("unknown bench report schema \"%s\"",
                                   J.stringAt("schema").c_str());
    return false;
  }
  if (static_cast<int>(J.numberAt("schemaVersion")) != ReportSchemaVersion) {
    *Error = support::formatString(
        "unsupported bench report schemaVersion %g (want %d)",
        J.numberAt("schemaVersion"), ReportSchemaVersion);
    return false;
  }
  Out->setBenchName(J.stringAt("bench"));
  if (Out->benchName().empty()) {
    *Error = "bench report with empty or missing bench name";
    return false;
  }
  if (const Json *Env = J.find("env"))
    Out->setEnv(envFromJson(*Env));
  const Json *Metrics = J.find("metrics");
  if (!Metrics || !Metrics->isArray()) {
    *Error = "bench report without a metrics array";
    return false;
  }
  for (const Json &Entry : Metrics->items()) {
    Metric M;
    if (!metricFromJson(Entry, &M, Error))
      return false;
    Out->addMetric(std::move(M));
  }
  return true;
}

} // namespace

std::string BenchReport::toJson() const { return reportToJson(*this).write(); }

bool BenchReport::fromJson(const std::string &Text, BenchReport *Out,
                           std::string *Error) {
  JsonParseResult R = parseJson(Text);
  if (!R.Ok) {
    *Error = R.Error;
    return false;
  }
  *Out = BenchReport();
  return reportFromJson(R.Value, Out, Error);
}

bool BenchReport::writeFile(const std::string &Path,
                            std::string *Error) const {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    *Error = support::formatString("cannot open %s for writing",
                                   Path.c_str());
    return false;
  }
  std::string Text = toJson();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok) {
    *Error = support::formatString("short write to %s", Path.c_str());
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SuiteReport
//===----------------------------------------------------------------------===//

std::string SuiteReport::toJson() const {
  Json J = Json::object();
  J.set("schema", Json::str(SuiteSchemaName));
  J.set("schemaVersion", Json::number(ReportSchemaVersion));
  J.set("gitSha", Json::str(GitSha));
  J.set("env", envToJson(Env));
  Json BenchesJson = Json::object();
  for (const auto &[Name, Report] : Benches)
    BenchesJson.set(Name, reportToJson(Report));
  J.set("benches", std::move(BenchesJson));
  return J.write();
}

bool SuiteReport::fromJson(const std::string &Text, SuiteReport *Out,
                           std::string *Error) {
  JsonParseResult R = parseJson(Text);
  if (!R.Ok) {
    *Error = R.Error;
    return false;
  }
  *Out = SuiteReport();
  const Json &J = R.Value;
  if (!J.isObject()) {
    *Error = "suite report is not a JSON object";
    return false;
  }
  // A bare single-bench report wraps into a one-bench suite, so perfgate
  // can also diff two per-bench files directly.
  if (J.stringAt("schema") == BenchSchemaName) {
    BenchReport Single;
    if (!reportFromJson(J, &Single, Error))
      return false;
    Out->GitSha = Single.env().GitSha;
    Out->Env = Single.env();
    std::string Name = Single.benchName();
    Out->Benches.emplace(Name, std::move(Single));
    return true;
  }
  if (J.stringAt("schema") != SuiteSchemaName) {
    *Error = support::formatString("unknown suite schema \"%s\"",
                                   J.stringAt("schema").c_str());
    return false;
  }
  if (static_cast<int>(J.numberAt("schemaVersion")) != ReportSchemaVersion) {
    *Error = support::formatString(
        "unsupported suite schemaVersion %g (want %d)",
        J.numberAt("schemaVersion"), ReportSchemaVersion);
    return false;
  }
  Out->GitSha = J.stringAt("gitSha", "nogit");
  if (const Json *Env = J.find("env"))
    Out->Env = envFromJson(*Env);
  const Json *BenchesJson = J.find("benches");
  if (!BenchesJson || !BenchesJson->isObject()) {
    *Error = "suite report without a benches object";
    return false;
  }
  for (const auto &[Name, Entry] : BenchesJson->members()) {
    BenchReport Report;
    if (!reportFromJson(Entry, &Report, Error)) {
      *Error = support::formatString("bench \"%s\": %s", Name.c_str(),
                                     Error->c_str());
      return false;
    }
    Out->Benches.emplace(Name, std::move(Report));
  }
  return true;
}

bool SuiteReport::loadFile(const std::string &Path, SuiteReport *Out,
                           std::string *Error) {
  FILE *F = std::fopen(Path.c_str(), "r");
  if (!F) {
    *Error = support::formatString("cannot open %s", Path.c_str());
    return false;
  }
  std::string Text;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, Got);
  std::fclose(F);
  if (!fromJson(Text, Out, Error)) {
    *Error = support::formatString("%s: %s", Path.c_str(), Error->c_str());
    return false;
  }
  return true;
}

} // namespace telemetry
} // namespace ars
