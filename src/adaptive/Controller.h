//===- adaptive/Controller.h - Selective-optimization controller -*- C++-*-===//
///
/// \file
/// The consumer the paper builds its framework for: an adaptive
/// optimization controller (in the style of the Jalapeno adaptive system,
/// the paper's reference [5]) that uses sampled profiles collected online
/// to pick recompilation candidates.
///
/// The controller models invocation-level adaptation:
///
///  1. a profiled run executes the program under the sampling framework
///     with call-edge instrumentation;
///  2. functions above a hotness threshold (fraction of profiled entries)
///     are selected for "recompilation";
///  3. a deployed run executes with those functions under an optimized
///     cost scale (the simulation of higher-opt-level code).
///
/// The interesting measurements — produced by runAdaptiveScenario and
/// exercised in the tests and the adaptive_jit example — are (a) the
/// speedup of the deployed run, (b) how close the sampled selection is to
/// the selection an exhaustive profile would have made, and (c) how much
/// cheaper the sampled profiling phase was.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_ADAPTIVE_CONTROLLER_H
#define ARS_ADAPTIVE_CONTROLLER_H

#include "harness/Experiment.h"

#include <map>
#include <vector>

namespace ars {
namespace adaptive {

/// Controller tuning.
struct ControllerConfig {
  /// Sampling configuration of the profiled run.
  int64_t SampleInterval = 1000;
  /// A function is hot when it receives at least this percentage of the
  /// profiled method entries.
  double HotThresholdPct = 5.0;
  /// Upper bound on recompilations (the paper: optimizing everything does
  /// not pay off for short-running programs).
  int MaxOptimized = 4;
  /// Cost scale of recompiled code, in percent of the baseline model.
  uint32_t OptimizedCostPct = 70;
};

/// What the controller decided and what it bought.
struct AdaptiveOutcome {
  bool Ok = false;
  std::string Error;

  std::vector<int> HotFunctions;      ///< chosen from the sampled profile
  std::vector<int> OracleFunctions;   ///< chosen from an exhaustive profile
  /// Per-function entry share (percent) in the exhaustive profile; lets
  /// callers judge sampled picks without rank-tie artifacts.
  std::map<int, double> OracleShares;
  uint64_t BaselineCycles = 0;        ///< uninstrumented, unoptimized
  uint64_t ProfiledRunCycles = 0;     ///< sampling-framework run
  uint64_t ExhaustiveRunCycles = 0;   ///< exhaustive-instrumentation run
  uint64_t DeployedCycles = 0;        ///< optimized re-run

  /// Percent overhead of the profiling phase relative to baseline.
  double profilingOverheadPct() const;
  /// Percent speedup of the deployed run relative to baseline.
  double speedupPct() const;
  /// |sampled selection ∩ oracle selection| / |oracle selection|.
  double selectionAgreement() const;
};

/// Picks hot functions from a call-edge profile: functions whose entry
/// share is at least \p ThresholdPct, best first, at most \p MaxCount.
std::vector<int> selectHotFunctions(const profile::CallEdgeProfile &P,
                                    double ThresholdPct, int MaxCount);

/// Runs the full profile -> select -> recompile -> deploy scenario.
AdaptiveOutcome runAdaptiveScenario(const harness::Program &P,
                                    int64_t ScaleArg,
                                    const ControllerConfig &Config);

} // namespace adaptive
} // namespace ars

#endif // ARS_ADAPTIVE_CONTROLLER_H
