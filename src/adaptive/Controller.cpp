//===- adaptive/Controller.cpp --------------------------------*- C++ -*-===//

#include "adaptive/Controller.h"

#include "instr/Clients.h"
#include "support/Support.h"

#include <algorithm>
#include <map>

namespace ars {
namespace adaptive {

double AdaptiveOutcome::profilingOverheadPct() const {
  return support::percentOver(static_cast<double>(BaselineCycles),
                              static_cast<double>(ProfiledRunCycles));
}

double AdaptiveOutcome::speedupPct() const {
  return -support::percentOver(static_cast<double>(BaselineCycles),
                               static_cast<double>(DeployedCycles));
}

double AdaptiveOutcome::selectionAgreement() const {
  if (OracleFunctions.empty())
    return HotFunctions.empty() ? 1.0 : 0.0;
  size_t Agree = 0;
  for (int F : OracleFunctions)
    if (std::find(HotFunctions.begin(), HotFunctions.end(), F) !=
        HotFunctions.end())
      ++Agree;
  return static_cast<double>(Agree) /
         static_cast<double>(OracleFunctions.size());
}

std::vector<int> selectHotFunctions(const profile::CallEdgeProfile &P,
                                    double ThresholdPct, int MaxCount) {
  std::map<int, uint64_t> EntriesPerFunc;
  for (const auto &[Key, Count] : P.counts())
    EntriesPerFunc[Key.Callee] += Count;

  std::vector<std::pair<int, uint64_t>> Ranked(EntriesPerFunc.begin(),
                                               EntriesPerFunc.end());
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });

  std::vector<int> Hot;
  double Total = static_cast<double>(P.total());
  for (const auto &[Func, Count] : Ranked) {
    if (MaxCount >= 0 && static_cast<int>(Hot.size()) >= MaxCount)
      break;
    if (Total <= 0 ||
        100.0 * static_cast<double>(Count) / Total < ThresholdPct)
      break;
    Hot.push_back(Func);
  }
  return Hot;
}

AdaptiveOutcome runAdaptiveScenario(const harness::Program &P,
                                    int64_t ScaleArg,
                                    const ControllerConfig &Config) {
  AdaptiveOutcome Out;
  instr::CallEdgeInstrumentation CallEdges;

  // Baseline: what users see before the controller does anything.
  harness::ExperimentResult Base = harness::runBaseline(P, ScaleArg);
  if (!Base.Stats.Ok) {
    Out.Error = Base.Stats.Error;
    return Out;
  }
  Out.BaselineCycles = Base.Stats.Cycles;

  // Profiled run with the sampling framework.
  harness::RunConfig Sampled;
  Sampled.Transform.M = sampling::Mode::FullDuplication;
  Sampled.Clients = {&CallEdges};
  Sampled.Engine.SampleInterval = Config.SampleInterval;
  harness::ExperimentResult Profiled =
      harness::runExperiment(P, ScaleArg, Sampled);
  if (!Profiled.Stats.Ok) {
    Out.Error = Profiled.Stats.Error;
    return Out;
  }
  Out.ProfiledRunCycles = Profiled.Stats.Cycles;
  Out.HotFunctions = selectHotFunctions(
      Profiled.Profiles.CallEdges, Config.HotThresholdPct,
      Config.MaxOptimized);

  // The oracle selection from a (much more expensive) exhaustive profile.
  harness::RunConfig Exhaustive;
  Exhaustive.Transform.M = sampling::Mode::Exhaustive;
  Exhaustive.Clients = {&CallEdges};
  harness::ExperimentResult Perfect =
      harness::runExperiment(P, ScaleArg, Exhaustive);
  if (!Perfect.Stats.Ok) {
    Out.Error = Perfect.Stats.Error;
    return Out;
  }
  Out.ExhaustiveRunCycles = Perfect.Stats.Cycles;
  Out.OracleFunctions = selectHotFunctions(
      Perfect.Profiles.CallEdges, Config.HotThresholdPct,
      Config.MaxOptimized);
  {
    std::map<int, uint64_t> PerFunc;
    for (const auto &[Key, Count] : Perfect.Profiles.CallEdges.counts())
      PerFunc[Key.Callee] += Count;
    double Total =
        static_cast<double>(Perfect.Profiles.CallEdges.total());
    for (const auto &[Func, Count] : PerFunc)
      Out.OracleShares[Func] =
          Total > 0 ? 100.0 * static_cast<double>(Count) / Total : 0.0;
  }

  // Deploy: re-run with the chosen functions "recompiled".
  harness::RunConfig Deployed;
  Deployed.Transform.M = sampling::Mode::Baseline;
  Deployed.Engine.OptimizedCostPct = Config.OptimizedCostPct;
  Deployed.Engine.OptimizedFuncs.assign(P.Funcs.size(), 0);
  for (int F : Out.HotFunctions)
    Deployed.Engine.OptimizedFuncs[static_cast<size_t>(F)] = 1;
  harness::ExperimentResult Final =
      harness::runExperiment(P, ScaleArg, Deployed);
  if (!Final.Stats.Ok) {
    Out.Error = Final.Stats.Error;
    return Out;
  }
  if (Final.Stats.MainResult != Base.Stats.MainResult) {
    Out.Error = "optimized run changed the program result";
    return Out;
  }
  Out.DeployedCycles = Final.Stats.Cycles;
  Out.Ok = true;
  return Out;
}

} // namespace adaptive
} // namespace ars
