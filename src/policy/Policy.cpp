//===- policy/Policy.cpp - Closed-loop sampling policy --------------------===//

#include "policy/Policy.h"

#include "profile/Overlap.h"

#include <algorithm>

namespace ars {
namespace policy {

PolicyTable::PolicyTable(size_t NumMethods) : Intervals(NumMethods) {
  for (std::atomic<int64_t> &V : Intervals)
    V.store(NoOverride, std::memory_order_relaxed);
}

bool PolicyTable::applyVersioned(uint64_t Version,
                                 const std::vector<Decision> &Ds) {
  std::lock_guard<std::mutex> Lock(WriteMu);
  if (Version <= AppliedVersion.load(std::memory_order_relaxed))
    return false;
  for (const Decision &D : Ds) {
    if (D.Method < 0 || static_cast<size_t>(D.Method) >= Intervals.size())
      continue;
    Intervals[static_cast<size_t>(D.Method)].store(D.Interval,
                                                   std::memory_order_relaxed);
  }
  AppliedVersion.store(Version, std::memory_order_release);
  return true;
}

std::vector<Decision> PolicyTable::snapshot() const {
  std::vector<Decision> Out;
  for (size_t I = 0; I != Intervals.size(); ++I) {
    int64_t V = Intervals[I].load(std::memory_order_relaxed);
    if (V != NoOverride)
      Out.push_back({static_cast<int>(I), V});
  }
  return Out;
}

std::map<int, MethodSlice> sliceByMethod(const profile::ProfileBundle &B) {
  std::map<int, MethodSlice> Out;
  for (const auto &KV : B.BlockCounts.counts()) {
    MethodSlice &S = Out[KV.first.first];
    S.Blocks[KV.first.second] += KV.second;
    S.BlockTotal += KV.second;
  }
  for (const auto &KV : B.CallEdges.counts()) {
    MethodSlice &S = Out[KV.first.Callee];
    S.InEdges[{KV.first.Caller, KV.first.Site}] += KV.second;
    S.EdgeTotal += KV.second;
  }
  return Out;
}

double methodOverlapPct(const MethodSlice &Perfect,
                        const MethodSlice &Sampled) {
  double Weighted = 0;
  uint64_t Weight = 0;
  if (Perfect.BlockTotal > 0 && Sampled.BlockTotal > 0) {
    Weighted += Perfect.BlockTotal *
                profile::overlapPercentMaps(Perfect.Blocks, Sampled.Blocks,
                                            Perfect.BlockTotal,
                                            Sampled.BlockTotal);
    Weight += Perfect.BlockTotal;
  }
  if (Perfect.EdgeTotal > 0 && Sampled.EdgeTotal > 0) {
    Weighted += Perfect.EdgeTotal *
                profile::overlapPercentMaps(Perfect.InEdges, Sampled.InEdges,
                                            Perfect.EdgeTotal,
                                            Sampled.EdgeTotal);
    Weight += Perfect.EdgeTotal;
  }
  return Weight == 0 ? 0.0 : Weighted / Weight;
}

double perMethodOverlapPct(const profile::ProfileBundle &Perfect,
                           const profile::ProfileBundle &Sampled) {
  std::map<int, MethodSlice> P = sliceByMethod(Perfect);
  std::map<int, MethodSlice> S = sliceByMethod(Sampled);
  double Weighted = 0;
  uint64_t Weight = 0;
  for (const auto &KV : P) {
    uint64_t W = KV.second.BlockTotal + KV.second.EdgeTotal;
    if (W == 0)
      continue;
    auto It = S.find(KV.first);
    // A method the sampled side never saw scores 0 at full weight.
    double O = It == S.end() ? 0.0 : methodOverlapPct(KV.second, It->second);
    Weighted += W * O;
    Weight += W;
  }
  return Weight == 0 ? 0.0 : Weighted / Weight;
}

std::vector<Decision>
ConvergenceWatcher::observeEpoch(const profile::ProfileBundle &Delta) {
  std::vector<Decision> Out;
  std::map<int, MethodSlice> Slices = sliceByMethod(Delta);
  for (auto &KV : Slices) {
    MethodState &St = Methods[KV.first];
    if (St.Retired)
      continue;
    if (St.HavePrev && !KV.second.empty()) {
      double O = methodOverlapPct(St.Prev, KV.second);
      St.WidenStreak = O >= Config.WidenThresholdPct ? St.WidenStreak + 1 : 0;
      St.RetireStreak =
          O >= Config.RetireThresholdPct ? St.RetireStreak + 1 : 0;
      if (St.RetireStreak >= Config.StableEpochs ||
          (St.WidenStreak >= Config.StableEpochs &&
           St.Interval >= Config.MaxInterval)) {
        St.Retired = true;
        St.Interval = 0;
        Out.push_back({KV.first, 0});
      } else if (St.WidenStreak >= Config.StableEpochs) {
        int64_t Base = St.Interval > 0 ? St.Interval : Config.BaseInterval;
        St.Interval = std::min<int64_t>(
            Base * static_cast<int64_t>(Config.WidenFactor),
            Config.MaxInterval);
        St.WidenStreak = 0;
        Out.push_back({KV.first, St.Interval});
      }
    }
    St.Prev = std::move(KV.second);
    St.HavePrev = true;
  }
  if (!Out.empty())
    ++Version;
  return Out;
}

std::vector<Decision> ConvergenceWatcher::currentPolicy() const {
  std::vector<Decision> Out;
  for (const auto &KV : Methods)
    if (KV.second.Retired || KV.second.Interval > 0)
      Out.push_back({KV.first, KV.second.Retired ? 0 : KV.second.Interval});
  return Out;
}

int ConvergenceWatcher::retiredCount() const {
  int N = 0;
  for (const auto &KV : Methods)
    N += KV.second.Retired ? 1 : 0;
  return N;
}

} // namespace policy
} // namespace ars
