//===- policy/Policy.h - Closed-loop sampling policy ----------*- C++ -*-===//
///
/// \file
/// The closed-loop half of the adaptive-sampling story: today the
/// transform freezes one sample interval into the code, so a method whose
/// profile converged in the first minute keeps paying full check+sample
/// cost forever.  This subsystem lets the collection tier observe
/// convergence and dial instrumentation down at runtime, per method:
///
///  * PolicyTable — the runtime-settable, atomics-backed per-method
///    interval table the engine's counter-check trigger consults.  An
///    entry of 0 RETIRES the method: the sample condition is permanently
///    false, so the duplicated body is never entered again and the method
///    runs checking-only — the cheapest configuration short of
///    re-transforming, reachable without a restart.  Property 1 is
///    unaffected: check placement (entries/backedges only) is a static
///    property of the transform, and the dynamic bound
///    CheckExecs <= Entries + Backedges holds a fortiori when fewer (or
///    no) checks fire (tests/test_policy.cpp re-verifies both halves
///    after widening and after retire).
///
///  * ConvergenceWatcher — the server-side decision maker.  It observes
///    successive epoch deltas of the aggregate (profserve rotateEpoch),
///    slices them per method, and scores each method's epoch-over-epoch
///    self-overlap with the paper's section 4.4 metric: when two
///    consecutive deltas of a method have (near-)identical distributions,
///    new samples are no longer buying information.  Overlap >= the widen
///    threshold for W consecutive epochs widens the method's interval by
///    factor F (capped); overlap >= the retire threshold for W epochs
///    retires it.  Decisions are published as a monotonically versioned
///    table (profserve wire v4 POLICY frames) so reordered or
///    relay-duplicated frames can never roll a receiver back.
///
/// The slicing/overlap helpers are exposed because the accuracy bench
/// (bench_adaptive_policy) and `arsc profile overlap` score results with
/// the same per-method metric the watcher decides with.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_POLICY_POLICY_H
#define ARS_POLICY_POLICY_H

#include "profile/Profiles.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace ars {
namespace policy {

/// One per-method decision: the new counter interval for \p Method.
/// Interval 0 retires the method (checking-only, no duplicated-body
/// entry); positive values replace the static interval.
struct Decision {
  int Method = -1;
  int64_t Interval = 0;
};

/// The runtime-settable per-method interval table.  Readers (the engine's
/// sample-condition check, once per method entry/backedge) are lock-free
/// relaxed atomic loads; writers (a POLICY frame arriving on a client
/// thread) serialize on a mutex and publish under a monotonic version, so
/// a stale or replayed frame is a no-op.  Sized once at construction —
/// method ids outside [0, size) are ignored on apply and fall back to the
/// static interval on read.
class PolicyTable {
public:
  /// Sentinel interval meaning "no override; use the static interval".
  static constexpr int64_t NoOverride = -1;

  explicit PolicyTable(size_t NumMethods);

  size_t size() const { return Intervals.size(); }

  /// The interval the counter trigger must use for \p Method:
  /// \p StaticInterval when the table holds no override, the override
  /// otherwise (0 = retired = never fire).
  int64_t effectiveInterval(int Method, int64_t StaticInterval) const {
    if (Method < 0 || static_cast<size_t>(Method) >= Intervals.size())
      return StaticInterval;
    int64_t V = Intervals[static_cast<size_t>(Method)].load(
        std::memory_order_relaxed);
    return V == NoOverride ? StaticInterval : V;
  }

  /// True when \p Method is currently retired (override interval 0).
  bool isRetired(int Method) const {
    return effectiveInterval(Method, NoOverride) == 0;
  }

  /// Applies \p Ds if \p Version is strictly newer than the last applied
  /// version.  Returns false (and changes nothing) for stale or replayed
  /// versions — the receiver-side monotonicity guard for POLICY frames.
  bool applyVersioned(uint64_t Version, const std::vector<Decision> &Ds);

  uint64_t appliedVersion() const {
    return AppliedVersion.load(std::memory_order_acquire);
  }

  /// Every method with an override, as decisions (diagnostics/tests).
  std::vector<Decision> snapshot() const;

private:
  std::vector<std::atomic<int64_t>> Intervals;
  std::atomic<uint64_t> AppliedVersion{0};
  std::mutex WriteMu; ///< serializes applyVersioned
};

/// A per-method slice of a bundle: the distributions the watcher scores.
/// Blocks are the method's own basic-block counts; InEdges are the call
/// edges INTO the method, keyed (caller, site) — between them every
/// workload shape (block-count client, call-edge client, both) yields a
/// usable per-method signal.
struct MethodSlice {
  std::map<int, uint64_t> Blocks; ///< block id -> count
  std::map<std::pair<int, int>, uint64_t> InEdges;
  uint64_t BlockTotal = 0;
  uint64_t EdgeTotal = 0;

  bool empty() const { return BlockTotal == 0 && EdgeTotal == 0; }
};

/// Groups \p B per method: BlockCounts by owning function, CallEdges by
/// callee.
std::map<int, MethodSlice> sliceByMethod(const profile::ProfileBundle &B);

/// Section 4.4 overlap of two slices of the SAME method: per available
/// kind (blocks, in-edges), weighted by the perfect side's event counts.
/// 0 when either side is empty.
double methodOverlapPct(const MethodSlice &Perfect,
                        const MethodSlice &Sampled);

/// Mean per-method overlap of \p Sampled vs \p Perfect, weighting each
/// method by its share of \p Perfect's events — the accuracy metric
/// bench_adaptive_policy pins (a retired-too-early method drags the mean
/// down in proportion to how much it mattered).
double perMethodOverlapPct(const profile::ProfileBundle &Perfect,
                           const profile::ProfileBundle &Sampled);

/// Watcher tuning.
struct WatcherConfig {
  /// Overlap (percent) two consecutive epoch deltas of a method must
  /// reach, for StableEpochs epochs, before its interval is widened.
  double WidenThresholdPct = 97.0;

  /// Overlap at which the method is considered fully converged and is
  /// retired to checking-only (must be >= WidenThresholdPct to mean
  /// anything).
  double RetireThresholdPct = 99.5;

  /// Consecutive qualifying epochs before a decision fires (the paper's
  /// guard against one lucky epoch).
  int StableEpochs = 2;

  /// Interval multiplier per widen decision.
  uint32_t WidenFactor = 4;

  /// The static interval the engines were deployed with; the first widen
  /// starts from here.
  int64_t BaseInterval = 1000;

  /// Widening cap: beyond this the next qualifying decision retires
  /// instead (an interval this sparse buys nothing over checking-only).
  int64_t MaxInterval = int64_t(1) << 22;
};

/// The server-side decision maker.  NOT thread-safe: the owner (the
/// collection server's epoch rotation) serializes calls.
class ConvergenceWatcher {
public:
  explicit ConvergenceWatcher(WatcherConfig C) : Config(C) {}

  /// Observes one epoch delta and returns the decisions it triggered
  /// (empty when nothing changed).  Any nonempty return bumps
  /// policyVersion().
  std::vector<Decision> observeEpoch(const profile::ProfileBundle &Delta);

  /// Monotonic version of the current table; bumped per decision batch.
  uint64_t policyVersion() const { return Version; }

  /// The full current table (for late-joining connections).
  std::vector<Decision> currentPolicy() const;

  /// Methods currently retired (diagnostics).
  int retiredCount() const;

private:
  struct MethodState {
    MethodSlice Prev;
    bool HavePrev = false;
    int WidenStreak = 0;
    int RetireStreak = 0;
    int64_t Interval = 0; ///< 0 = still at the static interval
    bool Retired = false;
  };

  WatcherConfig Config;
  std::map<int, MethodState> Methods;
  uint64_t Version = 0;
};

} // namespace policy
} // namespace ars

#endif // ARS_POLICY_POLICY_H
