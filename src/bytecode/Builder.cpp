//===- bytecode/Builder.cpp -----------------------------------*- C++ -*-===//

#include "bytecode/Builder.h"

#include <cassert>

namespace ars {
namespace bytecode {

Label Builder::makeLabel() {
  Label L;
  L.Id = static_cast<int>(LabelOffsets.size());
  LabelOffsets.push_back(-1);
  return L;
}

void Builder::bind(Label L) {
  assert(L.Id >= 0 && L.Id < static_cast<int>(LabelOffsets.size()) &&
         "label was not created by this builder");
  assert(LabelOffsets[L.Id] == -1 && "label bound twice");
  LabelOffsets[L.Id] = offset();
}

void Builder::emit(Opcode Op, int64_t A) {
  assert(!isBranch(Op) && "use emitBranch for branches");
  Func.Code.emplace_back(Op, A);
}

void Builder::emitFConst(double Value) {
  Func.Code.push_back(Inst::makeFConst(Value));
}

void Builder::emitBranch(Opcode Op, Label L) {
  assert(isBranch(Op) && "emitBranch requires Br or BrIf");
  Fixups.emplace_back(offset(), L.Id);
  Func.Code.emplace_back(Op, -1);
}

int Builder::addLocal(Type Ty) {
  Func.LocalTypes.push_back(Ty);
  return Func.NumLocals++;
}

bool Builder::finish() {
  for (auto [Offset, LabelId] : Fixups) {
    int Target = LabelOffsets[LabelId];
    if (Target < 0)
      return false;
    Func.Code[Offset].A = Target;
  }
  Fixups.clear();
  return true;
}

} // namespace bytecode
} // namespace ars
