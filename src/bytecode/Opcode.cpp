//===- bytecode/Opcode.cpp ------------------------------------*- C++ -*-===//

#include "bytecode/Opcode.h"

namespace ars {
namespace bytecode {

const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:       return "nop";
  case Opcode::IConst:    return "iconst";
  case Opcode::FConst:    return "fconst";
  case Opcode::Load:      return "load";
  case Opcode::Store:     return "store";
  case Opcode::Add:       return "add";
  case Opcode::Sub:       return "sub";
  case Opcode::Mul:       return "mul";
  case Opcode::Div:       return "div";
  case Opcode::Rem:       return "rem";
  case Opcode::Neg:       return "neg";
  case Opcode::And:       return "and";
  case Opcode::Or:        return "or";
  case Opcode::Xor:       return "xor";
  case Opcode::Shl:       return "shl";
  case Opcode::Shr:       return "shr";
  case Opcode::FAdd:      return "fadd";
  case Opcode::FSub:      return "fsub";
  case Opcode::FMul:      return "fmul";
  case Opcode::FDiv:      return "fdiv";
  case Opcode::FNeg:      return "fneg";
  case Opcode::F2I:       return "f2i";
  case Opcode::I2F:       return "i2f";
  case Opcode::CmpEq:     return "cmpeq";
  case Opcode::CmpNe:     return "cmpne";
  case Opcode::CmpLt:     return "cmplt";
  case Opcode::CmpLe:     return "cmple";
  case Opcode::CmpGt:     return "cmpgt";
  case Opcode::CmpGe:     return "cmpge";
  case Opcode::FCmpLt:    return "fcmplt";
  case Opcode::FCmpLe:    return "fcmple";
  case Opcode::FCmpEq:    return "fcmpeq";
  case Opcode::Br:        return "br";
  case Opcode::BrIf:      return "brif";
  case Opcode::Ret:       return "ret";
  case Opcode::RetVal:    return "retval";
  case Opcode::Call:      return "call";
  case Opcode::Spawn:     return "spawn";
  case Opcode::New:       return "new";
  case Opcode::GetField:  return "getfield";
  case Opcode::PutField:  return "putfield";
  case Opcode::GetGlobal: return "getglobal";
  case Opcode::PutGlobal: return "putglobal";
  case Opcode::NewArray:  return "newarray";
  case Opcode::ALoad:     return "aload";
  case Opcode::AStore:    return "astore";
  case Opcode::ALen:      return "alen";
  case Opcode::Dup:       return "dup";
  case Opcode::Pop:       return "pop";
  case Opcode::Swap:      return "swap";
  case Opcode::IOWait:    return "iowait";
  case Opcode::Print:     return "print";
  }
  return "<bad opcode>";
}

bool isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::BrIf || Op == Opcode::Ret ||
         Op == Opcode::RetVal;
}

bool isBranch(Opcode Op) { return Op == Opcode::Br || Op == Opcode::BrIf; }

} // namespace bytecode
} // namespace ars
