//===- bytecode/Assembler.cpp ---------------------------------*- C++ -*-===//

#include "bytecode/Assembler.h"

#include "bytecode/Builder.h"
#include "bytecode/Verifier.h"
#include "support/Support.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

using ars::support::formatString;

namespace ars {
namespace bytecode {

namespace {

/// Splits a line into whitespace-separated tokens, treating the characters
/// ( ) , : -> { } ; as their own tokens and '#' as a comment starter.
std::vector<std::string> tokenizeLine(const std::string &Line) {
  std::vector<std::string> Toks;
  size_t I = 0;
  while (I < Line.size()) {
    char C = Line[I];
    if (C == '#')
      break;
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '-' && I + 1 < Line.size() && Line[I + 1] == '>') {
      Toks.push_back("->");
      I += 2;
      continue;
    }
    if (std::strchr("(),:{};", C)) {
      Toks.push_back(std::string(1, C));
      ++I;
      continue;
    }
    size_t Begin = I;
    while (I < Line.size() &&
           !std::isspace(static_cast<unsigned char>(Line[I])) &&
           !std::strchr("(),:{};#", Line[I]) &&
           !(Line[I] == '-' && I + 1 < Line.size() && Line[I + 1] == '>' &&
             I != Begin))
      ++I;
    Toks.push_back(Line.substr(Begin, I - Begin));
  }
  return Toks;
}

/// True for integer literals (optionally negative) and float literals.
bool isNumber(const std::string &Tok) {
  if (Tok.empty())
    return false;
  size_t Start = Tok[0] == '-' ? 1 : 0;
  if (Start == Tok.size())
    return false;
  for (size_t I = Start; I != Tok.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(Tok[I])) && Tok[I] != '.')
      return false;
  return true;
}

class Assembler {
public:
  explicit Assembler(const std::string &Source) : Source(Source) {}
  AssembleResult run();

private:
  const std::string &Source;
  AssembleResult Result;
  int LineNo = 0;
  std::map<std::string, int> ClassIds;
  std::map<std::string, int> GlobalIds;
  std::map<std::string, int> FieldIds; ///< "Class.field" -> module field id
  std::map<std::string, int> FuncIds;
  /// Call/spawn fixups: (function, code offset, callee name).
  std::vector<std::pair<std::pair<int, int>, std::string>> CallFixups;

  bool fail(const std::string &Message) {
    if (Result.Error.empty())
      Result.Error = formatString("line %d: %s", LineNo, Message.c_str());
    return false;
  }

  bool parseType(const std::string &Tok, Type *Out) {
    if (Tok == "int") {
      *Out = Type::I64;
      return true;
    }
    if (Tok == "float") {
      *Out = Type::F64;
      return true;
    }
    if (Tok == "ref") {
      *Out = Type::Ref;
      return true;
    }
    if (Tok == "void") {
      *Out = Type::Void;
      return true;
    }
    return fail("unknown type '" + Tok + "'");
  }

  bool parseClass(const std::vector<std::string> &Toks);
  bool parseGlobal(const std::vector<std::string> &Toks);
  /// Parses the function header and then consumes body lines from \p Lines
  /// starting at \p Next until "end".
  bool parseFunc(const std::vector<std::string> &Toks,
                 const std::vector<std::string> &Lines, size_t *Next);
};

bool Assembler::parseClass(const std::vector<std::string> &Toks) {
  // class NAME { type name ; ... }
  if (Toks.size() < 4 || Toks[2] != "{" || Toks.back() != "}")
    return fail("malformed class declaration");
  const std::string &Name = Toks[1];
  if (ClassIds.count(Name))
    return fail("duplicate class '" + Name + "'");
  int ClassId = Result.M.addClass(Name);
  ClassIds[Name] = ClassId;
  size_t I = 3;
  while (I < Toks.size() - 1) {
    Type Ty;
    if (!parseType(Toks[I], &Ty))
      return false;
    if (I + 1 >= Toks.size() - 1)
      return fail("field name missing");
    const std::string &Field = Toks[I + 1];
    int FieldId = Result.M.addField(ClassId, Field, Ty);
    FieldIds[Name + "." + Field] = FieldId;
    I += 2;
    if (I < Toks.size() - 1 && Toks[I] == ";")
      ++I;
  }
  return true;
}

bool Assembler::parseGlobal(const std::vector<std::string> &Toks) {
  // global type name
  if (Toks.size() != 3)
    return fail("malformed global declaration");
  Type Ty;
  if (!parseType(Toks[1], &Ty))
    return false;
  if (GlobalIds.count(Toks[2]))
    return fail("duplicate global '" + Toks[2] + "'");
  GlobalIds[Toks[2]] = Result.M.addGlobal(Toks[2], Ty);
  return true;
}

bool Assembler::parseFunc(const std::vector<std::string> &Toks,
                          const std::vector<std::string> &Lines,
                          size_t *Next) {
  // func NAME ( types ) -> type [locals ( types )]
  size_t I = 1;
  if (I >= Toks.size())
    return fail("function name missing");
  std::string Name = Toks[I++];
  if (FuncIds.count(Name))
    return fail("duplicate function '" + Name + "'");
  if (I >= Toks.size() || Toks[I] != "(")
    return fail("expected '(' after function name");
  ++I;
  std::vector<Type> Params;
  while (I < Toks.size() && Toks[I] != ")") {
    if (Toks[I] == ",") {
      ++I;
      continue;
    }
    Type Ty;
    if (!parseType(Toks[I], &Ty))
      return false;
    Params.push_back(Ty);
    ++I;
  }
  if (I >= Toks.size())
    return fail("unterminated parameter list");
  ++I; // ')'
  if (I + 1 >= Toks.size() || Toks[I] != "->")
    return fail("expected '-> type'");
  Type Ret;
  if (!parseType(Toks[I + 1], &Ret))
    return false;
  I += 2;

  int FuncId = Result.M.addFunction(Name, Params, Ret);
  FuncIds[Name] = FuncId;
  FunctionDef &Func = Result.M.functionAt(FuncId);
  Builder B(Func);

  if (I < Toks.size()) {
    if (Toks[I] != "locals")
      return fail("unexpected token '" + Toks[I] + "'");
    ++I;
    if (I >= Toks.size() || Toks[I] != "(")
      return fail("expected '(' after locals");
    ++I;
    while (I < Toks.size() && Toks[I] != ")") {
      if (Toks[I] == ",") {
        ++I;
        continue;
      }
      Type Ty;
      if (!parseType(Toks[I], &Ty))
        return false;
      B.addLocal(Ty);
      ++I;
    }
    if (I >= Toks.size())
      return fail("unterminated locals list");
  }

  std::map<std::string, Label> Labels;
  auto labelOf = [&](const std::string &LabelName) {
    auto It = Labels.find(LabelName);
    if (It == Labels.end())
      It = Labels.emplace(LabelName, B.makeLabel()).first;
    return It->second;
  };

  // Body lines until "end".
  while (*Next < Lines.size()) {
    LineNo = static_cast<int>(*Next) + 1;
    std::vector<std::string> T = tokenizeLine(Lines[(*Next)++]);
    if (T.empty())
      continue;
    if (T[0] == "end") {
      if (!B.finish())
        return fail("branch to an undefined label");
      return true;
    }
    // Label line: NAME :
    if (T.size() == 2 && T[1] == ":") {
      B.bind(labelOf(T[0]));
      continue;
    }

    const std::string &Op = T[0];
    auto intOperand = [&](int64_t *Out) {
      if (T.size() < 2 || !isNumber(T[1]))
        return fail("'" + Op + "' needs an integer operand");
      *Out = std::atoll(T[1].c_str());
      return true;
    };

    // Mnemonic table for operand-free opcodes.
    static const std::map<std::string, Opcode> Simple = {
        {"add", Opcode::Add},       {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},       {"div", Opcode::Div},
        {"rem", Opcode::Rem},       {"neg", Opcode::Neg},
        {"and", Opcode::And},       {"or", Opcode::Or},
        {"xor", Opcode::Xor},       {"shl", Opcode::Shl},
        {"shr", Opcode::Shr},       {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub},     {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv},     {"fneg", Opcode::FNeg},
        {"f2i", Opcode::F2I},       {"i2f", Opcode::I2F},
        {"cmpeq", Opcode::CmpEq},   {"cmpne", Opcode::CmpNe},
        {"cmplt", Opcode::CmpLt},   {"cmple", Opcode::CmpLe},
        {"cmpgt", Opcode::CmpGt},   {"cmpge", Opcode::CmpGe},
        {"fcmplt", Opcode::FCmpLt}, {"fcmple", Opcode::FCmpLe},
        {"fcmpeq", Opcode::FCmpEq}, {"ret", Opcode::Ret},
        {"retval", Opcode::RetVal}, {"newarray", Opcode::NewArray},
        {"aload", Opcode::ALoad},   {"astore", Opcode::AStore},
        {"alen", Opcode::ALen},     {"dup", Opcode::Dup},
        {"pop", Opcode::Pop},       {"swap", Opcode::Swap},
        {"print", Opcode::Print},   {"nop", Opcode::Nop}};

    auto SimpleIt = Simple.find(Op);
    if (SimpleIt != Simple.end()) {
      B.emit(SimpleIt->second);
      continue;
    }
    if (Op == "iconst" || Op == "load" || Op == "store" ||
        Op == "iowait") {
      int64_t V = 0;
      if (!intOperand(&V))
        return false;
      B.emit(Op == "iconst"  ? Opcode::IConst
             : Op == "load"  ? Opcode::Load
             : Op == "store" ? Opcode::Store
                             : Opcode::IOWait,
             V);
      continue;
    }
    if (Op == "fconst") {
      if (T.size() < 2 || !isNumber(T[1]))
        return fail("fconst needs a float operand");
      B.emitFConst(std::atof(T[1].c_str()));
      continue;
    }
    if (Op == "br" || Op == "brif") {
      if (T.size() < 2)
        return fail("branch needs a label");
      B.emitBranch(Op == "br" ? Opcode::Br : Opcode::BrIf, labelOf(T[1]));
      continue;
    }
    if (Op == "call" || Op == "spawn") {
      if (T.size() < 2)
        return fail("call needs a function name");
      CallFixups.push_back({{FuncId, B.offset()}, T[1]});
      // Emit with a placeholder callee id; fixed up after all functions
      // are known (forward references allowed).
      Func.Code.emplace_back(Op == "call" ? Opcode::Call : Opcode::Spawn,
                             -1);
      continue;
    }
    if (Op == "new") {
      if (T.size() < 2 || !ClassIds.count(T[1]))
        return fail("new needs a known class name");
      B.emit(Opcode::New, ClassIds[T[1]]);
      continue;
    }
    if (Op == "getfield" || Op == "putfield") {
      if (T.size() < 2 || !FieldIds.count(T[1]))
        return fail("'" + Op + "' needs a known Class.field");
      B.emit(Op == "getfield" ? Opcode::GetField : Opcode::PutField,
             FieldIds[T[1]]);
      continue;
    }
    if (Op == "getglobal" || Op == "putglobal") {
      if (T.size() < 2 || !GlobalIds.count(T[1]))
        return fail("'" + Op + "' needs a known global name");
      B.emit(Op == "getglobal" ? Opcode::GetGlobal : Opcode::PutGlobal,
             GlobalIds[T[1]]);
      continue;
    }
    return fail("unknown mnemonic '" + Op + "'");
  }
  return fail("missing 'end'");
}

AssembleResult Assembler::run() {
  std::vector<std::string> Lines = support::splitString(Source, '\n');
  size_t Next = 0;
  while (Next < Lines.size()) {
    LineNo = static_cast<int>(Next) + 1;
    std::vector<std::string> Toks = tokenizeLine(Lines[Next++]);
    if (Toks.empty())
      continue;
    bool Ok = false;
    if (Toks[0] == "class")
      Ok = parseClass(Toks);
    else if (Toks[0] == "global")
      Ok = parseGlobal(Toks);
    else if (Toks[0] == "func")
      Ok = parseFunc(Toks, Lines, &Next);
    else
      Ok = fail("expected class/global/func, found '" + Toks[0] + "'");
    if (!Ok)
      return Result;
  }

  // Resolve forward call references.
  for (const auto &[Where, Callee] : CallFixups) {
    auto It = FuncIds.find(Callee);
    if (It == FuncIds.end()) {
      fail("call to unknown function '" + Callee + "'");
      return Result;
    }
    Result.M.functionAt(Where.first).Code[Where.second].A = It->second;
  }

  VerifyResult VR = verifyModule(Result.M);
  if (!VR.Ok) {
    Result.Error = "verifier: " + VR.Error;
    return Result;
  }
  Result.Ok = true;
  return Result;
}

} // namespace

AssembleResult assemble(const std::string &Source) {
  Assembler A(Source);
  return A.run();
}

} // namespace bytecode
} // namespace ars
