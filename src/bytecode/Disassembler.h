//===- bytecode/Disassembler.h - Bytecode pretty printing -----*- C++ -*-===//
///
/// \file
/// Renders bytecode functions and modules as human-readable text for tests,
/// examples and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BYTECODE_DISASSEMBLER_H
#define ARS_BYTECODE_DISASSEMBLER_H

#include "bytecode/Module.h"

#include <string>

namespace ars {
namespace bytecode {

/// Renders one instruction, resolving callee/class/field names via \p M.
std::string disassembleInst(const Module &M, const Inst &I);

/// Renders a function with offsets, signature and locals.
std::string disassembleFunction(const Module &M, const FunctionDef &Func);

/// Renders the whole module.
std::string disassembleModule(const Module &M);

} // namespace bytecode
} // namespace ars

#endif // ARS_BYTECODE_DISASSEMBLER_H
