//===- bytecode/Builder.h - Label-based bytecode emission -----*- C++ -*-===//
///
/// \file
/// Emits bytecode into a FunctionDef with forward-reference labels.  Used by
/// the MiniJ code generator, by tests that hand-construct control flow, and
/// by the property-based random program generator.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BYTECODE_BUILDER_H
#define ARS_BYTECODE_BUILDER_H

#include "bytecode/Module.h"

#include <vector>

namespace ars {
namespace bytecode {

/// An opaque branch target handle.
struct Label {
  int Id = -1;
};

/// Streams instructions into \p Func.Code, resolving labels on finish().
class Builder {
public:
  explicit Builder(FunctionDef &Func) : Func(Func) {}

  /// Creates a fresh, unbound label.
  Label makeLabel();
  /// Binds \p L to the next emitted instruction.
  void bind(Label L);

  /// Emits a non-branch instruction.
  void emit(Opcode Op, int64_t A = 0);
  void emitFConst(double Value);
  /// Emits a branch to \p L (Br or BrIf).
  void emitBranch(Opcode Op, Label L);

  /// Allocates a new local slot of type \p Ty; returns the slot index.
  int addLocal(Type Ty);

  /// Current instruction offset (useful for tests).
  int offset() const { return static_cast<int>(Func.Code.size()); }

  /// Patches all label references.  Every used label must have been bound.
  /// Returns false (and leaves the code unusable) if one was not.
  bool finish();

private:
  FunctionDef &Func;
  std::vector<int> LabelOffsets;          ///< -1 while unbound
  std::vector<std::pair<int, int>> Fixups; ///< (instr offset, label id)
};

} // namespace bytecode
} // namespace ars

#endif // ARS_BYTECODE_BUILDER_H
