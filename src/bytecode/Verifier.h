//===- bytecode/Verifier.h - Bytecode well-formedness checks --*- C++ -*-===//
///
/// \file
/// Abstract-interpretation verifier for bytecode functions: checks branch
/// targets, local slot bounds, stack discipline (consistent depth and types
/// at every join), and call signatures.  Also computes each function's
/// maximum operand stack depth, which the lowering pass uses to assign
/// stack-slot registers.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BYTECODE_VERIFIER_H
#define ARS_BYTECODE_VERIFIER_H

#include "bytecode/Module.h"

#include <string>

namespace ars {
namespace bytecode {

/// Result of verifying one function.
struct VerifyResult {
  bool Ok = false;
  std::string Error;  ///< first problem found, empty when Ok
  int MaxStack = 0;   ///< maximum operand stack depth
};

/// Verifies \p Func against \p M.
VerifyResult verifyFunction(const Module &M, const FunctionDef &Func);

/// Verifies every function; returns the first failure (with the function
/// name prepended) or an Ok result.
VerifyResult verifyModule(const Module &M);

} // namespace bytecode
} // namespace ars

#endif // ARS_BYTECODE_VERIFIER_H
