//===- bytecode/Disassembler.cpp ------------------------------*- C++ -*-===//

#include "bytecode/Disassembler.h"

#include "support/Support.h"

using ars::support::formatString;

namespace ars {
namespace bytecode {

std::string disassembleInst(const Module &M, const Inst &I) {
  switch (I.Op) {
  case Opcode::FConst:
    return formatString("fconst %g", I.F);
  case Opcode::Call:
  case Opcode::Spawn: {
    const char *Name = I.A >= 0 && I.A < M.numFunctions()
                           ? M.functionAt(static_cast<int>(I.A)).Name.c_str()
                           : "<bad>";
    return formatString("%s %s(#%lld)", opcodeName(I.Op), Name,
                        static_cast<long long>(I.A));
  }
  case Opcode::New: {
    const char *Name = I.A >= 0 && I.A < M.numClasses()
                           ? M.classAt(static_cast<int>(I.A)).Name.c_str()
                           : "<bad>";
    return formatString("new %s", Name);
  }
  case Opcode::GetField:
  case Opcode::PutField:
    return formatString("%s %s", opcodeName(I.Op),
                        M.fieldIdName(static_cast<int>(I.A)).c_str());
  case Opcode::GetGlobal:
  case Opcode::PutGlobal: {
    const char *Name = I.A >= 0 && I.A < M.numGlobals()
                           ? M.globalAt(static_cast<int>(I.A)).Name.c_str()
                           : "<bad>";
    return formatString("%s %s", opcodeName(I.Op), Name);
  }
  case Opcode::Br:
  case Opcode::BrIf:
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::IConst:
  case Opcode::IOWait:
    return formatString("%s %lld", opcodeName(I.Op),
                        static_cast<long long>(I.A));
  default:
    return opcodeName(I.Op);
  }
}

std::string disassembleFunction(const Module &M, const FunctionDef &Func) {
  std::string Out = formatString("func %s #%d (", Func.Name.c_str(),
                                 Func.FuncId);
  for (size_t P = 0; P != Func.Params.size(); ++P) {
    if (P)
      Out += ", ";
    Out += typeName(Func.Params[P]);
  }
  Out += formatString(") -> %s, locals=%d\n", typeName(Func.Ret),
                      Func.NumLocals);
  for (size_t Pc = 0; Pc != Func.Code.size(); ++Pc)
    Out += formatString("  %4zu: %s\n", Pc,
                        disassembleInst(M, Func.Code[Pc]).c_str());
  return Out;
}

std::string disassembleModule(const Module &M) {
  std::string Out;
  for (const ClassDef &C : M.classes()) {
    Out += formatString("class %s #%d {", C.Name.c_str(), C.ClassId);
    for (size_t F = 0; F != C.Fields.size(); ++F) {
      if (F)
        Out += ", ";
      Out += formatString("%s %s", typeName(C.Fields[F].Ty),
                          C.Fields[F].Name.c_str());
    }
    Out += "}\n";
  }
  for (const FieldDef &G : M.globals())
    Out += formatString("global %s %s\n", typeName(G.Ty), G.Name.c_str());
  for (const FunctionDef &F : M.functions())
    Out += disassembleFunction(M, F);
  return Out;
}

} // namespace bytecode
} // namespace ars
