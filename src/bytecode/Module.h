//===- bytecode/Module.h - Bytecode program container ---------*- C++ -*-===//
///
/// \file
/// A Module groups classes (field layouts), globals and functions.  Field
/// identifiers are module-global: every (class, field) pair and every global
/// variable receives a unique FieldId so the field-access instrumentation
/// can keep one counter per field exactly like the paper's implementation
/// ("a counter is maintained for each field of all classes").
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BYTECODE_MODULE_H
#define ARS_BYTECODE_MODULE_H

#include "bytecode/Opcode.h"

#include <string>
#include <vector>

namespace ars {
namespace bytecode {

/// Value categories tracked by the verifier and the frontend.
enum class Type : uint8_t { Void, I64, F64, Ref };

/// Human-readable name of \p T.
const char *typeName(Type T);

/// One field of a class, or one global variable.
struct FieldDef {
  std::string Name;
  Type Ty = Type::I64;
  int FieldId = -1; ///< module-global field identifier
};

/// A class is a named field layout (MiniJ classes are plain records; calls
/// are free functions, which is all the call-edge instrumentation needs).
struct ClassDef {
  std::string Name;
  int ClassId = -1;
  std::vector<FieldDef> Fields;

  /// Returns the index within Fields of \p Name, or -1.
  int fieldIndexByName(const std::string &Name) const;
};

/// A function: signature, local slot count and straight-line code with
/// branches by instruction index.
struct FunctionDef {
  std::string Name;
  int FuncId = -1;
  std::vector<Type> Params; ///< locals [0, Params.size()) on entry
  Type Ret = Type::Void;
  int NumLocals = 0; ///< total local slots, including parameters
  /// Declared type of each local slot (size == NumLocals).  Slots are
  /// monomorphic; the verifier enforces loads/stores against these.
  std::vector<Type> LocalTypes;
  std::vector<Inst> Code;
};

/// A whole program.
class Module {
public:
  /// Creates a class and returns its id.
  int addClass(const std::string &Name);
  /// Appends a field to class \p ClassId; returns the module-global FieldId.
  int addField(int ClassId, const std::string &Name, Type Ty);
  /// Adds a global variable; returns its GlobalId (also a FieldId for
  /// profiling purposes; globals are fields of an implicit class).
  int addGlobal(const std::string &Name, Type Ty);
  /// Creates an empty function and returns its id.
  int addFunction(const std::string &Name, std::vector<Type> Params,
                  Type Ret);

  int numClasses() const { return static_cast<int>(Classes.size()); }
  int numFunctions() const { return static_cast<int>(Functions.size()); }
  int numGlobals() const { return static_cast<int>(Globals.size()); }
  /// Total number of distinct FieldIds handed out (class fields + globals).
  int numFieldIds() const { return NextFieldId; }

  ClassDef &classAt(int Id);
  const ClassDef &classAt(int Id) const;
  FunctionDef &functionAt(int Id);
  const FunctionDef &functionAt(int Id) const;
  const FieldDef &globalAt(int Id) const;

  /// Returns the function with \p Name or nullptr.
  const FunctionDef *functionByName(const std::string &Name) const;
  FunctionDef *functionByName(const std::string &Name);

  /// Field name for a module-global \p FieldId ("Class.field" or
  /// "global.name"); used in profile dumps.
  std::string fieldIdName(int FieldId) const;

  const std::vector<ClassDef> &classes() const { return Classes; }
  const std::vector<FunctionDef> &functions() const { return Functions; }
  std::vector<FunctionDef> &functions() { return Functions; }
  const std::vector<FieldDef> &globals() const { return Globals; }

private:
  std::vector<ClassDef> Classes;
  std::vector<FunctionDef> Functions;
  std::vector<FieldDef> Globals;
  int NextFieldId = 0;
};

} // namespace bytecode
} // namespace ars

#endif // ARS_BYTECODE_MODULE_H
