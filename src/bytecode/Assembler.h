//===- bytecode/Assembler.h - Textual bytecode assembler ------*- C++ -*-===//
///
/// \file
/// Assembles a line-oriented textual bytecode format (.bca) into a Module.
/// The format exists for tests and tooling that need control the MiniJ
/// frontend does not give — notably irreducible control flow, which the
/// sampling framework must handle conservatively (retreating edges are
/// treated as backedges).
///
/// Format:
///
///   # comment
///   class Point { int x; float y; }
///   global int counter
///   func main(int) -> int locals(int, float)
///     L0:
///       iconst 0
///       store 1
///       load 1
///       brif L1
///       ret_or_other...
///     L1:
///       ...
///   end
///
/// Operands: integers for immediates/slots, label names for branches,
/// `Class.field` for field ops, bare names for globals/calls/new.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BYTECODE_ASSEMBLER_H
#define ARS_BYTECODE_ASSEMBLER_H

#include "bytecode/Module.h"

#include <string>

namespace ars {
namespace bytecode {

/// Assembly outcome.
struct AssembleResult {
  bool Ok = false;
  std::string Error;
  Module M;
};

/// Assembles \p Source; the result is verified before being returned.
AssembleResult assemble(const std::string &Source);

} // namespace bytecode
} // namespace ars

#endif // ARS_BYTECODE_ASSEMBLER_H
