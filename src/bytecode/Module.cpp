//===- bytecode/Module.cpp ------------------------------------*- C++ -*-===//

#include "bytecode/Module.h"

#include <cassert>

namespace ars {
namespace bytecode {

const char *typeName(Type T) {
  switch (T) {
  case Type::Void: return "void";
  case Type::I64:  return "int";
  case Type::F64:  return "float";
  case Type::Ref:  return "ref";
  }
  return "<bad type>";
}

int ClassDef::fieldIndexByName(const std::string &Name) const {
  for (size_t I = 0; I != Fields.size(); ++I)
    if (Fields[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

int Module::addClass(const std::string &Name) {
  ClassDef C;
  C.Name = Name;
  C.ClassId = static_cast<int>(Classes.size());
  Classes.push_back(std::move(C));
  return Classes.back().ClassId;
}

int Module::addField(int ClassId, const std::string &Name, Type Ty) {
  assert(ClassId >= 0 && ClassId < numClasses() && "bad class id");
  FieldDef F;
  F.Name = Name;
  F.Ty = Ty;
  F.FieldId = NextFieldId++;
  Classes[ClassId].Fields.push_back(F);
  return F.FieldId;
}

int Module::addGlobal(const std::string &Name, Type Ty) {
  FieldDef G;
  G.Name = Name;
  G.Ty = Ty;
  G.FieldId = NextFieldId++;
  Globals.push_back(G);
  return static_cast<int>(Globals.size()) - 1;
}

int Module::addFunction(const std::string &Name, std::vector<Type> Params,
                        Type Ret) {
  FunctionDef F;
  F.Name = Name;
  F.FuncId = static_cast<int>(Functions.size());
  F.Params = std::move(Params);
  F.Ret = Ret;
  F.NumLocals = static_cast<int>(F.Params.size());
  F.LocalTypes = F.Params;
  Functions.push_back(std::move(F));
  return Functions.back().FuncId;
}

ClassDef &Module::classAt(int Id) {
  assert(Id >= 0 && Id < numClasses() && "bad class id");
  return Classes[Id];
}

const ClassDef &Module::classAt(int Id) const {
  assert(Id >= 0 && Id < numClasses() && "bad class id");
  return Classes[Id];
}

FunctionDef &Module::functionAt(int Id) {
  assert(Id >= 0 && Id < numFunctions() && "bad function id");
  return Functions[Id];
}

const FunctionDef &Module::functionAt(int Id) const {
  assert(Id >= 0 && Id < numFunctions() && "bad function id");
  return Functions[Id];
}

const FieldDef &Module::globalAt(int Id) const {
  assert(Id >= 0 && Id < numGlobals() && "bad global id");
  return Globals[Id];
}

const FunctionDef *Module::functionByName(const std::string &Name) const {
  for (const FunctionDef &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

FunctionDef *Module::functionByName(const std::string &Name) {
  for (FunctionDef &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

std::string Module::fieldIdName(int FieldId) const {
  for (const ClassDef &C : Classes)
    for (const FieldDef &F : C.Fields)
      if (F.FieldId == FieldId)
        return C.Name + "." + F.Name;
  for (const FieldDef &G : Globals)
    if (G.FieldId == FieldId)
      return "global." + G.Name;
  return "<unknown field>";
}

} // namespace bytecode
} // namespace ars
