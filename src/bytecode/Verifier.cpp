//===- bytecode/Verifier.cpp ----------------------------------*- C++ -*-===//

#include "bytecode/Verifier.h"

#include "support/Support.h"

#include <cassert>
#include <deque>
#include <optional>
#include <vector>

using ars::support::formatString;

namespace ars {
namespace bytecode {

namespace {

/// Abstract stack: a vector of value types.
using AbsStack = std::vector<Type>;

/// Per-function verification engine.
class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const FunctionDef &Func)
      : M(M), Func(Func) {}

  VerifyResult run();

private:
  const Module &M;
  const FunctionDef &Func;
  /// Stack state at entry of each instruction; nullopt = not yet reached.
  std::vector<std::optional<AbsStack>> InState;
  std::deque<int> Worklist;
  VerifyResult Result;

  bool fail(int Pc, const std::string &Message) {
    Result.Ok = false;
    Result.Error = formatString("%s @%d: %s", Func.Name.c_str(), Pc,
                                Message.c_str());
    return false;
  }

  /// Looks up the type of a module-global field id; Void if unknown.
  Type fieldType(int FieldId) const {
    for (const ClassDef &C : M.classes())
      for (const FieldDef &F : C.Fields)
        if (F.FieldId == FieldId)
          return F.Ty;
    return Type::Void;
  }

  bool mergeInto(int Pc, const AbsStack &Stack);
  bool step(int Pc);
  bool pop(AbsStack &S, Type Want, int Pc, const char *What);
  bool popAny(AbsStack &S, Type *Got, int Pc);
};

bool FunctionVerifier::pop(AbsStack &S, Type Want, int Pc, const char *What) {
  if (S.empty())
    return fail(Pc, formatString("stack underflow popping %s", What));
  Type Got = S.back();
  S.pop_back();
  if (Got != Want)
    return fail(Pc, formatString("expected %s for %s, found %s",
                                 typeName(Want), What, typeName(Got)));
  return true;
}

bool FunctionVerifier::popAny(AbsStack &S, Type *Got, int Pc) {
  if (S.empty())
    return fail(Pc, "stack underflow");
  *Got = S.back();
  S.pop_back();
  return true;
}

bool FunctionVerifier::mergeInto(int Pc, const AbsStack &Stack) {
  if (Pc < 0 || Pc >= static_cast<int>(Func.Code.size()))
    return fail(Pc, "branch target or fallthrough out of range");
  if (!InState[Pc]) {
    InState[Pc] = Stack;
    Worklist.push_back(Pc);
    return true;
  }
  const AbsStack &Existing = *InState[Pc];
  if (Existing.size() != Stack.size())
    return fail(Pc, formatString("inconsistent stack depth at join "
                                 "(%zu vs %zu)",
                                 Existing.size(), Stack.size()));
  for (size_t I = 0; I != Stack.size(); ++I)
    if (Existing[I] != Stack[I])
      return fail(Pc, formatString("inconsistent stack type at join slot "
                                   "%zu (%s vs %s)",
                                   I, typeName(Existing[I]),
                                   typeName(Stack[I])));
  return true;
}

bool FunctionVerifier::step(int Pc) {
  assert(InState[Pc] && "stepping unreached instruction");
  AbsStack S = *InState[Pc];
  const Inst &I = Func.Code[Pc];
  if (static_cast<int>(S.size()) > Result.MaxStack)
    Result.MaxStack = static_cast<int>(S.size());

  Type T = Type::Void;
  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::IConst:
    S.push_back(Type::I64);
    break;
  case Opcode::FConst:
    S.push_back(Type::F64);
    break;
  case Opcode::Load: {
    if (I.A < 0 || I.A >= Func.NumLocals)
      return fail(Pc, "local index out of range");
    Type LT = Func.LocalTypes[static_cast<size_t>(I.A)];
    if (LT == Type::Void)
      return fail(Pc, "load from void-typed local");
    S.push_back(LT);
    break;
  }
  case Opcode::Store: {
    if (I.A < 0 || I.A >= Func.NumLocals)
      return fail(Pc, "local index out of range");
    Type LT = Func.LocalTypes[static_cast<size_t>(I.A)];
    if (!pop(S, LT, Pc, "stored value"))
      return false;
    break;
  }
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    if (!pop(S, Type::I64, Pc, "rhs") || !pop(S, Type::I64, Pc, "lhs"))
      return false;
    S.push_back(Type::I64);
    break;
  case Opcode::Neg:
    if (!pop(S, Type::I64, Pc, "operand"))
      return false;
    S.push_back(Type::I64);
    break;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    if (!pop(S, Type::F64, Pc, "rhs") || !pop(S, Type::F64, Pc, "lhs"))
      return false;
    S.push_back(Type::F64);
    break;
  case Opcode::FNeg:
    if (!pop(S, Type::F64, Pc, "operand"))
      return false;
    S.push_back(Type::F64);
    break;
  case Opcode::F2I:
    if (!pop(S, Type::F64, Pc, "operand"))
      return false;
    S.push_back(Type::I64);
    break;
  case Opcode::I2F:
    if (!pop(S, Type::I64, Pc, "operand"))
      return false;
    S.push_back(Type::F64);
    break;
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
  case Opcode::FCmpEq:
    if (!pop(S, Type::F64, Pc, "rhs") || !pop(S, Type::F64, Pc, "lhs"))
      return false;
    S.push_back(Type::I64);
    break;
  case Opcode::Br:
    return mergeInto(static_cast<int>(I.A), S);
  case Opcode::BrIf:
    if (!pop(S, Type::I64, Pc, "condition"))
      return false;
    if (!mergeInto(static_cast<int>(I.A), S))
      return false;
    return mergeInto(Pc + 1, S);
  case Opcode::Ret:
    if (Func.Ret != Type::Void)
      return fail(Pc, "ret in non-void function");
    return true;
  case Opcode::RetVal:
    if (Func.Ret == Type::Void)
      return fail(Pc, "retval in void function");
    if (!pop(S, Func.Ret, Pc, "return value"))
      return false;
    return true;
  case Opcode::Call:
  case Opcode::Spawn: {
    if (I.A < 0 || I.A >= M.numFunctions())
      return fail(Pc, "callee id out of range");
    const FunctionDef &Callee = M.functionAt(static_cast<int>(I.A));
    for (size_t P = Callee.Params.size(); P-- > 0;)
      if (!pop(S, Callee.Params[P], Pc, "argument"))
        return false;
    if (I.Op == Opcode::Call && Callee.Ret != Type::Void)
      S.push_back(Callee.Ret);
    break;
  }
  case Opcode::New:
    if (I.A < 0 || I.A >= M.numClasses())
      return fail(Pc, "class id out of range");
    S.push_back(Type::Ref);
    break;
  case Opcode::GetField: {
    Type FT = fieldType(static_cast<int>(I.A));
    if (FT == Type::Void)
      return fail(Pc, "unknown field id");
    if (!pop(S, Type::Ref, Pc, "object"))
      return false;
    S.push_back(FT);
    break;
  }
  case Opcode::PutField: {
    Type FT = fieldType(static_cast<int>(I.A));
    if (FT == Type::Void)
      return fail(Pc, "unknown field id");
    if (!pop(S, FT, Pc, "value") || !pop(S, Type::Ref, Pc, "object"))
      return false;
    break;
  }
  case Opcode::GetGlobal:
    if (I.A < 0 || I.A >= M.numGlobals())
      return fail(Pc, "global id out of range");
    S.push_back(M.globalAt(static_cast<int>(I.A)).Ty);
    break;
  case Opcode::PutGlobal:
    if (I.A < 0 || I.A >= M.numGlobals())
      return fail(Pc, "global id out of range");
    if (!pop(S, M.globalAt(static_cast<int>(I.A)).Ty, Pc, "value"))
      return false;
    break;
  case Opcode::NewArray:
    if (!pop(S, Type::I64, Pc, "length"))
      return false;
    S.push_back(Type::Ref);
    break;
  case Opcode::ALoad:
    if (!pop(S, Type::I64, Pc, "index") || !pop(S, Type::Ref, Pc, "array"))
      return false;
    S.push_back(Type::I64);
    break;
  case Opcode::AStore:
    if (!pop(S, Type::I64, Pc, "value") || !pop(S, Type::I64, Pc, "index") ||
        !pop(S, Type::Ref, Pc, "array"))
      return false;
    break;
  case Opcode::ALen:
    if (!pop(S, Type::Ref, Pc, "array"))
      return false;
    S.push_back(Type::I64);
    break;
  case Opcode::Dup:
    if (!popAny(S, &T, Pc))
      return false;
    S.push_back(T);
    S.push_back(T);
    break;
  case Opcode::Pop:
    if (!popAny(S, &T, Pc))
      return false;
    break;
  case Opcode::Swap: {
    Type T2 = Type::Void;
    if (!popAny(S, &T, Pc) || !popAny(S, &T2, Pc))
      return false;
    S.push_back(T);
    S.push_back(T2);
    break;
  }
  case Opcode::IOWait:
    if (I.A < 0)
      return fail(Pc, "negative iowait cost");
    break;
  case Opcode::Print:
    if (!popAny(S, &T, Pc))
      return false;
    break;
  }

  if (static_cast<int>(S.size()) > Result.MaxStack)
    Result.MaxStack = static_cast<int>(S.size());
  return mergeInto(Pc + 1, S);
}

VerifyResult FunctionVerifier::run() {
  Result.Ok = true;
  auto failAndReturn = [&](int Pc, const char *Message) {
    fail(Pc, Message);
    return Result;
  };

  if (Func.Code.empty())
    return failAndReturn(0, "empty function body");
  if (Func.NumLocals < static_cast<int>(Func.Params.size()))
    return failAndReturn(0, "fewer locals than parameters");
  if (Func.LocalTypes.size() != static_cast<size_t>(Func.NumLocals))
    return failAndReturn(0, "LocalTypes size does not match NumLocals");
  if (!isTerminator(Func.Code.back().Op))
    return failAndReturn(static_cast<int>(Func.Code.size()) - 1,
                         "function does not end with a terminator");
  for (size_t P = 0; P != Func.Params.size(); ++P)
    if (Func.LocalTypes[P] != Func.Params[P])
      return failAndReturn(0, "parameter slot type mismatch");

  InState.assign(Func.Code.size(), std::nullopt);
  InState[0] = AbsStack();
  Worklist.push_back(0);
  while (!Worklist.empty()) {
    int Pc = Worklist.front();
    Worklist.pop_front();
    if (!step(Pc))
      return Result;
  }
  return Result;
}

} // namespace

VerifyResult verifyFunction(const Module &M, const FunctionDef &Func) {
  FunctionVerifier V(M, Func);
  return V.run();
}

VerifyResult verifyModule(const Module &M) {
  for (const FunctionDef &F : M.functions()) {
    VerifyResult R = verifyFunction(M, F);
    if (!R.Ok)
      return R;
  }
  VerifyResult Ok;
  Ok.Ok = true;
  return Ok;
}

} // namespace bytecode
} // namespace ars
