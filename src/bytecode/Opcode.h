//===- bytecode/Opcode.h - Stack bytecode instruction set -----*- C++ -*-===//
///
/// \file
/// The stack-machine bytecode instruction set produced by the MiniJ frontend
/// and consumed by the lowering pass.  It plays the role Java bytecode plays
/// in the paper: a simple, verifiable input language whose get_field /
/// put_field and call instructions define the instrumentation points.
///
//===----------------------------------------------------------------------===//

#ifndef ARS_BYTECODE_OPCODE_H
#define ARS_BYTECODE_OPCODE_H

#include <cstdint>

namespace ars {
namespace bytecode {

/// Every bytecode operation.  Stack effects are documented as
/// "pops -> pushes".
enum class Opcode : uint8_t {
  Nop,        ///< nothing
  IConst,     ///< A = immediate          ; -> i
  FConst,     ///< F = immediate          ; -> f
  Load,       ///< A = local index        ; -> v
  Store,      ///< A = local index        ; v ->

  // Integer arithmetic (i, i -> i) unless noted.
  Add,
  Sub,
  Mul,
  Div,        ///< traps on divide by zero
  Rem,        ///< traps on divide by zero
  Neg,        ///< i -> i
  And,
  Or,
  Xor,
  Shl,
  Shr,

  // Float arithmetic (f, f -> f) unless noted.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,       ///< f -> f
  F2I,        ///< f -> i (truncation)
  I2F,        ///< i -> f

  // Integer comparisons (i, i -> i producing 0/1).
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Float comparisons (f, f -> i producing 0/1).
  FCmpLt,
  FCmpLe,
  FCmpEq,

  // Control flow.  Targets are bytecode offsets (instruction indices).
  Br,         ///< A = target
  BrIf,       ///< A = target             ; i -> (branch if nonzero)
  Ret,        ///< return void
  RetVal,     ///< v -> return value

  // Calls.  A = callee function id; arguments are popped right-to-left.
  Call,       ///< args... -> [retval]
  Spawn,      ///< args... ->  (starts a new green thread running callee)

  // Objects and fields.  Field ids are module-global (see Module).
  New,        ///< A = class id           ; -> ref
  GetField,   ///< A = field id           ; ref -> v
  PutField,   ///< A = field id           ; ref, v ->
  GetGlobal,  ///< A = global id          ; -> v
  PutGlobal,  ///< A = global id          ; v ->

  // Arrays of i64 cells.
  NewArray,   ///< i(len) -> ref
  ALoad,      ///< ref, i(index) -> v
  AStore,     ///< ref, i(index), v ->
  ALen,       ///< ref -> i

  // Stack shuffling.
  Dup,        ///< v -> v, v
  Pop,        ///< v ->
  Swap,       ///< a, b -> b, a

  // Long-latency operation: consumes A simulated cycles doing nothing.
  // Models the I/O-like instruction sequences the paper discusses when
  // explaining timer-trigger sample misattribution (section 2.1).
  IOWait,     ///< A = cycle cost

  // Debug/test aid: appends the popped value to the engine trace.
  Print,      ///< v ->
};

/// Human-readable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// True if \p Op ends a basic block (Br, BrIf, Ret, RetVal).
bool isTerminator(Opcode Op);

/// True if \p Op carries a branch target in its A field.
bool isBranch(Opcode Op);

/// A single bytecode instruction.  The meaning of A/B/F depends on the
/// opcode; unused fields are zero.
struct Inst {
  Opcode Op = Opcode::Nop;
  int64_t A = 0;  ///< immediate / local index / target / id
  double F = 0.0; ///< float immediate for FConst

  Inst() = default;
  explicit Inst(Opcode Op, int64_t A = 0) : Op(Op), A(A) {}
  static Inst makeFConst(double Value) {
    Inst I(Opcode::FConst);
    I.F = Value;
    return I;
  }
};

} // namespace bytecode
} // namespace ars

#endif // ARS_BYTECODE_OPCODE_H
