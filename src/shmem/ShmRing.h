//===- shmem/ShmRing.h - Shared-memory ring transport ---------*- C++ -*-===//
///
/// \file
/// A same-host Transport backend over a file-backed mmap segment: two
/// lock-free SPSC rings (client->server and server->client) of fixed-size
/// cells, each cell guarded by a seqlock-style commit word.  The paper's
/// deployment story (engine pushing to a sidecar collector on the same
/// host) makes TCP framing and socket copies pure overhead; here the
/// payload bytes move through shared pages and the steady state needs no
/// syscalls at all.
///
/// Segment anatomy (one file per connection, created by the client):
///
///   [SegmentHeader]  magic "ARSM", version, cell geometry, geometry CRC,
///                    close flags, per-ring head/tail + futex words
///   [c2s cells]      CellCount cells of CellSize bytes
///   [s2c cells]      CellCount cells of CellSize bytes
///
/// Each cell = { commit word (u64), length (u32), payload }.  A producer
/// fills payload + length, then release-stores commit = seq + 1; the
/// consumer acquire-loads commit and treats exactly seq + 1 as ready.
/// Because the expected value is unique per lap, stale commits from the
/// previous lap read as "not ready" with no consumer write-back — the
/// seqlock idea applied to an SPSC ring.  A commit word with the poison
/// bit set models a writer that died mid-commit ("torn write"); the
/// consumer surfaces it as a hard transport error.
///
/// Wakeup paths:
///  * client blocking on data/space: futex on per-ring 32-bit counters
///    (Linux; a short sleep-poll elsewhere), gated by waiter flags so the
///    pipelined steady state does zero wake syscalls;
///  * server reactor: a FIFO "bell" next to the segment gives the event
///    loop a real pollFd(); the client rings it only when the server has
///    declared (via a Dekker-fenced flag) that it is about to sleep.
///
/// Connection establishment is rendezvous-by-directory: the client
/// creates and initializes `<dir>/c<nonce>.arsm` (+ `.bell`), renaming it
/// into place so the listener only ever sees fully-initialized segments;
/// the listener scans the directory, validates the header, and unlinks
/// both files on adoption (the mapping keeps them alive).
///
//===----------------------------------------------------------------------===//

#ifndef ARS_SHMEM_SHMRING_H
#define ARS_SHMEM_SHMRING_H

#include "profserve/Client.h"
#include "profserve/Transport.h"

#include <memory>
#include <string>

namespace ars {
namespace shmem {

/// Fixed geometry of a v1 segment.  Cells hold a u64 commit word and a
/// u32 length before the payload.
constexpr uint32_t SegmentVersion = 1;
constexpr uint32_t CellSize = 4096;
constexpr uint32_t CellPayload = CellSize - 16;
constexpr uint32_t CellCount = 64; // per ring

/// Total on-disk size of a segment file with the default geometry.
size_t segmentBytes();

/// One end of a shared-memory ring connection.  Created via shmConnect
/// (client end) or ShmListener::accept (server end); not constructible
/// directly.  The server end exposes pollFd() so the reactor can drive
/// it; the client end blocks on futexes.
class ShmRingTransport : public profserve::Transport {
public:
  ~ShmRingTransport() override;

  profserve::IoResult writeAll(const char *Data, size_t Size) override;
  profserve::IoResult readSome(char *Data, size_t Max, int TimeoutMs,
                               size_t *Read) override;
  profserve::IoResult readNow(char *Data, size_t Max,
                              size_t *Read) override;
  profserve::IoResult writeNow(const char *Data, size_t Size,
                               size_t *Written) override;
  int pollFd() const override;
  void close() override;
  std::string peer() const override;

  /// Fault hooks for chaos testing (client end only).
  ///
  /// tearNextWrite: the next writeAll commits its first cell with the
  /// poison bit set and silently discards the rest of the buffer —
  /// modelling a writer that died mid-commit.  The server reads the
  /// poisoned cell as a hard "torn ring cell" error and drops the
  /// connection.
  void tearNextWrite();

  /// abandon: this end stops touching the shared segment entirely — no
  /// close flag, no final wakeup — modelling a crashed writer process.
  /// The server only learns via its idle-read deadline.  All subsequent
  /// local ops fail with Error.
  void abandon();

  struct Impl;

private:
  friend class ShmListener;
  friend std::unique_ptr<profserve::Transport>
  shmConnect(const std::string &Dir, std::string *Error);
  explicit ShmRingTransport(std::unique_ptr<Impl> I);
  std::unique_ptr<Impl> I;
};

/// Accepts shm connections by scanning \p Dir for client-created
/// segments.  The directory is created if missing.
class ShmListener : public profserve::Listener {
public:
  ~ShmListener() override;

  std::unique_ptr<profserve::Transport> accept() override;
  void shutdown() override;
  std::string address() const override;

  struct Impl;

private:
  friend std::unique_ptr<ShmListener> listenShm(const std::string &Dir,
                                                std::string *Error);
  explicit ShmListener(std::unique_ptr<Impl> I);
  std::unique_ptr<Impl> I;
};

/// Creates the rendezvous directory (if needed) and returns a listener
/// over it; nullptr + \p Error on failure.
std::unique_ptr<ShmListener> listenShm(const std::string &Dir,
                                       std::string *Error);

/// Client end: creates, initializes and publishes a fresh segment in
/// \p Dir.  Returns nullptr + \p Error when the directory is unusable.
/// Note the returned transport is connected as soon as the listener
/// adopts the segment; bytes written before that simply wait in the ring.
std::unique_ptr<profserve::Transport> shmConnect(const std::string &Dir,
                                                 std::string *Error);

/// Dialer over shmConnect, for ProfileClient / chaos harness use.
profserve::Dialer shmDialer(std::string Dir);

} // namespace shmem
} // namespace ars

#endif // ARS_SHMEM_SHMRING_H
